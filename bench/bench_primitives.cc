// Micro-suite for the parlib substrate, in two parts.
//
// 1. Scheduler sweeps (always built, no external deps): fork-join overhead
//    of the Chase-Lev deques, steal throughput, external-vs-native worker
//    scaling, and registration churn cost. `-json <path>` emits the sweeps
//    as machine-readable rows (tracked as BENCH_scheduler.json across PRs)
//    and skips the Google Benchmark section so CI smoke stays fast.
//
// 2. google-benchmark micro-suite (built when Google Benchmark is
//    installed, GBBS_HAVE_BENCHMARK): the primitives of Section 3 (scan,
//    reduce, filter), the sorts, the Section 5 histogram, and the atomic
//    primitives of the MT-RAM model.
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "obs/flight_recorder.h"
#include "parlib/atomics.h"
#include "parlib/counters.h"
#include "parlib/parallel.h"
#include "parlib/random.h"
#include "parlib/scheduler.h"
#include "parlib/sequence_ops.h"

#ifdef GBBS_HAVE_BENCHMARK
#include <benchmark/benchmark.h>

#include "parlib/histogram.h"
#include "parlib/integer_sort.h"
#include "parlib/sort.h"
#endif

namespace {

// ---- scheduler sweeps -----------------------------------------------------

// Fork-join overhead: a parallel_for of trivial bodies at granularity 1
// creates ~n par_do frames; the difference against the 1-active-worker
// run (which takes the inline path, no deque traffic) isolates the
// push/pop_if/steal constant of the Chase-Lev deque.
bench::json_record sweep_fork_join() {
  const std::size_t n = std::size_t{1} << 16;
  std::vector<std::size_t> out(n);
  auto body = [&](std::size_t i) { out[i] = i; };
  const double seq_s = bench::time_with_workers(
      1, [&] { parlib::parallel_for(0, n, body, 1); }, 5);
  const double par_s = bench::time_best(
      [&] { parlib::parallel_for(0, n, body, 1); }, 5);
  const double fork_ns = par_s * 1e9 / static_cast<double>(n);
  const double overhead_ns =
      (par_s - seq_s) * 1e9 / static_cast<double>(n);
  std::printf("fork-join: %zu forks, %.1f ns/fork (inline baseline %.1f "
              "ns/iter, deque overhead %.1f ns/fork)\n",
              n, fork_ns, seq_s * 1e9 / static_cast<double>(n),
              overhead_ns);
  return bench::json_record()
      .field("section", std::string("fork_join"))
      .field("forks", static_cast<std::uint64_t>(n))
      .field("ns_per_fork", fork_ns)
      .field("inline_ns_per_iter", seq_s * 1e9 / static_cast<double>(n))
      .field("deque_overhead_ns_per_fork", overhead_ns);
}

// Steal throughput: skewed tiny tasks at granularity 1 keep every worker
// stealing; successful steals per second out of the scheduler's counter,
// with the steal delta and the wall time taken over the same reps.
// (0 steals on a 1-worker host — nobody to steal from.)
bench::json_record sweep_steals() {
  const std::size_t n = std::size_t{1} << 14;
  const int reps = 3;
  std::atomic<std::uint64_t> sink{0};
  const std::uint64_t steals_before =
      parlib::scheduler::instance().total_steals();
  double total_s = 0;
  for (int r = 0; r < reps; ++r) {
    total_s += bench::time_once([&] {
      parlib::parallel_for(
          0, n,
          [&](std::size_t i) {
            std::uint64_t acc = 0;
            for (std::size_t k = 0; k < 64; ++k) acc += k * i;
            sink.fetch_add(acc == 0 ? 1 : 0, std::memory_order_relaxed);
          },
          1);
    });
  }
  const std::uint64_t steals =
      parlib::scheduler::instance().total_steals() - steals_before;
  const double per_s =
      total_s > 0 ? static_cast<double>(steals) / total_s : 0;
  std::printf("steals: %llu across %d reps of %zu tiny tasks (%.0f "
              "steals/s)\n",
              static_cast<unsigned long long>(steals), reps, n, per_s);
  return bench::json_record()
      .field("section", std::string("steal_throughput"))
      .field("tasks", static_cast<std::uint64_t>(n))
      .field("steals", steals)
      .field("steals_per_s", per_s);
}

// External-vs-native scaling: the same parallel reduction timed from the
// main thread (native worker 0), from a registered external thread (its
// own deque — should match native), and from an unregistered thread
// (inline-sequential by contract).
void sweep_external(std::vector<bench::json_record>& rows) {
  const std::size_t n = std::size_t{1} << 20;
  auto data = parlib::tabulate<std::uint64_t>(
      n, [](std::size_t i) { return parlib::hash64(i) % 1000; });
  const std::uint64_t expect = parlib::reduce_add(data);

  auto timed_in_thread = [&](bool registered) {
    double t = 0;
    std::uint64_t got = 0;
    std::thread th([&] {
      if (registered) {
        parlib::worker_guard guard;
        t = bench::time_best([&] { got = parlib::reduce_add(data); }, 5);
      } else {
        t = bench::time_best([&] { got = parlib::reduce_add(data); }, 5);
      }
    });
    th.join();
    if (got != expect) std::printf("external sweep: CHECKSUM MISMATCH\n");
    return t;
  };

  const double native_s =
      bench::time_best([&] { parlib::reduce_add(data); }, 5);
  const double registered_s = timed_in_thread(true);
  const double unregistered_s = timed_in_thread(false);
  std::printf("reduce(2^20) native %.3f ms | external-registered %.3f ms "
              "| unregistered(sequential) %.3f ms\n",
              native_s * 1e3, registered_s * 1e3, unregistered_s * 1e3);
  rows.push_back(bench::json_record()
                     .field("section", std::string("external_scaling"))
                     .field("n", static_cast<std::uint64_t>(n))
                     .field("native_ms", native_s * 1e3)
                     .field("external_registered_ms", registered_s * 1e3)
                     .field("unregistered_ms", unregistered_s * 1e3)
                     .field("registered_vs_native",
                            native_s > 0 ? registered_s / native_s : 0));
}

// Flight-recorder overhead: the cost of one hot-path event write with the
// recorder enabled vs runtime-disabled (one relaxed load + branch — the
// floor a -DGBBS_FLIGHT_RECORDER=OFF build compiles down past), plus the
// fork-join sweep re-run with the recorder off to bound what always-on
// tracing adds per par_do. The enabled number is the contract the README
// quotes: a low-ns write, safe to leave on in production serving.
bench::json_record sweep_tracing() {
  auto& fr = gbbs::obs::flight_recorder::global();
  const std::size_t reps = 1 << 20;
  const std::uint32_t name_id = fr.intern("bench.trace_overhead");

  auto emit_loop = [&] {
    for (std::size_t i = 0; i < reps; ++i) {
      fr.emit(gbbs::obs::event_type::instant, name_id,
              static_cast<std::uint64_t>(i));
    }
  };
  const double enabled_s = bench::time_best(emit_loop, 5);
  fr.set_enabled(false);
  const double disabled_s = bench::time_best(emit_loop, 5);

  // Fork-join with the recorder off: the delta against sweep_fork_join's
  // ns_per_fork (recorder on, the default) is the per-fork tracing tax.
  const std::size_t n = std::size_t{1} << 16;
  std::vector<std::size_t> out(n);
  auto body = [&](std::size_t i) { out[i] = i; };
  const double fork_off_s = bench::time_best(
      [&] { parlib::parallel_for(0, n, body, 1); }, 5);
  fr.set_enabled(true);
  const double fork_on_s = bench::time_best(
      [&] { parlib::parallel_for(0, n, body, 1); }, 5);

  const double enabled_ns = enabled_s * 1e9 / static_cast<double>(reps);
  const double disabled_ns = disabled_s * 1e9 / static_cast<double>(reps);
  const double fork_on_ns = fork_on_s * 1e9 / static_cast<double>(n);
  const double fork_off_ns = fork_off_s * 1e9 / static_cast<double>(n);
  std::printf(
      "tracing: %.1f ns/event enabled, %.1f ns disabled | fork-join "
      "%.1f ns/fork recorder-on vs %.1f ns recorder-off\n",
      enabled_ns, disabled_ns, fork_on_ns, fork_off_ns);
  return bench::json_record()
      .field("section", std::string("tracing_overhead"))
      .field("events", static_cast<std::uint64_t>(reps))
      .field("emit_ns_enabled", enabled_ns)
      .field("emit_ns_disabled", disabled_ns)
      .field("fork_ns_recorder_on", fork_on_ns)
      .field("fork_ns_recorder_off", fork_off_ns);
}

// Registration churn: worker_guard claim+release cost (the per-thread
// setup a reader pool pays once, not per query).
bench::json_record sweep_registration() {
  const std::size_t reps = 20000;
  double t = 0;
  std::thread th([&] {
    t = bench::time_once([&] {
      for (std::size_t i = 0; i < reps; ++i) {
        parlib::worker_guard guard;
        if (!guard.registered() &&
            parlib::scheduler::instance().num_workers() > 0) {
          std::printf("registration sweep: slot table exhausted?\n");
        }
      }
    });
  });
  th.join();
  const double ns = t * 1e9 / static_cast<double>(reps);
  std::printf("registration churn: %.0f ns per register+unregister\n", ns);
  return bench::json_record()
      .field("section", std::string("registration_churn"))
      .field("reps", static_cast<std::uint64_t>(reps))
      .field("ns_per_registration", ns);
}

void run_scheduler_sweeps(const std::string& json_path) {
  std::printf("== scheduler sweeps (workers=%zu, max slots=%zu) ==\n",
              parlib::num_workers(),
              parlib::scheduler::instance().max_slots());
  std::vector<bench::json_record> rows;
  rows.push_back(sweep_fork_join());
  rows.push_back(sweep_steals());
  sweep_external(rows);
  rows.push_back(sweep_registration());
  rows.push_back(sweep_tracing());
  if (!json_path.empty()) {
    bench::write_json(json_path, "bench_scheduler", rows);
  }
}

// ---- google-benchmark micro-suite -----------------------------------------

#ifdef GBBS_HAVE_BENCHMARK

void BM_Scan(benchmark::State& state) {
  const std::size_t n = state.range(0);
  auto data = parlib::tabulate<std::uint64_t>(
      n, [](std::size_t i) { return parlib::hash64(i) % 100; });
  for (auto _ : state) {
    auto copy = data;
    benchmark::DoNotOptimize(parlib::scan_inplace(copy));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_Scan)->Arg(1 << 16)->Arg(1 << 20);

void BM_Reduce(benchmark::State& state) {
  const std::size_t n = state.range(0);
  auto data = parlib::tabulate<std::uint64_t>(
      n, [](std::size_t i) { return parlib::hash64(i); });
  for (auto _ : state) {
    benchmark::DoNotOptimize(parlib::reduce_add(data));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_Reduce)->Arg(1 << 16)->Arg(1 << 20);

void BM_Filter(benchmark::State& state) {
  const std::size_t n = state.range(0);
  auto data = parlib::tabulate<std::uint64_t>(
      n, [](std::size_t i) { return parlib::hash64(i); });
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        parlib::filter(data, [](std::uint64_t v) { return v % 3 == 0; }));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_Filter)->Arg(1 << 16)->Arg(1 << 20);

void BM_MergeSort(benchmark::State& state) {
  const std::size_t n = state.range(0);
  auto data = parlib::tabulate<std::uint64_t>(
      n, [](std::size_t i) { return parlib::hash64(i); });
  for (auto _ : state) {
    auto copy = data;
    parlib::sort_inplace(copy);
    benchmark::DoNotOptimize(copy.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_MergeSort)->Arg(1 << 16)->Arg(1 << 19);

void BM_IntegerSort(benchmark::State& state) {
  const std::size_t n = state.range(0);
  auto data = parlib::tabulate<std::uint32_t>(n, [](std::size_t i) {
    return parlib::hash32(static_cast<std::uint32_t>(i));
  });
  for (auto _ : state) {
    auto copy = data;
    parlib::integer_sort_inplace(copy, [](std::uint32_t x) { return x; }, 32);
    benchmark::DoNotOptimize(copy.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_IntegerSort)->Arg(1 << 16)->Arg(1 << 19);

// Fork-join overhead of the scheduler hot path (the google-benchmark view
// of sweep_fork_join, for --benchmark_filter-driven digging).
void BM_ForkJoinGranularity1(benchmark::State& state) {
  const std::size_t n = state.range(0);
  std::vector<std::size_t> out(n);
  for (auto _ : state) {
    parlib::parallel_for(0, n, [&](std::size_t i) { out[i] = i; }, 1);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ForkJoinGranularity1)->Arg(1 << 12)->Arg(1 << 16);

// Histogram on skewed keys (the k-core setting of Section 5) vs uniform.
void BM_HistogramSkewed(benchmark::State& state) {
  const std::size_t n = state.range(0);
  std::vector<std::pair<std::uint32_t, std::uint64_t>> pairs(n);
  for (std::size_t i = 0; i < n; ++i) {
    // ~half the mass on 16 heavy keys.
    const auto h = parlib::hash64(i);
    const std::uint32_t key = (h & 1) ? (h >> 1) % 16
                                      : 16 + (h >> 1) % 100000;
    pairs[i] = {key, 1};
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        parlib::histogram_by_key<std::uint32_t, std::uint64_t>(
            pairs, [](auto a, auto b) { return a + b; }, 0));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_HistogramSkewed)->Arg(1 << 16)->Arg(1 << 19);

// The contended alternative the histogram replaces.
void BM_FetchAddContended(benchmark::State& state) {
  const std::size_t n = state.range(0);
  std::vector<std::uint64_t> counters(16 + 100000, 0);
  for (auto _ : state) {
    parlib::parallel_for(0, n, [&](std::size_t i) {
      const auto h = parlib::hash64(i);
      const std::uint32_t key = (h & 1) ? (h >> 1) % 16
                                        : 16 + (h >> 1) % 100000;
      parlib::fetch_and_add<std::uint64_t>(&counters[key], 1);
    });
    benchmark::DoNotOptimize(counters.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_FetchAddContended)->Arg(1 << 16)->Arg(1 << 19);

void BM_RandomPermutation(benchmark::State& state) {
  const std::size_t n = state.range(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        parlib::random_permutation(n, parlib::random(3)));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_RandomPermutation)->Arg(1 << 16)->Arg(1 << 19);

#endif  // GBBS_HAVE_BENCHMARK

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = bench::json_path_flag(argc, argv);
  run_scheduler_sweeps(json_path);
  // -json = machine-readable sweep mode (the CI smoke step): skip the
  // google-benchmark suite so the run stays seconds-fast.
  if (!json_path.empty()) return 0;
#ifdef GBBS_HAVE_BENCHMARK
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
#endif
  return 0;
}
