// google-benchmark micro-suite for the parlib substrate: the primitives of
// Section 3 (scan, reduce, filter), the sorts, the Section 5 histogram, and
// the atomic primitives of the MT-RAM model.
#include <benchmark/benchmark.h>

#include "parlib/atomics.h"
#include "parlib/histogram.h"
#include "parlib/integer_sort.h"
#include "parlib/random.h"
#include "parlib/sequence_ops.h"
#include "parlib/sort.h"

namespace {

void BM_Scan(benchmark::State& state) {
  const std::size_t n = state.range(0);
  auto data = parlib::tabulate<std::uint64_t>(
      n, [](std::size_t i) { return parlib::hash64(i) % 100; });
  for (auto _ : state) {
    auto copy = data;
    benchmark::DoNotOptimize(parlib::scan_inplace(copy));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_Scan)->Arg(1 << 16)->Arg(1 << 20);

void BM_Reduce(benchmark::State& state) {
  const std::size_t n = state.range(0);
  auto data = parlib::tabulate<std::uint64_t>(
      n, [](std::size_t i) { return parlib::hash64(i); });
  for (auto _ : state) {
    benchmark::DoNotOptimize(parlib::reduce_add(data));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_Reduce)->Arg(1 << 16)->Arg(1 << 20);

void BM_Filter(benchmark::State& state) {
  const std::size_t n = state.range(0);
  auto data = parlib::tabulate<std::uint64_t>(
      n, [](std::size_t i) { return parlib::hash64(i); });
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        parlib::filter(data, [](std::uint64_t v) { return v % 3 == 0; }));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_Filter)->Arg(1 << 16)->Arg(1 << 20);

void BM_MergeSort(benchmark::State& state) {
  const std::size_t n = state.range(0);
  auto data = parlib::tabulate<std::uint64_t>(
      n, [](std::size_t i) { return parlib::hash64(i); });
  for (auto _ : state) {
    auto copy = data;
    parlib::sort_inplace(copy);
    benchmark::DoNotOptimize(copy.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_MergeSort)->Arg(1 << 16)->Arg(1 << 19);

void BM_IntegerSort(benchmark::State& state) {
  const std::size_t n = state.range(0);
  auto data = parlib::tabulate<std::uint32_t>(n, [](std::size_t i) {
    return parlib::hash32(static_cast<std::uint32_t>(i));
  });
  for (auto _ : state) {
    auto copy = data;
    parlib::integer_sort_inplace(copy, [](std::uint32_t x) { return x; }, 32);
    benchmark::DoNotOptimize(copy.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_IntegerSort)->Arg(1 << 16)->Arg(1 << 19);

// Histogram on skewed keys (the k-core setting of Section 5) vs uniform.
void BM_HistogramSkewed(benchmark::State& state) {
  const std::size_t n = state.range(0);
  std::vector<std::pair<std::uint32_t, std::uint64_t>> pairs(n);
  for (std::size_t i = 0; i < n; ++i) {
    // ~half the mass on 16 heavy keys.
    const auto h = parlib::hash64(i);
    const std::uint32_t key = (h & 1) ? (h >> 1) % 16
                                      : 16 + (h >> 1) % 100000;
    pairs[i] = {key, 1};
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        parlib::histogram_by_key<std::uint32_t, std::uint64_t>(
            pairs, [](auto a, auto b) { return a + b; }, 0));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_HistogramSkewed)->Arg(1 << 16)->Arg(1 << 19);

// The contended alternative the histogram replaces.
void BM_FetchAddContended(benchmark::State& state) {
  const std::size_t n = state.range(0);
  std::vector<std::uint64_t> counters(16 + 100000, 0);
  for (auto _ : state) {
    parlib::parallel_for(0, n, [&](std::size_t i) {
      const auto h = parlib::hash64(i);
      const std::uint32_t key = (h & 1) ? (h >> 1) % 16
                                        : 16 + (h >> 1) % 100000;
      parlib::fetch_and_add<std::uint64_t>(&counters[key], 1);
    });
    benchmark::DoNotOptimize(counters.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_FetchAddContended)->Arg(1 << 16)->Arg(1 << 19);

void BM_RandomPermutation(benchmark::State& state) {
  const std::size_t n = state.range(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        parlib::random_permutation(n, parlib::random(3)));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_RandomPermutation)->Arg(1 << 16)->Arg(1 << 19);

}  // namespace

BENCHMARK_MAIN();
