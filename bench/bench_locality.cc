// Table 6 (locality): the two measurements the paper backs with PCM
// hardware counters, reproduced with wall-clock time plus the library's
// software event counters (DESIGN.md §1 substitution):
//
//   1. k-core with the work-efficient histogram vs the fetch-and-add
//      baseline. Paper: histogram is 1.1-3.1x faster (3.5x on ClueWeb) and
//      slashes memory stalls; here we report times plus the number of
//      contended FA operations the baseline issues.
//   2. wBFS with edgeMapBlocked vs the unblocked sparse edgeMap. Paper:
//      blocked reads/writes 2.1x fewer bytes and is ~1.7x faster; here we
//      report times plus slots written per variant (the quantity that
//      drives the byte traffic).
#include <cstdio>

#include "algorithms/kcore.h"
#include "algorithms/wbfs.h"
#include "bench_common.h"
#include "parlib/counters.h"

int main() {
  std::printf("# bench_locality: Table 6 — contention & traffic ablations\n");
  auto& ctr = parlib::event_counters::global();
  auto suite = bench::make_suite();
  std::printf("%-14s %-26s %12s %16s %10s\n", "graph", "variant", "time(s)",
              "counter", "ratio");
  for (const auto& sg : suite) {
    // --- k-core: histogram vs fetch-and-add.
    ctr.reset();
    const double t_hist = bench::time_with_workers(
        parlib::num_workers(),
        [&] { gbbs::kcore(sg.sym, gbbs::kcore_variant::histogram); }, 2);
    // Read through snapshot(): consistent against a concurrent reset()
    // (not an issue in this single-threaded harness, but it keeps every
    // reader on the one sanctioned read path).
    const auto hist_calls = ctr.snapshot().histogram_calls;
    ctr.reset();
    const double t_fa = bench::time_with_workers(
        parlib::num_workers(),
        [&] { gbbs::kcore(sg.sym, gbbs::kcore_variant::fetch_and_add); }, 2);
    const auto fa_ops = ctr.snapshot().fetch_add_ops;
    std::printf("%-14s %-26s %12.4f %16llu %10s\n", sg.name.c_str(),
                "k-core (histogram)", t_hist,
                static_cast<unsigned long long>(hist_calls), "");
    std::printf("%-14s %-26s %12.4f %16llu %9.2fx\n", sg.name.c_str(),
                "k-core (fetch-and-add)", t_fa,
                static_cast<unsigned long long>(fa_ops), t_fa / t_hist);

    // --- wBFS: blocked vs unblocked sparse edgeMap (dense disabled inside
    // edge_map_data, which is sparse-only, so this isolates the two sparse
    // traversals exactly as the paper's experiment does).
    const gbbs::vertex_id src = sg.sym.num_vertices() / 2;
    ctr.reset();
    const double t_blocked = bench::time_with_workers(
        parlib::num_workers(),
        [&] { gbbs::wbfs(sg.sym_weighted, src, /*use_blocked=*/true); }, 2);
    const auto blocked_writes = ctr.snapshot().edgemap_slots_written;
    ctr.reset();
    const double t_plain = bench::time_with_workers(
        parlib::num_workers(),
        [&] { gbbs::wbfs(sg.sym_weighted, src, /*use_blocked=*/false); }, 2);
    const auto plain_writes = ctr.snapshot().edgemap_slots_written;
    std::printf("%-14s %-26s %12.4f %16llu %10s\n", sg.name.c_str(),
                "wBFS (blocked)", t_blocked,
                static_cast<unsigned long long>(blocked_writes), "");
    std::printf("%-14s %-26s %12.4f %16llu %9.2fx\n", sg.name.c_str(),
                "wBFS (unblocked)", t_plain,
                static_cast<unsigned long long>(plain_writes),
                t_plain / t_blocked);
    std::printf("%-14s %-26s %12s %15.2fx\n", sg.name.c_str(),
                "  slots written ratio", "",
                blocked_writes > 0
                    ? static_cast<double>(plain_writes) / blocked_writes
                    : 0.0);
    std::fflush(stdout);
  }
  return 0;
}
