// Internal ablations of Sections 4-6 (the claims Table 7's external
// comparisons contextualize; see DESIGN.md §1):
//   * MIS: rootset vs prefix-based        (paper: rootset 1.1-3.5x faster)
//   * MSF: filtered vs plain Boruvka      (paper: filtering wins, 1.2-2.9x
//                                          vs edgelist Boruvka)
//   * SCC: trimming/single-pivot on/off   (paper: both required to scale)
//   * Set cover: regenerated vs static priorities (paper: static is up to
//     56x slower on 3D-Torus because rounds stop making progress)
#include <cstdio>
#include <string>

#include "algorithms/baselines.h"
#include "algorithms/coloring.h"
#include "algorithms/connectivity.h"
#include "algorithms/delta_stepping.h"
#include "algorithms/mis.h"
#include "algorithms/msf.h"
#include "algorithms/scc.h"
#include "algorithms/set_cover.h"
#include "algorithms/wbfs.h"
#include "bench_common.h"

namespace {

void report(const std::string& graph, const std::string& what, double base,
            double variant) {
  std::printf("%-14s %-38s %10.4f %10.4f %8.2fx\n", graph.c_str(),
              what.c_str(), base, variant, variant / base);
  std::fflush(stdout);
}

gbbs::graph<gbbs::empty_weight> neighborhood_cover_instance(
    const gbbs::graph<gbbs::empty_weight>& g) {
  const gbbs::vertex_id n = g.num_vertices();
  auto flat = g.edges();
  std::vector<gbbs::edge<gbbs::empty_weight>> edges(flat.size() + n);
  parlib::parallel_for(0, flat.size(), [&](std::size_t i) {
    edges[i] = {flat[i].u, static_cast<gbbs::vertex_id>(n + flat[i].v), {}};
  });
  parlib::parallel_for(0, n, [&](std::size_t v) {
    edges[flat.size() + v] = {static_cast<gbbs::vertex_id>(v),
                              static_cast<gbbs::vertex_id>(n + v), {}};
  });
  return gbbs::build_symmetric_graph<gbbs::empty_weight>(2 * n,
                                                         std::move(edges));
}

}  // namespace

int main() {
  std::printf("# bench_ablations: Section 4-6 design-choice ablations\n");
  std::printf("%-14s %-38s %10s %10s %9s\n", "graph", "baseline vs variant",
              "base(s)", "var(s)", "var/base");
  const std::size_t P = parlib::num_workers();
  auto suite = bench::make_suite();

  for (const auto& sg : suite) {
    // MIS: rootset (base) vs prefix (variant).
    const double mis_root = bench::time_with_workers(
        P, [&] { gbbs::mis_rootset(sg.sym); }, 2);
    const double mis_pref = bench::time_with_workers(
        P, [&] { gbbs::mis_prefix(sg.sym); }, 2);
    report(sg.name, "MIS rootset vs prefix", mis_root, mis_pref);

    // MSF: filtered (base) vs plain edgelist Boruvka and vs the PBBS-style
    // sort+union-find Kruskal comparator.
    const double msf_filt = bench::time_with_workers(
        P, [&] { gbbs::msf(sg.sym_weighted, true); }, 2);
    const double msf_plain = bench::time_with_workers(
        P, [&] { gbbs::msf(sg.sym_weighted, false); }, 2);
    report(sg.name, "MSF filtered vs plain Boruvka", msf_filt, msf_plain);
    const double msf_kr = bench::time_with_workers(
        P, [&] { gbbs::msf_kruskal(sg.sym_weighted); }, 2);
    report(sg.name, "MSF filtered vs Kruskal(UF) baseline", msf_filt,
           msf_kr);

    // Connectivity: LDD+contract (base) vs concurrent union-find.
    const double cc_ldd = bench::time_with_workers(
        P, [&] { gbbs::connectivity(sg.sym); }, 2);
    const double cc_uf = bench::time_with_workers(
        P, [&] { gbbs::connectivity_union_find(sg.sym); }, 2);
    report(sg.name, "Connectivity LDD vs union-find", cc_ldd, cc_uf);

    // SSSP: bucketed wBFS (base) vs delta-stepping (the GAP comparator).
    const gbbs::vertex_id src = sg.sym.num_vertices() / 2;
    const double sssp_wbfs = bench::time_with_workers(
        P, [&] { gbbs::wbfs(sg.sym_weighted, src); }, 2);
    const double sssp_delta = bench::time_with_workers(
        P, [&] { gbbs::delta_stepping(sg.sym_weighted, src); }, 2);
    report(sg.name, "wBFS vs delta-stepping", sssp_wbfs, sssp_delta);

    // SCC: all optimizations (base) vs disabled (variants).
    const double scc_full = bench::time_with_workers(
        P, [&] { gbbs::scc(sg.dir); }, 2);
    {
      gbbs::scc_options o;
      o.trim = false;
      const double scc_notrim = bench::time_with_workers(
          P, [&] { gbbs::scc(sg.dir, o); }, 2);
      report(sg.name, "SCC with vs without trimming", scc_full, scc_notrim);
    }
    {
      gbbs::scc_options o;
      o.single_pivot = false;
      const double scc_nopivot = bench::time_with_workers(
          P, [&] { gbbs::scc(sg.dir, o); }, 2);
      report(sg.name, "SCC with vs without single-pivot", scc_full,
             scc_nopivot);
    }

    // Coloring: synchronous rounds (base) vs asynchronous activation
    // (variant). Paper: sync is 1.2-1.6x slower than async JP.
    const double col_sync = bench::time_with_workers(
        P, [&] { gbbs::color_graph(sg.sym); }, 2);
    const double col_async = bench::time_with_workers(
        P, [&] { gbbs::color_graph_async(sg.sym); }, 2);
    report(sg.name, "Coloring sync vs async JP", col_sync, col_async);

    // Set cover: regenerated (base) vs static priorities (variant). The
    // paper's pathology shows on symmetric/regular instances (3D-Torus).
    auto cover = neighborhood_cover_instance(sg.sym);
    gbbs::set_cover_result r_regen, r_static;
    const double sc_regen = bench::time_with_workers(
        P, [&] { r_regen = gbbs::set_cover(cover, sg.sym.num_vertices()); },
        1);
    gbbs::set_cover_options o;
    o.regenerate_priorities = false;
    const double sc_static = bench::time_with_workers(
        P,
        [&] {
          r_static = gbbs::set_cover(cover, sg.sym.num_vertices(), o);
        },
        1);
    report(sg.name, "SetCover regen vs static priorities", sc_regen,
           sc_static);
    std::printf("%-14s   (rounds: regen=%zu static=%zu)\n", sg.name.c_str(),
                r_regen.num_rounds, r_static.num_rounds);
  }
  return 0;
}
