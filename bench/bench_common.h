// Shared benchmark harness: timing, the benchmark graph suite (the DESIGN.md
// §1 substitutes for the paper's inputs), and the paper's (1) / (P) / (SU)
// row format.
//
// Scale: GBBS_BENCH_SCALE (default 16) sets the R-MAT vertex scale; all
// other graph sizes derive from it. At the default the whole bench suite
// runs in a few minutes on a 2-core host.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "graph/compression/compressed_graph.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "obs/stats.h"
#include "parlib/scheduler.h"

namespace bench {

inline std::uint32_t bench_scale() {
  if (const char* env = std::getenv("GBBS_BENCH_SCALE")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v >= 8 && v <= 26) return static_cast<std::uint32_t>(v);
  }
  return 16;
}

// Wall-clock of one run of f (seconds).
template <typename F>
double time_once(F&& f) {
  const auto start = std::chrono::steady_clock::now();
  f();
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(end - start).count();
}

// Best of `reps` runs (the paper reports single-run times on warm caches;
// best-of-k removes scheduler noise on a small host).
template <typename F>
double time_best(F&& f, int reps = 3) {
  double best = 1e30;
  for (int r = 0; r < reps; ++r) best = std::min(best, time_once(f));
  return best;
}

// ---- percentile / latency statistics -------------------------------------
// Shared by bench_serve, bench_dynamic, and tools/run_serve. The
// implementation lives in obs/stats.h — the same interpolation the obs
// histograms and the query engine's per-kind stats use — so there is one
// percentile definition across benches, tools, and the metrics registry.

using sample_stats = gbbs::obs::sample_stats;

inline double percentile(const std::vector<double>& sorted, double q) {
  return gbbs::obs::percentile(sorted, q);
}

inline sample_stats summarize(std::vector<double> samples) {
  return gbbs::obs::summarize(std::move(samples));
}

// ---- machine-readable results (-json <path>) ------------------------------
// Shared by bench_serve and bench_dynamic: emit one JSON document per run
// ({"bench": ..., "scale": ..., "workers": ..., "rows": [...]}) so the
// perf trajectory can be tracked as BENCH_*.json artifacts across PRs.

// One row: an ordered list of key -> scalar fields (insertion order is
// emission order). Values are doubles (%.6g) or strings.
class json_record {
 public:
  json_record& field(const std::string& k, double v) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    parts_.push_back("\"" + k + "\": " + buf);
    return *this;
  }
  json_record& field(const std::string& k, std::uint64_t v) {
    parts_.push_back("\"" + k + "\": " + std::to_string(v));
    return *this;
  }
  json_record& field(const std::string& k, const std::string& v) {
    parts_.push_back("\"" + k + "\": \"" + v + "\"");
    return *this;
  }
  std::string str() const {
    std::string out = "{";
    for (std::size_t i = 0; i < parts_.size(); ++i) {
      if (i > 0) out += ", ";
      out += parts_[i];
    }
    return out + "}";
  }

 private:
  std::vector<std::string> parts_;
};

inline bool write_json(const std::string& path, const std::string& bench,
                       const std::vector<json_record>& rows) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"scale\": %u,\n"
               "  \"workers\": %zu,\n  \"rows\": [\n",
               bench.c_str(), bench_scale(), parlib::num_workers());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    std::fprintf(f, "    %s%s\n", rows[i].str().c_str(),
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("json results -> %s\n", path.c_str());
  return true;
}

// The shared `-json <path>` flag (returns empty if absent).
inline std::string json_path_flag(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "-json") return argv[i + 1];
  }
  return {};
}

// Time f with exactly `workers` active workers.
template <typename F>
double time_with_workers(std::size_t workers, F&& f, int reps = 3) {
  parlib::active_workers_guard guard(workers);
  return time_best(f, reps);
}

// One row of a Table 2/4/5-style report.
struct row {
  std::string problem;
  double t1 = 0;  // single-thread time
  double tp = 0;  // all-core time
  double speedup() const { return tp > 0 ? t1 / tp : 0; }
};

inline void print_table_header(const std::string& graph_name,
                               std::uint64_t n, std::uint64_t m) {
  std::printf("\n== %s (n=%llu, m=%llu, workers=%zu) ==\n",
              graph_name.c_str(), static_cast<unsigned long long>(n),
              static_cast<unsigned long long>(m), parlib::num_workers());
  std::printf("%-42s %10s %10s %8s\n", "Problem", "(1)", "(P)", "(SU)");
}

inline void print_row(const row& r) {
  std::printf("%-42s %10.4f %10.4f %8.2f\n", r.problem.c_str(), r.t1, r.tp,
              r.speedup());
  std::fflush(stdout);
}

// Run `f` at 1 worker and at P workers, returning the row.
template <typename F>
row run_problem(const std::string& name, F&& f, int reps = 2) {
  row r;
  r.problem = name;
  r.t1 = time_with_workers(1, f, reps);
  r.tp = time_with_workers(parlib::num_workers(), f, reps);
  return r;
}

// ---- benchmark graph suite (DESIGN.md §1) --------------------------------

struct suite_graph {
  std::string name;
  std::string stands_for;  // which paper input this substitutes
  gbbs::graph<gbbs::empty_weight> sym;
  gbbs::graph<std::uint32_t> sym_weighted;
  gbbs::graph<gbbs::empty_weight> dir;
};

inline suite_graph make_rmat_small() {
  const std::uint32_t scale = bench_scale() - 2;
  const std::size_t m = std::size_t{12} << scale;
  suite_graph s;
  s.name = "rmat-small";
  s.stands_for = "LiveJournal-like (skewed, low diameter)";
  s.sym = gbbs::rmat_symmetric(scale, m, 101);
  s.sym_weighted = gbbs::rmat_symmetric_weighted(scale, m, 101);
  s.dir = gbbs::rmat_directed(scale, m, 101);
  return s;
}

inline suite_graph make_er() {
  const std::uint32_t scale = bench_scale() - 2;
  const gbbs::vertex_id n = gbbs::vertex_id{1} << scale;
  const std::size_t m = std::size_t{16} << scale;
  suite_graph s;
  s.name = "erdos-renyi";
  s.stands_for = "com-Orkut-like (uniform degrees)";
  auto edges = gbbs::erdos_renyi_edges(n, m, 103);
  s.sym = gbbs::build_symmetric_graph<gbbs::empty_weight>(n, edges);
  s.sym_weighted = gbbs::build_symmetric_graph<std::uint32_t>(
      n, gbbs::with_random_weights(edges, gbbs::weight_range(n), 5));
  s.dir = gbbs::build_asymmetric_graph<gbbs::empty_weight>(n, edges);
  return s;
}

inline suite_graph make_rmat_large() {
  const std::uint32_t scale = bench_scale();
  const std::size_t m = std::size_t{16} << scale;
  suite_graph s;
  s.name = "rmat-large";
  s.stands_for = "Twitter/Hyperlink-like (largest skewed input)";
  s.sym = gbbs::rmat_symmetric(scale, m, 107);
  s.sym_weighted = gbbs::rmat_symmetric_weighted(scale, m, 107);
  s.dir = gbbs::rmat_directed(scale, m, 107);
  return s;
}

inline suite_graph make_torus() {
  const gbbs::vertex_id side =
      static_cast<gbbs::vertex_id>(1u << (bench_scale() / 3 + 1));
  suite_graph s;
  s.name = "3d-torus";
  s.stands_for = "3D-Torus (high diameter, regular)";
  s.sym = gbbs::torus3d_symmetric(side);
  s.sym_weighted = gbbs::torus3d_symmetric_weighted(side, 7);
  // Directed torus: the +1 edges only, as a directed graph.
  s.dir = gbbs::build_asymmetric_graph<gbbs::empty_weight>(
      side * side * side, gbbs::torus3d_edges(side));
  return s;
}

inline std::vector<suite_graph> make_suite() {
  std::vector<suite_graph> suite;
  suite.push_back(make_rmat_small());
  suite.push_back(make_er());
  suite.push_back(make_rmat_large());
  suite.push_back(make_torus());
  return suite;
}

}  // namespace bench
