// Tables 3 and 8-13: the graph-inventory row (n, m, effective diameter,
// rho, kmax) and the full per-graph statistics block (component counts and
// largest sizes, triangles, colors under LF/LLF, MIS/MM/set-cover sizes).
#include <cstdio>

#include "algorithms/set_cover.h"
#include "algorithms/stats.h"
#include "bench_common.h"

namespace {

gbbs::graph<gbbs::empty_weight> neighborhood_cover_instance(
    const gbbs::graph<gbbs::empty_weight>& g) {
  const gbbs::vertex_id n = g.num_vertices();
  auto flat = g.edges();
  std::vector<gbbs::edge<gbbs::empty_weight>> edges(flat.size() + n);
  parlib::parallel_for(0, flat.size(), [&](std::size_t i) {
    edges[i] = {flat[i].u, static_cast<gbbs::vertex_id>(n + flat[i].v), {}};
  });
  parlib::parallel_for(0, n, [&](std::size_t v) {
    edges[flat.size() + v] = {static_cast<gbbs::vertex_id>(v),
                              static_cast<gbbs::vertex_id>(n + v), {}};
  });
  return gbbs::build_symmetric_graph<gbbs::empty_weight>(2 * n,
                                                         std::move(edges));
}

}  // namespace

int main() {
  std::printf("# bench_stats: Table 3 inventory + Tables 8-13 statistics\n");
  auto suite = bench::make_suite();

  std::printf("\n-- Table 3: graph inputs --\n");
  std::printf("%-14s %12s %14s %8s %8s %8s\n", "graph", "vertices",
              "edges(sym)", "diam*", "rho", "kmax");
  std::vector<gbbs::graph_statistics> stats;
  for (const auto& sg : suite) {
    auto s = gbbs::compute_statistics(sg.sym);
    gbbs::add_directed_statistics(sg.dir, s);
    std::printf("%-14s %12llu %14llu %8u %8zu %8u\n", sg.name.c_str(),
                static_cast<unsigned long long>(s.num_vertices),
                static_cast<unsigned long long>(s.num_edges),
                s.effective_diameter, s.rho, s.kmax);
    std::fflush(stdout);
    stats.push_back(s);
  }

  std::printf("\n-- Tables 8-13: per-graph statistics --\n");
  for (std::size_t i = 0; i < suite.size(); ++i) {
    const auto& sg = suite[i];
    const auto& s = stats[i];
    auto cover = neighborhood_cover_instance(sg.sym);
    auto sc = gbbs::set_cover(cover, sg.sym.num_vertices());
    std::printf("\n[%s]  (stands for: %s)\n", sg.name.c_str(),
                sg.stands_for.c_str());
    std::printf("  Num. Vertices                        %llu\n",
                static_cast<unsigned long long>(s.num_vertices));
    std::printf("  Num. Undirected Edges                %llu\n",
                static_cast<unsigned long long>(s.num_edges));
    std::printf("  Effective Undirected Diameter        %u\n",
                s.effective_diameter);
    std::printf("  Num. Connected Components            %zu\n", s.num_cc);
    std::printf("  Num. Biconnected Components          %zu\n", s.num_bicc);
    std::printf("  Num. Strongly Connected Components   %zu\n", s.num_scc);
    std::printf("  Size of Largest Connected Component  %zu\n", s.largest_cc);
    std::printf("  Size of Largest SCC                  %zu\n",
                s.largest_scc);
    std::printf("  Num. Triangles                       %llu\n",
                static_cast<unsigned long long>(s.num_triangles));
    std::printf("  Num. Colors Used by LF               %u\n", s.colors_lf);
    std::printf("  Num. Colors Used by LLF              %u\n", s.colors_llf);
    std::printf("  Maximal Independent Set Size         %zu\n", s.mis_size);
    std::printf("  Maximal Matching Size                %zu\n",
                s.matching_size);
    std::printf("  Set Cover Size                       %zu\n",
                sc.cover.size());
    std::printf("  kmax (Degeneracy)                    %u\n", s.kmax);
    std::printf("  rho (Num. Peeling Rounds in k-core)  %zu\n", s.rho);
    std::fflush(stdout);
  }
  return 0;
}
