// Figure 1: normalized throughput (edges/second at P workers) versus number
// of vertices for MIS, BFS, BC, and graph coloring on the 3D-torus family.
//
// Shape to compare against the paper: throughput saturates as the graph
// grows, and at a fixed large size the algorithms order by their depth on
// the torus — coloring >= MIS >= BFS >= BC (coloring saturates earliest,
// BC latest, since diam-bounded algorithms pay the torus's large diameter).
#include <cstdio>
#include <vector>

#include "algorithms/betweenness.h"
#include "algorithms/bfs.h"
#include "algorithms/coloring.h"
#include "algorithms/mis.h"
#include "bench_common.h"

int main() {
  std::printf(
      "# bench_figure1: throughput (edges/sec, P workers) vs torus size\n");
  std::printf("%10s %12s %14s %14s %14s %14s\n", "side", "vertices", "MIS",
              "BFS", "BC", "Coloring");
  const std::uint32_t max_side = 4 + (bench::bench_scale() - 8) * 4;
  for (std::uint32_t side = 8; side <= max_side; side += 8) {
    auto g = gbbs::torus3d_symmetric(side);
    const double m = static_cast<double>(g.num_edges());
    const double t_mis =
        bench::time_with_workers(parlib::num_workers(),
                                 [&] { gbbs::mis_rootset(g); });
    const double t_bfs = bench::time_with_workers(
        parlib::num_workers(), [&] { gbbs::bfs(g, 0); });
    const double t_bc = bench::time_with_workers(
        parlib::num_workers(), [&] { gbbs::betweenness(g, 0); });
    const double t_col = bench::time_with_workers(
        parlib::num_workers(), [&] { gbbs::color_graph(g); });
    std::printf("%10u %12llu %14.3e %14.3e %14.3e %14.3e\n", side,
                static_cast<unsigned long long>(g.num_vertices()), m / t_mis,
                m / t_bfs, m / t_bc, m / t_col);
    std::fflush(stdout);
  }
  return 0;
}
