// Ligra+ compression claims (Sections 1, 6 and B): space per edge of the
// parallel-byte format vs CSR (paper: <1.5 bytes/edge on the crawls vs
// ~4+ for CSR), and the running-time cost/benefit of operating on the
// compressed representation for a traversal-bound (BFS), a
// contraction-bound (connectivity), and an intersection-bound (TC) problem.
#include <cstdio>

#include "algorithms/bfs.h"
#include "algorithms/connectivity.h"
#include "algorithms/triangle.h"
#include "bench_common.h"

int main() {
  std::printf("# bench_compression: parallel-byte format vs CSR\n");
  std::printf("%-14s %14s %14s %10s %10s %10s\n", "graph", "csr B/edge",
              "comp B/edge", "BFS", "CC", "TC");
  const std::size_t P = parlib::num_workers();
  auto suite = bench::make_suite();
  for (const auto& sg : suite) {
    auto cg = gbbs::compressed_graph<gbbs::empty_weight>::compress(sg.sym);
    auto ng =
        gbbs::nibble_compressed_graph<gbbs::empty_weight>::compress(sg.sym);
    const double csr_bpe =
        static_cast<double>(sg.sym.size_in_bytes()) / sg.sym.num_edges();
    const double comp_bpe =
        static_cast<double>(cg.size_in_bytes()) / sg.sym.num_edges();
    const double nib_bpe =
        static_cast<double>(ng.size_in_bytes()) / sg.sym.num_edges();

    const gbbs::vertex_id src = sg.sym.num_vertices() / 2;
    const double bfs_u = bench::time_with_workers(
        P, [&] { gbbs::bfs(sg.sym, src); });
    const double bfs_c =
        bench::time_with_workers(P, [&] { gbbs::bfs(cg, src); });
    const double cc_u = bench::time_with_workers(
        P, [&] { gbbs::connectivity(sg.sym); });
    const double cc_c =
        bench::time_with_workers(P, [&] { gbbs::connectivity(cg); });
    const double tc_u = bench::time_with_workers(
        P, [&] { gbbs::triangle_count(sg.sym); }, 1);
    const double tc_c =
        bench::time_with_workers(P, [&] { gbbs::triangle_count(cg); }, 1);

    std::printf("%-14s %14.3f %14.3f   (nibble: %.3f)\n", sg.name.c_str(),
                csr_bpe, comp_bpe, nib_bpe);
    std::printf("%-14s   uncompressed times(s):        %10.4f %10.4f %10.4f\n",
                "", bfs_u, cc_u, tc_u);
    std::printf("%-14s   compressed times(s):          %10.4f %10.4f %10.4f\n",
                "", bfs_c, cc_c, tc_c);
    std::printf("%-14s   compressed/uncompressed:      %9.2fx %9.2fx %9.2fx\n",
                "", bfs_c / bfs_u, cc_c / cc_u, tc_c / tc_u);
    std::fflush(stdout);
  }
  return 0;
}
