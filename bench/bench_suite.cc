// Tables 2, 4 and 5: running times of all 15 benchmark problems over the
// graph suite, at 1 worker and at P workers, in the paper's
// (1) / (P) / (SU) row format. Pass --compressed (or set GBBS_COMPRESSED=1)
// to run the traversal problems on parallel-byte compressed graphs
// (Table 5's configuration); default is uncompressed CSR (Tables 2/4).
//
// Shapes to compare against the paper (not absolute numbers): BFS is the
// cheapest problem; LDD costs about a BFS; connectivity a few times LDD;
// biconnectivity ~3-5x connectivity; SCC between 1.6x faster and ~5x slower
// than connectivity; TC is the most expensive; speedups are positive
// everywhere and saturate near the host's core count.
#include <cstring>
#include <string>

#include "algorithms/bellman_ford.h"
#include "algorithms/betweenness.h"
#include "algorithms/bfs.h"
#include "algorithms/biconnectivity.h"
#include "algorithms/coloring.h"
#include "algorithms/connectivity.h"
#include "algorithms/kcore.h"
#include "algorithms/ldd.h"
#include "algorithms/maximal_matching.h"
#include "algorithms/mis.h"
#include "algorithms/msf.h"
#include "algorithms/scc.h"
#include "algorithms/set_cover.h"
#include "algorithms/triangle.h"
#include "algorithms/wbfs.h"
#include "bench_common.h"

namespace {

using gbbs::vertex_id;

// Set-cover instance from a symmetric graph: sets are closed vertex
// neighborhoods (the formulation used for the paper's statistics tables).
gbbs::graph<gbbs::empty_weight> neighborhood_cover_instance(
    const gbbs::graph<gbbs::empty_weight>& g) {
  const vertex_id n = g.num_vertices();
  auto flat = g.edges();
  std::vector<gbbs::edge<gbbs::empty_weight>> edges(flat.size() + n);
  parlib::parallel_for(0, flat.size(), [&](std::size_t i) {
    edges[i] = {flat[i].u, static_cast<vertex_id>(n + flat[i].v), {}};
  });
  parlib::parallel_for(0, n, [&](std::size_t v) {
    edges[flat.size() + v] = {static_cast<vertex_id>(v),
                              static_cast<vertex_id>(n + v), {}};
  });
  return gbbs::build_symmetric_graph<gbbs::empty_weight>(2 * n,
                                                         std::move(edges));
}

template <typename Sym, typename SymW, typename Dir>
void run_graph(const std::string& name, const Sym& sym, const SymW& symw,
               const Dir& dir,
               const gbbs::graph<gbbs::empty_weight>& cover_instance,
               vertex_id cover_sets) {
  bench::print_table_header(name, sym.num_vertices(), sym.num_edges());
  const vertex_id src = sym.num_vertices() / 2;

  bench::print_row(bench::run_problem("Breadth-First Search (BFS)", [&] {
    gbbs::bfs(sym, src);
  }));
  bench::print_row(
      bench::run_problem("Integral-Weight SSSP (weighted BFS)", [&] {
        gbbs::wbfs(symw, src);
      }));
  bench::print_row(
      bench::run_problem("General-Weight SSSP (Bellman-Ford)", [&] {
        gbbs::bellman_ford(symw, src);
      }));
  bench::print_row(
      bench::run_problem("Single-Source Betweenness Centrality (BC)", [&] {
        gbbs::betweenness(sym, src);
      }));
  bench::print_row(
      bench::run_problem("Low-Diameter Decomposition (LDD)", [&] {
        gbbs::ldd(sym, 0.2);
      }));
  bench::print_row(bench::run_problem("Connectivity", [&] {
    gbbs::connectivity(sym);
  }));
  bench::print_row(bench::run_problem("Biconnectivity", [&] {
    gbbs::biconnectivity(sym);
  }));
  bench::print_row(
      bench::run_problem("Strongly Connected Components (SCC)*", [&] {
        gbbs::scc(dir);
      }));
  bench::print_row(bench::run_problem("Minimum Spanning Forest (MSF)", [&] {
    gbbs::msf(symw);
  }));
  bench::print_row(
      bench::run_problem("Maximal Independent Set (MIS)", [&] {
        gbbs::mis_rootset(sym);
      }));
  bench::print_row(bench::run_problem("Maximal Matching (MM)", [&] {
    gbbs::maximal_matching(sym);
  }));
  bench::print_row(bench::run_problem("Graph Coloring", [&] {
    gbbs::color_graph(sym);
  }));
  bench::print_row(bench::run_problem("k-core", [&] { gbbs::kcore(sym); }));
  bench::print_row(bench::run_problem("Approximate Set Cover", [&] {
    gbbs::set_cover(cover_instance, cover_sets);
  }));
  bench::print_row(bench::run_problem("Triangle Counting (TC)", [&] {
    gbbs::triangle_count(sym);
  }));
}

}  // namespace

int main(int argc, char** argv) {
  bool compressed = std::getenv("GBBS_COMPRESSED") != nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--compressed") == 0) compressed = true;
  }
  std::printf("# bench_suite: Tables 2/4%s — all problems, (1)/(P)/(SU)\n",
              compressed ? "/5 [compressed parallel-byte format]" : "");
  auto suite = bench::make_suite();
  for (const auto& sg : suite) {
    auto cover = neighborhood_cover_instance(sg.sym);
    const vertex_id cover_sets = sg.sym.num_vertices();
    std::printf("\n# %s stands for: %s\n", sg.name.c_str(),
                sg.stands_for.c_str());
    if (compressed) {
      auto csym =
          gbbs::compressed_graph<gbbs::empty_weight>::compress(sg.sym);
      auto csymw =
          gbbs::compressed_graph<std::uint32_t>::compress(sg.sym_weighted);
      auto cdir =
          gbbs::compressed_graph<gbbs::empty_weight>::compress(sg.dir);
      std::printf("# compressed: %.3f bytes/edge (CSR: %.3f)\n",
                  static_cast<double>(csym.size_in_bytes()) /
                      sg.sym.num_edges(),
                  static_cast<double>(sg.sym.size_in_bytes()) /
                      sg.sym.num_edges());
      run_graph(sg.name + " [compressed]", csym, csymw, cdir, cover,
                cover_sets);
    } else {
      run_graph(sg.name, sg.sym, sg.sym_weighted, sg.dir, cover, cover_sets);
    }
  }
  return 0;
}
