// Serving throughput of the snapshot subsystem: query throughput, tail
// latency, and publish latency as a function of ingest batch size and
// reader count — plus the delta-proportional-publish check: publish
// latency at a fixed batch size measured at two graph scales must be
// independent of |V| + |E| (publish is O(delta): shared-base handles +
// overlay index, no merged-CSR build — see serve/snapshot_manager.h).
//
// For each (batch, readers) configuration the same R-MAT edge stream is
// ingested by a writer thread (publish per batch, registered as an
// external scheduler worker) while a closed-loop generator keeps
// `readers` query threads saturated with the standard mixed workload
// (make_mixed_query) served with the fresh overlay path + adaptive
// stale-routing. Each row also records where scheduler forks landed
// (per-reader deques vs deque 0) and how many analytics the stale policy
// routed to the memoized merged CSR.
// Reported per row: ingest rate (Me/s, wall-clock of the writer),
// completed queries/s, p50/p99 query latency, and p50 publish latency.
//
// -json <path> emits the whole run as machine-readable rows (tracked as
// BENCH_serve.json across PRs).
#include <array>
#include <atomic>
#include <cstdio>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "dynamic/stream.h"
#include "robust/failpoint.h"
#include "serve/query.h"
#include "serve/query_engine.h"
#include "serve/read_set.h"
#include "serve/result_cache.h"
#include "serve/sharded_ingest.h"
#include "serve/snapshot_manager.h"

namespace {

using gbbs::empty_weight;
using gbbs::vertex_id;
using gbbs::serve::query_result;

using engine_kind_stats = std::array<
    gbbs::serve::query_engine<empty_weight>::kind_stats,
    gbbs::serve::kNumQueryKinds>;

struct serve_result {
  double writer_s = 0;   // wall time of the ingest+publish loop
  double wall_s = 0;     // wall time of the whole run (ingest + drain)
  std::size_t queries = 0;
  bench::sample_stats latency;
  bench::sample_stats publish_latency;
  engine_kind_stats kinds{};  // per-query-kind latency accounting
  // Scheduler participation: forks the registered reader threads placed
  // on their own deques; forks that landed on deque 0 during the run —
  // expected 0, since the writer forks onto its own external slot and the
  // main thread (worker 0) only submits and blocks, so a non-zero value
  // signals a registration failure; analytics the adaptive stale policy
  // routed to the memoized merged CSR.
  std::uint64_t reader_forks = 0;
  std::uint64_t deque0_forks = 0;
  std::uint64_t stale_auto_routes = 0;
};

serve_result run_config(const std::vector<gbbs::edge<empty_weight>>& edges,
                        vertex_id n, std::size_t batch_size,
                        std::size_t readers) {
  gbbs::serve::snapshot_manager<empty_weight> mgr(n);
  serve_result res;
  std::vector<double> latencies;
  std::vector<double> publish_s;
  const std::uint64_t deque0_before =
      parlib::scheduler::instance().push_count(0);
  res.wall_s = bench::time_once([&] {
    // Adaptive stale-routing on: the serving-layer default-best config —
    // repeat analytics on an unchanged version hit the memoized merged
    // CSR once the merge amortizes.
    gbbs::serve::query_engine_options opts;
    opts.stale_auto = true;
    gbbs::serve::query_engine<empty_weight> engine(
        mgr.store(), &mgr.overlay(), readers, opts);
    std::atomic<bool> writer_done{false};
    std::thread writer([&] {
      // Registered external worker: ingest-internal parallel_for forks
      // onto this thread's own deque instead of running sequentially.
      parlib::worker_guard wg;
      gbbs::dynamic::edge_stream<empty_weight> stream(edges);
      res.writer_s = bench::time_once([&] {
        while (!stream.done()) {
          mgr.ingest(stream.next_inserts(batch_size));
          publish_s.push_back(bench::time_once([&] { mgr.publish(); }));
        }
      });
      writer_done.store(true, std::memory_order_release);
    });

    // Closed-loop load generator: windows of in-flight queries, refilled
    // until the writer finishes, so the readers stay saturated for the
    // whole ingest phase.
    const std::size_t window = 64 * readers;
    parlib::random rng(17);
    std::size_t qi = 0;
    std::vector<std::future<query_result>> inflight;
    inflight.reserve(window);
    while (!writer_done.load(std::memory_order_acquire)) {
      inflight.clear();
      for (std::size_t k = 0; k < window; ++k, ++qi) {
        inflight.push_back(
            engine.submit(gbbs::serve::make_mixed_query(rng, qi, n)));
      }
      for (auto& f : inflight) latencies.push_back(f.get().latency_s);
    }
    writer.join();
    engine.drain();
    res.kinds = engine.latency_by_kind();
    res.reader_forks = engine.reader_forks();
    res.stale_auto_routes = engine.stale_auto_routed();
  });
  res.deque0_forks =
      parlib::scheduler::instance().push_count(0) - deque0_before;
  res.queries = latencies.size();
  res.latency = bench::summarize(std::move(latencies));
  res.publish_latency = bench::summarize(std::move(publish_s));
  return res;
}

// The acceptance measurement: replay fixed-size insert batches
// (publish per batch) on top of an already-published seed graph of
// `scale`, and report per-publish latency. Delta-proportional publish
// means these numbers do not grow with the seed's |V| + |E|.
struct publish_sweep_result {
  vertex_id n = 0;
  gbbs::edge_id m = 0;
  bench::sample_stats publish_latency;
  bench::sample_stats ingest_latency;
};

publish_sweep_result run_publish_sweep(std::uint32_t scale,
                                       std::size_t batch_size,
                                       std::size_t num_batches) {
  const std::size_t m = std::size_t{12} << scale;
  auto seed = gbbs::rmat_symmetric(scale, m, 211);
  publish_sweep_result res;
  res.n = seed.num_vertices();
  res.m = seed.num_edges();
  const vertex_id n = seed.num_vertices();
  gbbs::serve::snapshot_manager<empty_weight> mgr(std::move(seed));
  parlib::random rng(99);
  std::vector<double> publish_s, ingest_s;
  std::size_t k = 0;
  // Warm up past the transient where random inserts still merge many of
  // the seed's components (merge volume is a property of the workload,
  // not of publish); then measure steady-state serving.
  const std::size_t warmup = 8;
  for (std::size_t b = 0; b < warmup + num_batches; ++b) {
    std::vector<gbbs::dynamic::update<empty_weight>> raw;
    raw.reserve(batch_size);
    for (std::size_t i = 0; i < batch_size; ++i, ++k) {
      raw.push_back({static_cast<vertex_id>(rng.ith_rand(2 * k) % n),
                     static_cast<vertex_id>(rng.ith_rand(2 * k + 1) % n),
                     {},
                     gbbs::dynamic::update_op::insert});
    }
    const double ing =
        bench::time_once([&] { mgr.ingest(std::move(raw)); });
    const double pub = bench::time_once([&] { mgr.publish(); });
    if (b >= warmup) {
      ingest_s.push_back(ing);
      publish_s.push_back(pub);
    }
  }
  res.publish_latency = bench::summarize(std::move(publish_s));
  res.ingest_latency = bench::summarize(std::move(ingest_s));
  return res;
}

// Overload sweep (the robustness acceptance row): an open-loop burst far
// above service capacity against a bounded queue with the brownout
// ladder armed and probabilistic execution-delay fault injection, the
// analytics share carrying deadlines. The gated metric is the point-read
// p99 — under overload it must stay bounded (queue cap + shedding keep
// the tail finite) while analytics are degraded / shed / timed out; the
// count fields record how the ladder absorbed the burst.
struct overload_result {
  double wall_s = 0;
  bench::sample_stats point_latency;  // ok point reads only
  std::size_t point_ok = 0;
  std::size_t analytics_ok = 0;
  std::size_t rejected = 0;
  std::uint64_t shed = 0;
  std::uint64_t timed_out = 0;
  std::uint64_t degraded = 0;
  std::uint64_t transitions = 0;
};

overload_result run_overload(gbbs::graph<empty_weight> seed,
                             std::size_t num_queries) {
  const vertex_id n = seed.num_vertices();
  gbbs::serve::snapshot_manager<empty_weight> mgr(std::move(seed));
  // One ingest+publish so the fresh overlay index exists (and covers the
  // published head exactly): the brownout degraded path routes analytics
  // from the overlay to the published merged CSR at staleness 0.
  {
    parlib::random seed_rng(5);
    std::vector<gbbs::dynamic::update<empty_weight>> ups;
    for (std::size_t i = 0; i < 512; ++i) {
      ups.push_back({static_cast<vertex_id>(seed_rng.ith_rand(2 * i) % n),
                     static_cast<vertex_id>(seed_rng.ith_rand(2 * i + 1) % n),
                     {},
                     gbbs::dynamic::update_op::insert});
    }
    mgr.ingest(std::move(ups));
    mgr.publish();
  }
  auto& freg = gbbs::robust::registry::instance();
  freg.reset();
  freg.set_seed(7);
  // 5% of executed queries stall 5ms — deterministic in (seed, hit index),
  // so the run is reproducible across invocations.
  freg.configure("serve.exec.delay",
                 gbbs::robust::failpoint_mode::probability, 0.05, 0, 5000);

  overload_result res;
  std::vector<double> point_lat;
  res.wall_s = bench::time_once([&] {
    gbbs::serve::query_engine_options opts;
    opts.max_queue = 128;
    opts.brownout = true;
    gbbs::serve::query_engine<empty_weight> engine(
        mgr.store(), &mgr.overlay(), /*num_readers=*/2, opts);
    parlib::random rng(23);
    std::vector<std::future<query_result>> futs;
    futs.reserve(num_queries);
    for (std::size_t i = 0; i < num_queries; ++i) {
      gbbs::serve::query q;
      if (i % 4 == 3) {
        q = {gbbs::serve::query_kind::bfs_distance,
             static_cast<vertex_id>(rng.ith_rand(2 * i) % n),
             static_cast<vertex_id>(rng.ith_rand(2 * i + 1) % n)};
        q.priority = gbbs::serve::query_priority::low;
        q.deadline_s = 0.010;
      } else {
        q = {gbbs::serve::query_kind::degree,
             static_cast<vertex_id>(rng.ith_rand(2 * i) % n), 0};
      }
      futs.push_back(engine.submit(q));
    }
    for (std::size_t i = 0; i < futs.size(); ++i) {
      const auto r = futs[i].get();
      switch (r.status) {
        case gbbs::serve::query_status::ok:
          if (i % 4 == 3) {
            ++res.analytics_ok;
          } else {
            ++res.point_ok;
            point_lat.push_back(r.latency_s);
          }
          break;
        case gbbs::serve::query_status::rejected:
          ++res.rejected;
          break;
        default:
          break;  // timed_out / cancelled counted via the engine below
      }
    }
    res.shed = engine.shed();
    res.timed_out = engine.timed_out();
    res.degraded = engine.degraded_served();
    res.transitions = engine.degrade_transitions();
  });
  freg.reset();
  res.point_latency = bench::summarize(std::move(point_lat));
  return res;
}

// Cached analytics: repeated whole-traversal queries under a zipfian
// working set, answered from the bucket-keyed result cache after the
// first evaluation. Hit-path latency (lookup + read-set freshness check)
// vs miss-path latency (a full bfs) is the acceptance gap; the precision
// booleans counter-verify that a batch touching the query's read-set
// invalidates the entry while a bucket-disjoint batch provably does not.
struct cached_analytics_result {
  double wall_s = 0;
  std::size_t hit_count = 0, miss_count = 0;
  bench::sample_stats hit_latency, miss_latency;
  bool disjoint_kept_hit = false;
  bool touch_invalidated = false;
};

cached_analytics_result run_cached_analytics(
    const std::vector<gbbs::edge<empty_weight>>& edges, vertex_id n,
    std::size_t distinct, std::size_t samples) {
  gbbs::serve::snapshot_manager<empty_weight> mgr(n);
  gbbs::serve::result_cache cache;
  mgr.attach_cache(&cache);  // before the first ingest
  // Ingest the whole stream up front: the latency measurement runs on a
  // settled graph; invalidation behavior is probed explicitly below.
  {
    gbbs::dynamic::edge_stream<empty_weight> stream(edges);
    while (!stream.done()) {
      mgr.ingest(stream.next_inserts(8192));
      mgr.publish();
    }
  }
  cached_analytics_result res;
  std::vector<double> hit_lat, miss_lat;
  gbbs::serve::query_engine_options opts;
  opts.cache = &cache;
  gbbs::serve::query_engine<empty_weight> engine(mgr.store(), &mgr.overlay(),
                                                 /*num_readers=*/2, opts);
  // Fixed working set of bfs queries with a zipfian-ish skew (cube of a
  // uniform variate), so a few of them dominate — the repeat-heavy mix a
  // result cache exists for. Queries run one at a time, so the hits
  // counter delta around each classifies it as hit- or miss-path.
  parlib::random rng(43);
  std::vector<gbbs::serve::query> qs;
  for (std::size_t i = 0; i < distinct; ++i) {
    qs.push_back({gbbs::serve::query_kind::bfs_distance,
                  static_cast<vertex_id>(rng.ith_rand(2 * i) % n),
                  static_cast<vertex_id>(rng.ith_rand(2 * i + 1) % n)});
  }
  res.wall_s = bench::time_once([&] {
    for (std::size_t i = 0; i < samples; ++i) {
      const double z =
          static_cast<double>(rng.ith_rand(1000 + i) % 100000) / 100000.0;
      std::size_t idx =
          static_cast<std::size_t>(z * z * z * static_cast<double>(distinct));
      if (idx >= distinct) idx = distinct - 1;
      const std::uint64_t h0 = cache.hits();
      const auto r = engine.submit(qs[idx]).get();
      if (r.status != gbbs::serve::query_status::ok) continue;
      if (cache.hits() > h0) {
        hit_lat.push_back(r.latency_s);
      } else {
        miss_lat.push_back(r.latency_s);
      }
    }
  });

  // Invalidation precision, counter-verified on a point read whose
  // read-set is exactly {bucket(u)}: a bucket-disjoint batch must keep
  // the entry hot; a batch touching u's bucket must evict it.
  const vertex_id a = qs[0].u;
  const gbbs::serve::query qa{gbbs::serve::query_kind::degree, a, 0};
  (void)engine.submit(qa).get();  // prime: the entry is cached after this
  vertex_id w = (a + 1) % n;
  while (gbbs::serve::cache_bucket_of(w) == gbbs::serve::cache_bucket_of(a)) {
    w = (w + 1) % n;
  }
  vertex_id y = (w + 1) % n;
  while (gbbs::serve::cache_bucket_of(y) == gbbs::serve::cache_bucket_of(a)) {
    y = (y + 1) % n;
  }
  auto ingest_pair = [&](vertex_id s, vertex_id t) {
    std::vector<gbbs::dynamic::update<empty_weight>> ups;
    ups.push_back({s, t, {}, gbbs::dynamic::update_op::insert});
    mgr.ingest(std::move(ups));
    mgr.publish();
  };
  ingest_pair(w, y);  // mirrored batch touches buckets of w and y only
  {
    const std::uint64_t h0 = cache.hits();
    const std::uint64_t inv0 = cache.invalidations();
    (void)engine.submit(qa).get();
    res.disjoint_kept_hit =
        cache.hits() == h0 + 1 && cache.invalidations() == inv0;
  }
  ingest_pair(a, w);  // touches bucket(a): must evict the entry
  {
    const std::uint64_t m0 = cache.misses();
    const std::uint64_t inv0 = cache.invalidations();
    (void)engine.submit(qa).get();
    res.touch_invalidated =
        cache.misses() == m0 + 1 && cache.invalidations() == inv0 + 1;
  }
  res.hit_count = hit_lat.size();
  res.miss_count = miss_lat.size();
  res.hit_latency = bench::summarize(std::move(hit_lat));
  res.miss_latency = bench::summarize(std::move(miss_lat));
  return res;
}

// Sharded point reads: the same stream ingested through the multi-writer
// sharded path while reader threads issue degree/neighbors queries that
// the engine routes to the owning shard's seqlock overlay (shard-apply
// freshness — no composite pin on the point-read path).
struct sharded_serve_result {
  double writer_s = 0;
  double wall_s = 0;
  std::size_t queries = 0;
  bench::sample_stats latency;
};

sharded_serve_result run_sharded_points(
    const std::vector<gbbs::edge<empty_weight>>& edges, vertex_id n,
    std::size_t batch_size, std::size_t shards, std::size_t readers) {
  gbbs::serve::sharded_snapshot_manager<empty_weight> mgr(
      n, {.num_shards = shards});
  sharded_serve_result res;
  std::vector<double> latencies;
  res.wall_s = bench::time_once([&] {
    gbbs::serve::query_engine<empty_weight> engine(
        mgr.store(), mgr.router(), readers);
    std::atomic<bool> writer_done{false};
    std::thread writer([&] {
      parlib::worker_guard wg;
      gbbs::dynamic::edge_stream<empty_weight> stream(edges);
      res.writer_s = bench::time_once([&] {
        while (!stream.done()) {
          mgr.ingest(stream.next_inserts(batch_size));
          mgr.publish();
        }
        mgr.flush();
      });
      writer_done.store(true, std::memory_order_release);
    });
    const std::size_t window = 64 * readers;
    parlib::random rng(31);
    std::size_t qi = 0;
    std::vector<std::future<query_result>> inflight;
    inflight.reserve(window);
    while (!writer_done.load(std::memory_order_acquire)) {
      inflight.clear();
      for (std::size_t k = 0; k < window; ++k, ++qi) {
        gbbs::serve::query q;
        q.kind = (qi & 1) ? gbbs::serve::query_kind::neighbors
                          : gbbs::serve::query_kind::degree;
        q.u = static_cast<vertex_id>(rng.ith_rand(qi) % n);
        inflight.push_back(engine.submit(q));
      }
      for (auto& f : inflight) latencies.push_back(f.get().latency_s);
    }
    writer.join();
    engine.drain();
  });
  res.queries = latencies.size();
  res.latency = bench::summarize(std::move(latencies));
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = bench::json_path_flag(argc, argv);
  std::vector<bench::json_record> rows;

  const std::uint32_t scale = bench::bench_scale() - 4;
  const std::size_t m = std::size_t{12} << scale;
  auto g = gbbs::rmat_symmetric(scale, m, 101);
  auto edges = gbbs::dynamic::undirected_stream_edges(g);
  const vertex_id n = g.num_vertices();
  const double medges = static_cast<double>(edges.size()) / 1e6;

  std::printf(
      "== snapshot serving (n=%u, %zu streamed edges, workers=%zu) ==\n", n,
      edges.size(), parlib::num_workers());
  std::printf("%-10s %-8s %12s %12s %10s %10s %10s\n", "batch", "readers",
              "ingest Me/s", "queries/s", "p50(ms)", "p99(ms)", "pub p50(ms)");
  for (std::size_t batch_size :
       {std::size_t{1} << 10, std::size_t{1} << 13, std::size_t{1} << 16}) {
    for (std::size_t readers : {std::size_t{1}, std::size_t{2},
                                std::size_t{4}, std::size_t{8}}) {
      const auto r = run_config(edges, n, batch_size, readers);
      std::printf("%-10zu %-8zu %12.2f %12.0f %10.3f %10.3f %10.3f\n",
                  batch_size, readers, medges / r.writer_s,
                  static_cast<double>(r.queries) / r.wall_s,
                  r.latency.p50 * 1e3, r.latency.p99 * 1e3,
                  r.publish_latency.p50 * 1e3);
      std::fflush(stdout);
      rows.push_back(bench::json_record()
                         .field("section", std::string("sweep"))
                         .field("batch", batch_size)
                         .field("readers", readers)
                         .field("ingest_meps", medges / r.writer_s)
                         .field("queries_per_s",
                                static_cast<double>(r.queries) / r.wall_s)
                         .field("query_p50_ms", r.latency.p50 * 1e3)
                         .field("query_p99_ms", r.latency.p99 * 1e3)
                         .field("publish_p50_ms",
                                r.publish_latency.p50 * 1e3)
                         .field("publish_p99_ms",
                                r.publish_latency.p99 * 1e3)
                         .field("reader_forks", r.reader_forks)
                         .field("deque0_forks", r.deque0_forks)
                         .field("stale_auto_routes", r.stale_auto_routes));
      // Per-kind latency rows: the SLO-accounting numbers the CI smoke
      // step watches for per-kind regressions.
      for (std::size_t k = 0; k < gbbs::serve::kNumQueryKinds; ++k) {
        const auto& ks = r.kinds[k];
        if (ks.count == 0) continue;
        rows.push_back(
            bench::json_record()
                .field("section", std::string("kind_latency"))
                .field("batch", batch_size)
                .field("readers", readers)
                .field("kind",
                       std::string(gbbs::serve::query_kind_name(
                           static_cast<gbbs::serve::query_kind>(k))))
                .field("count", static_cast<std::uint64_t>(ks.count))
                .field("p50_ms", ks.p50_s * 1e3)
                .field("p99_ms", ks.p99_s * 1e3)
                .field("max_ms", ks.max_s * 1e3)
                // Stage decomposition (obs histograms): end-to-end =
                // queue wait + view selection + execute.
                .field("queue_p50_ms", ks.queue_p50_s * 1e3)
                .field("queue_p99_ms", ks.queue_p99_s * 1e3)
                .field("exec_p50_ms", ks.exec_p50_s * 1e3)
                .field("exec_p99_ms", ks.exec_p99_s * 1e3));
      }
    }
  }

  // Sharded point reads: owner-shard overlay routing under concurrent
  // multi-writer ingest (1/2/4 shards at a fixed batch and reader count).
  std::printf(
      "\n== sharded point reads (batch=8192, readers=2, "
      "publish-per-batch) ==\n");
  std::printf("%-8s %12s %12s %10s %10s\n", "shards", "ingest Me/s",
              "queries/s", "p50(ms)", "p99(ms)");
  for (std::size_t shards : {std::size_t{1}, std::size_t{2},
                             std::size_t{4}}) {
    const auto r = run_sharded_points(edges, n, /*batch_size=*/8192, shards,
                                      /*readers=*/2);
    std::printf("%-8zu %12.2f %12.0f %10.3f %10.3f\n", shards,
                medges / r.writer_s,
                static_cast<double>(r.queries) / r.wall_s,
                r.latency.p50 * 1e3, r.latency.p99 * 1e3);
    std::fflush(stdout);
    rows.push_back(bench::json_record()
                       .field("section", std::string("sharded_point_read"))
                       .field("shards", shards)
                       .field("batch", std::size_t{8192})
                       .field("readers", std::size_t{2})
                       .field("ingest_meps", medges / r.writer_s)
                       .field("queries_per_s",
                              static_cast<double>(r.queries) / r.wall_s)
                       .field("point_p50_ms", r.latency.p50 * 1e3)
                       .field("point_p99_ms", r.latency.p99 * 1e3));
  }

  // Publish latency vs graph scale at fixed batch size: flat across the
  // ~16x |V|+|E| gap = publish is O(delta), not O(graph).
  const std::size_t fixed_batch = 4096;
  const std::size_t num_batches = 24;
  std::printf(
      "\n== publish latency vs graph scale (batch=%zu, publish-per-batch) "
      "==\n",
      fixed_batch);
  std::printf("%-12s %-12s %-12s %12s %12s %12s\n", "scale", "n", "m",
              "pub p50(ms)", "pub p99(ms)", "ingest p50(ms)");
  for (std::uint32_t s : {bench::bench_scale() - 6, bench::bench_scale() - 2}) {
    const auto r = run_publish_sweep(s, fixed_batch, num_batches);
    std::printf("%-12u %-12u %-12llu %12.3f %12.3f %12.3f\n", s, r.n,
                static_cast<unsigned long long>(r.m),
                r.publish_latency.p50 * 1e3, r.publish_latency.p99 * 1e3,
                r.ingest_latency.p50 * 1e3);
    std::fflush(stdout);
    rows.push_back(bench::json_record()
                       .field("section", std::string("publish_sweep"))
                       .field("scale", std::uint64_t{s})
                       .field("n", std::uint64_t{r.n})
                       .field("m", static_cast<std::uint64_t>(r.m))
                       .field("batch", fixed_batch)
                       .field("publish_p50_ms",
                              r.publish_latency.p50 * 1e3)
                       .field("publish_p99_ms",
                              r.publish_latency.p99 * 1e3)
                       .field("ingest_p50_ms", r.ingest_latency.p50 * 1e3));
  }

  // Cached analytics: the result-cache perf acceptance — repeated bfs
  // queries under a zipfian working set; the hit-path median must be an
  // order of magnitude under the miss path (gated on hit_p50_ms).
  const std::size_t ca_distinct = 64;
  const std::size_t ca_samples = 2000;
  std::printf(
      "\n== cached analytics (bfs, zipfian working set of %zu, %zu samples) "
      "==\n",
      ca_distinct, ca_samples);
  const auto c = run_cached_analytics(edges, n, ca_distinct, ca_samples);
  const double ca_total =
      static_cast<double>(c.hit_count + c.miss_count);
  const double ca_hit_ratio =
      ca_total > 0 ? static_cast<double>(c.hit_count) / ca_total : 0.0;
  const double ca_speedup = c.hit_latency.p50 > 0
                                ? c.miss_latency.p50 / c.hit_latency.p50
                                : 0.0;
  std::printf(
      "hits=%zu misses=%zu hit-ratio=%.3f | hit p50=%.4fms p99=%.4fms | "
      "miss p50=%.3fms p99=%.3fms | p50 speedup=%.1fx | "
      "disjoint-kept-hit=%d touch-invalidated=%d\n",
      c.hit_count, c.miss_count, ca_hit_ratio, c.hit_latency.p50 * 1e3,
      c.hit_latency.p99 * 1e3, c.miss_latency.p50 * 1e3,
      c.miss_latency.p99 * 1e3, ca_speedup,
      c.disjoint_kept_hit ? 1 : 0, c.touch_invalidated ? 1 : 0);
  rows.push_back(bench::json_record()
                     .field("section", std::string("cached_analytics"))
                     .field("distinct", ca_distinct)
                     .field("samples", ca_samples)
                     .field("hit_count", c.hit_count)
                     .field("miss_count", c.miss_count)
                     .field("hit_ratio", ca_hit_ratio)
                     .field("hit_p50_ms", c.hit_latency.p50 * 1e3)
                     .field("hit_p99_ms", c.hit_latency.p99 * 1e3)
                     .field("miss_p50_ms", c.miss_latency.p50 * 1e3)
                     .field("miss_p99_ms", c.miss_latency.p99 * 1e3)
                     .field("speedup_p50", ca_speedup)
                     .field("disjoint_kept_hit",
                            std::uint64_t{c.disjoint_kept_hit ? 1u : 0u})
                     .field("touch_invalidated",
                            std::uint64_t{c.touch_invalidated ? 1u : 0u}));

  // Overload: offered load >> capacity, bounded queue + brownout +
  // deadlines + injected execution delays. Point-read p99 is the gated
  // number; the counts show the ladder absorbing the burst.
  const std::size_t overload_queries = 20000;
  std::printf(
      "\n== overload (open-loop burst, max_queue=128, brownout, "
      "exec-delay p:0.05:5000) ==\n");
  const auto o = run_overload(std::move(g), overload_queries);
  std::printf(
      "%zu queries in %.2fs: point ok=%zu p50=%.3fms p99=%.3fms | "
      "analytics ok=%zu degraded=%llu | shed=%llu timed_out=%llu "
      "rejected=%zu transitions=%llu\n",
      overload_queries, o.wall_s, o.point_ok, o.point_latency.p50 * 1e3,
      o.point_latency.p99 * 1e3, o.analytics_ok,
      static_cast<unsigned long long>(o.degraded),
      static_cast<unsigned long long>(o.shed),
      static_cast<unsigned long long>(o.timed_out), o.rejected,
      static_cast<unsigned long long>(o.transitions));
  rows.push_back(bench::json_record()
                     .field("section", std::string("overload"))
                     .field("queries", overload_queries)
                     .field("point_ok", o.point_ok)
                     .field("point_p50_ms", o.point_latency.p50 * 1e3)
                     .field("point_p99_ms", o.point_latency.p99 * 1e3)
                     .field("analytics_ok", o.analytics_ok)
                     .field("degraded", o.degraded)
                     .field("shed", o.shed)
                     .field("timed_out", o.timed_out)
                     .field("rejected_count", o.rejected)
                     .field("degrade_transitions", o.transitions));

  if (!json_path.empty()) bench::write_json(json_path, "bench_serve", rows);
  return 0;
}
