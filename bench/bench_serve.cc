// Serving throughput of the snapshot subsystem: query throughput and tail
// latency as a function of ingest batch size and reader count.
//
// For each (batch, readers) configuration the same R-MAT edge stream is
// ingested by a writer thread (publish + hand-off compaction per batch)
// while a closed-loop generator keeps `readers` query threads saturated
// with the standard mixed workload (make_mixed_query). Reported per row:
// ingest rate (Me/s, wall-clock of the writer), completed queries/s, and
// p50/p99 query latency in milliseconds.
#include <atomic>
#include <cstdio>
#include <future>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "dynamic/stream.h"
#include "serve/query.h"
#include "serve/query_engine.h"
#include "serve/snapshot_manager.h"

namespace {

using gbbs::empty_weight;
using gbbs::vertex_id;
using gbbs::serve::query_result;

struct serve_result {
  double writer_s = 0;   // wall time of the ingest+publish loop
  double wall_s = 0;     // wall time of the whole run (ingest + drain)
  std::size_t queries = 0;
  bench::sample_stats latency;
};

serve_result run_config(const std::vector<gbbs::edge<empty_weight>>& edges,
                        vertex_id n, std::size_t batch_size,
                        std::size_t readers) {
  gbbs::serve::snapshot_manager<empty_weight> mgr(n);
  serve_result res;
  std::vector<double> latencies;
  res.wall_s = bench::time_once([&] {
    gbbs::serve::query_engine<empty_weight> engine(mgr.store(), readers);
    std::atomic<bool> writer_done{false};
    std::thread writer([&] {
      gbbs::dynamic::edge_stream<empty_weight> stream(edges);
      res.writer_s = bench::time_once([&] {
        while (!stream.done()) {
          mgr.ingest(stream.next_inserts(batch_size));
          mgr.publish();
        }
      });
      writer_done.store(true, std::memory_order_release);
    });

    // Closed-loop load generator: windows of in-flight queries, refilled
    // until the writer finishes, so the readers stay saturated for the
    // whole ingest phase.
    const std::size_t window = 64 * readers;
    parlib::random rng(17);
    std::size_t qi = 0;
    std::vector<std::future<query_result>> inflight;
    inflight.reserve(window);
    while (!writer_done.load(std::memory_order_acquire)) {
      inflight.clear();
      for (std::size_t k = 0; k < window; ++k, ++qi) {
        inflight.push_back(
            engine.submit(gbbs::serve::make_mixed_query(rng, qi, n)));
      }
      for (auto& f : inflight) latencies.push_back(f.get().latency_s);
    }
    writer.join();
    engine.drain();
  });
  res.queries = latencies.size();
  res.latency = bench::summarize(std::move(latencies));
  return res;
}

}  // namespace

int main() {
  const std::uint32_t scale = bench::bench_scale() - 4;
  const std::size_t m = std::size_t{12} << scale;
  auto g = gbbs::rmat_symmetric(scale, m, 101);
  auto edges = gbbs::dynamic::undirected_stream_edges(g);
  const vertex_id n = g.num_vertices();
  const double medges = static_cast<double>(edges.size()) / 1e6;

  std::printf(
      "== snapshot serving (n=%u, %zu streamed edges, workers=%zu) ==\n", n,
      edges.size(), parlib::num_workers());
  std::printf("%-10s %-8s %12s %12s %10s %10s\n", "batch", "readers",
              "ingest Me/s", "queries/s", "p50(ms)", "p99(ms)");
  for (std::size_t batch_size :
       {std::size_t{1} << 10, std::size_t{1} << 13, std::size_t{1} << 16}) {
    for (std::size_t readers : {std::size_t{1}, std::size_t{2},
                                std::size_t{4}, std::size_t{8}}) {
      const auto r = run_config(edges, n, batch_size, readers);
      std::printf("%-10zu %-8zu %12.2f %12.0f %10.3f %10.3f\n", batch_size,
                  readers, medges / r.writer_s,
                  static_cast<double>(r.queries) / r.wall_s,
                  r.latency.p50 * 1e3, r.latency.p99 * 1e3);
      std::fflush(stdout);
    }
  }
  return 0;
}
