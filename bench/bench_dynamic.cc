// Ingest throughput of the batch-dynamic subsystem vs. batch size.
//
// For each batch size the same R-MAT edge stream is replayed three ways:
//   ingest       — dynamic_graph::apply only (normalize + delta merge);
//   ingest+cc    — apply plus incremental connectivity per batch;
//   +compact     — one compact() at stream end (amortized per edge).
// Reported as medges/s over the raw update count, single-run (the stream
// is consumed once per measurement), plus the final static-rebuild
// baseline build_symmetric_graph for reference.
//
// -json <path> emits the whole run as machine-readable rows (tracked as
// BENCH_dynamic.json across PRs).
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "dynamic/dynamic_graph.h"
#include "dynamic/incremental_connectivity.h"
#include "dynamic/stream.h"
#include "graph/graph_builder.h"

namespace {

using gbbs::empty_weight;
using gbbs::vertex_id;

struct ingest_result {
  double apply_s = 0;
  double cc_s = 0;
  double compact_s = 0;
  bench::sample_stats batch_latency;  // per-batch apply+cc latency
};

ingest_result replay(const std::vector<gbbs::edge<empty_weight>>& edges,
                     vertex_id n, std::size_t batch_size) {
  gbbs::dynamic::edge_stream<empty_weight> stream(edges);
  gbbs::dynamic::dynamic_unweighted_graph dg(n);
  gbbs::dynamic::incremental_connectivity cc(n);
  ingest_result r;
  std::vector<double> batch_s;
  while (!stream.done()) {
    auto raw = stream.next_inserts(batch_size);
    gbbs::dynamic::update_batch<empty_weight> batch;
    const double apply = bench::time_once(
        [&] { batch = dg.apply(std::move(raw)); });
    const double cc_t = bench::time_once([&] { cc.apply(batch, dg); });
    r.apply_s += apply;
    r.cc_s += cc_t;
    batch_s.push_back(apply + cc_t);
  }
  r.compact_s = bench::time_once([&] { dg.compact(); });
  r.batch_latency = bench::summarize(std::move(batch_s));
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = bench::json_path_flag(argc, argv);
  std::vector<bench::json_record> rows;
  const std::uint32_t scale = bench::bench_scale() - 2;
  const std::size_t m = std::size_t{12} << scale;
  auto g = gbbs::rmat_symmetric(scale, m, 101);
  auto edges = gbbs::dynamic::undirected_stream_edges(g);
  const vertex_id n = g.num_vertices();
  const double medges = static_cast<double>(edges.size()) / 1e6;

  std::printf("== dynamic ingest (n=%u, %zu streamed edges, workers=%zu) ==\n",
              n, edges.size(), parlib::num_workers());
  std::printf("%-12s %12s %12s %12s %12s %10s %10s\n", "batch",
              "ingest Me/s", "ingest+cc", "+compact", "compact(s)",
              "p50(ms)", "p99(ms)");
  for (std::size_t batch_size :
       {std::size_t{1} << 10, std::size_t{1} << 13, std::size_t{1} << 16,
        std::size_t{1} << 19}) {
    const auto r = replay(edges, n, batch_size);
    const double ingest = medges / r.apply_s;
    const double with_cc = medges / (r.apply_s + r.cc_s);
    const double with_compact =
        medges / (r.apply_s + r.cc_s + r.compact_s);
    std::printf("%-12zu %12.2f %12.2f %12.2f %12.4f %10.3f %10.3f\n",
                batch_size, ingest, with_cc, with_compact, r.compact_s,
                r.batch_latency.p50 * 1e3, r.batch_latency.p99 * 1e3);
    std::fflush(stdout);
    rows.push_back(bench::json_record()
                       .field("section", std::string("ingest"))
                       .field("batch", batch_size)
                       .field("ingest_meps", ingest)
                       .field("ingest_cc_meps", with_cc)
                       .field("ingest_cc_compact_meps", with_compact)
                       .field("compact_s", r.compact_s)
                       .field("batch_p50_ms", r.batch_latency.p50 * 1e3)
                       .field("batch_p99_ms", r.batch_latency.p99 * 1e3));
  }
  const double rebuild_s = bench::time_best([&] {
    auto rebuilt = gbbs::build_symmetric_graph<empty_weight>(n, edges);
    (void)rebuilt;
  });
  std::printf("static rebuild baseline: %.4f s (%.2f Me/s)\n", rebuild_s,
              medges / rebuild_s);
  rows.push_back(bench::json_record()
                     .field("section", std::string("rebuild_baseline"))
                     .field("rebuild_s", rebuild_s)
                     .field("rebuild_meps", medges / rebuild_s));
  if (!json_path.empty()) bench::write_json(json_path, "bench_dynamic", rows);
  return 0;
}
