// Ingest throughput of the batch-dynamic subsystem vs. batch size.
//
// For each batch size the same R-MAT edge stream is replayed three ways:
//   ingest       — dynamic_graph::apply only (normalize + delta merge);
//   ingest+cc    — apply plus incremental connectivity per batch;
//   +compact     — one compact() at stream end (amortized per edge).
// Reported as medges/s over the raw update count, single-run (the stream
// is consumed once per measurement), plus the final static-rebuild
// baseline build_symmetric_graph for reference.
//
// The `ingest_scaling` section sweeps batch size x shard count through
// the multi-writer sharded ingest path (serve/sharded_ingest.h): the
// same stream is normalized once per batch, split by vertex ownership,
// and applied by N concurrent shard writers under the composite version
// clock (publish per batch, flush at stream end). apply Me/s is the
// end-to-end rate over the raw update count; speedup is relative to the
// 1-shard row at the same batch size. On a single-core host the sweep
// degenerates to context-switching overhead — the speedup column is only
// meaningful when workers > 1.
//
// -json <path> emits the whole run as machine-readable rows (tracked as
// BENCH_dynamic.json across PRs).
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench_common.h"
#include "dynamic/dynamic_graph.h"
#include "dynamic/incremental_connectivity.h"
#include "dynamic/stream.h"
#include "graph/graph_builder.h"
#include "serve/sharded_ingest.h"

namespace {

using gbbs::empty_weight;
using gbbs::vertex_id;

struct ingest_result {
  double apply_s = 0;
  double cc_s = 0;
  double compact_s = 0;
  bench::sample_stats batch_latency;  // per-batch apply+cc latency
};

ingest_result replay(const std::vector<gbbs::edge<empty_weight>>& edges,
                     vertex_id n, std::size_t batch_size) {
  gbbs::dynamic::edge_stream<empty_weight> stream(edges);
  gbbs::dynamic::dynamic_unweighted_graph dg(n);
  gbbs::dynamic::incremental_connectivity cc(n);
  ingest_result r;
  std::vector<double> batch_s;
  while (!stream.done()) {
    auto raw = stream.next_inserts(batch_size);
    gbbs::dynamic::update_batch<empty_weight> batch;
    const double apply = bench::time_once(
        [&] { batch = dg.apply(std::move(raw)); });
    const double cc_t = bench::time_once([&] { cc.apply(batch, dg); });
    r.apply_s += apply;
    r.cc_s += cc_t;
    batch_s.push_back(apply + cc_t);
  }
  r.compact_s = bench::time_once([&] { dg.compact(); });
  r.batch_latency = bench::summarize(std::move(batch_s));
  return r;
}

struct scaling_result {
  double wall_s = 0;  // ingest loop through the final flush
  bench::sample_stats ingest_latency;  // coordinator-side ingest() calls
  std::uint64_t clock = 0;             // composite versions published
};

scaling_result replay_sharded(const std::vector<gbbs::edge<empty_weight>>& edges,
                              vertex_id n, std::size_t batch_size,
                              std::size_t shards) {
  gbbs::dynamic::edge_stream<empty_weight> stream(edges);
  gbbs::serve::sharded_snapshot_manager<empty_weight> mgr(
      n, {.num_shards = shards});
  scaling_result r;
  std::vector<double> ingest_s;
  r.wall_s = bench::time_once([&] {
    while (!stream.done()) {
      auto raw = stream.next_inserts(batch_size);
      ingest_s.push_back(
          bench::time_once([&] { mgr.ingest(std::move(raw)); }));
      mgr.publish();  // never waits: publishes the clock's current minimum
    }
    mgr.flush();
  });
  r.clock = mgr.composite_clock();
  r.ingest_latency = bench::summarize(std::move(ingest_s));
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = bench::json_path_flag(argc, argv);
  std::vector<bench::json_record> rows;
  const std::uint32_t scale = bench::bench_scale() - 2;
  const std::size_t m = std::size_t{12} << scale;
  auto g = gbbs::rmat_symmetric(scale, m, 101);
  auto edges = gbbs::dynamic::undirected_stream_edges(g);
  const vertex_id n = g.num_vertices();
  const double medges = static_cast<double>(edges.size()) / 1e6;

  std::printf("== dynamic ingest (n=%u, %zu streamed edges, workers=%zu) ==\n",
              n, edges.size(), parlib::num_workers());
  std::printf("%-12s %12s %12s %12s %12s %10s %10s\n", "batch",
              "ingest Me/s", "ingest+cc", "+compact", "compact(s)",
              "p50(ms)", "p99(ms)");
  for (std::size_t batch_size :
       {std::size_t{1} << 10, std::size_t{1} << 13, std::size_t{1} << 16,
        std::size_t{1} << 19}) {
    const auto r = replay(edges, n, batch_size);
    const double ingest = medges / r.apply_s;
    const double with_cc = medges / (r.apply_s + r.cc_s);
    const double with_compact =
        medges / (r.apply_s + r.cc_s + r.compact_s);
    std::printf("%-12zu %12.2f %12.2f %12.2f %12.4f %10.3f %10.3f\n",
                batch_size, ingest, with_cc, with_compact, r.compact_s,
                r.batch_latency.p50 * 1e3, r.batch_latency.p99 * 1e3);
    std::fflush(stdout);
    rows.push_back(bench::json_record()
                       .field("section", std::string("ingest"))
                       .field("batch", batch_size)
                       .field("ingest_meps", ingest)
                       .field("ingest_cc_meps", with_cc)
                       .field("ingest_cc_compact_meps", with_compact)
                       .field("compact_s", r.compact_s)
                       .field("batch_p50_ms", r.batch_latency.p50 * 1e3)
                       .field("batch_p99_ms", r.batch_latency.p99 * 1e3));
  }
  // Sharded ingest scaling: batch size x shard count, end-to-end
  // (normalize + split + N concurrent shard applies + composite publish).
  std::printf(
      "\n== sharded ingest scaling (publish-per-batch + final flush) ==\n");
  std::printf("%-12s %-8s %12s %12s %12s %12s\n", "batch", "shards",
              "apply Me/s", "speedup", "ing p50(ms)", "ing p99(ms)");
  std::map<std::size_t, double> one_shard_wall;
  for (std::size_t batch_size :
       {std::size_t{1} << 13, std::size_t{1} << 16}) {
    for (std::size_t shards :
         {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
      const auto r = replay_sharded(edges, n, batch_size, shards);
      if (shards == 1) one_shard_wall[batch_size] = r.wall_s;
      const double meps = medges / r.wall_s;
      const double speedup = one_shard_wall[batch_size] / r.wall_s;
      std::printf("%-12zu %-8zu %12.2f %12.2f %12.3f %12.3f\n", batch_size,
                  shards, meps, speedup, r.ingest_latency.p50 * 1e3,
                  r.ingest_latency.p99 * 1e3);
      std::fflush(stdout);
      rows.push_back(bench::json_record()
                         .field("section", std::string("ingest_scaling"))
                         .field("batch", batch_size)
                         .field("shards", shards)
                         .field("apply_meps", meps)
                         .field("speedup_vs_1shard", speedup)
                         .field("versions", r.clock)
                         .field("ingest_p50_ms",
                                r.ingest_latency.p50 * 1e3)
                         .field("ingest_p99_ms",
                                r.ingest_latency.p99 * 1e3));
    }
  }

  const double rebuild_s = bench::time_best([&] {
    auto rebuilt = gbbs::build_symmetric_graph<empty_weight>(n, edges);
    (void)rebuilt;
  });
  std::printf("static rebuild baseline: %.4f s (%.2f Me/s)\n", rebuild_s,
              medges / rebuild_s);
  rows.push_back(bench::json_record()
                     .field("section", std::string("rebuild_baseline"))
                     .field("rebuild_s", rebuild_s)
                     .field("rebuild_meps", medges / rebuild_s));
  if (!json_path.empty()) bench::write_json(json_path, "bench_dynamic", rows);
  return 0;
}
