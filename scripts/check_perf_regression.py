#!/usr/bin/env python3
"""CI perf-regression gate: compare a freshly generated BENCH json against
the committed baseline and fail only on *large, systemic* regressions.

Usage:
    check_perf_regression.py <baseline.json> <fresh.json> [--factor 2.0]

For every (section, metric) group — metrics are the latency-like fields:
anything named *_p99_ms, *_p99_s, ns_per_*, emit_ns_*, fork_ns_*, plus
the result-cache hit-path median (hit_p50_ms) — the
gate collects the metric across all sweep rows of that section and
compares the *medians*: fresh median worse than baseline median * factor
fails. Throughput fields (*_meps: higher is better) are gated in the
opposite direction — fresh median below baseline median / factor fails —
but only when both files record the same bench scale, since a smaller
smoke run legitimately sustains lower rates.

Medians-across-rows rather than row-by-row is deliberate: a real
regression (a lock landed on the hot path, an O(n) crept into publish)
shifts the whole distribution, while an individual row's p99 on a busy
or oversubscribed host is a scheduling lottery — measured run-to-run
wobble on single rows exceeds 5x on the same binary, but the per-section
medians stay within tens of percent. The 2x default factor keeps the
gate generous on top of that (shared CI runners are noisy and the
committed baselines come from a different machine entirely); watch the
archived artifacts for finer trends.

Tiny absolute medians (< 50 us / 5 ns) are skipped outright: they sit at
timer-resolution level where any ratio is meaningless. Sections or
metrics present on only one side are ignored — the gate only compares
what both sides have.
"""

import json
import statistics
import sys


# Metric-name predicates: higher-is-worse latencies the gate watches.
def is_gated_metric(name):
    return (
        name.endswith("_p99_ms")
        or name.endswith("_p99_s")
        or name.startswith("ns_per_")
        or name.startswith("emit_ns_")
        or name.startswith("fork_ns_")
        # The result-cache hit path (lookup + read-set freshness check) is
        # gated at its median: the whole point of the cache is that hits
        # cost microseconds, so a regression here is a hot-path lock or a
        # freshness check gone O(entries).
        or name == "hit_p50_ms"
        or is_throughput_metric(name)
    )


# Higher-is-better rates (Medges/s): gated in the opposite direction.
def is_throughput_metric(name):
    return name.endswith("_meps")


# Below these absolute values, a ratio says nothing (timer noise).
MIN_ABS = {"ms": 0.05, "s": 5e-5, "ns": 5.0}

# Per-metric floor overrides, for metrics whose healthy values sit below
# the generic unit floor: the cache hit path is single-digit
# microseconds by design, so it gets a 10us floor instead of the 50us
# one — a hot-path lock or an O(entries) freshness check blows well past
# 2x of that, while runner noise on a hash-and-compare stays under it.
MIN_ABS_OVERRIDE = {"hit_p50_ms": 0.01}


def unit_of(name):
    if name.endswith("_ms"):
        return "ms"
    if name.endswith("_s"):
        return "s"
    return "ns"


def load_groups(path):
    """({(section, metric): [values across rows]}, bench scale or None)"""
    with open(path) as f:
        doc = json.load(f)
    groups = {}
    for row in doc.get("rows", []):
        section = row.get("section", "")
        for name, val in row.items():
            if is_gated_metric(name) and isinstance(val, (int, float)):
                groups.setdefault((section, name), []).append(val)
    return groups, doc.get("scale")


def main(argv):
    if len(argv) < 3:
        print(__doc__)
        return 2
    baseline_path, fresh_path = argv[1], argv[2]
    factor = 2.0
    if "--factor" in argv:
        factor = float(argv[argv.index("--factor") + 1])

    baseline, base_scale = load_groups(baseline_path)
    fresh, fresh_scale = load_groups(fresh_path)
    # Throughput ratios only mean something at matched problem size: a
    # smaller CI smoke run (GBBS_BENCH_SCALE) legitimately sustains lower
    # rates than the committed default-scale baseline, while its
    # *latencies* only get faster — so cross-scale runs keep the latency
    # gates and drop the throughput ones.
    same_scale = base_scale is not None and base_scale == fresh_scale
    if not same_scale:
        print(
            f"perf gate: scale mismatch (baseline {base_scale}, "
            f"fresh {fresh_scale}) — throughput (*_meps) gates skipped"
        )

    compared = 0
    failures = []
    for (section, name), fresh_vals in sorted(fresh.items()):
        base_vals = baseline.get((section, name))
        if not base_vals:
            continue  # new measurement: nothing to regress against
        base_med = statistics.median(base_vals)
        fresh_med = statistics.median(fresh_vals)
        if is_throughput_metric(name):
            # Higher is better; no timer-resolution floor applies to a
            # rate, so gate directly on the ratio of medians.
            if not same_scale:
                continue
            compared += 1
            if fresh_med < base_med / factor:
                failures.append(
                    f"  {section} :: {name}: median {fresh_med:.6g} "
                    f"(over {len(fresh_vals)} rows) < baseline median "
                    f"{base_med:.6g} (over {len(base_vals)} rows) "
                    f"/ {factor:g}"
                )
            continue
        floor = MIN_ABS_OVERRIDE.get(name, MIN_ABS[unit_of(name)])
        if base_med < floor and fresh_med < floor:
            continue  # both at timer-resolution level
        compared += 1
        limit = max(base_med * factor, floor * factor)
        if fresh_med > limit:
            failures.append(
                f"  {section} :: {name}: median {fresh_med:.6g} "
                f"(over {len(fresh_vals)} rows) > {factor:g}x baseline "
                f"median {base_med:.6g} (over {len(base_vals)} rows)"
            )

    print(
        f"perf gate: {compared} per-section metric medians compared "
        f"against {baseline_path} (allowed factor {factor:g}x)"
    )
    if failures:
        print(f"REGRESSIONS ({len(failures)}):")
        print("\n".join(failures))
        return 1
    print("perf gate: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
