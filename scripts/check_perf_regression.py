#!/usr/bin/env python3
"""CI perf-regression gate: compare a freshly generated BENCH json against
the committed baseline and fail only on *large, systemic* regressions.

Usage:
    check_perf_regression.py <baseline.json> <fresh.json> [--factor 2.0]

For every (section, metric) group — metrics are the latency-like fields:
anything named *_p99_ms, *_p99_s, ns_per_*, emit_ns_*, fork_ns_* — the
gate collects the metric across all sweep rows of that section and
compares the *medians*: fresh median worse than baseline median * factor
fails.

Medians-across-rows rather than row-by-row is deliberate: a real
regression (a lock landed on the hot path, an O(n) crept into publish)
shifts the whole distribution, while an individual row's p99 on a busy
or oversubscribed host is a scheduling lottery — measured run-to-run
wobble on single rows exceeds 5x on the same binary, but the per-section
medians stay within tens of percent. The 2x default factor keeps the
gate generous on top of that (shared CI runners are noisy and the
committed baselines come from a different machine entirely); watch the
archived artifacts for finer trends.

Tiny absolute medians (< 50 us / 5 ns) are skipped outright: they sit at
timer-resolution level where any ratio is meaningless. Sections or
metrics present on only one side are ignored — the gate only compares
what both sides have.
"""

import json
import statistics
import sys


# Metric-name predicates: higher-is-worse latencies the gate watches.
def is_gated_metric(name):
    return (
        name.endswith("_p99_ms")
        or name.endswith("_p99_s")
        or name.startswith("ns_per_")
        or name.startswith("emit_ns_")
        or name.startswith("fork_ns_")
    )


# Below these absolute values, a ratio says nothing (timer noise).
MIN_ABS = {"ms": 0.05, "s": 5e-5, "ns": 5.0}


def unit_of(name):
    if name.endswith("_ms"):
        return "ms"
    if name.endswith("_s"):
        return "s"
    return "ns"


def load_groups(path):
    """{(section, metric): [values across rows]}"""
    with open(path) as f:
        doc = json.load(f)
    groups = {}
    for row in doc.get("rows", []):
        section = row.get("section", "")
        for name, val in row.items():
            if is_gated_metric(name) and isinstance(val, (int, float)):
                groups.setdefault((section, name), []).append(val)
    return groups


def main(argv):
    if len(argv) < 3:
        print(__doc__)
        return 2
    baseline_path, fresh_path = argv[1], argv[2]
    factor = 2.0
    if "--factor" in argv:
        factor = float(argv[argv.index("--factor") + 1])

    baseline = load_groups(baseline_path)
    fresh = load_groups(fresh_path)

    compared = 0
    failures = []
    for (section, name), fresh_vals in sorted(fresh.items()):
        base_vals = baseline.get((section, name))
        if not base_vals:
            continue  # new measurement: nothing to regress against
        base_med = statistics.median(base_vals)
        fresh_med = statistics.median(fresh_vals)
        floor = MIN_ABS[unit_of(name)]
        if base_med < floor and fresh_med < floor:
            continue  # both at timer-resolution level
        compared += 1
        limit = max(base_med * factor, floor * factor)
        if fresh_med > limit:
            failures.append(
                f"  {section} :: {name}: median {fresh_med:.6g} "
                f"(over {len(fresh_vals)} rows) > {factor:g}x baseline "
                f"median {base_med:.6g} (over {len(base_vals)} rows)"
            )

    print(
        f"perf gate: {compared} per-section metric medians compared "
        f"against {baseline_path} (allowed factor {factor:g}x)"
    )
    if failures:
        print(f"REGRESSIONS ({len(failures)}):")
        print("\n".join(failures))
        return 1
    print("perf gate: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
