// Maximal independent set runner: ./run_mis -g rmat:16
#include "algorithms/mis.h"
#include "runner.h"
#include "seq/reference.h"

int main(int argc, char** argv) {
  auto o = tools::parse(argc, argv);
  auto g = tools::load_symmetric(o);
  std::printf("n=%u m=%llu\n", g.num_vertices(),
              static_cast<unsigned long long>(g.num_edges()));
  tools::run_rounds("MIS", o, [&] {
    auto in_set = gbbs::mis_rootset(g, parlib::random(o.seed));
    std::size_t size = 0;
    for (auto f : in_set) size += f;
    return "independent set of size " + std::to_string(size);
  });
  if (o.verify) {
    tools::report_verification(
        "MIS",
        gbbs::seq::is_valid_mis(g, gbbs::mis_rootset(g, parlib::random(
                                                            o.seed))));
  }
  return 0;
}
