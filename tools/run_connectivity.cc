// Connectivity runner: ./run_connectivity -g rmat:16
#include <unordered_map>
#include <unordered_set>

#include "algorithms/connectivity.h"
#include "runner.h"
#include "seq/reference.h"

int main(int argc, char** argv) {
  auto o = tools::parse(argc, argv);
  auto g = tools::load_symmetric(o);
  std::printf("n=%u m=%llu\n", g.num_vertices(),
              static_cast<unsigned long long>(g.num_edges()));
  tools::run_rounds("Connectivity", o, [&] {
    auto labels = gbbs::connectivity(g, 0.2, parlib::random(o.seed));
    std::unordered_set<gbbs::vertex_id> comps(labels.begin(), labels.end());
    return std::to_string(comps.size()) + " components";
  });
  if (o.verify) {
    auto a = gbbs::connectivity(g, 0.2, parlib::random(o.seed));
    auto b = gbbs::seq::connectivity(g);
    bool ok = a.size() == b.size();
    std::unordered_map<gbbs::vertex_id, gbbs::vertex_id> a2b, b2a;
    for (std::size_t v = 0; ok && v < a.size(); ++v) {
      auto [ia, u1] = a2b.try_emplace(a[v], b[v]);
      auto [ib, u2] = b2a.try_emplace(b[v], a[v]);
      ok = ia->second == b[v] && ib->second == a[v];
    }
    tools::report_verification("Connectivity", ok);
  }
  return 0;
}
