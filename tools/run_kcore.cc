// k-core runner: ./run_kcore -g rmat:16 [-verify]
#include "algorithms/kcore.h"
#include "runner.h"
#include "seq/reference.h"

int main(int argc, char** argv) {
  auto o = tools::parse(argc, argv);
  auto g = tools::load_symmetric(o);
  std::printf("n=%u m=%llu\n", g.num_vertices(),
              static_cast<unsigned long long>(g.num_edges()));
  tools::run_rounds("k-core", o, [&] {
    auto res = gbbs::kcore(g);
    return "kmax (degeneracy) " + std::to_string(res.max_core) + ", rho " +
           std::to_string(res.num_rounds);
  });
  if (o.verify) {
    tools::report_verification(
        "k-core", gbbs::kcore(g).coreness == gbbs::seq::coreness(g));
  }
  return 0;
}
