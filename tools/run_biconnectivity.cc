// Biconnectivity runner: ./run_biconnectivity -g rmat:14
#include <unordered_set>

#include "algorithms/biconnectivity.h"
#include "runner.h"

int main(int argc, char** argv) {
  auto o = tools::parse(argc, argv);
  auto g = tools::load_symmetric(o);
  std::printf("n=%u m=%llu\n", g.num_vertices(),
              static_cast<unsigned long long>(g.num_edges()));
  tools::run_rounds("Biconnectivity", o, [&] {
    auto res = gbbs::biconnectivity(g);
    std::unordered_set<gbbs::vertex_id> comps;
    for (gbbs::vertex_id v = 0; v < g.num_vertices(); ++v) {
      for (gbbs::vertex_id u : g.out_neighbors(v)) {
        if (v < u) comps.insert(res.edge_label(v, u));
      }
    }
    return std::to_string(comps.size()) + " biconnected components, " +
           std::to_string(res.num_critical_edges) + " critical tree edges";
  });
  return 0;
}
