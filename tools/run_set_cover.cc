// Approximate set cover runner over vertex neighborhoods:
//   ./run_set_cover -g rmat:14
#include "algorithms/set_cover.h"
#include "runner.h"

int main(int argc, char** argv) {
  auto o = tools::parse(argc, argv);
  auto g = tools::load_symmetric(o);
  std::printf("n=%u m=%llu\n", g.num_vertices(),
              static_cast<unsigned long long>(g.num_edges()));
  // Sets = closed vertex neighborhoods, elements = vertices.
  const gbbs::vertex_id n = g.num_vertices();
  auto flat = g.edges();
  std::vector<gbbs::edge<gbbs::empty_weight>> edges(flat.size() + n);
  for (std::size_t i = 0; i < flat.size(); ++i) {
    edges[i] = {flat[i].u, static_cast<gbbs::vertex_id>(n + flat[i].v), {}};
  }
  for (gbbs::vertex_id v = 0; v < n; ++v) {
    edges[flat.size() + v] = {v, static_cast<gbbs::vertex_id>(n + v), {}};
  }
  auto cover_g =
      gbbs::build_symmetric_graph<gbbs::empty_weight>(2 * n, edges);
  tools::run_rounds("SetCover", o, [&] {
    gbbs::set_cover_options so;
    so.rng = parlib::random(o.seed);
    auto res = gbbs::set_cover(cover_g, n, so);
    return "cover of " + std::to_string(res.cover.size()) +
           " neighborhoods, " + std::to_string(res.num_rounds) + " rounds";
  });
  return 0;
}
