// Weighted BFS (bucketed SSSP) runner: ./run_wbfs -g rmat:16 -src 3
#include "algorithms/wbfs.h"
#include "runner.h"

int main(int argc, char** argv) {
  auto o = tools::parse(argc, argv);
  auto g = tools::load_symmetric_weighted(o);
  std::printf("n=%u m=%llu\n", g.num_vertices(),
              static_cast<unsigned long long>(g.num_edges()));
  tools::run_rounds("wBFS", o, [&] {
    auto res = gbbs::wbfs(g, o.src);
    std::uint64_t sum = 0;
    std::size_t reached = 0;
    for (auto d : res.dist) {
      if (d != std::numeric_limits<std::uint32_t>::max()) {
        ++reached;
        sum += d;
      }
    }
    return "reached " + std::to_string(reached) + ", distance sum " +
           std::to_string(sum) + ", " + std::to_string(res.num_rounds) +
           " bucket rounds";
  });
  return 0;
}
