// Minimum spanning forest runner: ./run_msf -g rmat:16
#include "algorithms/msf.h"
#include "runner.h"
#include "seq/reference.h"

int main(int argc, char** argv) {
  auto o = tools::parse(argc, argv);
  auto g = tools::load_symmetric_weighted(o);
  std::printf("n=%u m=%llu\n", g.num_vertices(),
              static_cast<unsigned long long>(g.num_edges()));
  tools::run_rounds("MSF", o, [&] {
    auto res = gbbs::msf(g);
    return std::to_string(res.forest.size()) + " edges, total weight " +
           std::to_string(res.total_weight) + ", " +
           std::to_string(res.num_filter_steps) + " filter steps";
  });
  if (o.verify) {
    auto all = g.edges();
    auto half =
        parlib::filter(all, [](const auto& e) { return e.u < e.v; });
    tools::report_verification(
        "MSF", gbbs::msf(g).total_weight ==
                   gbbs::seq::msf_weight(g.num_vertices(), half));
  }
  return 0;
}
