// SCC runner (directed input): ./run_scc -g rmat:16
#include <unordered_map>

#include "algorithms/scc.h"
#include "runner.h"

int main(int argc, char** argv) {
  auto o = tools::parse(argc, argv);
  auto g = tools::load_directed(o);
  std::printf("n=%u m=%llu (directed)\n", g.num_vertices(),
              static_cast<unsigned long long>(g.num_edges()));
  tools::run_rounds("SCC", o, [&] {
    gbbs::scc_options so;
    so.rng = parlib::random(o.seed);
    auto res = gbbs::scc(g, so);
    std::unordered_map<gbbs::vertex_id, std::size_t> sizes;
    for (auto l : res.labels) sizes[l]++;
    std::size_t largest = 0;
    for (const auto& [l, s] : sizes) largest = std::max(largest, s);
    return std::to_string(sizes.size()) + " SCCs, largest " +
           std::to_string(largest) + ", " + std::to_string(res.num_phases) +
           " phases";
  });
  return 0;
}
