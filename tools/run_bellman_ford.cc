// Bellman-Ford runner: ./run_bellman_ford -g torus:32 -src 0
#include "algorithms/bellman_ford.h"
#include "runner.h"

int main(int argc, char** argv) {
  auto o = tools::parse(argc, argv);
  auto g = tools::load_symmetric_weighted(o);
  std::printf("n=%u m=%llu\n", g.num_vertices(),
              static_cast<unsigned long long>(g.num_edges()));
  tools::run_rounds("BellmanFord", o, [&] {
    auto dist = gbbs::bellman_ford(g, o.src);
    std::size_t reached = 0;
    for (auto d : dist) {
      if (d != gbbs::kInfDist64) ++reached;
    }
    return "reached " + std::to_string(reached) + " vertices";
  });
  return 0;
}
