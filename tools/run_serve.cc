// Replay a mixed update/query trace through the snapshot-serving subsystem:
// a single writer ingests the graph as an edge stream (publishing an
// immutable version after every batch, with hand-off compaction), while a
// pool of reader threads executes a randomized query mix — point reads and
// whole-graph analytics alike served from the fresh overlay path (the
// overlay-fused dynamic_view; no merged-CSR materialization). Reports
// update and query throughput, p50/p90/p99 query latency, and a per-kind
// latency/SLO table.
//
// Flags (besides the shared runner.h set):
//   -batch <b>        updates per ingest batch (default 1 << 13)
//   -readers <r>      query reader threads (default 4)
//   -shards <s>       multi-writer sharded ingest (serve/sharded_ingest.h):
//                     s concurrent shard writers under the composite
//                     version clock; degree/neighbors point reads route to
//                     the owning shard's overlay, analytics pin the latest
//                     composite version (default 0 = single-writer
//                     snapshot_manager)
//   -read-ratio <f>   fraction of trace operations that are queries, in
//                     [0, 1) (default 0.5); queries per batch =
//                     batch * f / (1 - f)
//   -heavy            include whole-graph analytics (kcore / triangles /
//                     connectivity refinement) in the query mix
//   -no-fresh         disable the overlay fresh path: every query executes
//                     against pinned published versions only
//   -stale-auto       adaptive stale-routing: after a few consecutive
//                     analytics on an unchanged (version, epoch), route
//                     further analytics to the published version's memoized
//                     merged CSR (lossless — only when it covers the same
//                     updates as the fresh overlay); q.stale stays a manual
//                     override
//   -slo-point <ms>       latency SLO for point reads (0 = off)
//   -slo-analytics <ms>   latency SLO for traversal analytics (0 = off)
//   -deadline-ms <t>  per-query deadline: expired-in-queue queries resolve
//                     timed_out without executing; mid-flight expiry stops
//                     the traversal cooperatively (0 = off)
//   -max-queue <q>    bound the submit queue (reject policy); 0 = unbounded
//   -brownout         enable the degradation ladder (requires -max-queue):
//                     degrade analytics to the published merged CSR, then
//                     shed low-priority analytics, then all analytics —
//                     point reads admitted until the queue is hard-full.
//                     Queries are classed point=normal / analytics=low.
//   -cache            bucket-keyed result cache (serve/result_cache.h):
//                     ok results are cached with the read-set of overlay
//                     buckets they touched; each ingest batch invalidates
//                     only intersecting entries. Per-kind hit counts and a
//                     cache summary line are reported after the trace.
//   -cache-entries <n>    cache capacity in entries (default 4096)
//   -subscribe <kind:u[:v]>   standing query: subscribe kind(u[,v]) and
//                     re-evaluate it whenever an ingest batch touches its
//                     read-set (implies -cache; repeatable). Delivery and
//                     drop counts per subscription are reported at exit.
//   -retries <k>      resubmit rejected queries up to k times (default 0)
//   -backoff-ms <t>   base for the jittered exponential backoff between
//                     retries (default 1 ms); counted in the obs registry
//                     as serve.query.retries
//   -metrics-json <path>  export the obs registry as a JSON snapshot:
//                     periodically (every few seconds) and at exit, written
//                     atomically (tmp + rename). Contains the ingest stage
//                     spans, per-kind query latency/queue-wait/execute
//                     histograms, and scheduler counters.
//   -metrics-port <p>     serve the same registry as Prometheus-style text
//                     on a local TCP port for live introspection
//                     (curl localhost:<p>); 0 picks an ephemeral port
//   -trace-out <path>     at exit, export the flight recorder's per-request
//                     event timelines (ingest stages, query spans, scheduler
//                     forks/steals, queue hand-off flows) as Chrome-trace /
//                     Perfetto JSON — load it at https://ui.perfetto.dev
//   -slow-trace-ms <t>    tail-sampled exemplars: retain the full event
//                     timeline of every query slower than t ms (bounded,
//                     slowest-K), reported at exit and embedded in the
//                     metrics JSON + trace export
//   -verify           after the trace: check the final version's CSR edge
//                     count, its connectivity labels against the static
//                     connectivity() of the final snapshot, and the
//                     connectivity refinement of the *fresh* dynamic_view
//                     against the same partition.
#include <array>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <future>
#include <thread>
#include <utility>
#include <vector>

#include <memory>
#include <string>

#include "algorithms/connectivity.h"
#include "bench_common.h"
#include "dynamic/stream.h"
#include "obs/exemplar.h"
#include "obs/flight_recorder.h"
#include "obs/metrics_server.h"
#include "obs/trace_export.h"
#include "runner.h"
#include "serve/dynamic_view.h"
#include "serve/query.h"
#include "serve/query_engine.h"
#include "serve/sharded_ingest.h"
#include "serve/snapshot_manager.h"

namespace {

using gbbs::empty_weight;
using gbbs::vertex_id;
using gbbs::serve::query_result;

}  // namespace

int main(int argc, char** argv) {
  auto o = tools::parse(argc, argv);
  std::size_t batch_size = std::size_t{1} << 13;
  std::size_t readers = 4;
  std::size_t shards = 0;
  double read_ratio = 0.5;
  bool heavy = false;
  bool fresh = true;
  bool stale_auto = false;
  double slo_point_ms = 0;
  double slo_analytics_ms = 0;
  double deadline_ms = 0;
  std::size_t max_queue = 0;
  bool brownout = false;
  bool use_cache = false;
  std::size_t cache_entries = 4096;
  std::vector<std::string> subscribe_specs;
  int retries = 0;
  double backoff_ms = 1.0;
  std::string metrics_json;
  std::string trace_out;
  double slow_trace_ms = -1;
  int metrics_port = -1;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "-batch") && i + 1 < argc) {
      batch_size = std::strtoull(argv[++i], nullptr, 10);
    } else if (!std::strcmp(argv[i], "-readers") && i + 1 < argc) {
      readers = std::strtoull(argv[++i], nullptr, 10);
    } else if (!std::strcmp(argv[i], "-shards") && i + 1 < argc) {
      shards = std::strtoull(argv[++i], nullptr, 10);
    } else if (!std::strcmp(argv[i], "-read-ratio") && i + 1 < argc) {
      read_ratio = std::strtod(argv[++i], nullptr);
    } else if (!std::strcmp(argv[i], "-heavy")) {
      heavy = true;
    } else if (!std::strcmp(argv[i], "-no-fresh")) {
      fresh = false;
    } else if (!std::strcmp(argv[i], "-stale-auto")) {
      stale_auto = true;
    } else if (!std::strcmp(argv[i], "-slo-point") && i + 1 < argc) {
      slo_point_ms = std::strtod(argv[++i], nullptr);
    } else if (!std::strcmp(argv[i], "-slo-analytics") && i + 1 < argc) {
      slo_analytics_ms = std::strtod(argv[++i], nullptr);
    } else if (!std::strcmp(argv[i], "-deadline-ms") && i + 1 < argc) {
      deadline_ms = std::strtod(argv[++i], nullptr);
    } else if (!std::strcmp(argv[i], "-max-queue") && i + 1 < argc) {
      max_queue = std::strtoull(argv[++i], nullptr, 10);
    } else if (!std::strcmp(argv[i], "-brownout")) {
      brownout = true;
    } else if (!std::strcmp(argv[i], "-cache")) {
      use_cache = true;
    } else if (!std::strcmp(argv[i], "-cache-entries") && i + 1 < argc) {
      cache_entries = std::strtoull(argv[++i], nullptr, 10);
    } else if (!std::strcmp(argv[i], "-subscribe") && i + 1 < argc) {
      subscribe_specs.emplace_back(argv[++i]);
    } else if (!std::strcmp(argv[i], "-retries") && i + 1 < argc) {
      retries = static_cast<int>(std::strtol(argv[++i], nullptr, 10));
    } else if (!std::strcmp(argv[i], "-backoff-ms") && i + 1 < argc) {
      backoff_ms = std::strtod(argv[++i], nullptr);
    } else if (!std::strcmp(argv[i], "-metrics-json") && i + 1 < argc) {
      metrics_json = argv[++i];
    } else if (!std::strcmp(argv[i], "-metrics-port") && i + 1 < argc) {
      metrics_port = static_cast<int>(std::strtol(argv[++i], nullptr, 10));
    } else if (!std::strcmp(argv[i], "-trace-out") && i + 1 < argc) {
      trace_out = argv[++i];
    } else if (!std::strcmp(argv[i], "-slow-trace-ms") && i + 1 < argc) {
      slow_trace_ms = std::strtod(argv[++i], nullptr);
    }
  }
  if (batch_size == 0) batch_size = 1;
  if (read_ratio < 0 || read_ratio >= 1) read_ratio = 0.5;
  const std::size_t queries_per_batch = static_cast<std::size_t>(
      static_cast<double>(batch_size) * read_ratio / (1 - read_ratio));

  // Flight recorder up before the first traced work (installs the
  // scheduler hook); exemplar threshold set from the flag (negative keeps
  // capture disabled).
  gbbs::obs::ensure_flight_recorder();
  if (slow_trace_ms >= 0) {
    gbbs::obs::exemplar_store::global().set_threshold_s(slow_trace_ms / 1e3);
  }

  // Observability exports (tentpole): both views of the same registry —
  // periodic/at-exit JSON snapshots and a live Prometheus-style endpoint.
  std::unique_ptr<gbbs::obs::metrics_json_writer> json_writer;
  if (!metrics_json.empty()) {
    json_writer =
        std::make_unique<gbbs::obs::metrics_json_writer>(metrics_json);
  }
  std::unique_ptr<gbbs::obs::metrics_server> metrics_srv;
  if (metrics_port >= 0) {
    metrics_srv = std::make_unique<gbbs::obs::metrics_server>(
        static_cast<std::uint16_t>(metrics_port));
    if (metrics_srv->ok()) {
      std::printf("metrics endpoint: http://127.0.0.1:%u/metrics\n",
                  metrics_srv->port());
    } else {
      std::fprintf(stderr, "metrics endpoint: failed to bind port %d\n",
                   metrics_port);
      metrics_srv.reset();
    }
  }

  auto g = tools::load_symmetric(o);
  const vertex_id n = g.num_vertices();
  auto stream_edges = gbbs::dynamic::undirected_stream_edges(g);

  // Standing-query specs: "<kind>:<u>[:<v>]" with the kind matched against
  // kQueryKindNames. Subscriptions ride on the cache's delta summaries, so
  // any spec implies -cache.
  std::vector<gbbs::serve::query> subscribe_queries;
  for (const std::string& spec : subscribe_specs) {
    const auto c1 = spec.find(':');
    bool spec_ok = c1 != std::string::npos && n > 0;
    gbbs::serve::query q;
    if (spec_ok) {
      const std::string kind_name = spec.substr(0, c1);
      spec_ok = false;
      for (std::size_t k = 0; k < gbbs::serve::kNumQueryKinds; ++k) {
        if (kind_name == gbbs::serve::kQueryKindNames[k]) {
          q.kind = static_cast<gbbs::serve::query_kind>(k);
          spec_ok = true;
          break;
        }
      }
      if (spec_ok) {
        q.u = static_cast<vertex_id>(
            std::strtoull(spec.c_str() + c1 + 1, nullptr, 10) % n);
        const auto c2 = spec.find(':', c1 + 1);
        if (c2 != std::string::npos) {
          q.v = static_cast<vertex_id>(
              std::strtoull(spec.c_str() + c2 + 1, nullptr, 10) % n);
        }
      }
    }
    if (!spec_ok) {
      std::fprintf(stderr,
                   "serve: bad -subscribe spec '%s' (want kind:u[:v])\n",
                   spec.c_str());
      continue;
    }
    subscribe_queries.push_back(q);
  }
  if (!subscribe_queries.empty()) use_cache = true;

  std::printf(
      "serve: n=%u, %zu streamed edges, batch=%zu, readers=%zu, "
      "%zu queries/batch%s%s%s",
      n, stream_edges.size(), batch_size, readers, queries_per_batch,
      heavy ? " (heavy mix)" : "", fresh ? "" : " (no fresh path)",
      stale_auto ? " (stale-auto)" : "");
  if (shards > 0) std::printf(", %zu ingest shards", shards);
  std::printf("\n");

  // One round body shared by both ingest paths: the manager only needs
  // ingest/publish/current_version/store; the fresh-read source (single
  // overlay vs per-shard router), the end-of-stream flush, the compaction
  // count, and the verification are passed in by the dispatcher below.
  auto serve_round = [&](auto& mgr,
                         const gbbs::serve::overlay_view<empty_weight>*
                             overlay,
                         gbbs::serve::shard_router<empty_weight> router,
                         auto&& final_flush, auto&& count_compactions,
                         auto&& verify_round) -> std::string {
    gbbs::dynamic::edge_stream<empty_weight> stream(stream_edges);
    std::vector<std::future<query_result>> futures;
    std::vector<query_result> results;  // resolved inline by the retry loop
    parlib::random rng(o.seed);
    std::size_t updates = 0, batches = 0, qi = 0;
    double wall = 0;
    gbbs::serve::query_engine_options opts;
    opts.slo_point_s = slo_point_ms / 1e3;
    opts.slo_analytics_s = slo_analytics_ms / 1e3;
    opts.stale_auto = stale_auto;
    opts.max_queue = max_queue;
    opts.brownout = brownout;
    // Per-round cache: each round gets a fresh manager (fresh epoch
    // domain), so the cache must be fresh too. Attach to the ingest side
    // *before* the first batch so every delta summary reaches it.
    std::unique_ptr<gbbs::serve::result_cache> cache;
    if (use_cache) {
      gbbs::serve::result_cache::options copt;
      copt.entries = cache_entries;
      cache = std::make_unique<gbbs::serve::result_cache>(copt);
      mgr.attach_cache(cache.get());
      opts.cache = cache.get();
    }
    std::vector<std::shared_ptr<gbbs::serve::subscription>> subs;
    std::array<gbbs::serve::query_engine<empty_weight>::kind_stats,
               gbbs::serve::kNumQueryKinds>
        kinds{};
    std::uint64_t reader_forks = 0, auto_routed = 0;
    std::uint64_t shed = 0, degraded = 0, transitions = 0;
    std::uint64_t retries_done = 0;
    auto& retry_ctr =
        gbbs::obs::registry::global().get_counter("serve.query.retries");
    {
      gbbs::serve::query_engine<empty_weight> engine(
          mgr.store(), overlay, readers, opts, std::move(router));
      for (const auto& sq : subscribe_queries) {
        subs.push_back(engine.subscribe(sq));
      }
      // Submit with bounded retry: a rejected submit (queue overflow or
      // brownout shed) resolves its future immediately, so readiness right
      // after submit is the reject signal. Jittered exponential backoff
      // between attempts keeps retry waves from re-saturating the queue in
      // lockstep.
      auto submit_with_retry = [&](const gbbs::serve::query& q,
                                   std::size_t salt) {
        auto fut = engine.submit(q);
        for (int attempt = 0; attempt < retries; ++attempt) {
          if (fut.wait_for(std::chrono::seconds(0)) !=
              std::future_status::ready) {
            break;  // admitted: a reader will resolve it
          }
          query_result r = fut.get();
          if (r.status != gbbs::serve::query_status::rejected) {
            results.push_back(std::move(r));
            return;
          }
          const double jitter =
              0.5 + static_cast<double>(
                        rng.ith_rand((salt << 3) + 0x5a17 +
                                     static_cast<std::size_t>(attempt)) %
                        1000) /
                        1000.0;
          std::this_thread::sleep_for(
              std::chrono::duration<double, std::milli>(
                  backoff_ms * static_cast<double>(1 << attempt) * jitter));
          ++retries_done;
          retry_ctr.add();
          fut = engine.submit(q);
        }
        futures.push_back(std::move(fut));
      };
      wall = bench::time_once([&] {
        while (!stream.done()) {
          auto raw = stream.next_inserts(batch_size);
          updates += raw.size();
          mgr.ingest(std::move(raw));
          mgr.publish();
          ++batches;
          for (std::size_t k = 0; k < queries_per_batch; ++k, ++qi) {
            auto q = gbbs::serve::make_mixed_query(rng, qi, n, heavy);
            q.deadline_s = deadline_ms / 1e3;
            // Brownout classing: point reads are the protected traffic,
            // analytics are sheddable first.
            q.priority = gbbs::serve::is_point_read(q.kind)
                             ? gbbs::serve::query_priority::normal
                             : gbbs::serve::query_priority::low;
            submit_with_retry(q, qi);
          }
          rng = rng.next();
        }
        final_flush();
        engine.drain();
      });
      kinds = engine.latency_by_kind();
      reader_forks = engine.reader_forks();
      auto_routed = engine.stale_auto_routed();
      shed = engine.shed();
      degraded = engine.degraded_served();
      transitions = engine.degrade_transitions();
      // Snapshot the registry while the engine (and its attached per-kind
      // histograms) is still alive so the file holds the full breakdown;
      // detach-merge preserves them for the at-exit write as well.
      if (json_writer) json_writer->write_now();
    }

    for (auto& f : futures) results.push_back(f.get());
    std::vector<double> latencies;
    latencies.reserve(results.size());
    std::array<std::uint64_t, gbbs::serve::kNumQueryStatuses> by_status{};
    for (const auto& r : results) {
      const auto s = static_cast<std::size_t>(r.status);
      if (s < by_status.size()) ++by_status[s];
      // Only served queries are latency samples; a rejected/timed-out
      // resolution would drag the percentiles toward its (tiny or
      // truncated) turnaround time.
      if (r.status == gbbs::serve::query_status::ok) {
        latencies.push_back(r.latency_s);
      }
    }
    const auto stats = bench::summarize(std::move(latencies));

    // Per-kind latency / SLO accounting, with the end-to-end latency
    // decomposed into queue wait (submit -> dequeue) and execute: a fat
    // qw-p99 with a thin exec-p99 means the reader pool is saturated, not
    // that queries got slower.
    std::printf("%-20s %8s %9s %9s %9s %9s %9s %9s %8s", "kind", "count",
                "p50(ms)", "p99(ms)", "qw-p50", "qw-p99", "ex-p50", "ex-p99",
                "slo-viol");
    if (cache) std::printf(" %8s %6s", "hits", "hit%");
    std::printf("\n");
    for (std::size_t k = 0; k < gbbs::serve::kNumQueryKinds; ++k) {
      if (kinds[k].count == 0) continue;
      std::printf(
          "%-20s %8llu %9.3f %9.3f %9.3f %9.3f %9.3f %9.3f %8llu",
          gbbs::serve::query_kind_name(
              static_cast<gbbs::serve::query_kind>(k)),
          static_cast<unsigned long long>(kinds[k].count),
          kinds[k].p50_s * 1e3, kinds[k].p99_s * 1e3,
          kinds[k].queue_p50_s * 1e3, kinds[k].queue_p99_s * 1e3,
          kinds[k].exec_p50_s * 1e3, kinds[k].exec_p99_s * 1e3,
          static_cast<unsigned long long>(kinds[k].slo_violations));
      if (cache) {
        const auto kind = static_cast<gbbs::serve::query_kind>(k);
        const std::uint64_t kh = cache->kind_hits(kind);
        const std::uint64_t km = cache->kind_misses(kind);
        std::printf(" %8llu %5.1f%%",
                    static_cast<unsigned long long>(kh),
                    kh + km ? 100.0 * static_cast<double>(kh) /
                                  static_cast<double>(kh + km)
                            : 0.0);
      }
      std::printf("\n");
    }

    // Scheduler participation: forks reader threads placed on their own
    // deques (and how many analytics the adaptive policy routed stale).
    std::printf("reader-deque forks %llu | stale-auto routes %llu\n",
                static_cast<unsigned long long>(reader_forks),
                static_cast<unsigned long long>(auto_routed));

    // How every submitted query resolved, plus the brownout/retry story.
    // `unavailable` nonzero means readers found nothing published to serve
    // from — previously a silently-empty result, now a visible status.
    std::printf(
        "status: ok=%llu rejected=%llu timed_out=%llu cancelled=%llu "
        "unavailable=%llu | shed=%llu degraded=%llu degrade-transitions=%llu "
        "retries=%llu\n",
        static_cast<unsigned long long>(
            by_status[static_cast<std::size_t>(gbbs::serve::query_status::ok)]),
        static_cast<unsigned long long>(by_status[static_cast<std::size_t>(
            gbbs::serve::query_status::rejected)]),
        static_cast<unsigned long long>(by_status[static_cast<std::size_t>(
            gbbs::serve::query_status::timed_out)]),
        static_cast<unsigned long long>(by_status[static_cast<std::size_t>(
            gbbs::serve::query_status::cancelled)]),
        static_cast<unsigned long long>(by_status[static_cast<std::size_t>(
            gbbs::serve::query_status::unavailable)]),
        static_cast<unsigned long long>(shed),
        static_cast<unsigned long long>(degraded),
        static_cast<unsigned long long>(transitions),
        static_cast<unsigned long long>(retries_done));

    // Cache effectiveness and subscription delivery, from the same obs
    // counters the metrics JSON exports (serve.cache.*).
    if (cache) {
      const std::uint64_t h = cache->hits();
      const std::uint64_t m = cache->misses();
      std::printf(
          "cache: hits=%llu misses=%llu hit-ratio=%.3f invalidations=%llu "
          "entries=%llu/%llu\n",
          static_cast<unsigned long long>(h),
          static_cast<unsigned long long>(m),
          h + m ? static_cast<double>(h) / static_cast<double>(h + m) : 0.0,
          static_cast<unsigned long long>(cache->invalidations()),
          static_cast<unsigned long long>(cache->entries()),
          static_cast<unsigned long long>(cache->capacity()));
    }
    for (const auto& sp : subs) {
      if (!sp) continue;
      const auto& wq = sp->watched();
      std::printf("subscription %s(u=%u, v=%u): delivered=%llu dropped=%llu\n",
                  gbbs::serve::query_kind_name(wq.kind), wq.u, wq.v,
                  static_cast<unsigned long long>(sp->delivered()),
                  static_cast<unsigned long long>(sp->dropped()));
    }

    char buf[240];
    std::snprintf(
        buf, sizeof(buf),
        "%zu batches, %zu versions (%zu compactions) | updates %.2f Mups | "
        "queries %zu @ %.1f kq/s | latency ms p50=%.3f p90=%.3f p99=%.3f "
        "max=%.3f",
        batches, static_cast<std::size_t>(mgr.current_version()),
        count_compactions(), static_cast<double>(updates) / wall / 1e6,
        stats.count, static_cast<double>(stats.count) / wall / 1e3,
        stats.p50 * 1e3, stats.p90 * 1e3, stats.p99 * 1e3, stats.max * 1e3);

    if (o.verify) tools::report_verification("serve", verify_round());
    return std::string(buf);
  };

  tools::run_rounds("serve", o, [&]() -> std::string {
    if (shards > 0) {
      gbbs::serve::sharded_snapshot_manager<empty_weight> mgr(
          n, {.num_shards = shards});
      // Composite verification: the stitched CSR's edge count and the
      // barrier-merged component partition against a from-scratch static
      // connectivity over the same composite view.
      auto verify = [&]() -> bool {
        auto snap = mgr.pin();
        bool ok = snap && snap.view().num_edges() == 2 * stream_edges.size();
        ok = ok && gbbs::same_partition(
                       snap.components().materialize(snap.num_vertices()),
                       gbbs::connectivity(snap.view()));
        return ok;
      };
      return serve_round(
          mgr, nullptr,
          fresh ? mgr.router() : gbbs::serve::shard_router<empty_weight>{},
          [&] { mgr.flush(); },
          [&] {
            std::size_t c = 0;
            for (std::size_t s = 0; s < mgr.num_shards(); ++s) {
              c += mgr.shard_graph(s).num_compactions();
            }
            return c;
          },
          verify);
    }
    gbbs::serve::snapshot_manager<empty_weight> mgr(n);
    auto verify = [&]() -> bool {
      auto snap = mgr.pin();
      bool ok = snap && snap.view().num_edges() == 2 * stream_edges.size();
      const auto static_labels = gbbs::connectivity(snap.view());
      ok = ok && gbbs::same_partition(
                     snap.components().materialize(snap.num_vertices()),
                     static_labels);
      // Connectivity refinement on the *fresh* overlay-fused view: the
      // final overlay index describes the same live graph, so a
      // from-scratch traversal over it must produce the same partition.
      if (auto idx = mgr.overlay().read()) {
        gbbs::serve::dynamic_view<empty_weight> dv(idx);
        ok = ok && gbbs::same_partition(gbbs::connectivity(dv),
                                        static_labels);
      }
      return ok;
    };
    return serve_round(
        mgr, fresh ? &mgr.overlay() : nullptr,
        gbbs::serve::shard_router<empty_weight>{}, [] {},
        [&] { return mgr.num_compactions(); }, verify);
  });

  // At-exit observability artifacts: the slowest-query exemplar report
  // (each retained request with its stage breakdown) and the Perfetto
  // export of everything the recorder still holds.
  if (slow_trace_ms >= 0) {
    const std::string report = gbbs::obs::exemplar_store::global().report();
    if (report.empty()) {
      std::printf("slow-query exemplars: none over %.3g ms\n",
                  slow_trace_ms);
    } else {
      std::fputs(report.c_str(), stdout);
    }
  }
  if (!trace_out.empty()) {
    if (gbbs::obs::write_chrome_trace(trace_out)) {
      std::printf("trace written: %s (%llu events, %llu dropped)\n",
                  trace_out.c_str(),
                  static_cast<unsigned long long>(
                      gbbs::obs::flight_recorder::global().events_recorded()),
                  static_cast<unsigned long long>(
                      gbbs::obs::flight_recorder::global().events_dropped()));
    } else {
      std::fprintf(stderr, "trace export failed: %s\n", trace_out.c_str());
    }
  }
  return 0;
}
