// Betweenness centrality runner: ./run_bc -g rmat:16 -src 3
#include "algorithms/betweenness.h"
#include "runner.h"

int main(int argc, char** argv) {
  auto o = tools::parse(argc, argv);
  auto g = tools::load_symmetric(o);
  std::printf("n=%u m=%llu\n", g.num_vertices(),
              static_cast<unsigned long long>(g.num_edges()));
  tools::run_rounds("BC", o, [&] {
    auto dep = gbbs::betweenness(g, o.src);
    double total = 0;
    for (auto d : dep) total += d;
    return "total dependency " + std::to_string(total);
  });
  return 0;
}
