// Triangle counting runner: ./run_triangle -g rmat:14
#include "algorithms/triangle.h"
#include "runner.h"

int main(int argc, char** argv) {
  auto o = tools::parse(argc, argv);
  auto g = tools::load_symmetric(o);
  std::printf("n=%u m=%llu\n", g.num_vertices(),
              static_cast<unsigned long long>(g.num_edges()));
  tools::run_rounds("TriangleCounting", o, [&] {
    return std::to_string(gbbs::triangle_count(g)) + " triangles";
  });
  return 0;
}
