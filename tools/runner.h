// Shared command-line runner for the per-problem tools (mirroring the
// layout of the paper's public benchmark suite, where each problem is a
// standalone binary run against a graph file or generator).
//
// Common flags:
//   -g <spec>    generated input: rmat:<scale>, er:<scale>, torus:<side>,
//                grid:<side>  (default rmat:14)
//   -f <path>    binary graph file (written by examples/graph_tool)
//   -a <path>    Ligra AdjacencyGraph text file
//   -src <v>     source vertex for rooted problems (default 0)
//   -rounds <k>  timed repetitions (default 3; median reported)
//   -seed <s>    generator / algorithm seed (default 1)
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/graph_io.h"
#include "parlib/scheduler.h"

namespace tools {

struct options {
  std::string gen = "rmat:14";
  std::string binary_file;
  std::string adj_file;
  gbbs::vertex_id src = 0;
  int rounds = 3;
  std::uint64_t seed = 1;
  bool verify = false;  // -verify: check against the sequential oracle
};

inline options parse(int argc, char** argv) {
  options o;
  for (int i = 1; i < argc; ++i) {
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (!std::strcmp(argv[i], "-g")) {
      o.gen = next();
    } else if (!std::strcmp(argv[i], "-f")) {
      o.binary_file = next();
    } else if (!std::strcmp(argv[i], "-a")) {
      o.adj_file = next();
    } else if (!std::strcmp(argv[i], "-src")) {
      o.src = static_cast<gbbs::vertex_id>(std::atoll(next()));
    } else if (!std::strcmp(argv[i], "-rounds")) {
      o.rounds = std::atoi(next());
    } else if (!std::strcmp(argv[i], "-seed")) {
      o.seed = std::strtoull(next(), nullptr, 10);
    } else if (!std::strcmp(argv[i], "-verify")) {
      o.verify = true;
    } else if (!std::strcmp(argv[i], "-h") ||
               !std::strcmp(argv[i], "--help")) {
      std::printf(
          "flags: -g rmat:<scale>|er:<scale>|torus:<side>|grid:<side> | "
          "-f <binary> | -a <adjacency>  [-src v] [-rounds k] [-seed s] "
          "[-verify]\n");
      std::exit(0);
    }
  }
  return o;
}

inline std::pair<std::string, std::uint32_t> split_gen(
    const std::string& gen) {
  const auto colon = gen.find(':');
  if (colon == std::string::npos) return {gen, 14};
  return {gen.substr(0, colon),
          static_cast<std::uint32_t>(std::atoi(gen.c_str() + colon + 1))};
}

inline gbbs::graph<gbbs::empty_weight> load_symmetric(const options& o) {
  if (!o.binary_file.empty()) {
    return gbbs::read_binary_graph(o.binary_file, /*symmetric=*/true);
  }
  if (!o.adj_file.empty()) {
    return gbbs::read_adjacency_graph(o.adj_file, /*symmetric=*/true);
  }
  const auto [kind, size] = split_gen(o.gen);
  if (kind == "torus") return gbbs::torus3d_symmetric(size);
  if (kind == "grid") {
    return gbbs::build_symmetric_graph<gbbs::empty_weight>(
        size * size, gbbs::grid2d_edges(size, size));
  }
  if (kind == "er") {
    const gbbs::vertex_id n = gbbs::vertex_id{1} << size;
    return gbbs::build_symmetric_graph<gbbs::empty_weight>(
        n, gbbs::erdos_renyi_edges(n, std::size_t{16} << size, o.seed));
  }
  return gbbs::rmat_symmetric(size, std::size_t{16} << size, o.seed);
}

inline gbbs::graph<std::uint32_t> load_symmetric_weighted(const options& o) {
  if (!o.binary_file.empty()) {
    return gbbs::read_weighted_binary_graph(o.binary_file, true);
  }
  if (!o.adj_file.empty()) {
    return gbbs::read_weighted_adjacency_graph(o.adj_file, true);
  }
  const auto [kind, size] = split_gen(o.gen);
  if (kind == "torus") return gbbs::torus3d_symmetric_weighted(size, o.seed);
  if (kind == "grid") {
    const gbbs::vertex_id n = size * size;
    return gbbs::build_symmetric_graph<std::uint32_t>(
        n, gbbs::with_random_weights(gbbs::grid2d_edges(size, size),
                                     gbbs::weight_range(n), o.seed));
  }
  if (kind == "er") {
    const gbbs::vertex_id n = gbbs::vertex_id{1} << size;
    return gbbs::build_symmetric_graph<std::uint32_t>(
        n, gbbs::with_random_weights(
               gbbs::erdos_renyi_edges(n, std::size_t{16} << size, o.seed),
               gbbs::weight_range(n), o.seed + 1));
  }
  return gbbs::rmat_symmetric_weighted(size, std::size_t{16} << size,
                                       o.seed);
}

inline gbbs::graph<gbbs::empty_weight> load_directed(const options& o) {
  if (!o.binary_file.empty()) {
    return gbbs::read_binary_graph(o.binary_file, /*symmetric=*/false);
  }
  if (!o.adj_file.empty()) {
    return gbbs::read_adjacency_graph(o.adj_file, /*symmetric=*/false);
  }
  const auto [kind, size] = split_gen(o.gen);
  if (kind == "torus") {
    return gbbs::build_asymmetric_graph<gbbs::empty_weight>(
        size * size * size, gbbs::torus3d_edges(size));
  }
  if (kind == "er") {
    const gbbs::vertex_id n = gbbs::vertex_id{1} << size;
    return gbbs::build_asymmetric_graph<gbbs::empty_weight>(
        n, gbbs::erdos_renyi_edges(n, std::size_t{16} << size, o.seed));
  }
  return gbbs::rmat_directed(size, std::size_t{16} << size, o.seed);
}

// Run f `rounds` times; print per-round and median time plus the summary
// string f returns for the last round.
template <typename F>
void run_rounds(const char* problem, const options& o, const F& f) {
  std::vector<double> times;
  std::string summary;
  for (int r = 0; r < std::max(1, o.rounds); ++r) {
    const auto start = std::chrono::steady_clock::now();
    summary = f();
    const auto end = std::chrono::steady_clock::now();
    const double t = std::chrono::duration<double>(end - start).count();
    times.push_back(t);
    std::printf("%s: round %d: %.6f s\n", problem, r, t);
  }
  std::sort(times.begin(), times.end());
  std::printf("%s: median of %zu: %.6f s  [workers=%zu]\n", problem,
              times.size(), times[times.size() / 2], parlib::num_workers());
  std::printf("%s: %s\n", problem, summary.c_str());
}

// Report a -verify outcome; exits non-zero on failure so the tools can be
// scripted as correctness checks.
inline void report_verification(const char* problem, bool ok) {
  std::printf("%s: verification %s\n", problem, ok ? "PASSED" : "FAILED");
  if (!ok) std::exit(1);
}

}  // namespace tools
