// Spanning forest runner (BFS-based and LDD-based variants):
//   ./run_spanning_forest -g rmat:16
#include "algorithms/spanning_forest.h"
#include "runner.h"

int main(int argc, char** argv) {
  auto o = tools::parse(argc, argv);
  auto g = tools::load_symmetric(o);
  std::printf("n=%u m=%llu\n", g.num_vertices(),
              static_cast<unsigned long long>(g.num_edges()));
  tools::run_rounds("SpanningForest(BFS)", o, [&] {
    auto sf = gbbs::spanning_forest(g);
    return std::to_string(gbbs::forest_edges(sf.parents).size()) +
           " tree edges, " + std::to_string(sf.roots.size()) + " trees";
  });
  tools::run_rounds("SpanningForest(LDD)", o, [&] {
    auto edges = gbbs::spanning_forest_ldd(g, 0.2, parlib::random(o.seed));
    return std::to_string(edges.size()) + " tree edges";
  });
  return 0;
}
