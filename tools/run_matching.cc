// Maximal matching runner: ./run_matching -g rmat:16
#include "algorithms/maximal_matching.h"
#include "runner.h"
#include "seq/reference.h"

int main(int argc, char** argv) {
  auto o = tools::parse(argc, argv);
  auto g = tools::load_symmetric(o);
  std::printf("n=%u m=%llu\n", g.num_vertices(),
              static_cast<unsigned long long>(g.num_edges()));
  tools::run_rounds("MaximalMatching", o, [&] {
    auto matching = gbbs::maximal_matching(g, parlib::random(o.seed));
    return "matching of size " + std::to_string(matching.size());
  });
  if (o.verify) {
    tools::report_verification(
        "MaximalMatching",
        gbbs::seq::is_valid_maximal_matching(
            g, gbbs::maximal_matching(g, parlib::random(o.seed))));
  }
  return 0;
}
