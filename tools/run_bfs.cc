// BFS runner: ./run_bfs -g rmat:16 -src 3 [-verify]
#include "algorithms/bfs.h"
#include "runner.h"
#include "seq/reference.h"

int main(int argc, char** argv) {
  auto o = tools::parse(argc, argv);
  auto g = tools::load_symmetric(o);
  std::printf("n=%u m=%llu\n", g.num_vertices(),
              static_cast<unsigned long long>(g.num_edges()));
  tools::run_rounds("BFS", o, [&] {
    auto dist = gbbs::bfs(g, o.src);
    std::size_t reached = 0;
    std::uint32_t max_d = 0;
    for (auto d : dist) {
      if (d != gbbs::kInfDist) {
        ++reached;
        max_d = std::max(max_d, d);
      }
    }
    return "reached " + std::to_string(reached) + " vertices, max depth " +
           std::to_string(max_d);
  });
  if (o.verify) {
    tools::report_verification(
        "BFS", gbbs::bfs(g, o.src) == gbbs::seq::bfs(g, o.src));
  }
  return 0;
}
