// Graph coloring runner: ./run_coloring -g rmat:16
#include "algorithms/coloring.h"
#include "runner.h"
#include "seq/reference.h"

int main(int argc, char** argv) {
  auto o = tools::parse(argc, argv);
  auto g = tools::load_symmetric(o);
  std::printf("n=%u m=%llu\n", g.num_vertices(),
              static_cast<unsigned long long>(g.num_edges()));
  tools::run_rounds("Coloring", o, [&] {
    auto colors = gbbs::color_graph(g, gbbs::coloring_heuristic::llf,
                                    parlib::random(o.seed));
    return std::to_string(gbbs::num_colors(colors)) + " colors (LLF)";
  });
  if (o.verify) {
    gbbs::vertex_id delta = 0;
    for (gbbs::vertex_id v = 0; v < g.num_vertices(); ++v) {
      delta = std::max(delta, g.out_degree(v));
    }
    tools::report_verification(
        "Coloring",
        gbbs::seq::is_valid_coloring(
            g,
            gbbs::color_graph(g, gbbs::coloring_heuristic::llf,
                              parlib::random(o.seed)),
            delta + 1));
  }
  return 0;
}
