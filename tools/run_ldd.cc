// Low-diameter decomposition runner: ./run_ldd -g torus:32
#include <unordered_set>

#include "algorithms/ldd.h"
#include "runner.h"

int main(int argc, char** argv) {
  auto o = tools::parse(argc, argv);
  auto g = tools::load_symmetric(o);
  std::printf("n=%u m=%llu\n", g.num_vertices(),
              static_cast<unsigned long long>(g.num_edges()));
  tools::run_rounds("LDD", o, [&] {
    auto clusters = gbbs::ldd(g, 0.2, parlib::random(o.seed));
    std::unordered_set<gbbs::vertex_id> distinct(clusters.begin(),
                                                 clusters.end());
    const auto cut = gbbs::num_cut_edges(g, clusters);
    return std::to_string(distinct.size()) + " clusters, " +
           std::to_string(cut) + " cut edges (" +
           std::to_string(100.0 * cut / std::max<std::uint64_t>(
                                            1, g.num_edges())) +
           "% of m)";
  });
  return 0;
}
