// Replay an edge stream through the batch-dynamic subsystem in
// configurable batch sizes, maintaining incremental connectivity after
// every batch.
//
// Flags (besides the shared runner.h set):
//   -batch <b>        updates per batch (default 1 << 14)
//   -erase-every <k>  after every k-th batch, erase a random sample of
//                     previously ingested edges (default 0 = insert-only)
//   -compact-threshold <f>
//                     auto-compact when the delta overlay exceeds fraction
//                     f of the base edge count (default 0 = only the final
//                     manual compact; see dynamic_graph::set_compact_threshold)
//   -shards <s>       route the stream through the multi-writer sharded
//                     ingest path (serve/sharded_ingest.h): s concurrent
//                     shard writers under the composite version clock,
//                     publish per batch + flush at stream end (default 0 =
//                     the single-writer dynamic_graph loop below)
//   -verify           after the stream: check the compacted CSR against a
//                     from-scratch rebuild (insert-only runs) and the
//                     incremental connectivity partition against the
//                     static connectivity() on a snapshot.
//   -metrics-json <path>  export the obs registry (ingest stage spans,
//                     parlib counters) as JSON, periodically and at exit
//   -metrics-port <p>     live Prometheus-style text endpoint on a local
//                     TCP port (0 picks an ephemeral port)
//   -trace-out <path>     at exit, export the flight recorder's event
//                     timelines (per-batch ingest stages + scheduler
//                     events) as Chrome-trace / Perfetto JSON
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "algorithms/connectivity.h"
#include "dynamic/dynamic_graph.h"
#include "dynamic/incremental_connectivity.h"
#include "dynamic/stream.h"
#include "graph/graph_builder.h"
#include "obs/flight_recorder.h"
#include "obs/metrics_server.h"
#include "obs/trace_export.h"
#include "parlib/trace_hooks.h"
#include "runner.h"
#include "serve/sharded_ingest.h"

namespace {

using gbbs::vertex_id;
using gbbs::empty_weight;

bool same_csr(const gbbs::graph<empty_weight>& a,
              const gbbs::graph<empty_weight>& b) {
  if (a.num_vertices() != b.num_vertices()) return false;
  if (a.num_edges() != b.num_edges()) return false;
  for (vertex_id v = 0; v < a.num_vertices(); ++v) {
    auto na = a.out_neighbors(v);
    auto nb = b.out_neighbors(v);
    if (!std::equal(na.begin(), na.end(), nb.begin(), nb.end()))
      return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  auto o = tools::parse(argc, argv);
  std::size_t batch_size = std::size_t{1} << 14;
  std::size_t erase_every = 0;
  std::size_t shards = 0;
  double compact_threshold = 0;
  std::string metrics_json;
  std::string trace_out;
  int metrics_port = -1;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "-batch") && i + 1 < argc) {
      batch_size = std::strtoull(argv[++i], nullptr, 10);
    } else if (!std::strcmp(argv[i], "-erase-every") && i + 1 < argc) {
      erase_every = std::strtoull(argv[++i], nullptr, 10);
    } else if (!std::strcmp(argv[i], "-shards") && i + 1 < argc) {
      shards = std::strtoull(argv[++i], nullptr, 10);
    } else if (!std::strcmp(argv[i], "-compact-threshold") && i + 1 < argc) {
      compact_threshold = std::strtod(argv[++i], nullptr);
    } else if (!std::strcmp(argv[i], "-metrics-json") && i + 1 < argc) {
      metrics_json = argv[++i];
    } else if (!std::strcmp(argv[i], "-metrics-port") && i + 1 < argc) {
      metrics_port = static_cast<int>(std::strtol(argv[++i], nullptr, 10));
    } else if (!std::strcmp(argv[i], "-trace-out") && i + 1 < argc) {
      trace_out = argv[++i];
    }
  }
  if (batch_size == 0) batch_size = 1;
  gbbs::obs::ensure_flight_recorder();

  std::unique_ptr<gbbs::obs::metrics_json_writer> json_writer;
  if (!metrics_json.empty()) {
    json_writer =
        std::make_unique<gbbs::obs::metrics_json_writer>(metrics_json);
  }
  std::unique_ptr<gbbs::obs::metrics_server> metrics_srv;
  if (metrics_port >= 0) {
    metrics_srv = std::make_unique<gbbs::obs::metrics_server>(
        static_cast<std::uint16_t>(metrics_port));
    if (metrics_srv->ok()) {
      std::printf("metrics endpoint: http://127.0.0.1:%u/metrics\n",
                  metrics_srv->port());
    } else {
      std::fprintf(stderr, "metrics endpoint: failed to bind port %d\n",
                   metrics_port);
      metrics_srv.reset();
    }
  }

  auto g = tools::load_symmetric(o);
  const vertex_id n = g.num_vertices();
  auto stream_edges = gbbs::dynamic::undirected_stream_edges(g);
  std::printf("stream: n=%u, %zu undirected edges, batch=%zu%s\n", n,
              stream_edges.size(), batch_size,
              erase_every ? " (with erases)" : "");

  if (shards > 0) {
    // Multi-writer sharded ingest: the coordinator normalizes + splits,
    // N shard workers apply concurrently, and the composite version clock
    // gates visibility (publish per batch never waits on a straggler;
    // flush at stream end forces full visibility before reporting).
    tools::run_rounds("stream", o, [&]() {
      gbbs::dynamic::edge_stream<empty_weight> stream(stream_edges);
      gbbs::serve::sharded_snapshot_manager<empty_weight> mgr(
          n, {.num_shards = shards, .compact_threshold = compact_threshold});
      parlib::random rng(o.seed);
      std::size_t batches = 0, erase_batches = 0, updates = 0;
      while (!stream.done()) {
        auto raw = stream.next_inserts(batch_size);
        updates += raw.size();
        mgr.ingest(std::move(raw));
        mgr.publish();
        ++batches;
        if (erase_every != 0 && batches % erase_every == 0) {
          auto erases = stream.sample_erases(
              std::max<std::size_t>(1, batch_size / 4), rng);
          rng = rng.next();
          if (!erases.empty()) {
            updates += erases.size();
            mgr.ingest(std::move(erases));
            mgr.publish();
            ++erase_batches;
          }
        }
      }
      mgr.flush();
      auto snap = mgr.pin();
      auto labels = snap.components().materialize(snap.num_vertices());
      std::size_t components = 0;
      for (vertex_id v = 0; v < snap.num_vertices(); ++v) {
        if (labels[v] == v) ++components;
      }
      char buf[200];
      std::snprintf(buf, sizeof(buf),
                    "%zu batches (%zu erase batches) x %zu shards, "
                    "%zu raw updates, clock=%llu, m=%llu, %zu components",
                    batches, erase_batches, mgr.num_shards(), updates,
                    static_cast<unsigned long long>(mgr.composite_clock()),
                    static_cast<unsigned long long>(snap.view().num_edges()),
                    components);
      if (o.verify) {
        bool ok = true;
        const auto view = snap.view();
        if (erase_every == 0) {
          // Insert-only: the stitched composite must equal the static
          // rebuild row for row (same ascending neighbor order).
          auto rebuilt =
              gbbs::build_symmetric_graph<empty_weight>(n, stream_edges);
          ok = view.num_vertices() == rebuilt.num_vertices() &&
               view.num_edges() == rebuilt.num_edges();
          for (vertex_id v = 0; ok && v < n; ++v) {
            auto nb = rebuilt.out_neighbors(v);
            std::size_t j = 0;
            view.map_out_neighbors(v, [&](vertex_id, vertex_id ngh,
                                          empty_weight) {
              if (j >= nb.size() || nb[j] != ngh) ok = false;
              ++j;
            });
            ok = ok && j == nb.size();
          }
        }
        ok = ok &&
             gbbs::same_partition(labels, gbbs::connectivity(view));
        tools::report_verification("stream", ok);
      }
      return std::string(buf);
    });
  } else {
  tools::run_rounds("stream", o, [&]() {
    gbbs::dynamic::edge_stream<empty_weight> stream(stream_edges);
    gbbs::dynamic::dynamic_unweighted_graph dg(n);
    dg.set_compact_threshold(compact_threshold);
    gbbs::dynamic::incremental_connectivity cc(n);
    parlib::random rng(o.seed);
    std::size_t batches = 0, rebuilds = 0, updates = 0;
    while (!stream.done()) {
      // One trace id per batch so the exported timeline groups each
      // batch's normalize/apply spans and scheduler events causally
      // (run_serve gets this from snapshot_manager; here the tool drives
      // dynamic_graph directly).
      parlib::trace::trace_id_scope tscope(
          gbbs::obs::flight_recorder::global().next_trace_id());
      auto raw = stream.next_inserts(batch_size);
      updates += raw.size();
      auto batch = dg.apply(std::move(raw));
      cc.apply(batch, dg);
      ++batches;
      if (erase_every != 0 && batches % erase_every == 0) {
        auto erases =
            stream.sample_erases(std::max<std::size_t>(1, batch_size / 4),
                                 rng);
        rng = rng.next();
        if (!erases.empty()) {
          updates += erases.size();
          auto ebatch = dg.apply(std::move(erases));
          cc.apply(ebatch, dg);
          ++rebuilds;
        }
      }
    }
    const std::size_t auto_compactions = dg.num_compactions();
    dg.compact();
    char buf[200];
    std::snprintf(buf, sizeof(buf),
                  "%zu batches (%zu rebuilds, %zu auto-compactions), "
                  "%zu raw updates, m=%llu, %zu components",
                  batches, rebuilds, auto_compactions, updates,
                  static_cast<unsigned long long>(dg.num_edges()),
                  cc.num_components());
    if (o.verify) {
      bool ok = true;
      if (erase_every == 0) {
        auto rebuilt = gbbs::build_symmetric_graph<empty_weight>(
            n, stream_edges);
        ok = same_csr(dg.base(), rebuilt);
      }
      auto snap = dg.snapshot();
      ok = ok && gbbs::same_partition(cc.labels(), gbbs::connectivity(snap));
      tools::report_verification("stream", ok);
    }
    return std::string(buf);
  });
  }

  if (!trace_out.empty()) {
    if (gbbs::obs::write_chrome_trace(trace_out)) {
      std::printf("trace written: %s (%llu events, %llu dropped)\n",
                  trace_out.c_str(),
                  static_cast<unsigned long long>(
                      gbbs::obs::flight_recorder::global().events_recorded()),
                  static_cast<unsigned long long>(
                      gbbs::obs::flight_recorder::global().events_dropped()));
    } else {
      std::fprintf(stderr, "trace export failed: %s\n", trace_out.c_str());
    }
  }
  return 0;
}
