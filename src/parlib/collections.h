// Higher-level parallel collection operations built on the sorts:
// merge (two sorted sequences), remove_duplicates, and group_by — the
// utilities PBBS exposes next to the core primitives. All are O(n log n)
// work or better with polylogarithmic depth.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "parlib/integer_sort.h"
#include "parlib/parallel.h"
#include "parlib/sequence_ops.h"
#include "parlib/sort.h"

namespace parlib {

// Merge two sorted sequences into one sorted sequence (stable: ties take
// from `a` first). O(n) work, polylog depth via dual binary search.
template <typename T, typename Less = std::less<T>>
std::vector<T> merge(const std::vector<T>& a, const std::vector<T>& b,
                     const Less& less = Less{}) {
  std::vector<T> joined(a.size() + b.size());
  // Reuse the internal parallel merge by laying both inputs in one buffer.
  std::vector<T> src(a.size() + b.size());
  parallel_for(0, a.size(), [&](std::size_t i) { src[i] = a[i]; });
  parallel_for(0, b.size(),
               [&](std::size_t i) { src[a.size() + i] = b[i]; });
  internal::parallel_merge(src, 0, a.size(), a.size(), src.size(), joined, 0,
                           less);
  return joined;
}

// Distinct values of an integer-keyed sequence, sorted ascending.
// O(n) work via radix sort + adjacent-unique pack.
template <typename T, typename KeyFn>
std::vector<T> remove_duplicates(std::vector<T> in, const KeyFn& key_of) {
  if (in.size() <= 1) return in;
  integer_sort_inplace(in, key_of);
  auto keep = tabulate<std::uint8_t>(in.size(), [&](std::size_t i) {
    return static_cast<std::uint8_t>(i == 0 ||
                                     key_of(in[i - 1]) != key_of(in[i]));
  });
  return pack(in, keep);
}

inline std::vector<std::uint32_t> remove_duplicates(
    std::vector<std::uint32_t> in) {
  return remove_duplicates(std::move(in),
                           [](std::uint32_t x) { return x; });
}

// Group (key, value) pairs by key: returns one (key, values...) group per
// distinct key, keys ascending, values in input order (stable radix sort).
template <typename K, typename V>
std::vector<std::pair<K, std::vector<V>>> group_by(
    std::vector<std::pair<K, V>> pairs) {
  using Group = std::pair<K, std::vector<V>>;
  if (pairs.empty()) return {};
  integer_sort_inplace(pairs, [](const auto& kv) { return kv.first; });
  auto is_start = tabulate<std::uint8_t>(pairs.size(), [&](std::size_t i) {
    return static_cast<std::uint8_t>(i == 0 ||
                                     pairs[i - 1].first != pairs[i].first);
  });
  auto starts = pack_index<std::size_t>(is_start);
  std::vector<Group> out(starts.size());
  parallel_for(0, starts.size(), [&](std::size_t s) {
    const std::size_t lo = starts[s];
    const std::size_t hi = (s + 1 < starts.size()) ? starts[s + 1]
                                                   : pairs.size();
    out[s].first = pairs[lo].first;
    out[s].second.resize(hi - lo);
    for (std::size_t i = lo; i < hi; ++i) {
      out[s].second[i - lo] = pairs[i].second;
    }
  });
  return out;
}

}  // namespace parlib
