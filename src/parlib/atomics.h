// The three atomic primitives of the paper's MT-RAM model (Section 3):
// test-and-set (TS), fetch-and-add (FA), and priority-write (PW), plus the
// generic CAS they are built from. Implemented with std::atomic_ref so they
// work directly on elements of ordinary arrays.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <type_traits>

namespace parlib {

// Atomically compare *loc with expected and set it to desired on match.
template <typename T>
bool atomic_cas(T* loc, T expected, T desired) {
  static_assert(std::is_trivially_copyable_v<T>);
  std::atomic_ref<T> ref(*loc);
  return ref.compare_exchange_strong(expected, desired,
                                     std::memory_order_acq_rel,
                                     std::memory_order_acquire);
}

template <typename T>
T atomic_load(const T* loc) {
  std::atomic_ref<const T> ref(*loc);
  return ref.load(std::memory_order_acquire);
}

template <typename T>
void atomic_store(T* loc, T value) {
  std::atomic_ref<T> ref(*loc);
  ref.store(value, std::memory_order_release);
}

// test-and-set(&x): if x is 0, atomically set it to 1 and return true.
template <typename T>
bool test_and_set(T* loc) {
  return atomic_load(loc) == T{0} && atomic_cas(loc, T{0}, T{1});
}

// fetch-and-add(&x): atomically x += delta, returning the previous value.
template <typename T>
T fetch_and_add(T* loc, T delta) {
  std::atomic_ref<T> ref(*loc);
  return ref.fetch_add(delta, std::memory_order_acq_rel);
}

// Atomic x += delta for floating-point types (CAS loop); returns the
// previous value. Used by betweenness centrality's path/dependency sums.
template <typename T>
T atomic_add(T* loc, T delta) {
  T current = atomic_load(loc);
  while (!atomic_cas(loc, current, current + delta)) {
    current = atomic_load(loc);
  }
  return current;
}

// priority-write(&x, v, p): if p(v, x) holds, atomically install v (retrying
// while it still beats the current value) and return true; else return false.
template <typename T, typename Priority>
bool priority_write(T* loc, T value, Priority higher_priority) {
  T current = atomic_load(loc);
  while (higher_priority(value, current)) {
    if (atomic_cas(loc, current, value)) return true;
    current = atomic_load(loc);
  }
  return false;
}

template <typename T>
bool write_min(T* loc, T value) {
  return priority_write(loc, value, std::less<T>());
}

template <typename T>
bool write_max(T* loc, T value) {
  return priority_write(loc, value, std::greater<T>());
}

}  // namespace parlib
