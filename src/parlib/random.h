// Deterministic splittable randomness: a counter-based hash RNG (so parallel
// loops can draw independent values by index with no shared state), random
// permutations, and the exponential samples used by the LDD start shifts.
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace parlib {

// Finalizer from splitmix64; a high-quality 64->64 mixing function.
inline std::uint64_t hash64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

inline std::uint32_t hash32(std::uint32_t x) {
  return static_cast<std::uint32_t>(hash64(x) >> 32);
}

class random {
 public:
  explicit random(std::uint64_t seed = 0) : seed_(seed) {}

  // The i-th random draw of this stream; pure, so safe from parallel loops.
  std::uint64_t ith_rand(std::uint64_t i) const { return hash64(seed_ ^ hash64(i)); }

  // An independent child stream (e.g., one per round of an algorithm).
  random fork(std::uint64_t i) const { return random(ith_rand(i)); }

  random next() const { return fork(0x5bf03635); }

  // Uniform double in [0, 1).
  double ith_uniform(std::uint64_t i) const {
    return static_cast<double>(ith_rand(i) >> 11) * 0x1.0p-53;
  }

  // Exponential with rate beta (LDD start times, Section A Algorithm 5).
  double ith_exponential(std::uint64_t i, double beta) const {
    const double u = ith_uniform(i);
    return -std::log1p(-u) / beta;
  }

 private:
  std::uint64_t seed_;
};

}  // namespace parlib

#include "parlib/integer_sort.h"

namespace parlib {

// A uniformly random permutation of [0, n), computed by sorting indices by
// 64-bit random keys (stable sort makes the tiny collision probability
// harmless: the result is a permutation regardless).
inline std::vector<std::uint32_t> random_permutation(std::size_t n,
                                                     random rng) {
  std::vector<std::uint64_t> keyed(n);
  parallel_for(0, n, [&](std::size_t i) {
    // high bits: random key; low 32 bits: index.
    keyed[i] = (rng.ith_rand(i) << 32) | static_cast<std::uint32_t>(i);
  });
  integer_sort_inplace(
      keyed, [](std::uint64_t x) { return x >> 32; }, 32);
  std::vector<std::uint32_t> perm(n);
  parallel_for(0, n, [&](std::size_t i) {
    perm[i] = static_cast<std::uint32_t>(keyed[i] & 0xFFFFFFFFu);
  });
  return perm;
}

}  // namespace parlib
