// Parallel stable LSD radix sort on unsigned integer keys.
//
// Each 8-bit digit pass is a parallel counting sort: blocks count digit
// occurrences locally, a column-major scan over the (block x bucket) count
// matrix yields stable scatter offsets, and a final parallel pass scatters.
// Work is O(n * ceil(bits/8)); for the word-sized keys used throughout the
// library this is the O(n) integer sort assumed by the paper's semisort and
// histogram primitives.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "parlib/parallel.h"
#include "parlib/sequence_ops.h"

namespace parlib {

namespace internal {

inline constexpr std::size_t kRadixBits = 8;
inline constexpr std::size_t kRadix = 1 << kRadixBits;

template <typename T, typename KeyFn>
void counting_sort_pass(std::vector<T>& in, std::vector<T>& out,
                        const KeyFn& key_of, std::size_t shift) {
  const std::size_t n = in.size();
  const std::size_t block = std::max<std::size_t>(kSeqBlockSize, kRadix);
  const std::size_t nb = num_blocks(n, block);
  // counts[b * kRadix + d] = #elements with digit d in block b.
  std::vector<std::size_t> counts(nb * kRadix, 0);
  parallel_for(
      0, nb,
      [&](std::size_t b) {
        const std::size_t lo = b * block;
        const std::size_t hi = std::min(n, lo + block);
        std::size_t* c = counts.data() + b * kRadix;
        for (std::size_t i = lo; i < hi; ++i) {
          c[(key_of(in[i]) >> shift) & (kRadix - 1)]++;
        }
      },
      1);
  // Column-major exclusive scan: for stability, all of digit d in block 0
  // precedes digit d in block 1, etc.
  std::size_t total = 0;
  for (std::size_t d = 0; d < kRadix; ++d) {
    for (std::size_t b = 0; b < nb; ++b) {
      const std::size_t c = counts[b * kRadix + d];
      counts[b * kRadix + d] = total;
      total += c;
    }
  }
  parallel_for(
      0, nb,
      [&](std::size_t b) {
        const std::size_t lo = b * block;
        const std::size_t hi = std::min(n, lo + block);
        std::size_t* c = counts.data() + b * kRadix;
        for (std::size_t i = lo; i < hi; ++i) {
          const std::size_t d = (key_of(in[i]) >> shift) & (kRadix - 1);
          out[c[d]++] = in[i];
        }
      },
      1);
}

}  // namespace internal

// Stable-sorts `in` in place by key_of(x), which must return an unsigned
// integer < 2^num_bits. num_bits = 0 means "derive from the maximum key".
template <typename T, typename KeyFn>
void integer_sort_inplace(std::vector<T>& in, const KeyFn& key_of,
                          std::size_t num_bits = 0) {
  const std::size_t n = in.size();
  if (n <= 1) return;
  if (num_bits == 0) {
    using K = std::decay_t<decltype(key_of(in[0]))>;
    auto mx = reduce(
        map(in, [&](const T& x) { return key_of(x); }), max_monoid<K>());
    num_bits = 1;
    while ((static_cast<std::uint64_t>(mx) >> num_bits) != 0) ++num_bits;
  }
  std::vector<T> tmp(n);
  std::vector<T>* src = &in;
  std::vector<T>* dst = &tmp;
  for (std::size_t shift = 0; shift < num_bits;
       shift += internal::kRadixBits) {
    internal::counting_sort_pass(*src, *dst, key_of, shift);
    std::swap(src, dst);
  }
  if (src != &in) in.swap(tmp);
}

template <typename T, typename KeyFn>
std::vector<T> integer_sort(std::vector<T> in, const KeyFn& key_of,
                            std::size_t num_bits = 0) {
  integer_sort_inplace(in, key_of, num_bits);
  return in;
}

// Stable counting sort by a small key space [0, num_buckets); returns the
// bucket start offsets (size num_buckets + 1).
template <typename T, typename KeyFn>
std::vector<std::size_t> counting_sort_inplace(std::vector<T>& in,
                                               const KeyFn& key_of,
                                               std::size_t num_buckets) {
  const std::size_t n = in.size();
  std::vector<std::size_t> bucket_starts(num_buckets + 1, 0);
  if (n == 0) return bucket_starts;
  const std::size_t block = std::max<std::size_t>(kSeqBlockSize, num_buckets);
  const std::size_t nb = num_blocks(n, block);
  std::vector<std::size_t> counts(nb * num_buckets, 0);
  parallel_for(
      0, nb,
      [&](std::size_t b) {
        const std::size_t lo = b * block;
        const std::size_t hi = std::min(n, lo + block);
        std::size_t* c = counts.data() + b * num_buckets;
        for (std::size_t i = lo; i < hi; ++i) c[key_of(in[i])]++;
      },
      1);
  std::size_t total = 0;
  for (std::size_t d = 0; d < num_buckets; ++d) {
    bucket_starts[d] = total;
    for (std::size_t b = 0; b < nb; ++b) {
      const std::size_t c = counts[b * num_buckets + d];
      counts[b * num_buckets + d] = total;
      total += c;
    }
  }
  bucket_starts[num_buckets] = total;
  std::vector<T> out(n);
  parallel_for(
      0, nb,
      [&](std::size_t b) {
        const std::size_t lo = b * block;
        const std::size_t hi = std::min(n, lo + block);
        std::size_t* c = counts.data() + b * num_buckets;
        for (std::size_t i = lo; i < hi; ++i) out[c[key_of(in[i])]++] = in[i];
      },
      1);
  in.swap(out);
  return bucket_starts;
}

}  // namespace parlib
