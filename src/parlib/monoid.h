// Reduction monoids: an associative combine plus its identity, used by
// reduce/scan and the histogram.
#pragma once

#include <algorithm>
#include <limits>
#include <utility>

namespace parlib {

template <typename T, typename F>
struct monoid {
  using value_type = T;
  T identity;
  F combine;
  monoid(T id, F f) : identity(id), combine(std::move(f)) {}
};

template <typename T, typename F>
monoid<T, F> make_monoid(T identity, F combine) {
  return monoid<T, F>(identity, std::move(combine));
}

template <typename T>
auto plus_monoid() {
  return make_monoid(T{0}, [](T a, T b) { return a + b; });
}

template <typename T>
auto max_monoid() {
  return make_monoid(std::numeric_limits<T>::lowest(),
                     [](T a, T b) { return std::max(a, b); });
}

template <typename T>
auto min_monoid() {
  return make_monoid(std::numeric_limits<T>::max(),
                     [](T a, T b) { return std::min(a, b); });
}

template <typename T>
auto or_monoid() {
  return make_monoid(T{0}, [](T a, T b) { return a | b; });
}

}  // namespace parlib
