// parallel_for and helpers built on the fork-join scheduler.
//
// parallel_for(lo, hi, f) applies f to every index in [lo, hi) with
// logarithmic-depth recursive splitting. The granularity (size below which a
// range is run sequentially) is chosen automatically to give each active
// worker a few dozen chunks, which is enough slack for work stealing to
// balance skewed iterations; pass `granularity` explicitly for very cheap or
// very expensive loop bodies.
#pragma once

#include <algorithm>
#include <cstddef>
#include <utility>

#include "parlib/scheduler.h"

namespace parlib {

namespace internal {

template <typename F>
void parallel_for_rec(std::size_t lo, std::size_t hi, const F& f,
                      std::size_t granularity) {
  const std::size_t n = hi - lo;
  if (n <= granularity) {
    for (std::size_t i = lo; i < hi; ++i) f(i);
    return;
  }
  const std::size_t mid = lo + n / 2;
  par_do([&] { parallel_for_rec(lo, mid, f, granularity); },
         [&] { parallel_for_rec(mid, hi, f, granularity); });
}

}  // namespace internal

inline std::size_t default_granularity(std::size_t n) {
  // Unregistered threads run par_do inline-sequentially (scheduler.h), so
  // splitting their loops would only add recursion overhead: one chunk.
  if (!scheduler::instance().is_registered()) return n;
  const std::size_t workers = num_active_workers();
  if (workers <= 1) return n;  // fully sequential
  // ~32 chunks per worker, but never chunks smaller than 64 iterations so
  // that trivial loop bodies do not drown in scheduling overhead.
  return std::max<std::size_t>(64, n / (32 * workers) + 1);
}

template <typename F>
void parallel_for(std::size_t lo, std::size_t hi, const F& f,
                  std::size_t granularity = 0) {
  if (hi <= lo) return;
  if (granularity == 0) granularity = default_granularity(hi - lo);
  internal::parallel_for_rec(lo, hi, f, granularity);
}

// Run both branches in parallel only if `cond` holds (used to cut off
// parallelism below a size threshold in recursive algorithms).
template <typename Lf, typename Rf>
void par_do_if(bool cond, Lf&& left, Rf&& right) {
  if (cond) {
    par_do(std::forward<Lf>(left), std::forward<Rf>(right));
  } else {
    left();
    right();
  }
}

}  // namespace parlib
