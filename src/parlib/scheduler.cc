#include "parlib/scheduler.h"

#include <cstdlib>
#include <string>

namespace parlib {

namespace {

std::size_t& configured_workers() {
  static std::size_t n = 0;  // 0 = not configured, use env / hardware
  return n;
}

std::size_t default_num_workers() {
  if (configured_workers() != 0) return configured_workers();
  if (const char* env = std::getenv("PARLIB_NUM_WORKERS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v >= 1) return static_cast<std::size_t>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

thread_local std::size_t tls_worker_id = scheduler::kNoWorker;

std::uint64_t mix_rng(std::uint64_t& state) {
  // xorshift64*, good enough for victim selection.
  state ^= state >> 12;
  state ^= state << 25;
  state ^= state >> 27;
  return state * 0x2545F4914F6CDD1DULL;
}

}  // namespace

scheduler& scheduler::instance() {
  static scheduler s(default_num_workers());
  return s;
}

void scheduler::set_num_workers(std::size_t n) {
  configured_workers() = n == 0 ? 1 : n;
}

scheduler::scheduler(std::size_t num_workers)
    : num_workers_(num_workers == 0 ? 1 : num_workers),
      active_workers_(num_workers_),
      deques_(new internal::work_deque[num_workers_ + kMaxExternalWorkers]),
      slot_claimed_(
          new std::atomic<bool>[num_workers_ + kMaxExternalWorkers]),
      slot_limit_(num_workers_) {
  for (std::size_t s = 0; s < max_slots(); ++s) {
    slot_claimed_[s].store(s < num_workers_, std::memory_order_relaxed);
  }
  // The constructing thread (normally main, first to touch the scheduler)
  // is worker 0 for the lifetime of the process.
  tls_worker_id = 0;
  threads_.reserve(num_workers_ - 1);
  for (std::size_t id = 1; id < num_workers_; ++id) {
    threads_.emplace_back([this, id] { worker_loop(id); });
  }
}

scheduler::~scheduler() {
  shutting_down_.store(true, std::memory_order_release);
  for (auto& t : threads_) t.join();
}

std::size_t scheduler::worker_id() const { return tls_worker_id; }

std::size_t scheduler::register_external_worker() {
  if (tls_worker_id != kNoWorker) return tls_worker_id;  // already a worker
  for (std::size_t s = num_workers_; s < max_slots(); ++s) {
    bool expected = false;
    if (slot_claimed_[s].compare_exchange_strong(
            expected, true, std::memory_order_acquire,
            std::memory_order_relaxed)) {
      // Publish the slot to thieves before any job can land on it.
      std::size_t limit = slot_limit_.load(std::memory_order_relaxed);
      while (limit < s + 1 &&
             !slot_limit_.compare_exchange_weak(limit, s + 1,
                                                std::memory_order_release,
                                                std::memory_order_relaxed)) {
      }
      tls_worker_id = s;
      event_counters::global().sched_external_registrations.fetch_add(
          1, std::memory_order_relaxed);
      return s;
    }
  }
  return kNoWorker;  // table full: the caller stays inline-sequential
}

void scheduler::unregister_external_worker() {
  const std::size_t id = tls_worker_id;
  if (id == kNoWorker || id < num_workers_) return;  // native ids persist
  tls_worker_id = kNoWorker;
  // The thread is outside any par_do, so its pushes and pops are balanced
  // and the deque is empty; the release pairs with the next claimer's
  // acquire CAS so it observes the deque's final indices.
  slot_claimed_[id].store(false, std::memory_order_release);
}

void scheduler::set_active_workers(std::size_t n) {
  if (n == 0) n = 1;
  if (n > num_workers_) n = num_workers_;
  active_workers_.store(n, std::memory_order_relaxed);
}

void scheduler::worker_loop(std::size_t id) {
  tls_worker_id = id;
  std::uint64_t rng = 0x9E3779B97F4A7C15ULL * (id + 1);
  std::size_t idle_spins = 0;
  while (!shutting_down_.load(std::memory_order_acquire)) {
    if (id >= num_active_workers() || !steal_and_run(rng)) {
      if (++idle_spins > 64) {
        std::this_thread::yield();
        idle_spins = 0;
      }
    } else {
      idle_spins = 0;
    }
  }
}

namespace {

// Run a freshly stolen job on the thief's thread. The thief adopts the
// job's trace id for the duration — any spans, nested forks, or counters
// the stolen subtask emits attribute to the request that forked it, not to
// whatever the thief was doing before — and the steal/run transitions are
// surfaced to the flight-recorder hook with the job's address as the key
// so the exporter can draw a fork→steal flow arrow across threads.
void run_stolen(internal::job* j) {
  const std::uint64_t tid = j->trace_id;
  const std::uint64_t key = reinterpret_cast<std::uint64_t>(j);
  trace::emit_sched_event(trace::sched_event::steal, tid, key);
  trace::trace_id_scope scope(tid);
  // Adopt the forking request's cancellation token too: a stolen subtask
  // of a cancelled query polls its way out just like the owner would.
  cancel::token_scope cscope(j->cancel);
  trace::emit_sched_event(trace::sched_event::run_begin, tid, key);
  j->execute();
  trace::emit_sched_event(trace::sched_event::run_end, tid, key);
  j->done.store(true, std::memory_order_release);
}

}  // namespace

bool scheduler::steal_and_run(std::uint64_t& rng_state) {
  // Victims span every slot ever claimed: native workers *and* registered
  // external threads (an external reader's forks are stealable by anyone).
  // Inactive native slots stay in range — their deques are simply empty.
  const std::size_t limit = slot_limit_.load(std::memory_order_acquire);
  // A couple of random probes, then a linear sweep so that a lone ready job
  // is always found.
  for (std::size_t attempt = 0; attempt < 2; ++attempt) {
    const std::size_t victim = mix_rng(rng_state) % limit;
    if (internal::job* j = deques_[victim].steal()) {
      steals_.fetch_add(1, std::memory_order_relaxed);
      run_stolen(j);
      return true;
    }
  }
  for (std::size_t victim = 0; victim < limit; ++victim) {
    if (internal::job* j = deques_[victim].steal()) {
      steals_.fetch_add(1, std::memory_order_relaxed);
      run_stolen(j);
      return true;
    }
  }
  return false;
}

void scheduler::wait_for(internal::job& j) {
  std::uint64_t rng =
      0xBF58476D1CE4E5B9ULL * (tls_worker_id + 0x9E3779B9ULL);
  std::size_t idle_spins = 0;
  while (!j.done.load(std::memory_order_acquire)) {
    if (!steal_and_run(rng)) {
      if (++idle_spins > 64) {
        std::this_thread::yield();
        idle_spins = 0;
      }
    } else {
      idle_spins = 0;
    }
  }
}

}  // namespace parlib
