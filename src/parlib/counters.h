// Software event counters — the substitute for the hardware PCM counters of
// Table 6 (cycles stalled / LLC misses / bytes of memory traffic). We count
// the quantities the paper's locality argument is actually about:
//   * bytes written by the sparse edgeMap variants (edgeMapSparse writes one
//     slot per *edge*, edgeMapBlocked one slot per *live neighbor*);
//   * fetch-and-add operations issued by the contended k-core variant vs
//     histogram invocations of the low-contention variant.
// Counters are updated with one atomic add per block/round (never per edge),
// so enabling them does not perturb the measurement.
//
// Readers should take a snapshot() — one seqlock-consistent read of every
// field — rather than loading fields one by one: a field-by-field read
// racing a concurrent reset() observes some fields zeroed and others not
// (the pre-obs torn-read bug). snapshot() retries while a reset is in
// flight, so a snapshot is always entirely pre-reset or entirely
// post-reset. Snapshots remain racy against in-flight *increments* (each
// field is read once, relaxed) — inherent and fine for monitoring. The
// obs registry (src/obs/registry.h) exports these counters through this
// path; it is the read side every tool should use.
#pragma once

#include <atomic>
#include <cstdint>

namespace parlib {

// Plain-value copy of every event counter, taken at one consistent point
// with respect to reset().
struct event_counters_snapshot {
  std::uint64_t edgemap_slots_written = 0;
  std::uint64_t edgemap_edges_examined = 0;
  std::uint64_t fetch_add_ops = 0;
  std::uint64_t histogram_calls = 0;
  std::uint64_t merged_csr_materializations = 0;
  std::uint64_t sched_external_registrations = 0;
  std::uint64_t sched_unregistered_pardos = 0;
  std::uint64_t sched_reader_forks = 0;
  std::uint64_t sched_inline_fallbacks = 0;
};

struct event_counters {
  std::atomic<std::uint64_t> edgemap_slots_written{0};
  std::atomic<std::uint64_t> edgemap_edges_examined{0};
  std::atomic<std::uint64_t> fetch_add_ops{0};
  std::atomic<std::uint64_t> histogram_calls{0};
  // Full merged-CSR builds of a delta overlay (overlay_snapshot::
  // materialize). The serving layer's fresh analytics path must leave
  // this untouched — asserted by the view-equivalence tests.
  std::atomic<std::uint64_t> merged_csr_materializations{0};
  // Scheduler participation (see scheduler.h). External registrations is
  // bumped once per register_external_worker(); unregistered par_dos once
  // per fork that fell back to inline-sequential because the calling
  // thread never registered (a non-zero value under serving load means a
  // reader pool forgot its worker_guards); reader forks is the number of
  // jobs reader threads pushed onto their *own* deques, flushed by the
  // query engine once per query — the counter that proves concurrent
  // queries fork onto per-reader deques instead of funneling through
  // deque 0. Inline fallbacks counts par_dos that ran both branches
  // inline because the owner's deque was full (capacity overflow — in
  // practice unreachable for log-depth frames; non-zero sustained values
  // mean a workload is forking linearly).
  std::atomic<std::uint64_t> sched_external_registrations{0};
  std::atomic<std::uint64_t> sched_unregistered_pardos{0};
  std::atomic<std::uint64_t> sched_reader_forks{0};
  std::atomic<std::uint64_t> sched_inline_fallbacks{0};

  // Consistent read of every field (see file header): never observes a
  // half-applied reset.
  event_counters_snapshot snapshot() const {
    for (;;) {
      std::uint64_t g1 = reset_gen_.load(std::memory_order_acquire);
      if (g1 & 1) continue;  // reset in flight; retry
      event_counters_snapshot s;
      s.edgemap_slots_written =
          edgemap_slots_written.load(std::memory_order_relaxed);
      s.edgemap_edges_examined =
          edgemap_edges_examined.load(std::memory_order_relaxed);
      s.fetch_add_ops = fetch_add_ops.load(std::memory_order_relaxed);
      s.histogram_calls = histogram_calls.load(std::memory_order_relaxed);
      s.merged_csr_materializations =
          merged_csr_materializations.load(std::memory_order_relaxed);
      s.sched_external_registrations =
          sched_external_registrations.load(std::memory_order_relaxed);
      s.sched_unregistered_pardos =
          sched_unregistered_pardos.load(std::memory_order_relaxed);
      s.sched_reader_forks =
          sched_reader_forks.load(std::memory_order_relaxed);
      s.sched_inline_fallbacks =
          sched_inline_fallbacks.load(std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_acquire);
      if (reset_gen_.load(std::memory_order_relaxed) == g1) return s;
    }
  }

  // Zero every counter. Seqlock-guarded: concurrent snapshot() calls
  // retry instead of observing a mix of old and zeroed fields; concurrent
  // reset() calls serialize on the generation word.
  void reset() {
    std::uint64_t g = reset_gen_.load(std::memory_order_relaxed);
    for (;;) {
      if (g & 1) {  // another reset in flight; wait for it
        g = reset_gen_.load(std::memory_order_relaxed);
        continue;
      }
      if (reset_gen_.compare_exchange_weak(g, g + 1,
                                           std::memory_order_acquire)) {
        break;
      }
    }
    edgemap_slots_written.store(0, std::memory_order_relaxed);
    edgemap_edges_examined.store(0, std::memory_order_relaxed);
    fetch_add_ops.store(0, std::memory_order_relaxed);
    histogram_calls.store(0, std::memory_order_relaxed);
    merged_csr_materializations.store(0, std::memory_order_relaxed);
    sched_external_registrations.store(0, std::memory_order_relaxed);
    sched_unregistered_pardos.store(0, std::memory_order_relaxed);
    sched_reader_forks.store(0, std::memory_order_relaxed);
    sched_inline_fallbacks.store(0, std::memory_order_relaxed);
    reset_gen_.store(g + 2, std::memory_order_release);
  }

  static event_counters& global() {
    static event_counters c;
    return c;
  }

 private:
  // Even: stable; odd: a reset is rewriting the fields.
  std::atomic<std::uint64_t> reset_gen_{0};
};

}  // namespace parlib
