// Software event counters — the substitute for the hardware PCM counters of
// Table 6 (cycles stalled / LLC misses / bytes of memory traffic). We count
// the quantities the paper's locality argument is actually about:
//   * bytes written by the sparse edgeMap variants (edgeMapSparse writes one
//     slot per *edge*, edgeMapBlocked one slot per *live neighbor*);
//   * fetch-and-add operations issued by the contended k-core variant vs
//     histogram invocations of the low-contention variant.
// Counters are updated with one atomic add per block/round (never per edge),
// so enabling them does not perturb the measurement.
#pragma once

#include <atomic>
#include <cstdint>

namespace parlib {

struct event_counters {
  std::atomic<std::uint64_t> edgemap_slots_written{0};
  std::atomic<std::uint64_t> edgemap_edges_examined{0};
  std::atomic<std::uint64_t> fetch_add_ops{0};
  std::atomic<std::uint64_t> histogram_calls{0};
  // Full merged-CSR builds of a delta overlay (overlay_snapshot::
  // materialize). The serving layer's fresh analytics path must leave
  // this untouched — asserted by the view-equivalence tests.
  std::atomic<std::uint64_t> merged_csr_materializations{0};
  // Scheduler participation (see scheduler.h). External registrations is
  // bumped once per register_external_worker(); unregistered par_dos once
  // per fork that fell back to inline-sequential because the calling
  // thread never registered (a non-zero value under serving load means a
  // reader pool forgot its worker_guards); reader forks is the number of
  // jobs reader threads pushed onto their *own* deques, flushed by the
  // query engine once per query — the counter that proves concurrent
  // queries fork onto per-reader deques instead of funneling through
  // deque 0.
  std::atomic<std::uint64_t> sched_external_registrations{0};
  std::atomic<std::uint64_t> sched_unregistered_pardos{0};
  std::atomic<std::uint64_t> sched_reader_forks{0};

  void reset() {
    edgemap_slots_written = 0;
    edgemap_edges_examined = 0;
    fetch_add_ops = 0;
    histogram_calls = 0;
    merged_csr_materializations = 0;
    sched_external_registrations = 0;
    sched_unregistered_pardos = 0;
    sched_reader_forks = 0;
  }

  static event_counters& global() {
    static event_counters c;
    return c;
  }
};

}  // namespace parlib
