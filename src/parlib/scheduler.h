// Work-stealing fork-join scheduler.
//
// This is the substrate the paper obtains from Cilk Plus: a nested-parallel
// runtime whose work-stealing scheduler executes a computation with W work and
// D depth in expected time W/P + O(D) on P workers (Blumofe & Leiserson).
// The programming interface is `par_do` (fork two tasks, join both) plus the
// `parallel_for` built on top of it in parallel.h; every algorithm in this
// repository is written against those two calls only.
//
// Design (follows the classic child-stealing scheme):
//  * one worker thread per hardware thread (configurable via the
//    PARLIB_NUM_WORKERS environment variable or set_num_workers());
//  * each worker owns a LIFO deque of jobs; the owner pushes and pops at the
//    back, thieves steal from the front (oldest job = biggest subtree);
//  * par_do(f, g) pushes g, runs f inline, then pops g if nobody stole it;
//    if g was stolen the waiting worker helps by stealing other jobs until
//    g's done flag is set;
//  * the number of *active* workers can be lowered at runtime (used by the
//    benchmark harness to measure T(1) and T(P) in one process): with one
//    active worker par_do degenerates to sequential calls and no job is ever
//    enqueued, so a "1-thread" measurement has no scheduling overhead.
//
// The deques are mutex-protected. A lock-free Chase-Lev deque would shave
// constants, but steals are rare for the coarse tasks produced by our
// granularity-controlled loops, and the mutex version is trivially correct
// (pop_if verifies the popped job is the one this frame pushed, so a racing
// thief can never cause a frame to execute a job belonging to an outer frame).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

namespace parlib {

namespace internal {

// A unit of stealable work. Jobs live on the forking frame's stack; `done`
// is the join flag the forking frame waits on when the job is stolen.
class job {
 public:
  virtual ~job() = default;
  virtual void execute() = 0;
  std::atomic<bool> done{false};
};

template <typename F>
class func_job final : public job {
 public:
  explicit func_job(F& f) : f_(f) {}
  void execute() override { f_(); }

 private:
  F& f_;
};

// Owner pushes/pops at the back; thieves steal from the front.
class work_deque {
 public:
  void push(job* j) {
    std::lock_guard<std::mutex> lk(mutex_);
    items_.push_back(j);
  }

  // Pops the back element only if it is exactly `j`; returns whether it was.
  // A failed pop_if means a thief stole `j` (our frame's pushes/pops are
  // balanced, so if `j` is gone the back element belongs to an outer frame).
  bool pop_if(job* j) {
    std::lock_guard<std::mutex> lk(mutex_);
    if (!items_.empty() && items_.back() == j) {
      items_.pop_back();
      return true;
    }
    return false;
  }

  job* steal() {
    std::lock_guard<std::mutex> lk(mutex_);
    if (items_.empty()) return nullptr;
    job* j = items_.front();
    items_.erase(items_.begin());
    return j;
  }

  bool empty() const {
    std::lock_guard<std::mutex> lk(mutex_);
    return items_.empty();
  }

 private:
  mutable std::mutex mutex_;
  std::vector<job*> items_;
};

}  // namespace internal

class scheduler {
 public:
  // The process-wide scheduler. Created on first use with
  // PARLIB_NUM_WORKERS (or hardware_concurrency) workers.
  static scheduler& instance();

  // Must be called before the first use of instance() to take effect.
  static void set_num_workers(std::size_t n);

  std::size_t num_workers() const { return num_workers_; }

  // Worker id of the calling thread (0 for the main thread, and for any
  // thread the scheduler does not know about).
  std::size_t worker_id() const;

  // Restrict execution to the first `n` workers (1 <= n <= num_workers()).
  // With n == 1, par_do runs both branches inline sequentially.
  void set_active_workers(std::size_t n);
  std::size_t num_active_workers() const {
    return active_workers_.load(std::memory_order_relaxed);
  }

  template <typename Lf, typename Rf>
  void par_do(Lf&& left, Rf&& right) {
    if (num_active_workers() == 1) {
      left();
      right();
      return;
    }
    internal::func_job<Rf> rjob(right);
    const std::size_t id = worker_id();
    deques_[id].push(&rjob);
    left();
    if (deques_[id].pop_if(&rjob)) {
      rjob.execute();
    } else {
      wait_for(rjob);
    }
  }

  ~scheduler();

  scheduler(const scheduler&) = delete;
  scheduler& operator=(const scheduler&) = delete;

 private:
  explicit scheduler(std::size_t num_workers);

  void worker_loop(std::size_t id);
  // Steal one job from a random victim and run it; returns whether one ran.
  bool steal_and_run(std::uint64_t& rng_state);
  void wait_for(internal::job& j);

  std::size_t num_workers_;
  std::atomic<std::size_t> active_workers_;
  std::atomic<bool> shutting_down_{false};
  std::vector<internal::work_deque> deques_;
  std::vector<std::thread> threads_;
};

inline std::size_t num_workers() { return scheduler::instance().num_workers(); }
inline std::size_t num_active_workers() {
  return scheduler::instance().num_active_workers();
}
inline std::size_t worker_id() { return scheduler::instance().worker_id(); }
inline void set_active_workers(std::size_t n) {
  scheduler::instance().set_active_workers(n);
}

// Fork-join: run `left` and `right` in parallel, return when both are done.
template <typename Lf, typename Rf>
void par_do(Lf&& left, Rf&& right) {
  scheduler::instance().par_do(std::forward<Lf>(left), std::forward<Rf>(right));
}

// RAII guard for temporarily changing the active worker count (benchmarks).
class active_workers_guard {
 public:
  explicit active_workers_guard(std::size_t n)
      : saved_(num_active_workers()) {
    set_active_workers(n);
  }
  ~active_workers_guard() { set_active_workers(saved_); }

 private:
  std::size_t saved_;
};

}  // namespace parlib
