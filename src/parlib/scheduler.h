// Work-stealing fork-join scheduler.
//
// This is the substrate the paper obtains from Cilk Plus: a nested-parallel
// runtime whose work-stealing scheduler executes a computation with W work and
// D depth in expected time W/P + O(D) on P workers (Blumofe & Leiserson).
// The programming interface is `par_do` (fork two tasks, join both) plus the
// `parallel_for` built on top of it in parallel.h; every algorithm in this
// repository is written against those two calls only.
//
// Design (follows the classic child-stealing scheme):
//  * one worker thread per hardware thread (configurable via the
//    PARLIB_NUM_WORKERS environment variable or set_num_workers()); the
//    thread that first touches the scheduler becomes worker 0, the remaining
//    workers are spawned threads;
//  * each participant owns a *lock-free bounded Chase-Lev deque* of jobs
//    (Chase & Lev, SPAA 2005): the owner pushes and pops at the bottom with
//    plain release/acquire stores, thieves steal from the top, and only the
//    race for the last remaining element is arbitrated with a CAS on the top
//    index. The variant here uses seq_cst accesses at the two Dekker points
//    (owner's bottom-store/top-load in pop, thief's top-load/bottom-load in
//    steal) instead of standalone fences, so ThreadSanitizer models the
//    synchronization exactly. The deque is bounded (kCapacity pending jobs);
//    on overflow par_do simply runs both branches inline — correct, and in
//    practice unreachable for the log-depth frames our loops produce;
//  * par_do(f, g) pushes g, runs f inline, then pops g if nobody stole it;
//    pop_if verifies the popped job is the one this frame pushed, so a racing
//    thief can never cause a frame to execute a job belonging to an outer
//    frame. If g was stolen the waiting frame helps by stealing other jobs
//    until g's done flag is set;
//  * *external participation*: any non-scheduler thread (a query-engine
//    reader, a benchmark writer) can register itself with
//    register_external_worker() — RAII wrapper: worker_guard — which claims
//    it a deque slot of its own from a lock-free slot table. From then on its
//    par_do forks land on its *own* deque (stealable by everyone), and while
//    waiting for a stolen join it help-steals like a native worker. Threads
//    that do NOT register get the kNoWorker sentinel id and their par_do runs
//    both branches inline-sequentially — an unknown thread never enqueues
//    onto a deque it does not own (the pre-registration design funneled every
//    foreign fork through deque 0, serializing concurrent queries and
//    sharing one deque between unrelated threads);
//  * the number of *active* workers can be lowered at runtime (used by the
//    benchmark harness to measure T(1) and T(P) in one process): with one
//    active worker par_do degenerates to sequential calls and no job is ever
//    enqueued, so a "1-thread" measurement has no scheduling overhead. The
//    restriction applies to everyone, external workers included.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "parlib/cancellation.h"
#include "parlib/counters.h"
#include "parlib/trace_hooks.h"

namespace parlib {

namespace internal {

// A unit of stealable work. Jobs live on the forking frame's stack; `done`
// is the join flag the forking frame waits on when the job is stolen.
// `trace_id` is the forking request's trace id (0 = none), stamped before
// the job is published so a thief can attribute the stolen work — and any
// events the stolen subtask emits — to the originating request. `cancel`
// is the forking request's cancellation token (null = not cancellable),
// stamped the same way so a thief's polls observe the request's deadline /
// cancellation exactly like the forking thread's would.
class job {
 public:
  virtual ~job() = default;
  virtual void execute() = 0;
  std::atomic<bool> done{false};
  std::uint64_t trace_id = 0;
  cancel::token* cancel = nullptr;
};

template <typename F>
class func_job final : public job {
 public:
  explicit func_job(F& f) : f_(f) {}
  void execute() override { f_(); }

 private:
  F& f_;
};

// Bounded lock-free Chase-Lev deque. Owner pushes/pops at the bottom,
// thieves steal from the top; indices grow monotonically and wrap into the
// power-of-two ring by masking. Entries can never be overwritten while a
// thief may still read them: push refuses when bottom - top reaches the
// capacity, and a stale thief's CAS on top fails once top has moved on.
//
// The pop side is `pop_if(j)`: pop the bottom element only if it is exactly
// `j`. A frame's pushes and pops are balanced, so when a frame returns to
// its join point either its own job is still at the bottom, or the job was
// stolen and the bottom holds an *outer* frame's job — which pop_if must
// leave in place. This identity check is what makes nested par_do correct
// without any per-frame bookkeeping.
class work_deque {
 public:
  static constexpr std::size_t kCapacity = 1024;  // power of two
  static_assert((kCapacity & (kCapacity - 1)) == 0);

  // Owner only. False when the deque is full (caller runs the job inline).
  bool push(job* j) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_acquire);
    if (b - t >= static_cast<std::int64_t>(kCapacity)) return false;
    buffer_[index(b)].store(j, std::memory_order_relaxed);
    // The release on bottom publishes both the slot write above and the
    // job's construction (sequenced before push) to acquiring thieves.
    bottom_.store(b + 1, std::memory_order_release);
    // Owner-only statistic: single writer, so load+store (not RMW).
    pushes_.store(pushes_.load(std::memory_order_relaxed) + 1,
                  std::memory_order_relaxed);
    return true;
  }

  // Owner only. True iff `expected` was still at the bottom (and is now
  // removed); false if it was stolen (bottom element, if any, belongs to an
  // outer frame and stays). The bottom-store/top-load pair is seq_cst: it
  // forms a Dekker handshake with steal() so that for the last element
  // exactly one of {owner, thief} proceeds to the CAS arbitration.
  bool pop_if(const job* expected) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    bottom_.store(b, std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    if (t <= b) {
      job* j = buffer_[index(b)].load(std::memory_order_relaxed);
      if (j != expected) {
        // Our job was stolen; the bottom element is an outer frame's.
        bottom_.store(b + 1, std::memory_order_relaxed);
        return false;
      }
      if (t == b) {
        // Last element: arbitrate with a concurrent thief via CAS on top.
        const bool won = top_.compare_exchange_strong(
            t, t + 1, std::memory_order_seq_cst, std::memory_order_relaxed);
        bottom_.store(b + 1, std::memory_order_relaxed);
        return won;
      }
      return true;  // >= 2 elements: thieves cannot reach the bottom one
    }
    bottom_.store(b + 1, std::memory_order_relaxed);  // deque was empty
    return false;
  }

  // Any thread. Null when empty or when the CAS race was lost (the caller
  // probes another victim rather than retrying).
  job* steal() {
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_seq_cst);
    if (t >= b) return nullptr;
    job* j = buffer_[index(t)].load(std::memory_order_relaxed);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      return nullptr;
    }
    return j;
  }

  // Jobs ever pushed onto this deque (owner-maintained, monotone across
  // slot reuse). The scheduler exposes it per slot so callers can assert
  // *where* forks land — e.g. that a registered reader thread forks onto
  // its own deque and not deque 0.
  std::uint64_t pushes() const {
    return pushes_.load(std::memory_order_relaxed);
  }

  // Approximate pending-job count (racy by nature; an occupancy gauge for
  // the observability layer, not a synchronization primitive).
  std::size_t size() const {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_relaxed);
    return b > t ? static_cast<std::size_t>(b - t) : 0;
  }

 private:
  static std::size_t index(std::int64_t i) {
    return static_cast<std::size_t>(i) & (kCapacity - 1);
  }

  alignas(64) std::atomic<std::int64_t> top_{0};
  alignas(64) std::atomic<std::int64_t> bottom_{0};
  alignas(64) std::atomic<std::uint64_t> pushes_{0};
  std::array<std::atomic<job*>, kCapacity> buffer_{};
};

}  // namespace internal

class scheduler {
 public:
  // Sentinel worker id of a thread the scheduler does not know about.
  static constexpr std::size_t kNoWorker = static_cast<std::size_t>(-1);
  // Deque slots reserved for externally registered threads, beyond the
  // native workers. Registration beyond this returns kNoWorker and the
  // thread simply stays sequential.
  static constexpr std::size_t kMaxExternalWorkers = 128;

  // The process-wide scheduler. Created on first use with
  // PARLIB_NUM_WORKERS (or hardware_concurrency) workers.
  static scheduler& instance();

  // Must be called before the first use of instance() to take effect.
  static void set_num_workers(std::size_t n);

  std::size_t num_workers() const { return num_workers_; }

  // Total deque slots (native workers + external capacity). Slot ids are
  // always < max_slots().
  std::size_t max_slots() const {
    return num_workers_ + kMaxExternalWorkers;
  }

  // Worker id of the calling thread: 0 for the thread that created the
  // scheduler, 1..num_workers()-1 for native workers, >= num_workers() for
  // registered external threads, kNoWorker for everyone else.
  //
  // Caveat: worker 0 is bound to the *first thread that touches the
  // scheduler*, permanently. If that thread is short-lived (e.g. a pool
  // thread registering via worker_guard before main ever forks), slot 0
  // is orphaned when it exits and the real main thread stays unregistered
  // (inline-sequential par_do; sched_unregistered_pardos counts it).
  // Long-lived host threads should touch instance() before spawning pools
  // — query_engine's constructor does this for the serving layer.
  std::size_t worker_id() const;
  bool is_registered() const { return worker_id() != kNoWorker; }

  // Claim a deque slot for the calling thread so its par_do forks onto its
  // own deque and it help-steals while joining (see worker_guard for the
  // RAII form). Returns the slot id, the existing id if the thread is
  // already a worker, or kNoWorker if the external slot table is full (the
  // thread then keeps running par_do inline-sequentially). A registered
  // thread must call unregister_external_worker() before exiting, outside
  // any par_do.
  std::size_t register_external_worker();
  void unregister_external_worker();

  // Restrict execution to the first `n` workers (1 <= n <= num_workers()).
  // With n == 1, par_do runs both branches inline sequentially — for every
  // thread, external workers included (the T(1) measurement contract).
  void set_active_workers(std::size_t n);
  std::size_t num_active_workers() const {
    return active_workers_.load(std::memory_order_relaxed);
  }

  template <typename Lf, typename Rf>
  void par_do(Lf&& left, Rf&& right) {
    const std::size_t id = worker_id();
    if (id == kNoWorker) {
      // Unknown thread: never touch a deque we don't own. Counted so the
      // serving layer can detect readers that forgot to register.
      event_counters::global().sched_unregistered_pardos.fetch_add(
          1, std::memory_order_relaxed);
      left();
      right();
      return;
    }
    if (num_active_workers() == 1) {
      left();
      right();
      return;
    }
    internal::func_job<Rf> rjob(right);
    rjob.trace_id = trace::current_trace_id();
    rjob.cancel = cancel::current_token();
    if (!deques_[id].push(&rjob)) {
      // Deque full: overflow fallback, run both inline. Counted so the
      // obs layer can surface workloads that fork deeper than the deque.
      event_counters::global().sched_inline_fallbacks.fetch_add(
          1, std::memory_order_relaxed);
      trace::emit_sched_event(trace::sched_event::inline_fallback,
                              rjob.trace_id,
                              reinterpret_cast<std::uint64_t>(&rjob));
      left();
      right();
      return;
    }
    trace::emit_sched_event(trace::sched_event::fork, rjob.trace_id,
                            reinterpret_cast<std::uint64_t>(&rjob));
    left();
    if (deques_[id].pop_if(&rjob)) {
      rjob.execute();
    } else {
      wait_for(rjob);
    }
  }

  // Jobs ever pushed onto `slot`'s deque (monotone; see work_deque::pushes).
  std::uint64_t push_count(std::size_t slot) const {
    return slot < max_slots() ? deques_[slot].pushes() : 0;
  }

  // Successful steals across all participants since startup.
  std::uint64_t total_steals() const {
    return steals_.load(std::memory_order_relaxed);
  }

  // Approximate pending jobs on one deque / across every ever-claimed
  // slot (the obs layer's occupancy gauge). Racy reads by design.
  std::size_t deque_occupancy(std::size_t slot) const {
    return slot < max_slots() ? deques_[slot].size() : 0;
  }
  std::size_t total_deque_occupancy() const {
    std::size_t total = 0;
    const std::size_t limit = slot_limit_.load(std::memory_order_relaxed);
    for (std::size_t i = 0; i < limit; ++i) total += deques_[i].size();
    return total;
  }

  ~scheduler();

  scheduler(const scheduler&) = delete;
  scheduler& operator=(const scheduler&) = delete;

 private:
  explicit scheduler(std::size_t num_workers);

  void worker_loop(std::size_t id);
  // Steal one job from a random victim and run it; returns whether one ran.
  bool steal_and_run(std::uint64_t& rng_state);
  void wait_for(internal::job& j);

  std::size_t num_workers_;
  std::atomic<std::size_t> active_workers_;
  std::atomic<bool> shutting_down_{false};
  // Fixed slot table: [0, num_workers_) native, the rest claimable by
  // external threads. Deque storage is preallocated so a slot's deque is
  // valid for stealing the instant slot_limit_ covers it.
  std::unique_ptr<internal::work_deque[]> deques_;
  std::unique_ptr<std::atomic<bool>[]> slot_claimed_;
  // Upper bound of ever-claimed slots — the victim-scan range. Monotone;
  // scanning a freed slot is harmless (its deque is empty).
  std::atomic<std::size_t> slot_limit_;
  std::atomic<std::uint64_t> steals_{0};
  std::vector<std::thread> threads_;
};

inline std::size_t num_workers() { return scheduler::instance().num_workers(); }
inline std::size_t num_active_workers() {
  return scheduler::instance().num_active_workers();
}
inline std::size_t worker_id() { return scheduler::instance().worker_id(); }
inline void set_active_workers(std::size_t n) {
  scheduler::instance().set_active_workers(n);
}

// Index for per-worker scratch arrays, always < max_worker_slots(). Every
// registered participant has a unique slot; all unregistered threads share
// the final overflow slot — safe, because par_do from an unregistered
// thread runs inline, so at most one unregistered thread (the caller)
// ever executes inside a given parallel region.
inline std::size_t max_worker_slots() {
  return scheduler::instance().max_slots() + 1;
}
inline std::size_t worker_slot() {
  const std::size_t id = scheduler::instance().worker_id();
  return id == scheduler::kNoWorker ? scheduler::instance().max_slots() : id;
}

// Fork-join: run `left` and `right` in parallel, return when both are done.
template <typename Lf, typename Rf>
void par_do(Lf&& left, Rf&& right) {
  scheduler::instance().par_do(std::forward<Lf>(left), std::forward<Rf>(right));
}

// RAII guard for temporarily changing the active worker count (benchmarks).
class active_workers_guard {
 public:
  explicit active_workers_guard(std::size_t n)
      : saved_(num_active_workers()) {
    set_active_workers(n);
  }
  ~active_workers_guard() { set_active_workers(saved_); }

 private:
  std::size_t saved_;
};

// RAII registration of the calling thread as an external worker: its
// par_do forks go onto its own deque (at full parallelism, stealable by
// every participant) instead of running inline-sequentially. No-op if the
// thread is already a worker, or if the slot table is full (registered()
// reports which). The serving layer's query_engine holds one per reader
// thread for the thread's lifetime; short-lived guards are fine too —
// registration is a bounded CAS scan over the free slots.
class worker_guard {
 public:
  worker_guard()
      : was_registered_(scheduler::instance().is_registered()),
        slot_(was_registered_
                  ? scheduler::instance().worker_id()
                  : scheduler::instance().register_external_worker()) {}
  ~worker_guard() {
    if (!was_registered_ && slot_ != scheduler::kNoWorker) {
      scheduler::instance().unregister_external_worker();
    }
  }

  worker_guard(const worker_guard&) = delete;
  worker_guard& operator=(const worker_guard&) = delete;

  bool registered() const { return slot_ != scheduler::kNoWorker; }
  std::size_t slot() const { return slot_; }

 private:
  bool was_registered_;
  std::size_t slot_;
};

}  // namespace parlib
