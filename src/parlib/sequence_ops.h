// The parallel sequence primitives of Section 3: scan, reduce, map/tabulate,
// filter, pack, pack_index and flatten. All are work-efficient (O(n) work)
// and low-depth: they use the standard blocked two-pass scheme — a parallel
// pass computing per-block summaries, a (short) scan over the block
// summaries, and a parallel pass writing block-local results. With block
// count ~ n / BLOCK the summary scan is negligible, giving O(n) work and
// O(BLOCK + n/BLOCK) ~ polylog effective depth for the sizes we run.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "parlib/monoid.h"
#include "parlib/parallel.h"

namespace parlib {

template <typename T>
using sequence = std::vector<T>;

inline constexpr std::size_t kSeqBlockSize = 2048;

inline std::size_t num_blocks(std::size_t n, std::size_t block) {
  return n == 0 ? 0 : (n - 1) / block + 1;
}

// ---------------------------------------------------------------- tabulate

template <typename T, typename F>
sequence<T> tabulate(std::size_t n, const F& f) {
  sequence<T> out(n);
  parallel_for(0, n, [&](std::size_t i) { out[i] = f(i); });
  return out;
}

template <typename In, typename F>
auto map(const In& in, const F& f) {
  using T = std::decay_t<decltype(f(in[0]))>;
  return tabulate<T>(in.size(), [&](std::size_t i) { return f(in[i]); });
}

// ------------------------------------------------------------------ reduce

template <typename In, typename Monoid>
typename Monoid::value_type reduce(const In& in, const Monoid& m) {
  using T = typename Monoid::value_type;
  const std::size_t n = in.size();
  if (n == 0) return m.identity;
  const std::size_t nb = num_blocks(n, kSeqBlockSize);
  if (nb == 1) {
    T acc = m.identity;
    for (std::size_t i = 0; i < n; ++i) acc = m.combine(acc, in[i]);
    return acc;
  }
  sequence<T> sums(nb);
  parallel_for(
      0, nb,
      [&](std::size_t b) {
        const std::size_t lo = b * kSeqBlockSize;
        const std::size_t hi = std::min(n, lo + kSeqBlockSize);
        T acc = m.identity;
        for (std::size_t i = lo; i < hi; ++i) acc = m.combine(acc, in[i]);
        sums[b] = acc;
      },
      1);
  T acc = m.identity;
  for (std::size_t b = 0; b < nb; ++b) acc = m.combine(acc, sums[b]);
  return acc;
}

template <typename In>
auto reduce_add(const In& in) {
  using T = std::decay_t<decltype(in[0])>;
  return reduce(in, plus_monoid<T>());
}

template <typename In, typename F>
std::size_t count_if(const In& in, const F& pred) {
  const std::size_t n = in.size();
  const std::size_t nb = num_blocks(n, kSeqBlockSize);
  if (nb <= 1) {
    std::size_t c = 0;
    for (std::size_t i = 0; i < n; ++i) c += pred(in[i]) ? 1 : 0;
    return c;
  }
  sequence<std::size_t> sums(nb);
  parallel_for(
      0, nb,
      [&](std::size_t b) {
        const std::size_t lo = b * kSeqBlockSize;
        const std::size_t hi = std::min(n, lo + kSeqBlockSize);
        std::size_t c = 0;
        for (std::size_t i = lo; i < hi; ++i) c += pred(in[i]) ? 1 : 0;
        sums[b] = c;
      },
      1);
  std::size_t c = 0;
  for (std::size_t b = 0; b < nb; ++b) c += sums[b];
  return c;
}

// -------------------------------------------------------------------- scan

// Exclusive scan of `in` into `out` (which may alias `in`); returns the
// total. out[i] = id (+) in[0] (+) ... (+) in[i-1].
template <typename In, typename Out, typename Monoid>
typename Monoid::value_type scan_into(const In& in, Out& out,
                                      const Monoid& m) {
  using T = typename Monoid::value_type;
  const std::size_t n = in.size();
  if (n == 0) return m.identity;
  const std::size_t nb = num_blocks(n, kSeqBlockSize);
  if (nb == 1) {
    T acc = m.identity;
    for (std::size_t i = 0; i < n; ++i) {
      const T v = in[i];
      out[i] = acc;
      acc = m.combine(acc, v);
    }
    return acc;
  }
  sequence<T> sums(nb);
  parallel_for(
      0, nb,
      [&](std::size_t b) {
        const std::size_t lo = b * kSeqBlockSize;
        const std::size_t hi = std::min(n, lo + kSeqBlockSize);
        T acc = m.identity;
        for (std::size_t i = lo; i < hi; ++i) acc = m.combine(acc, in[i]);
        sums[b] = acc;
      },
      1);
  T total = m.identity;
  for (std::size_t b = 0; b < nb; ++b) {
    const T s = sums[b];
    sums[b] = total;
    total = m.combine(total, s);
  }
  parallel_for(
      0, nb,
      [&](std::size_t b) {
        const std::size_t lo = b * kSeqBlockSize;
        const std::size_t hi = std::min(n, lo + kSeqBlockSize);
        T acc = sums[b];
        for (std::size_t i = lo; i < hi; ++i) {
          const T v = in[i];
          out[i] = acc;
          acc = m.combine(acc, v);
        }
      },
      1);
  return total;
}

// Exclusive plus-scan in place; returns the total.
template <typename T>
T scan_inplace(sequence<T>& seq) {
  return scan_into(seq, seq, plus_monoid<T>());
}

template <typename In, typename Monoid>
std::pair<sequence<typename Monoid::value_type>,
          typename Monoid::value_type>
scan(const In& in, const Monoid& m) {
  sequence<typename Monoid::value_type> out(in.size());
  auto total = scan_into(in, out, m);
  return {std::move(out), total};
}

// ------------------------------------------------------------ filter/pack

// Returns elements of `in` satisfying `pred`, preserving order.
template <typename In, typename F>
auto filter(const In& in, const F& pred) {
  using T = std::decay_t<decltype(in[0])>;
  const std::size_t n = in.size();
  const std::size_t nb = num_blocks(n, kSeqBlockSize);
  if (nb <= 1) {
    sequence<T> out;
    for (std::size_t i = 0; i < n; ++i)
      if (pred(in[i])) out.push_back(in[i]);
    return out;
  }
  sequence<std::size_t> counts(nb);
  parallel_for(
      0, nb,
      [&](std::size_t b) {
        const std::size_t lo = b * kSeqBlockSize;
        const std::size_t hi = std::min(n, lo + kSeqBlockSize);
        std::size_t c = 0;
        for (std::size_t i = lo; i < hi; ++i) c += pred(in[i]) ? 1 : 0;
        counts[b] = c;
      },
      1);
  const std::size_t total = scan_inplace(counts);
  sequence<T> out(total);
  parallel_for(
      0, nb,
      [&](std::size_t b) {
        const std::size_t lo = b * kSeqBlockSize;
        const std::size_t hi = std::min(n, lo + kSeqBlockSize);
        std::size_t k = counts[b];
        for (std::size_t i = lo; i < hi; ++i)
          if (pred(in[i])) out[k++] = in[i];
      },
      1);
  return out;
}

// Keep in[i] where flags[i] is truthy.
template <typename In, typename Flags>
auto pack(const In& in, const Flags& flags) {
  using T = std::decay_t<decltype(in[0])>;
  const std::size_t n = in.size();
  assert(flags.size() == n);
  sequence<std::size_t> idx(n);
  parallel_for(0, n,
               [&](std::size_t i) { idx[i] = flags[i] ? 1 : 0; });
  const std::size_t total = scan_inplace(idx);
  sequence<T> out(total);
  parallel_for(0, n, [&](std::size_t i) {
    if (flags[i]) out[idx[i]] = in[i];
  });
  return out;
}

// Indices i (as IdxT) where flags[i] is truthy.
template <typename IdxT, typename Flags>
sequence<IdxT> pack_index(const Flags& flags) {
  const std::size_t n = flags.size();
  sequence<std::size_t> idx(n);
  parallel_for(0, n,
               [&](std::size_t i) { idx[i] = flags[i] ? 1 : 0; });
  const std::size_t total = scan_inplace(idx);
  sequence<IdxT> out(total);
  parallel_for(0, n, [&](std::size_t i) {
    if (flags[i]) out[idx[i]] = static_cast<IdxT>(i);
  });
  return out;
}

// Map f over in, keeping only engaged optionals.
template <typename In, typename F>
auto map_maybe(const In& in, const F& f) {
  using Opt = std::decay_t<decltype(f(in[0]))>;
  using T = typename Opt::value_type;
  const std::size_t n = in.size();
  sequence<Opt> tmp(n);
  parallel_for(0, n, [&](std::size_t i) { tmp[i] = f(in[i]); });
  sequence<std::size_t> idx(n);
  parallel_for(0, n,
               [&](std::size_t i) { idx[i] = tmp[i].has_value() ? 1 : 0; });
  const std::size_t total = scan_inplace(idx);
  sequence<T> out(total);
  parallel_for(0, n, [&](std::size_t i) {
    if (tmp[i].has_value()) out[idx[i]] = *tmp[i];
  });
  return out;
}

// --------------------------------------------------------------- flatten

template <typename T>
sequence<T> flatten(const sequence<sequence<T>>& seqs) {
  const std::size_t k = seqs.size();
  sequence<std::size_t> offsets(k);
  parallel_for(0, k, [&](std::size_t i) { offsets[i] = seqs[i].size(); });
  const std::size_t total = scan_inplace(offsets);
  sequence<T> out(total);
  parallel_for(0, k, [&](std::size_t i) {
    const auto& s = seqs[i];
    std::size_t off = offsets[i];
    for (std::size_t j = 0; j < s.size(); ++j) out[off + j] = s[j];
  });
  return out;
}

// iota
template <typename T>
sequence<T> iota(std::size_t n) {
  return tabulate<T>(n, [](std::size_t i) { return static_cast<T>(i); });
}

}  // namespace parlib
