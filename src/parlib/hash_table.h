// Phase-concurrent open-addressing hash tables.
//
// Two flavors, both preallocated to a caller-supplied capacity bound (the
// paper's SCC implementation upper-bounds insertions per round with a
// parallel reduce before growing the table; see Section 5 "Techniques for
// overlapping searches"):
//
//  * concurrent_set<uint64_t>   — a linear-probing set of 64-bit items,
//    used to deduplicate inter-cluster edges during graph contraction.
//  * reachability_table         — the (vertex, center) multimap used by the
//    SCC multi-search. Pairs are hashed ONLY by the vertex id, so all pairs
//    of a vertex sit on one probe sequence: iterating a vertex's centers is
//    a linear probe until the first empty cell, and the pairs share cache
//    lines (both points made in Section 5).
//
// Insertions claim cells with CAS; there are no deletions (phase-concurrent
// usage), so "probe until empty" is a correct membership / iteration rule.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "parlib/atomics.h"
#include "parlib/parallel.h"
#include "parlib/random.h"
#include "parlib/sequence_ops.h"

namespace parlib {

inline std::size_t next_power_of_two(std::size_t x) {
  std::size_t p = 1;
  while (p < x) p <<= 1;
  return p;
}

// A set of 64-bit values. kEmpty must never be inserted.
class concurrent_set {
 public:
  static constexpr std::uint64_t kEmpty = ~std::uint64_t{0};

  explicit concurrent_set(std::size_t capacity_bound)
      : mask_(next_power_of_two(std::max<std::size_t>(
                  16, capacity_bound + capacity_bound / 2)) -
              1),
        cells_(mask_ + 1, kEmpty) {}

  // Returns true if this call inserted `v` (false if already present).
  bool insert(std::uint64_t v) {
    assert(v != kEmpty);
    std::size_t i = hash64(v) & mask_;
    while (true) {
      std::uint64_t cur = atomic_load(&cells_[i]);
      if (cur == v) return false;
      if (cur == kEmpty) {
        if (atomic_cas(&cells_[i], kEmpty, v)) return true;
        cur = atomic_load(&cells_[i]);
        if (cur == v) return false;
        continue;  // someone else claimed the cell; re-examine it
      }
      i = (i + 1) & mask_;
    }
  }

  bool contains(std::uint64_t v) const {
    std::size_t i = hash64(v) & mask_;
    while (true) {
      const std::uint64_t cur = atomic_load(&cells_[i]);
      if (cur == v) return true;
      if (cur == kEmpty) return false;
      i = (i + 1) & mask_;
    }
  }

  // All stored values, in arbitrary order.
  sequence<std::uint64_t> entries() const {
    return filter(cells_, [](std::uint64_t v) { return v != kEmpty; });
  }

  std::size_t capacity() const { return cells_.size(); }

 private:
  std::size_t mask_;
  std::vector<std::uint64_t> cells_;
};

// Insert-once map from 64-bit keys to 64-bit values: the first insert of a
// key wins and its value is retained (phase-concurrent; no deletion). Used
// by graph contraction to keep one representative original edge per
// quotient edge.
class concurrent_map {
 public:
  static constexpr std::uint64_t kEmpty = ~std::uint64_t{0};

  explicit concurrent_map(std::size_t capacity_bound)
      : mask_(next_power_of_two(std::max<std::size_t>(
                  16, capacity_bound + capacity_bound / 2)) -
              1),
        keys_(mask_ + 1, kEmpty),
        values_(mask_ + 1, 0) {}

  // Returns true if this call inserted the key (value stored); false if the
  // key was already present (value ignored).
  bool insert(std::uint64_t key, std::uint64_t value) {
    assert(key != kEmpty);
    std::size_t i = hash64(key) & mask_;
    while (true) {
      std::uint64_t cur = atomic_load(&keys_[i]);
      if (cur == key) return false;
      if (cur == kEmpty) {
        // Publish the value before claiming the key so a reader that sees
        // the key also sees the value.
        values_[i] = value;
        if (atomic_cas(&keys_[i], kEmpty, key)) return true;
        cur = atomic_load(&keys_[i]);
        if (cur == key) return false;
        continue;
      }
      i = (i + 1) & mask_;
    }
  }

  // Value for key; requires all inserts to have completed (phase rule).
  std::uint64_t find(std::uint64_t key) const {
    std::size_t i = hash64(key) & mask_;
    while (true) {
      const std::uint64_t cur = atomic_load(&keys_[i]);
      if (cur == key) return values_[i];
      if (cur == kEmpty) return kEmpty;
      i = (i + 1) & mask_;
    }
  }

  // All (key, value) pairs, in arbitrary order.
  sequence<std::pair<std::uint64_t, std::uint64_t>> entries() const {
    auto idx = tabulate<std::size_t>(keys_.size(),
                                     [](std::size_t i) { return i; });
    auto live = filter(idx, [&](std::size_t i) {
      return keys_[i] != kEmpty;
    });
    return map(live, [&](std::size_t i) {
      return std::make_pair(keys_[i], values_[i]);
    });
  }

  std::size_t capacity() const { return keys_.size(); }

 private:
  std::size_t mask_;
  std::vector<std::uint64_t> keys_;
  std::vector<std::uint64_t> values_;
};

// Multimap from 32-bit vertex ids to 32-bit labels, hashed by vertex only.
class reachability_table {
 public:
  using vertex_t = std::uint32_t;
  using label_t = std::uint32_t;
  static constexpr std::uint64_t kEmpty = ~std::uint64_t{0};

  explicit reachability_table(std::size_t capacity_bound)
      : mask_(next_power_of_two(std::max<std::size_t>(
                  16, capacity_bound + capacity_bound / 2)) -
              1),
        cells_(mask_ + 1, kEmpty) {}

  static std::uint64_t pack(vertex_t v, label_t c) {
    return (static_cast<std::uint64_t>(v) << 32) | c;
  }

  // Insert (v, c); returns true if newly inserted.
  bool insert(vertex_t v, label_t c) {
    const std::uint64_t item = pack(v, c);
    std::size_t i = hash64(v) & mask_;
    while (true) {
      std::uint64_t cur = atomic_load(&cells_[i]);
      if (cur == item) return false;
      if (cur == kEmpty) {
        if (atomic_cas(&cells_[i], kEmpty, item)) return true;
        cur = atomic_load(&cells_[i]);
        if (cur == item) return false;
        continue;
      }
      i = (i + 1) & mask_;
    }
  }

  bool contains(vertex_t v, label_t c) const {
    const std::uint64_t item = pack(v, c);
    std::size_t i = hash64(v) & mask_;
    while (true) {
      const std::uint64_t cur = atomic_load(&cells_[i]);
      if (cur == item) return true;
      if (cur == kEmpty) return false;
      i = (i + 1) & mask_;
    }
  }

  // Apply f(label) to every label stored for v. Because pairs are hashed by
  // v alone, all of v's pairs lie on v's probe sequence before its first
  // empty cell (pairs of other vertices may be interleaved).
  template <typename F>
  void for_each_label(vertex_t v, const F& f) const {
    std::size_t i = hash64(v) & mask_;
    while (true) {
      const std::uint64_t cur = atomic_load(&cells_[i]);
      if (cur == kEmpty) return;
      if (static_cast<vertex_t>(cur >> 32) == v) {
        f(static_cast<label_t>(cur & 0xFFFFFFFFu));
      }
      i = (i + 1) & mask_;
    }
  }

  std::size_t count_labels(vertex_t v) const {
    std::size_t c = 0;
    for_each_label(v, [&](label_t) { ++c; });
    return c;
  }

  // All (vertex, label) pairs.
  sequence<std::uint64_t> entries() const {
    return filter(cells_, [](std::uint64_t v) { return v != kEmpty; });
  }

  std::size_t capacity() const { return cells_.size(); }

 private:
  std::size_t mask_;
  std::vector<std::uint64_t> cells_;
};

}  // namespace parlib
