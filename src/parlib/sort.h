// Parallel comparison sorting: a stable parallel merge sort (O(n log n) work,
// polylog depth via the dual-binary-search parallel merge), plus the
// approximate k-th smallest selection used by the MSF and maximal-matching
// prefix-filtering steps (Section 4).
#pragma once

#include <algorithm>
#include <cstddef>
#include <functional>
#include <vector>

#include "parlib/parallel.h"
#include "parlib/random.h"

namespace parlib {

namespace internal {

inline constexpr std::size_t kSortBase = 4096;
inline constexpr std::size_t kMergeBase = 4096;

// Merge [a_lo,a_hi) and [b_lo,b_hi) of src into dst starting at out_lo,
// splitting the larger side at its midpoint and binary-searching the other.
template <typename T, typename Less>
void parallel_merge(const std::vector<T>& src, std::size_t a_lo,
                    std::size_t a_hi, std::size_t b_lo, std::size_t b_hi,
                    std::vector<T>& dst, std::size_t out_lo,
                    const Less& less) {
  const std::size_t na = a_hi - a_lo;
  const std::size_t nb = b_hi - b_lo;
  if (na + nb <= kMergeBase) {
    std::merge(src.begin() + a_lo, src.begin() + a_hi, src.begin() + b_lo,
               src.begin() + b_hi, dst.begin() + out_lo, less);
    return;
  }
  if (na < nb) {
    // Keep the A side the larger one; stability requires that on equal keys
    // A (the earlier range) wins, which upper/lower bound choices ensure.
    const std::size_t b_mid = b_lo + nb / 2;
    const std::size_t a_mid =
        std::upper_bound(src.begin() + a_lo, src.begin() + a_hi, src[b_mid],
                         less) -
        src.begin();
    const std::size_t out_mid = out_lo + (a_mid - a_lo) + (b_mid - b_lo);
    par_do(
        [&] {
          parallel_merge(src, a_lo, a_mid, b_lo, b_mid, dst, out_lo, less);
        },
        [&] {
          parallel_merge(src, a_mid, a_hi, b_mid, b_hi, dst, out_mid, less);
        });
  } else {
    const std::size_t a_mid = a_lo + na / 2;
    const std::size_t b_mid =
        std::lower_bound(src.begin() + b_lo, src.begin() + b_hi, src[a_mid],
                         less) -
        src.begin();
    const std::size_t out_mid = out_lo + (a_mid - a_lo) + (b_mid - b_lo);
    par_do(
        [&] {
          parallel_merge(src, a_lo, a_mid, b_lo, b_mid, dst, out_lo, less);
        },
        [&] {
          parallel_merge(src, a_mid, a_hi, b_mid, b_hi, dst, out_mid, less);
        });
  }
}

// Sorts [lo, hi). If `to_buf`, the sorted result lands in buf, else in data.
template <typename T, typename Less>
void merge_sort_rec(std::vector<T>& data, std::vector<T>& buf, std::size_t lo,
                    std::size_t hi, bool to_buf, const Less& less) {
  const std::size_t n = hi - lo;
  if (n <= kSortBase) {
    std::stable_sort(data.begin() + lo, data.begin() + hi, less);
    if (to_buf) {
      std::copy(data.begin() + lo, data.begin() + hi, buf.begin() + lo);
    }
    return;
  }
  const std::size_t mid = lo + n / 2;
  par_do([&] { merge_sort_rec(data, buf, lo, mid, !to_buf, less); },
         [&] { merge_sort_rec(data, buf, mid, hi, !to_buf, less); });
  if (to_buf) {
    parallel_merge(data, lo, mid, mid, hi, buf, lo, less);
  } else {
    parallel_merge(buf, lo, mid, mid, hi, data, lo, less);
  }
}

}  // namespace internal

// Stable parallel sort in place.
template <typename T, typename Less = std::less<T>>
void sort_inplace(std::vector<T>& data, const Less& less = Less{}) {
  if (data.size() <= 1) return;
  std::vector<T> buf(data.size());
  internal::merge_sort_rec(data, buf, 0, data.size(), /*to_buf=*/false, less);
}

template <typename T, typename Less = std::less<T>>
std::vector<T> sorted(std::vector<T> data, const Less& less = Less{}) {
  sort_inplace(data, less);
  return data;
}

// Approximate k-th smallest (Section 4, MSF filtering): samples
// O(num_samples) elements and returns the sample value whose rank scales to
// k. The returned pivot splits `data` into a low side of ~k elements.
template <typename T, typename Less = std::less<T>>
T approximate_kth_smallest(const std::vector<T>& data, std::size_t k,
                           random rng, std::size_t num_samples = 1024,
                           const Less& less = Less{}) {
  const std::size_t n = data.size();
  num_samples = std::min(num_samples, n);
  std::vector<T> samples(num_samples);
  for (std::size_t i = 0; i < num_samples; ++i) {
    samples[i] = data[rng.ith_rand(i) % n];
  }
  std::sort(samples.begin(), samples.end(), less);
  const std::size_t rank = std::min(
      num_samples - 1,
      static_cast<std::size_t>((static_cast<double>(k) / n) * num_samples));
  return samples[rank];
}

}  // namespace parlib
