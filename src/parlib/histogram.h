// Work-efficient low-contention histogram (Section 5).
//
// The Histogram primitive takes a sequence of (K, V) pairs and an associative
// commutative combine R, and returns one (K, sum-of-V) pair per distinct key.
// The implementation follows the paper's design:
//
//  1. sample keys to find the *heavy* keys (keys that appear many times —
//     on scale-free graphs these are the high-degree vertices that make the
//     naive fetch-and-add approach collapse under contention);
//  2. cut the input into blocks; each block sequentially accumulates heavy
//     keys into a tiny dense per-block array and copies its light pairs into
//     a per-block buffer — no atomics anywhere;
//  3. heavy keys are finished with a parallel per-key reduction over the
//     per-block accumulators;
//  4. light pairs are semisorted (stable integer sort by key) and finished
//     with a segmented reduction.
//
// Total work is O(n) (radix passes on word-sized keys) and no memory
// location is ever contended, which is the property Table 6 measures.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "parlib/integer_sort.h"
#include "parlib/parallel.h"
#include "parlib/random.h"
#include "parlib/sequence_ops.h"

namespace parlib {

namespace internal {

inline constexpr std::size_t kHistBlock = 4096;
inline constexpr std::size_t kHistSamples = 1024;
inline constexpr std::size_t kHeavyThreshold = 8;  // sample hits to be heavy

// Keys that appear >= kHeavyThreshold times in a kHistSamples-size sample.
template <typename K, typename Pairs>
std::vector<K> find_heavy_keys(const Pairs& elts, random rng) {
  const std::size_t n = elts.size();
  const std::size_t s = std::min(n, kHistSamples);
  std::vector<K> sample(s);
  for (std::size_t i = 0; i < s; ++i) {
    sample[i] = elts[rng.ith_rand(i) % n].first;
  }
  std::sort(sample.begin(), sample.end());
  std::vector<K> heavy;
  std::size_t i = 0;
  while (i < s) {
    std::size_t j = i;
    while (j < s && sample[j] == sample[i]) ++j;
    if (j - i >= kHeavyThreshold) heavy.push_back(sample[i]);
    i = j;
  }
  return heavy;
}

}  // namespace internal

// Histogram over (K, V) pairs; K must be an unsigned integer type.
// `combine` must be associative and commutative with identity `identity`.
template <typename K, typename V, typename R>
sequence<std::pair<K, V>> histogram_by_key(
    const sequence<std::pair<K, V>>& elts, R combine, V identity,
    random rng = random(0x517cc1b7)) {
  using KV = std::pair<K, V>;
  const std::size_t n = elts.size();
  if (n == 0) return {};

  const std::vector<K> heavy = internal::find_heavy_keys<K>(elts, rng);
  const std::size_t h = heavy.size();
  auto heavy_id = [&](K k) -> std::size_t {
    // heavy is sorted; returns h if k is light.
    const auto it = std::lower_bound(heavy.begin(), heavy.end(), k);
    return (it != heavy.end() && *it == k)
               ? static_cast<std::size_t>(it - heavy.begin())
               : h;
  };

  const std::size_t nb = num_blocks(n, internal::kHistBlock);
  // Per-block heavy accumulators and light-pair buffers.
  std::vector<V> heavy_acc(nb * std::max<std::size_t>(h, 1), identity);
  std::vector<KV> light(n);
  std::vector<std::size_t> light_counts(nb);
  parallel_for(
      0, nb,
      [&](std::size_t b) {
        const std::size_t lo = b * internal::kHistBlock;
        const std::size_t hi = std::min(n, lo + internal::kHistBlock);
        V* acc = heavy_acc.data() + b * std::max<std::size_t>(h, 1);
        std::size_t nlight = 0;
        for (std::size_t i = lo; i < hi; ++i) {
          const std::size_t id = h == 0 ? 0 : heavy_id(elts[i].first);
          if (id < h) {
            acc[id] = combine(acc[id], elts[i].second);
          } else {
            light[lo + nlight++] = elts[i];
          }
        }
        light_counts[b] = nlight;
      },
      1);

  // Finish heavy keys: one parallel reduction per heavy key.
  sequence<KV> heavy_out(h);
  parallel_for(0, h, [&](std::size_t j) {
    V acc = identity;
    for (std::size_t b = 0; b < nb; ++b) {
      acc = combine(acc, heavy_acc[b * h + j]);
    }
    heavy_out[j] = {heavy[j], acc};
  });

  // Compact the light pairs, semisort them by key, segment-reduce.
  std::vector<std::size_t> light_offsets = light_counts;
  const std::size_t n_light = scan_inplace(light_offsets);
  std::vector<KV> light_packed(n_light);
  parallel_for(
      0, nb,
      [&](std::size_t b) {
        const std::size_t lo = b * internal::kHistBlock;
        std::copy(light.begin() + lo, light.begin() + lo + light_counts[b],
                  light_packed.begin() + light_offsets[b]);
      },
      1);
  integer_sort_inplace(light_packed,
                       [](const KV& kv) { return kv.first; });

  // Segment boundaries: positions where the key changes.
  std::vector<std::uint8_t> is_start(n_light);
  parallel_for(0, n_light, [&](std::size_t i) {
    is_start[i] = (i == 0 || light_packed[i].first != light_packed[i - 1].first)
                      ? 1
                      : 0;
  });
  auto starts = pack_index<std::size_t>(is_start);
  sequence<KV> light_out(starts.size());
  parallel_for(0, starts.size(), [&](std::size_t s) {
    const std::size_t lo = starts[s];
    const std::size_t hi = (s + 1 < starts.size()) ? starts[s + 1] : n_light;
    V acc = identity;
    for (std::size_t i = lo; i < hi; ++i) {
      acc = combine(acc, light_packed[i].second);
    }
    light_out[s] = {light_packed[lo].first, acc};
  });

  // Concatenate heavy + light results.
  sequence<KV> out(heavy_out.size() + light_out.size());
  parallel_for(0, heavy_out.size(),
               [&](std::size_t i) { out[i] = heavy_out[i]; });
  parallel_for(0, light_out.size(), [&](std::size_t i) {
    out[heavy_out.size() + i] = light_out[i];
  });
  return out;
}

// The semisort-style alternative Section 5 describes first (and then
// improves on): stably sort the pairs by key and segment-reduce. Same O(n)
// work for word-sized keys and trivially contention-free, but every element
// moves through the full radix pipeline (the cache cost the blocked
// heavy/light design above avoids). Kept as the comparison implementation.
template <typename K, typename V, typename R>
sequence<std::pair<K, V>> histogram_by_key_semisort(
    sequence<std::pair<K, V>> elts, R combine, V identity) {
  using KV = std::pair<K, V>;
  const std::size_t n = elts.size();
  if (n == 0) return {};
  integer_sort_inplace(elts, [](const KV& kv) { return kv.first; });
  std::vector<std::uint8_t> is_start(n);
  parallel_for(0, n, [&](std::size_t i) {
    is_start[i] =
        (i == 0 || elts[i].first != elts[i - 1].first) ? 1 : 0;
  });
  auto starts = pack_index<std::size_t>(is_start);
  sequence<KV> out(starts.size());
  parallel_for(0, starts.size(), [&](std::size_t s) {
    const std::size_t lo = starts[s];
    const std::size_t hi = (s + 1 < starts.size()) ? starts[s + 1] : n;
    V acc = identity;
    for (std::size_t i = lo; i < hi; ++i) acc = combine(acc, elts[i].second);
    out[s] = {elts[lo].first, acc};
  });
  return out;
}

// Count occurrences of each key.
template <typename K>
sequence<std::pair<K, std::size_t>> histogram_count(const sequence<K>& keys,
                                                    random rng = random(
                                                        0x2545f491)) {
  sequence<std::pair<K, std::size_t>> pairs(keys.size());
  parallel_for(0, keys.size(), [&](std::size_t i) {
    pairs[i] = {keys[i], std::size_t{1}};
  });
  return histogram_by_key<K, std::size_t>(
      pairs, [](std::size_t a, std::size_t b) { return a + b; },
      std::size_t{0}, rng);
}

// HistogramFilter (Algorithm 13): histogram, then map F over the reduced
// pairs keeping only engaged results. Saves a pass over filtered-out keys.
template <typename K, typename V, typename R, typename F>
auto histogram_filter(const sequence<std::pair<K, V>>& elts, R combine,
                      V identity, const F& f, random rng = random(0xdeadbeef)) {
  auto reduced = histogram_by_key<K, V>(elts, combine, identity, rng);
  return map_maybe(reduced, [&](const std::pair<K, V>& kv) {
    return f(kv.first, kv.second);
  });
}

}  // namespace parlib
