// Cooperative cancellation for nested-parallel computations.
//
// A `cancel::token` is a tiny shared flag (+ optional deadline) owned by
// whoever initiates a request — the serving layer allocates one per query.
// Long-running parallel loops poll it at natural round/block boundaries
// (edge_map's frontier traversal, the bucketing executor's rounds) and
// unwind early when it fires; the initiator then discards the partial
// result. Nothing is ever interrupted preemptively — cancellation is a
// contract between pollers, which is what makes it safe in the middle of
// lock-free phases.
//
// Propagation mirrors the trace-id design (trace_hooks.h): the current
// token is a thread-local pointer bound with an RAII scope; par_do stamps
// it into every forked job, and a thief adopts the job's token while
// running it — so a stolen subtask of a cancelled query observes the
// cancellation exactly like the forking thread would, no matter how many
// steals deep it is.
//
// Cost: an unbound thread pays one thread-local load per poll; a bound
// thread pays an additional relaxed atomic load. The deadline is checked
// against steady_clock only by `poll()` (intended for per-round / per-4K-
// edge-block granularity, where one clock read is noise); `cancelled()` is
// the flag-only form for per-vertex granularity. The first poll past the
// deadline latches the flag, so every subsequent flag-only check — on any
// thread — observes it.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

namespace parlib {
namespace cancel {

class token {
 public:
  token() = default;
  token(const token&) = delete;
  token& operator=(const token&) = delete;

  // Request cancellation (any thread). Pollers observe it at their next
  // flag check; idempotent.
  void request_cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

  // Arm an absolute deadline; poll() latches cancellation (and the
  // timed_out marker) once steady_clock passes it. Must be set before the
  // token is shared with pollers (single writer, then read-only).
  void set_deadline(std::chrono::steady_clock::time_point d) {
    deadline_ns_.store(std::chrono::duration_cast<std::chrono::nanoseconds>(
                           d.time_since_epoch())
                           .count(),
                       std::memory_order_relaxed);
  }
  bool has_deadline() const {
    return deadline_ns_.load(std::memory_order_relaxed) != 0;
  }

  // True once the deadline (not an explicit request_cancel) fired first.
  bool timed_out() const {
    return timed_out_.load(std::memory_order_relaxed);
  }

  // Flag check + deadline check (one clock read when a deadline is armed
  // and the flag is still clear). Returns true iff the computation should
  // unwind.
  bool poll() {
    if (cancelled_.load(std::memory_order_relaxed)) return true;
    const std::int64_t d = deadline_ns_.load(std::memory_order_relaxed);
    if (d == 0) return false;
    const std::int64_t now =
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count();
    if (now < d) return false;
    // Latch: deadline expiry becomes visible to every flag-only poller.
    timed_out_.store(true, std::memory_order_relaxed);
    cancelled_.store(true, std::memory_order_relaxed);
    return true;
  }

 private:
  std::atomic<bool> cancelled_{false};
  std::atomic<bool> timed_out_{false};
  std::atomic<std::int64_t> deadline_ns_{0};  // steady_clock ns; 0 = none
};

// The calling thread's current token (null = not cancellable). par_do
// reads this when forking; request entry points bind it via token_scope.
inline token*& tls_token() {
  thread_local token* t = nullptr;
  return t;
}

inline token* current_token() { return tls_token(); }
inline void set_current_token(token* t) { tls_token() = t; }

// Flag-only check of the current token — per-vertex-granularity cheap.
inline bool cancelled() {
  token* t = tls_token();
  return t != nullptr && t->cancelled();
}

// Flag + deadline check of the current token — call at round / block
// boundaries so an armed deadline actually fires mid-computation.
inline bool poll() {
  token* t = tls_token();
  return t != nullptr && t->poll();
}

// RAII: bind `t` (may be null) as the thread's current token for the
// scope's extent, restoring the previous binding on exit. The scheduler
// uses this to adopt a stolen job's token on the thief thread.
class token_scope {
 public:
  explicit token_scope(token* t) : saved_(tls_token()) { tls_token() = t; }
  ~token_scope() { tls_token() = saved_; }

  token_scope(const token_scope&) = delete;
  token_scope& operator=(const token_scope&) = delete;

 private:
  token* saved_;
};

}  // namespace cancel
}  // namespace parlib
