// Scheduler tracing hooks: the thin seam between parlib and the
// observability layer's flight recorder.
//
// parlib must stay free of dependencies on gbbs::obs (the scheduler is the
// substrate everything else builds on), yet the flight recorder needs to see
// scheduler-internal transitions — fork, steal, stolen-job run begin/end,
// deque-overflow inline fallback — tagged with the *request* that caused
// them. Two pieces make that work without an upward dependency:
//
//  * a process-wide hook function pointer (atomic, null by default): the obs
//    layer installs its recorder callback at startup; when no recorder is
//    linked or tracing is compiled out, the hot path pays one relaxed load
//    and a predictable not-taken branch;
//  * a thread-local *current trace id*: request entry points (ingest batch,
//    query execution) bind an id with trace_id_scope; par_do stamps the id
//    into each forked job, and a thief temporarily adopts the job's id while
//    running it — so events emitted deep inside stolen subtasks still
//    attribute to the originating request.
//
// Trace id 0 means "no request context"; events still record, they are just
// not attributable to a request timeline.
#pragma once

#include <atomic>
#include <cstdint>

namespace parlib {
namespace trace {

// Scheduler transitions surfaced to the hook. Values are stable: they are
// part of the on-disk trace contract (see README "Tracing").
enum class sched_event : std::uint32_t {
  fork = 0,             // par_do pushed a stealable job
  steal = 1,            // a thief dequeued somebody else's job
  run_begin = 2,        // thief starts executing the stolen job
  run_end = 3,          // thief finished the stolen job
  inline_fallback = 4,  // deque full: par_do ran both branches inline
};

// (event, trace id of the originating request, opaque job identity — the
// job's address, used by the exporter to pair fork/steal flow arrows).
using sched_hook_fn = void (*)(sched_event, std::uint64_t trace_id,
                               std::uint64_t job_key);

inline std::atomic<sched_hook_fn>& sched_hook_slot() {
  static std::atomic<sched_hook_fn> hook{nullptr};
  return hook;
}

// Install (or clear, with nullptr) the process-wide scheduler event hook.
// The hook must be safe to call from any thread and must not fork.
inline void set_sched_hook(sched_hook_fn fn) {
  sched_hook_slot().store(fn, std::memory_order_release);
}

inline void emit_sched_event(sched_event e, std::uint64_t trace_id,
                             std::uint64_t job_key) {
  if (sched_hook_fn fn = sched_hook_slot().load(std::memory_order_acquire)) {
    fn(e, trace_id, job_key);
  }
}

// The calling thread's current trace id (0 = none). par_do reads this when
// forking; request entry points set it via trace_id_scope.
inline std::uint64_t& tls_trace_id() {
  thread_local std::uint64_t id = 0;
  return id;
}

inline std::uint64_t current_trace_id() { return tls_trace_id(); }
inline void set_current_trace_id(std::uint64_t id) { tls_trace_id() = id; }

// RAII: bind `id` as the thread's current trace id for the scope's extent,
// restoring the previous binding on exit (scopes nest; an ingest batch
// running inside a traced tool round keeps the inner id only while active).
class trace_id_scope {
 public:
  explicit trace_id_scope(std::uint64_t id) : saved_(tls_trace_id()) {
    tls_trace_id() = id;
  }
  ~trace_id_scope() { tls_trace_id() = saved_; }

  trace_id_scope(const trace_id_scope&) = delete;
  trace_id_scope& operator=(const trace_id_scope&) = delete;

 private:
  std::uint64_t saved_;
};

}  // namespace trace
}  // namespace parlib
