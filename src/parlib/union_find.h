// Concurrent union-find with CAS-based linking and path halving.
// Used as the spanning-forest/connectivity oracle in tests and as the
// union-find MSF baseline the paper compares against (PBBS-style).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "parlib/atomics.h"
#include "parlib/parallel.h"

namespace parlib {

class union_find {
 public:
  using id_t = std::uint32_t;

  explicit union_find(std::size_t n) : parent_(n) {
    parallel_for(0, n,
                 [&](std::size_t i) { parent_[i] = static_cast<id_t>(i); });
  }

  // Find with path halving; safe to call concurrently with unite.
  id_t find(id_t x) {
    while (true) {
      id_t p = atomic_load(&parent_[x]);
      if (p == x) return x;
      const id_t gp = atomic_load(&parent_[p]);
      if (p == gp) return p;
      atomic_cas(&parent_[x], p, gp);  // halve; ok if it fails
      x = gp;
    }
  }

  // Link roots by id order (higher root points to lower), retrying on races.
  // Returns true if this call joined two distinct components.
  bool unite(id_t a, id_t b) {
    while (true) {
      a = find(a);
      b = find(b);
      if (a == b) return false;
      if (a < b) std::swap(a, b);  // a is the larger id; a -> b
      if (atomic_cas(&parent_[a], a, b)) return true;
    }
  }

  bool same_set(id_t a, id_t b) { return find(a) == find(b); }

  std::size_t size() const { return parent_.size(); }

  // Append fresh singleton elements [size(), n). Not safe to call
  // concurrently with find/unite — callers (the batch-dynamic subsystem)
  // grow between batches, never during one.
  void resize(std::size_t n) {
    const std::size_t old = parent_.size();
    if (n <= old) return;
    parent_.resize(n);
    parallel_for(old, n,
                 [&](std::size_t i) { parent_[i] = static_cast<id_t>(i); });
  }

  // Fully compress and return the labels array (label = root id).
  std::vector<id_t> labels() {
    std::vector<id_t> out(parent_.size());
    parallel_for(0, parent_.size(),
                 [&](std::size_t i) { out[i] = find(static_cast<id_t>(i)); });
    return out;
  }

 private:
  std::vector<id_t> parent_;
};

}  // namespace parlib
