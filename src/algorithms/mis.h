// Maximal independent set (Algorithm 10, Blelloch-Fineman-Shun rootset
// algorithm): O(m) expected work, O(log^2 n) depth w.h.p. on the FA-MT-RAM.
//
// A random permutation defines a priority DAG (edges point from higher to
// lower priority). Priority[v] counts v's higher-priority neighbors; roots
// (count 0) join the MIS, their neighbors are removed, and the removed
// vertices decrement the counts of their lower-priority neighbors with
// fetch-and-add — a vertex whose count reaches 0 is a new root.
//
// The prefix-based variant of [19] (the baseline the paper compares against
// in Section 6) is also provided: it speculatively processes a prefix of
// the permutation per round, committing vertices whose earlier neighbors
// are all decided.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/edge_map.h"
#include "graph/graph.h"
#include "graph/vertex_subset.h"
#include "parlib/atomics.h"
#include "parlib/parallel.h"
#include "parlib/random.h"
#include "parlib/sequence_ops.h"

namespace gbbs {

namespace mis_internal {

struct decrement_f {
  const std::vector<std::uint32_t>* perm_pos;
  std::vector<std::int64_t>* priority;

  bool cond(vertex_id v) const {
    return parlib::atomic_load(&(*priority)[v]) > 0;
  }
  bool apply(vertex_id u, vertex_id v) const {
    if ((*perm_pos)[u] < (*perm_pos)[v]) {
      return parlib::fetch_and_add<std::int64_t>(&(*priority)[v], -1) == 1;
    }
    return false;
  }
  bool update(vertex_id u, vertex_id v, auto) const { return apply(u, v); }
  bool update_atomic(vertex_id u, vertex_id v, auto) const {
    return apply(u, v);
  }
};

struct remove_f {
  std::vector<std::int64_t>* priority;
  std::vector<std::uint8_t>* removed_flag;

  bool cond(vertex_id v) const {
    return parlib::atomic_load(&(*priority)[v]) > 0;
  }
  bool update(vertex_id, vertex_id v, auto) const {
    if (!(*removed_flag)[v]) {
      (*removed_flag)[v] = 1;
      return true;
    }
    return false;
  }
  bool update_atomic(vertex_id, vertex_id v, auto) const {
    return parlib::test_and_set(&(*removed_flag)[v]);
  }
};

}  // namespace mis_internal

// Returns in_mis flags (1 = in the MIS).
template <typename Graph>
std::vector<std::uint8_t> mis_rootset(const Graph& g,
                                      parlib::random rng = parlib::random(
                                          0x315)) {
  const vertex_id n = g.num_vertices();
  const auto perm = parlib::random_permutation(n, rng);
  // perm_pos[v] = position of v in the permutation (its priority).
  std::vector<std::uint32_t> perm_pos(n);
  parlib::parallel_for(0, n, [&](std::size_t i) { perm_pos[perm[i]] = i; });

  std::vector<std::int64_t> priority(n);
  parlib::parallel_for(0, n, [&](std::size_t vi) {
    const auto v = static_cast<vertex_id>(vi);
    priority[vi] = static_cast<std::int64_t>(g.count_out(
        v, [&](vertex_id, vertex_id u, auto) {
          return perm_pos[u] < perm_pos[v];
        }));
  });

  std::vector<std::uint8_t> in_mis(n, 0), removed_flag(n, 0);
  auto root_flags = parlib::tabulate<std::uint8_t>(n, [&](std::size_t v) {
    return static_cast<std::uint8_t>(priority[v] == 0);
  });
  vertex_subset roots(n, parlib::pack_index<vertex_id>(root_flags));
  std::uint64_t finished = 0;
  while (finished < n) {
    roots.to_sparse();
    vertex_map(roots, [&](vertex_id v) { in_mis[v] = 1; });
    // Neighbors of the rootset that are still active get removed.
    auto removed = edge_map(
        g, roots, mis_internal::remove_f{&priority, &removed_flag});
    removed.to_sparse();
    vertex_map(removed, [&](vertex_id v) { priority[v] = 0; });
    finished += roots.size() + removed.size();
    roots = edge_map(
        g, removed, mis_internal::decrement_f{&perm_pos, &priority},
        // Always run sparse: the dense traversal's early exit on cond does
        // not suit counting updates from multiple sources.
        edge_map_options{.allow_dense = false});
  }
  return in_mis;
}

// Prefix-based MIS baseline [19]: speculative processing of permutation
// prefixes. Used by the Section 6 ablation (rootset is 1.1-3.5x faster).
template <typename Graph>
std::vector<std::uint8_t> mis_prefix(const Graph& g,
                                     parlib::random rng = parlib::random(
                                         0x315),
                                     std::size_t prefix_size = 0) {
  const vertex_id n = g.num_vertices();
  if (prefix_size == 0) prefix_size = std::max<std::size_t>(64, n / 25);
  const auto perm = parlib::random_permutation(n, rng);
  std::vector<std::uint32_t> perm_pos(n);
  parlib::parallel_for(0, n, [&](std::size_t i) { perm_pos[perm[i]] = i; });

  // status: 0 undecided, 1 in MIS, 2 removed.
  std::vector<std::uint8_t> status(n, 0);
  std::size_t start = 0;
  while (start < n) {
    const std::size_t end = std::min<std::size_t>(n, start + prefix_size);
    while (true) {
      std::vector<std::uint8_t> changed(end - start, 0);
      parlib::parallel_for(start, end, [&](std::size_t i) {
        const vertex_id v = perm[i];
        if (status[v] != 0) return;
        bool all_earlier_decided = true;
        bool has_mis_neighbor = false;
        g.map_out_neighbors_early_exit(v, [&](vertex_id, vertex_id u, auto) {
          if (status[u] == 1) {
            has_mis_neighbor = true;
            return false;
          }
          if (perm_pos[u] < perm_pos[v] && status[u] == 0) {
            all_earlier_decided = false;
          }
          return true;
        });
        if (has_mis_neighbor) {
          status[v] = 2;
          changed[i - start] = 1;
        } else if (all_earlier_decided) {
          status[v] = 1;
          changed[i - start] = 1;
        }
      });
      bool any = parlib::reduce_add(parlib::map(
                     changed, [](std::uint8_t c) -> std::uint64_t {
                       return c;
                     })) > 0;
      bool all_done =
          parlib::count_if(parlib::tabulate<std::uint8_t>(
                               end - start,
                               [&](std::size_t i) {
                                 return static_cast<std::uint8_t>(
                                     status[perm[start + i]] == 0);
                               }),
                           [](std::uint8_t u) { return u != 0; }) == 0;
      if (all_done) break;
      if (!any) break;  // cannot happen; safety against livelock
    }
    start = end;
  }
  return parlib::tabulate<std::uint8_t>(n, [&](std::size_t v) {
    return static_cast<std::uint8_t>(status[v] == 1);
  });
}

}  // namespace gbbs
