// Minimum spanning forest (Algorithm 9): Boruvka over an edge list with
// priority-writes and pointer-jumping, O(m log n) work and O(log^2 n) depth
// on the PW-MT-RAM.
//
// Following Section 4, the full edge list is never materialized at once in
// the driver: a constant number of *filtering steps* each (a) select the
// ~3n/2 lightest remaining edges with an approximate k-th smallest pivot,
// (b) run Boruvka on that prefix, and (c) pack out edges whose endpoints
// are now in the same component. The remainder is solved by one final
// Boruvka call. Ties are broken by original edge index, which makes the
// chosen forest deterministic and total weight minimal.
#pragma once

#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "parlib/atomics.h"
#include "parlib/parallel.h"
#include "parlib/random.h"
#include "parlib/sequence_ops.h"
#include "parlib/sort.h"

namespace gbbs {

namespace msf_internal {

struct indexed_edge {
  vertex_id u, v;
  std::uint32_t w;
  std::uint64_t id;  // original edge index (tie-breaker)
};

// (weight, id) packed for priority-writes: lower weight wins, then lower id.
inline std::uint64_t edge_priority(const indexed_edge& e, std::uint32_t idx) {
  return (static_cast<std::uint64_t>(e.w) << 32) | idx;
}

inline constexpr std::uint64_t kNoPriority =
    std::numeric_limits<std::uint64_t>::max();

// One Boruvka solve over `edges` whose endpoints are component ids in the
// global `parents` array (updated in place); appends chosen original edge
// ids to `forest`.
inline void boruvka(std::vector<vertex_id>& parents,
                    std::vector<indexed_edge> edges,
                    std::vector<std::uint64_t>& forest) {
  const std::size_t n = parents.size();
  std::vector<std::uint64_t> best(n, kNoPriority);
  while (!edges.empty()) {
    // Min-weight incident edge per live component root.
    parlib::parallel_for(0, edges.size(), [&](std::size_t i) {
      const auto pri = edge_priority(edges[i], static_cast<std::uint32_t>(i));
      parlib::write_min(&best[edges[i].u], pri);
      parlib::write_min(&best[edges[i].v], pri);
    });
    // An edge is chosen if it won on either endpoint. The endpoint it won
    // on hooks onto the other endpoint; a 2-cycle (edge won on both) is
    // broken by rooting the larger endpoint.
    std::vector<std::uint8_t> chosen(edges.size(), 0);
    parlib::parallel_for(0, edges.size(), [&](std::size_t i) {
      const auto& e = edges[i];
      const auto pri = edge_priority(e, static_cast<std::uint32_t>(i));
      const bool won_u = best[e.u] == pri;
      const bool won_v = best[e.v] == pri;
      if (!won_u && !won_v) return;
      chosen[i] = 1;
      if (won_u && won_v) {
        const vertex_id root = std::max(e.u, e.v);
        const vertex_id child = std::min(e.u, e.v);
        parents[child] = root;
      } else if (won_u) {
        parents[e.u] = e.v;
      } else {
        parents[e.v] = e.u;
      }
    });
    auto ids = parlib::map(edges, [](const auto& e) { return e.id; });
    auto won_ids = parlib::pack(ids, chosen);
    const std::size_t old_size = forest.size();
    forest.resize(old_size + won_ids.size());
    parlib::parallel_for(0, won_ids.size(), [&](std::size_t i) {
      forest[old_size + i] = won_ids[i];
    });
    // Pointer-jump every touched vertex to its root.
    parlib::parallel_for(0, n, [&](std::size_t v) {
      vertex_id root = static_cast<vertex_id>(v);
      while (parents[root] != root) root = parents[root];
      parents[v] = root;
    });
    // Reset winners and relabel/filter the surviving edges.
    parlib::parallel_for(0, edges.size(), [&](std::size_t i) {
      best[edges[i].u] = kNoPriority;
      best[edges[i].v] = kNoPriority;
    });
    std::vector<indexed_edge> next;
    next.reserve(edges.size());
    for (auto& e : edges) {
      const vertex_id ru = parents[e.u], rv = parents[e.v];
      if (ru != rv) next.push_back({ru, rv, e.w, e.id});
    }
    edges.swap(next);
  }
}

}  // namespace msf_internal

struct msf_result {
  std::vector<edge<std::uint32_t>> forest;  // original endpoints + weights
  std::uint64_t total_weight = 0;
  std::size_t num_filter_steps = 0;
};

// use_filtering=false runs plain edge-list Boruvka (the Zhou baseline the
// paper compares against in Section 6).
template <typename Graph>
msf_result msf(const Graph& g, bool use_filtering = true,
               std::size_t filter_steps = 3) {
  const vertex_id n = g.num_vertices();
  // Each undirected edge once (u < v), with original indices.
  auto all = g.edges();
  auto half = parlib::filter(all, [](const auto& e) { return e.u < e.v; });
  std::vector<msf_internal::indexed_edge> edges(half.size());
  parlib::parallel_for(0, half.size(), [&](std::size_t i) {
    edges[i] = {half[i].u, half[i].v, half[i].w, i};
  });
  std::vector<edge<std::uint32_t>> originals(half.size());
  parlib::parallel_for(0, half.size(),
                       [&](std::size_t i) { originals[i] = half[i]; });

  std::vector<vertex_id> parents(n);
  parlib::parallel_for(0, n, [&](std::size_t v) {
    parents[v] = static_cast<vertex_id>(v);
  });
  std::vector<std::uint64_t> forest;
  msf_result res;

  if (use_filtering) {
    const std::size_t target = 3 * static_cast<std::size_t>(n) / 2 + 1;
    for (std::size_t step = 0;
         step < filter_steps && edges.size() > 2 * target; ++step) {
      ++res.num_filter_steps;
      auto weights = parlib::map(edges, [](const auto& e) { return e.w; });
      const std::uint32_t pivot = parlib::approximate_kth_smallest(
          weights, target, parlib::random(0x317 + step));
      auto light = parlib::filter(
          edges, [&](const auto& e) { return e.w <= pivot; });
      if (light.empty() || light.size() == edges.size()) break;
      msf_internal::boruvka(parents, std::move(light), forest);
      // Pack out: heavy edges whose endpoints merged are shortcut.
      auto survivors = parlib::filter(edges, [&](const auto& e) {
        return e.w > pivot && parents[e.u] != parents[e.v];
      });
      parlib::parallel_for(0, survivors.size(), [&](std::size_t i) {
        survivors[i].u = parents[survivors[i].u];
        survivors[i].v = parents[survivors[i].v];
      });
      edges.swap(survivors);
    }
  }
  msf_internal::boruvka(parents, std::move(edges), forest);

  res.forest.resize(forest.size());
  parlib::parallel_for(0, forest.size(), [&](std::size_t i) {
    res.forest[i] = originals[forest[i]];
  });
  auto ws = parlib::map(res.forest, [](const auto& e) {
    return static_cast<std::uint64_t>(e.w);
  });
  res.total_weight = parlib::reduce_add(ws);
  return res;
}

}  // namespace gbbs
