// Maximal matching (Algorithm 11, prefix-based): O(m) expected work,
// O(log^3 m / log log m) depth w.h.p. on the PW-MT-RAM.
//
// Edges receive random priorities. Per Section 4, a constant number of
// filtering steps each extract the ~3n/2 highest-priority (lowest key)
// remaining edges, run the parallel greedy matcher on the prefix (an edge
// joins the matching when it is the best-priority edge at both endpoints),
// and then pack out edges incident to matched vertices.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "graph/graph.h"
#include "parlib/atomics.h"
#include "parlib/parallel.h"
#include "parlib/random.h"
#include "parlib/sequence_ops.h"
#include "parlib/sort.h"

namespace gbbs {

namespace mm_internal {

struct prio_edge {
  vertex_id u, v;
  std::uint64_t pri;  // random priority; unique w.h.p.
};

inline constexpr std::uint64_t kNoPriority =
    std::numeric_limits<std::uint64_t>::max();

// Greedy matcher on a prefix: repeated rounds of "claim both endpoints with
// priority-write(min), commit edges that won both".
template <typename W>
void greedy_match(std::vector<prio_edge> prefix,
                  std::vector<std::uint8_t>& matched,
                  std::vector<std::uint64_t>& best,
                  std::vector<edge<W>>& matching) {
  while (!prefix.empty()) {
    parlib::parallel_for(0, prefix.size(), [&](std::size_t i) {
      parlib::write_min(&best[prefix[i].u], prefix[i].pri);
      parlib::write_min(&best[prefix[i].v], prefix[i].pri);
    });
    std::vector<std::uint8_t> won(prefix.size(), 0);
    parlib::parallel_for(0, prefix.size(), [&](std::size_t i) {
      const auto& e = prefix[i];
      if (best[e.u] == e.pri && best[e.v] == e.pri) {
        won[i] = 1;
        matched[e.u] = 1;
        matched[e.v] = 1;
      }
    });
    auto winners = parlib::pack(prefix, won);
    const std::size_t old = matching.size();
    matching.resize(old + winners.size());
    parlib::parallel_for(0, winners.size(), [&](std::size_t i) {
      matching[old + i] = edge<W>{winners[i].u, winners[i].v, W{}};
    });
    // Reset priority slots and drop edges with a matched endpoint.
    parlib::parallel_for(0, prefix.size(), [&](std::size_t i) {
      best[prefix[i].u] = kNoPriority;
      best[prefix[i].v] = kNoPriority;
    });
    prefix = parlib::filter(prefix, [&](const prio_edge& e) {
      return !matched[e.u] && !matched[e.v];
    });
  }
}

}  // namespace mm_internal

// Returns matched edges (one record per matched pair, u < v).
template <typename Graph>
std::vector<edge<typename Graph::weight_type>> maximal_matching(
    const Graph& g, parlib::random rng = parlib::random(0x4242),
    std::size_t filter_steps = 3) {
  using W = typename Graph::weight_type;
  const vertex_id n = g.num_vertices();
  auto all = g.edges();
  auto half = parlib::filter(all, [](const auto& e) { return e.u < e.v; });
  std::vector<mm_internal::prio_edge> edges(half.size());
  parlib::parallel_for(0, half.size(), [&](std::size_t i) {
    // High bits random, low bits the edge index: priorities are unique (so
    // two edges can never both claim an endpoint) and below kNoPriority.
    edges[i] = {half[i].u, half[i].v,
                ((rng.ith_rand(i) & 0x7FFFFFFFull) << 32) |
                    static_cast<std::uint32_t>(i)};
  });

  std::vector<std::uint8_t> matched(n, 0);
  std::vector<std::uint64_t> best(n, mm_internal::kNoPriority);
  std::vector<edge<W>> matching;

  const std::size_t target = 3 * static_cast<std::size_t>(n) / 2 + 1;
  for (std::size_t step = 0;
       step < filter_steps && edges.size() > 2 * target; ++step) {
    auto pris = parlib::map(edges, [](const auto& e) { return e.pri; });
    const std::uint64_t pivot = parlib::approximate_kth_smallest(
        pris, target, parlib::random(0x77 + step));
    auto prefix = parlib::filter(
        edges, [&](const auto& e) { return e.pri <= pivot; });
    mm_internal::greedy_match<W>(std::move(prefix), matched, best, matching);
    edges = parlib::filter(edges, [&](const auto& e) {
      return e.pri > pivot && !matched[e.u] && !matched[e.v];
    });
  }
  mm_internal::greedy_match<W>(std::move(edges), matched, best, matching);
  return matching;
}

}  // namespace gbbs
