// Connectivity (Algorithm 6, Shun-Dhulipala-Blelloch): O(m) expected work,
// O(log^3 n) depth w.h.p. on the TS-MT-RAM. Each level runs a low-diameter
// decomposition, contracts the clustering, and recurses until the quotient
// has no edges; labels are then mapped back down the recursion.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "graph/contraction.h"
#include "graph/graph.h"
#include "algorithms/ldd.h"
#include "parlib/parallel.h"
#include "parlib/random.h"
#include "parlib/sequence_ops.h"

namespace gbbs {

namespace connectivity_internal {

template <typename Graph>
std::vector<vertex_id> connectivity_rec(const Graph& g, double beta,
                                        parlib::random rng, int depth) {
  const vertex_id n = g.num_vertices();
  auto clusters = ldd(g, beta, rng);
  auto contracted = contract(g, clusters);
  // Labels of this level: v's cluster, renumbered densely.
  auto level_labels = parlib::tabulate<vertex_id>(n, [&](std::size_t v) {
    return contracted.cluster_to_vertex[clusters[v]];
  });
  if (contracted.quotient.num_edges() == 0) {
    return level_labels;
  }
  // If a round failed to shrink the graph (possible on tiny inputs when all
  // shift draws land in the same unit interval), halve beta so the next
  // level's balls grow larger; this keeps the recursion finite without
  // affecting the expected bounds.
  const double next_beta =
      contracted.quotient.num_vertices() == n ? beta * 0.5 : beta;
  auto quot_labels = connectivity_rec(contracted.quotient, next_beta,
                                      rng.next(), depth + 1);
  return parlib::tabulate<vertex_id>(n, [&](std::size_t v) {
    return quot_labels[level_labels[v]];
  });
}

}  // namespace connectivity_internal

// Component labels in [0, #clusters-at-top-level); two vertices share a
// label iff they are connected.
template <typename Graph>
std::vector<vertex_id> connectivity(const Graph& g, double beta = 0.2,
                                    parlib::random rng = parlib::random(
                                        0xcc)) {
  return connectivity_internal::connectivity_rec(g, beta, rng, 0);
}

// One representative vertex per connected component: the minimum vertex id
// carrying each label.
inline std::vector<vertex_id> component_representatives(
    const std::vector<vertex_id>& labels) {
  const std::size_t n = labels.size();
  std::vector<vertex_id> rep_of_label(n, kNoVertex);
  parlib::parallel_for(0, n, [&](std::size_t v) {
    parlib::write_min(&rep_of_label[labels[v]],
                      static_cast<vertex_id>(v));
  });
  return parlib::filter(rep_of_label,
                        [](vertex_id r) { return r != kNoVertex; });
}

// Whether two component labelings describe the same partition (labels may
// differ; the mapping between them must be bijective). The cross-check
// used by the dynamic/serving verification paths to compare maintained
// labels against a from-scratch connectivity().
inline bool same_partition(const std::vector<vertex_id>& a,
                           const std::vector<vertex_id>& b) {
  if (a.size() != b.size()) return false;
  std::unordered_map<vertex_id, vertex_id> a2b, b2a;
  for (std::size_t v = 0; v < a.size(); ++v) {
    auto [ia, fresh_a] = a2b.try_emplace(a[v], b[v]);
    if (ia->second != b[v]) return false;
    auto [ib, fresh_b] = b2a.try_emplace(b[v], a[v]);
    if (ib->second != a[v]) return false;
  }
  return true;
}

}  // namespace gbbs
