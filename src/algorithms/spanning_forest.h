// Spanning forest via connectivity + multi-source BFS (Section 4,
// Biconnectivity): connectivity labels pick one root per component, then a
// single simultaneous BFS from all roots builds a rooted forest in O(m)
// work and O(diam(G) log n) depth.
#pragma once

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "algorithms/bfs.h"
#include "algorithms/connectivity.h"
#include "algorithms/ldd.h"
#include "graph/contraction.h"
#include "graph/graph.h"

namespace gbbs {

struct spanning_forest_result {
  // parent[v]: BFS-tree parent; roots are their own parent; kNoVertex only
  // for vertices outside every component (cannot happen: every vertex is in
  // some component).
  std::vector<vertex_id> parents;
  std::vector<vertex_id> roots;            // one per component
  std::vector<vertex_id> component_label;  // connectivity labels
};

template <typename Graph>
spanning_forest_result spanning_forest(const Graph& g) {
  auto labels = connectivity(g);
  auto roots = component_representatives(labels);
  auto parents = bfs_forest(g, roots);
  return {std::move(parents), std::move(roots), std::move(labels)};
}

// Spanning forest extracted directly from the connectivity recursion —
// the improvement Section 4 sketches ("the connectivity algorithm can be
// modified to compute a spanning forest in the same work and depth, which
// would avoid the breadth-first-search"). Each LDD level contributes its
// ball-growing parent edges (a spanning tree of every cluster); contraction
// keeps one representative original edge per quotient edge, so the forest
// of the recursively-solved quotient maps back to original edges. Runs in
// O(m) expected work and O(log^3 n) depth w.h.p. — no diameter term.
namespace spanning_forest_internal {

template <typename Graph>
void ldd_forest_rec(const Graph& g, double beta, parlib::random rng,
                    std::vector<std::pair<vertex_id, vertex_id>>& out,
                    // maps this level's edges to root-level edges; null at
                    // the top level (identity).
                    const std::function<std::pair<vertex_id, vertex_id>(
                        vertex_id, vertex_id)>& to_original) {
  const vertex_id n = g.num_vertices();
  std::vector<vertex_id> parents;
  auto clusters = ldd(g, beta, rng, &parents);
  for (vertex_id v = 0; v < n; ++v) {
    if (parents[v] != kNoVertex) {
      out.push_back(to_original ? to_original(v, parents[v])
                                : std::make_pair(v, parents[v]));
    }
  }
  auto con = contract(g, clusters, /*keep_representatives=*/true);
  if (con.quotient.num_edges() == 0) return;
  const double next_beta =
      con.quotient.num_vertices() == n ? beta * 0.5 : beta;
  // Quotient edge -> this level's original endpoints -> root level.
  auto lift = [&, to_original](vertex_id qu,
                               vertex_id qv) -> std::pair<vertex_id, vertex_id> {
    auto [a, b] = con.representative(qu, qv);
    return to_original ? to_original(a, b) : std::make_pair(a, b);
  };
  ldd_forest_rec(con.quotient, next_beta, rng.next(), out, lift);
}

}  // namespace spanning_forest_internal

// Forest edges (u, v) of g, one per tree edge, using only the connectivity
// machinery (no BFS).
template <typename Graph>
std::vector<std::pair<vertex_id, vertex_id>> spanning_forest_ldd(
    const Graph& g, double beta = 0.2,
    parlib::random rng = parlib::random(0x5f1dd)) {
  std::vector<std::pair<vertex_id, vertex_id>> out;
  spanning_forest_internal::ldd_forest_rec(g, beta, rng, out, nullptr);
  return out;
}

// The forest's edges (child, parent), for verification and downstream use.
inline std::vector<std::pair<vertex_id, vertex_id>> forest_edges(
    const std::vector<vertex_id>& parents) {
  std::vector<std::pair<vertex_id, vertex_id>> all(parents.size());
  parlib::parallel_for(0, parents.size(), [&](std::size_t v) {
    all[v] = {static_cast<vertex_id>(v), parents[v]};
  });
  return parlib::filter(all, [](const auto& e) {
    return e.second != kNoVertex && e.first != e.second;
  });
}

}  // namespace gbbs
