// Delta-stepping SSSP (Meyer & Sanders [79]) — the GAP-benchmark comparator
// the paper measures its weighted BFS against in Section 6 ("our
// implementation is between 1.07-1.1x slower than the delta-stepping
// implementation from GAP"). Vertices are bucketed by floor(dist / delta);
// each bucket is processed to a fixed point over light edges (w <= delta)
// before heavy edges are relaxed once.
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <vector>

#include "graph/bucketing.h"
#include "graph/edge_map.h"
#include "graph/graph.h"
#include "graph/vertex_subset.h"
#include "parlib/atomics.h"

namespace gbbs {

namespace delta_internal {

struct relax_f {
  std::vector<std::uint32_t>* dist;
  std::vector<std::uint8_t>* flags;
  std::uint32_t delta;
  bool light_phase;  // light: w <= delta; heavy: w > delta

  bool cond(vertex_id) const { return true; }
  std::optional<std::uint32_t> update_atomic(vertex_id u, vertex_id v,
                                             std::uint32_t w) const {
    const bool is_light = w <= delta;
    if (is_light != light_phase) return std::nullopt;
    const std::uint32_t nd = (*dist)[u] + w;
    std::optional<std::uint32_t> res;
    if (nd < parlib::atomic_load(&(*dist)[v])) {
      if (parlib::test_and_set(&(*flags)[v])) res = nd;
      parlib::write_min(&(*dist)[v], nd);
    }
    return res;
  }
};

}  // namespace delta_internal

struct delta_stepping_result {
  std::vector<std::uint32_t> dist;
  std::size_t num_buckets_processed = 0;
  std::size_t num_light_iterations = 0;
};

template <typename Graph>
delta_stepping_result delta_stepping(const Graph& g, vertex_id src,
                                     std::uint32_t delta = 0) {
  const vertex_id n = g.num_vertices();
  constexpr std::uint32_t kInf = std::numeric_limits<std::uint32_t>::max();
  if (delta == 0) {
    // Heuristic default: half the [1, log n] weight range used by the
    // benchmark inputs (the GAP default is tuned per graph).
    std::uint32_t bits = 1;
    while ((n >> bits) != 0) ++bits;
    delta = (bits > 1 ? bits - 1 : 1) / 2 + 1;
  }
  std::vector<std::uint32_t> dist(n, kInf);
  std::vector<std::uint8_t> flags(n, 0);
  dist[src] = 0;

  auto bucket_of = [&](vertex_id v) -> bucket_id {
    return dist[v] == kInf ? kNullBucket
                           : static_cast<bucket_id>(dist[v] / delta);
  };
  auto b = make_buckets(n, bucket_of, bucket_order::increasing);

  delta_stepping_result res;
  while (true) {
    auto [bkt, ids] = b.next_bucket();
    if (bkt == kNullBucket) break;
    ++res.num_buckets_processed;
    // Light-edge fixed point within this bucket. Settled vertices are
    // accumulated so heavy edges fire once from each.
    std::vector<vertex_id> settled = ids;
    vertex_subset frontier(n, std::move(ids));
    std::vector<std::pair<vertex_id, bucket_id>> updates;
    while (!frontier.empty()) {
      ++res.num_light_iterations;
      auto moved = edge_map_data<std::uint32_t>(
          g, frontier,
          delta_internal::relax_f{&dist, &flags, delta, /*light=*/true});
      const auto& entries = moved.entries();
      std::vector<vertex_id> again;
      for (const auto& [v, nd] : entries) {
        flags[v] = 0;
        const bucket_id dest = static_cast<bucket_id>(dist[v] / delta);
        if (dest == static_cast<bucket_id>(bkt)) {
          again.push_back(v);  // still this bucket: keep relaxing
          settled.push_back(v);
        } else {
          updates.push_back({v, dest});
        }
      }
      frontier = vertex_subset(n, std::move(again));
    }
    // One heavy-edge pass from everything settled in this bucket.
    vertex_subset heavy_frontier(n, std::move(settled));
    auto moved = edge_map_data<std::uint32_t>(
        g, heavy_frontier,
        delta_internal::relax_f{&dist, &flags, delta, /*light=*/false});
    for (const auto& [v, nd] : moved.entries()) {
      flags[v] = 0;
      updates.push_back({v, static_cast<bucket_id>(dist[v] / delta)});
    }
    b.update_buckets(updates);
  }
  res.dist = std::move(dist);
  return res;
}

}  // namespace gbbs
