// Approximate set cover (Algorithm 14, Blelloch-Peng-Tangwongsan via
// Julienne): O(m) expected work, O(log^3 n) depth w.h.p. on the PW-MT-RAM,
// producing an O(log n)-approximation.
//
// The instance is a bipartite graph: sets are vertices [0, num_sets),
// elements are [num_sets, n). Sets are bucketed by floor(log_{1+eps} deg)
// and processed from the highest bucket. Each round packs covered elements
// out of the popped sets' adjacency lists (in-place pack_out — this is why
// the routine takes the graph by value), splits the sets into those still
// at the bucket's threshold (SC) and those to rebucket (SR), and runs one
// MaNIS step on SC: every set writes a random priority to its remaining
// elements with priority-write(min); sets that win at least
// ceil((1+eps)^(b-1)) elements join the cover.
//
// Per Section 4/6, the priorities of the active sets are REGENERATED every
// round (a fresh random permutation). The `regenerate_priorities = false`
// baseline reuses static vertex-id priorities, reproducing the pathology
// the paper reports on meshes/tori (up to 56x slower on 3D-Torus).
#pragma once

#include <cmath>
#include <cstdint>
#include <utility>
#include <vector>

#include "graph/bucketing.h"
#include "graph/graph.h"
#include "parlib/atomics.h"
#include "parlib/parallel.h"
#include "parlib/random.h"
#include "parlib/sequence_ops.h"

namespace gbbs {

struct set_cover_options {
  double epsilon = 0.01;
  bool regenerate_priorities = true;  // the paper's fix; false = baseline
  parlib::random rng = parlib::random(0x5e7c);
};

struct set_cover_result {
  std::vector<vertex_id> cover;  // chosen set ids
  std::size_t num_rounds = 0;
};

// NOTE: takes the graph by value — adjacency lists are packed in place.
template <typename Graph>
set_cover_result set_cover(Graph g, vertex_id num_sets,
                           set_cover_options opts = {}) {
  // The by-value copy shares the caller's CSR block; detach it up front so
  // the parallel pack_out below mutates a uniquely-owned clone (a COW race
  // inside the loop would be unsafe, and packing through a shared block
  // would corrupt the caller's graph).
  g.unshare();
  const vertex_id n = g.num_vertices();
  const double one_eps = 1.0 + opts.epsilon;
  auto bucket_of_deg = [&](vertex_id d) -> bucket_id {
    if (d == 0) return kNullBucket;
    return static_cast<bucket_id>(
        std::ceil(std::log(static_cast<double>(d)) / std::log(one_eps)));
  };
  auto threshold_of_bucket = [&](bucket_id b) -> vertex_id {
    const double t = std::pow(one_eps, b > 0 ? b - 1 : 0);
    return static_cast<vertex_id>(std::ceil(t));
  };

  // covered[e] for elements; elt_winner[e] = priority-packed winning set.
  constexpr std::uint64_t kNoWinner = ~std::uint64_t{0};
  std::vector<std::uint8_t> covered(n, 0);
  std::vector<std::uint8_t> in_cover(num_sets, 0);
  std::vector<std::uint64_t> elt_winner(n, kNoWinner);

  std::vector<bucket_id> set_bucket(num_sets);
  parlib::parallel_for(0, num_sets, [&](std::size_t s) {
    set_bucket[s] = bucket_of_deg(g.out_degree(static_cast<vertex_id>(s)));
  });
  auto bucket_of = [&](vertex_id s) -> bucket_id { return set_bucket[s]; };
  auto buckets = make_buckets(num_sets, bucket_of, bucket_order::decreasing);

  set_cover_result res;
  std::size_t round_id = 0;
  while (true) {
    auto [bkt, sets] = buckets.next_bucket();
    if (bkt == kNullBucket) break;
    ++res.num_rounds;
    ++round_id;

    // Pack out covered elements; recompute degrees.
    parlib::parallel_for(0, sets.size(), [&](std::size_t i) {
      g.pack_out(sets[i], [&](vertex_id, vertex_id e, auto) {
        return !covered[e];
      });
    });
    const vertex_id thresh = threshold_of_bucket(static_cast<bucket_id>(bkt));
    auto still_high = parlib::tabulate<std::uint8_t>(
        sets.size(), [&](std::size_t i) {
          return static_cast<std::uint8_t>(g.out_degree(sets[i]) >= thresh);
        });
    auto sc = parlib::pack(sets, still_high);
    auto sr = parlib::pack(sets, parlib::map(still_high, [](std::uint8_t b) {
                             return static_cast<std::uint8_t>(!b);
                           }));

    // MaNIS step over SC with (optionally regenerated) random priorities.
    std::vector<std::uint64_t> pri(sc.size());
    if (opts.regenerate_priorities) {
      auto perm = parlib::random_permutation(
          sc.size(), opts.rng.fork(round_id));
      parlib::parallel_for(0, sc.size(), [&](std::size_t i) {
        pri[i] = (static_cast<std::uint64_t>(perm[i]) << 32) | sc[i];
      });
    } else {
      parlib::parallel_for(0, sc.size(), [&](std::size_t i) {
        pri[i] = (static_cast<std::uint64_t>(sc[i]) << 32) | sc[i];
      });
    }
    parlib::parallel_for(0, sc.size(), [&](std::size_t i) {
      g.map_out_neighbors(sc[i], [&](vertex_id, vertex_id e, auto) {
        parlib::write_min(&elt_winner[e], pri[i]);
      });
    });
    // Sets that acquired >= thresh elements join the cover.
    std::vector<std::uint8_t> won(sc.size(), 0);
    parlib::parallel_for(0, sc.size(), [&](std::size_t i) {
      const std::size_t acquired = g.count_out(
          sc[i], [&](vertex_id, vertex_id e, auto) {
            return elt_winner[e] == pri[i];
          });
      if (acquired >= thresh) won[i] = 1;
    });
    parlib::parallel_for(0, sc.size(), [&](std::size_t i) {
      if (!won[i]) return;
      in_cover[sc[i]] = 1;
      set_bucket[sc[i]] = kNullBucket;  // done
      g.map_out_neighbors(sc[i], [&](vertex_id, vertex_id e, auto) {
        if (elt_winner[e] == pri[i]) covered[e] = 1;
      });
    });
    // Reset priority slots of elements that stayed uncovered.
    parlib::parallel_for(0, sc.size(), [&](std::size_t i) {
      g.map_out_neighbors(sc[i], [&](vertex_id, vertex_id e, auto) {
        if (!covered[e]) elt_winner[e] = kNoWinner;
      });
    });
    // Rebucket losers and shrunken sets.
    auto losers = parlib::pack(
        sc, parlib::map(won, [](std::uint8_t w) {
          return static_cast<std::uint8_t>(!w);
        }));
    std::vector<std::pair<vertex_id, bucket_id>> updates;
    updates.reserve(losers.size() + sr.size());
    auto add_updates = [&](const std::vector<vertex_id>& vs) {
      const std::size_t old = updates.size();
      updates.resize(old + vs.size());
      parlib::parallel_for(0, vs.size(), [&](std::size_t i) {
        const vertex_id s = vs[i];
        // Losers keep their degree but must re-run (possibly same bucket):
        // clamp to one below the current bucket to guarantee progress.
        bucket_id nb = bucket_of_deg(g.out_degree(s));
        if (nb != kNullBucket && nb >= static_cast<bucket_id>(bkt) &&
            bkt > 0) {
          nb = static_cast<bucket_id>(bkt);
        }
        set_bucket[s] = nb;
        updates[old + i] = {s, nb};
      });
    };
    add_updates(losers);
    add_updates(sr);
    buckets.update_buckets(updates);
  }

  res.cover = parlib::pack_index<vertex_id>(in_cover);
  return res;
}

}  // namespace gbbs
