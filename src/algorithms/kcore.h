// k-core decomposition (Algorithm 13, Julienne): O(m + n) expected work and
// O(rho log n) depth w.h.p., where rho is the graph's peeling complexity.
//
// Vertices are bucketed by induced degree; each round peels the minimum
// bucket, assigns those vertices their coreness, and decreases the induced
// degree of surviving neighbors. Two implementations of the degree-update
// step (the subject of Table 6):
//   * kcore_variant::histogram — the work-efficient low-contention
//     histogram of Section 5 (one (neighbor, 1) pair per removed edge,
//     reduced by key);
//   * kcore_variant::fetch_and_add — the contended baseline: a direct
//     fetch-and-add per removed edge on the neighbor's degree counter.
#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "graph/bucketing.h"
#include "graph/graph.h"
#include "parlib/atomics.h"
#include "parlib/counters.h"
#include "parlib/histogram.h"
#include "parlib/parallel.h"
#include "parlib/sequence_ops.h"

namespace gbbs {

enum class kcore_variant { histogram, fetch_and_add };

struct kcore_result {
  std::vector<vertex_id> coreness;
  std::size_t num_rounds = 0;  // rho: number of peeling rounds
  vertex_id max_core = 0;      // kmax: degeneracy
};

template <typename Graph>
kcore_result kcore(const Graph& g,
                   kcore_variant variant = kcore_variant::histogram) {
  const vertex_id n = g.num_vertices();
  std::vector<vertex_id> deg(n);
  parlib::parallel_for(0, n, [&](std::size_t v) {
    deg[v] = g.out_degree(static_cast<vertex_id>(v));
  });
  std::vector<std::uint8_t> finished(n, 0);

  auto bucket_of = [&](vertex_id v) -> bucket_id {
    return finished[v] ? kNullBucket : static_cast<bucket_id>(deg[v]);
  };
  auto buckets = make_buckets(n, bucket_of, bucket_order::increasing);

  kcore_result res;
  res.coreness.assign(n, 0);
  vertex_id k = 0;
  auto& ctr = parlib::event_counters::global();

  while (true) {
    auto [bkt, ids] = buckets.next_bucket();
    if (bkt == kNullBucket) break;
    ++res.num_rounds;
    k = std::max(k, static_cast<vertex_id>(bkt));
    parlib::parallel_for(0, ids.size(), [&](std::size_t i) {
      finished[ids[i]] = 1;
      res.coreness[ids[i]] = k;
    });

    std::vector<std::pair<vertex_id, bucket_id>> updates;
    if (variant == kcore_variant::histogram) {
      // One (neighbor, 1) pair per peeled edge into surviving vertices.
      auto per_vertex = parlib::tabulate<std::uint64_t>(
          ids.size(), [&](std::size_t i) {
            return g.out_degree(ids[i]);
          });
      const std::uint64_t total = parlib::scan_inplace(per_vertex);
      std::vector<std::pair<vertex_id, std::uint64_t>> pairs(total);
      parlib::parallel_for(0, ids.size(), [&](std::size_t i) {
        std::size_t off = per_vertex[i];
        g.map_out_neighbors_early_exit(ids[i], [&](vertex_id, vertex_id u, auto) {
          pairs[off++] = {u, 1};
          return true;
        });
      });
      auto live_pairs = parlib::filter(pairs, [&](const auto& p) {
        return !finished[p.first];
      });
      ctr.histogram_calls.fetch_add(1, std::memory_order_relaxed);
      updates = parlib::histogram_filter<vertex_id, std::uint64_t>(
          live_pairs, [](std::uint64_t a, std::uint64_t b) { return a + b; },
          0,
          [&](vertex_id v, std::uint64_t removed)
              -> std::optional<std::pair<vertex_id, bucket_id>> {
            const vertex_id induced = deg[v];
            if (induced <= k) return std::nullopt;
            const vertex_id nd = std::max<vertex_id>(
                induced - static_cast<vertex_id>(removed), k);
            deg[v] = nd;
            const bucket_id dest = buckets.get_bucket(induced, nd);
            if (dest == kNullBucket) return std::nullopt;
            return std::make_pair(v, dest);
          });
    } else {
      // Contended baseline: FA per edge, then collect touched survivors.
      std::vector<std::uint8_t> touched(n, 0);
      std::uint64_t edges_removed = 0;
      parlib::parallel_for(0, ids.size(), [&](std::size_t i) {
        g.map_out_neighbors(ids[i], [&](vertex_id, vertex_id u, auto) {
          if (!finished[u]) {
            parlib::fetch_and_add<vertex_id>(&deg[u], vertex_id(-1));
            if (!touched[u]) parlib::test_and_set(&touched[u]);
          }
        });
      });
      parlib::parallel_for(0, ids.size(), [&](std::size_t i) {
        parlib::fetch_and_add<std::uint64_t>(&edges_removed,
                                             g.out_degree(ids[i]));
      });
      ctr.fetch_add_ops.fetch_add(edges_removed, std::memory_order_relaxed);
      auto affected = parlib::pack_index<vertex_id>(touched);
      updates.resize(affected.size());
      parlib::parallel_for(0, affected.size(), [&](std::size_t i) {
        const vertex_id v = affected[i];
        // FA may have driven deg below k; clamp (paper's max(newD, k)).
        const vertex_id clamped = std::max(deg[v], k);
        deg[v] = clamped;
        updates[i] = {v, static_cast<bucket_id>(clamped)};
      });
    }
    buckets.update_buckets(updates);
  }
  res.max_core = k;
  return res;
}

}  // namespace gbbs
