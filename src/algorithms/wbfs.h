// Integral-weight SSSP (weighted BFS, Algorithm 4 / Julienne): O(m)
// expected work and O(diam(G) log n) depth w.h.p. on the PW-MT-RAM.
// Vertices are bucketed by tentative distance; popping buckets in
// increasing order settles vertices (integer weights >= 1 guarantee no
// future relaxation below the current bucket). Relaxations inside a round
// use priority-write(min) plus a test-and-set round flag so each improved
// vertex is shipped to update_buckets exactly once.
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <vector>

#include "graph/bucketing.h"
#include "graph/edge_map.h"
#include "graph/graph.h"
#include "graph/vertex_subset.h"
#include "parlib/atomics.h"

namespace gbbs {

namespace wbfs_internal {

struct wbfs_f {
  std::vector<std::uint32_t>* dist;
  std::vector<std::uint8_t>* flags;

  bool cond(vertex_id) const { return true; }
  std::optional<std::uint32_t> update_atomic(vertex_id u, vertex_id v,
                                             std::uint32_t w) const {
    const std::uint32_t nd = (*dist)[u] + w;
    std::optional<std::uint32_t> res;
    if (nd < parlib::atomic_load(&(*dist)[v])) {
      if (parlib::test_and_set(&(*flags)[v])) {
        res = (*dist)[v];  // old distance (its current bucket)
      }
      parlib::write_min(&(*dist)[v], nd);
    }
    return res;
  }
};

}  // namespace wbfs_internal

struct wbfs_result {
  std::vector<std::uint32_t> dist;  // kInfDist if unreachable
  std::size_t num_rounds = 0;       // bucket pops
};

// use_blocked selects edgeMapBlocked vs the unblocked sparse traversal for
// the relaxation step (the Table 6 "wBFS blocked/unblocked" comparison).
template <typename Graph>
wbfs_result wbfs(const Graph& g, vertex_id src, bool use_blocked = true) {
  const vertex_id n = g.num_vertices();
  constexpr std::uint32_t kInf = std::numeric_limits<std::uint32_t>::max();
  std::vector<std::uint32_t> dist(n, kInf);
  std::vector<std::uint8_t> flags(n, 0);
  dist[src] = 0;

  auto bucket_of = [&](vertex_id v) -> bucket_id {
    return dist[v] == kInf ? kNullBucket : static_cast<bucket_id>(dist[v]);
  };
  auto b = make_buckets(n, bucket_of, bucket_order::increasing);

  std::size_t rounds = 0;
  while (true) {
    auto [bkt, ids] = b.next_bucket();
    if (bkt == kNullBucket) break;
    ++rounds;
    vertex_subset frontier(n, std::move(ids));
    auto moved = edge_map_data<std::uint32_t>(
        g, frontier, wbfs_internal::wbfs_f{&dist, &flags}, use_blocked);
    // Reset round flags and compute destination buckets from the *final*
    // distance of this round (several relaxations may have landed).
    const auto& entries = moved.entries();
    std::vector<std::pair<vertex_id, bucket_id>> updates(entries.size());
    parlib::parallel_for(0, entries.size(), [&](std::size_t i) {
      const vertex_id v = entries[i].first;
      flags[v] = 0;
      updates[i] = {v, static_cast<bucket_id>(dist[v])};
    });
    b.update_buckets(updates);
  }
  return {std::move(dist), rounds};
}

}  // namespace gbbs
