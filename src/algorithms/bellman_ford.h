// General-weight SSSP via frontier-based Bellman-Ford (Algorithm 2):
// O(diam(G) * m) work, O(diam(G) log n) depth on the PW-MT-RAM. Distances
// are relaxed with priority-write(min); per-round flags ensure each improved
// vertex enters the next frontier once. If a negative-weight cycle is
// reachable, every vertex reachable from it reports -infinity
// (numeric_limits<int64>::lowest()), per the benchmark I/O spec.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "graph/edge_map.h"
#include "graph/graph.h"
#include "graph/vertex_subset.h"
#include "parlib/atomics.h"

namespace gbbs {

inline constexpr std::int64_t kInfDist64 =
    std::numeric_limits<std::int64_t>::max();
inline constexpr std::int64_t kNegInfDist64 =
    std::numeric_limits<std::int64_t>::lowest();

namespace bf_internal {

struct bf_f {
  std::vector<std::int64_t>* dist;
  std::vector<std::uint8_t>* flags;

  bool cond(vertex_id) const { return true; }
  bool update(vertex_id u, vertex_id v, auto w) const {
    const std::int64_t nd = (*dist)[u] + static_cast<std::int64_t>(w);
    if (nd < (*dist)[v]) {
      (*dist)[v] = nd;
      if (!(*flags)[v]) {
        (*flags)[v] = 1;
        return true;
      }
    }
    return false;
  }
  bool update_atomic(vertex_id u, vertex_id v, auto w) const {
    const std::int64_t nd = (*dist)[u] + static_cast<std::int64_t>(w);
    if (nd < parlib::atomic_load(&(*dist)[v])) {
      parlib::write_min(&(*dist)[v], nd);
      if (!(*flags)[v]) return parlib::test_and_set(&(*flags)[v]);
    }
    return false;
  }
};

struct mark_reachable_f {
  std::vector<std::int64_t>* dist;
  bool cond(vertex_id v) const { return (*dist)[v] != kNegInfDist64; }
  bool update(vertex_id, vertex_id v, auto) const {
    if ((*dist)[v] != kNegInfDist64) {
      (*dist)[v] = kNegInfDist64;
      return true;
    }
    return false;
  }
  bool update_atomic(vertex_id, vertex_id v, auto) const {
    return parlib::priority_write(
        &(*dist)[v], kNegInfDist64,
        [](std::int64_t a, std::int64_t b) { return a != b; });
  }
};

}  // namespace bf_internal

template <typename Graph>
std::vector<std::int64_t> bellman_ford(const Graph& g, vertex_id src,
                                       edge_map_options opts = {}) {
  const vertex_id n = g.num_vertices();
  std::vector<std::int64_t> dist(n, kInfDist64);
  std::vector<std::uint8_t> flags(n, 0);
  dist[src] = 0;
  vertex_subset frontier(n, src);
  std::uint64_t rounds = 0;
  while (!frontier.empty() && rounds <= n) {
    frontier = edge_map(g, frontier, bf_internal::bf_f{&dist, &flags}, opts);
    frontier.to_sparse();
    vertex_map(frontier, [&](vertex_id v) { flags[v] = 0; });
    ++rounds;
  }
  if (!frontier.empty()) {
    // Still relaxing after n rounds: a negative cycle. Everything reachable
    // from the current frontier gets -inf.
    frontier.for_each([&](vertex_id v) { dist[v] = kNegInfDist64; });
    while (!frontier.empty()) {
      frontier =
          edge_map(g, frontier, bf_internal::mark_reachable_f{&dist}, opts);
    }
  }
  return dist;
}

}  // namespace gbbs
