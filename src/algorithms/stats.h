// Graph statistics (Tables 3 and 8-13): effective diameter, component
// counts and largest sizes (CC / BiCC / SCC), triangle count, colors used
// by LF/LLF, MIS / matching / set-cover sizes, degeneracy kmax, and the
// peeling complexity rho.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "algorithms/bfs.h"
#include "algorithms/biconnectivity.h"
#include "algorithms/coloring.h"
#include "algorithms/connectivity.h"
#include "algorithms/kcore.h"
#include "algorithms/maximal_matching.h"
#include "algorithms/mis.h"
#include "algorithms/scc.h"
#include "algorithms/triangle.h"
#include "graph/graph.h"
#include "parlib/sequence_ops.h"

namespace gbbs {

// Max BFS level observed from a few sources (a lower bound on the diameter;
// the paper's "effective diameter" marked * in Table 3).
template <typename Graph>
std::uint32_t effective_diameter(const Graph& g, std::size_t samples = 4) {
  const vertex_id n = g.num_vertices();
  if (n == 0) return 0;
  std::uint32_t diam = 0;
  for (std::size_t i = 0; i < samples; ++i) {
    const vertex_id src = static_cast<vertex_id>(
        parlib::hash64(i * 0x9E37 + 1) % n);
    auto dist = bfs(g, src);
    for (auto d : dist) {
      if (d != kInfDist) diam = std::max(diam, d);
    }
  }
  return diam;
}

template <typename LabelSeq>
std::pair<std::size_t, std::size_t> count_and_largest(const LabelSeq& labels) {
  std::unordered_map<vertex_id, std::size_t> sizes;
  for (auto l : labels) sizes[l]++;
  std::size_t largest = 0;
  for (const auto& [l, s] : sizes) largest = std::max(largest, s);
  return {sizes.size(), largest};
}

struct graph_statistics {
  std::uint64_t num_vertices = 0;
  std::uint64_t num_edges = 0;
  std::uint32_t effective_diameter = 0;
  std::size_t num_cc = 0;
  std::size_t largest_cc = 0;
  std::size_t num_bicc = 0;
  std::size_t num_scc = 0;        // directed inputs only
  std::size_t largest_scc = 0;    // directed inputs only
  std::uint64_t num_triangles = 0;
  vertex_id colors_lf = 0;
  vertex_id colors_llf = 0;
  std::size_t mis_size = 0;
  std::size_t matching_size = 0;
  vertex_id kmax = 0;
  std::size_t rho = 0;
};

// Statistics block for a symmetric graph (Tables 8-13 minus the directed
// rows; SCC fields are filled by compute_directed_statistics).
template <typename Graph>
graph_statistics compute_statistics(const Graph& g) {
  graph_statistics s;
  s.num_vertices = g.num_vertices();
  s.num_edges = g.num_edges();
  s.effective_diameter = effective_diameter(g);
  auto cc = connectivity(g);
  std::tie(s.num_cc, s.largest_cc) = count_and_largest(cc);
  {
    auto bi = biconnectivity(g);
    // Count distinct edge labels.
    std::unordered_map<vertex_id, std::size_t> comps;
    for (vertex_id v = 0; v < g.num_vertices(); ++v) {
      g.map_out_neighbors_early_exit(v, [&](vertex_id, vertex_id u, auto) {
        if (v < u) comps[bi.edge_label(v, u)]++;
        return true;
      });
    }
    s.num_bicc = comps.size();
  }
  s.num_triangles = triangle_count(g);
  s.colors_lf = num_colors(color_graph(g, coloring_heuristic::lf));
  s.colors_llf = num_colors(color_graph(g, coloring_heuristic::llf));
  {
    auto mis = mis_rootset(g);
    s.mis_size = parlib::count_if(mis, [](std::uint8_t f) { return f != 0; });
  }
  s.matching_size = maximal_matching(g).size();
  auto kc = kcore(g);
  s.kmax = kc.max_core;
  s.rho = kc.num_rounds;
  return s;
}

template <typename Graph>
void add_directed_statistics(const Graph& g_dir, graph_statistics& s) {
  auto res = scc(g_dir);
  std::tie(s.num_scc, s.largest_scc) = count_and_largest(res.labels);
}

}  // namespace gbbs
