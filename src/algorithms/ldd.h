// Low-diameter decomposition (Algorithm 5, Miller-Peng-Xu): computes a
// (2*beta, O(log n / beta)) decomposition in O(m) expected work and
// O(log^2 n) depth w.h.p. on the TS-MT-RAM.
//
// Each vertex draws a shift delta_v ~ Exp(beta); vertex v starts a BFS ball
// at time floor(delta_max - delta_v). Ball growing runs as one synchronous
// multi-source BFS where unvisited vertices whose start time has arrived
// join the frontier as fresh cluster centers; ties between balls arriving
// at the same step are broken arbitrarily (CAS), which perturbs the number
// of cut edges by only a constant factor [Shun-Dhulipala-Blelloch '14].
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "graph/edge_map.h"
#include "graph/graph.h"
#include "graph/vertex_subset.h"
#include "parlib/atomics.h"
#include "parlib/random.h"
#include "parlib/sequence_ops.h"

namespace gbbs {

namespace ldd_internal {

struct ldd_f {
  std::vector<vertex_id>* cluster;
  std::vector<vertex_id>* parents;  // optional: BFS-tree parent per vertex

  bool cond(vertex_id v) const { return (*cluster)[v] == kNoVertex; }
  bool update(vertex_id u, vertex_id v, auto) const {
    if ((*cluster)[v] == kNoVertex) {
      (*cluster)[v] = (*cluster)[u];
      if (parents) (*parents)[v] = u;
      return true;
    }
    return false;
  }
  bool update_atomic(vertex_id u, vertex_id v, auto) const {
    if (parlib::atomic_cas(&(*cluster)[v], kNoVertex, (*cluster)[u])) {
      if (parents) (*parents)[v] = u;
      return true;
    }
    return false;
  }
};

}  // namespace ldd_internal

// cluster[v] = id (a vertex id) of v's cluster center. If `parents` is
// non-null it receives, for every non-center vertex, the neighbor whose
// ball-growing step acquired it — these edges form a spanning tree of each
// cluster (used by the LDD-based spanning forest).
template <typename Graph>
std::vector<vertex_id> ldd(const Graph& g, double beta,
                           parlib::random rng = parlib::random(0x1dd),
                           std::vector<vertex_id>* parents = nullptr) {
  const vertex_id n = g.num_vertices();
  std::vector<vertex_id> cluster(n, kNoVertex);
  if (parents) parents->assign(n, kNoVertex);
  if (n == 0) return cluster;

  // Shifts and start times. Start times are bucketed by integer round so
  // each round appends its new centers in O(|bucket|).
  auto shifts = parlib::tabulate<double>(
      n, [&](std::size_t v) { return rng.ith_exponential(v, beta); });
  const double max_shift =
      parlib::reduce(shifts, parlib::max_monoid<double>());
  auto start_round = parlib::tabulate<std::uint32_t>(n, [&](std::size_t v) {
    return static_cast<std::uint32_t>(max_shift - shifts[v]);
  });
  const std::uint32_t max_round =
      parlib::reduce(start_round, parlib::max_monoid<std::uint32_t>());
  // Group vertices by start round (counting sort).
  auto by_start = parlib::iota<vertex_id>(n);
  auto round_offsets = parlib::counting_sort_inplace(
      by_start, [&](vertex_id v) { return start_round[v]; },
      static_cast<std::size_t>(max_round) + 1);

  vertex_subset frontier(n);
  std::uint64_t num_visited = 0;
  std::uint32_t round = 0;
  while (num_visited < n) {
    // Fresh centers whose start time arrived and are still unvisited.
    std::vector<vertex_id> fresh;
    if (round <= max_round) {
      const std::size_t lo = round_offsets[round];
      const std::size_t hi = round_offsets[round + 1];
      auto candidates = parlib::tabulate<vertex_id>(
          hi - lo, [&](std::size_t i) { return by_start[lo + i]; });
      fresh = parlib::filter(candidates, [&](vertex_id v) {
        return cluster[v] == kNoVertex;
      });
      parlib::parallel_for(0, fresh.size(),
                           [&](std::size_t i) { cluster[fresh[i]] = fresh[i]; });
    }
    if (!fresh.empty()) {
      frontier.to_sparse();
      auto ids = frontier.sparse();
      const std::size_t old = ids.size();
      ids.resize(old + fresh.size());
      parlib::parallel_for(0, fresh.size(),
                           [&](std::size_t i) { ids[old + i] = fresh[i]; });
      frontier = vertex_subset(n, std::move(ids));
    }
    num_visited += frontier.size();
    frontier =
        edge_map(g, frontier, ldd_internal::ldd_f{&cluster, parents});
    ++round;
  }
  return cluster;
}

// Number of inter-cluster edges (for testing the beta*m guarantee).
template <typename Graph>
std::uint64_t num_cut_edges(const Graph& g,
                            const std::vector<vertex_id>& cluster) {
  auto counts = parlib::tabulate<std::uint64_t>(
      g.num_vertices(), [&](std::size_t v) {
        return g.count_out(static_cast<vertex_id>(v),
                           [&](vertex_id u, vertex_id ngh, auto) {
                             return cluster[u] != cluster[ngh];
                           });
      });
  return parlib::reduce_add(counts);
}

}  // namespace gbbs
