// Biconnectivity (Algorithm 7, Tarjan-Vishkin as implemented in Section 4):
// O(m) expected work, O(max(diam(G) log n, log^3 n)) depth w.h.p. on the
// FA-MT-RAM.
//
// Pipeline: connectivity labels -> one root per component -> multi-source
// BFS spanning forest -> leaffix/rootfix computations over the BFS levels
// (subtree Size, preorder PN, Low, High) -> critical tree edges
// (u, p(u)) where PN(p) <= Low(u) and High(u) < PN(p) + Size(p) ->
// connectivity on G minus critical edges. The resulting per-vertex labels
// answer per-edge biconnectivity queries in O(1) with 2n space: a tree edge
// gets the label of its deeper endpoint, a non-tree edge the label of
// either endpoint (they agree, as non-tree edges are never removed).
//
// The leaffix (bottom-up) and rootfix (top-down) sums exploit that BFS
// levels are a valid schedule: all children of a vertex live exactly one
// level deeper, so one parallel pass per level suffices.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "algorithms/connectivity.h"
#include "algorithms/spanning_forest.h"
#include "graph/graph.h"
#include "graph/graph_builder.h"
#include "parlib/integer_sort.h"
#include "parlib/parallel.h"
#include "parlib/sequence_ops.h"

namespace gbbs {

// A BFS forest organized for level-synchronous leaffix/rootfix passes.
struct rooted_forest {
  std::vector<vertex_id> parents;
  std::vector<std::uint32_t> level;
  std::vector<std::vector<vertex_id>> waves;  // waves[d] = vertices at depth d
  std::vector<edge_id> child_offsets;         // CSR over children
  std::vector<vertex_id> children;
};

inline rooted_forest build_rooted_forest(std::vector<vertex_id> parents,
                                         const std::vector<vertex_id>& roots) {
  const std::size_t n = parents.size();
  rooted_forest f;
  f.parents = std::move(parents);
  // Children CSR: stable-sort non-root vertices by parent.
  auto non_roots = parlib::filter(
      parlib::iota<vertex_id>(n),
      [&](vertex_id v) { return f.parents[v] != v && f.parents[v] != kNoVertex; });
  std::size_t bits = 1;
  while ((n >> bits) != 0) ++bits;
  auto by_parent = non_roots;
  parlib::integer_sort_inplace(
      by_parent, [&](vertex_id v) { return f.parents[v]; }, bits);
  f.children = by_parent;
  f.child_offsets.assign(n + 1, 0);
  parlib::parallel_for(0, by_parent.size(), [&](std::size_t i) {
    if (i == 0 || f.parents[by_parent[i - 1]] != f.parents[by_parent[i]]) {
      f.child_offsets[f.parents[by_parent[i]]] = i;
    }
  });
  f.child_offsets[n] = by_parent.size();
  {
    std::vector<std::uint8_t> has(n, 0);
    parlib::parallel_for(0, by_parent.size(), [&](std::size_t i) {
      if (i == 0 || f.parents[by_parent[i - 1]] != f.parents[by_parent[i]]) {
        has[f.parents[by_parent[i]]] = 1;
      }
    });
    edge_id next = by_parent.size();
    for (std::size_t v = n; v-- > 0;) {
      if (has[v]) {
        next = f.child_offsets[v];
      } else {
        f.child_offsets[v] = next;
      }
    }
  }
  // Waves.
  f.level.assign(n, 0);
  f.waves.push_back(roots);
  while (true) {
    const auto& wave = f.waves.back();
    parlib::sequence<parlib::sequence<vertex_id>> next(wave.size());
    parlib::parallel_for(0, wave.size(), [&](std::size_t i) {
      const vertex_id v = wave[i];
      for (edge_id c = f.child_offsets[v]; c < f.child_offsets[v + 1]; ++c) {
        next[i].push_back(f.children[c]);
      }
    });
    auto flat = parlib::flatten(next);
    if (flat.empty()) break;
    const auto depth = static_cast<std::uint32_t>(f.waves.size());
    parlib::parallel_for(0, flat.size(),
                         [&](std::size_t i) { f.level[flat[i]] = depth; });
    f.waves.push_back(std::move(flat));
  }
  return f;
}

struct biconnectivity_result {
  std::vector<vertex_id> parents;        // BFS forest
  std::vector<std::uint32_t> level;      // forest depth
  std::vector<vertex_id> vertex_labels;  // CC labels of G \ critical edges
  std::uint64_t num_critical_edges = 0;

  // Biconnectivity label of edge (u, v) in O(1).
  vertex_id edge_label(vertex_id u, vertex_id v) const {
    if (parents[u] == v) return vertex_labels[u];
    if (parents[v] == u) return vertex_labels[v];
    return vertex_labels[level[u] > level[v] ? u : v];
  }
};

template <typename Graph>
biconnectivity_result biconnectivity(const Graph& g) {
  const vertex_id n = g.num_vertices();
  auto sf = spanning_forest(g);
  auto forest = build_rooted_forest(std::move(sf.parents), sf.roots);
  const auto& parents = forest.parents;

  // Leaffix: subtree sizes, bottom-up over waves.
  std::vector<std::uint64_t> size(n, 1);
  for (std::size_t d = forest.waves.size(); d-- > 0;) {
    const auto& wave = forest.waves[d];
    parlib::parallel_for(0, wave.size(), [&](std::size_t i) {
      const vertex_id v = wave[i];
      std::uint64_t s = 1;
      for (edge_id c = forest.child_offsets[v];
           c < forest.child_offsets[v + 1]; ++c) {
        s += size[forest.children[c]];
      }
      size[v] = s;
    });
  }

  // Preorder numbers: trees are laid out consecutively (offset = prefix sum
  // of root subtree sizes); within a tree, rootfix top-down.
  std::vector<std::uint64_t> pre(n, 0);
  {
    auto tree_sizes = parlib::map(
        sf.roots, [&](vertex_id r) { return size[r]; });
    parlib::scan_inplace(tree_sizes);
    parlib::parallel_for(0, sf.roots.size(), [&](std::size_t i) {
      pre[sf.roots[i]] = tree_sizes[i];
    });
  }
  for (const auto& wave : forest.waves) {
    parlib::parallel_for(0, wave.size(), [&](std::size_t i) {
      const vertex_id v = wave[i];
      std::uint64_t next = pre[v] + 1;
      for (edge_id c = forest.child_offsets[v];
           c < forest.child_offsets[v + 1]; ++c) {
        const vertex_id ch = forest.children[c];
        pre[ch] = next;
        next += size[ch];
      }
    });
  }

  // Leaffix Low/High over preorder numbers of non-tree neighbors.
  std::vector<std::uint64_t> low(n), high(n);
  parlib::parallel_for(0, n, [&](std::size_t vi) {
    const auto v = static_cast<vertex_id>(vi);
    std::uint64_t lo = pre[v], hi = pre[v];
    g.map_out_neighbors_early_exit(v, [&](vertex_id, vertex_id w, auto) {
      const bool tree_edge = parents[v] == w || parents[w] == v;
      if (!tree_edge) {
        lo = std::min(lo, pre[w]);
        hi = std::max(hi, pre[w]);
      }
      return true;
    });
    low[v] = lo;
    high[v] = hi;
  });
  for (std::size_t d = forest.waves.size(); d-- > 0;) {
    const auto& wave = forest.waves[d];
    parlib::parallel_for(0, wave.size(), [&](std::size_t i) {
      const vertex_id v = wave[i];
      for (edge_id c = forest.child_offsets[v];
           c < forest.child_offsets[v + 1]; ++c) {
        const vertex_id ch = forest.children[c];
        low[v] = std::min(low[v], low[ch]);
        high[v] = std::max(high[v], high[ch]);
      }
    });
  }

  // Critical tree edges (u, p(u)): subtree(u) never escapes subtree(p(u)).
  std::vector<std::uint8_t> critical(n, 0);  // indexed by child u
  parlib::parallel_for(0, n, [&](std::size_t ui) {
    const auto u = static_cast<vertex_id>(ui);
    const vertex_id p = parents[u];
    if (p == u || p == kNoVertex) return;
    if (pre[p] <= low[u] && high[u] < pre[p] + size[p]) critical[u] = 1;
  });
  const std::uint64_t num_critical = parlib::reduce_add(
      parlib::map(critical, [](std::uint8_t c) -> std::uint64_t { return c; }));

  // Connectivity of G with critical edges removed.
  auto keep = [&](vertex_id a, vertex_id b, auto) {
    if (parents[a] == b && critical[a]) return false;
    if (parents[b] == a && critical[b]) return false;
    return true;
  };
  auto residual = filter_graph(g, keep);
  auto labels = connectivity(residual);

  biconnectivity_result res;
  res.parents = parents;
  res.level = forest.level;
  res.vertex_labels = std::move(labels);
  res.num_critical_edges = num_critical;
  return res;
}

}  // namespace gbbs
