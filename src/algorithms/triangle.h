// Triangle counting (Section A, Shun-Tangwongsan / Latapy compact-forward):
// O(m^{3/2}) work, O(log n) depth. The graph is directed by (degree, id)
// rank — edge (u, v) kept iff u ranks below v — so every triangle is
// counted exactly once as the intersection of two out-neighborhoods in the
// resulting DAG. Intersections run sequentially per edge (the outer loop
// over vertices supplies ample parallelism, as the paper notes).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "graph/graph_builder.h"
#include "parlib/parallel.h"
#include "parlib/sequence_ops.h"

namespace gbbs {

template <typename Graph>
std::uint64_t triangle_count(const Graph& g) {
  const vertex_id n = g.num_vertices();
  // rank(u) < rank(v) iff (deg(u), u) < (deg(v), v).
  auto ranks_below = [&](vertex_id u, vertex_id v) {
    const auto du = g.out_degree(u), dv = g.out_degree(v);
    return du < dv || (du == dv && u < v);
  };
  auto dag = filter_graph(g, [&](vertex_id u, vertex_id v, auto) {
    return ranks_below(u, v);
  });
  auto per_vertex = parlib::tabulate<std::uint64_t>(n, [&](std::size_t vi) {
    const auto v = static_cast<vertex_id>(vi);
    std::uint64_t count = 0;
    dag.map_out_neighbors_early_exit(v, [&](vertex_id, vertex_id u, auto) {
      count += dag.intersect_out(v, u);
      return true;
    });
    return count;
  });
  return parlib::reduce_add(per_vertex);
}

}  // namespace gbbs
