// Comparator baselines from the paper's Section 6 evaluation:
//  * connectivity_union_find — concurrent union-find connectivity (the
//    Patwary-Refsnes-Manne style comparator for Algorithm 6);
//  * msf_kruskal — parallel sort + union-find Kruskal (the PBBS comparator
//    for the filtered Boruvka MSF; the sort is parallel, the scan is the
//    classic sequential union-find pass).
// These are benchmarks-only code paths; the primary implementations live in
// connectivity.h and msf.h.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "parlib/parallel.h"
#include "parlib/sequence_ops.h"
#include "parlib/sort.h"
#include "parlib/union_find.h"

namespace gbbs {

template <typename Graph>
std::vector<vertex_id> connectivity_union_find(const Graph& g) {
  const vertex_id n = g.num_vertices();
  parlib::union_find uf(n);
  parlib::parallel_for(0, n, [&](std::size_t vi) {
    const auto v = static_cast<vertex_id>(vi);
    g.map_out_neighbors(v, [&](vertex_id, vertex_id u, auto) {
      if (u < v) uf.unite(v, u);
    });
  });
  return uf.labels();
}

struct kruskal_result {
  std::vector<edge<std::uint32_t>> forest;
  std::uint64_t total_weight = 0;
};

template <typename Graph>
kruskal_result msf_kruskal(const Graph& g) {
  const vertex_id n = g.num_vertices();
  auto all = g.edges();
  auto half = parlib::filter(all, [](const auto& e) { return e.u < e.v; });
  parlib::sort_inplace(half, [](const auto& a, const auto& b) {
    return a.w < b.w || (a.w == b.w && (a.u < b.u || (a.u == b.u && a.v < b.v)));
  });
  parlib::union_find uf(n);
  kruskal_result res;
  for (const auto& e : half) {
    if (uf.unite(e.u, e.v)) {
      res.forest.push_back(e);
      res.total_weight += e.w;
    }
  }
  return res;
}

}  // namespace gbbs
