// Single-source betweenness centrality (Algorithm 3, Brandes): O(m) work
// and O(diam(G) log n) depth on the FA-MT-RAM. A forward BFS accumulates
// shortest-path counts with fetch-and-add, saving each frontier; the
// backward sweep replays the frontiers deepest-first, accumulating
// dependencies. Input is an undirected graph (per the benchmark spec).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/edge_map.h"
#include "graph/graph.h"
#include "graph/vertex_subset.h"
#include "parlib/atomics.h"

namespace gbbs {

namespace bc_internal {

struct path_f {
  std::vector<double>* num_paths;
  std::vector<std::uint8_t>* visited;

  bool cond(vertex_id v) const { return !(*visited)[v]; }
  bool update(vertex_id u, vertex_id v, auto) const {
    const double prev = (*num_paths)[v];
    (*num_paths)[v] += (*num_paths)[u];
    return prev == 0.0;
  }
  bool update_atomic(vertex_id u, vertex_id v, auto) const {
    return parlib::atomic_add(&(*num_paths)[v], (*num_paths)[u]) == 0.0;
  }
};

struct dependency_f {
  std::vector<double>* num_paths;
  std::vector<double>* dependencies;
  std::vector<std::uint8_t>* visited;

  bool cond(vertex_id v) const { return !(*visited)[v]; }
  bool update(vertex_id u, vertex_id v, auto) const {
    (*dependencies)[v] +=
        (*num_paths)[v] / (*num_paths)[u] * (1.0 + (*dependencies)[u]);
    return true;
  }
  bool update_atomic(vertex_id u, vertex_id v, auto) const {
    parlib::atomic_add(
        &(*dependencies)[v],
        (*num_paths)[v] / (*num_paths)[u] * (1.0 + (*dependencies)[u]));
    return true;
  }
};

}  // namespace bc_internal

// Dependency scores (centrality contribution of all src-t shortest paths).
template <typename Graph>
std::vector<double> betweenness(const Graph& g, vertex_id src,
                                edge_map_options opts = {}) {
  const vertex_id n = g.num_vertices();
  std::vector<double> num_paths(n, 0.0), dependencies(n, 0.0);
  std::vector<std::uint8_t> visited(n, 0);
  num_paths[src] = 1.0;
  visited[src] = 1;

  std::vector<vertex_subset> levels;
  vertex_subset frontier(n, src);
  while (!frontier.empty()) {
    frontier = edge_map(
        g, frontier, bc_internal::path_f{&num_paths, &visited}, opts);
    frontier.to_sparse();
    vertex_map(frontier, [&](vertex_id v) { visited[v] = 1; });
    levels.push_back(frontier);
  }

  // Backward sweep: deepest level first; a level is marked visited before
  // its edges fire so contributions only flow to strictly shallower levels.
  parlib::parallel_for(0, n, [&](std::size_t v) { visited[v] = 0; });
  for (std::size_t round = levels.size(); round-- > 0;) {
    vertex_subset& f = levels[round];
    vertex_map(f, [&](vertex_id v) { visited[v] = 1; });
    edge_map(g, f,
             bc_internal::dependency_f{&num_paths, &dependencies, &visited},
             opts);
  }
  dependencies[src] = 0.0;
  return dependencies;
}

}  // namespace gbbs
