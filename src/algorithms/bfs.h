// Breadth-first search (Algorithm 1): O(m) work, O(diam(G) log n) depth on
// the TS-MT-RAM. Vertices acquire unvisited neighbors with test-and-set.
// Also provides the multi-source parent-forest variant used by the
// Tarjan-Vishkin biconnectivity implementation (Section 4).
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "graph/edge_map.h"
#include "graph/graph.h"
#include "graph/vertex_subset.h"
#include "parlib/atomics.h"

namespace gbbs {

inline constexpr std::uint32_t kInfDist =
    std::numeric_limits<std::uint32_t>::max();

namespace bfs_internal {

struct bfs_f {
  std::vector<std::uint8_t>* visited;
  std::vector<std::uint32_t>* dist;
  std::uint32_t round;

  bool cond(vertex_id v) const { return !(*visited)[v]; }
  bool update(vertex_id, vertex_id v, auto) const {
    if (!(*visited)[v]) {
      (*visited)[v] = 1;
      (*dist)[v] = round;
      return true;
    }
    return false;
  }
  bool update_atomic(vertex_id, vertex_id v, auto) const {
    if (parlib::test_and_set(&(*visited)[v])) {
      (*dist)[v] = round;
      return true;
    }
    return false;
  }
};

struct bfs_tree_f {
  std::vector<vertex_id>* parent;
  bool cond(vertex_id v) const { return (*parent)[v] == kNoVertex; }
  bool update(vertex_id u, vertex_id v, auto) const {
    if ((*parent)[v] == kNoVertex) {
      (*parent)[v] = u;
      return true;
    }
    return false;
  }
  bool update_atomic(vertex_id u, vertex_id v, auto) const {
    return parlib::atomic_cas(&(*parent)[v], kNoVertex, u);
  }
};

}  // namespace bfs_internal

// Hop distances from src (kInfDist if unreachable).
template <typename Graph>
std::vector<std::uint32_t> bfs(const Graph& g, vertex_id src,
                               edge_map_options opts = {}) {
  std::vector<std::uint8_t> visited(g.num_vertices(), 0);
  std::vector<std::uint32_t> dist(g.num_vertices(), kInfDist);
  visited[src] = 1;
  dist[src] = 0;
  vertex_subset frontier(g.num_vertices(), src);
  std::uint32_t round = 0;
  while (!frontier.empty()) {
    ++round;
    frontier = edge_map(
        g, frontier,
        bfs_internal::bfs_f{&visited, &dist, round}, opts);
  }
  return dist;
}

// Multi-source BFS forest: parent[v] = BFS-tree parent, parent[root] = root,
// parent[unreached] = kNoVertex. Roots form the initial frontier.
template <typename Graph>
std::vector<vertex_id> bfs_forest(const Graph& g,
                                  const std::vector<vertex_id>& roots,
                                  edge_map_options opts = {}) {
  std::vector<vertex_id> parent(g.num_vertices(), kNoVertex);
  for (const vertex_id r : roots) parent[r] = r;
  vertex_subset frontier(g.num_vertices(), roots);
  while (!frontier.empty()) {
    frontier =
        edge_map(g, frontier, bfs_internal::bfs_tree_f{&parent}, opts);
  }
  return parent;
}

}  // namespace gbbs
