// Strongly connected components (Algorithm 8, Blelloch-Gu-Shun-Sun):
// O(m log n) expected work, O(diam(G) log n) depth w.h.p. on the PW-MT-RAM.
//
// Vertices are randomly permuted and processed in exponentially growing
// batches of centers. Each phase runs simultaneous forward and backward
// BFS from the phase's centers, restricted to each center's current
// subproblem; the reachability sets are (vertex, center) pairs stored in the
// probe-clustered hash multimap of Section 5 ("Techniques for overlapping
// searches"). Vertices visited by a center in both directions form that
// center's SCC (done, labeled by the minimum such center); vertices visited
// in exactly one direction refine their subproblem to the minimum visiting
// center. Table-capacity bounds are recomputed with a parallel reduce
// before each BFS round, exactly as the paper describes.
//
// Optimizations from Section 4: iterative trimming of zero in/out-degree
// vertices, and a bit-vector single-pivot first phase that peels the giant
// SCC before any hash table is allocated.
#pragma once

#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "graph/vertex_subset.h"
#include "parlib/atomics.h"
#include "parlib/hash_table.h"
#include "parlib/parallel.h"
#include "parlib/random.h"
#include "parlib/sequence_ops.h"

namespace gbbs {

struct scc_options {
  double beta = 2.0;        // batch growth rate
  bool trim = true;         // iterative zero-degree trimming
  bool single_pivot = true; // bit-vector first phase
  std::size_t max_trim_rounds = 8;
  parlib::random rng = parlib::random(0x5cc);
};

namespace scc_internal {

inline constexpr vertex_id kUnlabeled = kNoVertex;

// One direction of the multi-search: BFS from `centers` over `g` (forward:
// out-edges; backward: in-edges), visiting only vertices whose current
// subproblem label equals the center's snapshot label, writing (v, c) pairs.
template <typename Graph, bool Forward>
parlib::reachability_table multi_search(
    const Graph& g, const std::vector<vertex_id>& centers,
    const std::vector<vertex_id>& labels, const std::vector<std::uint8_t>& done) {
  const vertex_id n = g.num_vertices();
  // Center c searches within subproblem labels[c]; snapshot them.
  std::vector<vertex_id> center_sub(centers.size());
  parlib::parallel_for(0, centers.size(), [&](std::size_t i) {
    center_sub[i] = labels[centers[i]];
  });
  // Initial capacity: centers + slack; grows geometrically via rebuild.
  parlib::reachability_table table(std::max<std::size_t>(
      256, centers.size() * 4));
  std::vector<std::uint8_t> on_frontier(n, 0);
  std::vector<vertex_id> frontier(centers.size());
  std::size_t table_count = 0;
  parlib::parallel_for(0, centers.size(), [&](std::size_t i) {
    table.insert(centers[i], static_cast<vertex_id>(i));
    frontier[i] = centers[i];
    on_frontier[centers[i]] = 1;
  });
  table_count = centers.size();

  while (!frontier.empty()) {
    // Upper-bound this round's insertions: sum over u in frontier of
    // (#labels of u) * degree(u), then grow the table if needed (Section 5).
    auto bounds = parlib::map(frontier, [&](vertex_id u) {
      const std::uint64_t deg = Forward ? g.out_degree(u) : g.in_degree(u);
      return static_cast<std::uint64_t>(table.count_labels(u)) * deg;
    });
    const std::uint64_t bound = parlib::reduce_add(bounds);
    if ((table_count + bound) * 2 > table.capacity()) {
      parlib::reachability_table bigger((table_count + bound) * 2);
      auto entries = table.entries();
      parlib::parallel_for(0, entries.size(), [&](std::size_t i) {
        bigger.insert(static_cast<vertex_id>(entries[i] >> 32),
                      static_cast<vertex_id>(entries[i] & 0xFFFFFFFFu));
      });
      table = std::move(bigger);
    }
    parlib::parallel_for(0, frontier.size(),
                         [&](std::size_t i) { on_frontier[frontier[i]] = 0; });
    // Per-worker insertion counts avoid a contended global counter. Sized
    // and indexed by worker *slot* so external workers (and the shared
    // unregistered slot) stay in bounds.
    std::vector<std::uint64_t> added(parlib::max_worker_slots(), 0);
    std::vector<std::uint8_t> next_flag(n, 0);
    parlib::parallel_for(
        0, frontier.size(),
        [&](std::size_t i) {
          const vertex_id u = frontier[i];
          auto visit = [&](vertex_id, vertex_id v, auto) {
            if (done[v]) return;
            bool any = false;
            table.for_each_label(u, [&](vertex_id ci) {
              if (labels[v] != center_sub[ci]) return;
              if (!table.contains(v, ci)) {
                if (table.insert(v, ci)) {
                  ++added[parlib::worker_slot()];
                  any = true;
                }
              }
            });
            if (any && !next_flag[v]) parlib::test_and_set(&next_flag[v]);
          };
          if constexpr (Forward) {
            g.map_out_neighbors(u, visit, /*par=*/false);
          } else {
            g.map_in_neighbors(u, visit, /*par=*/false);
          }
        },
        1);
    table_count += parlib::reduce_add(added);
    frontier = parlib::pack_index<vertex_id>(next_flag);
  }
  return table;
}

}  // namespace scc_internal

struct scc_result {
  std::vector<vertex_id> labels;  // SCC id per vertex
  std::size_t num_phases = 0;
};

template <typename Graph>
scc_result scc(const Graph& g, scc_options opts = {}) {
  const vertex_id n = g.num_vertices();
  std::vector<vertex_id> labels(n, scc_internal::kUnlabeled);
  std::vector<std::uint8_t> done(n, 0);
  scc_result res;
  if (n == 0) return res;

  // Final SCC label per vertex (assigned when done).
  std::vector<vertex_id> scc_label(n, scc_internal::kUnlabeled);
  vertex_id next_singleton_label = n;  // trimmed vertices get fresh labels

  // --- Trimming: vertices with zero in- or out-degree among live vertices
  // form singleton SCCs.
  if (opts.trim) {
    for (std::size_t round = 0; round < opts.max_trim_rounds; ++round) {
      auto trivially_done = parlib::filter(
          parlib::iota<vertex_id>(n), [&](vertex_id v) {
            if (done[v]) return false;
            const auto live_out = g.count_out(
                v, [&](vertex_id, vertex_id u, auto) { return !done[u]; });
            if (live_out == 0) return true;
            std::size_t live_in = 0;
            g.map_in_neighbors_early_exit(v, [&](vertex_id, vertex_id u, auto) {
              if (!done[u]) {
                ++live_in;
                return false;  // one is enough
              }
              return true;
            });
            return live_in == 0;
          });
      if (trivially_done.empty()) break;
      parlib::parallel_for(0, trivially_done.size(), [&](std::size_t i) {
        const vertex_id v = trivially_done[i];
        done[v] = 1;
        scc_label[v] = next_singleton_label + static_cast<vertex_id>(i);
      });
      next_singleton_label += static_cast<vertex_id>(trivially_done.size());
    }
  }

  const auto perm = parlib::random_permutation(n, opts.rng);

  // --- Single-pivot first phase: plain BFS bit-vectors from the first
  // not-done vertex in permutation order (finds the giant SCC cheaply).
  std::size_t perm_pos = 0;
  if (opts.single_pivot) {
    while (perm_pos < n && done[perm[perm_pos]]) ++perm_pos;
    if (perm_pos < n) {
      const vertex_id pivot = perm[perm_pos];
      auto reach = [&](bool forward) {
        std::vector<std::uint8_t> vis(n, 0);
        vis[pivot] = 1;
        std::vector<vertex_id> frontier{pivot};
        while (!frontier.empty()) {
          std::vector<std::uint8_t> next(n, 0);
          parlib::parallel_for(0, frontier.size(), [&](std::size_t i) {
            auto visit = [&](vertex_id, vertex_id v, auto) {
              if (!done[v] && !vis[v] && parlib::test_and_set(&vis[v])) {
                next[v] = 1;
              }
            };
            if (forward) {
              g.map_out_neighbors(frontier[i], visit, false);
            } else {
              g.map_in_neighbors(frontier[i], visit, false);
            }
          });
          frontier = parlib::pack_index<vertex_id>(next);
        }
        return vis;
      };
      auto fwd = reach(true);
      auto bwd = reach(false);
      parlib::parallel_for(0, n, [&](std::size_t v) {
        if (done[v]) return;
        if (fwd[v] && bwd[v]) {
          done[v] = 1;
          scc_label[v] = pivot;
        } else if (fwd[v]) {
          labels[v] = 1;  // refined subproblems: fwd-only
        } else if (bwd[v]) {
          labels[v] = 2;  // bwd-only
        }
      });
      ++perm_pos;
      ++res.num_phases;
    }
  }

  // --- Batched multi-search phases.
  std::size_t batch = 1;
  vertex_id center_priority_base = 4;  // label space above the pivot labels
  while (perm_pos < n) {
    const std::size_t take = std::min<std::size_t>(
        static_cast<std::size_t>(batch), n - perm_pos);
    auto candidates = parlib::tabulate<vertex_id>(
        take, [&](std::size_t i) { return perm[perm_pos + i]; });
    auto centers = parlib::filter(
        candidates, [&](vertex_id v) { return !done[v]; });
    perm_pos += take;
    batch = static_cast<std::size_t>(batch * opts.beta) + 1;
    if (centers.empty()) continue;
    ++res.num_phases;

    auto fwd = scc_internal::multi_search<Graph, true>(g, centers, labels,
                                                       done);
    auto bwd = scc_internal::multi_search<Graph, false>(g, centers, labels,
                                                        done);

    // Classify visited vertices. Center indices are per-phase; priority is
    // the index within `centers` (respecting permutation order).
    auto fwd_entries = fwd.entries();
    auto bwd_entries = bwd.entries();
    std::vector<vertex_id> both_min(n, scc_internal::kUnlabeled);
    std::vector<vertex_id> xor_min(n, scc_internal::kUnlabeled);
    parlib::parallel_for(0, fwd_entries.size(), [&](std::size_t i) {
      const auto v = static_cast<vertex_id>(fwd_entries[i] >> 32);
      const auto ci = static_cast<vertex_id>(fwd_entries[i] & 0xFFFFFFFFu);
      if (bwd.contains(v, ci)) {
        parlib::write_min(&both_min[v], ci);
      } else {
        parlib::write_min(&xor_min[v], ci);
      }
    });
    parlib::parallel_for(0, bwd_entries.size(), [&](std::size_t i) {
      const auto v = static_cast<vertex_id>(bwd_entries[i] >> 32);
      const auto ci = static_cast<vertex_id>(bwd_entries[i] & 0xFFFFFFFFu);
      if (!fwd.contains(v, ci)) {
        // Backward-only: offset by centers.size() to separate the F\B and
        // B\F sides of the same center into different subproblems.
        parlib::write_min(&xor_min[v],
                          static_cast<vertex_id>(ci + centers.size()));
      }
    });
    parlib::parallel_for(0, n, [&](std::size_t v) {
      if (done[v]) return;
      if (both_min[v] != scc_internal::kUnlabeled) {
        done[v] = 1;
        scc_label[v] = centers[both_min[v]];
      } else if (xor_min[v] != scc_internal::kUnlabeled) {
        labels[v] = center_priority_base + xor_min[v];
      }
    });
    center_priority_base += static_cast<vertex_id>(2 * centers.size());
  }

  res.labels = std::move(scc_label);
  return res;
}

}  // namespace gbbs
