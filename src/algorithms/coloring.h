// Graph coloring (Algorithm 12): synchronous Jones-Plassmann with the LLF
// (largest-log-degree-first) heuristic of Hasenplaugh et al., O(m + n) work
// and O(L log Delta + log n) depth on the FA-MT-RAM; the LF
// (largest-degree-first) heuristic is selectable for the statistics tables.
//
// Priority[v] counts neighbors ordered before v; roots color themselves
// with the smallest color absent from their neighborhood, then decrement
// their later neighbors with fetch-and-add.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "graph/edge_map.h"
#include "graph/graph.h"
#include "graph/vertex_subset.h"
#include "parlib/atomics.h"
#include "parlib/parallel.h"
#include "parlib/random.h"
#include "parlib/sequence_ops.h"

namespace gbbs {

enum class coloring_heuristic { llf, lf };

namespace coloring_internal {

inline std::uint32_t log2_ceil(std::uint64_t d) {
  std::uint32_t b = 0;
  while ((std::uint64_t{1} << b) < d) ++b;
  return b;
}

struct order {
  // True if u is ordered (colored) before v.
  const std::vector<std::uint64_t>* key;  // higher key first
  const std::vector<std::uint32_t>* tiebreak;
  bool before(vertex_id u, vertex_id v) const {
    if ((*key)[u] != (*key)[v]) return (*key)[u] > (*key)[v];
    return (*tiebreak)[u] < (*tiebreak)[v];
  }
};

struct decrement_f {
  order ord;
  std::vector<std::int64_t>* priority;
  bool cond(vertex_id v) const {
    return parlib::atomic_load(&(*priority)[v]) > 0;
  }
  bool apply(vertex_id u, vertex_id v) const {
    if (ord.before(u, v)) {
      return parlib::fetch_and_add<std::int64_t>(&(*priority)[v], -1) == 1;
    }
    return false;
  }
  bool update(vertex_id u, vertex_id v, auto) const { return apply(u, v); }
  bool update_atomic(vertex_id u, vertex_id v, auto) const {
    return apply(u, v);
  }
};

}  // namespace coloring_internal

// Returns colors in [0, Delta + 1).
template <typename Graph>
std::vector<vertex_id> color_graph(const Graph& g,
                                   coloring_heuristic heuristic =
                                       coloring_heuristic::llf,
                                   parlib::random rng = parlib::random(
                                       0xc01)) {
  const vertex_id n = g.num_vertices();
  const auto perm = parlib::random_permutation(n, rng);
  std::vector<std::uint32_t> perm_pos(n);
  parlib::parallel_for(0, n, [&](std::size_t i) { perm_pos[perm[i]] = i; });
  auto key = parlib::tabulate<std::uint64_t>(n, [&](std::size_t v) {
    const std::uint64_t d = g.out_degree(static_cast<vertex_id>(v));
    return heuristic == coloring_heuristic::llf
               ? coloring_internal::log2_ceil(d + 1)
               : d;
  });
  const coloring_internal::order ord{&key, &perm_pos};

  std::vector<std::int64_t> priority(n);
  parlib::parallel_for(0, n, [&](std::size_t vi) {
    const auto v = static_cast<vertex_id>(vi);
    priority[vi] = static_cast<std::int64_t>(g.count_out(
        v, [&](vertex_id, vertex_id u, auto) { return ord.before(u, v); }));
  });

  std::vector<vertex_id> color(n, kNoVertex);
  auto assign_color = [&](vertex_id v) {
    // Smallest color not used by any neighbor: deg+1 candidates suffice.
    const std::size_t deg = g.out_degree(v);
    std::vector<std::uint8_t> used(deg + 1, 0);
    g.map_out_neighbors_early_exit(v, [&](vertex_id, vertex_id u, auto) {
      const vertex_id c = color[u];
      if (c != kNoVertex && c <= deg) used[c] = 1;
      return true;
    });
    for (std::size_t c = 0; c <= deg; ++c) {
      if (!used[c]) {
        color[v] = static_cast<vertex_id>(c);
        return;
      }
    }
  };

  auto root_flags = parlib::tabulate<std::uint8_t>(n, [&](std::size_t v) {
    return static_cast<std::uint8_t>(priority[v] == 0);
  });
  vertex_subset roots(n, parlib::pack_index<vertex_id>(root_flags));
  std::uint64_t finished = 0;
  while (finished < n) {
    roots.to_sparse();
    vertex_map(roots, [&](vertex_id v) { assign_color(v); });
    finished += roots.size();
    roots = edge_map(g, roots,
                     coloring_internal::decrement_f{ord, &priority},
                     edge_map_options{.allow_dense = false});
  }
  return color;
}

// Asynchronous Jones-Plassmann (the Hasenplaugh et al. execution model the
// paper compares its synchronous implementation against in Section 6,
// reporting the synchronous version 1.2-1.6x slower "due to synchronizing
// on many rounds which contain few vertices"). Instead of global rounds, a
// vertex is colored by whichever task decrements its priority counter to
// zero, which then recursively activates its newly-ready neighbors via
// fork-join — no barriers. The activation DAG has the same O(L log Delta)
// depth, so the bounds are unchanged.
namespace coloring_internal {

template <typename Graph, typename Assign>
void async_activate(const Graph& g, vertex_id v, const order& ord,
                    std::vector<std::int64_t>& priority,
                    const Assign& assign_color) {
  assign_color(v);
  // Collect neighbors that become ready when we decrement them.
  std::vector<vertex_id> ready;
  g.map_out_neighbors_early_exit(v, [&](vertex_id, vertex_id u, auto) {
    if (ord.before(v, u) &&
        parlib::fetch_and_add<std::int64_t>(&priority[u], -1) == 1) {
      ready.push_back(u);
    }
    return true;
  });
  // Activate ready children as a balanced fork-join tree.
  const std::function<void(std::size_t, std::size_t)> spawn =
      [&](std::size_t lo, std::size_t hi) {
        if (hi - lo == 1) {
          async_activate(g, ready[lo], ord, priority, assign_color);
          return;
        }
        const std::size_t mid = lo + (hi - lo) / 2;
        parlib::par_do([&] { spawn(lo, mid); }, [&] { spawn(mid, hi); });
      };
  if (!ready.empty()) spawn(0, ready.size());
}

}  // namespace coloring_internal

template <typename Graph>
std::vector<vertex_id> color_graph_async(const Graph& g,
                                         coloring_heuristic heuristic =
                                             coloring_heuristic::llf,
                                         parlib::random rng = parlib::random(
                                             0xc01)) {
  const vertex_id n = g.num_vertices();
  const auto perm = parlib::random_permutation(n, rng);
  std::vector<std::uint32_t> perm_pos(n);
  parlib::parallel_for(0, n, [&](std::size_t i) { perm_pos[perm[i]] = i; });
  auto key = parlib::tabulate<std::uint64_t>(n, [&](std::size_t v) {
    const std::uint64_t d = g.out_degree(static_cast<vertex_id>(v));
    return heuristic == coloring_heuristic::llf
               ? coloring_internal::log2_ceil(d + 1)
               : d;
  });
  const coloring_internal::order ord{&key, &perm_pos};
  std::vector<std::int64_t> priority(n);
  parlib::parallel_for(0, n, [&](std::size_t vi) {
    const auto v = static_cast<vertex_id>(vi);
    priority[vi] = static_cast<std::int64_t>(g.count_out(
        v, [&](vertex_id, vertex_id u, auto) { return ord.before(u, v); }));
  });
  std::vector<vertex_id> color(n, kNoVertex);
  auto assign_color = [&](vertex_id v) {
    const std::size_t deg = g.out_degree(v);
    std::vector<std::uint8_t> used(deg + 1, 0);
    g.map_out_neighbors_early_exit(v, [&](vertex_id, vertex_id u, auto) {
      const vertex_id c = parlib::atomic_load(&color[u]);
      if (c != kNoVertex && c <= deg) used[c] = 1;
      return true;
    });
    for (std::size_t c = 0; c <= deg; ++c) {
      if (!used[c]) {
        parlib::atomic_store(&color[v], static_cast<vertex_id>(c));
        return;
      }
    }
  };
  auto root_flags = parlib::tabulate<std::uint8_t>(n, [&](std::size_t v) {
    return static_cast<std::uint8_t>(priority[v] == 0);
  });
  auto roots = parlib::pack_index<vertex_id>(root_flags);
  parlib::parallel_for(
      0, roots.size(),
      [&](std::size_t i) {
        coloring_internal::async_activate(g, roots[i], ord, priority,
                                          assign_color);
      },
      1);
  return color;
}

// Number of colors used (max color + 1).
inline vertex_id num_colors(const std::vector<vertex_id>& colors) {
  if (colors.empty()) return 0;
  auto mx = parlib::reduce(colors, parlib::max_monoid<vertex_id>());
  return mx == kNoVertex ? 0 : mx + 1;
}

}  // namespace gbbs
