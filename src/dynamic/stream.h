// Replayable edge streams: feed a fixed edge list to the batch-dynamic
// subsystem in configurable batch sizes, optionally interleaving erases of
// previously-delivered edges (a deletion-heavy adversary for the
// connectivity tracker's rebuild path). Deterministic given the edge list
// and seed — the same stream can be replayed at several batch sizes and
// must produce the same final graph.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "dynamic/update_batch.h"
#include "graph/graph.h"
#include "parlib/random.h"
#include "parlib/sequence_ops.h"

namespace gbbs::dynamic {

template <typename W>
class edge_stream {
 public:
  explicit edge_stream(std::vector<edge<W>> edges)
      : edges_(std::move(edges)) {}

  bool done() const { return pos_ >= edges_.size(); }
  std::size_t remaining() const { return edges_.size() - pos_; }
  std::size_t delivered() const { return pos_; }

  // The next up-to-batch_size edges as raw insert updates.
  std::vector<update<W>> next_inserts(std::size_t batch_size) {
    const std::size_t lo = pos_;
    const std::size_t hi = std::min(edges_.size(), lo + batch_size);
    pos_ = hi;
    return parlib::tabulate<update<W>>(hi - lo, [&](std::size_t i) {
      const auto& e = edges_[lo + i];
      return update<W>{e.u, e.v, e.w, update_op::insert};
    });
  }

  // A sample of `count` erase updates drawn (with replacement) from the
  // already-delivered prefix; empty if nothing was delivered yet.
  std::vector<update<W>> sample_erases(std::size_t count,
                                       parlib::random rng) const {
    if (pos_ == 0) return {};
    return parlib::tabulate<update<W>>(count, [&](std::size_t i) {
      const auto& e = edges_[rng.ith_rand(i) % pos_];
      return update<W>{e.u, e.v, e.w, update_op::erase};
    });
  }

  const std::vector<edge<W>>& edges() const { return edges_; }

 private:
  std::vector<edge<W>> edges_;
  std::size_t pos_ = 0;
};

// Canonical undirected stream from a symmetric CSR: each edge once, u < v
// (the dynamic graph re-mirrors on apply).
template <typename G>
std::vector<edge<typename G::weight_type>> undirected_stream_edges(
    const G& g) {
  auto all = g.edges();
  return parlib::filter(all, [](const auto& e) { return e.u < e.v; });
}

}  // namespace gbbs::dynamic
