// Vertex-range sharding for the multi-writer ingest path (Schulz,
// *Scalable Graph Algorithms*: contiguous vertex-range partitions keep a
// shard's rows cache-local and make ownership a shift + modulo, not a
// lookup table).
//
// Ownership is block-cyclic: vertex u belongs to shard
// (u >> block_bits) % num_shards — contiguous blocks of 2^block_bits
// vertices assigned round-robin, so the assignment is stable as the
// vertex set grows (appending ids never reassigns an existing vertex) and
// a growing graph stays balanced without knowing its final size.
//
// The double-booking invariant: a normalized batch is split so every
// directed update (u, v) goes to owner(u). Symmetric batches are already
// mirrored (make_batch emits both (u, v) and (v, u)), so a cross-shard
// edge is double-booked — owner(u) gets the u-row entry, owner(v) the
// v-row entry — and each shard's out/in rows stay locally complete: any
// row a shard owns can be served (point reads) or traversed (analytics
// stitching) without touching another shard.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "dynamic/update_batch.h"
#include "graph/graph.h"
#include "parlib/parallel.h"
#include "parlib/sequence_ops.h"

namespace gbbs::dynamic {

class shard_partition {
 public:
  // Blocks of 256 vertices by default: big enough that a shard's rows
  // cluster (offsets/degree arrays stay cache-friendly per block), small
  // enough that modest test graphs still spread across every shard.
  shard_partition() = default;
  explicit shard_partition(std::size_t num_shards,
                           std::uint32_t block_bits = 8)
      : num_shards_(num_shards == 0 ? 1 : num_shards),
        block_bits_(block_bits) {}

  std::size_t num_shards() const { return num_shards_; }
  std::uint32_t block_bits() const { return block_bits_; }

  std::size_t owner(vertex_id u) const {
    return (static_cast<std::size_t>(u) >> block_bits_) % num_shards_;
  }

 private:
  std::size_t num_shards_ = 1;
  std::uint32_t block_bits_ = 8;
};

// Split a normalized batch into one sub-batch per shard by owner(u).
// Each sub-batch is a filtered subsequence of the (u, v)-sorted input, so
// it stays normalized (sorted, deduped, self-loop-free) and can be fed to
// dynamic_graph::apply_batch directly — no re-normalization per shard.
// Every sub-batch carries the *global* max_vertex so all shards grow
// their vertex sets in lockstep (a composite view needs equal n).
template <typename W>
std::vector<update_batch<W>> split_batch(const update_batch<W>& batch,
                                         const shard_partition& part) {
  std::vector<update_batch<W>> out(part.num_shards());
  if (part.num_shards() == 1) {
    out[0] = batch;
    return out;
  }
  const auto& ups = batch.updates;
  for (std::size_t s = 0; s < part.num_shards(); ++s) {
    auto keep = parlib::tabulate<std::uint8_t>(ups.size(), [&](std::size_t i) {
      return static_cast<std::uint8_t>(part.owner(ups[i].u) == s);
    });
    out[s].updates = parlib::pack(ups, keep);
    out[s].max_vertex = batch.max_vertex;
  }
  return out;
}

// Split a seed CSR into per-shard CSRs: shard s keeps the full vertex id
// space but only the rows it owns (every other row is empty). The union
// of the shards' rows is exactly the seed — each directed edge (u, v)
// lives in owner(u)'s block only.
template <typename W>
std::vector<gbbs::graph<W>> split_seed(const gbbs::graph<W>& seed,
                                       const shard_partition& part) {
  const vertex_id n = seed.num_vertices();
  std::vector<gbbs::graph<W>> out;
  out.reserve(part.num_shards());
  for (std::size_t s = 0; s < part.num_shards(); ++s) {
    auto degs = parlib::tabulate<edge_id>(n, [&](std::size_t v) {
      return part.owner(static_cast<vertex_id>(v)) == s
                 ? static_cast<edge_id>(
                       seed.out_degree(static_cast<vertex_id>(v)))
                 : 0;
    });
    const edge_id total = parlib::scan_inplace(degs);
    std::vector<edge_id> offsets(static_cast<std::size_t>(n) + 1);
    parlib::parallel_for(0, n, [&](std::size_t v) { offsets[v] = degs[v]; });
    offsets[n] = total;
    std::vector<vertex_id> nghs(total);
    std::vector<W> wghs;
    if constexpr (!std::is_same_v<W, empty_weight>) wghs.resize(total);
    parlib::parallel_for(0, n, [&](std::size_t vi) {
      const auto v = static_cast<vertex_id>(vi);
      if (part.owner(v) != s) return;
      const auto row = seed.out_neighbors(v);
      edge_id k = offsets[vi];
      for (std::size_t j = 0; j < row.size(); ++j, ++k) {
        nghs[k] = row[j];
        if constexpr (!std::is_same_v<W, empty_weight>) {
          wghs[k] = seed.out_weight(v, j);
        }
      }
    });
    out.emplace_back(n, total, seed.symmetric(), std::move(offsets),
                     std::move(nghs), std::move(wghs));
  }
  return out;
}

}  // namespace gbbs::dynamic
