// Normalized batches of edge updates — the unit of work of the
// batch-dynamic subsystem (after Simsiri et al., "Work-Efficient Parallel
// and Incremental Graph Connectivity": bulk-parallel batches, not
// single-edge updates).
//
// A raw update stream may contain self-loops, duplicates, and conflicting
// operations on the same edge. make_batch normalizes it fully in parallel
// (a stable sort by (u, v), then flag-and-pack):
//   * self-loops are dropped;
//   * updates are sorted lexicographically by (u, v);
//   * of several updates to the same (u, v), the LAST in stream order wins
//     (stream semantics — an insert followed by an erase of the same edge
//     is an erase; graph_builder's first-weight-wins rule applies to static
//     edge lists, where order carries no meaning).
// Vertex ids beyond the current graph size are legal: batches carry
// max_vertex so dynamic_graph can grow its vertex set (n-growing batches).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "parlib/integer_sort.h"
#include "parlib/monoid.h"
#include "parlib/parallel.h"
#include "parlib/sequence_ops.h"
#include "parlib/sort.h"

namespace gbbs::dynamic {

enum class update_op : std::uint8_t {
  insert,  // add the edge, or overwrite its weight if already present
  erase,   // remove the edge; a no-op if absent
};

template <typename W>
struct update {
  vertex_id u;
  vertex_id v;
  [[no_unique_address]] W w;
  update_op op;
};

// A normalized batch: sorted by (u, v), no self-loops, at most one update
// per directed edge. Produce via make_batch.
template <typename W>
struct update_batch {
  std::vector<update<W>> updates;
  // One past the largest endpoint referenced (0 for an empty batch);
  // dynamic_graph grows its vertex set to cover this.
  vertex_id max_vertex = 0;

  std::size_t size() const { return updates.size(); }
  bool empty() const { return updates.empty(); }

  bool has_erases() const {
    return parlib::count_if(updates, [](const update<W>& e) {
             return e.op == update_op::erase;
           }) > 0;
  }

  // The batch's delta summary: distinct updated source endpoints, in
  // ascending order. For a mirrored (symmetric) batch this is every vertex
  // whose adjacency row the batch changes — the consumers downstream (the
  // overlay index refresh and the result cache's touched-bucket
  // invalidation) all operate per-row. One pass suffices because the batch
  // is (u, v)-sorted.
  std::vector<vertex_id> touched_vertices() const {
    std::vector<vertex_id> out;
    for (const auto& up : updates) {
      if (out.empty() || out.back() != up.u) out.push_back(up.u);
    }
    return out;
  }
};

namespace internal {

// Stable sort by (u, v); within equal (u, v) stream order survives, which
// is what makes "last in the run" mean "last in the stream" for the dedup
// pass. Two implementations, picked by worker count:
//   * workers > 1: parallel merge sort. Each radix pass of the integer
//     sort pays a sequential O(buckets) column-major scan per counting
//     round, which becomes the serial floor of normalization once the
//     apply side goes multi-writer (the sharded ingest path splits
//     *after* normalization, so everything here is ahead of every shard);
//     the comparison sort has no such floor.
//   * workers == 1: two-pass LSD radix sort on (v, then u). Without
//     parallelism the merge sort's O(n log n) comparisons lose to the
//     radix passes' linear scans by ~3x on large batches.
// Both sorts are stable, so dedup semantics are identical either way.
template <typename W>
void sort_updates(std::vector<update<W>>& ups, vertex_id max_vertex) {
  if (parlib::num_workers() > 1) {
    parlib::sort_inplace(ups, [](const update<W>& a, const update<W>& b) {
      return a.u != b.u ? a.u < b.u : a.v < b.v;
    });
    return;
  }
  std::size_t bits = 1;
  while ((static_cast<std::uint64_t>(max_vertex) >> bits) != 0) ++bits;
  parlib::integer_sort_inplace(
      ups, [](const update<W>& e) { return e.v; }, bits);
  parlib::integer_sort_inplace(
      ups, [](const update<W>& e) { return e.u; }, bits);
}

}  // namespace internal

// Normalize a raw update stream into a batch. If `mirror` is set (symmetric
// graphs), every update is first doubled into both directions, so the batch
// stays closed under reversal the same way build_symmetric_graph's edge
// list is.
template <typename W>
update_batch<W> make_batch(std::vector<update<W>> raw, bool mirror = false) {
  if (mirror) {
    const std::size_t k = raw.size();
    raw.resize(2 * k);
    parlib::parallel_for(0, k, [&](std::size_t i) {
      raw[k + i] = {raw[i].v, raw[i].u, raw[i].w, raw[i].op};
    });
    // Interleave so that for each raw index both directions are adjacent in
    // stream order: mirrored copies must not override later originals.
    auto interleaved = parlib::tabulate<update<W>>(2 * k, [&](std::size_t i) {
      return (i % 2 == 0) ? raw[i / 2] : raw[k + i / 2];
    });
    raw.swap(interleaved);
  }
  update_batch<W> batch;
  if (raw.empty()) return batch;
  auto maxima = parlib::map(raw, [](const update<W>& e) {
    return std::max(e.u, e.v);
  });
  batch.max_vertex =
      parlib::reduce(maxima, parlib::max_monoid<vertex_id>()) + 1;
  internal::sort_updates(raw, batch.max_vertex);
  auto keep = parlib::tabulate<std::uint8_t>(raw.size(), [&](std::size_t i) {
    const auto& e = raw[i];
    if (e.u == e.v) return std::uint8_t{0};  // self-loop
    // Keep only the last update per (u, v): stream order is preserved by
    // the stable sort, so "last in the run" is "last in the stream".
    if (i + 1 < raw.size() && raw[i + 1].u == e.u && raw[i + 1].v == e.v)
      return std::uint8_t{0};
    return std::uint8_t{1};
  });
  batch.updates = parlib::pack(raw, keep);
  return batch;
}

// Convenience: an all-inserts batch from a static edge list.
template <typename W>
update_batch<W> insert_batch(const std::vector<edge<W>>& edges,
                             bool mirror = false) {
  auto raw = parlib::tabulate<update<W>>(edges.size(), [&](std::size_t i) {
    return update<W>{edges[i].u, edges[i].v, edges[i].w, update_op::insert};
  });
  return make_batch(std::move(raw), mirror);
}

// Convenience: an all-erases batch from a static edge list.
template <typename W>
update_batch<W> erase_batch(const std::vector<edge<W>>& edges,
                            bool mirror = false) {
  auto raw = parlib::tabulate<update<W>>(edges.size(), [&](std::size_t i) {
    return update<W>{edges[i].u, edges[i].v, edges[i].w, update_op::erase};
  });
  return make_batch(std::move(raw), mirror);
}

}  // namespace gbbs::dynamic
