// Work-efficient incremental connectivity over batch updates (after
// Simsiri et al., "Work-Efficient Parallel and Incremental Graph
// Connectivity"): a concurrent union-find maintained across insertion
// batches, so an all-inserts batch of size b costs O(b · α(n)) expected
// work — independent of the graph size — with the unites of one batch
// running fully in parallel.
//
// Edge erases can split components, which union-find cannot express; a
// batch containing erases therefore falls back to a full rebuild from the
// dynamic graph's live edges (O(n + m)). High-velocity streams are
// insert-dominated, so the amortized cost stays near the incremental
// bound; callers that never erase never pay for a rebuild.
//
// Tests cross-check the maintained partition against the static
// connectivity() (Algorithm 6) on a snapshot after every batch.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "dynamic/dynamic_graph.h"
#include "dynamic/update_batch.h"
#include "parlib/monoid.h"
#include "parlib/parallel.h"
#include "parlib/sequence_ops.h"
#include "parlib/union_find.h"

namespace gbbs::dynamic {

class incremental_connectivity {
 public:
  explicit incremental_connectivity(std::size_t n = 0)
      : uf_(n), num_components_(n) {}

  std::size_t num_vertices() const { return uf_.size(); }
  std::size_t num_components() const { return num_components_; }

  // Add isolated vertices until there are n (no-op if already that big).
  void grow(std::size_t n) {
    if (n <= uf_.size()) return;
    num_components_ += n - uf_.size();
    uf_.resize(n);
  }

  // Ids beyond the grown size are legal queries (streams may reference
  // vertices the tracker has not seen yet): they are their own singleton
  // component.
  vertex_id find(vertex_id v) {
    if (v >= uf_.size()) return v;
    return uf_.find(v);
  }
  bool connected(vertex_id a, vertex_id b) {
    if (a >= uf_.size() || b >= uf_.size()) return a == b;
    return uf_.same_set(a, b);
  }

  // Component labels (label = union-find root), comparable to static
  // connectivity() labels up to partition equality.
  std::vector<vertex_id> labels() { return uf_.labels(); }

  // Incremental path: parallel unite over the batch's insert edges.
  // Erase updates in the batch are ignored here — use apply() to get the
  // rebuild fallback.
  template <typename W>
  void insert_edges(const update_batch<W>& batch) {
    grow(batch.max_vertex);
    const auto& ups = batch.updates;
    // Each successful unite merges exactly two components, and each merge
    // succeeds for exactly one contender, so the sum is exact even under
    // concurrency.
    auto joined = parlib::tabulate<std::size_t>(
        ups.size(), [&](std::size_t i) -> std::size_t {
          const auto& e = ups[i];
          if (e.op != update_op::insert) return 0;
          return uf_.unite(e.u, e.v) ? 1 : 0;
        });
    num_components_ -= parlib::reduce_add(joined);
  }

  // Maintain connectivity across a batch that has already been applied to
  // g: incremental unites if the batch is insert-only, full rebuild from
  // g's live edges otherwise.
  template <typename W>
  void apply(const update_batch<W>& batch, const dynamic_graph<W>& g) {
    if (batch.has_erases()) {
      rebuild(g);
    } else {
      insert_edges(batch);
      grow(g.num_vertices());
    }
  }

  // Merge explicit endpoint pairs — the sharded ingest path's barrier
  // step: per-shard apply collects the insert links it saw, and the
  // composite publish unites the union of all shards' pairs here.
  // O(pairs · α(n)) work, unites fully parallel.
  void unite_pairs(const std::vector<std::pair<vertex_id, vertex_id>>& links) {
    if (links.empty()) return;
    auto maxima = parlib::map(links, [](const auto& e) {
      return std::max(e.first, e.second);
    });
    grow(static_cast<std::size_t>(
             parlib::reduce(maxima, parlib::max_monoid<vertex_id>())) +
         1);
    auto joined = parlib::tabulate<std::size_t>(
        links.size(), [&](std::size_t i) -> std::size_t {
          return uf_.unite(links[i].first, links[i].second) ? 1 : 0;
        });
    num_components_ -= parlib::reduce_add(joined);
  }

  // Recompute from scratch over the live edges of any graph_view-shaped
  // model — the dynamic graph itself, or the serving layer's stitched
  // composite view (weak connectivity for asymmetric graphs).
  // O(n + m · α(n)) work.
  template <typename G>
  void rebuild(const G& g) {
    const std::size_t n = g.num_vertices();
    uf_ = parlib::union_find(n);
    parlib::parallel_for(0, n, [&](std::size_t u) {
      g.map_out_neighbors(
          static_cast<vertex_id>(u),
          [&](vertex_id a, vertex_id b, auto) { uf_.unite(a, b); });
    });
    auto is_root = parlib::tabulate<std::size_t>(n, [&](std::size_t v) {
      return uf_.find(static_cast<vertex_id>(v)) == v ? 1 : 0;
    });
    num_components_ = parlib::reduce_add(is_root);
  }

 private:
  parlib::union_find uf_;
  std::size_t num_components_ = 0;
};

}  // namespace gbbs::dynamic
