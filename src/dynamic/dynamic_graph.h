// Batch-dynamic graph: a static CSR snapshot (gbbs::graph) plus a
// per-vertex *delta overlay* absorbing edge updates between snapshots —
// the ingest-then-query architecture of streaming graph systems (katana /
// Simsiri et al.), layered over the repo's existing static stack.
//
// Representation. base_ is an immutable CSR; delta_[u] is an immutable
// refcounted row, sorted by neighbor id, of overrides relative to base_:
//   {v, w, present=true}   edge (u,v) exists with weight w (insert or
//                          weight overwrite of a base edge);
//   {v, -, present=false}  edge (u,v) is erased (tombstone for a base
//                          edge).
// Entries that would restate the base verbatim are pruned during batch
// application, so |delta_[u]| is bounded by the number of *effective*
// updates since the last compact(), not by the raw stream length. Rows are
// replaced wholesale by each batch (never mutated in place) and handed out
// by shared_ptr, which is what lets the serving layer's persistent overlay
// index share untouched rows across ingests instead of copying the whole
// overlay (see serve/overlay_view.h).
//
// Asymmetric graphs additionally maintain an *in-edge* overlay delta_in_
// (the transposed deltas, merged against base_'s in-CSR) so the live graph
// exposes the full graph_view concept — in particular the in-neighbor
// early-exit decode that edgeMap's direction-optimized dense mode scans.
// Symmetric graphs alias the two sides, exactly like gbbs::graph.
//
// The live neighborhood of u is the ordered two-pointer merge of
// base_.out_neighbors(u) with delta_[u]; the map_*_neighbors* primitives
// expose exactly the neighborhood-iteration concept the static graph has
// (dynamic_graph models gbbs::graph_view), so edge_map and the whole
// static algorithm suite run *directly on the live graph* — no snapshot,
// no merged-CSR build. snapshot()/compact() remain available for
// explicitly-stale consumers.
//
// Batches are applied with one parallel task per *distinct updated
// vertex* (runs of the (u,v)-sorted batch), each doing an O(delta + run)
// sorted merge plus an O(run · log deg_base) membership probe — i.e. work
// proportional to the batch, never to the whole graph. Asymmetric graphs
// pay the same again for the transposed in-side runs.
//
// Vertex ids beyond the current vertex count grow the graph (n-growing
// batches); erases of absent edges and empty batches are no-ops.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "dynamic/update_batch.h"
#include "graph/graph.h"
#include "graph/graph_builder.h"
#include "graph/graph_view.h"
#include "obs/trace.h"
#include "parlib/parallel.h"
#include "parlib/sequence_ops.h"

namespace gbbs::dynamic {

template <typename W>
struct delta_entry {
  vertex_id v;
  [[no_unique_address]] W w;
  bool present;  // true: live with weight w; false: tombstone
};

template <typename W>
using delta_row = std::vector<delta_entry<W>>;

// Immutable shared row handle; null means "no overrides for this vertex".
template <typename W>
using delta_row_ptr = std::shared_ptr<const delta_row<W>>;

// ---- merged-row primitives -------------------------------------------------
//
// The base-vs-delta two-pointer merges every delta-overlaid view is built
// from, shared between dynamic_graph and serve::dynamic_view. base_weight(j)
// supplies the weight of bn[j].

// f(ngh, w) over the live row, ascending; f returns false to stop.
template <typename W, typename BaseWeight, typename F>
void merged_row_early_exit(std::span<const vertex_id> bn,
                           const BaseWeight& base_weight,
                           const delta_entry<W>* d, std::size_t dn,
                           const F& f) {
  std::size_t i = 0, j = 0;
  while (i < dn || j < bn.size()) {
    if (j == bn.size() || (i < dn && d[i].v < bn[j])) {
      if (d[i].present && !f(d[i].v, d[i].w)) return;
      ++i;
    } else if (i == dn || bn[j] < d[i].v) {
      if (!f(bn[j], base_weight(j))) return;
      ++j;
    } else {  // same neighbor: delta overrides base
      if (d[i].present && !f(d[i].v, d[i].w)) return;
      ++i;
      ++j;
    }
  }
}

// f(ngh, w) over live-row positions [j_lo, j_hi) — the random access the
// blocked edgeMap's prefix-summed-degree splitting needs. Skips to j_lo in
// O(|delta| · log |base|) by bulk-jumping the base runs between delta
// entries, then emits j_hi - j_lo items; never O(position) like a naive
// counted decode would be.
template <typename W, typename BaseWeight, typename F>
void merged_row_range(std::span<const vertex_id> bn,
                      const BaseWeight& base_weight, const delta_entry<W>* d,
                      std::size_t dn, std::size_t j_lo, std::size_t j_hi,
                      const F& f) {
  if (j_hi <= j_lo) return;
  std::size_t i = 0, j = 0, idx = 0;
  // Phase 1: advance (i, j) to merged position j_lo without emitting.
  while (idx < j_lo) {
    if (i == dn) {  // only base left: jump straight to position j_lo
      j += j_lo - idx;
      idx = j_lo;
      break;
    }
    const vertex_id dv = d[i].v;
    const auto jr = static_cast<std::size_t>(
        std::lower_bound(bn.begin() + j, bn.end(), dv) - bn.begin());
    if (idx + (jr - j) >= j_lo) {  // j_lo lands inside this base run
      j += j_lo - idx;
      idx = j_lo;
      break;
    }
    idx += jr - j;
    j = jr;
    const bool in_base = j < bn.size() && bn[j] == dv;
    if (d[i].present) ++idx;  // a live delta entry fills one merged slot
    ++i;
    if (in_base) ++j;  // override/tombstone consumes the base entry too
  }
  // Phase 2: standard merge emit until j_hi.
  while ((i < dn || j < bn.size()) && idx < j_hi) {
    if (j == bn.size() || (i < dn && d[i].v < bn[j])) {
      if (d[i].present) {
        f(d[i].v, d[i].w);
        ++idx;
      }
      ++i;
    } else if (i == dn || bn[j] < d[i].v) {
      f(bn[j], base_weight(j));
      ++j;
      ++idx;
    } else {
      if (d[i].present) {
        f(d[i].v, d[i].w);
        ++idx;
      }
      ++i;
      ++j;
    }
  }
}

template <typename W>
class dynamic_graph {
 public:
  using weight_type = W;

  // Empty graph with n vertices.
  explicit dynamic_graph(vertex_id n = 0, bool symmetric = true)
      : symmetric_(symmetric), n_(n), delta_(n), deg_(n, 0) {
    if (!symmetric_) {
      delta_in_.resize(n);
      in_deg_.assign(n, 0);
    }
  }

  // Seed from an existing static snapshot.
  explicit dynamic_graph(graph<W> base)
      : symmetric_(base.symmetric()),
        n_(base.num_vertices()),
        m_(base.num_edges()),
        delta_(n_) {
    deg_ = parlib::tabulate<vertex_id>(n_, [&](std::size_t v) {
      return base.out_degree(static_cast<vertex_id>(v));
    });
    if (!symmetric_) {
      delta_in_.resize(n_);
      in_deg_ = parlib::tabulate<vertex_id>(n_, [&](std::size_t v) {
        return base.in_degree(static_cast<vertex_id>(v));
      });
    }
    base_ = std::move(base);
  }

  vertex_id num_vertices() const { return n_; }
  edge_id num_edges() const { return m_; }
  bool symmetric() const { return symmetric_; }
  vertex_id out_degree(vertex_id v) const { return deg_[v]; }
  vertex_id in_degree(vertex_id v) const {
    return symmetric_ ? deg_[v] : in_deg_[v];
  }

  // Out-side overlay entries alive since the last compact() (across all
  // vertices); maintained incrementally, O(1). The in-side overlay of an
  // asymmetric graph mirrors these and is not counted separately.
  std::size_t delta_size() const { return overlay_entries_; }

  // Vertices with a non-empty delta, ascending — the work-list that lets
  // the serve layer distill the overlay in O(overlay) instead of O(n).
  // Maintained incrementally by apply_batch; cleared by compact/adopt_base.
  const std::vector<vertex_id>& overlay_vertices() const {
    return overlay_verts_;
  }

  // u's delta log (sorted by neighbor id; empty for untouched vertices).
  const delta_row<W>& delta_of(vertex_id u) const {
    return delta_[u] ? *delta_[u] : empty_row();
  }

  // u's delta log as a shared immutable row (null when empty). Rows are
  // replaced wholesale per batch, so a holder of this handle sees a frozen
  // row regardless of later ingests — the sharing contract the serving
  // layer's persistent overlay index is built on.
  delta_row_ptr<W> delta_row_of(vertex_id u) const { return delta_[u]; }

  // In-side delta log of an asymmetric graph (empty for symmetric graphs,
  // whose in-side aliases the out-side).
  const delta_row<W>& delta_in_of(vertex_id u) const {
    return !symmetric_ && delta_in_[u] ? *delta_in_[u] : empty_row();
  }

  // ---- compaction policy --------------------------------------------------

  // Auto-compact when the overlay exceeds `frac` of the base edge count
  // (checked after every batch; 0 disables, the default). The floor of 1024
  // base edges keeps a tiny/empty base from forcing a compact per batch.
  void set_compact_threshold(double frac) { compact_threshold_ = frac; }
  double compact_threshold() const { return compact_threshold_; }

  // compact() / adopt_base() calls so far (manual, automatic, or hand-off).
  std::size_t num_compactions() const { return compactions_; }

  // ---- ingest ------------------------------------------------------------

  // Normalize a raw update stream (mirroring it for symmetric graphs) and
  // apply it. Returns the normalized batch so callers (e.g. the
  // connectivity tracker) can reuse it without re-normalizing.
  update_batch<W> apply(std::vector<update<W>> raw) {
    // The two ingest-pipeline stages owned by this layer (span taxonomy
    // in obs/trace.h): raw -> normalized batch, then the overlay merge.
    static const obs::stage_ref s_normalize =
        obs::stage_named("ingest.normalize");
    static const obs::stage_ref s_apply = obs::stage_named("ingest.apply");
    update_batch<W> batch = [&] {
      obs::trace_span span(s_normalize);
      return make_batch(std::move(raw), symmetric_);
    }();
    {
      obs::trace_span span(s_apply);
      apply_batch(batch);
    }
    return batch;
  }

  // Apply an already-normalized batch (for symmetric graphs it must have
  // been built with mirror=true). O(batch + touched deltas) work.
  void apply_batch(const update_batch<W>& batch) {
    // Grow even when every update was normalized away (e.g. a batch of
    // self-loops on fresh ids): max_vertex covers the raw endpoints, and
    // consumers (incremental_connectivity) grow by the same rule.
    grow(batch.max_vertex);
    if (batch.empty()) return;
    const auto& ups = batch.updates;
    // One merge task per distinct updated vertex (run of the sorted batch).
    auto is_start = parlib::tabulate<std::uint8_t>(
        ups.size(), [&](std::size_t i) {
          return static_cast<std::uint8_t>(i == 0 ||
                                           ups[i - 1].u != ups[i].u);
        });
    auto starts = parlib::pack_index<std::size_t>(is_start);
    std::vector<long long> dm(starts.size());
    std::vector<long long> ds(starts.size());
    parlib::parallel_for(0, starts.size(), [&](std::size_t r) {
      const std::size_t lo = starts[r];
      const std::size_t hi =
          r + 1 < starts.size() ? starts[r + 1] : ups.size();
      const vertex_id u = ups[lo].u;
      const auto [ddeg, dsize] = merge_run(
          delta_[u], &ups[lo], hi - lo,
          [&](vertex_id v) { return base_lookup(u, v); });
      dm[r] = ddeg;
      ds[r] = dsize;
      deg_[u] = static_cast<vertex_id>(
          static_cast<long long>(deg_[u]) + ddeg);
    });
    m_ = static_cast<edge_id>(static_cast<long long>(m_) +
                              parlib::reduce_add(dm));
    overlay_entries_ = static_cast<std::size_t>(
        static_cast<long long>(overlay_entries_) + parlib::reduce_add(ds));
    if (!symmetric_) apply_in_side(batch);
    // Fold the batch's distinct vertices into the sorted overlay work-list,
    // keeping exactly those with a non-empty delta (a batch can empty a
    // vertex's delta by undoing it). O(overlay + batch).
    {
      std::vector<vertex_id> merged;
      merged.reserve(overlay_verts_.size() + starts.size());
      std::size_t a = 0, b = 0;
      auto keep = [&](vertex_id u) {
        if (!delta_of(u).empty()) merged.push_back(u);
      };
      while (a < overlay_verts_.size() || b < starts.size()) {
        const vertex_id bu =
            b < starts.size() ? ups[starts[b]].u : kNoVertex;
        if (b == starts.size() ||
            (a < overlay_verts_.size() && overlay_verts_[a] < bu)) {
          merged.push_back(overlay_verts_[a]);  // untouched: still non-empty
          ++a;
        } else if (a == overlay_verts_.size() || bu < overlay_verts_[a]) {
          keep(bu);
          ++b;
        } else {
          keep(bu);
          ++a;
          ++b;
        }
      }
      overlay_verts_ = std::move(merged);
    }
    if (compact_threshold_ > 0 &&
        static_cast<double>(overlay_entries_) >
            compact_threshold_ *
                static_cast<double>(
                    std::max<edge_id>(base_.num_edges(), 1024))) {
      compact();
    }
  }

  // Extend the vertex set to cover ids < n (new vertices are isolated).
  void grow(vertex_id n) {
    if (n <= n_) return;
    delta_.resize(n);
    deg_.resize(n, 0);
    if (!symmetric_) {
      delta_in_.resize(n);
      in_deg_.resize(n, 0);
    }
    n_ = n;
  }

  // ---- queries (live view) ----------------------------------------------

  bool contains_edge(vertex_id u, vertex_id v) const {
    if (u >= n_) return false;
    const auto& d = delta_of(u);
    auto it = std::lower_bound(
        d.begin(), d.end(), v,
        [](const delta_entry<W>& e, vertex_id x) { return e.v < x; });
    if (it != d.end() && it->v == v) return it->present;
    return base_lookup(u, v).first;
  }

  std::optional<W> edge_weight(vertex_id u, vertex_id v) const {
    if (u >= n_) return std::nullopt;
    const auto& d = delta_of(u);
    auto it = std::lower_bound(
        d.begin(), d.end(), v,
        [](const delta_entry<W>& e, vertex_id x) { return e.v < x; });
    if (it != d.end() && it->v == v) {
      if (it->present) return it->w;
      return std::nullopt;
    }
    auto [has, w] = base_lookup(u, v);
    if (has) return w;
    return std::nullopt;
  }

  // f(u, ngh, w) over the live out-neighborhood of u, in ascending neighbor
  // order (the ordered merge of base and delta).
  template <typename F>
  void map_out_neighbors(vertex_id u, const F& f) const {
    map_out_neighbors_early_exit(u, [&](vertex_id a, vertex_id b, W w) {
      f(a, b, w);
      return true;
    });
  }

  template <typename F>
  void map_in_neighbors(vertex_id u, const F& f) const {
    map_in_neighbors_early_exit(u, [&](vertex_id a, vertex_id b, W w) {
      f(a, b, w);
      return true;
    });
  }

  // Early-exit decode, mirroring graph::map_out_neighbors_early_exit.
  template <typename F>
  void map_out_neighbors_early_exit(vertex_id u, const F& f) const {
    const auto& d = delta_of(u);
    merged_row_early_exit(
        base_neighbors(u),
        [&](std::size_t j) { return base_.out_weight(u, j); }, d.data(),
        d.size(), [&](vertex_id ngh, W w) { return f(u, ngh, w); });
  }

  // In-side early-exit decode — what edgeMap's dense mode scans when it
  // runs directly on the live graph. Symmetric graphs alias the out-side;
  // asymmetric graphs merge the base in-CSR with the in-edge overlay.
  template <typename F>
  void map_in_neighbors_early_exit(vertex_id u, const F& f) const {
    if (symmetric_) {
      map_out_neighbors_early_exit(u, f);
      return;
    }
    const auto& d = delta_in_of(u);
    merged_row_early_exit(
        base_in_neighbors(u),
        [&](std::size_t j) { return base_.in_weight(u, j); }, d.data(),
        d.size(), [&](vertex_id ngh, W w) { return f(u, ngh, w); });
  }

  // f over live out-neighbor positions [j_lo, j_hi) — the random access
  // the blocked edgeMap needs (Algorithm 15).
  template <typename F>
  void map_out_neighbors_range(vertex_id u, std::size_t j_lo,
                               std::size_t j_hi, const F& f) const {
    const auto& d = delta_of(u);
    merged_row_range(
        base_neighbors(u),
        [&](std::size_t j) { return base_.out_weight(u, j); }, d.data(),
        d.size(), j_lo, j_hi, [&](vertex_id ngh, W w) { f(u, ngh, w); });
  }

  // Live out-neighbors satisfying pred (used by contraction/filter_graph
  // when they run directly on the live graph).
  template <typename F>
  std::size_t count_out(vertex_id u, const F& pred) const {
    std::size_t c = 0;
    map_out_neighbors(u, [&](vertex_id a, vertex_id b, W w) {
      c += pred(a, b, w) ? 1 : 0;
    });
    return c;
  }

  // ---- snapshots ---------------------------------------------------------

  // Fresh static CSR of the live graph; O(n + m) work. The dynamic graph
  // is left untouched — use for running static algorithms mid-stream.
  graph<W> snapshot() const {
    std::vector<edge_id> offsets;
    std::vector<vertex_id> nghs;
    std::vector<W> wghs;
    const edge_id total = merged_csr(offsets, nghs, wghs);
    if (symmetric_) {
      return graph<W>(n_, total, /*symmetric=*/true, std::move(offsets),
                      std::move(nghs), std::move(wghs));
    }
    // Asymmetric: transpose the merged out-CSR for the in-CSR.
    std::vector<edge<W>> rev(total);
    parlib::parallel_for(0, n_, [&](std::size_t v) {
      for (edge_id e = offsets[v]; e < offsets[v + 1]; ++e) {
        W w{};
        if constexpr (!std::is_same_v<W, empty_weight>) w = wghs[e];
        rev[e] = {nghs[e], static_cast<vertex_id>(v), w};
      }
    });
    std::vector<edge_id> in_off;
    std::vector<vertex_id> in_ngh;
    std::vector<W> in_w;
    gbbs::internal::csr_from_unsorted(std::move(rev), n_, in_off, in_ngh,
                                      in_w);
    return graph<W>(n_, total, /*symmetric=*/false, std::move(offsets),
                    std::move(nghs), std::move(wghs), std::move(in_off),
                    std::move(in_ngh), std::move(in_w));
  }

  // Fold the delta overlay into a fresh base CSR and clear it. Queries and
  // snapshots after compact() are pure CSR reads.
  void compact() {
    base_ = snapshot();
    clear_overlay();
    ++compactions_;
  }

  // Version hand-off for the serve layer: install an externally built CSR
  // of the *current live view* (e.g. the snapshot just published) as the
  // new base and clear the overlay. Since graph<W> copies share one
  // refcounted CSR block, passing the just-published snapshot here makes
  // the published version and the compacted base the *same* arrays — one
  // merged-CSR build, zero post-merge copies.
  void adopt_base(graph<W> g) {
    assert(g.num_vertices() == n_ && g.num_edges() == m_);
    base_ = std::move(g);
    clear_overlay();
    ++compactions_;
  }

  const graph<W>& base() const { return base_; }

 private:
  static const delta_row<W>& empty_row() {
    static const delta_row<W> kEmpty;
    return kEmpty;
  }

  void clear_overlay() {
    delta_.assign(n_, nullptr);
    if (!symmetric_) delta_in_.assign(n_, nullptr);
    overlay_verts_.clear();
    overlay_entries_ = 0;
  }

  std::span<const vertex_id> base_neighbors(vertex_id u) const {
    if (u >= base_.num_vertices()) return {};
    return base_.out_neighbors(u);
  }

  std::span<const vertex_id> base_in_neighbors(vertex_id u) const {
    if (u >= base_.num_vertices()) return {};
    return base_.in_neighbors(u);
  }

  std::pair<bool, W> base_lookup(vertex_id u, vertex_id v) const {
    const auto nghs = base_neighbors(u);
    auto it = std::lower_bound(nghs.begin(), nghs.end(), v);
    if (it != nghs.end() && *it == v) {
      return {true, base_.out_weight(u, static_cast<std::size_t>(
                                            it - nghs.begin()))};
    }
    return {false, W{}};
  }

  std::pair<bool, W> base_in_lookup(vertex_id u, vertex_id v) const {
    const auto nghs = base_in_neighbors(u);
    auto it = std::lower_bound(nghs.begin(), nghs.end(), v);
    if (it != nghs.end() && *it == v) {
      return {true, base_.in_weight(u, static_cast<std::size_t>(
                                           it - nghs.begin()))};
    }
    return {false, W{}};
  }

  // Merge a (v-sorted) run of updates for one vertex into its delta row.
  // The row is replaced wholesale (immutable shared rows — holders of the
  // old handle are unaffected). Returns {change in the vertex's live
  // degree, change in its overlay size}.
  template <typename BaseLookup>
  std::pair<long long, long long> merge_run(delta_row_ptr<W>& slot,
                                            const update<W>* run,
                                            std::size_t len,
                                            const BaseLookup& lookup) {
    const delta_row<W>& old = slot ? *slot : empty_row();
    delta_row<W> merged;
    merged.reserve(old.size() + len);
    long long dm = 0;
    std::size_t i = 0, j = 0;
    auto absorb = [&](const update<W>& up, bool cur_present, bool in_base,
                      W base_w) {
      const bool new_present = up.op == update_op::insert;
      dm += static_cast<long long>(new_present) -
            static_cast<long long>(cur_present);
      if (new_present) {
        // Prune entries that restate the base edge verbatim.
        if (!(in_base && base_w == up.w)) {
          merged.push_back({up.v, up.w, true});
        }
      } else if (in_base) {
        merged.push_back({up.v, W{}, false});  // tombstone a base edge
      }
      // erase of a non-base edge: drop entirely (no-op or undoes a delta
      // insert).
    };
    while (i < old.size() || j < len) {
      if (j == len || (i < old.size() && old[i].v < run[j].v)) {
        merged.push_back(old[i]);
        ++i;
      } else if (i == old.size() || run[j].v < old[i].v) {
        const auto [in_base, base_w] = lookup(run[j].v);
        absorb(run[j], /*cur_present=*/in_base, in_base, base_w);
        ++j;
      } else {  // same neighbor: the batch overrides the old delta entry
        const auto [in_base, base_w] = lookup(run[j].v);
        absorb(run[j], old[i].present, in_base, base_w);
        ++i;
        ++j;
      }
    }
    const long long dsize = static_cast<long long>(merged.size()) -
                            static_cast<long long>(old.size());
    slot = merged.empty()
               ? nullptr
               : std::make_shared<const delta_row<W>>(std::move(merged));
    return {dm, dsize};
  }

  // Transpose the batch and merge the runs into the in-edge overlay
  // (asymmetric graphs only). Same run decomposition as the out side; the
  // in-degree deltas mirror the out-degree math, so m_ is not re-counted.
  void apply_in_side(const update_batch<W>& batch) {
    auto rev = parlib::tabulate<update<W>>(
        batch.updates.size(), [&](std::size_t i) {
          const auto& e = batch.updates[i];
          return update<W>{e.v, e.u, e.w, e.op};
        });
    internal::sort_updates(rev, batch.max_vertex);
    auto is_start = parlib::tabulate<std::uint8_t>(
        rev.size(), [&](std::size_t i) {
          return static_cast<std::uint8_t>(i == 0 ||
                                           rev[i - 1].u != rev[i].u);
        });
    auto starts = parlib::pack_index<std::size_t>(is_start);
    parlib::parallel_for(0, starts.size(), [&](std::size_t r) {
      const std::size_t lo = starts[r];
      const std::size_t hi =
          r + 1 < starts.size() ? starts[r + 1] : rev.size();
      const vertex_id u = rev[lo].u;
      const auto [ddeg, dsize] = merge_run(
          delta_in_[u], &rev[lo], hi - lo,
          [&](vertex_id v) { return base_in_lookup(u, v); });
      (void)dsize;
      in_deg_[u] = static_cast<vertex_id>(
          static_cast<long long>(in_deg_[u]) + ddeg);
    });
  }

  // Build the merged out-CSR (offsets/nghs/wghs) of the live graph.
  edge_id merged_csr(std::vector<edge_id>& offsets,
                     std::vector<vertex_id>& nghs,
                     std::vector<W>& wghs) const {
    auto degs = parlib::tabulate<edge_id>(
        n_, [&](std::size_t v) { return deg_[v]; });
    const edge_id total = parlib::scan_inplace(degs);
    assert(total == m_);
    offsets.assign(static_cast<std::size_t>(n_) + 1, 0);
    parlib::parallel_for(0, n_, [&](std::size_t v) { offsets[v] = degs[v]; });
    offsets[n_] = total;
    nghs.resize(total);
    if constexpr (!std::is_same_v<W, empty_weight>) wghs.resize(total);
    parlib::parallel_for(0, n_, [&](std::size_t v) {
      edge_id k = offsets[v];
      map_out_neighbors_early_exit(static_cast<vertex_id>(v),
                                   [&](vertex_id, vertex_id ngh, W w) {
                                     nghs[k] = ngh;
                                     if constexpr (!std::is_same_v<
                                                       W, empty_weight>) {
                                       wghs[k] = w;
                                     }
                                     ++k;
                                     return true;
                                   });
      assert(k == offsets[v + 1]);
    });
    return total;
  }

  bool symmetric_ = true;
  vertex_id n_ = 0;
  edge_id m_ = 0;
  graph<W> base_;
  std::vector<delta_row_ptr<W>> delta_;     // out-side rows, neighbor-sorted
  std::vector<delta_row_ptr<W>> delta_in_;  // in-side rows (asymmetric only)
  std::vector<vertex_id> overlay_verts_;  // sorted u with |delta_[u]| > 0
  std::vector<vertex_id> deg_;            // live out-degrees
  std::vector<vertex_id> in_deg_;         // live in-degrees (asym only)
  std::size_t overlay_entries_ = 0;  // sum of |delta_[v]| (O(1) delta_size)
  std::size_t compactions_ = 0;
  double compact_threshold_ = 0;  // 0 = never auto-compact
};

using dynamic_unweighted_graph = dynamic_graph<empty_weight>;
using dynamic_weighted_graph = dynamic_graph<std::uint32_t>;

}  // namespace gbbs::dynamic

namespace gbbs {
// The live batch-dynamic graph is a first-class traversal target: edge_map
// and the static algorithm suite run on it directly, uncompacted.
static_assert(graph_view<dynamic::dynamic_graph<empty_weight>>);
static_assert(graph_view<dynamic::dynamic_graph<std::uint32_t>>);
}  // namespace gbbs
