// Batch-dynamic graph: a static CSR snapshot (gbbs::graph) plus a
// per-vertex *delta overlay* absorbing edge updates between snapshots —
// the ingest-then-query architecture of streaming graph systems (katana /
// Simsiri et al.), layered over the repo's existing static stack.
//
// Representation. base_ is an immutable CSR; delta_[u] is a short vector,
// sorted by neighbor id, of overrides relative to base_:
//   {v, w, present=true}   edge (u,v) exists with weight w (insert or
//                          weight overwrite of a base edge);
//   {v, -, present=false}  edge (u,v) is erased (tombstone for a base
//                          edge).
// Entries that would restate the base verbatim are pruned during batch
// application, so |delta_[u]| is bounded by the number of *effective*
// updates since the last compact(), not by the raw stream length.
//
// The live neighborhood of u is the ordered two-pointer merge of
// base_.out_neighbors(u) with delta_[u]; map_out / decode_out_break /
// out_degree expose exactly the neighborhood-iteration concept the static
// graph has, and materialize()/compact() produce a fresh CSR snapshot in
// O(n + m) work so every static algorithm (edge_map included) keeps
// running on snapshots.
//
// Batches are applied with one parallel task per *distinct updated
// vertex* (runs of the (u,v)-sorted batch), each doing an O(delta + run)
// sorted merge plus an O(run · log deg_base) membership probe — i.e. work
// proportional to the batch, never to the whole graph.
//
// Vertex ids beyond the current vertex count grow the graph (n-growing
// batches); erases of absent edges and empty batches are no-ops.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "dynamic/update_batch.h"
#include "graph/graph.h"
#include "graph/graph_builder.h"
#include "parlib/parallel.h"
#include "parlib/sequence_ops.h"

namespace gbbs::dynamic {

template <typename W>
struct delta_entry {
  vertex_id v;
  [[no_unique_address]] W w;
  bool present;  // true: live with weight w; false: tombstone
};

template <typename W>
class dynamic_graph {
 public:
  using weight_type = W;

  // Empty graph with n vertices.
  explicit dynamic_graph(vertex_id n = 0, bool symmetric = true)
      : symmetric_(symmetric), n_(n), delta_(n), deg_(n, 0) {}

  // Seed from an existing static snapshot.
  explicit dynamic_graph(graph<W> base)
      : symmetric_(base.symmetric()),
        n_(base.num_vertices()),
        m_(base.num_edges()),
        delta_(n_) {
    deg_ = parlib::tabulate<vertex_id>(n_, [&](std::size_t v) {
      return base.out_degree(static_cast<vertex_id>(v));
    });
    base_ = std::move(base);
  }

  vertex_id num_vertices() const { return n_; }
  edge_id num_edges() const { return m_; }
  bool symmetric() const { return symmetric_; }
  vertex_id out_degree(vertex_id v) const { return deg_[v]; }

  // Overlay entries alive since the last compact() (across all vertices);
  // maintained incrementally, O(1).
  std::size_t delta_size() const { return overlay_entries_; }

  // Vertices with a non-empty delta, ascending — the work-list that lets
  // the serve layer distill the overlay in O(overlay) instead of O(n).
  // Maintained incrementally by apply_batch; cleared by compact/adopt_base.
  const std::vector<vertex_id>& overlay_vertices() const {
    return overlay_verts_;
  }

  // u's delta log (sorted by neighbor id; empty for untouched vertices).
  const std::vector<delta_entry<W>>& delta_of(vertex_id u) const {
    return delta_[u];
  }

  // ---- compaction policy --------------------------------------------------

  // Auto-compact when the overlay exceeds `frac` of the base edge count
  // (checked after every batch; 0 disables, the default). The floor of 1024
  // base edges keeps a tiny/empty base from forcing a compact per batch.
  void set_compact_threshold(double frac) { compact_threshold_ = frac; }
  double compact_threshold() const { return compact_threshold_; }

  // compact() / adopt_base() calls so far (manual, automatic, or hand-off).
  std::size_t num_compactions() const { return compactions_; }

  // ---- ingest ------------------------------------------------------------

  // Normalize a raw update stream (mirroring it for symmetric graphs) and
  // apply it. Returns the normalized batch so callers (e.g. the
  // connectivity tracker) can reuse it without re-normalizing.
  update_batch<W> apply(std::vector<update<W>> raw) {
    auto batch = make_batch(std::move(raw), symmetric_);
    apply_batch(batch);
    return batch;
  }

  // Apply an already-normalized batch (for symmetric graphs it must have
  // been built with mirror=true). O(batch + touched deltas) work.
  void apply_batch(const update_batch<W>& batch) {
    // Grow even when every update was normalized away (e.g. a batch of
    // self-loops on fresh ids): max_vertex covers the raw endpoints, and
    // consumers (incremental_connectivity) grow by the same rule.
    grow(batch.max_vertex);
    if (batch.empty()) return;
    const auto& ups = batch.updates;
    // One merge task per distinct updated vertex (run of the sorted batch).
    auto is_start = parlib::tabulate<std::uint8_t>(
        ups.size(), [&](std::size_t i) {
          return static_cast<std::uint8_t>(i == 0 ||
                                           ups[i - 1].u != ups[i].u);
        });
    auto starts = parlib::pack_index<std::size_t>(is_start);
    std::vector<long long> dm(starts.size());
    std::vector<long long> ds(starts.size());
    parlib::parallel_for(0, starts.size(), [&](std::size_t r) {
      const std::size_t lo = starts[r];
      const std::size_t hi =
          r + 1 < starts.size() ? starts[r + 1] : ups.size();
      const vertex_id u = ups[lo].u;
      const auto [ddeg, dsize] = merge_run(u, &ups[lo], hi - lo);
      dm[r] = ddeg;
      ds[r] = dsize;
      deg_[u] = static_cast<vertex_id>(
          static_cast<long long>(deg_[u]) + ddeg);
    });
    m_ = static_cast<edge_id>(static_cast<long long>(m_) +
                              parlib::reduce_add(dm));
    overlay_entries_ = static_cast<std::size_t>(
        static_cast<long long>(overlay_entries_) + parlib::reduce_add(ds));
    // Fold the batch's distinct vertices into the sorted overlay work-list,
    // keeping exactly those with a non-empty delta (a batch can empty a
    // vertex's delta by undoing it). O(overlay + batch).
    {
      std::vector<vertex_id> merged;
      merged.reserve(overlay_verts_.size() + starts.size());
      std::size_t a = 0, b = 0;
      auto keep = [&](vertex_id u) {
        if (!delta_[u].empty()) merged.push_back(u);
      };
      while (a < overlay_verts_.size() || b < starts.size()) {
        const vertex_id bu =
            b < starts.size() ? ups[starts[b]].u : kNoVertex;
        if (b == starts.size() ||
            (a < overlay_verts_.size() && overlay_verts_[a] < bu)) {
          merged.push_back(overlay_verts_[a]);  // untouched: still non-empty
          ++a;
        } else if (a == overlay_verts_.size() || bu < overlay_verts_[a]) {
          keep(bu);
          ++b;
        } else {
          keep(bu);
          ++a;
          ++b;
        }
      }
      overlay_verts_ = std::move(merged);
    }
    if (compact_threshold_ > 0 &&
        static_cast<double>(overlay_entries_) >
            compact_threshold_ *
                static_cast<double>(
                    std::max<edge_id>(base_.num_edges(), 1024))) {
      compact();
    }
  }

  // Extend the vertex set to cover ids < n (new vertices are isolated).
  void grow(vertex_id n) {
    if (n <= n_) return;
    delta_.resize(n);
    deg_.resize(n, 0);
    n_ = n;
  }

  // ---- queries (live view) ----------------------------------------------

  bool contains_edge(vertex_id u, vertex_id v) const {
    if (u >= n_) return false;
    const auto& d = delta_[u];
    auto it = std::lower_bound(
        d.begin(), d.end(), v,
        [](const delta_entry<W>& e, vertex_id x) { return e.v < x; });
    if (it != d.end() && it->v == v) return it->present;
    return base_lookup(u, v).first;
  }

  std::optional<W> edge_weight(vertex_id u, vertex_id v) const {
    if (u >= n_) return std::nullopt;
    const auto& d = delta_[u];
    auto it = std::lower_bound(
        d.begin(), d.end(), v,
        [](const delta_entry<W>& e, vertex_id x) { return e.v < x; });
    if (it != d.end() && it->v == v) {
      if (it->present) return it->w;
      return std::nullopt;
    }
    auto [has, w] = base_lookup(u, v);
    if (has) return w;
    return std::nullopt;
  }

  // f(u, ngh, w) over the live out-neighborhood of u, in ascending neighbor
  // order (the ordered merge of base and delta).
  template <typename F>
  void map_out(vertex_id u, const F& f) const {
    decode_out_break(u, [&](vertex_id a, vertex_id b, W w) {
      f(a, b, w);
      return true;
    });
  }

  // Early-exit decode, mirroring graph::decode_out_break.
  template <typename F>
  void decode_out_break(vertex_id u, const F& f) const {
    const auto base_nghs = base_neighbors(u);
    const auto& d = delta_[u];
    std::size_t i = 0, j = 0;
    while (i < d.size() || j < base_nghs.size()) {
      if (j == base_nghs.size() ||
          (i < d.size() && d[i].v < base_nghs[j])) {
        if (d[i].present) {
          if (!f(u, d[i].v, d[i].w)) return;
        }
        ++i;
      } else if (i == d.size() || base_nghs[j] < d[i].v) {
        if (!f(u, base_nghs[j], base_.out_weight(u, j))) return;
        ++j;
      } else {  // same neighbor: delta overrides base
        if (d[i].present) {
          if (!f(u, d[i].v, d[i].w)) return;
        }
        ++i;
        ++j;
      }
    }
  }

  // ---- snapshots ---------------------------------------------------------

  // Fresh static CSR of the live graph; O(n + m) work. The dynamic graph
  // is left untouched — use for running static algorithms mid-stream.
  graph<W> snapshot() const {
    std::vector<edge_id> offsets;
    std::vector<vertex_id> nghs;
    std::vector<W> wghs;
    const edge_id total = merged_csr(offsets, nghs, wghs);
    if (symmetric_) {
      return graph<W>(n_, total, /*symmetric=*/true, std::move(offsets),
                      std::move(nghs), std::move(wghs));
    }
    // Asymmetric: transpose the merged out-CSR for the in-CSR.
    std::vector<edge<W>> rev(total);
    parlib::parallel_for(0, n_, [&](std::size_t v) {
      for (edge_id e = offsets[v]; e < offsets[v + 1]; ++e) {
        W w{};
        if constexpr (!std::is_same_v<W, empty_weight>) w = wghs[e];
        rev[e] = {nghs[e], static_cast<vertex_id>(v), w};
      }
    });
    std::vector<edge_id> in_off;
    std::vector<vertex_id> in_ngh;
    std::vector<W> in_w;
    gbbs::internal::csr_from_unsorted(std::move(rev), n_, in_off, in_ngh,
                                      in_w);
    return graph<W>(n_, total, /*symmetric=*/false, std::move(offsets),
                    std::move(nghs), std::move(wghs), std::move(in_off),
                    std::move(in_ngh), std::move(in_w));
  }

  // Fold the delta overlay into a fresh base CSR and clear it. Queries and
  // snapshots after compact() are pure CSR reads.
  void compact() {
    base_ = snapshot();
    clear_overlay();
    ++compactions_;
  }

  // Version hand-off for the serve layer: install an externally built CSR
  // of the *current live view* (e.g. the snapshot just published) as the
  // new base and clear the overlay. Since graph<W> copies share one
  // refcounted CSR block, passing the just-published snapshot here makes
  // the published version and the compacted base the *same* arrays — one
  // merged-CSR build, zero post-merge copies.
  void adopt_base(graph<W> g) {
    assert(g.num_vertices() == n_ && g.num_edges() == m_);
    base_ = std::move(g);
    clear_overlay();
    ++compactions_;
  }

  const graph<W>& base() const { return base_; }

 private:
  void clear_overlay() {
    delta_.assign(n_, {});
    overlay_verts_.clear();
    overlay_entries_ = 0;
  }

  std::span<const vertex_id> base_neighbors(vertex_id u) const {
    if (u >= base_.num_vertices()) return {};
    return base_.out_neighbors(u);
  }

  std::pair<bool, W> base_lookup(vertex_id u, vertex_id v) const {
    const auto nghs = base_neighbors(u);
    auto it = std::lower_bound(nghs.begin(), nghs.end(), v);
    if (it != nghs.end() && *it == v) {
      return {true, base_.out_weight(u, static_cast<std::size_t>(
                                            it - nghs.begin()))};
    }
    return {false, W{}};
  }

  // Merge a (v-sorted) run of updates for vertex u into delta_[u].
  // Returns {change in u's live degree, change in u's overlay size}.
  std::pair<long long, long long> merge_run(vertex_id u,
                                            const update<W>* run,
                                            std::size_t len) {
    const std::vector<delta_entry<W>>& old = delta_[u];
    std::vector<delta_entry<W>> merged;
    merged.reserve(old.size() + len);
    long long dm = 0;
    std::size_t i = 0, j = 0;
    auto absorb = [&](const update<W>& up, bool cur_present, bool in_base,
                      W base_w) {
      const bool new_present = up.op == update_op::insert;
      dm += static_cast<long long>(new_present) -
            static_cast<long long>(cur_present);
      if (new_present) {
        // Prune entries that restate the base edge verbatim.
        if (!(in_base && base_w == up.w)) {
          merged.push_back({up.v, up.w, true});
        }
      } else if (in_base) {
        merged.push_back({up.v, W{}, false});  // tombstone a base edge
      }
      // erase of a non-base edge: drop entirely (no-op or undoes a delta
      // insert).
    };
    while (i < old.size() || j < len) {
      if (j == len || (i < old.size() && old[i].v < run[j].v)) {
        merged.push_back(old[i]);
        ++i;
      } else if (i == old.size() || run[j].v < old[i].v) {
        const auto [in_base, base_w] = base_lookup(u, run[j].v);
        absorb(run[j], /*cur_present=*/in_base, in_base, base_w);
        ++j;
      } else {  // same neighbor: the batch overrides the old delta entry
        const auto [in_base, base_w] = base_lookup(u, run[j].v);
        absorb(run[j], old[i].present, in_base, base_w);
        ++i;
        ++j;
      }
    }
    const long long dsize = static_cast<long long>(merged.size()) -
                            static_cast<long long>(old.size());
    delta_[u] = std::move(merged);
    return {dm, dsize};
  }

  // Build the merged out-CSR (offsets/nghs/wghs) of the live graph.
  edge_id merged_csr(std::vector<edge_id>& offsets,
                     std::vector<vertex_id>& nghs,
                     std::vector<W>& wghs) const {
    auto degs = parlib::tabulate<edge_id>(
        n_, [&](std::size_t v) { return deg_[v]; });
    const edge_id total = parlib::scan_inplace(degs);
    assert(total == m_);
    offsets.assign(static_cast<std::size_t>(n_) + 1, 0);
    parlib::parallel_for(0, n_, [&](std::size_t v) { offsets[v] = degs[v]; });
    offsets[n_] = total;
    nghs.resize(total);
    if constexpr (!std::is_same_v<W, empty_weight>) wghs.resize(total);
    parlib::parallel_for(0, n_, [&](std::size_t v) {
      edge_id k = offsets[v];
      decode_out_break(static_cast<vertex_id>(v),
                       [&](vertex_id, vertex_id ngh, W w) {
                         nghs[k] = ngh;
                         if constexpr (!std::is_same_v<W, empty_weight>) {
                           wghs[k] = w;
                         }
                         ++k;
                         return true;
                       });
      assert(k == offsets[v + 1]);
    });
    return total;
  }

  bool symmetric_ = true;
  vertex_id n_ = 0;
  edge_id m_ = 0;
  graph<W> base_;
  std::vector<std::vector<delta_entry<W>>> delta_;  // sorted by neighbor id
  std::vector<vertex_id> overlay_verts_;  // sorted u with |delta_[u]| > 0
  std::vector<vertex_id> deg_;                      // live out-degrees
  std::size_t overlay_entries_ = 0;  // sum of |delta_[v]| (O(1) delta_size)
  std::size_t compactions_ = 0;
  double compact_threshold_ = 0;  // 0 = never auto-compact
};

using dynamic_unweighted_graph = dynamic_graph<empty_weight>;
using dynamic_weighted_graph = dynamic_graph<std::uint32_t>;

}  // namespace gbbs::dynamic
