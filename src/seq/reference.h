// Sequential reference implementations used as test oracles and as the
// single-thread baselines the speedup tables divide by. These are textbook
// algorithms, deliberately independent of the parallel code paths.
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <numeric>
#include <queue>
#include <stack>
#include <vector>

#include "graph/graph.h"

namespace gbbs::seq {

inline constexpr std::uint32_t kInfDist = std::numeric_limits<std::uint32_t>::max();
inline constexpr std::int64_t kInfDist64 = std::numeric_limits<std::int64_t>::max();

// BFS distances (hop counts).
template <typename Graph>
std::vector<std::uint32_t> bfs(const Graph& g, vertex_id src) {
  std::vector<std::uint32_t> dist(g.num_vertices(), kInfDist);
  std::deque<vertex_id> q{src};
  dist[src] = 0;
  while (!q.empty()) {
    const vertex_id v = q.front();
    q.pop_front();
    g.map_out_neighbors_early_exit(v, [&](vertex_id, vertex_id u, auto) {
      if (dist[u] == kInfDist) {
        dist[u] = dist[v] + 1;
        q.push_back(u);
      }
      return true;
    });
  }
  return dist;
}

// Dijkstra (non-negative weights).
template <typename Graph>
std::vector<std::int64_t> dijkstra(const Graph& g, vertex_id src) {
  std::vector<std::int64_t> dist(g.num_vertices(), kInfDist64);
  using Entry = std::pair<std::int64_t, vertex_id>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> pq;
  dist[src] = 0;
  pq.push({0, src});
  while (!pq.empty()) {
    const auto [d, v] = pq.top();
    pq.pop();
    if (d != dist[v]) continue;
    g.map_out_neighbors_early_exit(v, [&](vertex_id, vertex_id u, auto w) {
      const std::int64_t nd = d + static_cast<std::int64_t>(w);
      if (nd < dist[u]) {
        dist[u] = nd;
        pq.push({nd, u});
      }
      return true;
    });
  }
  return dist;
}

// Bellman-Ford over an explicit edge list; handles negative weights and
// flags vertices reachable from negative cycles with -inf (lowest()).
template <typename W>
std::vector<std::int64_t> bellman_ford_edges(
    vertex_id n, const std::vector<edge<W>>& edges, vertex_id src) {
  std::vector<std::int64_t> dist(n, kInfDist64);
  dist[src] = 0;
  for (vertex_id round = 0; round + 1 < n || round == 0; ++round) {
    bool changed = false;
    for (const auto& e : edges) {
      if (dist[e.u] != kInfDist64 &&
          dist[e.u] + static_cast<std::int64_t>(e.w) < dist[e.v]) {
        dist[e.v] = dist[e.u] + static_cast<std::int64_t>(e.w);
        changed = true;
      }
    }
    if (!changed) break;
  }
  // Negative-cycle propagation.
  std::vector<std::uint8_t> on_neg(n, 0);
  std::deque<vertex_id> q;
  for (const auto& e : edges) {
    if (dist[e.u] != kInfDist64 &&
        dist[e.u] + static_cast<std::int64_t>(e.w) < dist[e.v] &&
        !on_neg[e.v]) {
      on_neg[e.v] = 1;
      q.push_back(e.v);
    }
  }
  // Spread along edges (adjacency via scan over the edge list; fine for
  // oracle sizes).
  while (!q.empty()) {
    const vertex_id v = q.front();
    q.pop_front();
    for (const auto& e : edges) {
      if (e.u == v && !on_neg[e.v]) {
        on_neg[e.v] = 1;
        q.push_back(e.v);
      }
    }
  }
  for (vertex_id v = 0; v < n; ++v) {
    if (on_neg[v]) dist[v] = std::numeric_limits<std::int64_t>::lowest();
  }
  return dist;
}

// Brandes betweenness from a single source (undirected unweighted).
template <typename Graph>
std::vector<double> betweenness(const Graph& g, vertex_id src) {
  const vertex_id n = g.num_vertices();
  std::vector<double> sigma(n, 0.0), delta(n, 0.0);
  std::vector<std::int64_t> dist(n, -1);
  std::vector<vertex_id> order;
  order.reserve(n);
  std::deque<vertex_id> q{src};
  dist[src] = 0;
  sigma[src] = 1.0;
  while (!q.empty()) {
    const vertex_id v = q.front();
    q.pop_front();
    order.push_back(v);
    g.map_out_neighbors_early_exit(v, [&](vertex_id, vertex_id u, auto) {
      if (dist[u] < 0) {
        dist[u] = dist[v] + 1;
        q.push_back(u);
      }
      if (dist[u] == dist[v] + 1) sigma[u] += sigma[v];
      return true;
    });
  }
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const vertex_id w = *it;
    g.map_out_neighbors_early_exit(w, [&](vertex_id, vertex_id v, auto) {
      if (dist[v] == dist[w] - 1) {
        delta[v] += sigma[v] / sigma[w] * (1.0 + delta[w]);
      }
      return true;
    });
  }
  delta[src] = 0.0;
  return delta;
}

// Connected-component labels (id of the minimum vertex in the component).
template <typename Graph>
std::vector<vertex_id> connectivity(const Graph& g) {
  const vertex_id n = g.num_vertices();
  std::vector<vertex_id> label(n, kNoVertex);
  std::vector<vertex_id> stack;
  for (vertex_id s = 0; s < n; ++s) {
    if (label[s] != kNoVertex) continue;
    label[s] = s;
    stack.push_back(s);
    while (!stack.empty()) {
      const vertex_id v = stack.back();
      stack.pop_back();
      g.map_out_neighbors_early_exit(v, [&](vertex_id, vertex_id u, auto) {
        if (label[u] == kNoVertex) {
          label[u] = s;
          stack.push_back(u);
        }
        return true;
      });
    }
  }
  return label;
}

// Iterative Tarjan SCC; labels are arbitrary distinct ids per SCC.
template <typename Graph>
std::vector<vertex_id> scc(const Graph& g) {
  const vertex_id n = g.num_vertices();
  std::vector<vertex_id> comp(n, kNoVertex), low(n, 0), disc(n, 0);
  std::vector<std::uint8_t> on_stack(n, 0);
  std::vector<vertex_id> stk;
  vertex_id timer = 0, next_comp = 0;

  struct frame {
    vertex_id v;
    std::size_t child_idx;
  };
  // Materialize adjacency for index-based iterative DFS.
  std::vector<std::vector<vertex_id>> adj(n);
  for (vertex_id v = 0; v < n; ++v) {
    g.map_out_neighbors_early_exit(v, [&](vertex_id, vertex_id u, auto) {
      adj[v].push_back(u);
      return true;
    });
  }
  for (vertex_id s = 0; s < n; ++s) {
    if (disc[s] != 0) continue;
    std::vector<frame> frames{{s, 0}};
    disc[s] = low[s] = ++timer;
    stk.push_back(s);
    on_stack[s] = 1;
    while (!frames.empty()) {
      auto& f = frames.back();
      if (f.child_idx < adj[f.v].size()) {
        const vertex_id u = adj[f.v][f.child_idx++];
        if (disc[u] == 0) {
          disc[u] = low[u] = ++timer;
          stk.push_back(u);
          on_stack[u] = 1;
          frames.push_back({u, 0});
        } else if (on_stack[u]) {
          low[f.v] = std::min(low[f.v], disc[u]);
        }
      } else {
        if (low[f.v] == disc[f.v]) {
          while (true) {
            const vertex_id w = stk.back();
            stk.pop_back();
            on_stack[w] = 0;
            comp[w] = next_comp;
            if (w == f.v) break;
          }
          ++next_comp;
        }
        const vertex_id v = f.v;
        frames.pop_back();
        if (!frames.empty()) {
          low[frames.back().v] = std::min(low[frames.back().v], low[v]);
        }
      }
    }
  }
  return comp;
}

// Hopcroft-Tarjan biconnected components: labels one component id per edge,
// returned as a map keyed by (min(u,v) << 32 | max(u,v)).
template <typename Graph>
std::vector<std::pair<std::uint64_t, vertex_id>> biconnectivity_edge_labels(
    const Graph& g) {
  const vertex_id n = g.num_vertices();
  std::vector<std::vector<vertex_id>> adj(n);
  for (vertex_id v = 0; v < n; ++v) {
    g.map_out_neighbors_early_exit(v, [&](vertex_id, vertex_id u, auto) {
      adj[v].push_back(u);
      return true;
    });
  }
  std::vector<vertex_id> disc(n, 0), low(n, 0);
  std::vector<std::pair<std::uint64_t, vertex_id>> labels;
  std::vector<std::uint64_t> edge_stack;
  vertex_id timer = 0, next_comp = 0;
  auto key = [](vertex_id a, vertex_id b) {
    return (static_cast<std::uint64_t>(std::min(a, b)) << 32) |
           std::max(a, b);
  };
  struct frame {
    vertex_id v, parent;
    std::size_t child_idx;
  };
  for (vertex_id s = 0; s < n; ++s) {
    if (disc[s] != 0) continue;
    std::vector<frame> frames{{s, kNoVertex, 0}};
    disc[s] = low[s] = ++timer;
    while (!frames.empty()) {
      auto& f = frames.back();
      if (f.child_idx < adj[f.v].size()) {
        const vertex_id u = adj[f.v][f.child_idx++];
        if (disc[u] == 0) {
          edge_stack.push_back(key(f.v, u));
          disc[u] = low[u] = ++timer;
          frames.push_back({u, f.v, 0});
        } else if (u != f.parent && disc[u] < disc[f.v]) {
          edge_stack.push_back(key(f.v, u));
          low[f.v] = std::min(low[f.v], disc[u]);
        }
      } else {
        const vertex_id v = f.v;
        const vertex_id p = f.parent;
        frames.pop_back();
        if (p == kNoVertex) continue;
        low[p] = std::min(low[p], low[v]);
        if (low[v] >= disc[p]) {
          // Pop the component containing edge (p, v).
          const std::uint64_t stop = key(p, v);
          while (true) {
            const std::uint64_t e = edge_stack.back();
            edge_stack.pop_back();
            labels.push_back({e, next_comp});
            if (e == stop) break;
          }
          ++next_comp;
        }
      }
    }
  }
  return labels;
}

// Kruskal MSF: returns the total weight (the canonical MSF invariant).
template <typename W>
std::uint64_t msf_weight(vertex_id n, std::vector<edge<W>> edges) {
  std::sort(edges.begin(), edges.end(),
            [](const auto& a, const auto& b) { return a.w < b.w; });
  std::vector<vertex_id> parent(n);
  std::iota(parent.begin(), parent.end(), vertex_id{0});
  std::function<vertex_id(vertex_id)> find = [&](vertex_id x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  std::uint64_t total = 0;
  for (const auto& e : edges) {
    const vertex_id ru = find(e.u), rv = find(e.v);
    if (ru != rv) {
      parent[ru] = rv;
      total += e.w;
    }
  }
  return total;
}

// Matula-Beck peeling: coreness of every vertex.
template <typename Graph>
std::vector<vertex_id> coreness(const Graph& g) {
  const vertex_id n = g.num_vertices();
  std::vector<vertex_id> deg(n), core(n, 0);
  vertex_id maxd = 0;
  for (vertex_id v = 0; v < n; ++v) {
    deg[v] = g.out_degree(v);
    maxd = std::max(maxd, deg[v]);
  }
  std::vector<std::vector<vertex_id>> bins(maxd + 1);
  for (vertex_id v = 0; v < n; ++v) bins[deg[v]].push_back(v);
  std::vector<std::uint8_t> done(n, 0);
  vertex_id k = 0;
  for (vertex_id d = 0; d <= maxd; ++d) {
    auto& bin = bins[d];
    for (std::size_t i = 0; i < bin.size(); ++i) {  // bin grows during loop
      const vertex_id v = bin[i];
      if (done[v] || deg[v] > d) continue;
      done[v] = 1;
      k = std::max(k, d);
      core[v] = k;
      g.map_out_neighbors_early_exit(v, [&](vertex_id, vertex_id u, auto) {
        if (!done[u] && deg[u] > d) {
          if (--deg[u] <= d) {
            bins[d].push_back(u);
          } else {
            bins[deg[u]].push_back(u);
          }
        }
        return true;
      });
    }
  }
  return core;
}

// Greedy set cover on a bipartite graph (sets [0, num_sets), elements
// above); returns chosen set ids. Standard Hn-approximation.
template <typename Graph>
std::vector<vertex_id> greedy_set_cover(const Graph& g, vertex_id num_sets) {
  const vertex_id n = g.num_vertices();
  std::vector<std::uint8_t> covered(n, 0);
  std::vector<vertex_id> chosen;
  while (true) {
    vertex_id best = kNoVertex;
    std::size_t best_gain = 0;
    for (vertex_id s = 0; s < num_sets; ++s) {
      std::size_t gain = 0;
      g.map_out_neighbors_early_exit(s, [&](vertex_id, vertex_id e, auto) {
        gain += covered[e] ? 0 : 1;
        return true;
      });
      if (gain > best_gain) {
        best_gain = gain;
        best = s;
      }
    }
    if (best == kNoVertex) break;
    chosen.push_back(best);
    g.map_out_neighbors_early_exit(best, [&](vertex_id, vertex_id e, auto) {
      covered[e] = 1;
      return true;
    });
  }
  return chosen;
}

// Brute-force triangle count (each triangle counted once).
template <typename Graph>
std::uint64_t triangle_count(const Graph& g) {
  std::uint64_t count = 0;
  for (vertex_id v = 0; v < g.num_vertices(); ++v) {
    auto nv = g.out_neighbors(v);
    for (vertex_id u : nv) {
      if (u <= v) continue;
      count += static_cast<std::uint64_t>(std::count_if(
          nv.begin(), nv.end(), [&](vertex_id w) {
            if (w <= u) return false;
            auto nu = g.out_neighbors(u);
            return std::binary_search(nu.begin(), nu.end(), w);
          }));
    }
  }
  return count;
}

// ---- validity checkers (for problems whose outputs are not unique) ------

// MIS: independent + maximal.
template <typename Graph>
bool is_valid_mis(const Graph& g, const std::vector<std::uint8_t>& in_set) {
  for (vertex_id v = 0; v < g.num_vertices(); ++v) {
    bool has_set_neighbor = false;
    for (vertex_id u : g.out_neighbors(v)) {
      if (in_set[u]) has_set_neighbor = true;
      if (in_set[v] && in_set[u]) return false;  // not independent
    }
    if (!in_set[v] && !has_set_neighbor) return false;  // not maximal
  }
  return true;
}

// Maximal matching over an undirected graph.
template <typename Graph, typename W>
bool is_valid_maximal_matching(const Graph& g,
                               const std::vector<edge<W>>& matching) {
  std::vector<std::uint8_t> matched(g.num_vertices(), 0);
  for (const auto& e : matching) {
    if (matched[e.u] || matched[e.v]) return false;  // shares endpoint
    matched[e.u] = matched[e.v] = 1;
  }
  for (vertex_id v = 0; v < g.num_vertices(); ++v) {
    for (vertex_id u : g.out_neighbors(v)) {
      if (!matched[v] && !matched[u]) return false;  // extendable
    }
  }
  return true;
}

// Proper coloring with at most max_colors colors.
template <typename Graph>
bool is_valid_coloring(const Graph& g, const std::vector<vertex_id>& color,
                       vertex_id max_colors) {
  for (vertex_id v = 0; v < g.num_vertices(); ++v) {
    if (color[v] >= max_colors) return false;
    for (vertex_id u : g.out_neighbors(v)) {
      if (u != v && color[u] == color[v]) return false;
    }
  }
  return true;
}

// Set cover validity: chosen sets cover all elements that are coverable.
template <typename Graph>
bool covers_all(const Graph& g, vertex_id num_sets,
                const std::vector<vertex_id>& chosen) {
  const vertex_id n = g.num_vertices();
  std::vector<std::uint8_t> covered(n, 0);
  for (vertex_id s : chosen) {
    g.map_out_neighbors_early_exit(s, [&](vertex_id, vertex_id e, auto) {
      covered[e] = 1;
      return true;
    });
  }
  for (vertex_id e = num_sets; e < n; ++e) {
    if (!covered[e] && g.in_degree(e) > 0) return false;
  }
  return true;
}

}  // namespace gbbs::seq
