// Ligra vertexSubset: a subset of vertices in sparse (id list) or dense
// (bitvector) representation, converted lazily by edgeMap's direction
// optimization. vertex_subset_data<D> additionally carries one payload per
// member (Julienne's edgeMapData result, used to ship bucket destinations).
#pragma once

#include <cassert>
#include <cstdint>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "parlib/parallel.h"
#include "parlib/sequence_ops.h"

namespace gbbs {

class vertex_subset {
 public:
  // Empty subset over n vertices.
  explicit vertex_subset(vertex_id n) : n_(n), is_dense_(false) {}

  // Singleton.
  vertex_subset(vertex_id n, vertex_id v)
      : n_(n), is_dense_(false), sparse_{v} {}

  // From a sparse id list.
  vertex_subset(vertex_id n, std::vector<vertex_id> sparse)
      : n_(n), is_dense_(false), sparse_(std::move(sparse)) {}

  // From dense flags (0/1 per vertex).
  vertex_subset(vertex_id n, std::vector<std::uint8_t> dense)
      : n_(n), is_dense_(true), dense_(std::move(dense)) {
    assert(dense_.size() == n_);
    size_ = parlib::count_if(dense_, [](std::uint8_t f) { return f != 0; });
  }

  vertex_id num_universe() const { return n_; }

  std::size_t size() const { return is_dense_ ? size_ : sparse_.size(); }
  bool empty() const { return size() == 0; }
  bool is_dense() const { return is_dense_; }

  const std::vector<vertex_id>& sparse() const {
    assert(!is_dense_);
    return sparse_;
  }
  const std::vector<std::uint8_t>& dense() const {
    assert(is_dense_);
    return dense_;
  }

  void to_dense() {
    if (is_dense_) return;
    dense_.assign(n_, 0);
    parlib::parallel_for(0, sparse_.size(),
                         [&](std::size_t i) { dense_[sparse_[i]] = 1; });
    size_ = sparse_.size();
    is_dense_ = true;
    sparse_.clear();
  }

  void to_sparse() {
    if (!is_dense_) return;
    sparse_ = parlib::pack_index<vertex_id>(dense_);
    is_dense_ = false;
    dense_.clear();
  }

  bool contains(vertex_id v) const {
    if (is_dense_) return dense_[v] != 0;
    for (const vertex_id u : sparse_) {
      if (u == v) return true;
    }
    return false;
  }

  // f(v) over members; parallel.
  template <typename F>
  void for_each(const F& f) const {
    if (is_dense_) {
      parlib::parallel_for(0, n_, [&](std::size_t v) {
        if (dense_[v]) f(static_cast<vertex_id>(v));
      });
    } else {
      parlib::parallel_for(0, sparse_.size(),
                           [&](std::size_t i) { f(sparse_[i]); });
    }
  }

 private:
  vertex_id n_;
  bool is_dense_;
  std::size_t size_ = 0;  // cached for dense
  std::vector<vertex_id> sparse_;
  std::vector<std::uint8_t> dense_;
};

// vertexSubset with a payload per member (always sparse).
template <typename D>
class vertex_subset_data {
 public:
  explicit vertex_subset_data(vertex_id n) : n_(n) {}
  vertex_subset_data(vertex_id n, std::vector<std::pair<vertex_id, D>> elts)
      : n_(n), elts_(std::move(elts)) {}

  vertex_id num_universe() const { return n_; }
  std::size_t size() const { return elts_.size(); }
  bool empty() const { return elts_.empty(); }
  const std::vector<std::pair<vertex_id, D>>& entries() const { return elts_; }

  vertex_subset to_vertex_subset() const {
    auto ids = parlib::tabulate<vertex_id>(
        elts_.size(), [&](std::size_t i) { return elts_[i].first; });
    return vertex_subset(n_, std::move(ids));
  }

 private:
  vertex_id n_;
  std::vector<std::pair<vertex_id, D>> elts_;
};

// vertexMap: apply f to every member (for side effects).
template <typename F>
void vertex_map(const vertex_subset& vs, const F& f) {
  vs.for_each(f);
}

// vertexFilter: members satisfying pred, as a new sparse subset.
template <typename F>
vertex_subset vertex_filter(const vertex_subset& vs, const F& pred) {
  if (vs.is_dense()) {
    const auto& d = vs.dense();
    auto flags = parlib::tabulate<std::uint8_t>(
        vs.num_universe(), [&](std::size_t v) {
          return static_cast<std::uint8_t>(
              d[v] && pred(static_cast<vertex_id>(v)));
        });
    return vertex_subset(vs.num_universe(),
                         parlib::pack_index<vertex_id>(flags));
  }
  return vertex_subset(vs.num_universe(), parlib::filter(vs.sparse(), pred));
}

}  // namespace gbbs
