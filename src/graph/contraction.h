// Graph contraction (Connectivity, Algorithm 6): given cluster labels,
// build the quotient graph with one vertex per non-empty cluster and one
// edge per pair of adjacent clusters. Inter-cluster edges are deduplicated
// with a phase-concurrent hash set, so the whole step is O(m) work.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "graph/graph_builder.h"
#include "parlib/atomics.h"
#include "parlib/hash_table.h"
#include "parlib/parallel.h"
#include "parlib/sequence_ops.h"

namespace gbbs {

struct contraction_result {
  graph<empty_weight> quotient;
  // cluster label -> dense quotient vertex id (kNoVertex for empty labels).
  std::vector<vertex_id> cluster_to_vertex;
  // One representative original edge per unordered quotient edge, keyed by
  // pack(min, max) of the quotient endpoints; the stored value packs the
  // original endpoints with the min-side endpoint in the high word. Only
  // populated by contract(..., keep_representatives=true); used by the
  // LDD-based spanning forest to map quotient forest edges back.
  parlib::concurrent_map edge_representatives{1};

  std::pair<vertex_id, vertex_id> representative(vertex_id qu,
                                                 vertex_id qv) const {
    const std::uint64_t key =
        (static_cast<std::uint64_t>(std::min(qu, qv)) << 32) |
        std::max(qu, qv);
    const std::uint64_t packed = edge_representatives.find(key);
    return {static_cast<vertex_id>(packed >> 32),
            static_cast<vertex_id>(packed & 0xFFFFFFFFu)};
  }
};

// labels[v] in [0, n) names v's cluster.
template <typename Graph>
contraction_result contract(const Graph& g,
                            const std::vector<vertex_id>& labels,
                            bool keep_representatives = false) {
  const vertex_id n = g.num_vertices();
  // Dense-renumber the used cluster labels. Concurrent marks of the same
  // cluster go through an atomic store (same-value, but racy otherwise).
  std::vector<std::uint8_t> used(n, 0);
  parlib::parallel_for(0, n, [&](std::size_t v) {
    if (parlib::atomic_load(&used[labels[v]]) == 0) {
      parlib::atomic_store(&used[labels[v]], std::uint8_t{1});
    }
  });
  auto cluster_ids = parlib::pack_index<vertex_id>(used);
  const vertex_id n_quot = static_cast<vertex_id>(cluster_ids.size());
  std::vector<vertex_id> cluster_to_vertex(n, kNoVertex);
  parlib::parallel_for(0, cluster_ids.size(), [&](std::size_t i) {
    cluster_to_vertex[cluster_ids[i]] = static_cast<vertex_id>(i);
  });

  // Count inter-cluster edges (upper bound for the dedupe table).
  auto inter_counts = parlib::tabulate<std::uint64_t>(n, [&](std::size_t v) {
    return g.count_out(static_cast<vertex_id>(v),
                       [&](vertex_id u, vertex_id ngh, auto) {
                         return labels[u] != labels[ngh];
                       });
  });
  const std::uint64_t inter_total = parlib::reduce_add(inter_counts);
  parlib::concurrent_set table(std::max<std::uint64_t>(inter_total, 1));
  parlib::concurrent_map reps(
      keep_representatives ? std::max<std::uint64_t>(inter_total, 1) : 1);
  parlib::parallel_for(0, n, [&](std::size_t vi) {
    const auto v = static_cast<vertex_id>(vi);
    g.map_out_neighbors(v, [&](vertex_id u, vertex_id ngh, auto) {
      const vertex_id lu = cluster_to_vertex[labels[u]];
      const vertex_id lv = cluster_to_vertex[labels[ngh]];
      if (lu != lv) {
        table.insert((static_cast<std::uint64_t>(lu) << 32) | lv);
        if (keep_representatives) {
          const std::uint64_t key =
              (static_cast<std::uint64_t>(std::min(lu, lv)) << 32) |
              std::max(lu, lv);
          // Orient the original endpoints so the min quotient side's
          // endpoint sits in the high word.
          const std::uint64_t val =
              lu < lv ? ((static_cast<std::uint64_t>(u) << 32) | ngh)
                      : ((static_cast<std::uint64_t>(ngh) << 32) | u);
          reps.insert(key, val);
        }
      }
    });
  });
  auto packed = table.entries();
  auto quot_edges = parlib::tabulate<edge<empty_weight>>(
      packed.size(), [&](std::size_t i) {
        return edge<empty_weight>{
            static_cast<vertex_id>(packed[i] >> 32),
            static_cast<vertex_id>(packed[i] & 0xFFFFFFFFu),
            {}};
      });
  // The table already holds each direction of a symmetric input; building a
  // symmetric graph re-inserts reversals and dedupes, which also makes
  // contraction correct for asymmetric inputs.
  auto quotient =
      build_symmetric_graph<empty_weight>(n_quot, std::move(quot_edges));
  contraction_result res;
  res.quotient = std::move(quotient);
  res.cluster_to_vertex = std::move(cluster_to_vertex);
  res.edge_representatives = std::move(reps);
  return res;
}

}  // namespace gbbs
