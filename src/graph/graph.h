// CSR graph representation (Section 3).
//
// A single template covers the four shapes the paper uses: symmetric /
// asymmetric crossed with unweighted / integer-weighted. Unweighted graphs
// use W = empty_weight, which occupies no storage. Asymmetric graphs carry
// both the out-CSR and the in-CSR (the in-CSR is what the dense edgeMap
// traverses); symmetric graphs alias the two.
//
// Adjacency lists are sorted by neighbor id and hold no duplicates or
// self-loops (the builder enforces this), which is what the merge-based
// triangle-counting intersection and the compressed format both rely on.
//
// Each vertex also carries a *live degree* that in-place neighborhood
// packing (pack_out) may shrink — the primitive behind the work-efficient
// approximate set cover (Algorithm 14 "Pack out neighbors of sets that are
// covered").
//
// Ownership. The CSR arrays live in one refcounted block shared between
// all copies of a graph: copying a graph<W> is O(1) (a shared_ptr bump),
// which is what lets the serving layer publish a merged CSR and install
// the *same* arrays as the dynamic graph's compacted base with zero
// copies, and lets readers hold a snapshot's arrays alive after the
// writer that built them is gone. The arrays are immutable while shared;
// the one mutating primitive, pack_out, goes through a copy-on-write
// escape hatch (unshare()) that clones the block iff another owner
// exists. Callers that pack in parallel must call unshare() once, from a
// single thread, before the parallel phase — concurrent first-clones
// would race.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "parlib/monoid.h"
#include "parlib/parallel.h"
#include "parlib/sequence_ops.h"

namespace gbbs {

using vertex_id = std::uint32_t;
using edge_id = std::uint64_t;

inline constexpr vertex_id kNoVertex = ~vertex_id{0};

// Weight type of unweighted graphs; occupies no space in edge structs.
struct empty_weight {
  friend bool operator==(empty_weight, empty_weight) { return true; }
  friend bool operator!=(empty_weight, empty_weight) { return false; }
};

template <typename W>
struct edge {
  vertex_id u;
  vertex_id v;
  [[no_unique_address]] W w;
};

template <typename W>
class graph {
 public:
  using weight_type = W;

  graph() : s_(std::make_shared<storage>()) {}

  // Takes ownership of prebuilt CSR arrays (use graph_builder to construct
  // from edge lists). For symmetric graphs pass empty in_* arrays.
  graph(vertex_id n, edge_id m, bool symmetric,
        std::vector<edge_id> out_offsets, std::vector<vertex_id> out_edges,
        std::vector<W> out_weights, std::vector<edge_id> in_offsets = {},
        std::vector<vertex_id> in_edges = {}, std::vector<W> in_weights = {})
      : n_(n), m_(m), symmetric_(symmetric), s_(std::make_shared<storage>()) {
    s_->out_offsets = std::move(out_offsets);
    s_->out_edges = std::move(out_edges);
    s_->out_weights = std::move(out_weights);
    s_->in_offsets = std::move(in_offsets);
    s_->in_edges = std::move(in_edges);
    s_->in_weights = std::move(in_weights);
    assert(s_->out_offsets.size() == static_cast<std::size_t>(n_) + 1);
    s_->out_live_deg = parlib::tabulate<vertex_id>(n_, [&](std::size_t v) {
      return static_cast<vertex_id>(s_->out_offsets[v + 1] -
                                    s_->out_offsets[v]);
    });
  }

  // Copies share the refcounted CSR block: O(1), no array duplication.

  vertex_id num_vertices() const { return n_; }
  edge_id num_edges() const { return m_; }
  bool symmetric() const { return symmetric_; }

  // ---- shared-ownership introspection ------------------------------------

  // True iff this graph and `other` are views of the same CSR block (the
  // zero-copy publish contract; used by tests and the serving layer).
  bool shares_storage(const graph& other) const { return s_ == other.s_; }

  // Owners of this graph's CSR block (1 = uniquely owned).
  long storage_use_count() const { return s_.use_count(); }

  // Copy-on-write escape hatch: clone the CSR block iff it is shared, so
  // subsequent in-place mutation (pack_out) cannot be observed through
  // other owners. Must not race with other accesses to this same graph
  // object; call once from a single thread before parallel packing.
  void unshare() {
    if (s_.use_count() > 1) s_ = std::make_shared<storage>(*s_);
  }

  vertex_id out_degree(vertex_id v) const { return s_->out_live_deg[v]; }
  vertex_id in_degree(vertex_id v) const {
    if (symmetric_) return out_degree(v);
    return static_cast<vertex_id>(s_->in_offsets[v + 1] - s_->in_offsets[v]);
  }

  std::span<const vertex_id> out_neighbors(vertex_id v) const {
    return {s_->out_edges.data() + s_->out_offsets[v], out_degree(v)};
  }
  std::span<const vertex_id> in_neighbors(vertex_id v) const {
    if (symmetric_) return out_neighbors(v);
    return {s_->in_edges.data() + s_->in_offsets[v], in_degree(v)};
  }

  W out_weight(vertex_id v, std::size_t j) const {
    if constexpr (std::is_same_v<W, empty_weight>) {
      return empty_weight{};
    } else {
      return s_->out_weights[s_->out_offsets[v] + j];
    }
  }
  W in_weight(vertex_id v, std::size_t j) const {
    if constexpr (std::is_same_v<W, empty_weight>) {
      return empty_weight{};
    } else {
      return symmetric_ ? s_->out_weights[s_->out_offsets[v] + j]
                        : s_->in_weights[s_->in_offsets[v] + j];
    }
  }

  // ---- neighborhood primitives (shared interface with compressed_graph) --

  // f(v, ngh, w) over out-neighbors; parallel for high degrees.
  template <typename F>
  void map_out_neighbors(vertex_id v, const F& f, bool par = true) const {
    const auto nghs = out_neighbors(v);
    const auto base = s_->out_offsets[v];
    auto body = [&](std::size_t j) { f(v, nghs[j], weight_at(base, j)); };
    if (par && nghs.size() > 1024) {
      parlib::parallel_for(0, nghs.size(), body);
    } else {
      for (std::size_t j = 0; j < nghs.size(); ++j) body(j);
    }
  }

  template <typename F>
  void map_in_neighbors(vertex_id v, const F& f, bool par = true) const {
    if (symmetric_) {
      map_out_neighbors(v, f, par);
      return;
    }
    const auto nghs = in_neighbors(v);
    const auto base = s_->in_offsets[v];
    auto body = [&](std::size_t j) {
      f(v, nghs[j], in_weight_at(base, j));
    };
    if (par && nghs.size() > 1024) {
      parlib::parallel_for(0, nghs.size(), body);
    } else {
      for (std::size_t j = 0; j < nghs.size(); ++j) body(j);
    }
  }

  // Sequential decode with early exit: f returns false to stop. Used by the
  // optimized dense edgeMap (Section 3).
  template <typename F>
  void map_out_neighbors_early_exit(vertex_id v, const F& f) const {
    const auto nghs = out_neighbors(v);
    const auto base = s_->out_offsets[v];
    for (std::size_t j = 0; j < nghs.size(); ++j) {
      if (!f(v, nghs[j], weight_at(base, j))) return;
    }
  }

  template <typename F>
  void map_in_neighbors_early_exit(vertex_id v, const F& f) const {
    if (symmetric_) {
      map_out_neighbors_early_exit(v, f);
      return;
    }
    const auto nghs = in_neighbors(v);
    const auto base = s_->in_offsets[v];
    for (std::size_t j = 0; j < nghs.size(); ++j) {
      if (!f(v, nghs[j], in_weight_at(base, j))) return;
    }
  }

  // f over out-neighbor positions [j_lo, j_hi) — the random access the
  // blocked edgeMap needs (Algorithm 15).
  template <typename F>
  void map_out_neighbors_range(vertex_id v, std::size_t j_lo, std::size_t j_hi,
                     const F& f) const {
    const auto nghs = out_neighbors(v);
    const auto base = s_->out_offsets[v];
    for (std::size_t j = j_lo; j < j_hi && j < nghs.size(); ++j) {
      f(v, nghs[j], weight_at(base, j));
    }
  }

  template <typename M, typename F>
  typename M::value_type reduce_out(vertex_id v, const F& f,
                                    const M& monoid) const {
    const auto nghs = out_neighbors(v);
    const auto base = s_->out_offsets[v];
    typename M::value_type acc = monoid.identity;
    for (std::size_t j = 0; j < nghs.size(); ++j) {
      acc = monoid.combine(acc, f(v, nghs[j], weight_at(base, j)));
    }
    return acc;
  }

  template <typename F>
  std::size_t count_out(vertex_id v, const F& pred) const {
    const auto nghs = out_neighbors(v);
    const auto base = s_->out_offsets[v];
    std::size_t c = 0;
    for (std::size_t j = 0; j < nghs.size(); ++j) {
      c += pred(v, nghs[j], weight_at(base, j)) ? 1 : 0;
    }
    return c;
  }

  // |N_out(u) ∩ N_out(v)| by sorted merge (triangle counting, Section A).
  std::size_t intersect_out(vertex_id u, vertex_id v) const {
    const auto a = out_neighbors(u);
    const auto b = out_neighbors(v);
    std::size_t i = 0, j = 0, c = 0;
    while (i < a.size() && j < b.size()) {
      if (a[i] < b[j]) {
        ++i;
      } else if (a[i] > b[j]) {
        ++j;
      } else {
        ++c;
        ++i;
        ++j;
      }
    }
    return c;
  }

  // In-place pack: keep out-neighbors satisfying pred(v, ngh, w), shrinking
  // the live degree. Stable; preserves sortedness. O(deg(v)) work.
  //
  // Mutates the CSR block: unshares first (COW), so other owners of a
  // previously shared block are unaffected. When packing many vertices in
  // parallel, call unshare() once before the parallel loop — the per-call
  // unshare below is then a no-op use_count read.
  template <typename F>
  void pack_out(vertex_id v, const F& pred) {
    unshare();
    const auto base = s_->out_offsets[v];
    const auto deg = out_degree(v);
    std::size_t k = 0;
    for (std::size_t j = 0; j < deg; ++j) {
      const vertex_id ngh = s_->out_edges[base + j];
      const W w = weight_at(base, j);
      if (pred(v, ngh, w)) {
        s_->out_edges[base + k] = ngh;
        if constexpr (!std::is_same_v<W, empty_weight>) {
          s_->out_weights[base + k] = w;
        }
        ++k;
      }
    }
    s_->out_live_deg[v] = static_cast<vertex_id>(k);
  }

  // All out-edges as a flat list (respects live degrees).
  std::vector<edge<W>> edges() const {
    auto degs = parlib::tabulate<edge_id>(
        n_, [&](std::size_t v) { return out_degree(static_cast<vertex_id>(v)); });
    const edge_id total = parlib::scan_inplace(degs);
    std::vector<edge<W>> out(total);
    parlib::parallel_for(0, n_, [&](std::size_t v) {
      const auto nghs = out_neighbors(static_cast<vertex_id>(v));
      const auto base = s_->out_offsets[v];
      for (std::size_t j = 0; j < nghs.size(); ++j) {
        out[degs[v] + j] = {static_cast<vertex_id>(v), nghs[j],
                            weight_at(base, j)};
      }
    });
    return out;
  }

  std::size_t size_in_bytes() const {
    return s_->out_offsets.size() * sizeof(edge_id) +
           s_->out_edges.size() * sizeof(vertex_id) +
           s_->out_weights.size() * sizeof(W) +
           s_->in_offsets.size() * sizeof(edge_id) +
           s_->in_edges.size() * sizeof(vertex_id) +
           s_->in_weights.size() * sizeof(W);
  }

 private:
  // The refcounted CSR block. Immutable while shared; pack_out clones it
  // on first write (unshare).
  struct storage {
    std::vector<edge_id> out_offsets;
    std::vector<vertex_id> out_edges;
    std::vector<W> out_weights;
    std::vector<edge_id> in_offsets;
    std::vector<vertex_id> in_edges;
    std::vector<W> in_weights;
    std::vector<vertex_id> out_live_deg;
  };

  W weight_at(edge_id base, std::size_t j) const {
    if constexpr (std::is_same_v<W, empty_weight>) {
      return empty_weight{};
    } else {
      return s_->out_weights[base + j];
    }
  }
  W in_weight_at(edge_id base, std::size_t j) const {
    if constexpr (std::is_same_v<W, empty_weight>) {
      return empty_weight{};
    } else {
      return s_->in_weights[base + j];
    }
  }

  vertex_id n_ = 0;
  edge_id m_ = 0;
  bool symmetric_ = true;
  std::shared_ptr<storage> s_;
};

using unweighted_graph = graph<empty_weight>;
using weighted_graph = graph<std::uint32_t>;

}  // namespace gbbs
