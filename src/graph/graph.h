// CSR graph representation (Section 3).
//
// A single template covers the four shapes the paper uses: symmetric /
// asymmetric crossed with unweighted / integer-weighted. Unweighted graphs
// use W = empty_weight, which occupies no storage. Asymmetric graphs carry
// both the out-CSR and the in-CSR (the in-CSR is what the dense edgeMap
// traverses); symmetric graphs alias the two.
//
// Adjacency lists are sorted by neighbor id and hold no duplicates or
// self-loops (the builder enforces this), which is what the merge-based
// triangle-counting intersection and the compressed format both rely on.
//
// Each vertex also carries a *live degree* that in-place neighborhood
// packing (pack_out) may shrink — the primitive behind the work-efficient
// approximate set cover (Algorithm 14 "Pack out neighbors of sets that are
// covered").
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "parlib/monoid.h"
#include "parlib/parallel.h"
#include "parlib/sequence_ops.h"

namespace gbbs {

using vertex_id = std::uint32_t;
using edge_id = std::uint64_t;

inline constexpr vertex_id kNoVertex = ~vertex_id{0};

// Weight type of unweighted graphs; occupies no space in edge structs.
struct empty_weight {
  friend bool operator==(empty_weight, empty_weight) { return true; }
  friend bool operator!=(empty_weight, empty_weight) { return false; }
};

template <typename W>
struct edge {
  vertex_id u;
  vertex_id v;
  [[no_unique_address]] W w;
};

template <typename W>
class graph {
 public:
  using weight_type = W;

  graph() = default;

  // Takes ownership of prebuilt CSR arrays (use graph_builder to construct
  // from edge lists). For symmetric graphs pass empty in_* arrays.
  graph(vertex_id n, edge_id m, bool symmetric,
        std::vector<edge_id> out_offsets, std::vector<vertex_id> out_edges,
        std::vector<W> out_weights, std::vector<edge_id> in_offsets = {},
        std::vector<vertex_id> in_edges = {}, std::vector<W> in_weights = {})
      : n_(n),
        m_(m),
        symmetric_(symmetric),
        out_offsets_(std::move(out_offsets)),
        out_edges_(std::move(out_edges)),
        out_weights_(std::move(out_weights)),
        in_offsets_(std::move(in_offsets)),
        in_edges_(std::move(in_edges)),
        in_weights_(std::move(in_weights)) {
    assert(out_offsets_.size() == static_cast<std::size_t>(n_) + 1);
    out_live_deg_ = parlib::tabulate<vertex_id>(n_, [&](std::size_t v) {
      return static_cast<vertex_id>(out_offsets_[v + 1] - out_offsets_[v]);
    });
  }

  vertex_id num_vertices() const { return n_; }
  edge_id num_edges() const { return m_; }
  bool symmetric() const { return symmetric_; }

  vertex_id out_degree(vertex_id v) const { return out_live_deg_[v]; }
  vertex_id in_degree(vertex_id v) const {
    if (symmetric_) return out_degree(v);
    return static_cast<vertex_id>(in_offsets_[v + 1] - in_offsets_[v]);
  }

  std::span<const vertex_id> out_neighbors(vertex_id v) const {
    return {out_edges_.data() + out_offsets_[v], out_degree(v)};
  }
  std::span<const vertex_id> in_neighbors(vertex_id v) const {
    if (symmetric_) return out_neighbors(v);
    return {in_edges_.data() + in_offsets_[v], in_degree(v)};
  }

  W out_weight(vertex_id v, std::size_t j) const {
    if constexpr (std::is_same_v<W, empty_weight>) {
      return empty_weight{};
    } else {
      return out_weights_[out_offsets_[v] + j];
    }
  }
  W in_weight(vertex_id v, std::size_t j) const {
    if constexpr (std::is_same_v<W, empty_weight>) {
      return empty_weight{};
    } else {
      return symmetric_ ? out_weights_[out_offsets_[v] + j]
                        : in_weights_[in_offsets_[v] + j];
    }
  }

  // ---- neighborhood primitives (shared interface with compressed_graph) --

  // f(v, ngh, w) over out-neighbors; parallel for high degrees.
  template <typename F>
  void map_out(vertex_id v, const F& f, bool par = true) const {
    const auto nghs = out_neighbors(v);
    const auto base = out_offsets_[v];
    auto body = [&](std::size_t j) { f(v, nghs[j], weight_at(base, j)); };
    if (par && nghs.size() > 1024) {
      parlib::parallel_for(0, nghs.size(), body);
    } else {
      for (std::size_t j = 0; j < nghs.size(); ++j) body(j);
    }
  }

  template <typename F>
  void map_in(vertex_id v, const F& f, bool par = true) const {
    if (symmetric_) {
      map_out(v, f, par);
      return;
    }
    const auto nghs = in_neighbors(v);
    const auto base = in_offsets_[v];
    auto body = [&](std::size_t j) {
      f(v, nghs[j], in_weight_at(base, j));
    };
    if (par && nghs.size() > 1024) {
      parlib::parallel_for(0, nghs.size(), body);
    } else {
      for (std::size_t j = 0; j < nghs.size(); ++j) body(j);
    }
  }

  // Sequential decode with early exit: f returns false to stop. Used by the
  // optimized dense edgeMap (Section 3).
  template <typename F>
  void decode_out_break(vertex_id v, const F& f) const {
    const auto nghs = out_neighbors(v);
    const auto base = out_offsets_[v];
    for (std::size_t j = 0; j < nghs.size(); ++j) {
      if (!f(v, nghs[j], weight_at(base, j))) return;
    }
  }

  template <typename F>
  void decode_in_break(vertex_id v, const F& f) const {
    if (symmetric_) {
      decode_out_break(v, f);
      return;
    }
    const auto nghs = in_neighbors(v);
    const auto base = in_offsets_[v];
    for (std::size_t j = 0; j < nghs.size(); ++j) {
      if (!f(v, nghs[j], in_weight_at(base, j))) return;
    }
  }

  // f over out-neighbor positions [j_lo, j_hi) — the random access the
  // blocked edgeMap needs (Algorithm 15).
  template <typename F>
  void map_out_range(vertex_id v, std::size_t j_lo, std::size_t j_hi,
                     const F& f) const {
    const auto nghs = out_neighbors(v);
    const auto base = out_offsets_[v];
    for (std::size_t j = j_lo; j < j_hi && j < nghs.size(); ++j) {
      f(v, nghs[j], weight_at(base, j));
    }
  }

  template <typename M, typename F>
  typename M::value_type reduce_out(vertex_id v, const F& f,
                                    const M& monoid) const {
    const auto nghs = out_neighbors(v);
    const auto base = out_offsets_[v];
    typename M::value_type acc = monoid.identity;
    for (std::size_t j = 0; j < nghs.size(); ++j) {
      acc = monoid.combine(acc, f(v, nghs[j], weight_at(base, j)));
    }
    return acc;
  }

  template <typename F>
  std::size_t count_out(vertex_id v, const F& pred) const {
    const auto nghs = out_neighbors(v);
    const auto base = out_offsets_[v];
    std::size_t c = 0;
    for (std::size_t j = 0; j < nghs.size(); ++j) {
      c += pred(v, nghs[j], weight_at(base, j)) ? 1 : 0;
    }
    return c;
  }

  // |N_out(u) ∩ N_out(v)| by sorted merge (triangle counting, Section A).
  std::size_t intersect_out(vertex_id u, vertex_id v) const {
    const auto a = out_neighbors(u);
    const auto b = out_neighbors(v);
    std::size_t i = 0, j = 0, c = 0;
    while (i < a.size() && j < b.size()) {
      if (a[i] < b[j]) {
        ++i;
      } else if (a[i] > b[j]) {
        ++j;
      } else {
        ++c;
        ++i;
        ++j;
      }
    }
    return c;
  }

  // In-place pack: keep out-neighbors satisfying pred(v, ngh, w), shrinking
  // the live degree. Stable; preserves sortedness. O(deg(v)) work.
  template <typename F>
  void pack_out(vertex_id v, const F& pred) {
    const auto base = out_offsets_[v];
    const auto deg = out_degree(v);
    std::size_t k = 0;
    for (std::size_t j = 0; j < deg; ++j) {
      const vertex_id ngh = out_edges_[base + j];
      const W w = weight_at(base, j);
      if (pred(v, ngh, w)) {
        out_edges_[base + k] = ngh;
        if constexpr (!std::is_same_v<W, empty_weight>) {
          out_weights_[base + k] = w;
        }
        ++k;
      }
    }
    out_live_deg_[v] = static_cast<vertex_id>(k);
  }

  // All out-edges as a flat list (respects live degrees).
  std::vector<edge<W>> edges() const {
    auto degs = parlib::tabulate<edge_id>(
        n_, [&](std::size_t v) { return out_degree(static_cast<vertex_id>(v)); });
    const edge_id total = parlib::scan_inplace(degs);
    std::vector<edge<W>> out(total);
    parlib::parallel_for(0, n_, [&](std::size_t v) {
      const auto nghs = out_neighbors(static_cast<vertex_id>(v));
      const auto base = out_offsets_[v];
      for (std::size_t j = 0; j < nghs.size(); ++j) {
        out[degs[v] + j] = {static_cast<vertex_id>(v), nghs[j],
                            weight_at(base, j)};
      }
    });
    return out;
  }

  std::size_t size_in_bytes() const {
    return out_offsets_.size() * sizeof(edge_id) +
           out_edges_.size() * sizeof(vertex_id) +
           out_weights_.size() * sizeof(W) +
           in_offsets_.size() * sizeof(edge_id) +
           in_edges_.size() * sizeof(vertex_id) +
           in_weights_.size() * sizeof(W);
  }

 private:
  W weight_at(edge_id base, std::size_t j) const {
    if constexpr (std::is_same_v<W, empty_weight>) {
      return empty_weight{};
    } else {
      return out_weights_[base + j];
    }
  }
  W in_weight_at(edge_id base, std::size_t j) const {
    if constexpr (std::is_same_v<W, empty_weight>) {
      return empty_weight{};
    } else {
      return in_weights_[base + j];
    }
  }

  vertex_id n_ = 0;
  edge_id m_ = 0;
  bool symmetric_ = true;
  std::vector<edge_id> out_offsets_;
  std::vector<vertex_id> out_edges_;
  std::vector<W> out_weights_;
  std::vector<edge_id> in_offsets_;
  std::vector<vertex_id> in_edges_;
  std::vector<W> in_weights_;
  std::vector<vertex_id> out_live_deg_;
};

using unweighted_graph = graph<empty_weight>;
using weighted_graph = graph<std::uint32_t>;

}  // namespace gbbs
