// Graph serialization: the Ligra AdjacencyGraph / WeightedAdjacencyGraph
// text formats (for interoperability with Ligra/GBBS tooling) and a fast
// binary format.
#pragma once

#include <string>

#include "graph/graph.h"

namespace gbbs {

// Text formats. Weighted variants read/write the trailing weights block.
void write_adjacency_graph(const std::string& path,
                           const graph<empty_weight>& g);
void write_adjacency_graph(const std::string& path,
                           const graph<std::uint32_t>& g);
graph<empty_weight> read_adjacency_graph(const std::string& path,
                                         bool symmetric);
graph<std::uint32_t> read_weighted_adjacency_graph(const std::string& path,
                                                   bool symmetric);

// Binary format (magic, n, m, offsets, edges [, weights]).
void write_binary_graph(const std::string& path,
                        const graph<empty_weight>& g);
void write_binary_graph(const std::string& path,
                        const graph<std::uint32_t>& g);
graph<empty_weight> read_binary_graph(const std::string& path,
                                      bool symmetric);
graph<std::uint32_t> read_weighted_binary_graph(const std::string& path,
                                                bool symmetric);

}  // namespace gbbs
