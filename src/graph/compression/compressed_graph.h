// Parallel-byte / parallel-nibble compressed graphs (Ligra+, Sections 5-6
// and B).
//
// Each neighbor list is difference-encoded in blocks of kBlockSize
// neighbors. The first element of each block is encoded relative to the
// source vertex (signed, zigzag); subsequent elements store the gap to
// their predecessor. Because every block can be decoded independently, the
// neighborhood primitives (map, map_reduce, filter/pack, intersect) achieve
// the work/depth bounds of Section B: parallel across blocks, sequential
// (constant-size) within a block. A per-vertex header stores the code-unit
// offsets of blocks 1.. so a block's data can be located in O(1).
//
// The Codec policy selects the code: bytecode::byte_codec (7+1 bits per
// byte, Ligra+'s default) or bytecode::nibble_codec (3+1 bits per nibble,
// denser on highly local graphs). Vertex regions are byte-aligned, so
// parallel per-vertex encoding never races on shared bytes.
//
// Weighted graphs interleave a weight code after each neighbor code.
//
// The class exposes the same neighborhood interface as gbbs::graph, so every
// algorithm template in src/algorithms runs unchanged on compressed inputs
// (the paper's Table 5 configuration).
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <vector>

#include "graph/compression/byte_codes.h"
#include "graph/graph.h"
#include "parlib/monoid.h"
#include "parlib/parallel.h"
#include "parlib/sequence_ops.h"

namespace gbbs {

inline constexpr std::size_t kCompressedBlockSize = 128;

namespace compression_internal {

inline void write_u32(std::uint8_t* data, std::size_t pos, std::uint32_t v) {
  std::memcpy(data + pos, &v, sizeof(v));
}

inline std::uint32_t read_u32(const std::uint8_t* data, std::size_t pos) {
  std::uint32_t v;
  std::memcpy(&v, data + pos, sizeof(v));
  return v;
}

template <typename W>
constexpr bool is_weighted() {
  return !std::is_same_v<W, empty_weight>;
}

// Encoded byte size of one adjacency list: the block-offset header plus the
// code units of all deltas (and weights). `get` returns the j-th
// (neighbor, weight) pair.
template <typename W, typename Codec, typename Get>
std::size_t list_encoded_size(vertex_id v, vertex_id deg, const Get& get) {
  if (deg == 0) return 0;
  const std::size_t nb = (deg - 1) / kCompressedBlockSize + 1;
  std::size_t units = 0;
  vertex_id prev = 0;
  for (vertex_id j = 0; j < deg; ++j) {
    const auto [ngh, w] = get(j);
    if (j % kCompressedBlockSize == 0) {
      units += Codec::encoded_units(bytecode::zigzag_encode(
          static_cast<std::int64_t>(ngh) - static_cast<std::int64_t>(v)));
    } else {
      units += Codec::encoded_units(ngh - prev);
    }
    if constexpr (is_weighted<W>()) {
      units += Codec::encoded_units(w);
    } else {
      (void)w;
    }
    prev = ngh;
  }
  return 4 * (nb - 1) + Codec::bytes_for_units(units);
}

// Encode one adjacency list into data[start..]. Layout: header of
// 4*(nb-1) bytes holding the unit offset of blocks 1..nb-1 within the data
// region, followed by the (byte-aligned) data region of code units.
template <typename W, typename Codec, typename Get>
void encode_list(std::uint8_t* data, std::size_t start, vertex_id v,
                 vertex_id deg, const Get& get) {
  if (deg == 0) return;
  const std::size_t nb = (deg - 1) / kCompressedBlockSize + 1;
  const std::size_t header_bytes = 4 * (nb - 1);
  std::uint8_t* region = data + start + header_bytes;
  std::size_t upos = 0;
  vertex_id prev = 0;
  for (vertex_id j = 0; j < deg; ++j) {
    const auto [ngh, w] = get(j);
    if (j % kCompressedBlockSize == 0) {
      const std::size_t block = j / kCompressedBlockSize;
      if (block > 0) {
        write_u32(data, start + 4 * (block - 1),
                  static_cast<std::uint32_t>(upos));
      }
      Codec::encode_at(region, upos,
                       bytecode::zigzag_encode(
                           static_cast<std::int64_t>(ngh) -
                           static_cast<std::int64_t>(v)));
    } else {
      Codec::encode_at(region, upos, ngh - prev);
    }
    if constexpr (is_weighted<W>()) {
      Codec::encode_at(region, upos, w);
    } else {
      (void)w;
    }
    prev = ngh;
  }
}

// One compressed direction (out or in) of a graph.
template <typename W, typename Codec>
struct compressed_side {
  std::vector<vertex_id> degrees;
  std::vector<std::uint64_t> offsets;  // byte offset per vertex, size n+1
  std::vector<std::uint8_t> bytes;

  vertex_id degree(vertex_id v) const { return degrees[v]; }

  std::size_t num_list_blocks(vertex_id v) const {
    const vertex_id d = degrees[v];
    return d == 0 ? 0 : (d - 1) / kCompressedBlockSize + 1;
  }

  // Decode block b of v, applying f(j, ngh, w) for the in-block index j
  // (absolute position = b * kCompressedBlockSize + j). f returns bool:
  // false stops the block decode.
  template <typename F>
  void decode_block(vertex_id v, std::size_t b, const F& f) const {
    const vertex_id deg = degrees[v];
    const std::size_t nb = num_list_blocks(v);
    const std::size_t start = offsets[v];
    const std::size_t header_bytes = 4 * (nb - 1);
    const std::uint8_t* region = bytes.data() + start + header_bytes;
    std::size_t upos =
        b > 0 ? read_u32(bytes.data(), start + 4 * (b - 1)) : 0;
    const vertex_id j_lo = static_cast<vertex_id>(b * kCompressedBlockSize);
    const vertex_id j_hi = std::min<vertex_id>(
        deg, static_cast<vertex_id>((b + 1) * kCompressedBlockSize));
    vertex_id prev = 0;
    for (vertex_id j = j_lo; j < j_hi; ++j) {
      vertex_id ngh;
      if (j == j_lo) {
        ngh = static_cast<vertex_id>(
            static_cast<std::int64_t>(v) +
            bytecode::zigzag_decode(Codec::decode(region, upos)));
      } else {
        ngh = prev + static_cast<vertex_id>(Codec::decode(region, upos));
      }
      W w{};
      if constexpr (is_weighted<W>()) {
        w = static_cast<W>(Codec::decode(region, upos));
      }
      prev = ngh;
      if (!f(static_cast<std::size_t>(j - j_lo), ngh, w)) return;
    }
  }
};

// Sequential cursor over a compressed neighbor list (for merges).
template <typename W, typename Codec>
class neighbor_cursor {
 public:
  neighbor_cursor(const compressed_side<W, Codec>& side, vertex_id v)
      : side_(&side), v_(v), deg_(side.degree(v)) {
    if (deg_ > 0) load_block(0);
  }

  bool done() const { return j_ >= deg_; }
  vertex_id value() const { return buf_[j_ - block_lo_]; }

  void advance() {
    ++j_;
    if (!done() && j_ - block_lo_ >= block_len_) {
      load_block(j_ / kCompressedBlockSize);
    }
  }

 private:
  void load_block(std::size_t b) {
    block_lo_ = static_cast<vertex_id>(b * kCompressedBlockSize);
    block_len_ = 0;
    side_->decode_block(v_, b, [&](std::size_t j, vertex_id ngh, W) {
      buf_[j] = ngh;
      ++block_len_;
      return true;
    });
  }

  const compressed_side<W, Codec>* side_;
  vertex_id v_;
  vertex_id deg_;
  vertex_id j_ = 0;
  vertex_id block_lo_ = 0;
  std::size_t block_len_ = 0;
  vertex_id buf_[kCompressedBlockSize];
};

}  // namespace compression_internal

template <typename W, typename Codec = bytecode::byte_codec>
class compressed_graph {
 public:
  using weight_type = W;
  using codec_type = Codec;

  compressed_graph() = default;

  vertex_id num_vertices() const { return n_; }
  edge_id num_edges() const { return m_; }
  bool symmetric() const { return symmetric_; }

  vertex_id out_degree(vertex_id v) const { return out_.degree(v); }
  vertex_id in_degree(vertex_id v) const {
    return symmetric_ ? out_.degree(v) : in_.degree(v);
  }

  template <typename F>
  void map_out_neighbors(vertex_id v, const F& f, bool par = true) const {
    map_side(out_, v, f, par);
  }
  template <typename F>
  void map_in_neighbors(vertex_id v, const F& f, bool par = true) const {
    map_side(symmetric_ ? out_ : in_, v, f, par);
  }

  template <typename F>
  void map_out_neighbors_early_exit(vertex_id v, const F& f) const {
    decode_break_side(out_, v, f);
  }
  template <typename F>
  void map_in_neighbors_early_exit(vertex_id v, const F& f) const {
    decode_break_side(symmetric_ ? out_ : in_, v, f);
  }

  template <typename F>
  void map_out_neighbors_range(vertex_id v, std::size_t j_lo, std::size_t j_hi,
                     const F& f) const {
    const vertex_id deg = out_.degree(v);
    j_hi = std::min<std::size_t>(j_hi, deg);
    if (j_lo >= j_hi) return;
    const std::size_t b_lo = j_lo / kCompressedBlockSize;
    const std::size_t b_hi = (j_hi - 1) / kCompressedBlockSize;
    for (std::size_t b = b_lo; b <= b_hi; ++b) {
      const std::size_t base = b * kCompressedBlockSize;
      out_.decode_block(v, b, [&](std::size_t j, vertex_id ngh, W w) {
        const std::size_t abs = base + j;
        if (abs >= j_hi) return false;
        if (abs >= j_lo) f(v, ngh, w);
        return true;
      });
    }
  }

  template <typename M, typename F>
  typename M::value_type reduce_out(vertex_id v, const F& f,
                                    const M& monoid) const {
    typename M::value_type acc = monoid.identity;
    map_out_neighbors_early_exit(v, [&](vertex_id src, vertex_id ngh, W w) {
      acc = monoid.combine(acc, f(src, ngh, w));
      return true;
    });
    return acc;
  }

  template <typename F>
  std::size_t count_out(vertex_id v, const F& pred) const {
    std::size_t c = 0;
    map_out_neighbors_early_exit(v, [&](vertex_id src, vertex_id ngh, W w) {
      c += pred(src, ngh, w) ? 1 : 0;
      return true;
    });
    return c;
  }

  // Sorted-merge intersection over two compressed lists, decoding each block
  // at most once (Section B's Intersection primitive).
  std::size_t intersect_out(vertex_id u, vertex_id v) const {
    compression_internal::neighbor_cursor<W, Codec> a(out_, u), b(out_, v);
    std::size_t c = 0;
    while (!a.done() && !b.done()) {
      if (a.value() < b.value()) {
        a.advance();
      } else if (a.value() > b.value()) {
        b.advance();
      } else {
        ++c;
        a.advance();
        b.advance();
      }
    }
    return c;
  }

  std::vector<edge<W>> edges() const {
    auto degs = parlib::tabulate<edge_id>(n_, [&](std::size_t v) {
      return out_.degree(static_cast<vertex_id>(v));
    });
    const edge_id total = parlib::scan_inplace(degs);
    std::vector<edge<W>> out(total);
    parlib::parallel_for(0, n_, [&](std::size_t v) {
      std::size_t k = degs[v];
      map_out_neighbors_early_exit(static_cast<vertex_id>(v),
                       [&](vertex_id src, vertex_id ngh, W w) {
                         out[k++] = {src, ngh, w};
                         return true;
                       });
    });
    return out;
  }

  std::size_t size_in_bytes() const {
    auto side_bytes =
        [](const compression_internal::compressed_side<W, Codec>& s) {
          return s.bytes.size() + s.offsets.size() * sizeof(std::uint64_t) +
                 s.degrees.size() * sizeof(vertex_id);
        };
    return side_bytes(out_) + (symmetric_ ? 0 : side_bytes(in_));
  }

  // Build by compressing an uncompressed graph (parallel two-pass).
  static compressed_graph compress(const graph<W>& g) {
    compressed_graph cg;
    cg.n_ = g.num_vertices();
    cg.m_ = g.num_edges();
    cg.symmetric_ = g.symmetric();
    compress_side(
        cg.out_, cg.n_, [&](vertex_id v) { return g.out_degree(v); },
        [&](vertex_id v, vertex_id j) {
          return std::make_pair(g.out_neighbors(v)[j], g.out_weight(v, j));
        });
    if (!cg.symmetric_) {
      compress_side(
          cg.in_, cg.n_, [&](vertex_id v) { return g.in_degree(v); },
          [&](vertex_id v, vertex_id j) {
            return std::make_pair(g.in_neighbors(v)[j], g.in_weight(v, j));
          });
    }
    return cg;
  }

  // Decompress back to CSR (tests round-trip through this).
  graph<W> decompress() const {
    auto all = edges();
    if (symmetric_) {
      std::vector<edge_id> offsets(static_cast<std::size_t>(n_) + 1);
      auto degs = parlib::tabulate<edge_id>(n_, [&](std::size_t v) {
        return out_.degree(static_cast<vertex_id>(v));
      });
      edge_id total = 0;
      for (std::size_t v = 0; v < n_; ++v) {
        offsets[v] = total;
        total += degs[v];
      }
      offsets[n_] = total;
      std::vector<vertex_id> nghs(total);
      std::vector<W> wghs;
      if constexpr (compression_internal::is_weighted<W>()) {
        wghs.resize(total);
      }
      parlib::parallel_for(0, n_, [&](std::size_t v) {
        std::size_t k = offsets[v];
        map_out_neighbors_early_exit(static_cast<vertex_id>(v),
                         [&](vertex_id, vertex_id ngh, W w) {
                           nghs[k] = ngh;
                           if constexpr (compression_internal::is_weighted<
                                             W>()) {
                             wghs[k] = w;
                           }
                           ++k;
                           return true;
                         });
      });
      return graph<W>(n_, m_, true, std::move(offsets), std::move(nghs),
                      std::move(wghs));
    }
    return build_asymmetric_graph_from_edges(all);
  }

  // Filtered copy: keep out-edges satisfying pred. Weighted lists keep their
  // weights. The result is out-CSR only (symmetric flag set), mirroring
  // filter_graph for uncompressed graphs.
  template <typename F>
  compressed_graph filter(const F& pred) const {
    compressed_graph cg;
    cg.n_ = n_;
    cg.symmetric_ = true;
    auto& side = cg.out_;
    side.degrees.assign(n_, 0);
    parlib::parallel_for(0, n_, [&](std::size_t v) {
      side.degrees[v] = static_cast<vertex_id>(
          count_out(static_cast<vertex_id>(v), pred));
    });
    std::vector<std::uint64_t> sizes(n_);
    parlib::parallel_for(0, n_, [&](std::size_t vi) {
      const auto v = static_cast<vertex_id>(vi);
      std::vector<std::pair<vertex_id, W>> kept = collect_filtered(v, pred);
      sizes[vi] = compression_internal::list_encoded_size<W, Codec>(
          v, static_cast<vertex_id>(kept.size()),
          [&](vertex_id j) { return kept[j]; });
    });
    side.offsets.resize(static_cast<std::size_t>(n_) + 1);
    std::uint64_t total_bytes = 0;
    for (std::size_t v = 0; v < n_; ++v) {
      side.offsets[v] = total_bytes;
      total_bytes += sizes[v];
    }
    side.offsets[n_] = total_bytes;
    side.bytes.assign(total_bytes, 0);
    parlib::parallel_for(0, n_, [&](std::size_t vi) {
      const auto v = static_cast<vertex_id>(vi);
      std::vector<std::pair<vertex_id, W>> kept = collect_filtered(v, pred);
      compression_internal::encode_list<W, Codec>(
          side.bytes.data(), side.offsets[vi], v,
          static_cast<vertex_id>(kept.size()),
          [&](vertex_id j) { return kept[j]; });
    });
    auto degs64 = parlib::map(side.degrees, [](vertex_id d) {
      return static_cast<edge_id>(d);
    });
    cg.m_ = parlib::reduce_add(degs64);
    return cg;
  }

 private:
  template <typename F>
  std::vector<std::pair<vertex_id, W>> collect_filtered(
      vertex_id v, const F& pred) const {
    std::vector<std::pair<vertex_id, W>> kept;
    map_out_neighbors_early_exit(v, [&](vertex_id src, vertex_id ngh, W w) {
      if (pred(src, ngh, w)) kept.emplace_back(ngh, w);
      return true;
    });
    return kept;
  }

  template <typename DegFn, typename GetFn>
  static void compress_side(
      compression_internal::compressed_side<W, Codec>& side, vertex_id n,
      const DegFn& deg, const GetFn& get) {
    side.degrees = parlib::tabulate<vertex_id>(n, [&](std::size_t v) {
      return deg(static_cast<vertex_id>(v));
    });
    std::vector<std::uint64_t> sizes(n);
    parlib::parallel_for(0, n, [&](std::size_t vi) {
      const auto v = static_cast<vertex_id>(vi);
      sizes[vi] = compression_internal::list_encoded_size<W, Codec>(
          v, side.degrees[vi], [&](vertex_id j) { return get(v, j); });
    });
    side.offsets.resize(static_cast<std::size_t>(n) + 1);
    std::uint64_t total = 0;
    for (std::size_t v = 0; v < n; ++v) {
      side.offsets[v] = total;
      total += sizes[v];
    }
    side.offsets[n] = total;
    side.bytes.assign(total, 0);
    parlib::parallel_for(0, n, [&](std::size_t vi) {
      const auto v = static_cast<vertex_id>(vi);
      compression_internal::encode_list<W, Codec>(
          side.bytes.data(), side.offsets[vi], v, side.degrees[vi],
          [&](vertex_id j) { return get(v, j); });
    });
  }

  template <typename F>
  void map_side(const compression_internal::compressed_side<W, Codec>& side,
                vertex_id v, const F& f, bool par) const {
    const std::size_t nb = side.num_list_blocks(v);
    auto body = [&](std::size_t b) {
      side.decode_block(v, b, [&](std::size_t, vertex_id ngh, W w) {
        f(v, ngh, w);
        return true;
      });
    };
    if (par && nb > 4) {
      parlib::parallel_for(0, nb, body, 1);
    } else {
      for (std::size_t b = 0; b < nb; ++b) body(b);
    }
  }

  template <typename F>
  void decode_break_side(
      const compression_internal::compressed_side<W, Codec>& side,
      vertex_id v, const F& f) const {
    const std::size_t nb = side.num_list_blocks(v);
    for (std::size_t b = 0; b < nb; ++b) {
      bool keep_going = true;
      side.decode_block(v, b, [&](std::size_t, vertex_id ngh, W w) {
        keep_going = f(v, ngh, w);
        return keep_going;
      });
      if (!keep_going) return;
    }
  }

  graph<W> build_asymmetric_graph_from_edges(std::vector<edge<W>>& e) const;

  vertex_id n_ = 0;
  edge_id m_ = 0;
  bool symmetric_ = true;
  compression_internal::compressed_side<W, Codec> out_;
  compression_internal::compressed_side<W, Codec> in_;
};

template <typename W>
using nibble_compressed_graph = compressed_graph<W, bytecode::nibble_codec>;

}  // namespace gbbs

#include "graph/graph_builder.h"

namespace gbbs {

template <typename W, typename Codec>
graph<W> compressed_graph<W, Codec>::build_asymmetric_graph_from_edges(
    std::vector<edge<W>>& e) const {
  return build_asymmetric_graph<W>(n_, std::move(e));
}

// filter_graph overload so algorithm templates work on both graph kinds.
template <typename W, typename Codec, typename F>
compressed_graph<W, Codec> filter_graph(const compressed_graph<W, Codec>& g,
                                        const F& pred) {
  return g.filter(pred);
}

}  // namespace gbbs

#include "graph/graph_view.h"

namespace gbbs {
// The compressed CSR models the same traversal concept as the plain one.
static_assert(graph_view<compressed_graph<empty_weight>>);
static_assert(graph_view<compressed_graph<std::uint32_t>>);
static_assert(graph_view<nibble_compressed_graph<empty_weight>>);
}  // namespace gbbs
