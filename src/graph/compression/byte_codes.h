// Variable-length byte codes (Ligra+, Section B): 7 data bits per byte with
// a continue bit, plus zigzag coding for the signed first-difference of each
// block (first neighbor minus source vertex).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace gbbs::bytecode {

inline std::size_t encoded_size(std::uint64_t v) {
  std::size_t bytes = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++bytes;
  }
  return bytes;
}

// Appends the varint encoding of v to out; returns bytes written.
inline std::size_t encode(std::vector<std::uint8_t>& out, std::uint64_t v) {
  std::size_t bytes = 0;
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
    ++bytes;
  }
  out.push_back(static_cast<std::uint8_t>(v));
  return bytes + 1;
}

// Decodes a varint starting at data[pos]; advances pos.
inline std::uint64_t decode(const std::uint8_t* data, std::size_t& pos) {
  std::uint64_t v = 0;
  int shift = 0;
  while (true) {
    const std::uint8_t b = data[pos++];
    v |= static_cast<std::uint64_t>(b & 0x7F) << shift;
    if (!(b & 0x80)) break;
    shift += 7;
  }
  return v;
}

inline std::uint64_t zigzag_encode(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

inline std::int64_t zigzag_decode(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^
         -static_cast<std::int64_t>(v & 1);
}

// ---- codec policies for the parallel-byte/nibble compressed graphs ------
//
// A codec measures positions in *units* (bytes for the byte code, nibbles
// for the nibble code); a vertex's data region is always byte-aligned, so
// parallel per-vertex encoding never races on a shared byte.

// Ligra+'s byte code: 7 data bits + 1 continue bit per byte.
struct byte_codec {
  static std::size_t encoded_units(std::uint64_t v) {
    std::size_t units = 1;
    while (v >= 0x80) {
      v >>= 7;
      ++units;
    }
    return units;
  }
  static std::size_t bytes_for_units(std::size_t units) { return units; }
  static void encode_at(std::uint8_t* data, std::size_t& upos,
                        std::uint64_t v) {
    while (v >= 0x80) {
      data[upos++] = static_cast<std::uint8_t>(v) | 0x80;
      v >>= 7;
    }
    data[upos++] = static_cast<std::uint8_t>(v);
  }
  static std::uint64_t decode(const std::uint8_t* data, std::size_t& upos) {
    std::uint64_t v = 0;
    int shift = 0;
    while (true) {
      const std::uint8_t b = data[upos++];
      v |= static_cast<std::uint64_t>(b & 0x7F) << shift;
      if (!(b & 0x80)) break;
      shift += 7;
    }
    return v;
  }
};

// Ligra+'s nibble code: 3 data bits + 1 continue bit per nibble. Denser on
// the tiny deltas of highly local graphs (grids, tori, reordered crawls),
// at the cost of slower decoding.
struct nibble_codec {
  static std::size_t encoded_units(std::uint64_t v) {
    std::size_t units = 1;
    while (v >= 8) {
      v >>= 3;
      ++units;
    }
    return units;
  }
  static std::size_t bytes_for_units(std::size_t units) {
    return (units + 1) / 2;
  }
  static void write_nibble(std::uint8_t* data, std::size_t upos,
                           std::uint8_t nib) {
    std::uint8_t& b = data[upos >> 1];
    if (upos & 1) {
      b = static_cast<std::uint8_t>((b & 0x0F) | (nib << 4));
    } else {
      b = static_cast<std::uint8_t>((b & 0xF0) | nib);
    }
  }
  static std::uint8_t read_nibble(const std::uint8_t* data,
                                  std::size_t upos) {
    const std::uint8_t b = data[upos >> 1];
    return (upos & 1) ? (b >> 4) : (b & 0x0F);
  }
  static void encode_at(std::uint8_t* data, std::size_t& upos,
                        std::uint64_t v) {
    while (v >= 8) {
      write_nibble(data, upos++,
                   static_cast<std::uint8_t>((v & 7) | 8));
      v >>= 3;
    }
    write_nibble(data, upos++, static_cast<std::uint8_t>(v));
  }
  static std::uint64_t decode(const std::uint8_t* data, std::size_t& upos) {
    std::uint64_t v = 0;
    int shift = 0;
    while (true) {
      const std::uint8_t nib = read_nibble(data, upos++);
      v |= static_cast<std::uint64_t>(nib & 7) << shift;
      if (!(nib & 8)) break;
      shift += 3;
    }
    return v;
  }
};

}  // namespace gbbs::bytecode
