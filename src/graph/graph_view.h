// The graph_view concept (Section 3's abstract graph interface, made a
// compile-time contract): the neighborhood-iteration surface that edgeMap
// and the whole analytics suite are written against, so any representation
// that models it — the static CSR (`graph<W>`), the compressed CSR
// (`compressed_graph<W>`), the live batch-dynamic graph
// (`dynamic::dynamic_graph<W>`), the serving layer's overlay-fused
// `serve::dynamic_view<W>`, or the sharded ingest path's stitched
// `serve::composite_view<W>` (per-vertex routing to the owning shard's
// base ⊕ delta rows) — runs the same algorithms unmodified.
//
// A model supplies:
//   * num_vertices() / num_edges() — n and the *live* directed edge count
//     (for delta-overlaid models this must include overlay inserts and
//     exclude erases; edgeMap's dense/sparse direction threshold is m/20,
//     so under-reporting m biases traversal toward the wrong mode);
//   * symmetric() — whether the in-side aliases the out-side;
//   * out_degree(v) / in_degree(v) — live degrees;
//   * map_out_neighbors(v, f) — f(v, ngh, w) over the live out-neighborhood
//     in ascending neighbor order (sparse edgeMap, contraction, k-core);
//   * map_in_neighbors(v, f) — the in-side analogue;
//   * map_out_neighbors_early_exit(v, f) — sequential decode, f returns
//     false to stop (the paper's optimized dense traversal, triangle
//     intersection prefixes);
//   * map_in_neighbors_early_exit(v, f) — the in-side analogue, the one
//     dense edgeMap actually scans (for a delta-overlaid model this is
//     what requires a real in-edge overlay);
//   * map_out_neighbors_range(v, j_lo, j_hi, f) — random access into
//     positions [j_lo, j_hi) of the live out-neighborhood (the blocked
//     edgeMap's prefix-summed-degree block splitting, Algorithm 15);
//   * count_out(v, pred) — live out-neighbors satisfying pred (LDD's
//     cut-edge accounting, filter_graph's degree pass, contraction).
//
// The probe functors below exist only to let the concept check the
// callable requirements without instantiating anything.
#pragma once

#include <concepts>
#include <cstddef>

#include "graph/graph.h"

namespace gbbs {

namespace view_internal {

// Callback probe for map_*_neighbors / map_out_neighbors_range.
template <typename W>
struct map_probe {
  void operator()(vertex_id, vertex_id, W) const {}
};

// Callback probe for the early-exit decodes (returns "keep going") and
// for count_out predicates (same signature, bool result).
template <typename W>
struct break_probe {
  bool operator()(vertex_id, vertex_id, W) const { return true; }
};

}  // namespace view_internal

template <typename G>
concept graph_view = requires(
    const G& g, vertex_id v, std::size_t j,
    view_internal::map_probe<typename G::weight_type> mf,
    view_internal::break_probe<typename G::weight_type> bf) {
  typename G::weight_type;
  { g.num_vertices() } -> std::convertible_to<vertex_id>;
  { g.num_edges() } -> std::convertible_to<edge_id>;
  { g.symmetric() } -> std::convertible_to<bool>;
  { g.out_degree(v) } -> std::convertible_to<vertex_id>;
  { g.in_degree(v) } -> std::convertible_to<vertex_id>;
  g.map_out_neighbors(v, mf);
  g.map_in_neighbors(v, mf);
  g.map_out_neighbors_early_exit(v, bf);
  g.map_in_neighbors_early_exit(v, bf);
  g.map_out_neighbors_range(v, j, j, mf);
  { g.count_out(v, bf) } -> std::convertible_to<std::size_t>;
};

// The static CSR is the trivial model.
static_assert(graph_view<graph<empty_weight>>);
static_assert(graph_view<graph<std::uint32_t>>);

}  // namespace gbbs
