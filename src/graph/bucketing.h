// Julienne's bucketing structure (Dhulipala, Blelloch, Shun, SPAA'17),
// which the paper's wBFS, k-core, and approximate set cover build on.
//
// The structure maintains, for identifiers 0..n-1, a mapping into dynamic
// buckets, processed in increasing (wBFS, k-core) or decreasing (set cover)
// order. A window of `open_buckets` buckets is materialized around the
// cursor plus a single overflow bucket; when the window is exhausted the
// overflow is redistributed around the next live bucket.
//
// Deletion is lazy: moving an identifier inserts a new copy and leaves the
// old one behind; next_bucket filters each popped bucket against the
// client's current-bucket function, so stale copies (old bucket, or
// finished identifiers mapping to null_bucket) evaporate. Clients must
// (a) report the *current* bucket of every unfinished identifier and
// null_bucket for finished ones, and (b) not insert an identifier twice
// into the same bucket between pops (both algorithms guarantee this by
// only reporting *changed* buckets — see get_bucket).
#pragma once

#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "parlib/cancellation.h"
#include "parlib/integer_sort.h"
#include "parlib/parallel.h"
#include "parlib/sequence_ops.h"

namespace gbbs {

using bucket_id = std::uint32_t;
inline constexpr bucket_id kNullBucket = std::numeric_limits<bucket_id>::max();

enum class bucket_order { increasing, decreasing };

template <typename D>  // D: vertex_id -> bucket_id (current bucket or null)
class buckets {
 public:
  buckets(vertex_id n, D d, bucket_order order,
          std::size_t open_buckets = 128)
      : d_(std::move(d)), order_(order), open_(open_buckets),
        bkts_(open_buckets + 1) {
    // Seed the window at the extreme live bucket in traversal order.
    auto ids = parlib::iota<vertex_id>(n);
    auto live = parlib::filter(
        ids, [&](vertex_id v) { return d_(v) != kNullBucket; });
    if (live.empty()) {
      base_ = 0;
      cur_ = 0;
      return;
    }
    auto bks = parlib::map(live, [&](vertex_id v) {
      return static_cast<std::int64_t>(d_(v));
    });
    base_ = order_ == bucket_order::increasing
                ? parlib::reduce(bks, parlib::min_monoid<std::int64_t>())
                : parlib::reduce(bks, parlib::max_monoid<std::int64_t>());
    cur_ = base_;
    bulk_insert(live);
  }

  // Number of bucket pops performed so far (the paper's rho for k-core).
  std::size_t num_rounds() const { return rounds_; }

  // Pop the next non-empty bucket in traversal order. Returns
  // {kNullBucket, {}} when the structure is empty.
  std::pair<bucket_id, std::vector<vertex_id>> next_bucket() {
    while (true) {
      // Cancellation / deadline poll once per pop attempt: a cancelled
      // bucketed computation (k-core, wBFS, set cover) sees an "empty"
      // structure and terminates its driver loop; the partial result is the
      // caller's to discard.
      if (parlib::cancel::poll()) return {kNullBucket, {}};
      while (in_window(cur_)) {
        auto& vec = bkts_[slot_of(cur_)];
        if (!vec.empty()) {
          auto live = parlib::filter(vec, [&](vertex_id v) {
            return d_(v) == static_cast<bucket_id>(cur_);
          });
          vec.clear();
          if (!live.empty()) {
            ++rounds_;
            return {static_cast<bucket_id>(cur_), std::move(live)};
          }
        }
        advance(cur_);
      }
      // Window exhausted: redistribute overflow around the next live bucket.
      auto overflow = std::move(bkts_[open_]);
      bkts_[open_].clear();
      auto live = parlib::filter(overflow, [&](vertex_id v) {
        return d_(v) != kNullBucket;
      });
      // The overflow can hold several copies of one identifier (one per
      // update that landed beyond the window); all copies of a live
      // identifier now agree on d_(v), so deduplicate before reinserting —
      // otherwise a bucket could pop the same identifier twice and clients
      // like k-core would double-count its edges.
      if (live.size() > 1) {
        parlib::integer_sort_inplace(
            live, [](vertex_id v) { return v; });
        auto keep = parlib::tabulate<std::uint8_t>(
            live.size(), [&](std::size_t i) {
              return static_cast<std::uint8_t>(i == 0 ||
                                               live[i - 1] != live[i]);
            });
        live = parlib::pack(live, keep);
      }
      if (live.empty()) return {kNullBucket, {}};
      auto bks = parlib::map(live, [&](vertex_id v) {
        return static_cast<std::int64_t>(d_(v));
      });
      base_ = order_ == bucket_order::increasing
                  ? parlib::reduce(bks, parlib::min_monoid<std::int64_t>())
                  : parlib::reduce(bks, parlib::max_monoid<std::int64_t>());
      cur_ = base_;
      bulk_insert(live);
    }
  }

  // Move identifiers to new (absolute) buckets. Pairs with kNullBucket are
  // ignored. The client's d must already reflect the new buckets.
  void update_buckets(
      const std::vector<std::pair<vertex_id, bucket_id>>& updates) {
    auto live = parlib::filter(updates, [&](const auto& p) {
      return p.second != kNullBucket;
    });
    if (live.empty()) return;
    // Group by destination slot with a counting sort, then bulk-append.
    auto slotted = parlib::tabulate<std::pair<vertex_id, std::uint32_t>>(
        live.size(), [&](std::size_t i) {
          return std::make_pair(
              live[i].first,
              static_cast<std::uint32_t>(
                  slot_of(static_cast<std::int64_t>(live[i].second))));
        });
    auto starts = parlib::counting_sort_inplace(
        slotted, [](const auto& p) { return p.second; }, open_ + 1);
    parlib::parallel_for(
        0, open_ + 1,
        [&](std::size_t s) {
          const std::size_t lo = starts[s], hi = starts[s + 1];
          if (lo == hi) return;
          auto& vec = bkts_[s];
          const std::size_t old = vec.size();
          vec.resize(old + (hi - lo));
          for (std::size_t i = lo; i < hi; ++i) {
            vec[old + (i - lo)] = slotted[i].first;
          }
        },
        1);
  }

  // Destination bucket for an identifier whose bucket changed from prev to
  // next; kNullBucket when unchanged (so no duplicate insertion happens).
  static bucket_id get_bucket(bucket_id prev, bucket_id next) {
    return prev == next ? kNullBucket : next;
  }

 private:
  bool in_window(std::int64_t b) const {
    if (order_ == bucket_order::increasing) {
      return b < base_ + static_cast<std::int64_t>(open_);
    }
    return b > base_ - static_cast<std::int64_t>(open_) && b >= 0;
  }

  void advance(std::int64_t& b) const {
    b += order_ == bucket_order::increasing ? 1 : -1;
  }

  // Slot of an absolute bucket id: window-relative position, clamping ids
  // behind the cursor to the cursor (can only happen through client races
  // that both algorithms exclude; clamping keeps the structure safe), and
  // everything beyond the window into the overflow slot open_.
  std::size_t slot_of(std::int64_t b) const {
    std::int64_t rel;
    if (order_ == bucket_order::increasing) {
      if (b < cur_) b = cur_;
      rel = b - base_;
    } else {
      if (b > cur_) b = cur_;
      rel = base_ - b;
    }
    return rel < static_cast<std::int64_t>(open_)
               ? static_cast<std::size_t>(rel)
               : open_;
  }

  void bulk_insert(const std::vector<vertex_id>& ids) {
    std::vector<std::pair<vertex_id, bucket_id>> updates(ids.size());
    parlib::parallel_for(0, ids.size(), [&](std::size_t i) {
      updates[i] = {ids[i], d_(ids[i])};
    });
    update_buckets(updates);
  }

  D d_;
  bucket_order order_;
  std::size_t open_;
  std::vector<std::vector<vertex_id>> bkts_;  // open_ window slots + overflow
  std::int64_t base_ = 0;
  std::int64_t cur_ = 0;
  std::size_t rounds_ = 0;
};

template <typename D>
buckets<D> make_buckets(vertex_id n, D d, bucket_order order,
                        std::size_t open_buckets = 128) {
  return buckets<D>(n, std::move(d), order, open_buckets);
}

}  // namespace gbbs
