#include "graph/generators.h"

#include <cmath>

#include "parlib/parallel.h"

namespace gbbs {

namespace {

// One R-MAT edge: descend `scale` levels of the quadrant recursion, choosing
// a quadrant per level from an independent hash draw.
edge<empty_weight> rmat_one(std::uint32_t scale, std::uint64_t index,
                            parlib::random rng, double a, double b,
                            double c) {
  vertex_id u = 0, v = 0;
  const parlib::random er = rng.fork(index);
  for (std::uint32_t level = 0; level < scale; ++level) {
    const double p = er.ith_uniform(level);
    u <<= 1;
    v <<= 1;
    if (p < a) {
      // top-left: both bits 0
    } else if (p < a + b) {
      v |= 1;
    } else if (p < a + b + c) {
      u |= 1;
    } else {
      u |= 1;
      v |= 1;
    }
  }
  return {u, v, {}};
}

}  // namespace

edge_list rmat_edges(std::uint32_t scale, std::size_t num_edges,
                     std::uint64_t seed, double a, double b, double c) {
  parlib::random rng(seed);
  edge_list edges(num_edges);
  parlib::parallel_for(0, num_edges, [&](std::size_t i) {
    edges[i] = rmat_one(scale, i, rng, a, b, c);
  });
  return edges;
}

edge_list erdos_renyi_edges(vertex_id n, std::size_t num_edges,
                            std::uint64_t seed) {
  parlib::random rng(seed);
  edge_list edges(num_edges);
  parlib::parallel_for(0, num_edges, [&](std::size_t i) {
    edges[i] = {static_cast<vertex_id>(rng.ith_rand(2 * i) % n),
                static_cast<vertex_id>(rng.ith_rand(2 * i + 1) % n),
                {}};
  });
  return edges;
}

edge_list torus3d_edges(vertex_id side) {
  const std::size_t n = static_cast<std::size_t>(side) * side * side;
  auto id = [side](vertex_id x, vertex_id y, vertex_id z) {
    return (x * side + y) * side + z;
  };
  edge_list edges(3 * n);
  parlib::parallel_for(0, n, [&](std::size_t v) {
    const vertex_id z = static_cast<vertex_id>(v % side);
    const vertex_id y = static_cast<vertex_id>((v / side) % side);
    const vertex_id x = static_cast<vertex_id>(v / (static_cast<std::size_t>(side) * side));
    const vertex_id vv = static_cast<vertex_id>(v);
    edges[3 * v + 0] = {vv, id((x + 1) % side, y, z), {}};
    edges[3 * v + 1] = {vv, id(x, (y + 1) % side, z), {}};
    edges[3 * v + 2] = {vv, id(x, y, (z + 1) % side), {}};
  });
  return edges;
}

edge_list grid2d_edges(vertex_id rows, vertex_id cols) {
  edge_list edges;
  edges.reserve(static_cast<std::size_t>(rows) * cols * 2);
  for (vertex_id r = 0; r < rows; ++r) {
    for (vertex_id c = 0; c < cols; ++c) {
      const vertex_id v = r * cols + c;
      if (c + 1 < cols) edges.push_back({v, v + 1, {}});
      if (r + 1 < rows) edges.push_back({v, v + cols, {}});
    }
  }
  return edges;
}

edge_list path_edges(vertex_id n) {
  edge_list edges;
  for (vertex_id i = 0; i + 1 < n; ++i) edges.push_back({i, i + 1, {}});
  return edges;
}

edge_list cycle_edges(vertex_id n) {
  auto edges = path_edges(n);
  if (n >= 3) edges.push_back({n - 1, 0, {}});
  return edges;
}

edge_list star_edges(vertex_id n) {
  edge_list edges;
  for (vertex_id i = 1; i < n; ++i) edges.push_back({0, i, {}});
  return edges;
}

edge_list complete_edges(vertex_id n) {
  edge_list edges;
  for (vertex_id i = 0; i < n; ++i) {
    for (vertex_id j = i + 1; j < n; ++j) edges.push_back({i, j, {}});
  }
  return edges;
}

edge_list binary_tree_edges(vertex_id n) {
  edge_list edges;
  for (vertex_id i = 0; i < n; ++i) {
    if (2 * i + 1 < n) edges.push_back({i, 2 * i + 1, {}});
    if (2 * i + 2 < n) edges.push_back({i, 2 * i + 2, {}});
  }
  return edges;
}

edge_list bipartite_cover_edges(vertex_id sets, vertex_id elements,
                                std::size_t avg_degree, std::uint64_t seed) {
  parlib::random rng(seed);
  const std::size_t total = static_cast<std::size_t>(sets) * avg_degree;
  edge_list edges(total);
  parlib::parallel_for(0, total, [&](std::size_t i) {
    const vertex_id s = static_cast<vertex_id>(i / avg_degree);
    const vertex_id e = static_cast<vertex_id>(
        sets + rng.ith_rand(i) % elements);
    edges[i] = {s, e, {}};
  });
  return edges;
}

std::vector<edge<std::uint32_t>> with_random_weights(const edge_list& edges,
                                                     std::uint32_t max_weight,
                                                     std::uint64_t seed) {
  parlib::random rng(seed);
  std::vector<edge<std::uint32_t>> out(edges.size());
  parlib::parallel_for(0, edges.size(), [&](std::size_t i) {
    const auto [u, v, w] = edges[i];
    // Weight keyed by the unordered endpoint pair so that both directions of
    // a symmetrized edge agree.
    const std::uint64_t lo = std::min(u, v), hi = std::max(u, v);
    const std::uint32_t wt = static_cast<std::uint32_t>(
        rng.ith_rand((hi << 32) | lo) % max_weight + 1);
    out[i] = {u, v, wt};
  });
  return out;
}

}  // namespace gbbs
