// Deterministic synthetic graph generators — the data substitute for the
// paper's web crawls and social networks (see DESIGN.md §1):
//   * rmat_edges:    skewed, low effective diameter, giant component —
//                    the web/social regime (LiveJournal/Twitter/Hyperlink);
//   * erdos_renyi:   uniform-degree regime (com-Orkut-like);
//   * torus3d:       the paper's own high-diameter family (Section 6 and
//                    Figure 1), each vertex joined to 2 neighbors per
//                    dimension with wraparound;
//   * grid2d/path/cycle/star/complete/binary_tree: structured graphs used
//                    by tests and edge-case benches;
//   * bipartite_cover: random set-cover instances (sets 0..s-1 covering
//                    elements s..s+e-1).
// All generators are pure functions of their seed.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "graph/graph_builder.h"
#include "parlib/random.h"

namespace gbbs {

using edge_list = std::vector<edge<empty_weight>>;

// num_edges directed edge samples from the R-MAT distribution on 2^scale
// vertices with the standard (a,b,c,d) = (.57,.19,.19,.05) quadrant split.
edge_list rmat_edges(std::uint32_t scale, std::size_t num_edges,
                     std::uint64_t seed, double a = 0.57, double b = 0.19,
                     double c = 0.19);

// num_edges uniformly random directed edges on n vertices.
edge_list erdos_renyi_edges(vertex_id n, std::size_t num_edges,
                            std::uint64_t seed);

// 3-dimensional torus with side^3 vertices; undirected edge list (each edge
// listed once; symmetrize with build_symmetric_graph).
edge_list torus3d_edges(vertex_id side);

// 2-dimensional grid (no wraparound).
edge_list grid2d_edges(vertex_id rows, vertex_id cols);

edge_list path_edges(vertex_id n);
edge_list cycle_edges(vertex_id n);
edge_list star_edges(vertex_id n);          // center 0
edge_list complete_edges(vertex_id n);
edge_list binary_tree_edges(vertex_id n);   // node i -> 2i+1, 2i+2

// Bipartite set-cover instance: `sets` set-vertices each covering
// ~avg_degree random elements out of `elements`.
edge_list bipartite_cover_edges(vertex_id sets, vertex_id elements,
                                std::size_t avg_degree, std::uint64_t seed);

// Attach deterministic uniform integer weights in [1, max_weight] to an
// unweighted edge list (the paper draws from [1, log n); use
// weight_range(n)). Weight depends only on the unordered endpoint pair, so
// symmetrization preserves weight consistency.
std::vector<edge<std::uint32_t>> with_random_weights(const edge_list& edges,
                                                     std::uint32_t max_weight,
                                                     std::uint64_t seed);

inline std::uint32_t weight_range(vertex_id n) {
  std::uint32_t b = 1;
  while ((n >> b) != 0) ++b;
  return b > 1 ? b - 1 : 1;
}

// ---- convenience builders used by tests, benches, and examples ----------

inline graph<empty_weight> rmat_symmetric(std::uint32_t scale,
                                          std::size_t num_edges,
                                          std::uint64_t seed) {
  return build_symmetric_graph<empty_weight>(vertex_id{1} << scale,
                                             rmat_edges(scale, num_edges, seed));
}

inline graph<empty_weight> rmat_directed(std::uint32_t scale,
                                         std::size_t num_edges,
                                         std::uint64_t seed) {
  return build_asymmetric_graph<empty_weight>(
      vertex_id{1} << scale, rmat_edges(scale, num_edges, seed));
}

inline graph<std::uint32_t> rmat_symmetric_weighted(std::uint32_t scale,
                                                    std::size_t num_edges,
                                                    std::uint64_t seed) {
  const vertex_id n = vertex_id{1} << scale;
  return build_symmetric_graph<std::uint32_t>(
      n, with_random_weights(rmat_edges(scale, num_edges, seed),
                             weight_range(n), seed + 1));
}

inline graph<empty_weight> torus3d_symmetric(vertex_id side) {
  const vertex_id n = side * side * side;
  return build_symmetric_graph<empty_weight>(n, torus3d_edges(side));
}

inline graph<std::uint32_t> torus3d_symmetric_weighted(vertex_id side,
                                                       std::uint64_t seed) {
  const vertex_id n = side * side * side;
  return build_symmetric_graph<std::uint32_t>(
      n, with_random_weights(torus3d_edges(side), weight_range(n), seed));
}

}  // namespace gbbs
