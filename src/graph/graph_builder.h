// Parallel CSR construction from edge lists: stable two-pass radix sort by
// (u, v), self-loop removal, duplicate-edge removal (first weight wins),
// optional symmetrization. O(m) work for word-sized vertex ids.
#pragma once

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "parlib/integer_sort.h"
#include "parlib/parallel.h"
#include "parlib/sequence_ops.h"

namespace gbbs {

namespace builder_internal {

// Sort edges lexicographically by (u, v) using two stable radix passes.
template <typename W>
void sort_edges(std::vector<edge<W>>& edges, vertex_id n) {
  std::size_t bits = 1;
  while ((static_cast<std::uint64_t>(n) >> bits) != 0) ++bits;
  parlib::integer_sort_inplace(
      edges, [](const edge<W>& e) { return e.v; }, bits);
  parlib::integer_sort_inplace(
      edges, [](const edge<W>& e) { return e.u; }, bits);
}

}  // namespace builder_internal

namespace internal {

template <typename W>
std::vector<edge<W>> clean_edges(std::vector<edge<W>> edges, vertex_id n) {
  // Drop edges with endpoints outside [0, n) up front: they would corrupt
  // the CSR offset array. Callers that want them must grow n instead (the
  // batch-dynamic subsystem does).
  edges = parlib::filter(
      edges, [n](const edge<W>& e) { return e.u < n && e.v < n; });
  builder_internal::sort_edges(edges, n);
  auto keep = parlib::tabulate<std::uint8_t>(edges.size(), [&](std::size_t i) {
    const auto& e = edges[i];
    if (e.u == e.v) return std::uint8_t{0};
    if (i > 0 && edges[i - 1].u == e.u && edges[i - 1].v == e.v)
      return std::uint8_t{0};
    return std::uint8_t{1};
  });
  return parlib::pack(edges, keep);
}

// CSR arrays from a clean sorted edge list.
template <typename W>
void csr_from_sorted(const std::vector<edge<W>>& edges, vertex_id n,
                     std::vector<edge_id>& offsets,
                     std::vector<vertex_id>& nghs, std::vector<W>& wghs) {
  const std::size_t m = edges.size();
  // Run starts give the offsets of vertices with edges; degree-0 vertices
  // inherit the next run start via a backward sweep.
  offsets.assign(static_cast<std::size_t>(n) + 1, 0);
  parlib::parallel_for(0, m, [&](std::size_t i) {
    if (i == 0 || edges[i - 1].u != edges[i].u) {
      offsets[edges[i].u] = i;
    }
  });
  offsets[n] = m;
  // Fill offsets of degree-0 vertices with the next run start (backward
  // max-scan); do it sequentially over n (cheap relative to sort).
  // A parallel-backward-scan version: offsets[v] = min over u >= v of start.
  {
    // mark which vertices have edges
    std::vector<std::uint8_t> has(n, 0);
    parlib::parallel_for(0, m, [&](std::size_t i) {
      if (i == 0 || edges[i - 1].u != edges[i].u) has[edges[i].u] = 1;
    });
    edge_id next = m;
    for (std::size_t v = n; v-- > 0;) {
      if (has[v]) {
        next = offsets[v];
      } else {
        offsets[v] = next;
      }
    }
  }
  nghs.resize(m);
  if constexpr (!std::is_same_v<W, empty_weight>) wghs.resize(m);
  parlib::parallel_for(0, m, [&](std::size_t i) {
    nghs[i] = edges[i].v;
    if constexpr (!std::is_same_v<W, empty_weight>) wghs[i] = edges[i].w;
  });
}

// CSR arrays from an edge list in arbitrary order: sort by (u, v), then
// lay out. Shared by the asymmetric builder's in-CSR transpose and the
// dynamic subsystem's snapshot transpose.
template <typename W>
void csr_from_unsorted(std::vector<edge<W>> edges, vertex_id n,
                       std::vector<edge_id>& offsets,
                       std::vector<vertex_id>& nghs, std::vector<W>& wghs) {
  builder_internal::sort_edges(edges, n);
  csr_from_sorted(edges, n, offsets, nghs, wghs);
}

}  // namespace internal

// Build an undirected (symmetric) graph: every input edge is inserted in
// both directions, then cleaned. m counts directed edge slots (2x the number
// of undirected edges), matching the paper's convention for -Sym graphs.
template <typename W>
graph<W> build_symmetric_graph(vertex_id n, std::vector<edge<W>> edges) {
  const std::size_t m0 = edges.size();
  edges.resize(2 * m0);
  parlib::parallel_for(0, m0, [&](std::size_t i) {
    edges[m0 + i] = {edges[i].v, edges[i].u, edges[i].w};
  });
  auto clean = internal::clean_edges(std::move(edges), n);
  std::vector<edge_id> offsets;
  std::vector<vertex_id> nghs;
  std::vector<W> wghs;
  internal::csr_from_sorted(clean, n, offsets, nghs, wghs);
  return graph<W>(n, clean.size(), /*symmetric=*/true, std::move(offsets),
                  std::move(nghs), std::move(wghs));
}

// Build a directed (asymmetric) graph with both out- and in-CSR.
template <typename W>
graph<W> build_asymmetric_graph(vertex_id n, std::vector<edge<W>> edges) {
  auto clean = internal::clean_edges(std::move(edges), n);
  std::vector<edge_id> out_off, in_off;
  std::vector<vertex_id> out_ngh, in_ngh;
  std::vector<W> out_w, in_w;
  internal::csr_from_sorted(clean, n, out_off, out_ngh, out_w);
  // Transpose for the in-CSR.
  auto rev = parlib::tabulate<edge<W>>(clean.size(), [&](std::size_t i) {
    return edge<W>{clean[i].v, clean[i].u, clean[i].w};
  });
  internal::csr_from_unsorted(std::move(rev), n, in_off, in_ngh, in_w);
  return graph<W>(n, clean.size(), /*symmetric=*/false, std::move(out_off),
                  std::move(out_ngh), std::move(out_w), std::move(in_off),
                  std::move(in_ngh), std::move(in_w));
}

// Keep edges (u, ngh, w) with pred(u, ngh, w); returns a static CSR graph.
// This is the rebuild form of Ligra+'s pack (Section B) — used to direct
// graphs by degree for triangle counting and to drop matched / shortcut
// edges in MM and MSF. The source may be any graph_view model (a live
// dynamic graph or an overlay-fused serving view included): filtering
// reads only out-neighborhoods, so e.g. triangle counting on a dynamic
// view builds its rank-directed DAG straight from base ⊕ overlay without
// ever materializing the merged CSR.
template <typename G, typename F>
graph<typename G::weight_type> filter_graph(const G& g, const F& pred) {
  using W = typename G::weight_type;
  const vertex_id n = g.num_vertices();
  auto degs = parlib::tabulate<edge_id>(n, [&](std::size_t v) {
    return g.count_out(static_cast<vertex_id>(v), pred);
  });
  std::vector<edge_id> offsets(static_cast<std::size_t>(n) + 1);
  edge_id total = 0;
  {
    std::vector<edge_id> tmp = degs;
    total = parlib::scan_inplace(tmp);
    parlib::parallel_for(0, n, [&](std::size_t v) { offsets[v] = tmp[v]; });
    offsets[n] = total;
  }
  std::vector<vertex_id> nghs(total);
  std::vector<W> wghs;
  if constexpr (!std::is_same_v<W, empty_weight>) wghs.resize(total);
  parlib::parallel_for(0, n, [&](std::size_t v) {
    std::size_t k = offsets[v];
    g.map_out_neighbors_early_exit(static_cast<vertex_id>(v),
                       [&](vertex_id u, vertex_id ngh, W w) {
                         if (pred(u, ngh, w)) {
                           nghs[k] = ngh;
                           if constexpr (!std::is_same_v<W, empty_weight>) {
                             wghs[k] = w;
                           }
                           ++k;
                         }
                         return true;
                       });
  });
  // The filtered graph is generally not symmetric even if g was; we build it
  // as out-CSR-only and mark it symmetric so in_* calls alias out_*.
  // Callers (TC) only use out-neighborhoods.
  return graph<W>(n, total, /*symmetric=*/true, std::move(offsets),
                  std::move(nghs), std::move(wghs));
}

}  // namespace gbbs
