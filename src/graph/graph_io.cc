#include "graph/graph_io.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "graph/graph_builder.h"

namespace gbbs {

namespace {

constexpr std::uint64_t kBinaryMagic = 0x4742425347524150ULL;  // "GBBSGRAP"

template <typename W>
void write_adjacency_impl(const std::string& path, const graph<W>& g,
                          const char* header) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open " + path + " for writing");
  out << header << "\n" << g.num_vertices() << "\n" << g.num_edges() << "\n";
  edge_id off = 0;
  for (vertex_id v = 0; v < g.num_vertices(); ++v) {
    out << off << "\n";
    off += g.out_degree(v);
  }
  for (vertex_id v = 0; v < g.num_vertices(); ++v) {
    for (const vertex_id u : g.out_neighbors(v)) out << u << "\n";
  }
  if constexpr (!std::is_same_v<W, empty_weight>) {
    for (vertex_id v = 0; v < g.num_vertices(); ++v) {
      for (std::size_t j = 0; j < g.out_degree(v); ++j) {
        out << g.out_weight(v, j) << "\n";
      }
    }
  }
}

template <typename W>
graph<W> read_adjacency_impl(const std::string& path, bool symmetric,
                             const char* expected_header) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::string header;
  in >> header;
  if (header != expected_header) {
    throw std::runtime_error("bad header in " + path + ": " + header);
  }
  std::uint64_t n = 0, m = 0;
  in >> n >> m;
  std::vector<edge_id> offsets(n + 1);
  for (std::uint64_t v = 0; v < n; ++v) in >> offsets[v];
  offsets[n] = m;
  std::vector<vertex_id> nghs(m);
  for (std::uint64_t e = 0; e < m; ++e) in >> nghs[e];
  std::vector<W> wghs;
  if constexpr (!std::is_same_v<W, empty_weight>) {
    wghs.resize(m);
    for (std::uint64_t e = 0; e < m; ++e) in >> wghs[e];
  }
  if (!in) throw std::runtime_error("truncated graph file " + path);
  // Rebuild through the edge-list path so invariants (sorted, deduped,
  // in-CSR for asymmetric) hold regardless of the file's ordering.
  std::vector<edge<W>> edges(m);
  for (std::uint64_t v = 0; v < n; ++v) {
    for (edge_id e = offsets[v]; e < offsets[v + 1]; ++e) {
      if constexpr (std::is_same_v<W, empty_weight>) {
        edges[e] = {static_cast<vertex_id>(v), nghs[e], {}};
      } else {
        edges[e] = {static_cast<vertex_id>(v), nghs[e], wghs[e]};
      }
    }
  }
  if (symmetric) {
    return build_symmetric_graph<W>(static_cast<vertex_id>(n),
                                    std::move(edges));
  }
  return build_asymmetric_graph<W>(static_cast<vertex_id>(n),
                                   std::move(edges));
}

template <typename T>
void write_pod(std::ofstream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
void write_vec(std::ofstream& out, const std::vector<T>& v) {
  const std::uint64_t len = v.size();
  write_pod(out, len);
  out.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(len * sizeof(T)));
}

template <typename T>
T read_pod(std::ifstream& in) {
  T v{};
  in.read(reinterpret_cast<char*>(&v), sizeof(T));
  return v;
}

template <typename T>
std::vector<T> read_vec(std::ifstream& in) {
  const auto len = read_pod<std::uint64_t>(in);
  std::vector<T> v(len);
  in.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(len * sizeof(T)));
  return v;
}

template <typename W>
void write_binary_impl(const std::string& path, const graph<W>& g) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot open " + path + " for writing");
  write_pod(out, kBinaryMagic);
  write_pod<std::uint64_t>(out, g.num_vertices());
  write_pod<std::uint64_t>(out, g.num_edges());
  const bool weighted = !std::is_same_v<W, empty_weight>;
  write_pod<std::uint8_t>(out, weighted ? 1 : 0);
  std::vector<edge_id> offsets(static_cast<std::size_t>(g.num_vertices()) + 1);
  edge_id off = 0;
  for (vertex_id v = 0; v < g.num_vertices(); ++v) {
    offsets[v] = off;
    off += g.out_degree(v);
  }
  offsets[g.num_vertices()] = off;
  write_vec(out, offsets);
  std::vector<vertex_id> nghs;
  nghs.reserve(off);
  for (vertex_id v = 0; v < g.num_vertices(); ++v) {
    const auto span = g.out_neighbors(v);
    nghs.insert(nghs.end(), span.begin(), span.end());
  }
  write_vec(out, nghs);
  if constexpr (!std::is_same_v<W, empty_weight>) {
    std::vector<W> wghs;
    wghs.reserve(off);
    for (vertex_id v = 0; v < g.num_vertices(); ++v) {
      for (std::size_t j = 0; j < g.out_degree(v); ++j) {
        wghs.push_back(g.out_weight(v, j));
      }
    }
    write_vec(out, wghs);
  }
}

template <typename W>
graph<W> read_binary_impl(const std::string& path, bool symmetric) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  if (read_pod<std::uint64_t>(in) != kBinaryMagic) {
    throw std::runtime_error("bad magic in " + path);
  }
  const auto n = read_pod<std::uint64_t>(in);
  const auto m = read_pod<std::uint64_t>(in);
  const auto weighted = read_pod<std::uint8_t>(in);
  if (weighted != (std::is_same_v<W, empty_weight> ? 0 : 1)) {
    throw std::runtime_error("weightedness mismatch in " + path);
  }
  auto offsets = read_vec<edge_id>(in);
  auto nghs = read_vec<vertex_id>(in);
  std::vector<W> wghs;
  if constexpr (!std::is_same_v<W, empty_weight>) wghs = read_vec<W>(in);
  if (!in) throw std::runtime_error("truncated graph file " + path);
  std::vector<edge<W>> edges(m);
  for (std::uint64_t v = 0; v < n; ++v) {
    for (edge_id e = offsets[v]; e < offsets[v + 1]; ++e) {
      if constexpr (std::is_same_v<W, empty_weight>) {
        edges[e] = {static_cast<vertex_id>(v), nghs[e], {}};
      } else {
        edges[e] = {static_cast<vertex_id>(v), nghs[e], wghs[e]};
      }
    }
  }
  if (symmetric) {
    return build_symmetric_graph<W>(static_cast<vertex_id>(n),
                                    std::move(edges));
  }
  return build_asymmetric_graph<W>(static_cast<vertex_id>(n),
                                   std::move(edges));
}

}  // namespace

void write_adjacency_graph(const std::string& path,
                           const graph<empty_weight>& g) {
  write_adjacency_impl(path, g, "AdjacencyGraph");
}

void write_adjacency_graph(const std::string& path,
                           const graph<std::uint32_t>& g) {
  write_adjacency_impl(path, g, "WeightedAdjacencyGraph");
}

graph<empty_weight> read_adjacency_graph(const std::string& path,
                                         bool symmetric) {
  return read_adjacency_impl<empty_weight>(path, symmetric, "AdjacencyGraph");
}

graph<std::uint32_t> read_weighted_adjacency_graph(const std::string& path,
                                                   bool symmetric) {
  return read_adjacency_impl<std::uint32_t>(path, symmetric,
                                            "WeightedAdjacencyGraph");
}

void write_binary_graph(const std::string& path,
                        const graph<empty_weight>& g) {
  write_binary_impl(path, g);
}

void write_binary_graph(const std::string& path,
                        const graph<std::uint32_t>& g) {
  write_binary_impl(path, g);
}

graph<empty_weight> read_binary_graph(const std::string& path,
                                      bool symmetric) {
  return read_binary_impl<empty_weight>(path, symmetric);
}

graph<std::uint32_t> read_weighted_binary_graph(const std::string& path,
                                                bool symmetric) {
  return read_binary_impl<std::uint32_t>(path, symmetric);
}

}  // namespace gbbs
