// edgeMap (Section 3) with Ligra's direction optimization and the
// cache-friendly blocked sparse traversal of Section B (Algorithm 15).
//
// Every traversal here is written against the graph_view concept
// (graph_view.h), not the concrete CSR: any model — static CSR, compressed
// CSR, the live batch-dynamic graph, or the serving layer's overlay-fused
// dynamic_view — drives the same four modes. The direction threshold uses
// the view's *live* num_edges(), which for delta-overlaid models includes
// overlay inserts and excludes erases (a base-only count would skew the
// dense/sparse switch as the overlay grows).
//
// The functor F supplies:
//   bool update(u, v, w)        — applied in dense mode (one writer per v);
//   bool update_atomic(u, v, w) — applied in sparse mode (concurrent);
//   bool cond(v)                — whether v can still be acquired.
// Returning true from update means "v joins the output frontier".
//
// Modes:
//  * dense    — over all v with cond(v), scan in-neighbors sequentially and
//               stop early once cond(v) flips (the paper's optimized dense
//               traversal trading O(log n) depth for O(in-deg(v))).
//  * sparse   — edgeMapSparse: one output slot per incident edge, then
//               filter. Kept (a) as the baseline Table 6 compares against,
//               and (b) selectable via edge_map_options.
//  * blocked  — edgeMapBlocked (Algorithm 15): logically split the incident
//               edges into bsize-blocks by binary-searching the prefix-summed
//               degree array, pack live neighbors block-locally, then one
//               scan + gather. Writes O(live neighbors) slots instead of
//               O(sum of degrees). Default sparse mode.
//
// The software counters referenced by bench_locality are updated once per
// call (never per edge).
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <optional>
#include <vector>

#include "graph/graph.h"
#include "graph/graph_view.h"
#include "graph/vertex_subset.h"
#include "parlib/atomics.h"
#include "parlib/cancellation.h"
#include "parlib/counters.h"
#include "parlib/parallel.h"
#include "parlib/sequence_ops.h"

namespace gbbs {

struct edge_map_options {
  // Dense/sparse switch threshold; <0 means m/20 (Ligra's default).
  long threshold = -1;
  // Force a particular sparse implementation (both write the same frontier).
  bool use_blocked = true;
  // Disable the dense mode entirely (used by the locality bench to compare
  // the two sparse traversals head-to-head, Section 6 "Locality").
  bool allow_dense = true;
  // Dense-forward (Ligra): in dense mode, iterate the OUT-edges of frontier
  // members (using update_atomic) instead of scanning every vertex's
  // in-edges. Wins when the frontier is dense but few targets still satisfy
  // cond (no early-exit benefit to give up).
  bool dense_forward = false;
};

namespace internal {

inline constexpr std::size_t kEdgeMapBlock = 4096;

template <graph_view Graph>
std::uint64_t frontier_degree_sum(const Graph& g, const vertex_subset& vs) {
  if (vs.is_dense()) {
    const auto& d = vs.dense();
    auto degs = parlib::tabulate<std::uint64_t>(
        g.num_vertices(), [&](std::size_t v) {
          return d[v] ? g.out_degree(static_cast<vertex_id>(v)) : 0;
        });
    return parlib::reduce_add(degs);
  }
  auto degs = parlib::map(vs.sparse(), [&](vertex_id v) {
    return static_cast<std::uint64_t>(g.out_degree(v));
  });
  return parlib::reduce_add(degs);
}

// Dense traversal: for every v with cond(v), scan in-neighbors u; apply
// update(u, v, w) for u in the frontier; stop once cond(v) is false.
template <graph_view Graph, typename F>
vertex_subset edge_map_dense(const Graph& g, vertex_subset& frontier, F& f) {
  frontier.to_dense();
  const auto& in_frontier = frontier.dense();
  const vertex_id n = g.num_vertices();
  std::vector<std::uint8_t> next(n, 0);
  parlib::parallel_for(0, n, [&](std::size_t vi) {
    // Cancellation: flag-only per vertex, full (deadline) poll every 256th —
    // a cancelled traversal leaves `next` partially set; the caller discards.
    if ((vi & 255u) == 0 ? parlib::cancel::poll() : parlib::cancel::cancelled())
      return;
    const auto v = static_cast<vertex_id>(vi);
    if (!f.cond(v)) return;
    g.map_in_neighbors_early_exit(v, [&](vertex_id dst, vertex_id u, auto w) {
      if (in_frontier[u] && f.update(u, dst, w)) next[dst] = 1;
      return f.cond(dst);
    });
  });
  return vertex_subset(n, std::move(next));
}

// Dense-forward traversal (Ligra): parallel over frontier members (read
// from the dense bitmap), scanning their out-edges with the atomic update.
template <graph_view Graph, typename F>
vertex_subset edge_map_dense_forward(const Graph& g, vertex_subset& frontier,
                                     F& f) {
  frontier.to_dense();
  const auto& in_frontier = frontier.dense();
  const vertex_id n = g.num_vertices();
  std::vector<std::uint8_t> next(n, 0);
  parlib::parallel_for(0, n, [&](std::size_t ui) {
    if ((ui & 255u) == 0 ? parlib::cancel::poll() : parlib::cancel::cancelled())
      return;
    if (!in_frontier[ui]) return;
    const auto u = static_cast<vertex_id>(ui);
    g.map_out_neighbors(u, [&](vertex_id, vertex_id v, auto w) {
      if (f.cond(v) && f.update_atomic(u, v, w)) {
        if (!next[v]) parlib::test_and_set(&next[v]);
      }
    });
  });
  return vertex_subset(n, std::move(next));
}

// edgeMapSparse: writes one slot per incident edge, then filters out the
// non-live ones.
template <graph_view Graph, typename F>
vertex_subset edge_map_sparse(const Graph& g, vertex_subset& frontier, F& f) {
  frontier.to_sparse();
  const auto& ids = frontier.sparse();
  auto offsets = parlib::map(ids, [&](vertex_id v) {
    return static_cast<std::uint64_t>(g.out_degree(v));
  });
  const std::uint64_t total = parlib::scan_inplace(offsets);
  std::vector<vertex_id> out(total, kNoVertex);
  parlib::parallel_for(0, ids.size(), [&](std::size_t i) {
    // Skipped slots stay kNoVertex and are filtered out below.
    if ((i & 63u) == 0 ? parlib::cancel::poll() : parlib::cancel::cancelled())
      return;
    const vertex_id u = ids[i];
    std::uint64_t k = offsets[i];
    g.map_out_neighbors_range(u, 0, g.out_degree(u),
                    [&](vertex_id, vertex_id v, auto w) {
                      out[k] = (f.cond(v) && f.update_atomic(u, v, w))
                                   ? v
                                   : kNoVertex;
                      ++k;
                    });
  });
  auto& ctr = parlib::event_counters::global();
  ctr.edgemap_edges_examined.fetch_add(total, std::memory_order_relaxed);
  ctr.edgemap_slots_written.fetch_add(total, std::memory_order_relaxed);
  auto live = parlib::filter(out, [](vertex_id v) { return v != kNoVertex; });
  return vertex_subset(g.num_vertices(), std::move(live));
}

// edgeMapBlocked (Algorithm 15).
template <graph_view Graph, typename F>
vertex_subset edge_map_blocked(const Graph& g, vertex_subset& frontier,
                               F& f) {
  frontier.to_sparse();
  const auto& ids = frontier.sparse();
  // O = prefix sums of frontier degrees.
  auto offsets = parlib::map(ids, [&](vertex_id v) {
    return static_cast<std::uint64_t>(g.out_degree(v));
  });
  const std::uint64_t total = parlib::scan_inplace(offsets);
  if (total == 0) return vertex_subset(g.num_vertices());
  const std::size_t nblocks = (total - 1) / kEdgeMapBlock + 1;
  // B[i] = index of the frontier vertex containing edge i * bsize.
  std::vector<std::size_t> block_vertex(nblocks + 1);
  parlib::parallel_for(0, nblocks, [&](std::size_t b) {
    const std::uint64_t edge_lo = b * kEdgeMapBlock;
    // Last offset <= edge_lo.
    const auto it =
        std::upper_bound(offsets.begin(), offsets.end(), edge_lo);
    block_vertex[b] = static_cast<std::size_t>(it - offsets.begin()) - 1;
  });
  block_vertex[nblocks] = ids.size();
  std::vector<vertex_id> scratch(total);
  std::vector<std::size_t> live_counts(nblocks);
  parlib::parallel_for(
      0, nblocks,
      [&](std::size_t b) {
        // One deadline poll per 4K-edge block; a cancelled block contributes
        // nothing to the output frontier.
        if (parlib::cancel::poll()) {
          live_counts[b] = 0;
          return;
        }
        const std::uint64_t edge_lo = b * kEdgeMapBlock;
        const std::uint64_t edge_hi = std::min<std::uint64_t>(
            total, edge_lo + kEdgeMapBlock);
        std::size_t out_k = edge_lo;
        std::size_t vi = block_vertex[b];
        std::uint64_t e = edge_lo;
        while (e < edge_hi && vi < ids.size()) {
          const vertex_id u = ids[vi];
          const std::uint64_t v_start = offsets[vi];
          const std::uint64_t v_end =
              v_start + g.out_degree(u);
          const std::uint64_t lo = e - v_start;
          const std::uint64_t hi = std::min(edge_hi, v_end) - v_start;
          g.map_out_neighbors_range(u, lo, hi, [&](vertex_id, vertex_id v, auto w) {
            if (f.cond(v) && f.update_atomic(u, v, w)) {
              scratch[out_k++] = v;
            }
          });
          e = v_start + hi;
          ++vi;
        }
        live_counts[b] = out_k - edge_lo;
      },
      1);
  std::vector<std::size_t> out_offsets = live_counts;
  const std::size_t n_live = parlib::scan_inplace(out_offsets);
  std::vector<vertex_id> live(n_live);
  parlib::parallel_for(0, nblocks, [&](std::size_t b) {
    std::copy(scratch.begin() + b * kEdgeMapBlock,
              scratch.begin() + b * kEdgeMapBlock + live_counts[b],
              live.begin() + out_offsets[b]);
  });
  auto& ctr = parlib::event_counters::global();
  ctr.edgemap_edges_examined.fetch_add(total, std::memory_order_relaxed);
  ctr.edgemap_slots_written.fetch_add(n_live, std::memory_order_relaxed);
  return vertex_subset(g.num_vertices(), std::move(live));
}

}  // namespace internal

template <graph_view Graph, typename F>
vertex_subset edge_map(const Graph& g, vertex_subset& frontier, F f,
                       edge_map_options opts = {}) {
  // Cancellation / deadline check at every round boundary: a cancelled
  // computation's next edge_map returns an empty frontier, which terminates
  // any frontier-driven loop (BFS, BC, …) naturally.
  if (parlib::cancel::poll()) return vertex_subset(g.num_vertices());
  if (frontier.empty()) return vertex_subset(g.num_vertices());
  const std::uint64_t threshold =
      opts.threshold >= 0 ? static_cast<std::uint64_t>(opts.threshold)
                          : g.num_edges() / 20;
  const std::uint64_t deg_sum = internal::frontier_degree_sum(g, frontier);
  if (opts.allow_dense && frontier.size() + deg_sum > threshold) {
    if (opts.dense_forward) {
      return internal::edge_map_dense_forward(g, frontier, f);
    }
    return internal::edge_map_dense(g, frontier, f);
  }
  if (opts.use_blocked) return internal::edge_map_blocked(g, frontier, f);
  return internal::edge_map_sparse(g, frontier, f);
}

// edgeMapData (Julienne): like the blocked sparse edgeMap, but
// f.update_atomic returns std::optional<D>; engaged results are collected as
// (vertex, D) pairs. Used by wBFS to ship (vertex, new-bucket) pairs.
// use_blocked=false selects the unblocked edgeMapSparse-style traversal
// (one slot written per incident edge) — the Table 6 baseline.
template <typename D, graph_view Graph, typename F>
vertex_subset_data<D> edge_map_data(const Graph& g, vertex_subset& frontier,
                                    F f, bool use_blocked = true) {
  using KV = std::pair<vertex_id, D>;
  if (parlib::cancel::poll()) return vertex_subset_data<D>(g.num_vertices());
  if (frontier.empty()) return vertex_subset_data<D>(g.num_vertices());
  frontier.to_sparse();
  if (!use_blocked) {
    const auto& sids = frontier.sparse();
    auto soffsets = parlib::map(sids, [&](vertex_id v) {
      return static_cast<std::uint64_t>(g.out_degree(v));
    });
    const std::uint64_t stotal = parlib::scan_inplace(soffsets);
    std::vector<std::optional<KV>> slots(stotal);
    parlib::parallel_for(0, sids.size(), [&](std::size_t i) {
      // Skipped slots stay disengaged and drop out in map_maybe below.
      if ((i & 63u) == 0 ? parlib::cancel::poll() : parlib::cancel::cancelled())
        return;
      const vertex_id u = sids[i];
      std::uint64_t k = soffsets[i];
      g.map_out_neighbors_range(u, 0, g.out_degree(u),
                      [&](vertex_id, vertex_id v, auto w) {
                        if (f.cond(v)) {
                          if (std::optional<D> r = f.update_atomic(u, v, w)) {
                            slots[k] = KV{v, *r};
                          }
                        }
                        ++k;
                      });
    });
    auto& ctr = parlib::event_counters::global();
    ctr.edgemap_edges_examined.fetch_add(stotal, std::memory_order_relaxed);
    ctr.edgemap_slots_written.fetch_add(stotal, std::memory_order_relaxed);
    auto live = parlib::map_maybe(slots, [](const std::optional<KV>& s) {
      return s;
    });
    return vertex_subset_data<D>(g.num_vertices(), std::move(live));
  }
  const auto& ids = frontier.sparse();
  auto offsets = parlib::map(ids, [&](vertex_id v) {
    return static_cast<std::uint64_t>(g.out_degree(v));
  });
  const std::uint64_t total = parlib::scan_inplace(offsets);
  if (total == 0) return vertex_subset_data<D>(g.num_vertices());
  constexpr std::size_t kBlock = internal::kEdgeMapBlock;
  const std::size_t nblocks = (total - 1) / kBlock + 1;
  std::vector<std::size_t> block_vertex(nblocks + 1);
  parlib::parallel_for(0, nblocks, [&](std::size_t b) {
    const std::uint64_t edge_lo = b * kBlock;
    const auto it =
        std::upper_bound(offsets.begin(), offsets.end(), edge_lo);
    block_vertex[b] = static_cast<std::size_t>(it - offsets.begin()) - 1;
  });
  block_vertex[nblocks] = ids.size();
  std::vector<KV> scratch(total);
  std::vector<std::size_t> live_counts(nblocks);
  parlib::parallel_for(
      0, nblocks,
      [&](std::size_t b) {
        if (parlib::cancel::poll()) {
          live_counts[b] = 0;
          return;
        }
        const std::uint64_t edge_lo = b * kBlock;
        const std::uint64_t edge_hi =
            std::min<std::uint64_t>(total, edge_lo + kBlock);
        std::size_t out_k = edge_lo;
        std::size_t vi = block_vertex[b];
        std::uint64_t e = edge_lo;
        while (e < edge_hi && vi < ids.size()) {
          const vertex_id u = ids[vi];
          const std::uint64_t v_start = offsets[vi];
          const std::uint64_t v_end = v_start + g.out_degree(u);
          const std::uint64_t lo = e - v_start;
          const std::uint64_t hi = std::min(edge_hi, v_end) - v_start;
          g.map_out_neighbors_range(u, lo, hi, [&](vertex_id, vertex_id v, auto w) {
            if (f.cond(v)) {
              if (std::optional<D> r = f.update_atomic(u, v, w)) {
                scratch[out_k++] = {v, *r};
              }
            }
          });
          e = v_start + hi;
          ++vi;
        }
        live_counts[b] = out_k - edge_lo;
      },
      1);
  std::vector<std::size_t> out_offsets = live_counts;
  const std::size_t n_live = parlib::scan_inplace(out_offsets);
  std::vector<KV> live(n_live);
  parlib::parallel_for(0, nblocks, [&](std::size_t b) {
    std::copy(scratch.begin() + b * kBlock,
              scratch.begin() + b * kBlock + live_counts[b],
              live.begin() + out_offsets[b]);
  });
  auto& ctr = parlib::event_counters::global();
  ctr.edgemap_edges_examined.fetch_add(total, std::memory_order_relaxed);
  ctr.edgemap_slots_written.fetch_add(n_live, std::memory_order_relaxed);
  return vertex_subset_data<D>(g.num_vertices(), std::move(live));
}

}  // namespace gbbs
