// Deterministic fault injection: a registry of named failpoints that tests
// and CI use to drive the serving engine into every degraded state
// reproducibly.
//
// A failpoint is a named site in the code (the taxonomy below is a stable
// interface — see README "Robustness") that can be armed to fire:
//
//   serve.exec.delay        — latency injected before a query executes
//   serve.submit.saturate   — submit behaves as if the queue were full
//   store.pin.fail          — snapshot pin behaves as if nothing is published
//   ingest.publish.delay    — latency injected inside snapshot publication
//   ingest.shard.apply.delay — latency injected before one shard worker's
//                             batch apply (sharded_ingest.h): the hit shard
//                             straggles, its clock entry lags, and the
//                             composite version must hold back until it
//                             catches up
//
// Arming is programmatic (tests) or via the environment (CI):
//
//   GBBS_FAILPOINTS="serve.exec.delay=p:0.25:500;store.pin.fail=n:100"
//   GBBS_FAILPOINT_SEED=42
//
// Spec grammar per ';'-separated entry: name=mode[:x][:arg_us] where mode is
// `off`, `always[:arg_us]`, `p:<probability>[:arg_us]` (fires on that
// fraction of hits), or `n:<N>[:arg_us]` (fires on every Nth hit). arg_us is
// the payload for delay-type points (microseconds to sleep).
//
// Determinism: a probabilistic failpoint decides from a hash of
// (seed, name, per-point hit index) — never from a global RNG or the clock —
// so the same seed and the same hit sequence produce the same trigger
// pattern, run after run, regardless of thread interleaving at *other*
// failpoints.
//
// Cost: a disarmed failpoint is one relaxed atomic load per hit; compiling
// with GBBS_NO_FAILPOINTS (cmake -DGBBS_FAILPOINTS=OFF) removes the sites
// entirely. Trigger counts are exported through the obs registry as
// `robust.failpoint.<name>` counters.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "obs/registry.h"

namespace gbbs::robust {

enum class failpoint_mode : std::uint8_t { off, always, probability, every_nth };

namespace internal {

// splitmix64 — the decision hash. Statistically fine for thresholding and
// fully determined by its input.
inline std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

inline std::uint64_t hash_name(const std::string& s) {
  std::uint64_t h = 0xCBF29CE484222325ULL;  // FNV-1a
  for (char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

}  // namespace internal

class failpoint {
 public:
  explicit failpoint(std::uint64_t name_hash) : name_hash_(name_hash) {}
  failpoint(const failpoint&) = delete;
  failpoint& operator=(const failpoint&) = delete;

  // One hit at the instrumented site; returns whether the point fires.
  // Disarmed: a single relaxed load.
  bool hit(std::uint64_t seed) {
    const auto mode =
        static_cast<failpoint_mode>(mode_.load(std::memory_order_relaxed));
    if (mode == failpoint_mode::off) return false;
    const std::uint64_t n = hits_.fetch_add(1, std::memory_order_relaxed);
    bool fire = false;
    switch (mode) {
      case failpoint_mode::always:
        fire = true;
        break;
      case failpoint_mode::probability:
        fire = internal::mix64(seed ^ name_hash_ ^ n) <
               threshold_.load(std::memory_order_relaxed);
        break;
      case failpoint_mode::every_nth: {
        const std::uint64_t k = nth_.load(std::memory_order_relaxed);
        fire = k != 0 && (n + 1) % k == 0;
        break;
      }
      case failpoint_mode::off:
        break;
    }
    if (fire) triggers_.fetch_add(1, std::memory_order_relaxed);
    return fire;
  }

  // Payload for delay-type points: microseconds to sleep when fired.
  std::uint64_t arg_us() const {
    return arg_us_.load(std::memory_order_relaxed);
  }

  void configure(failpoint_mode mode, double probability, std::uint64_t nth,
                 std::uint64_t arg_us) {
    if (probability < 0.0) probability = 0.0;
    if (probability > 1.0) probability = 1.0;
    threshold_.store(
        probability >= 1.0
            ? ~0ULL
            : static_cast<std::uint64_t>(
                  probability * 18446744073709551616.0 /* 2^64 */),
        std::memory_order_relaxed);
    nth_.store(nth, std::memory_order_relaxed);
    arg_us_.store(arg_us, std::memory_order_relaxed);
    // Mode last: a hit racing the arm sees consistent parameters.
    mode_.store(static_cast<std::uint8_t>(mode), std::memory_order_release);
  }

  void disarm() {
    mode_.store(static_cast<std::uint8_t>(failpoint_mode::off),
                std::memory_order_relaxed);
  }
  void reset_counts() {
    hits_.store(0, std::memory_order_relaxed);
    triggers_.store(0, std::memory_order_relaxed);
  }

  std::uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  std::uint64_t triggers() const {
    return triggers_.load(std::memory_order_relaxed);
  }

 private:
  const std::uint64_t name_hash_;
  std::atomic<std::uint8_t> mode_{
      static_cast<std::uint8_t>(failpoint_mode::off)};
  std::atomic<std::uint64_t> threshold_{0};  // fire iff hash < threshold
  std::atomic<std::uint64_t> nth_{0};
  std::atomic<std::uint64_t> arg_us_{0};
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> triggers_{0};
};

class registry {
 public:
  static registry& instance() {
    static registry* r = [] {
      auto* reg = new registry();
      // Trigger counts surface wherever the obs registry is rendered
      // (-metrics-json, the Prometheus endpoint). Leaky singleton, so the
      // captured pointer never dangles.
      obs::registry::global().add_callback([reg](obs::metrics_snapshot& s) {
        for (const auto& [name, count] : reg->trigger_counts()) {
          s.add_counter("robust.failpoint." + name, count);
        }
      });
      return reg;
    }();
    return *r;
  }

  // Get-or-create. References are stable for the process lifetime; a point
  // named in GBBS_FAILPOINTS is armed the moment its site first reaches it.
  failpoint& get(const std::string& name) {
    std::lock_guard<std::mutex> lk(mutex_);
    auto& slot = points_[name];
    if (slot == nullptr) {
      slot = std::make_unique<failpoint>(internal::hash_name(name));
      const auto it = env_specs_.find(name);
      if (it != env_specs_.end()) apply_spec(*slot, it->second);
    }
    return *slot;
  }

  // Programmatic arming (tests). Creates the point if its site hasn't been
  // reached yet.
  void configure(const std::string& name, failpoint_mode mode,
                 double probability = 1.0, std::uint64_t nth = 0,
                 std::uint64_t arg_us = 0) {
    get(name).configure(mode, probability, nth, arg_us);
  }

  // Parse-and-arm one `name=spec` entry (the env grammar). Returns false on
  // a malformed spec (the point is left untouched).
  bool configure_from_entry(const std::string& entry) {
    const auto eq = entry.find('=');
    if (eq == std::string::npos || eq == 0) return false;
    parsed p;
    if (!parse_spec(entry.substr(eq + 1), p)) return false;
    get(entry.substr(0, eq)).configure(p.mode, p.probability, p.nth, p.arg_us);
    return true;
  }

  // Disarm everything and zero all hit/trigger counters; forget env specs so
  // re-created points stay off. Tests call this between cases.
  void reset() {
    std::lock_guard<std::mutex> lk(mutex_);
    env_specs_.clear();
    for (auto& [name, fp] : points_) {
      fp->disarm();
      fp->reset_counts();
    }
  }

  void set_seed(std::uint64_t seed) {
    seed_.store(seed, std::memory_order_relaxed);
  }
  std::uint64_t seed() const { return seed_.load(std::memory_order_relaxed); }

  std::vector<std::pair<std::string, std::uint64_t>> trigger_counts() const {
    std::vector<std::pair<std::string, std::uint64_t>> out;
    std::lock_guard<std::mutex> lk(mutex_);
    out.reserve(points_.size());
    for (const auto& [name, fp] : points_) {
      out.emplace_back(name, fp->triggers());
    }
    return out;
  }

 private:
  registry() {
    if (const char* env = std::getenv("GBBS_FAILPOINT_SEED")) {
      seed_.store(std::strtoull(env, nullptr, 10), std::memory_order_relaxed);
    }
    if (const char* env = std::getenv("GBBS_FAILPOINTS")) {
      // Stash specs; applied lazily as each named point is created so the
      // env can arm points whose translation units haven't run yet.
      std::string all(env);
      std::size_t start = 0;
      while (start < all.size()) {
        std::size_t end = all.find(';', start);
        if (end == std::string::npos) end = all.size();
        const std::string entry = all.substr(start, end - start);
        const auto eq = entry.find('=');
        if (eq != std::string::npos && eq > 0) {
          env_specs_[entry.substr(0, eq)] = entry.substr(eq + 1);
        }
        start = end + 1;
      }
    }
  }

  struct parsed {
    failpoint_mode mode = failpoint_mode::off;
    double probability = 1.0;
    std::uint64_t nth = 0;
    std::uint64_t arg_us = 0;
  };

  static bool parse_spec(const std::string& spec, parsed& out) {
    std::vector<std::string> parts;
    std::size_t start = 0;
    while (start <= spec.size()) {
      std::size_t end = spec.find(':', start);
      if (end == std::string::npos) end = spec.size();
      parts.push_back(spec.substr(start, end - start));
      start = end + 1;
    }
    if (parts.empty()) return false;
    const std::string& mode = parts[0];
    if (mode == "off") {
      out.mode = failpoint_mode::off;
      return parts.size() == 1;
    }
    if (mode == "always") {
      out.mode = failpoint_mode::always;
      if (parts.size() > 2) return false;
      if (parts.size() == 2) out.arg_us = std::strtoull(parts[1].c_str(),
                                                        nullptr, 10);
      return true;
    }
    if (mode == "p") {
      out.mode = failpoint_mode::probability;
      if (parts.size() < 2 || parts.size() > 3) return false;
      out.probability = std::strtod(parts[1].c_str(), nullptr);
      if (parts.size() == 3) out.arg_us = std::strtoull(parts[2].c_str(),
                                                        nullptr, 10);
      return true;
    }
    if (mode == "n") {
      out.mode = failpoint_mode::every_nth;
      if (parts.size() < 2 || parts.size() > 3) return false;
      out.nth = std::strtoull(parts[1].c_str(), nullptr, 10);
      if (parts.size() == 3) out.arg_us = std::strtoull(parts[2].c_str(),
                                                        nullptr, 10);
      return true;
    }
    return false;
  }

  static void apply_spec(failpoint& fp, const std::string& spec) {
    parsed p;
    if (parse_spec(spec, p)) fp.configure(p.mode, p.probability, p.nth,
                                          p.arg_us);
  }

  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<failpoint>> points_;
  std::map<std::string, std::string> env_specs_;
  std::atomic<std::uint64_t> seed_{0x5EED5EED5EED5EEDULL};
};

}  // namespace gbbs::robust

// Site macros. Each call-site resolves its failpoint once (thread-safe
// static-local), so a disarmed point costs one relaxed load per pass.
// GBBS_NO_FAILPOINTS compiles the sites out entirely.
#if defined(GBBS_NO_FAILPOINTS)

#define GBBS_FAILPOINT_TRIGGERED(name) false
#define GBBS_FAILPOINT_SLEEP(name) ((void)0)

#else

// True iff the named point fires on this hit.
#define GBBS_FAILPOINT_TRIGGERED(name)                               \
  ([]() -> bool {                                                    \
    auto& gbbs_fp_reg_ = ::gbbs::robust::registry::instance();       \
    static ::gbbs::robust::failpoint& gbbs_fp_ =                     \
        gbbs_fp_reg_.get(name);                                      \
    return gbbs_fp_.hit(gbbs_fp_reg_.seed());                        \
  }())

// Sleep the point's arg_us payload when it fires (delay-type points).
#define GBBS_FAILPOINT_SLEEP(name)                                   \
  do {                                                               \
    auto& gbbs_fp_reg_ = ::gbbs::robust::registry::instance();       \
    static ::gbbs::robust::failpoint& gbbs_fp_ =                     \
        gbbs_fp_reg_.get(name);                                      \
    if (gbbs_fp_.hit(gbbs_fp_reg_.seed())) {                         \
      std::this_thread::sleep_for(                                   \
          std::chrono::microseconds(gbbs_fp_.arg_us()));             \
    }                                                                \
  } while (0)

#endif  // GBBS_NO_FAILPOINTS
