// dynamic_view: the serving layer's overlay-fused graph_view model.
//
// Wraps an immutable overlay_snapshot (shared base CSR + persistent
// per-vertex delta index) and exposes the full neighborhood-iteration
// concept of graph_view.h, so edge_map and the whole analytics suite
// (BFS, k-core, triangles, connectivity) traverse base ⊕ overlay *fused*,
// neighbor by neighbor — the merged CSR is never materialized on the
// analytics path. This is what lets the query engine serve whole-graph
// analytics at point-read freshness: the same index refreshed after every
// ingest backs both.
//
// Serving graphs are symmetric, so the in-side aliases the out-side (the
// dense edgeMap's in-neighbor scan needs no separate in-edge overlay
// here; the live asymmetric case is handled by dynamic_graph itself).
//
// A dynamic_view holds a shared handle on its snapshot: it stays valid
// for as long as the view lives, across publishes, compactions, and
// writer teardown. Copies are O(1).
#pragma once

#include <cstddef>
#include <memory>
#include <utility>

#include "graph/graph_view.h"
#include "serve/overlay_view.h"

namespace gbbs::serve {

template <typename W>
class dynamic_view {
 public:
  using weight_type = W;

  dynamic_view() = default;
  explicit dynamic_view(std::shared_ptr<const overlay_snapshot<W>> idx)
      : idx_(std::move(idx)) {}

  explicit operator bool() const { return idx_ != nullptr; }
  const overlay_snapshot<W>& index() const { return *idx_; }

  vertex_id num_vertices() const { return idx_->n; }
  // Live directed edge count, overlay included — what the dense/sparse
  // direction threshold of edge_map must see (a base-only count would
  // undercount by the overlay's net inserts).
  edge_id num_edges() const { return idx_->m; }
  bool symmetric() const { return true; }

  vertex_id out_degree(vertex_id v) const { return idx_->degree(v); }
  vertex_id in_degree(vertex_id v) const { return idx_->degree(v); }

  template <typename F>
  void map_out_neighbors(vertex_id v, const F& f) const {
    idx_->merge_row(v, [&](vertex_id ngh, W w) { f(v, ngh, w); });
  }

  template <typename F>
  void map_in_neighbors(vertex_id v, const F& f) const {
    map_out_neighbors(v, f);
  }

  template <typename F>
  void map_out_neighbors_early_exit(vertex_id v, const F& f) const {
    idx_->merge_row_early_exit(
        v, [&](vertex_id ngh, W w) { return f(v, ngh, w); });
  }

  template <typename F>
  void map_in_neighbors_early_exit(vertex_id v, const F& f) const {
    map_out_neighbors_early_exit(v, f);
  }

  template <typename F>
  void map_out_neighbors_range(vertex_id v, std::size_t j_lo,
                               std::size_t j_hi, const F& f) const {
    idx_->merge_row_range(v, j_lo, j_hi,
                          [&](vertex_id ngh, W w) { f(v, ngh, w); });
  }

  // filter_graph / contraction support.
  template <typename F>
  std::size_t count_out(vertex_id v, const F& pred) const {
    std::size_t c = 0;
    map_out_neighbors(v, [&](vertex_id a, vertex_id b, W w) {
      c += pred(a, b, w) ? 1 : 0;
    });
    return c;
  }

 private:
  std::shared_ptr<const overlay_snapshot<W>> idx_;
};

}  // namespace gbbs::serve

namespace gbbs {
static_assert(graph_view<serve::dynamic_view<empty_weight>>);
static_assert(graph_view<serve::dynamic_view<std::uint32_t>>);
}  // namespace gbbs
