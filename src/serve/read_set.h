// Read-set tracking for the serving-layer result cache (result_cache.h):
// a fixed bucket space over vertex ids, bitsets over it, and a recorder
// that captures which buckets a traversal actually read.
//
// The cache bucket space is deliberately *not* the overlay index's bucket
// array: that array is power-of-two sized per snapshot and regrows as the
// overlay grows, so its bucket ids are not comparable across epochs. The
// cache space is a fixed kCacheBuckets-way Fibonacci hash of the vertex
// id — stable for the process lifetime — so a read-set recorded against
// one snapshot intersects meaningfully with the touched-set of any later
// ingest batch. Precision is per-bucket (~|V| / kCacheBuckets vertices
// alias per bucket), which is the invalidation granularity: a batch
// touching an aliasing vertex invalidates a result that only read its
// bucket-mate. False invalidations cost a recompute; there are no false
// hits.
//
// Three pieces:
//   * bucket_set — a plain bitset over the bucket space plus an "all"
//     flag (whole-graph analytics read everything; connectivity answers
//     depend on edges anywhere, see result_cache.h). Single-threaded;
//     the immutable payload stored per cache entry.
//   * read_set_recorder — the concurrent write-side twin: relaxed
//     test-then-fetch_or bits, safe from every worker a parallel
//     traversal forks. Stack-allocated per executed query; snapshot()
//     distills it into a bucket_set once the traversal is done.
//   * recording_view<G> — wraps any graph_view model and records the
//     bucket of every vertex whose degree or neighborhood the algorithm
//     reads, then forwards. Threading this through edge_map (instead of
//     instrumenting edge_map itself) keeps the traversal code unaware of
//     caching: BFS over recording_view<dynamic_view> records exactly the
//     rows the frontier expansion touched.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>

#include "graph/graph_view.h"

namespace gbbs::serve {

// 4096 buckets = 64 words = 512 bytes per set: small enough to live in
// every cache entry, wide enough that a few hundred touched vertices per
// batch stay far from saturating the space.
inline constexpr std::size_t kCacheBucketBits = 12;
inline constexpr std::size_t kCacheBuckets = std::size_t{1}
                                             << kCacheBucketBits;
inline constexpr std::size_t kCacheBucketWords = kCacheBuckets / 64;

// Fibonacci-hash bucket of u in the fixed cache space (the same mixing
// constant the overlay index uses, truncated to a fixed width).
inline std::size_t cache_bucket_of(vertex_id u) {
  return static_cast<std::size_t>(
      (static_cast<std::uint64_t>(u) * 0x9E3779B97F4A7C15ull) >>
      (64 - kCacheBucketBits));
}

// Immutable-after-build bitset over the cache bucket space. `all` marks
// the universe (reads everywhere / depends on everything) without having
// to set every bit — and lets the cache validate such entries against a
// single global epoch instead of 4096 per-bucket ones.
class bucket_set {
 public:
  void add(std::size_t b) { bits_[b >> 6] |= std::uint64_t{1} << (b & 63); }
  void add_vertex(vertex_id u) { add(cache_bucket_of(u)); }
  void set_all() { all_ = true; }

  bool all() const { return all_; }

  bool test(std::size_t b) const {
    if (all_) return true;
    return (bits_[b >> 6] >> (b & 63)) & 1;
  }

  bool empty() const {
    if (all_) return false;
    for (const auto w : bits_) {
      if (w != 0) return false;
    }
    return true;
  }

  std::size_t count() const {
    if (all_) return kCacheBuckets;
    std::size_t c = 0;
    for (const auto w : bits_) c += static_cast<std::size_t>(std::popcount(w));
    return c;
  }

  bool intersects(const bucket_set& o) const {
    if (all_) return !o.empty();
    if (o.all_) return !empty();
    for (std::size_t i = 0; i < kCacheBucketWords; ++i) {
      if ((bits_[i] & o.bits_[i]) != 0) return true;
    }
    return false;
  }

  void merge(const bucket_set& o) {
    all_ = all_ || o.all_;
    for (std::size_t i = 0; i < kCacheBucketWords; ++i) bits_[i] |= o.bits_[i];
  }

  // f(bucket_id) over every set bucket. Pre: !all() (the universe is not
  // enumerated).
  template <typename F>
  void for_each(const F& f) const {
    for (std::size_t i = 0; i < kCacheBucketWords; ++i) {
      std::uint64_t w = bits_[i];
      while (w != 0) {
        const int b = std::countr_zero(w);
        f(i * 64 + static_cast<std::size_t>(b));
        w &= w - 1;
      }
    }
  }

 private:
  bool all_ = false;
  std::array<std::uint64_t, kCacheBucketWords> bits_{};
};

// Concurrent recorder a parallel traversal writes into: every worker the
// scheduler forks the traversal onto records through the same instance.
// Test-then-set keeps the common case (bucket already recorded) a single
// relaxed load; relaxed ordering is enough because the recorder is only
// read (snapshot()) after the traversal has joined.
class read_set_recorder {
 public:
  void record(vertex_id u) {
    const std::size_t b = cache_bucket_of(u);
    auto& w = bits_[b >> 6];
    const std::uint64_t m = std::uint64_t{1} << (b & 63);
    if ((w.load(std::memory_order_relaxed) & m) == 0) {
      w.fetch_or(m, std::memory_order_relaxed);
    }
  }

  void record_all() { all_.store(true, std::memory_order_relaxed); }

  bucket_set snapshot() const {
    bucket_set s;
    if (all_.load(std::memory_order_relaxed)) {
      s.set_all();
      return s;
    }
    for (std::size_t i = 0; i < kCacheBucketWords; ++i) {
      std::uint64_t w = bits_[i].load(std::memory_order_relaxed);
      while (w != 0) {
        const int b = std::countr_zero(w);
        s.add(i * 64 + static_cast<std::size_t>(b));
        w &= w - 1;
      }
    }
    return s;
  }

 private:
  std::atomic<bool> all_{false};
  std::array<std::atomic<std::uint64_t>, kCacheBucketWords> bits_{};
};

// graph_view adaptor: forwards every neighborhood primitive to the base
// view, recording the bucket of the vertex whose row is being read. Holds
// the base by pointer — both the base and the recorder must outlive the
// wrapper (they do: all three live on the executing query's stack frame).
template <typename G>
class recording_view {
 public:
  using weight_type = typename G::weight_type;

  recording_view(const G& base, read_set_recorder* rec)
      : base_(&base), rec_(rec) {}

  vertex_id num_vertices() const { return base_->num_vertices(); }
  edge_id num_edges() const { return base_->num_edges(); }
  bool symmetric() const { return base_->symmetric(); }

  vertex_id out_degree(vertex_id v) const {
    rec_->record(v);
    return base_->out_degree(v);
  }
  vertex_id in_degree(vertex_id v) const {
    rec_->record(v);
    return base_->in_degree(v);
  }

  template <typename F>
  void map_out_neighbors(vertex_id v, const F& f) const {
    rec_->record(v);
    base_->map_out_neighbors(v, f);
  }
  template <typename F>
  void map_in_neighbors(vertex_id v, const F& f) const {
    rec_->record(v);
    base_->map_in_neighbors(v, f);
  }
  template <typename F>
  void map_out_neighbors_early_exit(vertex_id v, const F& f) const {
    rec_->record(v);
    base_->map_out_neighbors_early_exit(v, f);
  }
  template <typename F>
  void map_in_neighbors_early_exit(vertex_id v, const F& f) const {
    rec_->record(v);
    base_->map_in_neighbors_early_exit(v, f);
  }
  template <typename F>
  void map_out_neighbors_range(vertex_id v, std::size_t j_lo,
                               std::size_t j_hi, const F& f) const {
    rec_->record(v);
    base_->map_out_neighbors_range(v, j_lo, j_hi, f);
  }
  template <typename F>
  std::size_t count_out(vertex_id v, const F& pred) const {
    rec_->record(v);
    return base_->count_out(v, pred);
  }

 private:
  const G* base_;
  read_set_recorder* rec_;
};

static_assert(graph_view<recording_view<graph<empty_weight>>>);

}  // namespace gbbs::serve
