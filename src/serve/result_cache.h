// Bucket-keyed result cache for the serving layer.
//
// Maps (query kind, u, v) → the query_result computed for it, where every
// entry carries (a) the epoch of the data it was computed from and (b) the
// read-set of cache buckets (read_set.h) the computation actually
// consulted. The ingest side publishes each batch's touched-bucket delta
// summary into the cache (invalidate()); a lookup serves an entry only if
// no bucket in its read-set has been touched since the entry's epoch.
// That is the freshness contract: a hit is provably equivalent to
// re-executing fresh — an unrelated update leaves hot results servable at
// hit cost, and there are no false hits (only false *invalidations*, when
// distinct vertices alias to the same bucket).
//
// Structure — sharded by key, lock-free reads:
//   * The entry table is a power-of-two array of independent
//     std::atomic<std::shared_ptr<const cache_entry>> slots; the key hash
//     picks the slot. Readers are lock-free (one atomic shared_ptr load);
//     writers publish whole immutable entries with a single store.
//     Collisions overwrite (the table is a cache, not a map): no chains,
//     no probing, no resize, bounded memory by construction.
//   * Invalidation is *lazy and epoch-guarded*, O(touched buckets) per
//     batch instead of O(entries): invalidate() bumps a per-bucket
//     last-touched epoch (plus one global epoch that validates "all
//     buckets" read-sets); lookups compare their entry's read-set against
//     those epochs and evict-on-read when stale. Semantically this is
//     "invalidate only intersecting entries" — a disjoint batch leaves
//     every hit servable and moves no counter.
//
// Epoch discipline: entries and invalidations must use the same monotone
// clock. The single-writer snapshot_manager uses its ingested-update
// count (the overlay epoch); the sharded coordinator uses its batch
// version clock (shard overlay epochs and the composite clock). Each
// cache instance belongs to exactly one ingest domain. Writers call
// invalidate() *before* the batch's data becomes reader-visible, so there
// is no window where a stale entry passes the epoch check after a reader
// could have observed the new data; notify() fires after visibility so
// standing-query re-evaluations (query_engine::subscribe) observe the new
// state.
//
// Read-set derivation per kind lives in read_set_for() below. Note
// `connected` / `component` use an all-buckets read-set even though they
// are point reads: connectivity labels are a *global* property — an
// insert between two far-away vertices can merge the components of u and
// v without any update touching their buckets — so endpoint buckets alone
// would admit stale hits. This deliberately trades hit longevity for
// soundness; the ISSUE's "endpoint buckets" shorthand is unsound for
// these two kinds.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "dynamic/update_batch.h"
#include "obs/registry.h"
#include "serve/query.h"
#include "serve/read_set.h"

namespace gbbs::serve {

// Derive the cache read-set for q. `rec` is the recorder threaded through
// the execution (required for bfs_distance precision; a bfs executed
// without one degrades to all-buckets, which is sound but invalidates on
// every batch).
inline bucket_set read_set_for(const query& q,
                               const read_set_recorder* rec) {
  bucket_set rs;
  switch (q.kind) {
    case query_kind::degree:
    case query_kind::neighbors:
      // Row-local answers: only updates to u's own adjacency row (which
      // every batch reports via its touched-set, both directions mirrored)
      // can change them.
      rs.add_vertex(q.u);
      break;
    case query_kind::bfs_distance:
      if (rec != nullptr) {
        rs = rec->snapshot();
      } else {
        rs.set_all();
      }
      break;
    case query_kind::connected:
    case query_kind::component:
      // Global property — see the header comment: a remote edge can merge
      // the endpoints' components without touching their buckets.
    default:
      // Whole-graph analytics (kcore_max / triangles / connectivity_refine)
      // read everything.
      rs.set_all();
      break;
  }
  return rs;
}

// The touched-bucket delta summary of a normalized batch — what ingest
// publishes into the cache. For mirrored (symmetric) batches the source
// endpoints cover every changed row.
template <typename W>
bucket_set touched_buckets(const dynamic::update_batch<W>& batch) {
  bucket_set s;
  for (const auto& up : batch.updates) s.add_vertex(up.u);
  return s;
}

class result_cache {
 public:
  struct options {
    // Slot capacity; rounded up to a power of two. Collisions evict.
    std::size_t entries = 4096;
    // Results with larger neighbor lists are not cached (memory bound).
    std::size_t max_list_entries = std::size_t{1} << 16;
  };

  result_cache() : result_cache(options()) {}

  explicit result_cache(options opt) : opt_(opt) {
    std::size_t cap = 1;
    while (cap < opt_.entries) cap <<= 1;
    slots_ = std::vector<slot_type>(cap);
    auto& reg = obs::registry::global();
    hits_ctr_ = &reg.get_counter("serve.cache.hits");
    misses_ctr_ = &reg.get_counter("serve.cache.misses");
    invalidations_ctr_ = &reg.get_counter("serve.cache.invalidations");
    entries_gauge_ = &reg.get_gauge("serve.cache.entries");
  }

  // ---- read side (query engine) -------------------------------------

  // Serve q from cache if present and provably untouched. On a hit, *out
  // receives the stored result (version/epoch describe when it was
  // computed — the freshness check proves it is still the answer the
  // fresh path would produce). Lock-free: one atomic load plus the
  // read-set epoch comparison. A stale entry found here is evicted and
  // counted as one invalidation (lazy invalidation realizes the batch's
  // logical invalidation at first touch).
  bool lookup(const query& q, query_result* out) {
    const std::size_t kidx = static_cast<std::size_t>(q.kind);
    const std::size_t s = slot_of(q);
    auto e = slots_[s].load(std::memory_order_acquire);
    if (e == nullptr || e->kind != q.kind || e->u != q.u || e->v != q.v) {
      misses_ctr_->add();
      kind_misses_[kidx].fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    if (!fresh(*e)) {
      // Evict exactly once even under racing lookups: only the CAS winner
      // counts the invalidation.
      auto expected = e;
      if (slots_[s].compare_exchange_strong(expected, nullptr,
                                            std::memory_order_acq_rel,
                                            std::memory_order_acquire)) {
        invalidations_ctr_->add();
        entries_gauge_->add(-1);
      }
      misses_ctr_->add();
      kind_misses_[kidx].fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    *out = e->result;
    hits_ctr_->add();
    kind_hits_[kidx].fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  // Publish a computed result. `reads` is its read-set (read_set_for);
  // `epoch` is the data epoch it was computed from, in this cache's ingest
  // clock domain. Results that are already stale against the current
  // epochs (the batch raced the execution) are dropped rather than stored,
  // so they never surface as spurious lazy invalidations. Degraded /
  // non-ok results are the caller's responsibility to filter.
  void insert(const query& q, const query_result& r, bucket_set reads,
              std::uint64_t epoch) {
    if (r.status != query_status::ok || r.degraded) return;
    if (r.list.size() > opt_.max_list_entries) return;
    auto e = std::make_shared<const cache_entry>(
        cache_entry{q.kind, q.u, q.v, epoch, std::move(reads), r});
    if (!fresh(*e)) return;
    auto prev =
        slots_[slot_of(q)].exchange(std::move(e), std::memory_order_acq_rel);
    if (prev == nullptr) entries_gauge_->add(1);
  }

  // ---- write side (ingest managers) ---------------------------------

  // Publish a batch's touched-bucket delta summary: every entry whose
  // read-set intersects `touched` is logically invalidated as of `epoch`.
  // O(touched buckets). Call *before* the batch's data becomes visible to
  // readers (see the header's epoch discipline).
  void invalidate(const bucket_set& touched, std::uint64_t epoch) {
    if (touched.empty()) return;
    touched.for_each([&](std::size_t b) {
      last_touched_[b].store(epoch, std::memory_order_release);
    });
    any_touched_.store(epoch, std::memory_order_release);
  }

  // Notify standing-query listeners that a batch with this touched-set is
  // now reader-visible. Called by ingest *after* visibility (post overlay
  // refresh / composite publish), so listener re-evaluations observe the
  // new state. Listeners run on the ingest thread — keep them cheap
  // (query_engine's listener only flags + enqueues).
  void notify(const bucket_set& touched, std::uint64_t epoch) {
    if (touched.empty()) return;
    std::lock_guard<std::mutex> lk(listeners_mu_);
    for (const auto& [id, fn] : listeners_) fn(touched, epoch);
  }

  using listener = std::function<void(const bucket_set&, std::uint64_t)>;

  std::uint64_t add_listener(listener fn) {
    std::lock_guard<std::mutex> lk(listeners_mu_);
    const std::uint64_t id = next_listener_id_++;
    listeners_.emplace_back(id, std::move(fn));
    return id;
  }

  // Blocks until no notify() is mid-call into the listener, so after this
  // returns the listener's captures may be destroyed.
  void remove_listener(std::uint64_t id) {
    std::lock_guard<std::mutex> lk(listeners_mu_);
    for (std::size_t i = 0; i < listeners_.size(); ++i) {
      if (listeners_[i].first == id) {
        listeners_.erase(listeners_.begin() +
                         static_cast<std::ptrdiff_t>(i));
        return;
      }
    }
  }

  // ---- introspection -------------------------------------------------

  std::uint64_t hits() const { return hits_ctr_->value(); }
  std::uint64_t misses() const { return misses_ctr_->value(); }
  std::uint64_t invalidations() const { return invalidations_ctr_->value(); }
  std::size_t capacity() const { return slots_.size(); }

  std::size_t entries() const {
    std::size_t c = 0;
    for (const auto& s : slots_) {
      if (s.load(std::memory_order_acquire) != nullptr) ++c;
    }
    return c;
  }

  std::uint64_t kind_hits(query_kind k) const {
    return kind_hits_[static_cast<std::size_t>(k)].load(
        std::memory_order_relaxed);
  }
  std::uint64_t kind_misses(query_kind k) const {
    return kind_misses_[static_cast<std::size_t>(k)].load(
        std::memory_order_relaxed);
  }

 private:
  struct cache_entry {
    query_kind kind;
    vertex_id u;
    vertex_id v;
    // Epoch of the data the result was computed from (ingest clock
    // domain); valid while no read-set bucket was touched after it.
    std::uint64_t epoch;
    bucket_set reads;
    query_result result;
  };
  using slot_type = std::atomic<std::shared_ptr<const cache_entry>>;

  bool fresh(const cache_entry& e) const {
    if (e.reads.all()) {
      return any_touched_.load(std::memory_order_acquire) <= e.epoch;
    }
    bool ok = true;
    e.reads.for_each([&](std::size_t b) {
      if (last_touched_[b].load(std::memory_order_acquire) > e.epoch) {
        ok = false;
      }
    });
    return ok;
  }

  std::size_t slot_of(const query& q) const {
    // splitmix64-style finalizer over the packed key.
    std::uint64_t h = (static_cast<std::uint64_t>(q.u) << 32) ^
                      static_cast<std::uint64_t>(q.v) ^
                      (static_cast<std::uint64_t>(q.kind) << 56);
    h += 0x9E3779B97F4A7C15ull;
    h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9ull;
    h = (h ^ (h >> 27)) * 0x94D049BB133111EBull;
    h ^= h >> 31;
    return static_cast<std::size_t>(h) & (slots_.size() - 1);
  }

  options opt_;
  std::vector<slot_type> slots_;
  // Per-bucket last-touched epochs, plus the global one that validates
  // all-buckets read-sets. Monotone: written by the single ingest
  // coordinator of this cache's domain.
  std::array<std::atomic<std::uint64_t>, kCacheBuckets> last_touched_{};
  std::atomic<std::uint64_t> any_touched_{0};

  std::mutex listeners_mu_;
  std::vector<std::pair<std::uint64_t, listener>> listeners_;
  std::uint64_t next_listener_id_ = 1;

  obs::counter* hits_ctr_;
  obs::counter* misses_ctr_;
  obs::counter* invalidations_ctr_;
  obs::gauge* entries_gauge_;
  std::array<std::atomic<std::uint64_t>, kNumQueryKinds> kind_hits_{};
  std::array<std::atomic<std::uint64_t>, kNumQueryKinds> kind_misses_{};
};

}  // namespace gbbs::serve
