// Single-writer ingest front-end for the serving layer: owns the
// batch-dynamic graph, maintains incremental connectivity across batches,
// and publishes immutable versions into a snapshot_store that any number of
// reader threads pin concurrently (see snapshot_store.h for the pinning
// protocol).
//
// Division of labor:
//   writer thread:  ingest(raw updates) ... publish() ... ingest ...
//   reader threads: pin() -> run queries against the pinned version.
//
// publish() builds the merged CSR of the live view *once* and uses it
// twice: it becomes the published version and (via
// dynamic_graph::adopt_base) the dynamic graph's new compacted base, so a
// publish-per-batch serving loop compacts as a side effect of publishing —
// one merge build plus a flat O(n+m) array copy, instead of two merge
// builds (sharing the arrays outright would need refcounted CSRs inside
// dynamic_graph; see ROADMAP). Between publishes the dynamic graph's own
// auto-compaction threshold bounds overlay growth.
//
// Connectivity labels ride along with every version: the writer maintains
// them incrementally (O(batch * alpha(n)) for insert-only batches), so
// reader-side connectivity queries are O(1) label lookups instead of an
// O(m) traversal per query.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "dynamic/dynamic_graph.h"
#include "dynamic/incremental_connectivity.h"
#include "dynamic/update_batch.h"
#include "serve/snapshot_store.h"

namespace gbbs::serve {

template <typename W>
class snapshot_manager {
 public:
  // Empty symmetric graph with n vertices; version 1 (the empty graph) is
  // published immediately so readers can always pin.
  explicit snapshot_manager(vertex_id n = 0, double compact_threshold = 0.25)
      : dg_(n, /*symmetric=*/true), cc_(n) {
    dg_.set_compact_threshold(compact_threshold);
    publish();
  }

  // Seed from an existing static snapshot (published as version 1).
  explicit snapshot_manager(gbbs::graph<W> seed,
                            double compact_threshold = 0.25)
      : dg_(std::move(seed)), cc_(0) {
    dg_.set_compact_threshold(compact_threshold);
    cc_.rebuild(dg_);
    publish();
  }

  // ---- writer side (single thread) ---------------------------------------

  // Absorb a raw update batch and keep connectivity current. Invisible to
  // readers until the next publish().
  void ingest(std::vector<dynamic::update<W>> raw) {
    updates_ingested_ += raw.size();
    auto batch = dg_.apply(std::move(raw));
    cc_.apply(batch, dg_);
  }

  // Publish the live view as a new immutable version. Returns its number.
  // Publishing with nothing ingested since the previous publish is a no-op
  // returning the current version (no CSR copy, no version churn).
  std::uint64_t publish() {
    if (store_.current_version() != 0 &&
        last_published_updates_ == updates_ingested_) {
      return store_.current_version();
    }
    last_published_updates_ = updates_ingested_;
    gbbs::graph<W> snap;
    if (dg_.delta_size() == 0 &&
        dg_.base().num_vertices() == dg_.num_vertices()) {
      // Overlay empty: the base CSR already is the live view; flat copy.
      snap = dg_.base();
    } else {
      // Version hand-off: one merge build; the flat copy becomes the new
      // base while the original goes to the store.
      snap = dg_.snapshot();
      dg_.adopt_base(snap);
    }
    return store_.publish(std::move(snap), cc_.labels(), updates_ingested_);
  }

  std::uint64_t updates_ingested() const { return updates_ingested_; }
  std::size_t num_compactions() const { return dg_.num_compactions(); }
  const dynamic::dynamic_graph<W>& live() const { return dg_; }
  dynamic::incremental_connectivity& connectivity() { return cc_; }

  // ---- reader side (any thread) ------------------------------------------

  pinned_snapshot<W> pin() const { return store_.pin(); }
  std::uint64_t current_version() const { return store_.current_version(); }
  const snapshot_store<W>& store() const { return store_; }
  snapshot_store<W>& store() { return store_; }

 private:
  dynamic::dynamic_graph<W> dg_;
  dynamic::incremental_connectivity cc_;
  snapshot_store<W> store_;
  std::uint64_t updates_ingested_ = 0;
  std::uint64_t last_published_updates_ = 0;
};

using unweighted_snapshot_manager = snapshot_manager<empty_weight>;

}  // namespace gbbs::serve
