// Single-writer ingest front-end for the serving layer: owns the
// batch-dynamic graph, maintains incremental connectivity across batches,
// publishes immutable versions into a snapshot_store that any number of
// reader threads pin concurrently (see snapshot_store.h for the pinning
// protocol), and refreshes an overlay_view after every ingest so point
// reads can see updates *before* they are published.
//
// Division of labor:
//   writer thread:  ingest(raw updates) ... publish() ... ingest ...
//   reader threads: pin() -> versioned queries;  overlay().read() ->
//                   fresh point reads (degree / neighbors / connected).
//
// Publish cost is proportional to the delta, not the graph:
//   * overlay empty (right after a compaction, or nothing effective
//     ingested): the base CSR *is* the live view, and since graph<W>
//     copies share one refcounted block, publishing it is O(1) — no
//     merge, no allocation, no copy;
//   * overlay non-empty: the version is published as {shared base CSR,
//     overlay index, component view} — O(overlay) handle copies, no
//     merged-CSR build at all. The merged CSR is materialized lazily,
//     once per version, only if an analytics query (bfs/kcore/triangles)
//     asks for it (see version_payload::view()); point reads are served
//     from base + overlay directly. Heavy merges therefore happen only at
//     auto-compaction thresholds (amortized O(1/threshold) per update) or
//     on analytics demand — never on the publish hot path. PR 2 paid a
//     full merge build plus a flat O(n+m) array copy on *every* publish;
//   * when auto-compaction is disabled (compact_threshold == 0), publish
//     is the compaction point: it builds the merged CSR once and shares
//     it between the published version and the dynamic graph's new base
//     via adopt_base — zero post-merge copies;
//   * connectivity rides along as a component_view — an anchor label
//     vector shared across publishes plus a link map of merges since the
//     anchor — so no O(n) label materialization per publish either. The
//     anchor is re-materialized only at rare events: an erase-triggered
//     connectivity rebuild (already O(n + m)) or the link map outgrowing
//     its budget.
//
// Reader-side connectivity queries stay O(1)-ish: label resolution is an
// anchor lookup plus one hash probe.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "dynamic/dynamic_graph.h"
#include "dynamic/incremental_connectivity.h"
#include "dynamic/update_batch.h"
#include "obs/trace.h"
#include "robust/failpoint.h"
#include "serve/component_view.h"
#include "serve/overlay_view.h"
#include "serve/result_cache.h"
#include "serve/snapshot_store.h"

namespace gbbs::serve {

template <typename W>
class snapshot_manager {
 public:
  // Empty symmetric graph with n vertices; version 1 (the empty graph) is
  // published immediately so readers can always pin.
  explicit snapshot_manager(vertex_id n = 0, double compact_threshold = 0.25)
      : dg_(n, /*symmetric=*/true), cc_(n) {
    dg_.set_compact_threshold(compact_threshold);
    refresh_anchor();
    publish();
  }

  // Seed from an existing static snapshot (published as version 1).
  explicit snapshot_manager(gbbs::graph<W> seed,
                            double compact_threshold = 0.25)
      : dg_(std::move(seed)), cc_(0) {
    dg_.set_compact_threshold(compact_threshold);
    cc_.rebuild(dg_);
    refresh_anchor();
    publish();
  }

  // ---- writer side (single thread) ---------------------------------------

  // Absorb a raw update batch, keep connectivity current, and refresh the
  // overlay view so reads observe this batch immediately — published
  // versions are untouched until the next publish(). The index refresh is
  // *incremental*: only the buckets holding the batch's distinct vertices
  // are rebuilt, every other bucket is shared with the previous snapshot
  // (O(batch) expected, not O(overlay) — see overlay_view.h).
  void ingest(std::vector<dynamic::update<W>> raw) {
    // Each batch is one request in the flight recorder: every stage span
    // below (including the ones inside dg_.apply) and every scheduler
    // event its parallel loops trigger carries this id, so a slow batch
    // reconstructs as a single timeline.
    last_ingest_trace_id_ = obs::flight_recorder::global().next_trace_id();
    parlib::trace::trace_id_scope tscope(last_ingest_trace_id_);
    updates_ingested_ += raw.size();
    // Normalize + apply spans are recorded inside dg_.apply (the stages
    // live in dynamic_graph, shared with the non-serving stream tools).
    auto batch = dg_.apply(std::move(raw));
    {
      static const obs::stage_ref s_cc =
          obs::stage_named("ingest.connectivity");
      obs::trace_span span(s_cc);
      cc_.apply(batch, dg_);
      track_links(batch);
    }
    // The batch's delta summary: distinct updated vertices (row refresh)
    // and their cache buckets (result invalidation + standing queries).
    std::vector<vertex_id> touched = batch.touched_vertices();
    if (cache_ != nullptr) {
      const bucket_set delta = touched_buckets(batch);
      // Invalidate before the overlay refresh makes the batch visible to
      // readers: a cache hit is then provably no staler than the freshest
      // overlay any concurrent reader can observe. Epochs are this
      // manager's ingested-update count — the same clock the overlay
      // snapshot (and thus every cached fresh result) is stamped with.
      cache_->invalidate(delta, updates_ingested_);
      refresh_overlay(&touched);
      // Notify after visibility so standing-query re-evaluations read the
      // refreshed overlay.
      cache_->notify(delta, updates_ingested_);
    } else {
      refresh_overlay(&touched);
    }
  }

  // Wire a result cache into this manager's ingest path: every batch's
  // touched-bucket summary is published into it (invalidate before the
  // refresh makes the batch reader-visible, notify after). Call before
  // the first ingest and keep the cache alive for the manager's lifetime;
  // an engine serving from this manager must share the same cache — an
  // unattached cache never invalidates and will serve stale results.
  void attach_cache(result_cache* cache) { cache_ = cache; }

  // Publish the live view as a new immutable version. Returns its number.
  // O(delta) — see the file header for the cost breakdown per case.
  // Publishing with nothing ingested since the previous publish is a no-op
  // returning the current version (no CSR copy, no version churn).
  std::uint64_t publish() {
    if (store_.current_version() != 0 &&
        last_published_updates_ == updates_ingested_) {
      return store_.current_version();
    }
    // Publish attributes to the batch that made it necessary (the last
    // ingest's trace id), so an exemplar showing a query stuck behind a
    // publish points back at the responsible batch.
    parlib::trace::trace_id_scope tscope(last_ingest_trace_id_);
    static const obs::stage_ref s_publish = obs::stage_named("ingest.publish");
    obs::trace_span span(s_publish);
    // ingest.publish.delay: a slow publish, injected inside the traced
    // span so the stall is attributable — staleness grows while it sleeps.
    GBBS_FAILPOINT_SLEEP("ingest.publish.delay");
    last_published_updates_ = updates_ingested_;
    std::uint64_t v;
    bool compacted = false;
    if (dg_.delta_size() == 0 &&
        dg_.base().num_vertices() == dg_.num_vertices()) {
      // Overlay empty: the base CSR already is the live view. Shared
      // handle copy — O(1), no allocation, no merge.
      v = store_.publish(dg_.base(), current_components(),
                         updates_ingested_);
    } else if (dg_.compact_threshold() == 0) {
      // Auto-compaction disabled: publish is the compaction point. One
      // merged-CSR build; adopt_base shares the same arrays as the
      // dynamic graph's new compacted base (zero post-merge copies).
      gbbs::graph<W> snap = dg_.snapshot();
      dg_.adopt_base(snap);
      v = store_.publish(std::move(snap), current_components(),
                         updates_ingested_);
      compacted = true;
    } else {
      // Delta-proportional path: the version is the shared base plus the
      // overlay index the last ingest distilled — no merge; the store
      // materializes lazily if an analytics query needs the full CSR.
      if (last_index_ == nullptr ||
          last_index_->epoch != updates_ingested_) {
        refresh_overlay();
      }
      v = store_.publish(dg_.base(), last_index_, current_components(),
                         updates_ingested_);
    }
    // Publishing does not change the live view, so the overlay index
    // stays content-correct — rebuild it only when compaction swapped the
    // base out from under it (O(1): the overlay is empty then). Its
    // epoch/base_version metadata may lag one publish; the next ingest
    // refreshes both.
    if (compacted) refresh_overlay();
    return v;
  }

  std::uint64_t updates_ingested() const { return updates_ingested_; }
  // Flight-recorder trace id of the most recent ingest batch (0 before
  // the first ingest); tests assert timeline attribution through it.
  std::uint64_t last_ingest_trace_id() const {
    return last_ingest_trace_id_;
  }
  std::size_t num_compactions() const { return dg_.num_compactions(); }
  const dynamic::dynamic_graph<W>& live() const { return dg_; }
  dynamic::incremental_connectivity& connectivity() { return cc_; }

  // The connectivity partition after the last ingest, as an immutable
  // O(1)-copy view (what publish attaches to the next version). Memoized
  // inside the tracker, so back-to-back publishes pay O(1), not O(links).
  component_view current_components() const { return tracker_.current(); }

  // ---- reader side (any thread) ------------------------------------------

  pinned_snapshot<W> pin() const { return store_.pin(); }
  std::uint64_t current_version() const { return store_.current_version(); }
  const snapshot_store<W>& store() const { return store_; }
  snapshot_store<W>& store() { return store_; }

  // Freshest overlay index: point reads against it see every ingested
  // batch, published or not. Safe from any thread.
  const overlay_view<W>& overlay() const { return overlay_; }

 private:
  // Record the component merges an insert batch performed into the shared
  // anchor + link-map tracker (component_view.h). O(batch · α).
  void track_links(const dynamic::update_batch<W>& batch) {
    if (batch.empty()) return;
    if (batch.has_erases()) {
      // cc_ just rebuilt from scratch (erases can split components);
      // re-anchor — the rebuild already paid O(n + m).
      refresh_anchor();
      return;
    }
    for (const auto& up : batch.updates) {
      tracker_.track_pair(up.u, up.v);
    }
    // (In steady state — batches that merge nothing new — publishes reuse
    // the tracker's memoized component view and pay nothing here.)
    if (tracker_.needs_anchor()) refresh_anchor();
  }

  // Materialize fresh anchor labels (O(n)) into the tracker. Called only
  // at anchor events — seed, erase rebuild, link-budget overflow.
  void refresh_anchor() { tracker_.refresh_anchor(cc_.labels()); }

  // Distill the current overlay into an immutable index and hand it to
  // readers through the seqlock. With `touched` (the batch's distinct
  // vertices) this is incremental against the previous index — O(batch)
  // expected; without, a full O(overlay) rebuild (compaction hand-offs,
  // defensive refreshes).
  void refresh_overlay(const std::vector<vertex_id>* touched = nullptr) {
    static const obs::stage_ref s_refresh =
        obs::stage_named("ingest.overlay_refresh");
    obs::trace_span span(s_refresh);
    last_index_ = build_overlay_snapshot(dg_, current_components(),
                                         updates_ingested_,
                                         store_.current_version(),
                                         last_index_.get(), touched);
    overlay_.refresh(last_index_);
  }

  dynamic::dynamic_graph<W> dg_;
  dynamic::incremental_connectivity cc_;
  snapshot_store<W> store_;
  overlay_view<W> overlay_;
  // The index refresh_overlay last built (what publish attaches to a
  // delta-proportional version).
  std::shared_ptr<const overlay_snapshot<W>> last_index_;
  component_tracker tracker_;
  result_cache* cache_ = nullptr;
  std::uint64_t updates_ingested_ = 0;
  std::uint64_t last_published_updates_ = 0;
  std::uint64_t last_ingest_trace_id_ = 0;
};

using unweighted_snapshot_manager = snapshot_manager<empty_weight>;

}  // namespace gbbs::serve
