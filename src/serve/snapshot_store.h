// Versioned snapshot store: the publication point between the single-writer
// ingest path and a pool of concurrent readers (toward the ROADMAP's
// serve-heavy-traffic north star).
//
// Model. The writer publishes immutable versions and readers *pin* the
// latest one without taking any lock. A version is a *payload* of shared
// handles — the base CSR (refcounted, see graph.h), an optional overlay
// index of deltas relative to it, and a component_view — so publishing
// costs O(delta), never O(n + m): no merged-CSR build, no label
// materialization, no array copies. The full merged CSR of a version is
// materialized *lazily*, at most once per version (memoized in the shared
// payload under std::call_once), and only when an analytics query
// actually asks for view(); point reads are answered from base + overlay
// directly. Versions published while the overlay is empty (right after a
// compaction, or when nothing effective was ingested) carry the base
// outright — their view() is free and shares the writer's arrays.
//
// Pins are self-contained: pin() copies the payload handle (O(1)), and
// from then on the reader owns the data outright. A pinned snapshot stays
// valid after the version is retired, after the store reclaims the
// version node, and even after the store itself is destroyed — the arrays
// live until the last owner drops them.
//
// Pinning protocol (hazard-bridged handle copy). The only window that
// needs protection is reading the head node's payload pointer: between
// loading the head and copying the handle the writer could retire *and
// free* the node. A small fixed table of hazard slots bridges that
// window, the classic hazard-pointer handshake (Michael 2004):
//
//   reader                                writer (publish/collect)
//   ------                                ------------------------
//   p = head.load(acquire)                head.store(new, release)
//   slot.store(p, release)                retire old head
//   fence(seq_cst)                        fence(seq_cst)
//   if (head.load(acquire) != p) retry    scan slots; free retired
//   copy p's payload handle                 nodes that are unhazarded
//   slot.store(nullptr, release)
//
// The seq_cst fences totally order the two sides: either the reader's
// re-validation sees the new head (and retries), or the writer's scan sees
// the reader's hazard (and keeps the node). Once the handle is copied the
// slot is released — long-running queries hold only refcounted handles,
// so version *nodes* are reclaimed promptly no matter how long queries
// run. Readers never lock or spin on the fast path; a reader stalled
// mid-handshake delays reclamation of at most one node and never blocks
// the writer from publishing.
//
// Contract: publish()/collect()/live_versions() are writer-only (one thread
// at a time); pin() is safe from any number of concurrent threads.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "serve/component_view.h"
#include "serve/composite_view.h"
#include "serve/overlay_view.h"

namespace gbbs::serve {

// One published version, shared between the store's node and every pin of
// it. All fields immutable after publish except the memoized merged CSR.
template <typename W>
struct version_payload {
  std::uint64_t version = 0;
  std::uint64_t updates_ingested = 0;
  gbbs::graph<W> base;  // shared CSR block
  // Deltas relative to `base` (null or empty: the base is the live view).
  std::shared_ptr<const overlay_snapshot<W>> overlay;
  // Sharded-ingest publications carry per-shard snapshots instead of a
  // single base/overlay pair; view() stitches them (see composite_view.h).
  std::shared_ptr<const composite_snapshot<W>> composite;
  component_view components;

  bool overlay_empty() const {
    return overlay == nullptr || overlay->overlay_empty();
  }

  // The version's full merged CSR, materialized at most once (lazily) and
  // shared by all pins of this version. O(1) when the overlay is empty —
  // the base *is* the view. Composite versions stitch all shards' rows.
  const gbbs::graph<W>& view() const {
    if (composite != nullptr) {
      std::call_once(merged_once_,
                     [&] { merged_ = composite->materialize(); });
      return merged_;
    }
    if (overlay_empty()) return base;
    std::call_once(merged_once_, [&] { merged_ = overlay->materialize(); });
    return merged_;
  }

  // Live vertex/edge counts without materializing.
  vertex_id num_vertices() const {
    if (composite != nullptr) return composite->n;
    return overlay == nullptr ? base.num_vertices() : overlay->n;
  }

 private:
  mutable std::once_flag merged_once_;
  mutable gbbs::graph<W> merged_;
};

template <typename W>
class snapshot_store;

// A pinned version: a self-contained shared handle onto one published
// version's payload. Copy cost O(1); keeps the underlying arrays alive
// independently of the store (and of the writer). Movable, not copyable —
// hand out the graph via view() if a query needs to retain it.
template <typename W>
class pinned_snapshot {
 public:
  pinned_snapshot() = default;
  pinned_snapshot(pinned_snapshot&& other) noexcept = default;
  pinned_snapshot& operator=(pinned_snapshot&& other) noexcept = default;
  pinned_snapshot(const pinned_snapshot&) = delete;
  pinned_snapshot& operator=(const pinned_snapshot&) = delete;

  explicit operator bool() const { return payload_ != nullptr; }
  std::uint64_t version() const { return payload_->version; }
  std::uint64_t updates_ingested() const {
    return payload_->updates_ingested;
  }

  // Full merged CSR (lazy, memoized per version — see version_payload).
  const gbbs::graph<W>& view() const { return payload_->view(); }

  // The version's overlay index, or null when the base is the live view.
  // Point reads route here to avoid materializing.
  const overlay_snapshot<W>* overlay() const {
    return payload_->overlay_empty() ? nullptr : payload_->overlay.get();
  }

  // Shared handle on the overlay index (null when the base is the live
  // view) — what a dynamic_view is built from, so fresh-at-this-version
  // analytics traverse base ⊕ overlay without materializing the merge.
  std::shared_ptr<const overlay_snapshot<W>> overlay_handle() const {
    return payload_->overlay_empty() ? nullptr : payload_->overlay;
  }

  // The version's composite (sharded) payload, or null for single-writer
  // versions. Point reads route to the owning shard through it; analytics
  // traverse a composite_view built from the shared handle.
  const composite_snapshot<W>* composite() const {
    return payload_->composite.get();
  }
  std::shared_ptr<const composite_snapshot<W>> composite_handle() const {
    return payload_->composite;
  }

  const component_view& components() const { return payload_->components; }
  vertex_id num_vertices() const { return payload_->num_vertices(); }

  void release() { payload_.reset(); }

 private:
  friend class snapshot_store<W>;
  explicit pinned_snapshot(std::shared_ptr<const version_payload<W>> p)
      : payload_(std::move(p)) {}

  std::shared_ptr<const version_payload<W>> payload_;
};

template <typename W>
class snapshot_store {
 public:
  snapshot_store() = default;
  snapshot_store(const snapshot_store&) = delete;
  snapshot_store& operator=(const snapshot_store&) = delete;

  // Outstanding pinned_snapshots survive destruction (they own their
  // payloads); only the version nodes die here.
  ~snapshot_store() {
    node* r = retired_;
    while (r != nullptr) {
      node* next = r->next_retired;
      delete r;
      r = next;
    }
    delete head_.load(std::memory_order_relaxed);
  }

  // ---- reader side -------------------------------------------------------

  // Pin the latest published version; null if nothing is published yet.
  // Lock-free: a bounded scan for a hazard slot, the handshake above, and
  // an O(1) copy of the version's payload handle.
  pinned_snapshot<W> pin() const {
    hazard_slot& slot = acquire_slot();
    const node* p;
    for (;;) {
      p = head_.load(std::memory_order_acquire);
      if (p == nullptr) {
        release_slot(slot);
        return pinned_snapshot<W>{};
      }
      slot.ptr.store(p, std::memory_order_release);
      std::atomic_thread_fence(std::memory_order_seq_cst);
      if (head_.load(std::memory_order_acquire) == p) break;
      slot.ptr.store(nullptr, std::memory_order_release);
    }
    // The hazard keeps p alive across the handle copy; afterwards the pin
    // owns the payload through the copied shared_ptr.
    pinned_snapshot<W> snap{p->payload};
    slot.ptr.store(nullptr, std::memory_order_release);
    release_slot(slot);
    return snap;
  }

  std::uint64_t current_version() const {
    return current_version_.load(std::memory_order_acquire);
  }

  // ---- writer side (single thread) ---------------------------------------

  // Publish a new version: base CSR + optional overlay of deltas relative
  // to it + connectivity view. All taken by shared handle — O(delta)
  // total, no array duplication, no merge. The previous head node is
  // retired and reclaimed once no reader is mid-handshake on it.
  std::uint64_t publish(gbbs::graph<W> base,
                        std::shared_ptr<const overlay_snapshot<W>> overlay,
                        component_view components,
                        std::uint64_t updates_ingested = 0) {
    auto payload = std::make_shared<version_payload<W>>();
    payload->version = ++last_version_;
    payload->updates_ingested = updates_ingested;
    payload->base = std::move(base);
    payload->overlay = std::move(overlay);
    payload->components = std::move(components);
    return install(std::move(payload));
  }

  // Convenience overloads: publish a self-contained CSR (no overlay).
  std::uint64_t publish(gbbs::graph<W> g, component_view components,
                        std::uint64_t updates_ingested = 0) {
    return publish(std::move(g), nullptr, std::move(components),
                   updates_ingested);
  }
  std::uint64_t publish(gbbs::graph<W> g, std::vector<vertex_id> labels,
                        std::uint64_t updates_ingested = 0) {
    return publish(std::move(g), nullptr,
                   component_view::from_labels(std::move(labels)),
                   updates_ingested);
  }

  // Publish a composite (sharded) version: N per-shard overlay snapshots
  // stitched behind one payload. Same O(delta) cost shape — shared
  // handles only, the stitched CSR materializes lazily on analytics
  // demand.
  std::uint64_t publish_composite(
      std::shared_ptr<const composite_snapshot<W>> comp,
      component_view components, std::uint64_t updates_ingested = 0) {
    auto payload = std::make_shared<version_payload<W>>();
    payload->version = ++last_version_;
    payload->updates_ingested = updates_ingested;
    payload->composite = std::move(comp);
    payload->components = std::move(components);
    return install(std::move(payload));
  }

  // Free retired version nodes no reader is mid-handshake on. (Pinned
  // snapshots do not retain nodes — only hazards do, and only for the
  // instants-long handle-copy window.)
  void collect() {
    if (retired_ == nullptr) return;
    std::atomic_thread_fence(std::memory_order_seq_cst);
    const void* hazards[kHazardSlots];
    for (std::size_t i = 0; i < kHazardSlots; ++i) {
      hazards[i] = slots_[i].ptr.load(std::memory_order_acquire);
    }
    node** link = &retired_;
    while (*link != nullptr) {
      node* nd = *link;
      bool hazarded = false;
      for (std::size_t i = 0; i < kHazardSlots; ++i) {
        if (hazards[i] == nd) {
          hazarded = true;
          break;
        }
      }
      if (!hazarded) {
        *link = nd->next_retired;
        delete nd;
      } else {
        link = &nd->next_retired;
      }
    }
  }

  // Version nodes still resident (head + retired ones awaiting collect).
  std::size_t live_versions() const {
    std::size_t count = head_.load(std::memory_order_relaxed) ? 1 : 0;
    for (const node* r = retired_; r != nullptr; r = r->next_retired) {
      ++count;
    }
    return count;
  }

 private:
  struct node {
    std::shared_ptr<const version_payload<W>> payload;
    node* next_retired = nullptr;  // writer-owned retire list
  };

  // Swap a freshly built payload in as the new head and retire the old
  // one (the shared tail of every publish flavor). Writer-only.
  std::uint64_t install(std::shared_ptr<const version_payload<W>> payload) {
    auto* n = new node();
    n->payload = std::move(payload);
    node* old = head_.load(std::memory_order_relaxed);
    head_.store(n, std::memory_order_release);
    current_version_.store(last_version_, std::memory_order_release);
    if (old != nullptr) {
      old->next_retired = retired_;
      retired_ = old;
    }
    collect();
    return last_version_;
  }

  static constexpr std::size_t kHazardSlots = 64;

  struct alignas(64) hazard_slot {
    std::atomic<const void*> ptr{nullptr};
    std::atomic<bool> in_use{false};
  };

  hazard_slot& acquire_slot() const {
    // Start the scan at a per-thread offset so concurrent readers claim
    // different slots instead of all CAS-contending on slot 0's cacheline.
    static thread_local const std::size_t start =
        std::hash<std::thread::id>{}(std::this_thread::get_id());
    static_assert((kHazardSlots & (kHazardSlots - 1)) == 0);
    for (;;) {
      for (std::size_t k = 0; k < kHazardSlots; ++k) {
        hazard_slot& s = slots_[(start + k) & (kHazardSlots - 1)];
        bool expected = false;
        if (s.in_use.compare_exchange_strong(expected, true,
                                             std::memory_order_acquire,
                                             std::memory_order_relaxed)) {
          return s;
        }
      }
      // > kHazardSlots threads mid-handshake at once; the window is a few
      // instructions, so yielding once is plenty.
      std::this_thread::yield();
    }
  }

  void release_slot(hazard_slot& slot) const {
    slot.in_use.store(false, std::memory_order_release);
  }

  std::atomic<node*> head_{nullptr};
  std::atomic<std::uint64_t> current_version_{0};
  node* retired_ = nullptr;        // writer-owned
  std::uint64_t last_version_ = 0;  // writer-owned
  mutable hazard_slot slots_[kHazardSlots];
};

}  // namespace gbbs::serve
