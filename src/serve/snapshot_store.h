// Versioned snapshot store: the publication point between the single-writer
// ingest path and a pool of concurrent readers (toward the ROADMAP's
// serve-heavy-traffic north star).
//
// Model. The writer publishes immutable versions — a static CSR plus the
// connectivity labels current at publish time — and readers *pin* the
// latest version without taking any lock. A pinned version stays alive (its
// CSR is never mutated, moved, or freed) until the last pin drops; versions
// nobody pins are reclaimed by the writer on the next publish()/collect().
//
// Pinning protocol (hazard-bridged refcounts). Each version carries a pin
// refcount, but a bare refcount is not enough: between loading the head
// pointer and incrementing its count the writer could retire *and free* the
// version. A small fixed table of hazard slots bridges that window, the
// classic hazard-pointer handshake (Michael 2004):
//
//   reader                                writer (publish/collect)
//   ------                                ------------------------
//   p = head.load(acquire)                head.store(new, release)
//   slot.store(p, release)                retire old head
//   fence(seq_cst)                        fence(seq_cst)
//   if (head.load(acquire) != p) retry    scan slots + pin counts;
//   p->pins.fetch_add(1)                  free retired versions that are
//   slot.store(nullptr, release)            unhazarded and unpinned
//
// The seq_cst fences totally order the two sides: either the reader's
// re-validation sees the new head (and retries), or the writer's scan sees
// the reader's hazard (and keeps the version). Once the pin count is
// incremented the hazard slot is released — long-running queries hold only
// the refcount, so the slot table stays small no matter how long queries
// run. Readers never allocate, lock, or spin on the fast path; a reader
// stalled mid-handshake delays reclamation of at most one version and never
// blocks the writer from publishing.
//
// Contract: publish()/collect()/live_versions() are writer-only (one thread
// at a time); pin() is safe from any number of concurrent threads.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <functional>
#include <thread>
#include <utility>
#include <vector>

#include "graph/graph.h"

namespace gbbs::serve {

// One published version: an immutable CSR of the live graph at publish
// time, the connectivity labels the writer maintained incrementally, and
// the number of raw stream updates absorbed when it was published (which
// lets tests and traces map a version back to a stream prefix).
template <typename W>
struct graph_version {
  std::uint64_t version = 0;
  gbbs::graph<W> g;
  std::vector<vertex_id> components;
  std::uint64_t updates_ingested = 0;

  mutable std::atomic<std::uint64_t> pins{0};
  graph_version* next_retired = nullptr;  // writer-owned retire list
};

template <typename W>
class snapshot_store;

// RAII pin on one version: the version outlives every pinned_snapshot
// referring to it. Movable, not copyable.
template <typename W>
class pinned_snapshot {
 public:
  pinned_snapshot() = default;
  pinned_snapshot(pinned_snapshot&& other) noexcept
      : node_(std::exchange(other.node_, nullptr)) {}
  pinned_snapshot& operator=(pinned_snapshot&& other) noexcept {
    if (this != &other) {
      release();
      node_ = std::exchange(other.node_, nullptr);
    }
    return *this;
  }
  pinned_snapshot(const pinned_snapshot&) = delete;
  pinned_snapshot& operator=(const pinned_snapshot&) = delete;
  ~pinned_snapshot() { release(); }

  explicit operator bool() const { return node_ != nullptr; }
  std::uint64_t version() const { return node_->version; }
  const gbbs::graph<W>& view() const { return node_->g; }
  const std::vector<vertex_id>& components() const {
    return node_->components;
  }
  std::uint64_t updates_ingested() const { return node_->updates_ingested; }

  void release() {
    if (node_ != nullptr) {
      node_->pins.fetch_sub(1, std::memory_order_release);
      node_ = nullptr;
    }
  }

 private:
  friend class snapshot_store<W>;
  explicit pinned_snapshot(const graph_version<W>* node) : node_(node) {}

  const graph_version<W>* node_ = nullptr;
};

template <typename W>
class snapshot_store {
 public:
  snapshot_store() = default;
  snapshot_store(const snapshot_store&) = delete;
  snapshot_store& operator=(const snapshot_store&) = delete;

  ~snapshot_store() {
    graph_version<W>* r = retired_;
    while (r != nullptr) {
      graph_version<W>* next = r->next_retired;
      assert(r->pins.load() == 0);
      delete r;
      r = next;
    }
    if (graph_version<W>* h = head_.load(std::memory_order_relaxed)) {
      assert(h->pins.load() == 0);
      delete h;
    }
  }

  // ---- reader side -------------------------------------------------------

  // Pin the latest published version; null if nothing is published yet.
  // Lock-free: a bounded scan for a hazard slot plus the handshake above.
  pinned_snapshot<W> pin() const {
    hazard_slot& slot = acquire_slot();
    const graph_version<W>* p;
    for (;;) {
      p = head_.load(std::memory_order_acquire);
      if (p == nullptr) {
        release_slot(slot);
        return pinned_snapshot<W>{};
      }
      slot.ptr.store(p, std::memory_order_release);
      std::atomic_thread_fence(std::memory_order_seq_cst);
      if (head_.load(std::memory_order_acquire) == p) break;
      slot.ptr.store(nullptr, std::memory_order_release);
    }
    // The hazard keeps p alive across the increment; after it, the pin does.
    p->pins.fetch_add(1, std::memory_order_acq_rel);
    slot.ptr.store(nullptr, std::memory_order_release);
    release_slot(slot);
    return pinned_snapshot<W>{p};
  }

  std::uint64_t current_version() const {
    const graph_version<W>* p = head_.load(std::memory_order_acquire);
    return p == nullptr ? 0 : p->version;
  }

  // ---- writer side (single thread) ---------------------------------------

  // Publish a new version; the previous head is retired and reclaimed once
  // its last pin drops. Returns the new version number (1-based).
  std::uint64_t publish(gbbs::graph<W> g, std::vector<vertex_id> components,
                        std::uint64_t updates_ingested = 0) {
    auto* node = new graph_version<W>();
    node->version = ++last_version_;
    node->g = std::move(g);
    node->components = std::move(components);
    node->updates_ingested = updates_ingested;
    graph_version<W>* old = head_.load(std::memory_order_relaxed);
    head_.store(node, std::memory_order_release);
    if (old != nullptr) {
      old->next_retired = retired_;
      retired_ = old;
    }
    collect();
    return node->version;
  }

  // Free retired versions that are neither pinned nor mid-handshake.
  void collect() {
    if (retired_ == nullptr) return;
    std::atomic_thread_fence(std::memory_order_seq_cst);
    const void* hazards[kHazardSlots];
    for (std::size_t i = 0; i < kHazardSlots; ++i) {
      hazards[i] = slots_[i].ptr.load(std::memory_order_acquire);
    }
    graph_version<W>** link = &retired_;
    while (*link != nullptr) {
      graph_version<W>* node = *link;
      bool hazarded = false;
      for (std::size_t i = 0; i < kHazardSlots; ++i) {
        if (hazards[i] == node) {
          hazarded = true;
          break;
        }
      }
      if (!hazarded && node->pins.load(std::memory_order_acquire) == 0) {
        *link = node->next_retired;
        delete node;
      } else {
        link = &node->next_retired;
      }
    }
  }

  // Published versions still resident (head + retained retired ones).
  std::size_t live_versions() const {
    std::size_t count = head_.load(std::memory_order_relaxed) ? 1 : 0;
    for (const graph_version<W>* r = retired_; r != nullptr;
         r = r->next_retired) {
      ++count;
    }
    return count;
  }

 private:
  static constexpr std::size_t kHazardSlots = 64;

  struct alignas(64) hazard_slot {
    std::atomic<const void*> ptr{nullptr};
    std::atomic<bool> in_use{false};
  };

  hazard_slot& acquire_slot() const {
    // Start the scan at a per-thread offset so concurrent readers claim
    // different slots instead of all CAS-contending on slot 0's cacheline.
    static thread_local const std::size_t start =
        std::hash<std::thread::id>{}(std::this_thread::get_id());
    static_assert((kHazardSlots & (kHazardSlots - 1)) == 0);
    for (;;) {
      for (std::size_t k = 0; k < kHazardSlots; ++k) {
        hazard_slot& s = slots_[(start + k) & (kHazardSlots - 1)];
        bool expected = false;
        if (s.in_use.compare_exchange_strong(expected, true,
                                             std::memory_order_acquire,
                                             std::memory_order_relaxed)) {
          return s;
        }
      }
      // > kHazardSlots threads mid-handshake at once; the window is a few
      // instructions, so yielding once is plenty.
      std::this_thread::yield();
    }
  }

  void release_slot(hazard_slot& slot) const {
    slot.in_use.store(false, std::memory_order_release);
  }

  std::atomic<graph_version<W>*> head_{nullptr};
  graph_version<W>* retired_ = nullptr;  // writer-owned
  std::uint64_t last_version_ = 0;       // writer-owned
  mutable hazard_slot slots_[kHazardSlots];
};

}  // namespace gbbs::serve
