// Typed queries over a pinned snapshot — the request vocabulary of the
// serving layer. Each query executes entirely against one immutable pinned
// version (graph + connectivity labels), so results are consistent even
// while the writer keeps ingesting: there is no state shared with the
// ingest path at all.
//
// Point reads (degree / neighbors / connected / component) are O(1) or
// O(deg); traversals (bfs_distance) and analytics (kcore_max / triangles)
// reuse the static algorithm suite unmodified — the payoff of publishing
// real CSRs instead of a mutable structure.
//
// Vertices the pinned version has not seen yet (the graph grows under
// ingest, so a query admitted against an older version may reference a
// newer vertex) are treated as isolated: degree 0, unreachable, their own
// singleton component.
#pragma once

#include <cstdint>
#include <vector>

#include "algorithms/bfs.h"
#include "algorithms/kcore.h"
#include "algorithms/triangle.h"
#include "graph/graph.h"
#include "parlib/random.h"
#include "serve/snapshot_store.h"

namespace gbbs::serve {

enum class query_kind : std::uint8_t {
  degree,        // value = out-degree of u
  neighbors,     // list = out-neighborhood of u
  connected,     // value = 1 iff u and v are in the same component
  component,     // value = connectivity label of u in this version
  bfs_distance,  // value = hop distance u -> v (kInfDist if unreachable)
  kcore_max,     // value = degeneracy (max coreness) of the version
  triangles,     // value = triangle count of the version
};

inline const char* query_kind_name(query_kind k) {
  switch (k) {
    case query_kind::degree: return "degree";
    case query_kind::neighbors: return "neighbors";
    case query_kind::connected: return "connected";
    case query_kind::component: return "component";
    case query_kind::bfs_distance: return "bfs_distance";
    case query_kind::kcore_max: return "kcore_max";
    case query_kind::triangles: return "triangles";
  }
  return "?";
}

struct query {
  query_kind kind = query_kind::degree;
  vertex_id u = 0;
  vertex_id v = 0;  // second endpoint (connected / bfs_distance)
};

struct query_result {
  std::uint64_t version = 0;  // snapshot version the query executed against
  std::uint64_t value = 0;
  std::vector<vertex_id> list;  // neighbors payload
  double latency_s = 0;         // filled by the query engine
};

// The serving-style randomized query mix used by run_serve, bench_serve,
// and the concurrency tests: point reads dominate (degree 30% / neighbors
// 30% / connected 20% / component 10%), one in ten queries is a BFS, and
// `heavy` adds rare whole-graph analytics (kcore/triangles, 0.2%).
// Deterministic in (rng, i).
inline query make_mixed_query(const parlib::random& rng, std::size_t i,
                              vertex_id n, bool heavy = false) {
  const auto u = static_cast<vertex_id>(rng.ith_rand(3 * i) % n);
  const auto v = static_cast<vertex_id>(rng.ith_rand(3 * i + 1) % n);
  const std::uint64_t dice = rng.ith_rand(3 * i + 2) % 1000;
  if (heavy && dice >= 998) {
    return {dice == 998 ? query_kind::kcore_max : query_kind::triangles, 0,
            0};
  }
  if (dice < 300) return {query_kind::degree, u, 0};
  if (dice < 600) return {query_kind::neighbors, u, 0};
  if (dice < 800) return {query_kind::connected, u, v};
  if (dice < 900) return {query_kind::component, u, 0};
  return {query_kind::bfs_distance, u, v};
}

// Execute q against one pinned version. Pure read; safe to call from any
// number of threads on the same pinned_snapshot.
template <typename W>
query_result execute_query(const pinned_snapshot<W>& snap, const query& q) {
  const gbbs::graph<W>& g = snap.view();
  const vertex_id n = g.num_vertices();
  query_result r;
  r.version = snap.version();
  switch (q.kind) {
    case query_kind::degree:
      r.value = q.u < n ? g.out_degree(q.u) : 0;
      break;
    case query_kind::neighbors:
      if (q.u < n) {
        const auto nghs = g.out_neighbors(q.u);
        r.list.assign(nghs.begin(), nghs.end());
      }
      break;
    case query_kind::connected: {
      const auto& comp = snap.components();
      if (q.u < comp.size() && q.v < comp.size()) {
        r.value = comp[q.u] == comp[q.v] ? 1 : 0;
      } else {
        r.value = q.u == q.v ? 1 : 0;  // unseen vertices are singletons
      }
      break;
    }
    case query_kind::component: {
      const auto& comp = snap.components();
      r.value = q.u < comp.size() ? comp[q.u] : q.u;
      break;
    }
    case query_kind::bfs_distance:
      if (q.u < n && q.v < n) {
        r.value = gbbs::bfs(g, q.u)[q.v];
      } else {
        r.value = q.u == q.v ? 0 : gbbs::kInfDist;
      }
      break;
    case query_kind::kcore_max:
      r.value = gbbs::kcore(g).max_core;
      break;
    case query_kind::triangles:
      r.value = gbbs::triangle_count(g);
      break;
  }
  return r;
}

}  // namespace gbbs::serve
