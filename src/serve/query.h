// Typed queries over the serving layer — the request vocabulary.
//
// Two execution paths:
//   * execute_query(pinned_snapshot, q): everything runs against one
//     immutable published version (graph + component view), so results
//     are consistent even while the writer keeps ingesting. Traversals
//     (bfs_distance) and analytics (kcore_max / triangles) reuse the
//     static algorithm suite unmodified — the payoff of publishing real
//     CSRs instead of a mutable structure.
//   * execute_point_query(overlay_snapshot, q): point reads (degree /
//     neighbors / connected / component) answered from the *uncompacted*
//     delta overlay the writer refreshes after every ingest — they see
//     updates that are not yet published, decoupling read freshness from
//     publish frequency. Same O(1)/O(deg) costs, one extra small merge.
//
// Vertices a version (or overlay index) has not seen yet (the graph grows
// under ingest, so a query admitted against an older version may
// reference a newer vertex) are treated as isolated: degree 0,
// unreachable, their own singleton component.
#pragma once

#include <cstdint>
#include <vector>

#include "algorithms/bfs.h"
#include "algorithms/kcore.h"
#include "algorithms/triangle.h"
#include "graph/graph.h"
#include "parlib/random.h"
#include "serve/overlay_view.h"
#include "serve/snapshot_store.h"

namespace gbbs::serve {

enum class query_kind : std::uint8_t {
  degree,        // value = out-degree of u
  neighbors,     // list = out-neighborhood of u
  connected,     // value = 1 iff u and v are in the same component
  component,     // value = connectivity label of u in this version
  bfs_distance,  // value = hop distance u -> v (kInfDist if unreachable)
  kcore_max,     // value = degeneracy (max coreness) of the version
  triangles,     // value = triangle count of the version
};

// Point reads are the kinds the overlay path can serve without a
// published version.
inline bool is_point_read(query_kind k) {
  return k == query_kind::degree || k == query_kind::neighbors ||
         k == query_kind::connected || k == query_kind::component;
}

inline const char* query_kind_name(query_kind k) {
  switch (k) {
    case query_kind::degree: return "degree";
    case query_kind::neighbors: return "neighbors";
    case query_kind::connected: return "connected";
    case query_kind::component: return "component";
    case query_kind::bfs_distance: return "bfs_distance";
    case query_kind::kcore_max: return "kcore_max";
    case query_kind::triangles: return "triangles";
  }
  return "?";
}

struct query {
  query_kind kind = query_kind::degree;
  vertex_id u = 0;
  vertex_id v = 0;  // second endpoint (connected / bfs_distance)
};

struct query_result {
  std::uint64_t version = 0;  // snapshot version the query executed against
  std::uint64_t epoch = 0;    // ingest epoch, when served from the overlay
                              // (0: served from a published version)
  std::uint64_t value = 0;
  std::vector<vertex_id> list;  // neighbors payload
  double latency_s = 0;         // filled by the query engine
  bool rejected = false;        // dropped by the bounded-queue policy
};

// The serving-style randomized query mix used by run_serve, bench_serve,
// and the concurrency tests: point reads dominate (degree 30% / neighbors
// 30% / connected 20% / component 10%), one in ten queries is a BFS, and
// `heavy` adds rare whole-graph analytics (kcore/triangles, 0.2%).
// Deterministic in (rng, i).
inline query make_mixed_query(const parlib::random& rng, std::size_t i,
                              vertex_id n, bool heavy = false) {
  const auto u = static_cast<vertex_id>(rng.ith_rand(3 * i) % n);
  const auto v = static_cast<vertex_id>(rng.ith_rand(3 * i + 1) % n);
  const std::uint64_t dice = rng.ith_rand(3 * i + 2) % 1000;
  if (heavy && dice >= 998) {
    return {dice == 998 ? query_kind::kcore_max : query_kind::triangles, 0,
            0};
  }
  if (dice < 300) return {query_kind::degree, u, 0};
  if (dice < 600) return {query_kind::neighbors, u, 0};
  if (dice < 800) return {query_kind::connected, u, v};
  if (dice < 900) return {query_kind::component, u, 0};
  return {query_kind::bfs_distance, u, v};
}

// Execute q against one pinned version. Pure read; safe to call from any
// number of threads on the same pinned_snapshot. Point reads go through
// the version's overlay (base ⊕ deltas) when it has one, so they never
// force the lazy merged-CSR materialization; analytics and traversals use
// view(), paying the (memoized, once-per-version) merge.
template <typename W>
query_result execute_query(const pinned_snapshot<W>& snap, const query& q) {
  const vertex_id n = snap.num_vertices();
  const overlay_snapshot<W>* ov = snap.overlay();
  query_result r;
  r.version = snap.version();
  switch (q.kind) {
    case query_kind::degree:
      if (ov != nullptr) {
        r.value = ov->degree(q.u);
      } else {
        r.value = q.u < n ? snap.view().out_degree(q.u) : 0;
      }
      break;
    case query_kind::neighbors:
      if (ov != nullptr) {
        r.list = ov->neighbors(q.u);
      } else if (q.u < n) {
        const auto nghs = snap.view().out_neighbors(q.u);
        r.list.assign(nghs.begin(), nghs.end());
      }
      break;
    case query_kind::connected:
      // Unseen vertices resolve to their own singleton label, so this
      // covers u/v beyond the version's n as well.
      r.value = snap.components().connected(q.u, q.v) ? 1 : 0;
      break;
    case query_kind::component:
      r.value = snap.components().label(q.u);
      break;
    case query_kind::bfs_distance:
      if (q.u < n && q.v < n) {
        r.value = gbbs::bfs(snap.view(), q.u)[q.v];
      } else {
        r.value = q.u == q.v ? 0 : gbbs::kInfDist;
      }
      break;
    case query_kind::kcore_max:
      r.value = gbbs::kcore(snap.view()).max_core;
      break;
    case query_kind::triangles:
      r.value = gbbs::triangle_count(snap.view());
      break;
  }
  return r;
}

// Execute a point read against an overlay index (the delta-aware fresh
// path). Pure read over immutable shared data; safe from any thread.
// Pre: is_point_read(q.kind).
template <typename W>
query_result execute_point_query(const overlay_snapshot<W>& idx,
                                 const query& q) {
  query_result r;
  r.version = idx.base_version;
  r.epoch = idx.epoch;
  switch (q.kind) {
    case query_kind::degree:
      r.value = idx.degree(q.u);
      break;
    case query_kind::neighbors:
      r.list = idx.neighbors(q.u);
      break;
    case query_kind::connected:
      r.value = idx.cc.connected(q.u, q.v) ? 1 : 0;
      break;
    case query_kind::component:
      r.value = idx.cc.label(q.u);
      break;
    default:
      break;  // unreachable under the precondition
  }
  return r;
}

}  // namespace gbbs::serve
