// Typed queries over the serving layer — the request vocabulary.
//
// Two execution paths, now with matching freshness for point reads *and*
// traversal analytics:
//   * execute_fresh_query(overlay_snapshot, q): everything — point reads
//     (degree / neighbors / connected / component) *and* whole-graph
//     analytics (bfs_distance / kcore_max / triangles /
//     connectivity_refine) — answered from the *uncompacted* delta
//     overlay the writer refreshes after every ingest. Analytics traverse
//     a dynamic_view (the overlay-fused graph_view model), so they see
//     updates that are not yet published and never materialize the merged
//     CSR: edge_map, k-core's peeling, triangle counting's DAG build, and
//     connectivity's LDD all run on base ⊕ overlay fused per neighbor.
//   * execute_query(pinned_snapshot, q): everything runs against one
//     immutable published version, so results are consistent even while
//     the writer keeps ingesting. Analytics use the version's overlay
//     through a dynamic_view by default (again, no merge); a query with
//     `stale = true` explicitly requests the version's *materialized*
//     merged CSR (memoized, built at most once per version) — the right
//     trade when many analytics queries will hit the same version and
//     CSR-contiguous traversal amortizes the one-time merge.
//
// Vertices a version (or overlay index) has not seen yet (the graph grows
// under ingest, so a query admitted against an older version may
// reference a newer vertex) are treated as isolated: degree 0,
// unreachable, their own singleton component.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "algorithms/bfs.h"
#include "algorithms/connectivity.h"
#include "algorithms/kcore.h"
#include "algorithms/triangle.h"
#include "graph/graph.h"
#include "parlib/cancellation.h"
#include "parlib/random.h"
#include "serve/composite_view.h"
#include "serve/dynamic_view.h"
#include "serve/overlay_view.h"
#include "serve/read_set.h"
#include "serve/snapshot_store.h"

namespace gbbs::serve {

enum class query_kind : std::uint8_t {
  degree,        // value = out-degree of u
  neighbors,     // list = out-neighborhood of u
  connected,     // value = 1 iff u and v are in the same component
  component,     // value = connectivity label of u in this version
  bfs_distance,  // value = hop distance u -> v (kInfDist if unreachable)
  kcore_max,     // value = degeneracy (max coreness) of the version
  triangles,     // value = triangle count of the version
  connectivity_refine,  // value = #components by from-scratch traversal
                        // (audits the incrementally maintained labels)

  // Sentinel — keep last. Everything sized per kind (the name table below,
  // the engine's per-kind latency histograms, run_serve's table, the result
  // cache's per-kind stats) derives its extent from this, so adding a kind
  // above without updating a consumer is a compile error, not a silent
  // desync.
  num_kinds,
};

inline constexpr std::size_t kNumQueryKinds =
    static_cast<std::size_t>(query_kind::num_kinds);

// Point reads are the kinds served in O(1)/O(deg) from the overlay index
// without any traversal.
inline bool is_point_read(query_kind k) {
  return k == query_kind::degree || k == query_kind::neighbors ||
         k == query_kind::connected || k == query_kind::component;
}

// One name per kind, indexed by enumerator value. A kind added to the enum
// without a name here value-initializes the tail slot to nullptr and trips
// the static_assert; one name too many fails the array initializer.
inline constexpr std::array<const char*, kNumQueryKinds> kQueryKindNames{
    "degree",       "neighbors", "connected",
    "component",    "bfs_distance", "kcore_max",
    "triangles",    "connectivity_refine"};

static_assert(
    [] {
      for (const char* name : kQueryKindNames) {
        if (name == nullptr) return false;
      }
      return true;
    }(),
    "every query_kind needs an entry in kQueryKindNames");

inline const char* query_kind_name(query_kind k) {
  const auto i = static_cast<std::size_t>(k);
  return i < kNumQueryKinds ? kQueryKindNames[i] : "?";
}

// How a submitted query resolved. Every future the engine hands out becomes
// ready with exactly one of these — there is no "silently empty" result.
enum class query_status : std::uint8_t {
  ok = 0,       // executed; value/list are meaningful
  rejected,     // never executed: shed at admission (queue policy / brownout)
  timed_out,    // deadline expired — in queue (never executed) or mid-flight
                // (partial work discarded)
  cancelled,    // explicitly cancelled via the query's token; partial work
                // discarded
  unavailable,  // nothing published to serve from (store pin failed)
};

inline const char* query_status_name(query_status s) {
  switch (s) {
    case query_status::ok: return "ok";
    case query_status::rejected: return "rejected";
    case query_status::timed_out: return "timed_out";
    case query_status::cancelled: return "cancelled";
    case query_status::unavailable: return "unavailable";
  }
  return "?";
}

inline constexpr std::size_t kNumQueryStatuses = 5;

// Admission priority under overload. The brownout ladder sheds `low`
// analytics first, then all analytics; point reads ride on `high` semantics
// until the final rung regardless of class (see query_engine.h).
enum class query_priority : std::uint8_t { high = 0, normal, low };

struct query {
  query_kind kind = query_kind::degree;
  vertex_id u = 0;
  vertex_id v = 0;  // second endpoint (connected / bfs_distance)
  // Explicitly-stale request: execute against the latest *published*
  // version's materialized merged CSR instead of the fresh overlay view.
  // The materialization is memoized per version, so a stale analytics
  // stream pays one merge per version and then traverses a contiguous
  // CSR; fresh queries (the default) never merge at all.
  bool stale = false;
  // Admission class for the brownout ladder (see query_engine.h).
  query_priority priority = query_priority::normal;
  // Relative deadline in seconds from submit; <= 0 means none. The engine
  // resolves expired queries `timed_out` — at dequeue without executing, or
  // mid-flight through the cooperative cancellation token.
  double deadline_s = 0;
  // Optional caller-owned cancellation token: request_cancel() resolves the
  // query `cancelled` (mid-flight traversals unwind cooperatively). Must
  // outlive the query's future. The engine arms the deadline on it; null
  // means the engine uses an internal token when a deadline is set.
  parlib::cancel::token* cancel = nullptr;
};

struct query_result {
  std::uint64_t version = 0;  // snapshot version the query executed against
  std::uint64_t epoch = 0;    // ingest epoch, when served from the overlay
                              // (0: served from a published version)
  std::uint64_t value = 0;
  std::vector<vertex_id> list;  // neighbors payload
  double latency_s = 0;         // filled by the query engine
  query_status status = query_status::ok;
  // Brownout: analytics answered from the published merged CSR instead of
  // the fresh overlay carry degraded = true plus how many ingested updates
  // the served version is behind the freshest index (bounded by the
  // engine's degraded_staleness_bound).
  bool degraded = false;
  std::uint64_t staleness = 0;

  bool rejected() const { return status == query_status::rejected; }
};

// The serving-style randomized query mix used by run_serve, bench_serve,
// and the concurrency tests: point reads dominate (degree 30% / neighbors
// 30% / connected 20% / component 10%), one in ten queries is a BFS, and
// `heavy` adds rare whole-graph analytics (kcore / triangles /
// connectivity refinement, 0.3%). Deterministic in (rng, i).
inline query make_mixed_query(const parlib::random& rng, std::size_t i,
                              vertex_id n, bool heavy = false) {
  const auto u = static_cast<vertex_id>(rng.ith_rand(3 * i) % n);
  const auto v = static_cast<vertex_id>(rng.ith_rand(3 * i + 1) % n);
  const std::uint64_t dice = rng.ith_rand(3 * i + 2) % 1000;
  if (heavy && dice >= 997) {
    if (dice == 997) return {query_kind::connectivity_refine, 0, 0};
    return {dice == 998 ? query_kind::kcore_max : query_kind::triangles, 0,
            0};
  }
  if (dice < 300) return {query_kind::degree, u, 0};
  if (dice < 600) return {query_kind::neighbors, u, 0};
  if (dice < 800) return {query_kind::connected, u, v};
  if (dice < 900) return {query_kind::component, u, 0};
  return {query_kind::bfs_distance, u, v};
}

namespace query_internal {

// Run one traversal analytics kind over any graph_view model. When `rec`
// is set, the traversal's read-set is captured for the result cache: BFS
// runs over a recording_view (so exactly the rows the frontier expansion
// reads are recorded, plus both query endpoints); the whole-graph kinds
// (kcore / triangles / connectivity refinement) read every row by
// construction and record the universe.
template <graph_view G>
std::uint64_t run_analytics(const G& g, const query& q,
                            read_set_recorder* rec = nullptr) {
  switch (q.kind) {
    case query_kind::bfs_distance: {
      if (rec != nullptr) {
        // Seed with both endpoints: an unreachable / out-of-range target's
        // row is never traversed, but an update touching it can change the
        // answer (a new edge can make it reachable).
        rec->record(q.u);
        rec->record(q.v);
      }
      if (q.u < g.num_vertices() && q.v < g.num_vertices()) {
        if (rec != nullptr) {
          return gbbs::bfs(recording_view<G>(g, rec), q.u)[q.v];
        }
        return gbbs::bfs(g, q.u)[q.v];
      }
      return q.u == q.v ? 0 : gbbs::kInfDist;
    }
    case query_kind::kcore_max:
      if (rec != nullptr) rec->record_all();
      return gbbs::kcore(g).max_core;
    case query_kind::triangles:
      if (rec != nullptr) rec->record_all();
      return gbbs::triangle_count(g);
    case query_kind::connectivity_refine:
      if (rec != nullptr) rec->record_all();
      return gbbs::component_representatives(gbbs::connectivity(g)).size();
    default:
      return 0;  // not an analytics kind
  }
}

}  // namespace query_internal

// Execute q against one pinned version. Pure read; safe to call from any
// number of threads on the same pinned_snapshot. Point reads go through
// the version's overlay (base ⊕ deltas) when it has one; analytics
// traverse the overlay through a dynamic_view — neither materializes the
// merged CSR. Only q.stale analytics pay the (memoized, once-per-version)
// merge via view(). `rec` (optional) captures the analytics read-set for
// the result cache (see run_analytics); point-read kinds derive their
// read-set from the key alone and ignore it.
template <typename W>
query_result execute_query(const pinned_snapshot<W>& snap, const query& q,
                           read_set_recorder* rec = nullptr) {
  const vertex_id n = snap.num_vertices();
  const overlay_snapshot<W>* ov = snap.overlay();
  query_result r;
  r.version = snap.version();
  // Composite (sharded) versions: point reads route to the owning shard's
  // snapshot, analytics traverse the stitched composite_view (or the
  // memoized stitched CSR when explicitly stale). Connectivity kinds fall
  // through to the shared components() path — the barrier-merged view.
  if (const composite_snapshot<W>* cs = snap.composite()) {
    switch (q.kind) {
      case query_kind::degree:
        r.value = cs->degree(q.u);
        return r;
      case query_kind::neighbors:
        r.list = cs->neighbors(q.u);
        return r;
      case query_kind::connected:
      case query_kind::component:
        break;  // components() below
      default:
        if (!q.stale) {
          r.value = query_internal::run_analytics(
              composite_view<W>(snap.composite_handle()), q, rec);
        } else {
          r.value = query_internal::run_analytics(snap.view(), q, rec);
        }
        return r;
    }
  }
  switch (q.kind) {
    case query_kind::degree:
      if (ov != nullptr) {
        r.value = ov->degree(q.u);
      } else {
        r.value = q.u < n ? snap.view().out_degree(q.u) : 0;
      }
      break;
    case query_kind::neighbors:
      if (ov != nullptr) {
        r.list = ov->neighbors(q.u);
      } else if (q.u < n) {
        const auto nghs = snap.view().out_neighbors(q.u);
        r.list.assign(nghs.begin(), nghs.end());
      }
      break;
    case query_kind::connected:
      // Unseen vertices resolve to their own singleton label, so this
      // covers u/v beyond the version's n as well.
      r.value = snap.components().connected(q.u, q.v) ? 1 : 0;
      break;
    case query_kind::component:
      r.value = snap.components().label(q.u);
      break;
    default:  // traversal analytics
      if (ov != nullptr && !q.stale) {
        r.value = query_internal::run_analytics(
            dynamic_view<W>(snap.overlay_handle()), q, rec);
      } else {
        r.value = query_internal::run_analytics(snap.view(), q, rec);
      }
      break;
  }
  return r;
}

// Execute any query against the freshest overlay index (the delta-aware
// fresh path): point reads straight off the index, analytics through the
// overlay-fused dynamic_view. Pure read over immutable shared data; safe
// from any thread. Never materializes the merged CSR. `rec` (optional)
// captures the analytics read-set for the result cache.
template <typename W>
query_result execute_fresh_query(
    std::shared_ptr<const overlay_snapshot<W>> idx, const query& q,
    read_set_recorder* rec = nullptr) {
  query_result r;
  r.version = idx->base_version;
  r.epoch = idx->epoch;
  switch (q.kind) {
    case query_kind::degree:
      r.value = idx->degree(q.u);
      break;
    case query_kind::neighbors:
      r.list = idx->neighbors(q.u);
      break;
    case query_kind::connected:
      r.value = idx->cc.connected(q.u, q.v) ? 1 : 0;
      break;
    case query_kind::component:
      r.value = idx->cc.label(q.u);
      break;
    default:
      r.value = query_internal::run_analytics(
          dynamic_view<W>(std::move(idx)), q, rec);
      break;
  }
  return r;
}

// Backwards-compatible name for the point-read-only entry point (the
// fresh path now serves every kind). Pre: any kind is fine.
template <typename W>
query_result execute_point_query(const overlay_snapshot<W>& idx,
                                 const query& q) {
  // The shared_ptr aliasing constructor keeps no ownership: callers of
  // this legacy signature already guarantee idx outlives the call.
  return execute_fresh_query(
      std::shared_ptr<const overlay_snapshot<W>>(
          std::shared_ptr<const overlay_snapshot<W>>{}, &idx),
      q);
}

}  // namespace gbbs::serve
