// Reader pool: N threads draining a queue of typed queries, each query
// executing against the snapshot version current at admission (the worker
// pins the store's latest version right before executing, holds the pin for
// exactly the query's duration, and records the version in the result).
//
// The pool runs concurrently with the single writer publishing into the
// same snapshot_store — admission control is the lock-free pin, so readers
// never block ingest and ingest never blocks readers; the submission queue
// itself is a plain mutex + condvar (contended only at enqueue/dequeue, not
// during execution).
//
// Queries that internally use parallel algorithms (bfs/kcore/triangles) run
// on the shared parlib work-stealing scheduler; reader threads are not
// scheduler workers, but par_do from foreign threads is safe (jobs enqueue
// on deque 0, pop_if validates identity) — concurrent queries simply share
// the worker pool.
//
// Lifetime: the engine must be destroyed (or stop()ed) before the
// snapshot_store it reads from. The destructor finishes all queued queries
// first, so every future obtained from submit() becomes ready.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "serve/query.h"
#include "serve/snapshot_store.h"

namespace gbbs::serve {

template <typename W>
class query_engine {
 public:
  explicit query_engine(const snapshot_store<W>& store,
                        std::size_t num_readers = 4)
      : store_(store) {
    if (num_readers == 0) num_readers = 1;
    readers_.reserve(num_readers);
    for (std::size_t i = 0; i < num_readers; ++i) {
      readers_.emplace_back([this] { reader_loop(); });
    }
  }

  query_engine(const query_engine&) = delete;
  query_engine& operator=(const query_engine&) = delete;

  ~query_engine() { stop(); }

  // Enqueue a query; the future resolves once a reader has executed it.
  // Thread-safe. Latency is measured submit -> completion (queue wait
  // included), the client-observed number. A submit that races with (or
  // follows) stop() is rejected: its future resolves immediately with a
  // default result (version 0), never left unready.
  std::future<query_result> submit(query q) {
    item it;
    it.q = q;
    it.submitted = std::chrono::steady_clock::now();
    std::future<query_result> fut = it.promise.get_future();
    {
      std::lock_guard<std::mutex> lk(mutex_);
      if (stopping_) {
        it.promise.set_value(query_result{});
        return fut;
      }
      queue_.push_back(std::move(it));
      ++submitted_;
    }
    work_cv_.notify_one();
    return fut;
  }

  // Block until every submitted query has completed.
  void drain() {
    std::unique_lock<std::mutex> lk(mutex_);
    idle_cv_.wait(lk, [this] { return completed_ == submitted_; });
  }

  // Finish all queued queries, then join the readers. Idempotent.
  void stop() {
    {
      std::lock_guard<std::mutex> lk(mutex_);
      if (stopping_) return;
      stopping_ = true;
    }
    work_cv_.notify_all();
    for (auto& t : readers_) t.join();
    readers_.clear();
  }

  std::size_t num_readers() const { return readers_.size(); }

  std::uint64_t completed() const {
    std::lock_guard<std::mutex> lk(mutex_);
    return completed_;
  }

 private:
  struct item {
    query q;
    std::chrono::steady_clock::time_point submitted;
    std::promise<query_result> promise;
  };

  void reader_loop() {
    for (;;) {
      item it;
      {
        std::unique_lock<std::mutex> lk(mutex_);
        work_cv_.wait(lk, [this] { return !queue_.empty() || stopping_; });
        if (queue_.empty()) return;  // stopping and drained
        it = std::move(queue_.front());
        queue_.pop_front();
      }
      // Admission: pin the version current right now; the query sees this
      // version regardless of how far ingest advances while it runs.
      query_result r;
      if (pinned_snapshot<W> snap = store_.pin()) {
        r = execute_query(snap, it.q);
      }
      r.latency_s = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - it.submitted)
                        .count();
      it.promise.set_value(std::move(r));
      bool idle;
      {
        std::lock_guard<std::mutex> lk(mutex_);
        ++completed_;
        idle = completed_ == submitted_;
      }
      if (idle) idle_cv_.notify_all();
    }
  }

  const snapshot_store<W>& store_;
  std::vector<std::thread> readers_;

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::deque<item> queue_;
  std::uint64_t submitted_ = 0;
  std::uint64_t completed_ = 0;
  bool stopping_ = false;
};

}  // namespace gbbs::serve
