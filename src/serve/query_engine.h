// Reader pool: N threads draining a queue of typed queries.
//
// Routing. When the engine was given an overlay_view, *every* query kind
// defaults to the freshest overlay index — point reads straight off it,
// traversal analytics (bfs / kcore / triangles / connectivity refinement)
// through the overlay-fused dynamic_view — so analytics freshness matches
// the point-read path and no query materializes the merged CSR. A query
// with `stale = true` — and every query, when no overlay is wired — pins
// the store's latest published version right before executing, holds the
// pin for exactly the query's duration, and records the version in the
// result (stale analytics use the version's memoized merged CSR).
//
// Sharded routing. When the engine was given a shard_router (the sharded
// ingest path, see sharded_ingest.h), per-vertex point reads (degree /
// neighbors) go to the *owning* shard's seqlock overlay_view — no
// cross-shard coordination on the read hot path, freshness = that shard's
// last apply. Everything else — connectivity point reads, whose labels
// are only merged across shards at the composite-publish barrier, and
// whole-graph analytics, which need all shards at one clock value — pins
// the latest composite version (execute_query routes through the stitched
// composite payload).
//
// The pool runs concurrently with the single writer publishing into the
// same snapshot_store — admission control is the lock-free pin (or the
// seqlock overlay read), so readers never block ingest and ingest never
// blocks readers; the submission queue itself is a plain mutex + condvar
// (contended only at enqueue/dequeue, not during execution).
//
// Admission control. The submit queue can be bounded
// (query_engine_options::max_queue) so an ingest-driven query burst
// cannot grow it without limit: `reject` resolves overflowing submits
// immediately with status = rejected (dropped() counts them); `block`
// makes submit wait for space — backpressure on the producer.
//
// Robustness (PR 8). Queries may carry a relative deadline: one that
// expires while queued resolves timed_out without executing, and one that
// expires mid-flight is stopped cooperatively — the reader binds a
// cancellation token (parlib/cancellation.h) for the execution, edge_map
// and the bucketing executor poll it, and par_do propagates it into
// stolen subtasks, so the whole traversal tree unwinds and the partial
// result is discarded. Every future resolves with exactly one
// query_status. Under overload a brownout controller (options.brownout)
// walks the degradation ladder documented on query_engine_options —
// degrade analytics to the published merged CSR (bounded staleness),
// then shed by priority — keeping point reads live until the queue is
// hard-full. Failpoints (robust/failpoint.h) can force every one of
// these paths deterministically.
//
// SLO + stage accounting (the obs layer). Every query is decomposed into
// the three pipeline stages — queue wait (submit -> dequeue), view
// selection (dequeue -> overlay read / version pin / stale-routing
// decision), execute — and each stage plus the total client-observed
// latency is recorded into worker-sharded obs::histograms (bounded
// memory, exact counts/maxima, bucket-estimated percentiles; one lock-free
// sharded increment per stage on the hot path). The per-kind histograms
// are attached to the global obs registry as "serve.query.*" for the
// -metrics-json / live-endpoint exports, and fold into registry-owned
// totals when the engine is destroyed. When the options carry SLO targets
// (one for point reads, one for analytics), per-kind violations are
// counted exactly. latency_by_kind() summarizes count / p50 / p99 / max /
// violations plus the queue-wait and execute breakdown per kind — the
// numbers run_serve prints and bench_serve -json emits, so per-kind
// latency regressions (and submit-queue backpressure, previously hidden
// inside the total) surface in CI.
//
// Scheduler participation. Every reader thread registers itself with the
// parlib scheduler (worker_guard) at pool startup, so query-internal
// par_do forks land on the reader's *own* deque — stealable by native
// workers and by the other readers' waiting frames — instead of funneling
// through deque 0 as unknown threads used to. N concurrent analytics
// queries therefore fork from N distinct deques at full parallelism. The
// engine measures where forks land (scheduler::push_count on the reader's
// slot, flushed into parlib::event_counters::sched_reader_forks once per
// query) so tests and benches can assert the registration is effective.
//
// Adaptive stale-routing (options.stale_auto). The fresh analytics path
// traverses base ⊕ overlay fused per neighbor — never materializing the
// merged CSR — which is the right trade while the graph keeps changing.
// But an analytics-heavy stretch on an *unchanged* graph amortizes the
// version's memoized merge: after stale_auto_threshold consecutive
// analytics against one (version, epoch), the engine auto-routes further
// analytics to the latest *published* version's merged CSR — but only
// when that version covers exactly the same updates as the fresh overlay
// (snap.updates_ingested == overlay epoch), so routed results are
// identical to fresh ones and freshness is never silently lost. The
// manual q.stale flag remains an unconditional override.
//
// Result cache (options.cache — see result_cache.h). When wired, a
// non-stale query first consults the cache ("serve.cache.lookup" span): a
// hit skips execution entirely and is provably identical to re-executing
// fresh (the cache's read-set/epoch check). Misses execute normally with
// a read-set recorder threaded through the traversal and publish the
// result back. The same cache instance must be attached to the ingest
// manager (attach_cache) so batches invalidate it; the engine and the
// manager must share one cache, and one engine serves one ingest domain.
// Explicitly-stale, degraded, and non-ok results are never cached.
//
// Standing queries (subscribe()). A subscription registers a watch
// evaluated once at registration and then re-evaluated only when an
// ingest batch touches its recorded read-set (the cache's delta-summary
// listener feeds the trigger). Results are pushed into a bounded
// drop-oldest channel (poll / wait, plus an optional callback invoked
// from the evaluating reader thread). Re-evaluations ride the normal
// reader pool — they appear in the per-kind stats — and coalesce: batches
// landing while a re-eval is in flight collapse into one follow-up
// evaluation, so a subscriber always converges to the freshest answer
// without unbounded queueing. Requires options.cache.
//
// Lifetime: the engine must be destroyed (or stop()ed) before the
// snapshot_store / overlay_view it reads from. The destructor finishes
// all queued queries first, so every future obtained from submit()
// becomes ready; stop() also closes every subscription channel.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "obs/exemplar.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "parlib/cancellation.h"
#include "parlib/counters.h"
#include "parlib/scheduler.h"
#include "parlib/trace_hooks.h"
#include "robust/failpoint.h"
#include "serve/overlay_view.h"
#include "serve/query.h"
#include "serve/read_set.h"
#include "serve/result_cache.h"
#include "serve/snapshot_store.h"

namespace gbbs::serve {

// A standing query's live handle (see query_engine::subscribe). Results
// are pushed into a bounded drop-oldest channel: a slow consumer loses
// the *oldest* undelivered results (dropped() counts them) and always
// finds the freshest at the back — convergence beats completeness for a
// watch. Thread-safe; outliving the engine is fine (the channel is closed
// at engine stop and poll/wait then report what is already buffered).
class subscription {
 public:
  // Non-blocking: pop the oldest buffered result. False if none buffered.
  bool poll(query_result* out) {
    std::lock_guard<std::mutex> lk(mu_);
    if (chan_.empty()) return false;
    *out = std::move(chan_.front());
    chan_.pop_front();
    return true;
  }

  // Block until a result is available (or timeout / channel close). False
  // on timeout or close with nothing buffered.
  bool wait(query_result* out, double timeout_s) {
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait_for(lk, std::chrono::duration<double>(timeout_s),
                 [&] { return !chan_.empty() || closed_; });
    if (chan_.empty()) return false;
    *out = std::move(chan_.front());
    chan_.pop_front();
    return true;
  }

  // Results pushed into the channel (including any later dropped).
  std::uint64_t delivered() const {
    std::lock_guard<std::mutex> lk(mu_);
    return delivered_;
  }
  // Results evicted unread by the drop-oldest overflow policy.
  std::uint64_t dropped() const {
    std::lock_guard<std::mutex> lk(mu_);
    return dropped_;
  }
  bool closed() const {
    std::lock_guard<std::mutex> lk(mu_);
    return closed_;
  }
  const query& watched() const { return q_; }

 private:
  template <typename>
  friend class query_engine;

  subscription(query q, std::size_t cap,
               std::function<void(const query_result&)> cb)
      : q_(q), cap_(cap == 0 ? 1 : cap), cb_(std::move(cb)) {}

  // Called by the evaluating reader thread; the optional callback runs
  // there too (keep it cheap, it holds a reader).
  void deliver(const query_result& r) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (closed_) return;
      if (chan_.size() >= cap_) {
        chan_.pop_front();
        ++dropped_;
      }
      chan_.push_back(r);
      ++delivered_;
    }
    cv_.notify_all();
    if (cb_) cb_(r);
  }

  void close() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  const query q_;
  const std::size_t cap_;
  const std::function<void(const query_result&)> cb_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<query_result> chan_;
  std::uint64_t delivered_ = 0;
  std::uint64_t dropped_ = 0;
  bool closed_ = false;

  // Engine-side trigger state, guarded by the engine's subs_mutex_:
  // reads_ is the read-set of the last evaluation (all-buckets until the
  // first one lands); eval_state_ coalesces triggers — 0 idle, 1 re-eval
  // queued or running, 2 running with a batch landed since (one follow-up
  // re-eval is queued when it finishes).
  bucket_set reads_;
  int eval_state_ = 0;
};

struct query_engine_options {
  // Max queries waiting in the submit queue; 0 = unbounded (the PR-2
  // behavior). In-flight queries (being executed) don't count.
  std::size_t max_queue = 0;
  enum class overflow_policy : std::uint8_t {
    reject,  // overflowing submit resolves immediately, rejected = true
    block,   // overflowing submit waits until the queue has space
  };
  overflow_policy on_overflow = overflow_policy::reject;

  // Latency SLO targets (seconds); 0 disables. Point reads (degree /
  // neighbors / connected / component) are held to slo_point_s, traversal
  // analytics to slo_analytics_s. Violations are counted per kind.
  double slo_point_s = 0;
  double slo_analytics_s = 0;

  // Adaptive stale-routing: after `stale_auto_threshold` consecutive
  // analytics against one unchanged (version, epoch), route further
  // analytics to the published version's memoized merged CSR — only when
  // lossless (the published version covers the same updates as the fresh
  // overlay). The manual query.stale flag still forces the stale path.
  bool stale_auto = false;
  std::uint32_t stale_auto_threshold = 4;

  // Brownout controller (overload protection). When enabled, submit-side
  // admission walks a degradation ladder driven by queue depth (and,
  // optionally, the all-kind queue-wait p99):
  //   level 0  normal
  //   level 1  degrade: analytics answered from the published memoized
  //            merged CSR with a bounded-staleness annotation
  //            (result.degraded / result.staleness)
  //   level 2  + shed low-priority analytics (status = rejected)
  //   level 3  + shed all analytics; point reads stay admitted until the
  //            queue is hard-full
  // Depth rungs default to max_queue * {1/4, 1/2, 3/4}; stepping down
  // requires depth <= rung/2 (hysteresis, no flapping at a rung edge).
  // Transitions are counted, gauged (serve.degrade.level), and tagged in
  // the flight recorder. Requires a bounded queue (or explicit rungs).
  bool brownout = false;
  std::size_t brownout_depth_degrade = 0;   // 0 = max_queue / 4
  std::size_t brownout_depth_shed_low = 0;  // 0 = max_queue / 2
  std::size_t brownout_depth_shed_all = 0;  // 0 = 3 * max_queue / 4
  // Escalate one extra rung while the all-kind queue-wait p99 exceeds
  // this many seconds; 0 disables the latency input (depth-only ladder).
  double brownout_queue_wait_p99_s = 0;
  // Max ingested updates the published version may lag the fresh overlay
  // for a degraded (level >= 1) analytics answer. Beyond the bound the
  // fresh path is used even under brownout — degradation is lossy but
  // never unboundedly stale.
  std::uint64_t degraded_staleness_bound = 1ull << 16;

  // Result cache (result_cache.h): non-stale queries consult it before
  // executing and publish canonical results back into it; also the
  // delta-summary source for subscribe(). The same instance MUST be
  // attached to the ingest manager feeding this engine's store/overlay
  // (snapshot_manager::attach_cache / sharded's), and must outlive the
  // engine. Null disables caching and standing queries.
  result_cache* cache = nullptr;
};

template <typename W>
class query_engine {
 public:
  // Per-kind latency summary (seconds). Counts, maxima, and violations
  // are exact; percentiles are estimated from the obs histogram's
  // log-linear buckets (<= ~6% relative error). The queue/exec pairs
  // split the total into time waiting in the submit queue vs time
  // executing, so backpressure from a bounded queue is visible.
  struct kind_stats {
    std::uint64_t count = 0;
    std::uint64_t slo_violations = 0;
    double p50_s = 0;
    double p99_s = 0;
    double max_s = 0;
    double queue_p50_s = 0;
    double queue_p99_s = 0;
    double exec_p50_s = 0;
    double exec_p99_s = 0;
  };

  // Snapshot-only engine: every query pins a published version.
  explicit query_engine(const snapshot_store<W>& store,
                        std::size_t num_readers = 4,
                        query_engine_options options = {})
      : query_engine(store, nullptr, num_readers, options) {}

  // Sharded engine: per-vertex point reads route to the owning shard's
  // overlay (router = manager.router()); everything else pins the latest
  // composite version. The routed overlay_views must outlive the engine.
  query_engine(const snapshot_store<W>& store, shard_router<W> router,
               std::size_t num_readers = 4, query_engine_options options = {})
      : query_engine(store, nullptr, num_readers, options,
                     std::move(router)) {}

  // Engine with a fresh path: all kinds are served from `overlay`
  // (pass &manager.overlay()) unless a query asks for `stale`.
  query_engine(const snapshot_store<W>& store,
               const overlay_view<W>* overlay, std::size_t num_readers = 4,
               query_engine_options options = {},
               shard_router<W> router = {})
      : store_(store),
        overlay_(overlay),
        router_(std::move(router)),
        options_(options) {
    if (num_readers == 0) num_readers = 1;
    // Materialize the scheduler from the constructing thread before any
    // reader runs: if this were the process's first scheduler touch, a
    // transient reader thread would otherwise be bound as native worker 0
    // (see scheduler.h) and orphan that slot at engine shutdown.
    parlib::scheduler::instance();
    // Flight recorder + exemplar store before the first traced query, so
    // the scheduler hook and registry callbacks are installed (both are
    // idempotent leaked singletons). Intern the per-kind timeline names
    // once; the reader loop stamps them on query spans.
    auto& fr = obs::flight_recorder::global();
    obs::exemplar_store::global();
    for (std::size_t k = 0; k < kNumQueryKinds; ++k) {
      kind_name_ids_[k] = fr.intern(
          "serve.query." +
          std::string(query_kind_name(static_cast<query_kind>(k))));
    }
    timed_out_name_id_ = fr.intern("serve.query.timed_out");
    cancelled_name_id_ = fr.intern("serve.query.cancelled");
    brownout_name_id_ = fr.intern("serve.brownout.level");
    // Export the per-kind stage histograms through the obs registry (live
    // while the engine runs; folded into registry-owned totals on
    // destruction so at-exit snapshots keep them).
    auto& reg = obs::registry::global();
    for (std::size_t k = 0; k < kNumQueryKinds; ++k) {
      const std::string kind = query_kind_name(static_cast<query_kind>(k));
      registrations_.push_back(reg.attach_histogram(
          "serve.query.latency." + kind, &kind_metrics_[k].latency));
      registrations_.push_back(reg.attach_histogram(
          "serve.query.queue_wait." + kind, &kind_metrics_[k].queue_wait));
      registrations_.push_back(reg.attach_histogram(
          "serve.query.execute." + kind, &kind_metrics_[k].execute));
    }
    registrations_.push_back(
        reg.attach_histogram("serve.query.view_select", &view_select_));
    registrations_.push_back(reg.attach_histogram(
        "serve.query.queue_wait.all", &queue_wait_all_));
    // Robustness counters live in the registry (stable refs, cached here)
    // so they surface in -metrics-json / Prometheus without a bridge.
    timed_out_ctr_ = &reg.get_counter("serve.query.timed_out");
    shed_ctr_ = &reg.get_counter("serve.query.shed");
    cancelled_ctr_ = &reg.get_counter("serve.query.cancelled");
    unavailable_ctr_ = &reg.get_counter("serve.query.unavailable");
    degraded_ctr_ = &reg.get_counter("serve.query.degraded");
    degrade_transitions_ctr_ = &reg.get_counter("serve.degrade.transitions");
    degrade_level_gauge_ = &reg.get_gauge("serve.degrade.level");
    // Brownout rungs: explicit options win; otherwise derived from the
    // queue bound. No bound and no rungs means no ladder to stand on.
    bn_degrade_ = options_.brownout_depth_degrade != 0
                      ? options_.brownout_depth_degrade
                      : options_.max_queue / 4;
    bn_shed_low_ = options_.brownout_depth_shed_low != 0
                       ? options_.brownout_depth_shed_low
                       : options_.max_queue / 2;
    bn_shed_all_ = options_.brownout_depth_shed_all != 0
                       ? options_.brownout_depth_shed_all
                       : options_.max_queue - options_.max_queue / 4;
    brownout_enabled_ = options_.brownout && bn_degrade_ != 0 &&
                        bn_shed_low_ != 0 && bn_shed_all_ != 0;
    cache_ = options_.cache;
    if (cache_ != nullptr) {
      cache_hit_name_id_ = fr.intern("serve.cache.hit");
      cache_miss_name_id_ = fr.intern("serve.cache.miss");
      // Standing-query trigger: the ingest manager publishes each batch's
      // touched-bucket summary through the shared cache once the batch is
      // reader-visible; intersecting subscriptions get a re-eval enqueued
      // on the normal reader pool. Removed in stop() before the engine's
      // state can go away.
      cache_listener_id_ = cache_->add_listener(
          [this](const bucket_set& touched, std::uint64_t epoch) {
            on_delta(touched, epoch);
          });
    }
    readers_.reserve(num_readers);
    for (std::size_t i = 0; i < num_readers; ++i) {
      readers_.emplace_back([this] { reader_loop(); });
    }
  }

  query_engine(const query_engine&) = delete;
  query_engine& operator=(const query_engine&) = delete;

  ~query_engine() { stop(); }

  // Enqueue a query; the future resolves once a reader has executed it.
  // Thread-safe. Latency is measured submit -> completion (queue wait
  // included), the client-observed number. A submit that races with (or
  // follows) stop() is rejected: its future resolves immediately with
  // status = rejected (and counts toward dropped()), never left unready.
  // A submit overflowing a bounded queue follows the configured policy;
  // brownout shedding (see query_engine_options) also resolves here, so a
  // shed query costs its client one allocation and zero reader time.
  std::future<query_result> submit(query q) {
    item it;
    it.q = q;
    it.submitted = std::chrono::steady_clock::now();
    if (q.deadline_s > 0) {
      it.has_deadline = true;
      it.deadline =
          it.submitted +
          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
              std::chrono::duration<double>(q.deadline_s));
    }
    // Every query is one request timeline: the id set here follows the
    // query across the queue hand-off (flow events), into the reader's
    // execute span, and down into any scheduler forks/steals the
    // algorithm triggers.
    it.trace_id = obs::flight_recorder::global().next_trace_id();
    const std::uint64_t trace_id = it.trace_id;
    std::future<query_result> fut = it.promise.get_future();
    {
      std::unique_lock<std::mutex> lk(mutex_);
      if (options_.max_queue != 0 &&
          options_.on_overflow ==
              query_engine_options::overflow_policy::block) {
        space_cv_.wait(lk, [this] {
          return queue_.size() < options_.max_queue || stopping_;
        });
      }
      if (stopping_) {
        query_result r;
        r.status = query_status::rejected;  // not served
        ++dropped_;
        it.promise.set_value(std::move(r));
        return fut;
      }
      if (brownout_enabled_) {
        update_brownout_locked();
        const int level = degrade_level_.load(std::memory_order_relaxed);
        // Point reads ride through every rung; analytics are shed at
        // level 2 (low priority) and level 3 (all priorities).
        if (!is_point_read(q.kind) &&
            (level >= 3 ||
             (level >= 2 && q.priority == query_priority::low))) {
          shed_.fetch_add(1, std::memory_order_relaxed);
          shed_ctr_->add();
          query_result r;
          r.status = query_status::rejected;
          it.promise.set_value(std::move(r));
          return fut;
        }
      }
      // serve.submit.saturate: behave as if the queue were full. Forced
      // saturation rejects even under the block policy — a blocked submit
      // would deadlock the injection.
      const bool saturated = GBBS_FAILPOINT_TRIGGERED("serve.submit.saturate");
      if (saturated ||
          (options_.max_queue != 0 && queue_.size() >= options_.max_queue)) {
        ++dropped_;
        query_result r;
        r.status = query_status::rejected;
        it.promise.set_value(std::move(r));
        return fut;
      }
      queue_.push_back(std::move(it));
      ++submitted_;
    }
    // Flow source on the submitting thread: pairs with the reader's
    // flow_end at dequeue (flow id = the trace id), drawing the
    // queue-wait arrow across threads in the Perfetto view.
    obs::flight_recorder::global().emit_with_id(
        obs::event_type::flow_begin, trace_id, 0, trace_id);
    work_cv_.notify_one();
    return fut;
  }

  // Block until every submitted query has completed.
  void drain() {
    std::unique_lock<std::mutex> lk(mutex_);
    idle_cv_.wait(lk, [this] { return completed_ == submitted_; });
  }

  // Finish all queued queries, then join the readers. Idempotent. Also
  // detaches the cache listener (no standing-query triggers fire after
  // this returns) and closes every subscription channel so blocked
  // wait()ers wake.
  void stop() {
    {
      std::lock_guard<std::mutex> lk(mutex_);
      if (stopping_) return;
      stopping_ = true;
    }
    work_cv_.notify_all();
    space_cv_.notify_all();
    for (auto& t : readers_) t.join();
    readers_.clear();
    if (cache_ != nullptr && cache_listener_id_ != 0) {
      // Blocks until no notify() is mid-listener, so after this the
      // ingest thread can no longer reach into this engine.
      cache_->remove_listener(cache_listener_id_);
      cache_listener_id_ = 0;
    }
    std::vector<std::shared_ptr<subscription>> subs;
    {
      std::lock_guard<std::mutex> lk(subs_mutex_);
      subs.swap(subs_);
    }
    for (const auto& sp : subs) sp->close();
  }

  // Register a standing query: evaluated once now, then re-evaluated
  // whenever an ingest batch touches its recorded read-set, each result
  // pushed into the subscription's bounded channel (and the optional
  // callback, invoked from the evaluating reader thread). Requires a
  // wired result cache — returns nullptr without one. The handle returned
  // by a subscribe() racing stop() comes back already closed. Thread-safe.
  std::shared_ptr<subscription> subscribe(
      query q, std::size_t channel_capacity = 8,
      std::function<void(const query_result&)> callback = {}) {
    if (cache_ == nullptr) return nullptr;
    // Standing queries are engine-managed: deadline/cancel/stale belong
    // to one-shot requests.
    q.deadline_s = 0;
    q.cancel = nullptr;
    q.stale = false;
    auto sp = std::shared_ptr<subscription>(
        new subscription(q, channel_capacity, std::move(callback)));
    // Trigger on anything until the first evaluation records the real
    // read-set (sound: never misses a relevant batch).
    sp->reads_.set_all();
    {
      std::lock_guard<std::mutex> lk(subs_mutex_);
      subs_.push_back(sp);
      sp->eval_state_ = 1;
    }
    if (!enqueue_sub(sp)) {
      std::lock_guard<std::mutex> lk(subs_mutex_);
      sp->eval_state_ = 0;
      sp->close();
    }
    return sp;
  }

  // Deregister a standing query and close its channel (already-buffered
  // results stay pollable). An in-flight re-evaluation may still finish;
  // its delivery lands on a closed channel and is discarded.
  void unsubscribe(const std::shared_ptr<subscription>& sp) {
    if (sp == nullptr) return;
    {
      std::lock_guard<std::mutex> lk(subs_mutex_);
      for (std::size_t i = 0; i < subs_.size(); ++i) {
        if (subs_[i] == sp) {
          subs_.erase(subs_.begin() + static_cast<std::ptrdiff_t>(i));
          break;
        }
      }
    }
    sp->close();
  }

  std::size_t num_subscriptions() const {
    std::lock_guard<std::mutex> lk(subs_mutex_);
    return subs_.size();
  }

  std::size_t num_readers() const { return readers_.size(); }

  std::uint64_t completed() const {
    std::lock_guard<std::mutex> lk(mutex_);
    return completed_;
  }

  // Queries rejected by the bounded-queue overflow policy.
  std::uint64_t dropped() const {
    std::lock_guard<std::mutex> lk(mutex_);
    return dropped_;
  }

  // Jobs the reader threads forked onto their *own* scheduler deques while
  // executing queries (0 if readers could not register, e.g. slot-table
  // exhaustion, or if every query ran without forking). The per-reader-
  // deque evidence that concurrent queries don't funnel through deque 0.
  std::uint64_t reader_forks() const {
    return reader_forks_.load(std::memory_order_relaxed);
  }

  // Analytics auto-routed to a published version's memoized merged CSR by
  // the adaptive stale policy (always 0 unless options.stale_auto).
  std::uint64_t stale_auto_routed() const {
    return stale_auto_routed_.load(std::memory_order_relaxed);
  }

  // ---- robustness observability -------------------------------------------

  // Queries resolved timed_out (deadline expired in queue or mid-flight).
  std::uint64_t timed_out() const {
    return timed_out_.load(std::memory_order_relaxed);
  }
  // Queries resolved cancelled via an explicit token.
  std::uint64_t cancelled_queries() const {
    return cancelled_.load(std::memory_order_relaxed);
  }
  // Analytics shed by the brownout ladder (status = rejected at submit).
  std::uint64_t shed() const {
    return shed_.load(std::memory_order_relaxed);
  }
  // Queries resolved unavailable (nothing published to serve from).
  std::uint64_t unavailable() const {
    return unavailable_.load(std::memory_order_relaxed);
  }
  // Analytics answered degraded (published merged CSR under brownout).
  std::uint64_t degraded_served() const {
    return degraded_.load(std::memory_order_relaxed);
  }
  // Current brownout rung (0 = normal .. 3 = shed all analytics).
  int degrade_level() const {
    return degrade_level_.load(std::memory_order_relaxed);
  }
  // Ladder transitions (every level change, up or down).
  std::uint64_t degrade_transitions() const {
    return degrade_transitions_.load(std::memory_order_relaxed);
  }

  // Per-kind latency/SLO summary over everything completed so far.
  // Counts, maxima, and violations are exact; percentiles are estimated
  // from the sharded stage histograms. Index with
  // static_cast<std::size_t>(query_kind).
  std::array<kind_stats, kNumQueryKinds> latency_by_kind() const {
    std::array<kind_stats, kNumQueryKinds> out;
    for (std::size_t k = 0; k < kNumQueryKinds; ++k) {
      const auto total = kind_metrics_[k].latency.read();
      out[k].count = total.count;
      out[k].slo_violations =
          slo_violations_[k].load(std::memory_order_relaxed);
      if (total.count == 0) continue;
      out[k].p50_s = total.p50_s;
      out[k].p99_s = total.p99_s;
      out[k].max_s = total.max_s;
      const auto queue = kind_metrics_[k].queue_wait.read();
      out[k].queue_p50_s = queue.p50_s;
      out[k].queue_p99_s = queue.p99_s;
      const auto exec = kind_metrics_[k].execute.read();
      out[k].exec_p50_s = exec.p50_s;
      out[k].exec_p99_s = exec.p99_s;
    }
    return out;
  }

 private:
  struct item {
    query q;
    std::chrono::steady_clock::time_point submitted;
    std::chrono::steady_clock::time_point deadline;  // absolute, from
                                                     // q.deadline_s
    bool has_deadline = false;
    std::promise<query_result> promise;
    std::uint64_t trace_id = 0;  // flight-recorder request id
    // Set for standing-query re-evaluations: the result is delivered into
    // the subscription's channel (the promise has no consumer), the cache
    // is bypassed, and the read-set is re-recorded.
    std::shared_ptr<subscription> sub;
  };

  // Stage histograms for one query kind (worker-sharded, lock-free on the
  // record path — see obs/metrics.h).
  struct kind_metrics {
    obs::histogram latency;     // submit -> completion (client-observed)
    obs::histogram queue_wait;  // submit -> dequeue by a reader
    obs::histogram execute;     // view selected -> result computed
  };

  double slo_for(query_kind k) const {
    return is_point_read(k) ? options_.slo_point_s
                            : options_.slo_analytics_s;
  }

  static std::uint64_t stale_state_key(std::uint64_t version,
                                       std::uint64_t epoch) {
    return version * 0x9E3779B97F4A7C15ull ^ (epoch + 1);
  }

  // The pinned version's position on the cache's invalidation clock: the
  // composite batch-version clock for sharded versions, the ingested-
  // update count for single-writer ones — each the domain the owning
  // manager's invalidate() calls use.
  static std::uint64_t pinned_epoch(const pinned_snapshot<W>& snap) {
    if (const composite_snapshot<W>* cs = snap.composite()) {
      return cs->clock;
    }
    return snap.updates_ingested();
  }

  // Walk the brownout ladder. Called from submit with mutex_ held (queue
  // depth is exact). Depth picks the target rung; the all-kind queue-wait
  // p99 (sampled every 64th submit — a histogram read is not free)
  // escalates one extra rung while hot. Hysteresis: stepping down requires
  // depth at or below half the rung that raised the level.
  void update_brownout_locked() {
    const std::size_t depth = queue_.size();
    int target = 0;
    if (depth >= bn_shed_all_) {
      target = 3;
    } else if (depth >= bn_shed_low_) {
      target = 2;
    } else if (depth >= bn_degrade_) {
      target = 1;
    }
    if (options_.brownout_queue_wait_p99_s > 0) {
      if ((bn_ticks_ & 63u) == 0) {
        bn_wait_hot_ = queue_wait_all_.read().p99_s >
                       options_.brownout_queue_wait_p99_s;
      }
      if (bn_wait_hot_ && target < 3) ++target;
    }
    const int level = degrade_level_.load(std::memory_order_relaxed);
    ++bn_ticks_;
    if (target > level) {
      // Escalation is immediate — protection first.
      set_degrade_level_locked(target);
    } else if (target < level) {
      // De-escalation needs depth at half the raising rung AND a dwell
      // since the last change, so a queue that drains-and-refills every
      // batch doesn't flap the ladder at submit frequency.
      const std::size_t rung =
          level >= 3 ? bn_shed_all_ : level == 2 ? bn_shed_low_ : bn_degrade_;
      if (depth <= rung / 2 && bn_ticks_ - bn_last_change_ >= 256) {
        set_degrade_level_locked(level - 1);
      }
    }
  }

  void set_degrade_level_locked(int level) {
    bn_last_change_ = bn_ticks_;
    degrade_level_.store(level, std::memory_order_relaxed);
    degrade_transitions_.fetch_add(1, std::memory_order_relaxed);
    degrade_transitions_ctr_->add();
    degrade_level_gauge_->set(level);
    // Flight-recorder tag: the transition shows up on whatever request
    // timeline triggered it, arg = the new rung.
    obs::flight_recorder::global().emit(
        obs::event_type::instant, brownout_name_id_,
        static_cast<std::uint64_t>(level));
  }

  // Enqueue a standing-query re-evaluation on the reader pool. Returns
  // false (without enqueueing) when the engine is stopping; the caller
  // resets the subscription's trigger state under subs_mutex_. Never
  // touches subs_mutex_ itself, so it is callable with it held (on_delta)
  // or not (subscribe / reader re-arm) — lock order is subs_mutex_ before
  // mutex_ throughout.
  bool enqueue_sub(const std::shared_ptr<subscription>& sp) {
    item it;
    it.q = sp->q_;
    it.sub = sp;
    it.submitted = std::chrono::steady_clock::now();
    it.trace_id = obs::flight_recorder::global().next_trace_id();
    {
      std::lock_guard<std::mutex> lk(mutex_);
      if (stopping_) return false;
      queue_.push_back(std::move(it));
      ++submitted_;
    }
    work_cv_.notify_one();
    return true;
  }

  // The cache's delta-summary listener (runs on the ingest thread, after
  // the batch became reader-visible): trigger every subscription whose
  // read-set the batch touched. Coalescing via eval_state_ bounds work to
  // at most one queued re-eval per subscription however fast batches land.
  void on_delta(const bucket_set& touched, std::uint64_t /*epoch*/) {
    std::lock_guard<std::mutex> lk(subs_mutex_);
    for (const auto& sp : subs_) {
      if (!touched.intersects(sp->reads_)) continue;
      if (sp->eval_state_ == 0) {
        sp->eval_state_ = 1;
        if (!enqueue_sub(sp)) sp->eval_state_ = 0;
      } else {
        sp->eval_state_ = 2;
      }
    }
  }

  // One query fully resolved (any status): progress accounting + drain()
  // wake-up.
  void finish_one() {
    bool idle;
    {
      std::lock_guard<std::mutex> lk(mutex_);
      ++completed_;
      idle = completed_ == submitted_;
    }
    if (idle) idle_cv_.notify_all();
  }

  // True once `count` consecutive analytics have executed against the
  // same (version, epoch) — the signal that the graph is holding still
  // under an analytics-heavy stretch. Racy by design: concurrent readers
  // may miscount a little, which only delays or hastens the switch.
  bool should_route_stale(std::uint64_t key) {
    if (stale_key_.load(std::memory_order_relaxed) != key) {
      stale_key_.store(key, std::memory_order_relaxed);
      stale_run_.store(1, std::memory_order_relaxed);
      return false;
    }
    const std::uint32_t run =
        stale_run_.fetch_add(1, std::memory_order_relaxed) + 1;
    return run > options_.stale_auto_threshold;
  }

  void reader_loop() {
    // Own deque slot for this reader: query-internal forks land here (and
    // this thread help-steals while joining) instead of running inline.
    parlib::worker_guard guard;
    for (;;) {
      item it;
      {
        std::unique_lock<std::mutex> lk(mutex_);
        work_cv_.wait(lk, [this] { return !queue_.empty() || stopping_; });
        if (queue_.empty()) return;  // stopping and drained
        it = std::move(queue_.front());
        queue_.pop_front();
      }
      space_cv_.notify_one();
      // Adopt the query's trace id for the rest of this iteration: the
      // execute span below, and every scheduler fork/steal the query's
      // par_do triggers (the id rides job::trace_id into thief threads),
      // all attribute to this request.
      parlib::trace::trace_id_scope tscope(it.trace_id);
      auto& fr = obs::flight_recorder::global();
      fr.emit(obs::event_type::flow_end, 0, it.trace_id);
      // Deadline check at dequeue: a query that already expired while
      // waiting resolves timed_out without executing — its client has
      // given up, so running it now would be pure wasted capacity.
      if (it.has_deadline &&
          std::chrono::steady_clock::now() >= it.deadline) {
        queue_wait_all_.record_s(std::chrono::duration<double>(
                                     std::chrono::steady_clock::now() -
                                     it.submitted)
                                     .count());
        fr.emit(obs::event_type::instant, timed_out_name_id_);
        query_result r;
        r.status = query_status::timed_out;
        r.latency_s = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - it.submitted)
                          .count();
        timed_out_.fetch_add(1, std::memory_order_relaxed);
        timed_out_ctr_->add();
        it.promise.set_value(std::move(r));
        finish_one();
        continue;
      }
      const auto kind_idx = static_cast<std::size_t>(it.q.kind);
      const std::uint32_t span_name_id =
          kind_idx < kNumQueryKinds ? kind_name_ids_[kind_idx] : 0;
      fr.emit(obs::event_type::span_begin, span_name_id);
      const auto dequeued = std::chrono::steady_clock::now();
      // The engine-wide queue-wait sample feeds the brownout controller.
      queue_wait_all_.record_s(
          std::chrono::duration<double>(dequeued - it.submitted).count());
      // Set right before the query's algorithm runs, in whichever branch
      // serves it: [dequeued, exec_start) is view selection (overlay read
      // / version pin / stale-routing), [exec_start, done) is execution.
      auto exec_start = dequeued;
      const std::uint64_t forks_before =
          guard.registered()
              ? parlib::scheduler::instance().push_count(guard.slot())
              : 0;
      query_result r;
      bool served = false;
      bool from_cache = false;
      bool insertable = false;     // canonical result, safe to cache
      std::uint64_t entry_epoch = 0;  // its data epoch (cache clock domain)
      // Read-set recorder for this execution: needed when a cacheable
      // analytics result will be inserted (bfs precision; whole-graph
      // kinds record the universe) and for every standing-query re-eval.
      // Point reads derive their read-set from the key alone.
      read_set_recorder rec;
      const bool cacheable =
          cache_ != nullptr && it.sub == nullptr && !it.q.stale;
      read_set_recorder* rec_ptr =
          ((cacheable || it.sub != nullptr) && !is_point_read(it.q.kind))
              ? &rec
              : nullptr;
      if (cacheable) {
        // Lookup is one atomic load + the read-set epoch check; a hit
        // skips view selection and execution entirely.
        static const obs::stage_ref s_lookup =
            obs::stage_named("serve.cache.lookup");
        obs::trace_span cspan(s_lookup);
        if (cache_->lookup(it.q, &r)) {
          fr.emit(obs::event_type::instant, cache_hit_name_id_);
          served = true;
          from_cache = true;
          exec_start = std::chrono::steady_clock::now();
        } else {
          fr.emit(obs::event_type::instant, cache_miss_name_id_);
        }
      }
      // Cancellation token for the execution: caller-supplied when the
      // query carries one, else a loop-local token when a deadline is
      // armed. The token_scope binds it as this thread's current token,
      // and par_do carries it into every forked job — stolen subtasks
      // poll the same token (scheduler.h), so one latch stops them all.
      parlib::cancel::token local_token;
      parlib::cancel::token* tok = it.q.cancel;
      if (tok == nullptr && it.has_deadline) tok = &local_token;
      if (tok != nullptr && it.has_deadline) tok->set_deadline(it.deadline);
      if (!served) {
        parlib::cancel::token_scope cscope(tok);
        GBBS_FAILPOINT_SLEEP("serve.exec.delay");
        // store.pin.fail: pin behaves as if nothing were published.
        const auto pin = [this]() -> pinned_snapshot<W> {
          if (GBBS_FAILPOINT_TRIGGERED("store.pin.fail")) {
            return pinned_snapshot<W>{};
          }
          return store_.pin();
        };
        // Fresh-source selection: the single-writer overlay serves every
        // kind; in sharded mode only per-vertex point reads are overlay-
        // fresh (owner shard), the rest need the composite barrier and
        // fall to the pinned path below.
        const overlay_view<W>* fresh_src = nullptr;
        if (!it.q.stale) {
          if (overlay_ != nullptr) {
            fresh_src = overlay_;
          } else if (!router_.empty() &&
                     (it.q.kind == query_kind::degree ||
                      it.q.kind == query_kind::neighbors)) {
            fresh_src = &router_.owner(it.q.u);
          }
        }
        if (fresh_src != nullptr) {
          // Fresh path: the overlay index current right now (covers every
          // ingest that returned before this read) serves every kind —
          // analytics traverse it fused, no merged-CSR build.
          if (auto idx = fresh_src->read()) {
            // Brownout level >= 1: analytics route to the published
            // memoized merged CSR even when it lags the overlay —
            // lossy-but-bounded (degraded_staleness_bound), annotated on
            // the result — trading freshness for the merge-amortized CSR
            // traversal while the queue is hot. Point reads stay fresh
            // (they are O(deg); degrading them would save nothing).
            if (!is_point_read(it.q.kind) &&
                degrade_level_.load(std::memory_order_relaxed) >= 1) {
              if (pinned_snapshot<W> snap = pin()) {
                const std::uint64_t behind =
                    idx->epoch >= snap.updates_ingested()
                        ? idx->epoch - snap.updates_ingested()
                        : 0;
                if (behind <= options_.degraded_staleness_bound) {
                  query sq = it.q;
                  sq.stale = true;
                  exec_start = std::chrono::steady_clock::now();
                  r = execute_query(snap, sq);
                  r.degraded = true;
                  r.staleness = behind;
                  degraded_.fetch_add(1, std::memory_order_relaxed);
                  degraded_ctr_->add();
                  served = true;
                }
              }
            }
            const std::uint64_t skey =
                options_.stale_auto
                    ? stale_state_key(idx->base_version, idx->epoch)
                    : 0;
            const bool known_unroutable =
                options_.stale_auto &&
                stale_unroutable_.load(std::memory_order_relaxed) == skey &&
                stale_unroutable_version_.load(std::memory_order_relaxed) ==
                    store_.current_version();
            if (!served && options_.stale_auto && !is_point_read(it.q.kind) &&
                should_route_stale(skey) && !known_unroutable) {
              // Route to the published version's memoized merged CSR, but
              // only when it covers exactly the overlay's updates — routed
              // results then equal fresh results, just off a contiguous CSR.
              // A state whose published version lags is remembered as
              // unroutable, so later queries skip the futile pin until the
              // writer publishes again.
              if (pinned_snapshot<W> snap = pin();
                  snap && snap.updates_ingested() == idx->epoch) {
                query sq = it.q;
                sq.stale = true;
                exec_start = std::chrono::steady_clock::now();
                r = execute_query(snap, sq, rec_ptr);
                stale_auto_routed_.fetch_add(1, std::memory_order_relaxed);
                // Lossless by the check above: identical to fresh, so
                // cacheable at the overlay's epoch.
                insertable = true;
                entry_epoch = idx->epoch;
                served = true;
              } else {
                stale_unroutable_version_.store(store_.current_version(),
                                                std::memory_order_relaxed);
                stale_unroutable_.store(skey, std::memory_order_relaxed);
              }
            }
            if (!served) {
              exec_start = std::chrono::steady_clock::now();
              // The index epoch is the cache's clock: the single-writer
              // manager stamps its ingested-update count, a shard stamps
              // its applied batch version — each matching what the owning
              // manager's invalidate() publishes.
              insertable = true;
              entry_epoch = idx->epoch;
              r = execute_fresh_query(std::move(idx), it.q, rec_ptr);
              served = true;
            }
          } else if (pinned_snapshot<W> snap = pin()) {
            exec_start = std::chrono::steady_clock::now();
            insertable = true;
            entry_epoch = pinned_epoch(snap);
            r = execute_query(snap, it.q, rec_ptr);
            served = true;
          }
        } else {
          // Versioned path: pin the version current at execution; the query
          // sees it regardless of how far ingest advances while it runs.
          if (pinned_snapshot<W> snap = pin()) {
            exec_start = std::chrono::steady_clock::now();
            insertable = true;
            entry_epoch = pinned_epoch(snap);
            r = execute_query(snap, it.q, rec_ptr);
            served = true;
          }
        }
      }
      if (tok != nullptr && tok->cancelled()) {
        // The traversal unwound early (or raced completion with the
        // latch): its partial output is not a correct answer, so discard
        // everything and report how the run ended.
        const bool expired = tok->timed_out();
        r = query_result{};
        r.status =
            expired ? query_status::timed_out : query_status::cancelled;
        fr.emit(obs::event_type::instant,
                expired ? timed_out_name_id_ : cancelled_name_id_);
        if (expired) {
          timed_out_.fetch_add(1, std::memory_order_relaxed);
          timed_out_ctr_->add();
        } else {
          cancelled_.fetch_add(1, std::memory_order_relaxed);
          cancelled_ctr_->add();
        }
      } else if (!served) {
        // Nothing published to serve from: say so instead of handing the
        // client a default-constructed (silently empty) result.
        r.status = query_status::unavailable;
        unavailable_.fetch_add(1, std::memory_order_relaxed);
        unavailable_ctr_->add();
      }
      if (cacheable && !from_cache && insertable &&
          r.status == query_status::ok && !r.degraded) {
        // Publish the canonical result back: read-set from the recorder
        // (or the key, for point reads), epoch from the serving branch.
        cache_->insert(it.q, r, read_set_for(it.q, rec_ptr), entry_epoch);
      }
      if (guard.registered()) {
        const std::uint64_t forks =
            parlib::scheduler::instance().push_count(guard.slot()) -
            forks_before;
        if (forks != 0) {
          // One atomic add per query, not per fork (counters.h contract).
          reader_forks_.fetch_add(forks, std::memory_order_relaxed);
          parlib::event_counters::global().sched_reader_forks.fetch_add(
              forks, std::memory_order_relaxed);
        }
      }
      const auto done = std::chrono::steady_clock::now();
      fr.emit(obs::event_type::span_end, span_name_id);
      r.latency_s =
          std::chrono::duration<double>(done - it.submitted).count();
      const auto kind_slot = static_cast<std::size_t>(it.q.kind);
      const double slo = slo_for(it.q.kind);
      const double latency = r.latency_s;
      const query_status status = r.status;
      if (it.sub != nullptr) {
        // Standing query: refresh the trigger read-set from this
        // evaluation, deliver, and re-arm — a batch that landed mid-eval
        // (eval_state_ == 2) queues exactly one follow-up, so the
        // subscriber converges to the freshest answer.
        bool requeue = false;
        {
          std::lock_guard<std::mutex> lk(subs_mutex_);
          if (status == query_status::ok) {
            it.sub->reads_ = read_set_for(it.q, rec_ptr);
          }
          if (it.sub->eval_state_ == 2) {
            it.sub->eval_state_ = 1;
            requeue = true;
          } else {
            it.sub->eval_state_ = 0;
          }
        }
        if (status == query_status::ok) it.sub->deliver(r);
        if (requeue && !enqueue_sub(it.sub)) {
          std::lock_guard<std::mutex> lk(subs_mutex_);
          it.sub->eval_state_ = 0;
        }
      }
      it.promise.set_value(std::move(r));
      // Stage accounting: three sharded histogram records + the engine-
      // wide view-selection span, all lock-free on this reader's own
      // cells (obs/metrics.h) — the submit-queue mutex is not touched.
      // Only successful queries are recorded: a timed-out / cancelled /
      // unavailable resolution is not a latency sample of the kind's
      // execution and would skew the percentiles CI gates on.
      if (status == query_status::ok && kind_slot < kNumQueryKinds) {
        kind_metrics& km = kind_metrics_[kind_slot];
        km.latency.record_s(latency);
        km.queue_wait.record_s(
            std::chrono::duration<double>(dequeued - it.submitted).count());
        km.execute.record_s(
            std::chrono::duration<double>(done - exec_start).count());
        view_select_.record_s(
            std::chrono::duration<double>(exec_start - dequeued).count());
        if (slo > 0 && latency > slo) {
          slo_violations_[kind_slot].fetch_add(1,
                                               std::memory_order_relaxed);
        }
      }
      // Tail sampling: now that the latency is known, retain this
      // request's full timeline if it ranks among the slowest (no-op
      // unless a threshold was configured — see -slow-trace-ms).
      obs::exemplar_store::global().maybe_capture(
          it.trace_id, query_kind_name(it.q.kind), latency);
      finish_one();
    }
  }

  const snapshot_store<W>& store_;
  const overlay_view<W>* overlay_ = nullptr;  // null: snapshot-only engine
  const shard_router<W> router_;  // empty: not a sharded engine
  const query_engine_options options_;
  std::vector<std::thread> readers_;

  // Stage histograms precede registrations_ so the registry detaches (and
  // folds totals) before they are destroyed.
  std::array<kind_metrics, kNumQueryKinds> kind_metrics_;
  obs::histogram view_select_;
  // All-kind queue-wait samples: the brownout controller's latency input.
  obs::histogram queue_wait_all_;
  // Interned flight-recorder names for the per-kind query spans.
  std::array<std::uint32_t, kNumQueryKinds> kind_name_ids_{};
  std::uint32_t timed_out_name_id_ = 0;
  std::uint32_t cancelled_name_id_ = 0;
  std::uint32_t brownout_name_id_ = 0;
  std::uint32_t cache_hit_name_id_ = 0;
  std::uint32_t cache_miss_name_id_ = 0;
  std::array<std::atomic<std::uint64_t>, kNumQueryKinds> slo_violations_{};
  std::vector<obs::registry::scoped_attach> registrations_;

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::condition_variable space_cv_;
  std::deque<item> queue_;
  std::uint64_t submitted_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t dropped_ = 0;
  bool stopping_ = false;

  std::atomic<std::uint64_t> reader_forks_{0};
  std::atomic<std::uint64_t> stale_auto_routed_{0};

  // Robustness accounting (engine-local; mirrored into registry counters).
  std::atomic<std::uint64_t> timed_out_{0};
  std::atomic<std::uint64_t> cancelled_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> unavailable_{0};
  std::atomic<std::uint64_t> degraded_{0};
  std::atomic<std::uint64_t> degrade_transitions_{0};
  std::atomic<int> degrade_level_{0};  // written under mutex_, read lock-free
  obs::counter* timed_out_ctr_ = nullptr;
  obs::counter* shed_ctr_ = nullptr;
  obs::counter* cancelled_ctr_ = nullptr;
  obs::counter* unavailable_ctr_ = nullptr;
  obs::counter* degraded_ctr_ = nullptr;
  obs::counter* degrade_transitions_ctr_ = nullptr;
  obs::gauge* degrade_level_gauge_ = nullptr;
  bool brownout_enabled_ = false;
  std::size_t bn_degrade_ = 0;   // ladder rungs (queue depths)
  std::size_t bn_shed_low_ = 0;
  std::size_t bn_shed_all_ = 0;
  std::uint64_t bn_ticks_ = 0;        // under mutex_
  std::uint64_t bn_last_change_ = 0;  // under mutex_ (dwell anchor)
  bool bn_wait_hot_ = false;          // under mutex_
  // Result cache + standing queries. subs_mutex_ guards the subscription
  // list and every subscription's trigger state; lock order is always
  // subs_mutex_ before mutex_ (on_delta holds it while enqueueing).
  result_cache* cache_ = nullptr;
  std::uint64_t cache_listener_id_ = 0;
  mutable std::mutex subs_mutex_;
  std::vector<std::shared_ptr<subscription>> subs_;
  // Adaptive stale-routing run detection (racy-by-design, see above).
  std::atomic<std::uint64_t> stale_key_{0};
  std::atomic<std::uint32_t> stale_run_{0};
  std::atomic<std::uint64_t> stale_unroutable_{0};
  std::atomic<std::uint64_t> stale_unroutable_version_{0};
};

}  // namespace gbbs::serve
