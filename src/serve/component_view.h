// Published connectivity as anchor labels + merge links — the structure
// that makes publishing components O(delta) instead of O(n).
//
// Materializing union-find labels costs O(n · α(n)) per publish, which
// would put an O(n) floor under every publish no matter how small the
// ingested delta. Instead a published component_view is:
//
//   * an *anchor*: a refcounted label vector materialized at a rare
//     anchor event (seed publish, erase-triggered connectivity rebuild,
//     or when the link map outgrows its budget) — shared by every version
//     published since, never copied; and
//   * a *link map*: the component merges performed by insert batches
//     since the anchor, expressed over anchor labels and path-compressed
//     at build time so a lookup is a single probe. Its size is bounded by
//     the number of distinct components merged since the anchor, i.e. by
//     the updates ingested, never by n.
//
// label(u) resolves u's anchor label through the link map; two vertices
// are connected iff their resolved labels are equal. Vertices beyond the
// anchor (the graph grew since) are their own singleton label — ids of
// grown vertices are >= the anchor's n while anchor labels are < it, so
// the two label spaces cannot collide.
//
// A component_view is immutable and O(1) to copy (two shared_ptrs); the
// writer builds one per publish/ingest from its private link union-find
// (see snapshot_manager).
#pragma once

#include <cstddef>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "graph/graph.h"

namespace gbbs::serve {

class component_view {
 public:
  using link_map = std::unordered_map<vertex_id, vertex_id>;

  component_view() = default;
  component_view(std::shared_ptr<const std::vector<vertex_id>> anchor,
                 std::shared_ptr<const link_map> links)
      : anchor_(std::move(anchor)), links_(std::move(links)) {}

  // Wrap a fully materialized label vector (anchor only, no links) — the
  // seed/rebuild path, and the convenience entry point for tests.
  static component_view from_labels(std::vector<vertex_id> labels) {
    return component_view(
        std::make_shared<const std::vector<vertex_id>>(std::move(labels)),
        nullptr);
  }

  // Resolved component label of u. Labels are comparable within one view
  // (same partition semantics as static connectivity(), up to renaming).
  vertex_id label(vertex_id u) const {
    vertex_id a = u;
    if (anchor_ != nullptr && u < anchor_->size()) a = (*anchor_)[u];
    if (links_ != nullptr) {
      auto it = links_->find(a);
      if (it != links_->end()) return it->second;
    }
    return a;
  }

  bool connected(vertex_id u, vertex_id v) const {
    return label(u) == label(v);
  }

  // Number of vertices the anchor covers (vertices at/above are singletons
  // from this view's perspective).
  std::size_t anchor_size() const {
    return anchor_ == nullptr ? 0 : anchor_->size();
  }
  std::size_t num_links() const {
    return links_ == nullptr ? 0 : links_->size();
  }

  // O(n) flat label vector — for verification paths and tests only; the
  // serving read path never materializes.
  std::vector<vertex_id> materialize(vertex_id n) const {
    std::vector<vertex_id> out(n);
    parlib::parallel_for(0, n, [&](std::size_t u) {
      out[u] = label(static_cast<vertex_id>(u));
    });
    return out;
  }

 private:
  std::shared_ptr<const std::vector<vertex_id>> anchor_;
  std::shared_ptr<const link_map> links_;  // anchor label -> merged root
};

}  // namespace gbbs::serve
