// Published connectivity as anchor labels + merge links — the structure
// that makes publishing components O(delta) instead of O(n).
//
// Materializing union-find labels costs O(n · α(n)) per publish, which
// would put an O(n) floor under every publish no matter how small the
// ingested delta. Instead a published component_view is:
//
//   * an *anchor*: a refcounted label vector materialized at a rare
//     anchor event (seed publish, erase-triggered connectivity rebuild,
//     or when the link map outgrows its budget) — shared by every version
//     published since, never copied; and
//   * a *link map*: the component merges performed by insert batches
//     since the anchor, expressed over anchor labels and path-compressed
//     at build time so a lookup is a single probe. Its size is bounded by
//     the number of distinct components merged since the anchor, i.e. by
//     the updates ingested, never by n.
//
// label(u) resolves u's anchor label through the link map; two vertices
// are connected iff their resolved labels are equal. Vertices beyond the
// anchor (the graph grew since) are their own singleton label — ids of
// grown vertices are >= the anchor's n while anchor labels are < it, so
// the two label spaces cannot collide.
//
// A component_view is immutable and O(1) to copy (two shared_ptrs); the
// writer builds one per publish/ingest from its private link union-find
// (see snapshot_manager).
#pragma once

#include <cstddef>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "graph/graph.h"

namespace gbbs::serve {

class component_view {
 public:
  using link_map = std::unordered_map<vertex_id, vertex_id>;

  component_view() = default;
  component_view(std::shared_ptr<const std::vector<vertex_id>> anchor,
                 std::shared_ptr<const link_map> links)
      : anchor_(std::move(anchor)), links_(std::move(links)) {}

  // Wrap a fully materialized label vector (anchor only, no links) — the
  // seed/rebuild path, and the convenience entry point for tests.
  static component_view from_labels(std::vector<vertex_id> labels) {
    return component_view(
        std::make_shared<const std::vector<vertex_id>>(std::move(labels)),
        nullptr);
  }

  // Resolved component label of u. Labels are comparable within one view
  // (same partition semantics as static connectivity(), up to renaming).
  vertex_id label(vertex_id u) const {
    vertex_id a = u;
    if (anchor_ != nullptr && u < anchor_->size()) a = (*anchor_)[u];
    if (links_ != nullptr) {
      auto it = links_->find(a);
      if (it != links_->end()) return it->second;
    }
    return a;
  }

  bool connected(vertex_id u, vertex_id v) const {
    return label(u) == label(v);
  }

  // Number of vertices the anchor covers (vertices at/above are singletons
  // from this view's perspective).
  std::size_t anchor_size() const {
    return anchor_ == nullptr ? 0 : anchor_->size();
  }
  std::size_t num_links() const {
    return links_ == nullptr ? 0 : links_->size();
  }

  // O(n) flat label vector — for verification paths and tests only; the
  // serving read path never materializes.
  std::vector<vertex_id> materialize(vertex_id n) const {
    std::vector<vertex_id> out(n);
    parlib::parallel_for(0, n, [&](std::size_t u) {
      out[u] = label(static_cast<vertex_id>(u));
    });
    return out;
  }

 private:
  std::shared_ptr<const std::vector<vertex_id>> anchor_;
  std::shared_ptr<const link_map> links_;  // anchor label -> merged root
};

// The writer-private machinery behind O(delta) component publishing: an
// anchor label vector plus a link union-find over anchor labels, distilled
// into an immutable component_view on demand (memoized until the next
// merge dirties it). Factored out of snapshot_manager so both ingest
// front-ends share one implementation — the single-writer manager tracks
// per-batch, the sharded manager tracks the merged per-shard link deltas
// at its composite-publish barrier.
//
// Not thread-safe: single owner (the writer / the publish-barrier thread).
class component_tracker {
 public:
  // Links since the last anchor are kept below a constant bound so
  // compressing them at publish costs the same at every graph scale; the
  // O(n) re-anchor amortizes over the >= kLinkBudget merges that forced
  // it. Callers check needs_anchor() after tracking a batch.
  static constexpr std::size_t kLinkBudget = 4096;

  // Record one merge edge in anchor-label space. O(α) amortized.
  void track_pair(vertex_id u, vertex_id v) {
    if (link_unite(anchor_label(u), anchor_label(v))) dirty_ = true;
  }

  bool needs_anchor() const { return link_uf_.size() > kLinkBudget; }
  std::size_t num_links() const { return link_uf_.size(); }

  // Re-anchor on fresh fully-materialized labels (seed, erase-triggered
  // rebuild, link-budget overflow) and clear the link map.
  void refresh_anchor(std::vector<vertex_id> labels) {
    anchor_ = std::make_shared<const std::vector<vertex_id>>(
        std::move(labels));
    link_uf_.clear();
    dirty_ = true;
  }

  // The current partition as an immutable O(1)-copy view. The compressed
  // link map is memoized until the next merge, so back-to-back publishes
  // pay O(1), not O(links).
  component_view current() const {
    if (dirty_) {
      auto links = std::make_shared<component_view::link_map>();
      links->reserve(link_uf_.size());
      for (const auto& [from, _] : link_uf_) {
        (*links)[from] = link_find(from);
      }
      cached_ = component_view(anchor_, std::move(links));
      dirty_ = false;
    }
    return cached_;
  }

 private:
  vertex_id anchor_label(vertex_id u) const {
    return anchor_ != nullptr && u < anchor_->size() ? (*anchor_)[u] : u;
  }

  // Union-find over anchor labels (absent key = self root).
  vertex_id link_find(vertex_id a) const {
    for (;;) {
      auto it = link_uf_.find(a);
      if (it == link_uf_.end() || it->second == a) return a;
      a = it->second;
    }
  }

  // True iff this union merged two previously distinct components.
  bool link_unite(vertex_id a, vertex_id b) {
    a = link_find(a);
    b = link_find(b);
    if (a == b) return false;
    if (a > b) std::swap(a, b);
    link_uf_[b] = a;
    link_uf_.try_emplace(a, a);  // make the root enumerable
    return true;
  }

  std::shared_ptr<const std::vector<vertex_id>> anchor_;
  std::unordered_map<vertex_id, vertex_id> link_uf_;
  mutable component_view cached_;
  mutable bool dirty_ = true;
};

}  // namespace gbbs::serve
