// Composite snapshots: the published form of the sharded ingest path.
//
// A composite_snapshot is the barrier product of N shard writers — one
// immutable overlay_snapshot per shard, all built against the same
// composite clock value V (every shard has applied batches 1..V), plus
// the partition that says which shard owns which vertex row and the
// barrier-merged connectivity. Because the update stream is split by
// owner(u) *after* normalization (and symmetric batches are mirrored
// before the split — the double-booking invariant, see
// shard_partition.h), the shards' row sets are disjoint and their union
// is exactly the live graph: vertex u's complete out/in row lives in
// owner(u)'s shard and nowhere else.
//
// composite_view stitches those per-shard CSR blocks into one graph_view
// model by pure routing — every neighborhood operation on u forwards to
// owner(u)'s shard snapshot (base ⊕ delta merged per neighbor, same as
// dynamic_view) — so edge_map and the whole analytics suite run
// unmodified over the sharded base, and nothing is ever copied or merged
// across shards on the read path. Cross-shard coordination happens only
// at the publish barrier, never per edge.
//
// Everything here is immutable and O(1)-copy (shared handles); a
// composite_snapshot outlives its manager the same way an
// overlay_snapshot outlives its writer.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "dynamic/shard_partition.h"
#include "graph/graph.h"
#include "graph/graph_view.h"
#include "parlib/counters.h"
#include "parlib/parallel.h"
#include "parlib/sequence_ops.h"
#include "serve/component_view.h"
#include "serve/overlay_view.h"

namespace gbbs::serve {

template <typename W>
struct composite_snapshot {
  // Composite clock value: every shard part was built having applied
  // batches 1..clock (the shard-vector minimum at publish time).
  std::uint64_t clock = 0;
  vertex_id n = 0;  // live vertex count (equal across parts by lockstep
                    // max_vertex growth)
  edge_id m = 0;    // live directed edge count = sum of the parts' m
  dynamic::shard_partition part;
  std::vector<std::shared_ptr<const overlay_snapshot<W>>> parts;
  component_view cc;  // barrier-merged connectivity at `clock`

  std::size_t num_shards() const { return parts.size(); }

  const overlay_snapshot<W>& owner(vertex_id u) const {
    return *parts[part.owner(u)];
  }

  // Point reads route to the owning shard — O(1)/O(deg), no cross-shard
  // coordination.
  vertex_id degree(vertex_id u) const { return owner(u).degree(u); }
  std::vector<vertex_id> neighbors(vertex_id u) const {
    return owner(u).neighbors(u);
  }
  bool contains_edge(vertex_id u, vertex_id v) const {
    return owner(u).contains_edge(u, v);
  }

  // Materialize the stitched merged CSR (all shards' rows, base ⊕ delta)
  // as one fresh symmetric graph — O(n + m) work, for explicitly-stale
  // analytics only (memoized per published version by the store).
  gbbs::graph<W> materialize() const {
    parlib::event_counters::global().merged_csr_materializations.fetch_add(
        1, std::memory_order_relaxed);
    auto degs = parlib::tabulate<edge_id>(n, [&](std::size_t v) {
      return degree(static_cast<vertex_id>(v));
    });
    const edge_id total = parlib::scan_inplace(degs);
    assert(total == m);
    std::vector<edge_id> offsets(static_cast<std::size_t>(n) + 1);
    parlib::parallel_for(0, n, [&](std::size_t v) { offsets[v] = degs[v]; });
    offsets[n] = total;
    std::vector<vertex_id> nghs(total);
    std::vector<W> wghs;
    if constexpr (!std::is_same_v<W, empty_weight>) wghs.resize(total);
    parlib::parallel_for(0, n, [&](std::size_t vi) {
      const auto v = static_cast<vertex_id>(vi);
      edge_id k = offsets[vi];
      owner(v).merge_row(v, [&](vertex_id ngh, W w) {
        nghs[k] = ngh;
        if constexpr (!std::is_same_v<W, empty_weight>) wghs[k] = w;
        ++k;
        (void)w;
      });
      assert(k == offsets[vi + 1]);
    });
    return gbbs::graph<W>(n, total, /*symmetric=*/true, std::move(offsets),
                          std::move(nghs), std::move(wghs));
  }
};

// The stitched graph_view model: per-vertex routing to the owning shard's
// snapshot. Symmetric (serving graphs), in-side aliases out-side. Holds a
// shared handle; copies are O(1).
template <typename W>
class composite_view {
 public:
  using weight_type = W;

  composite_view() = default;
  explicit composite_view(std::shared_ptr<const composite_snapshot<W>> cs)
      : cs_(std::move(cs)) {}

  explicit operator bool() const { return cs_ != nullptr; }
  const composite_snapshot<W>& snapshot() const { return *cs_; }

  vertex_id num_vertices() const { return cs_->n; }
  // Live count summed across shards — what edge_map's dense/sparse
  // direction threshold must see.
  edge_id num_edges() const { return cs_->m; }
  bool symmetric() const { return true; }

  vertex_id out_degree(vertex_id v) const { return cs_->degree(v); }
  vertex_id in_degree(vertex_id v) const { return cs_->degree(v); }

  template <typename F>
  void map_out_neighbors(vertex_id v, const F& f) const {
    cs_->owner(v).merge_row(v, [&](vertex_id ngh, W w) { f(v, ngh, w); });
  }

  template <typename F>
  void map_in_neighbors(vertex_id v, const F& f) const {
    map_out_neighbors(v, f);
  }

  template <typename F>
  void map_out_neighbors_early_exit(vertex_id v, const F& f) const {
    cs_->owner(v).merge_row_early_exit(
        v, [&](vertex_id ngh, W w) { return f(v, ngh, w); });
  }

  template <typename F>
  void map_in_neighbors_early_exit(vertex_id v, const F& f) const {
    map_out_neighbors_early_exit(v, f);
  }

  template <typename F>
  void map_out_neighbors_range(vertex_id v, std::size_t j_lo,
                               std::size_t j_hi, const F& f) const {
    cs_->owner(v).merge_row_range(
        v, j_lo, j_hi, [&](vertex_id ngh, W w) { f(v, ngh, w); });
  }

  template <typename F>
  std::size_t count_out(vertex_id v, const F& pred) const {
    std::size_t c = 0;
    map_out_neighbors(v, [&](vertex_id a, vertex_id b, W w) {
      c += pred(a, b, w) ? 1 : 0;
    });
    return c;
  }

 private:
  std::shared_ptr<const composite_snapshot<W>> cs_;
};

// Read-side routing table for the sharded ingest path: the owning
// shard's seqlock overlay_view, per vertex. Built by
// sharded_snapshot_manager::router(); the referenced views must outlive
// every engine holding the router. Point reads keyed on a vertex go to
// owner(u)'s freshest index — shard-apply fresh, no cross-shard
// coordination; everything else (connectivity, analytics) is served from
// the latest *composite* version, whose freshness is the publish barrier.
template <typename W>
struct shard_router {
  dynamic::shard_partition part;
  std::vector<const overlay_view<W>*> overlays;

  bool empty() const { return overlays.empty(); }
  const overlay_view<W>& owner(vertex_id u) const {
    return *overlays[part.owner(u)];
  }
};

}  // namespace gbbs::serve

namespace gbbs {
static_assert(graph_view<serve::composite_view<empty_weight>>);
static_assert(graph_view<serve::composite_view<std::uint32_t>>);
}  // namespace gbbs
