// Multi-writer sharded ingest: N dynamic_graph shards, each with its own
// writer thread applying deltas and refreshing its overlay index
// concurrently, coordinated by a composite version clock.
//
// Pipeline per batch (coordinator thread = the caller of ingest()):
//   1. normalize once (parallel sort + last-wins dedup, update_batch.h),
//      mirrored for symmetric graphs — so the split below can double-book
//      cross-shard edges without re-sorting;
//   2. split by owner(u) (shard_partition.h) into per-shard sub-batches,
//      each still normalized and carrying the global max_vertex;
//   3. enqueue sub-batch `v` (the batch's clock value) to every shard —
//      including shards with an empty slice, so vertex-set growth and the
//      clock advance in lockstep.
// Each shard worker then applies its slice to its own dynamic_graph and
// refreshes its own seqlock overlay_view — the apply path that was one
// writer wide in snapshot_manager runs num_shards wide here.
//
// The composite version clock (after katana's multi-participant
// termination vector: global progress = the minimum over participants):
// shard s advances applied[s] after fully applying batch v; composite
// version V is *visible* only once min_s applied[s] >= V. publish() never
// waits — it publishes the current minimum, so a straggling shard can
// delay visibility but a published version can never include a batch some
// shard has not applied (the straggler failpoint test pins this down).
// flush() waits for the clock to catch up with everything ingested, then
// publishes.
//
// Incremental connectivity stays a single global structure, merged at the
// publish barrier: each shard records, per batch, the insert links it saw
// (u < v picks exactly one shard per undirected edge — the double-booked
// mirror is filtered out) or an erase marker. At publish, all shards'
// deltas through V are consumed — erase anywhere forces one rebuild over
// the stitched composite view, otherwise the pooled links are united in
// parallel — and the anchor + link-map tracker (component_view.h)
// distills the merged partition into the published component_view.
// Consequence for freshness: per-vertex point reads (degree/neighbors)
// are shard-apply fresh via the owner shard's overlay_view; connectivity
// and analytics are composite-barrier fresh.
//
// Threading contract: ingest()/publish()/flush() are coordinator-only
// (one thread); shard workers touch only their own shard's state plus the
// global clock condvar; readers use pin(), router(), and the per-shard
// overlay_views from any thread.
#pragma once

#include <algorithm>
#include <atomic>
#include <cassert>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "dynamic/dynamic_graph.h"
#include "dynamic/incremental_connectivity.h"
#include "dynamic/shard_partition.h"
#include "dynamic/update_batch.h"
#include "obs/trace.h"
#include "parlib/scheduler.h"
#include "parlib/trace_hooks.h"
#include "robust/failpoint.h"
#include "serve/component_view.h"
#include "serve/composite_view.h"
#include "serve/overlay_view.h"
#include "serve/result_cache.h"
#include "serve/snapshot_store.h"

namespace gbbs::serve {

template <typename W>
class sharded_snapshot_manager {
 public:
  struct options {
    std::size_t num_shards = 2;
    std::uint32_t block_bits = 8;  // partition block = 2^block_bits ids
    double compact_threshold = 0.25;  // per-shard auto-compaction
  };

  // Empty symmetric graph with n vertices; the composite at clock 0 is
  // published immediately so readers can always pin.
  explicit sharded_snapshot_manager(vertex_id n = 0, options opt = {})
      : part_(opt.num_shards, opt.block_bits), cc_(n) {
    shards_.reserve(part_.num_shards());
    for (std::size_t s = 0; s < part_.num_shards(); ++s) {
      shards_.push_back(std::make_unique<shard>(n));
    }
    init(opt);
  }

  // Seed from an existing static snapshot: each shard adopts its owned
  // rows as its base CSR (split_seed), so no shard ever re-normalizes or
  // merges another shard's edges.
  explicit sharded_snapshot_manager(gbbs::graph<W> seed, options opt = {})
      : part_(opt.num_shards, opt.block_bits), cc_(0) {
    auto pieces = dynamic::split_seed(seed, part_);
    shards_.reserve(part_.num_shards());
    for (std::size_t s = 0; s < part_.num_shards(); ++s) {
      shards_.push_back(std::make_unique<shard>(std::move(pieces[s])));
    }
    cc_.rebuild(seed);
    init(opt);
  }

  sharded_snapshot_manager(const sharded_snapshot_manager&) = delete;
  sharded_snapshot_manager& operator=(const sharded_snapshot_manager&) =
      delete;

  // Drains every queued batch (workers exit only on empty queues), then
  // joins. Published versions and pinned snapshots outlive the manager.
  ~sharded_snapshot_manager() {
    for (auto& sh : shards_) {
      {
        std::lock_guard<std::mutex> lk(sh->mu);
        sh->stop = true;
      }
      sh->cv.notify_all();
    }
    for (auto& sh : shards_) {
      if (sh->worker.joinable()) sh->worker.join();
    }
  }

  // ---- coordinator side (single thread) ----------------------------------

  // Normalize + split + enqueue one batch to every shard. Returns the
  // batch's clock value. Does not wait for any shard to apply: by the
  // time this returns, owner-shard point reads may or may not see the
  // batch yet (they will after the shard's apply; flush() forces it).
  std::uint64_t ingest(std::vector<dynamic::update<W>> raw) {
    last_ingest_trace_id_ = obs::flight_recorder::global().next_trace_id();
    parlib::trace::trace_id_scope tscope(last_ingest_trace_id_);
    updates_ingested_ += raw.size();
    dynamic::update_batch<W> batch = [&] {
      static const obs::stage_ref s_norm =
          obs::stage_named("ingest.normalize");
      obs::trace_span span(s_norm);
      return dynamic::make_batch(std::move(raw), /*mirror=*/true);
    }();
    std::vector<dynamic::update_batch<W>> subs = [&] {
      static const obs::stage_ref s_split =
          obs::stage_named("ingest.shard.split");
      obs::trace_span span(s_split);
      return dynamic::split_batch(batch, part_);
    }();
    const std::uint64_t v = ++ingested_batches_;
    pending_meta_.push_back({v, updates_ingested_});
    if (cache_ != nullptr) {
      // Invalidate before any shard can apply the batch (the enqueue
      // below), pessimistically as of clock v: cached point reads (entry
      // epoch = the owner shard's applied batch version) and composite
      // analytics (entry epoch = composite clock) both compare against
      // the same batch-version clock. Standing queries are notified at
      // the publish barrier instead — publish_through — once the batch's
      // data is composite-visible.
      bucket_set delta = touched_buckets(batch);
      cache_->invalidate(delta, v);
      pending_touched_.push_back({v, std::move(delta)});
    }
    // The freshest barrier-merged components ride along so each shard's
    // overlay snapshot can answer connectivity point reads (at composite
    // freshness — per-shard applies do not merge labels).
    component_view cur = tracker_.current();
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      auto& sh = *shards_[s];
      {
        std::lock_guard<std::mutex> lk(sh.mu);
        sh.queue.push_back(
            task{v, last_ingest_trace_id_, std::move(subs[s]), cur});
      }
      sh.cv.notify_one();
    }
    return v;
  }

  // Publish the composite version at the clock's current minimum. Never
  // waits: a lagging shard delays visibility instead of blocking the
  // coordinator, and no published version ever contains a batch a shard
  // has not applied. Returns the store version (the clock value it
  // carries is composite_clock()).
  std::uint64_t publish() {
    const std::uint64_t v_clock = applied_version();
    if (v_clock == published_clock_ && store_.current_version() != 0) {
      return store_.current_version();
    }
    parlib::trace::trace_id_scope tscope(last_ingest_trace_id_);
    static const obs::stage_ref s_publish =
        obs::stage_named("ingest.publish");
    obs::trace_span span(s_publish);
    GBBS_FAILPOINT_SLEEP("ingest.publish.delay");
    return publish_through(v_clock);
  }

  // Wait until every shard has applied everything ingested, then publish.
  std::uint64_t flush() {
    {
      std::unique_lock<std::mutex> lk(clock_mu_);
      clock_cv_.wait(
          lk, [&] { return applied_version() >= ingested_batches_; });
    }
    return publish();
  }

  // ---- introspection ------------------------------------------------------

  // Batches ingested (the clock value the stream has reached).
  std::uint64_t ingest_version() const { return ingested_batches_; }
  // min over shards of the last applied batch — the composite clock's
  // current visibility frontier. Safe from any thread.
  std::uint64_t applied_version() const {
    std::uint64_t v = ~std::uint64_t{0};
    for (const auto& sh : shards_) {
      v = std::min(v, sh->applied.load(std::memory_order_acquire));
    }
    return v;
  }
  // Clock value of the last published composite version.
  std::uint64_t composite_clock() const { return published_clock_; }
  std::uint64_t updates_ingested() const { return updates_ingested_; }
  std::uint64_t last_ingest_trace_id() const { return last_ingest_trace_id_; }

  const dynamic::shard_partition& partition() const { return part_; }
  std::size_t num_shards() const { return shards_.size(); }
  // Shard s's live graph. Coordinator/test use only after a flush() — the
  // shard worker mutates it while batches are in flight.
  const dynamic::dynamic_graph<W>& shard_graph(std::size_t s) const {
    return shards_[s]->dg;
  }

  // ---- reader side (any thread) ------------------------------------------

  // Shard s's freshest overlay index (seqlock): point reads against it
  // see every batch that shard has applied, published or not.
  const overlay_view<W>& shard_overlay(std::size_t s) const {
    return shards_[s]->ov;
  }

  // Routing table for a query_engine: owner(u)'s overlay per point read.
  shard_router<W> router() const {
    shard_router<W> r;
    r.part = part_;
    r.overlays.reserve(shards_.size());
    for (const auto& sh : shards_) r.overlays.push_back(&sh->ov);
    return r;
  }

  pinned_snapshot<W> pin() const { return store_.pin(); }
  std::uint64_t current_version() const { return store_.current_version(); }
  const snapshot_store<W>& store() const { return store_; }
  snapshot_store<W>& store() { return store_; }

  // Wire a result cache into the sharded ingest path: each batch
  // invalidates at ingest (pessimistic, before any shard applies) and
  // standing queries are notified at the publish barrier. The cache's
  // epoch domain is this manager's batch-version clock. Coordinator-only;
  // call before the first ingest and keep the cache alive for the
  // manager's lifetime.
  void attach_cache(result_cache* cache) { cache_ = cache; }

 private:
  // Connectivity delta one shard recorded for one batch: the insert links
  // it saw with u < v (each undirected edge reports from exactly one
  // shard — owner(min endpoint) — despite the double-booked mirror), or
  // an erase marker forcing a barrier rebuild.
  struct cc_delta {
    std::uint64_t version = 0;
    std::vector<std::pair<vertex_id, vertex_id>> links;
    bool has_erase = false;
  };

  struct task {
    std::uint64_t version = 0;
    std::uint64_t trace_id = 0;
    dynamic::update_batch<W> sub;
    component_view cc;  // barrier-merged components at enqueue time
  };

  struct shard {
    explicit shard(vertex_id n) : dg(n, /*symmetric=*/true) {}
    explicit shard(gbbs::graph<W> piece) : dg(std::move(piece)) {}

    dynamic::dynamic_graph<W> dg;  // worker-owned after start
    overlay_view<W> ov;
    std::shared_ptr<const overlay_snapshot<W>> last_index;  // worker-owned

    std::mutex mu;  // guards queue / stop / history / deltas
    std::condition_variable cv;
    std::deque<task> queue;
    bool stop = false;
    // version -> the shard's overlay snapshot after applying it; consumed
    // (and trimmed below the publish point) by publish_through.
    std::map<std::uint64_t, std::shared_ptr<const overlay_snapshot<W>>>
        history;
    std::deque<cc_delta> deltas;

    std::atomic<std::uint64_t> applied{0};
    std::thread worker;
  };

  void init(const options& opt) {
    // Materialize the scheduler from the coordinating thread before any
    // shard worker runs (same reasoning as query_engine: a transient
    // thread must not become native worker 0).
    parlib::scheduler::instance();
    tracker_.refresh_anchor(cc_.labels());
    const component_view cur = tracker_.current();
    for (auto& sh : shards_) {
      sh->dg.set_compact_threshold(opt.compact_threshold);
      sh->last_index = build_overlay_snapshot(sh->dg, cur, /*epoch=*/0,
                                              /*base_version=*/0);
      sh->ov.refresh(sh->last_index);
      sh->history[0] = sh->last_index;
    }
    publish_through(0);
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      shards_[s]->worker = std::thread([this, s] { shard_loop(s); });
    }
  }

  void shard_loop(std::size_t si) {
    // Own scheduler deque: the shard's parallel apply/refresh forks land
    // here, stealable by native workers and the other shards' waits.
    parlib::worker_guard guard;
    shard& sh = *shards_[si];
    for (;;) {
      task t;
      {
        std::unique_lock<std::mutex> lk(sh.mu);
        sh.cv.wait(lk, [&] { return !sh.queue.empty() || sh.stop; });
        if (sh.queue.empty()) return;  // stopping and drained
        t = std::move(sh.queue.front());
        sh.queue.pop_front();
      }
      // The batch's trace id rides into this shard's apply spans and
      // every scheduler fork they trigger — one batch, one timeline,
      // across all shard threads.
      parlib::trace::trace_id_scope tscope(t.trace_id);
      // ingest.shard.apply.delay: a straggling shard. Injected before the
      // apply, so the lag is visible in the clock (applied stays behind)
      // — the straggler test proves no composite publishes past it.
      GBBS_FAILPOINT_SLEEP("ingest.shard.apply.delay");
      cc_delta delta;
      delta.version = t.version;
      delta.has_erase = t.sub.has_erases();
      if (!delta.has_erase) {
        delta.links.reserve(t.sub.updates.size() / 2);
        for (const auto& up : t.sub.updates) {
          if (up.op == dynamic::update_op::insert && up.u < up.v) {
            delta.links.emplace_back(up.u, up.v);
          }
        }
      }
      {
        static const obs::stage_ref s_apply =
            obs::stage_named("ingest.shard.apply");
        obs::trace_span span(s_apply);
        sh.dg.apply_batch(t.sub);
      }
      // Distinct updated vertices (the sub-batch stays (u, v)-sorted).
      std::vector<vertex_id> touched = t.sub.touched_vertices();
      {
        static const obs::stage_ref s_refresh =
            obs::stage_named("ingest.shard.refresh");
        obs::trace_span span(s_refresh);
        sh.last_index = build_overlay_snapshot(
            sh.dg, t.cc, /*epoch=*/t.version, store_.current_version(),
            sh.last_index.get(), &touched);
        sh.ov.refresh(sh.last_index);
      }
      {
        std::lock_guard<std::mutex> lk(sh.mu);
        sh.history[t.version] = sh.last_index;
        sh.deltas.push_back(std::move(delta));
      }
      sh.applied.store(t.version, std::memory_order_release);
      // Empty critical section pairs with flush()'s predicate check: the
      // store above cannot slip between a waiter's check and its sleep.
      { std::lock_guard<std::mutex> lk(clock_mu_); }
      clock_cv_.notify_all();
    }
  }

  // Assemble and publish the composite at clock value V (every shard has
  // applied through V). Consumes the shards' connectivity deltas <= V,
  // merges them into the global tracker, and trims per-shard history.
  std::uint64_t publish_through(std::uint64_t V) {
    bool need_rebuild = false;
    std::vector<std::pair<vertex_id, vertex_id>> links;
    auto comp = std::make_shared<composite_snapshot<W>>();
    comp->clock = V;
    comp->part = part_;
    comp->parts.resize(shards_.size());
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      shard& sh = *shards_[s];
      std::lock_guard<std::mutex> lk(sh.mu);
      while (!sh.deltas.empty() && sh.deltas.front().version <= V) {
        cc_delta& d = sh.deltas.front();
        if (d.has_erase) need_rebuild = true;
        links.insert(links.end(), d.links.begin(), d.links.end());
        sh.deltas.pop_front();
      }
      auto it = sh.history.find(V);
      assert(it != sh.history.end());
      comp->parts[s] = it->second;
      sh.history.erase(sh.history.begin(), it);  // keep V for re-publish
    }
    comp->n = 0;
    comp->m = 0;
    for (const auto& p : comp->parts) {
      comp->n = std::max(comp->n, p->n);
      comp->m += p->m;
    }
    {
      static const obs::stage_ref s_merge =
          obs::stage_named("ingest.barrier.merge");
      obs::trace_span span(s_merge);
      cc_.grow(comp->n);
      if (need_rebuild) {
        // Erases can split components: one rebuild over the stitched
        // composite view (already O(n + m) in the single-writer path
        // too), then re-anchor.
        cc_.rebuild(composite_view<W>(comp));
        tracker_.refresh_anchor(cc_.labels());
      } else if (!links.empty()) {
        cc_.unite_pairs(links);
        for (const auto& [a, b] : links) tracker_.track_pair(a, b);
        if (tracker_.needs_anchor()) tracker_.refresh_anchor(cc_.labels());
      }
    }
    comp->cc = tracker_.current();
    while (!pending_meta_.empty() && pending_meta_.front().first <= V) {
      published_updates_ = pending_meta_.front().second;
      pending_meta_.pop_front();
    }
    published_clock_ = V;
    component_view components = comp->cc;
    const std::uint64_t sv = store_.publish_composite(
        std::move(comp), std::move(components), published_updates_);
    if (cache_ != nullptr) {
      // Standing queries fire once the batches' data is composite-visible:
      // merge every pending touched summary through V into one
      // notification (re-evaluations observe the version just published).
      bucket_set merged;
      bool any = false;
      while (!pending_touched_.empty() && pending_touched_.front().first <= V) {
        merged.merge(pending_touched_.front().second);
        pending_touched_.pop_front();
        any = true;
      }
      if (any) cache_->notify(merged, V);
    }
    return sv;
  }

  dynamic::shard_partition part_;
  std::vector<std::unique_ptr<shard>> shards_;
  snapshot_store<W> store_;

  // Barrier-merged global connectivity + the anchor/link-map tracker
  // shared with snapshot_manager (coordinator-only).
  dynamic::incremental_connectivity cc_;
  component_tracker tracker_;

  std::mutex clock_mu_;  // flush()'s wait on the composite clock
  std::condition_variable clock_cv_;

  // Coordinator-only bookkeeping.
  std::uint64_t ingested_batches_ = 0;
  std::uint64_t updates_ingested_ = 0;
  std::deque<std::pair<std::uint64_t, std::uint64_t>> pending_meta_;
  // Touched-bucket summaries of ingested-but-not-yet-published batches,
  // merged into one standing-query notification per publish barrier.
  std::deque<std::pair<std::uint64_t, bucket_set>> pending_touched_;
  result_cache* cache_ = nullptr;
  std::uint64_t published_clock_ = 0;
  std::uint64_t published_updates_ = 0;
  std::uint64_t last_ingest_trace_id_ = 0;
};

using unweighted_sharded_manager = sharded_snapshot_manager<empty_weight>;

}  // namespace gbbs::serve
