// Overlay-served point reads: answer degree / neighbors / connected /
// component queries from the *uncompacted* delta overlay, so read
// freshness no longer waits for publish. The writer distills the dynamic
// graph's overlay into an immutable overlay_snapshot after every ingest —
// O(overlay + batch) work, proportional to the updates absorbed since the
// last publish, never to the graph — and hands it to readers through a
// seqlock-style epoch (overlay_view below).
//
// An overlay_snapshot is self-contained: it holds a *shared* handle onto
// the base CSR the deltas are relative to (an O(1) refcounted copy of
// dynamic_graph::base(), see graph.h), the flattened per-vertex delta
// entries, and the post-ingest connectivity as a component_view. Point
// reads therefore never touch writer state and never race with the next
// batch: the live neighborhood of u is the same base-vs-delta two-pointer
// merge dynamic_graph itself uses, executed against frozen shared data.
// Holding the base by shared handle (rather than assuming it matches the
// published head) also makes the index immune to auto-compaction racing
// between publishes: whatever base the overlay is relative to *right now*
// is the base the index carries.
//
// Publication (overlay_view) is a seqlock over the (epoch, index) pair:
// the writer bumps the sequence to odd, swaps the index pointer, bumps to
// even; readers retry while the sequence is odd or moved. Unlike a
// classic seqlock the protected payload is an immutable refcounted
// snapshot, so a reader can never observe torn data — the seqlock's only
// job is the freshness guarantee: once ingest() has returned, a
// subsequent read() observes an index whose epoch covers that ingest
// (read-your-writes for the single-writer serving loop), and epochs are
// monotone across reads.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <thread>
#include <utility>
#include <vector>

#include "dynamic/dynamic_graph.h"
#include "graph/graph.h"
#include "serve/component_view.h"

namespace gbbs::serve {

// Immutable distillation of the dynamic graph's state after one ingest.
template <typename W>
struct overlay_snapshot {
  std::uint64_t epoch = 0;         // updates ingested when this was built
  std::uint64_t base_version = 0;  // published store version at build time
  vertex_id n = 0;                 // live vertex count (>= base's n)
  gbbs::graph<W> base;             // shared CSR the deltas are relative to

  // Flattened overlay: verts (ascending) with non-empty deltas;
  // entries[ends[i-1] .. ends[i]) is the neighbor-sorted delta of
  // verts[i]; live_deg[i] is its live out-degree.
  std::vector<vertex_id> verts;
  std::vector<std::size_t> ends;
  std::vector<dynamic::delta_entry<W>> entries;
  std::vector<vertex_id> live_deg;

  component_view cc;  // connectivity after the last ingest

  // Index of u in verts, or npos if u has no overlay entries.
  static constexpr std::size_t npos = ~std::size_t{0};
  std::size_t slot(vertex_id u) const {
    auto it = std::lower_bound(verts.begin(), verts.end(), u);
    if (it == verts.end() || *it != u) return npos;
    return static_cast<std::size_t>(it - verts.begin());
  }

  vertex_id degree(vertex_id u) const {
    const std::size_t i = slot(u);
    if (i != npos) return live_deg[i];
    return u < base.num_vertices() ? base.out_degree(u) : 0;
  }

  bool contains_edge(vertex_id u, vertex_id v) const {
    if (u >= n) return false;
    const std::size_t i = slot(u);
    if (i != npos) {
      const auto lo = entries.begin() + (i == 0 ? 0 : ends[i - 1]);
      const auto hi = entries.begin() + ends[i];
      auto it = std::lower_bound(
          lo, hi, v,
          [](const dynamic::delta_entry<W>& e, vertex_id x) {
            return e.v < x;
          });
      if (it != hi && it->v == v) return it->present;
    }
    if (u >= base.num_vertices()) return false;
    const auto nghs = base.out_neighbors(u);
    return std::binary_search(nghs.begin(), nghs.end(), v);
  }

  // Materialize the full merged CSR (base ⊕ overlay) as a fresh symmetric
  // graph — O(n + m) work, the cost publish() no longer pays eagerly; the
  // store memoizes this per published version so at most one analytics
  // query per version pays it. Serving graphs are symmetric.
  gbbs::graph<W> materialize() const {
    assert(base.symmetric());
    auto degs = parlib::tabulate<edge_id>(n, [&](std::size_t v) {
      return degree(static_cast<vertex_id>(v));
    });
    const edge_id total = parlib::scan_inplace(degs);
    std::vector<edge_id> offsets(static_cast<std::size_t>(n) + 1);
    parlib::parallel_for(0, n, [&](std::size_t v) { offsets[v] = degs[v]; });
    offsets[n] = total;
    std::vector<vertex_id> nghs(total);
    std::vector<W> wghs;
    if constexpr (!std::is_same_v<W, empty_weight>) wghs.resize(total);
    parlib::parallel_for(0, n, [&](std::size_t vi) {
      const auto v = static_cast<vertex_id>(vi);
      edge_id k = offsets[vi];
      merge_row(v, [&](vertex_id ngh, W w) {
        nghs[k] = ngh;
        if constexpr (!std::is_same_v<W, empty_weight>) wghs[k] = w;
        ++k;
        (void)w;
      });
      assert(k == offsets[vi + 1]);
    });
    return gbbs::graph<W>(n, total, /*symmetric=*/true, std::move(offsets),
                          std::move(nghs), std::move(wghs));
  }

  // The live out-neighborhood of u, ascending (base merged with delta).
  std::vector<vertex_id> neighbors(vertex_id u) const {
    std::vector<vertex_id> out;
    out.reserve(degree(u));
    merge_row(u, [&](vertex_id ngh, W) { out.push_back(ngh); });
    return out;
  }

  // f(ngh, w) over u's live out-neighborhood, ascending: the base row
  // merged two-pointer with u's delta entries (delta overrides base).
  template <typename F>
  void merge_row(vertex_id u, const F& f) const {
    std::span<const vertex_id> bn{};
    if (u < base.num_vertices()) bn = base.out_neighbors(u);
    const std::size_t i = slot(u);
    if (i == npos) {
      for (std::size_t j = 0; j < bn.size(); ++j) {
        f(bn[j], base.out_weight(u, j));
      }
      return;
    }
    const std::size_t lo = i == 0 ? 0 : ends[i - 1];
    const std::size_t hi = ends[i];
    std::size_t di = lo, j = 0;
    while (di < hi || j < bn.size()) {
      if (j == bn.size() || (di < hi && entries[di].v < bn[j])) {
        if (entries[di].present) f(entries[di].v, entries[di].w);
        ++di;
      } else if (di == hi || bn[j] < entries[di].v) {
        f(bn[j], base.out_weight(u, j));
        ++j;
      } else {  // same neighbor: delta overrides base
        if (entries[di].present) f(entries[di].v, entries[di].w);
        ++di;
        ++j;
      }
    }
  }
};

// Distill the dynamic graph's current overlay (writer thread only; the
// dynamic graph must not be mutated concurrently). O(overlay) work.
template <typename W>
std::shared_ptr<const overlay_snapshot<W>> build_overlay_snapshot(
    const dynamic::dynamic_graph<W>& dg, component_view cc,
    std::uint64_t epoch, std::uint64_t base_version) {
  auto idx = std::make_shared<overlay_snapshot<W>>();
  idx->epoch = epoch;
  idx->base_version = base_version;
  idx->n = dg.num_vertices();
  idx->base = dg.base();  // O(1) shared handle
  idx->cc = std::move(cc);
  const auto& verts = dg.overlay_vertices();
  idx->verts = verts;
  idx->ends.reserve(verts.size());
  idx->live_deg.reserve(verts.size());
  std::size_t total = 0;
  for (vertex_id u : verts) total += dg.delta_of(u).size();
  idx->entries.reserve(total);
  for (vertex_id u : verts) {
    const auto& d = dg.delta_of(u);
    idx->entries.insert(idx->entries.end(), d.begin(), d.end());
    idx->ends.push_back(idx->entries.size());
    idx->live_deg.push_back(dg.out_degree(u));
  }
  return idx;
}

// Seqlock-style publication of the freshest overlay_snapshot: single
// writer swaps, any number of readers load. See file header for the
// protocol and the freshness guarantee.
template <typename W>
class overlay_view {
 public:
  // Freshest index, or null if the writer has not published one yet.
  std::shared_ptr<const overlay_snapshot<W>> read() const {
    for (;;) {
      const std::uint64_t s1 = seq_.load(std::memory_order_acquire);
      if ((s1 & 1) == 0) {
        auto p = idx_.load(std::memory_order_acquire);
        if (seq_.load(std::memory_order_acquire) == s1) return p;
      }
      std::this_thread::yield();  // writer mid-swap; the window is tiny
    }
  }

  // Epoch of the freshest index (0 before the first refresh).
  std::uint64_t epoch() const {
    auto p = read();
    return p == nullptr ? 0 : p->epoch;
  }

  // Writer side: install a new index. Not reentrant.
  void refresh(std::shared_ptr<const overlay_snapshot<W>> idx) {
    seq_.fetch_add(1, std::memory_order_acq_rel);  // odd: swap in progress
    idx_.store(std::move(idx), std::memory_order_release);
    seq_.fetch_add(1, std::memory_order_release);  // even: stable
  }

 private:
  std::atomic<std::uint64_t> seq_{0};
  std::atomic<std::shared_ptr<const overlay_snapshot<W>>> idx_{nullptr};
};

}  // namespace gbbs::serve
