// Overlay-served fresh reads: answer point reads *and* traversal
// analytics from the *uncompacted* delta overlay, so read freshness no
// longer waits for publish. The writer distills the dynamic graph's
// overlay into an immutable overlay_snapshot after every ingest and hands
// it to readers through a seqlock-style epoch (overlay_view below).
//
// The index is *persistent* (in the functional-data-structure sense): it
// is a power-of-two array of immutable buckets, each bucket the sorted
// rows of the vertices hashing to it, each row an immutable refcounted
// delta row *shared with the dynamic graph itself* (dynamic_graph replaces
// rows wholesale per batch and never mutates them in place). Refreshing
// after a batch therefore rebuilds only the buckets containing the batch's
// touched vertices and aliases every other bucket from the previous
// snapshot — O(batch) expected work per ingest, not O(overlay): the PR-3
// flat-array index recopied every delta entry on every ingest, which put
// an O(overlay) floor under ingest latency between compactions.
//
// An overlay_snapshot is self-contained: it holds a *shared* handle onto
// the base CSR the deltas are relative to (an O(1) refcounted copy of
// dynamic_graph::base(), see graph.h), the bucketed row index, the *live*
// edge count m (base plus overlay inserts minus erases — what
// edge_map's dense/sparse direction threshold must see), and the
// post-ingest connectivity as a component_view. Point reads therefore
// never touch writer state and never race with the next batch: the live
// neighborhood of u is the same base-vs-delta two-pointer merge
// dynamic_graph itself uses, executed against frozen shared data.
//
// Publication (overlay_view) is a seqlock over the (epoch, index) pair:
// the writer bumps the sequence to odd, swaps the index pointer, bumps to
// even; readers retry while the sequence is odd or moved. Unlike a
// classic seqlock the protected payload is an immutable refcounted
// snapshot, so a reader can never observe torn data — the seqlock's only
// job is the freshness guarantee: once ingest() has returned, a
// subsequent read() observes an index whose epoch covers that ingest
// (read-your-writes for the single-writer serving loop), and epochs are
// monotone across reads.
#pragma once

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstdint>
#include <memory>
#include <span>
#include <thread>
#include <utility>
#include <vector>

#include "dynamic/dynamic_graph.h"
#include "graph/graph.h"
#include "parlib/counters.h"
#include "serve/component_view.h"

namespace gbbs::serve {

// One indexed vertex: its shared delta row (non-null, non-empty) and its
// live out-degree.
template <typename W>
struct overlay_row {
  dynamic::delta_row_ptr<W> entries;
  vertex_id live_deg = 0;
};

// Immutable bucket: the rows of every vertex hashing here, vertex-sorted.
template <typename W>
struct overlay_bucket {
  std::vector<std::pair<vertex_id, overlay_row<W>>> rows;
};

// Immutable distillation of the dynamic graph's state after one ingest.
template <typename W>
struct overlay_snapshot {
  std::uint64_t epoch = 0;         // updates ingested when this was built
  std::uint64_t base_version = 0;  // published store version at build time
  vertex_id n = 0;                 // live vertex count (>= base's n)
  edge_id m = 0;                   // live edge count (base ⊕ overlay)
  gbbs::graph<W> base;             // shared CSR the deltas are relative to

  // Persistent bucketed row index; empty vector when the overlay is empty.
  // Untouched buckets are aliased (same shared_ptr) across snapshots.
  std::vector<std::shared_ptr<const overlay_bucket<W>>> buckets;
  std::size_t overlay_verts = 0;    // rows across all buckets
  std::size_t overlay_entries = 0;  // delta entries across all rows

  component_view cc;  // connectivity after the last ingest

  std::size_t bucket_count() const { return buckets.size(); }
  std::size_t overlay_size() const { return overlay_verts; }
  bool overlay_empty() const {
    return overlay_verts == 0 && n == base.num_vertices();
  }

  // Fibonacci-hash bucket of u (buckets.size() is a power of two).
  std::size_t bucket_of(vertex_id u) const {
    const int k = std::countr_zero(buckets.size());
    if (k == 0) return 0;
    return static_cast<std::size_t>(
        (static_cast<std::uint64_t>(u) * 0x9E3779B97F4A7C15ull) >>
        (64 - k));
  }

  // u's row, or null if u has no overlay entries. O(1) expected.
  const overlay_row<W>* row(vertex_id u) const {
    if (buckets.empty()) return nullptr;
    const auto& b = *buckets[bucket_of(u)];
    auto it = std::lower_bound(
        b.rows.begin(), b.rows.end(), u,
        [](const auto& r, vertex_id x) { return r.first < x; });
    if (it == b.rows.end() || it->first != u) return nullptr;
    return &it->second;
  }

  // f(u, row) over every indexed vertex (bucket order; vertex-sorted
  // within a bucket).
  template <typename F>
  void for_each_row(const F& f) const {
    for (const auto& b : buckets) {
      for (const auto& [u, r] : b->rows) f(u, r);
    }
  }

  vertex_id degree(vertex_id u) const {
    if (const overlay_row<W>* r = row(u)) return r->live_deg;
    return u < base.num_vertices() ? base.out_degree(u) : 0;
  }

  bool contains_edge(vertex_id u, vertex_id v) const {
    if (u >= n) return false;
    if (const overlay_row<W>* r = row(u)) {
      const auto& d = *r->entries;
      auto it = std::lower_bound(
          d.begin(), d.end(), v,
          [](const dynamic::delta_entry<W>& e, vertex_id x) {
            return e.v < x;
          });
      if (it != d.end() && it->v == v) return it->present;
    }
    if (u >= base.num_vertices()) return false;
    const auto nghs = base.out_neighbors(u);
    return std::binary_search(nghs.begin(), nghs.end(), v);
  }

  // Materialize the full merged CSR (base ⊕ overlay) as a fresh symmetric
  // graph — O(n + m) work. The analytics hot path no longer pays this (it
  // traverses the overlay-fused dynamic_view directly); it remains for
  // explicitly-stale requests, memoized per published version so at most
  // one such query per version pays it. Counted in
  // parlib::event_counters::merged_csr_materializations (the test hook
  // asserting fresh analytics never merge). Serving graphs are symmetric.
  gbbs::graph<W> materialize() const {
    assert(base.symmetric());
    parlib::event_counters::global().merged_csr_materializations.fetch_add(
        1, std::memory_order_relaxed);
    auto degs = parlib::tabulate<edge_id>(n, [&](std::size_t v) {
      return degree(static_cast<vertex_id>(v));
    });
    const edge_id total = parlib::scan_inplace(degs);
    std::vector<edge_id> offsets(static_cast<std::size_t>(n) + 1);
    parlib::parallel_for(0, n, [&](std::size_t v) { offsets[v] = degs[v]; });
    offsets[n] = total;
    std::vector<vertex_id> nghs(total);
    std::vector<W> wghs;
    if constexpr (!std::is_same_v<W, empty_weight>) wghs.resize(total);
    parlib::parallel_for(0, n, [&](std::size_t vi) {
      const auto v = static_cast<vertex_id>(vi);
      edge_id k = offsets[vi];
      merge_row(v, [&](vertex_id ngh, W w) {
        nghs[k] = ngh;
        if constexpr (!std::is_same_v<W, empty_weight>) wghs[k] = w;
        ++k;
        (void)w;
      });
      assert(k == offsets[vi + 1]);
    });
    return gbbs::graph<W>(n, total, /*symmetric=*/true, std::move(offsets),
                          std::move(nghs), std::move(wghs));
  }

  // The live out-neighborhood of u, ascending (base merged with delta).
  std::vector<vertex_id> neighbors(vertex_id u) const {
    std::vector<vertex_id> out;
    out.reserve(degree(u));
    merge_row(u, [&](vertex_id ngh, W) { out.push_back(ngh); });
    return out;
  }

  // f(ngh, w) over u's live out-neighborhood, ascending: the base row
  // merged two-pointer with u's delta entries (delta overrides base).
  template <typename F>
  void merge_row(vertex_id u, const F& f) const {
    merge_row_early_exit(u, [&](vertex_id ngh, W w) {
      f(ngh, w);
      return true;
    });
  }

  // Early-exit variant: f returns false to stop.
  template <typename F>
  void merge_row_early_exit(vertex_id u, const F& f) const {
    const overlay_row<W>* r = row(u);
    const dynamic::delta_entry<W>* d = nullptr;
    std::size_t dn = 0;
    if (r != nullptr) {
      d = r->entries->data();
      dn = r->entries->size();
    }
    dynamic::merged_row_early_exit(
        base_row(u), [&](std::size_t j) { return base.out_weight(u, j); },
        d, dn, f);
  }

  // f(ngh, w) over live positions [j_lo, j_hi) of u's neighborhood — the
  // random access the blocked edgeMap needs.
  template <typename F>
  void merge_row_range(vertex_id u, std::size_t j_lo, std::size_t j_hi,
                       const F& f) const {
    const overlay_row<W>* r = row(u);
    const dynamic::delta_entry<W>* d = nullptr;
    std::size_t dn = 0;
    if (r != nullptr) {
      d = r->entries->data();
      dn = r->entries->size();
    }
    dynamic::merged_row_range(
        base_row(u), [&](std::size_t j) { return base.out_weight(u, j); },
        d, dn, j_lo, j_hi, f);
  }

 private:
  std::span<const vertex_id> base_row(vertex_id u) const {
    if (u >= base.num_vertices()) return {};
    return base.out_neighbors(u);
  }
};

namespace overlay_internal {

// Buckets sized for ~8 rows each keep lookups O(1) and make a touched
// bucket's rebuild O(1) expected row copies.
inline std::size_t bucket_count_for(std::size_t rows) {
  return std::bit_ceil(std::max<std::size_t>(1, rows / 8));
}

}  // namespace overlay_internal

// Distill the dynamic graph's current overlay (writer thread only; the
// dynamic graph must not be mutated concurrently).
//
// With `prev` + `touched` (the distinct vertices of the batch just
// applied, any order), buckets not containing a touched vertex are shared
// with `prev` — O(batch) expected work. Falls back to a full O(overlay)
// rebuild when there is no usable predecessor (first build, base swapped
// by compaction, or the index outgrew its bucket array).
template <typename W>
std::shared_ptr<const overlay_snapshot<W>> build_overlay_snapshot(
    const dynamic::dynamic_graph<W>& dg, component_view cc,
    std::uint64_t epoch, std::uint64_t base_version,
    const overlay_snapshot<W>* prev = nullptr,
    const std::vector<vertex_id>* touched = nullptr) {
  auto idx = std::make_shared<overlay_snapshot<W>>();
  idx->epoch = epoch;
  idx->base_version = base_version;
  idx->n = dg.num_vertices();
  idx->m = dg.num_edges();
  idx->base = dg.base();  // O(1) shared handle
  idx->cc = std::move(cc);

  auto fresh_row = [&](vertex_id u) {
    return overlay_row<W>{dg.delta_row_of(u), dg.out_degree(u)};
  };

  const bool incremental =
      prev != nullptr && touched != nullptr && !prev->buckets.empty() &&
      prev->base.shares_storage(dg.base());
  if (incremental) {
    // Start from the predecessor's buckets; rebuild only touched ones.
    idx->buckets = prev->buckets;
    idx->overlay_verts = prev->overlay_verts;
    idx->overlay_entries = prev->overlay_entries;
    // Group the touched vertices by bucket (sorted, deduped).
    std::vector<std::pair<std::size_t, vertex_id>> by_bucket;
    by_bucket.reserve(touched->size());
    for (vertex_id u : *touched) {
      by_bucket.emplace_back(idx->bucket_of(u), u);
    }
    std::sort(by_bucket.begin(), by_bucket.end());
    by_bucket.erase(std::unique(by_bucket.begin(), by_bucket.end()),
                    by_bucket.end());
    std::size_t i = 0;
    while (i < by_bucket.size()) {
      const std::size_t b = by_bucket[i].first;
      std::size_t j = i;
      while (j < by_bucket.size() && by_bucket[j].first == b) ++j;
      auto nb = std::make_shared<overlay_bucket<W>>();
      const auto& old_rows = idx->buckets[b]->rows;
      nb->rows.reserve(old_rows.size() + (j - i));
      // Merge the old rows (vertex-sorted) with the touched vertices
      // (vertex-sorted): touched vertices get a fresh row iff their delta
      // is now non-empty, old rows carry over untouched.
      std::size_t a = 0, t = i;
      auto add_touched = [&](vertex_id u) {
        const auto& d = dg.delta_of(u);
        if (!d.empty()) {
          nb->rows.emplace_back(u, fresh_row(u));
          idx->overlay_entries += d.size();
          ++idx->overlay_verts;
        }
      };
      while (a < old_rows.size() || t < j) {
        const vertex_id tu = t < j ? by_bucket[t].second : kNoVertex;
        if (t == j || (a < old_rows.size() && old_rows[a].first < tu)) {
          nb->rows.push_back(old_rows[a]);
          ++a;
        } else {
          if (a < old_rows.size() && old_rows[a].first == tu) {
            // Replaced (or removed): retire the old row's counts.
            idx->overlay_entries -= old_rows[a].second.entries->size();
            --idx->overlay_verts;
            ++a;
          }
          add_touched(tu);
          ++t;
        }
      }
      idx->buckets[b] = std::move(nb);
      i = j;
    }
    // Still appropriately sized? Grow (full rebuild) once the average
    // bucket would exceed ~2x the target row count.
    if (overlay_internal::bucket_count_for(idx->overlay_verts) <=
        2 * idx->buckets.size()) {
      if (idx->overlay_verts == 0 && idx->n == idx->base.num_vertices()) {
        idx->buckets.clear();  // fully drained: drop the bucket array
      }
      return idx;
    }
    idx->buckets.clear();  // fall through to a full rebuild at the new size
    idx->overlay_verts = 0;
    idx->overlay_entries = 0;
  }

  // Full rebuild from the dynamic graph's overlay work-list. O(overlay).
  const auto& verts = dg.overlay_vertices();
  if (verts.empty()) return idx;
  const std::size_t nbuckets =
      overlay_internal::bucket_count_for(verts.size());
  std::vector<overlay_bucket<W>> building(nbuckets);
  idx->buckets.resize(nbuckets);
  // bucket_of reads buckets.size(); resize first, then distribute.
  for (vertex_id u : verts) {
    const auto& d = dg.delta_of(u);
    building[idx->bucket_of(u)].rows.emplace_back(u, fresh_row(u));
    idx->overlay_entries += d.size();
  }
  idx->overlay_verts = verts.size();
  for (std::size_t b = 0; b < nbuckets; ++b) {
    // Rows arrive vertex-sorted per bucket (verts is ascending and the
    // hash is order-scrambling but stable per vertex) — sort to be safe.
    std::sort(building[b].rows.begin(), building[b].rows.end(),
              [](const auto& x, const auto& y) { return x.first < y.first; });
    idx->buckets[b] =
        std::make_shared<overlay_bucket<W>>(std::move(building[b]));
  }
  return idx;
}

// Seqlock-style publication of the freshest overlay_snapshot: single
// writer swaps, any number of readers load. See file header for the
// protocol and the freshness guarantee.
template <typename W>
class overlay_view {
 public:
  // Freshest index, or null if the writer has not published one yet.
  std::shared_ptr<const overlay_snapshot<W>> read() const {
    for (;;) {
      const std::uint64_t s1 = seq_.load(std::memory_order_acquire);
      if ((s1 & 1) == 0) {
        auto p = idx_.load(std::memory_order_acquire);
        if (seq_.load(std::memory_order_acquire) == s1) return p;
      }
      std::this_thread::yield();  // writer mid-swap; the window is tiny
    }
  }

  // Epoch of the freshest index (0 before the first refresh).
  std::uint64_t epoch() const {
    auto p = read();
    return p == nullptr ? 0 : p->epoch;
  }

  // Writer side: install a new index. Not reentrant.
  void refresh(std::shared_ptr<const overlay_snapshot<W>> idx) {
    seq_.fetch_add(1, std::memory_order_acq_rel);  // odd: swap in progress
    idx_.store(std::move(idx), std::memory_order_release);
    seq_.fetch_add(1, std::memory_order_release);  // even: stable
  }

 private:
  std::atomic<std::uint64_t> seq_{0};
  std::atomic<std::shared_ptr<const overlay_snapshot<W>>> idx_{nullptr};
};

}  // namespace gbbs::serve
