// Always-on, lock-free flight recorder: per-worker-slot ring buffers of
// fixed-size binary events, written with relaxed atomic stores on the hot
// path and decoded on demand into per-request timelines.
//
// PR 6's histograms aggregate; they cannot say why *one* query took 40 ms.
// The recorder keeps the last N events per worker slot — span begin/end,
// instants, queue hand-offs, scheduler forks/steals — each stamped with a
// tsc timestamp and the trace id of the request that caused it, so a
// snapshot reconstructs causal timelines across threads (see
// trace_export.h for the Chrome-trace rendering and exemplar.h for
// tail-sampled slow-query retention).
//
// Concurrency design:
//  * one ring per worker slot (parlib::worker_slot()), so registered
//    participants never contend on a head index. The shared overflow slot
//    (unregistered threads) can have concurrent writers — the ring index is
//    claimed with a relaxed fetch_add, so claims are unique; two claims a
//    full lap apart can interleave field writes on the same physical entry,
//    which the decoder rejects via the sequence check (observability data,
//    not a correctness channel — a vanishingly rare bad entry is skipped);
//  * every event field is an atomic written/read relaxed, bracketed by a
//    per-entry seqlock (odd = write in progress; an entry for ring index i
//    is stable only at seq == 2*i + 2). Snapshots run concurrently with
//    writers, retry unstable entries a few times, and skip entries that a
//    writer lapped mid-read. All accesses are atomics: TSan-clean by
//    construction, torn reads rejected by value;
//  * wraparound is never silent: head is monotone, so `head - capacity`
//    (when positive) is exactly the number of overwritten ("dropped")
//    events, exported as trace.events_dropped.
//
// Cost when enabled: a TLS lookup, one fetch_add, a tsc read, six relaxed
// stores — low tens of ns (bench_primitives records the number into
// BENCH_scheduler.json). When disabled at runtime: one relaxed load and a
// branch. Compiled out entirely with -DGBBS_NO_FLIGHT_RECORDER
// (cmake -DGBBS_FLIGHT_RECORDER=OFF).
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/registry.h"
#include "parlib/scheduler.h"
#include "parlib/trace_hooks.h"

namespace gbbs::obs {

// Event taxonomy — a stable contract (README "Tracing"): values are what
// tests and external tooling key on.
enum class event_type : std::uint32_t {
  none = 0,
  span_begin = 1,       // arg_a = interned stage-name id
  span_end = 2,         // arg_a = interned stage-name id
  instant = 3,          // arg_a = interned label id
  flow_begin = 4,       // arg_b = flow id (request hand-off source)
  flow_end = 5,         // arg_b = flow id (request hand-off destination)
  sched_fork = 6,       // arg_b = job key; par_do published a stealable job
  sched_steal = 7,      // arg_b = job key; a thief dequeued it
  sched_run_begin = 8,  // arg_b = job key; thief starts the stolen job
  sched_run_end = 9,    // arg_b = job key; thief finished it
  sched_inline = 10,    // arg_b = job key; deque-full inline fallback
};

// Stable wire names for the taxonomy (exports + the CI required-names
// check key on these).
inline const char* event_type_name(event_type t) {
  switch (t) {
    case event_type::none: return "none";
    case event_type::span_begin: return "span_begin";
    case event_type::span_end: return "span_end";
    case event_type::instant: return "instant";
    case event_type::flow_begin: return "flow_begin";
    case event_type::flow_end: return "flow_end";
    case event_type::sched_fork: return "sched_fork";
    case event_type::sched_steal: return "sched_steal";
    case event_type::sched_run_begin: return "sched_run_begin";
    case event_type::sched_run_end: return "sched_run_end";
    case event_type::sched_inline: return "sched_inline";
  }
  return "unknown";
}

// A decoded event, as returned by snapshot(): stable fields only.
struct recorded_event {
  std::uint64_t ts_ticks = 0;  // rdticks() at emit (see ticks_to_ns)
  std::uint64_t trace_id = 0;  // originating request, 0 = none
  std::uint64_t arg_b = 0;     // flow id / job key
  std::uint32_t arg_a = 0;     // interned stage/label id
  event_type type = event_type::none;
  std::uint32_t slot = 0;      // worker slot that recorded it
};

// Timestamp source: tsc where available (one instruction, monotone enough
// for intra-process timelines), steady_clock ns elsewhere. The recorder
// calibrates ticks -> ns at export time against a steady_clock anchor.
inline std::uint64_t rdticks() {
#if defined(__x86_64__) || defined(_M_X64)
  return __builtin_ia32_rdtsc();
#else
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
#endif
}

class flight_recorder {
 public:
  // Per-slot ring capacity: GBBS_TRACE_EVENTS env (rounded up to a power
  // of two, min 64) or 8192. ~40 B/event, rings allocate lazily per slot.
  static constexpr std::size_t kDefaultCapacity = 8192;

  // The process-wide recorder. Leaked (worker threads may emit during
  // static destruction); installs the parlib scheduler hook and the
  // registry bridge (trace.events_recorded / trace.events_dropped) once.
  static flight_recorder& global() {
    static flight_recorder* r = [] {
      auto* fr = new flight_recorder();
      parlib::trace::set_sched_hook(&sched_hook);
      registry::global().add_callback([](metrics_snapshot& s) {
        s.add_counter("trace.events_recorded", global().events_recorded());
        s.add_counter("trace.events_dropped", global().events_dropped());
      });
      return fr;
    }();
    return *r;
  }

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  std::size_t capacity() const { return capacity_; }

  // Allocate a fresh trace id (never 0).
  std::uint64_t next_trace_id() {
    return next_trace_id_.fetch_add(1, std::memory_order_relaxed);
  }

  // ---- hot path ------------------------------------------------------------

  // Record an event tagged with the calling thread's current trace id.
  void emit(event_type t, std::uint32_t arg_a = 0, std::uint64_t arg_b = 0) {
#if !defined(GBBS_NO_FLIGHT_RECORDER)
    emit_with_id(t, parlib::trace::current_trace_id(), arg_a, arg_b);
#else
    (void)t;
    (void)arg_a;
    (void)arg_b;
#endif
  }

  void emit_with_id(event_type t, std::uint64_t trace_id,
                    std::uint32_t arg_a = 0, std::uint64_t arg_b = 0) {
#if !defined(GBBS_NO_FLIGHT_RECORDER)
    if (!enabled_.load(std::memory_order_relaxed)) return;
    ring& r = ring_for(parlib::worker_slot());
    const std::uint64_t idx = r.head.fetch_add(1, std::memory_order_relaxed);
    entry& e = r.entries[idx & mask_];
    // Per-entry seqlock: odd marks the write in progress; the release
    // fence orders the marker before the field stores, the final release
    // store publishes the fields under the even (stable) sequence.
    e.seq.store(2 * idx + 1, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_release);
    e.ts.store(rdticks(), std::memory_order_relaxed);
    e.trace_id.store(trace_id, std::memory_order_relaxed);
    e.arg_b.store(arg_b, std::memory_order_relaxed);
    e.type.store(static_cast<std::uint32_t>(t), std::memory_order_relaxed);
    e.arg_a.store(arg_a, std::memory_order_relaxed);
    e.seq.store(2 * idx + 2, std::memory_order_release);
#else
    (void)t;
    (void)trace_id;
    (void)arg_a;
    (void)arg_b;
#endif
  }

  // ---- stage-name interning ------------------------------------------------

  // Map a stage/label name to a dense id carried in arg_a. Mutex-guarded;
  // call sites cache the id (see trace.h's stage_ref). Id 0 is "".
  std::uint32_t intern(const std::string& name) {
    std::lock_guard<std::mutex> lk(intern_mutex_);
    auto it = intern_ids_.find(name);
    if (it != intern_ids_.end()) return it->second;
    const auto id = static_cast<std::uint32_t>(intern_names_.size());
    intern_names_.push_back(name);
    intern_ids_.emplace(name, id);
    return id;
  }

  std::string intern_name(std::uint32_t id) const {
    std::lock_guard<std::mutex> lk(intern_mutex_);
    return id < intern_names_.size() ? intern_names_[id] : std::string();
  }

  // ---- snapshot ------------------------------------------------------------

  // Events ever recorded / overwritten by wraparound, across all slots.
  std::uint64_t events_recorded() const {
    std::uint64_t total = 0;
    for (std::size_t s = 0; s < num_slots_; ++s) {
      if (const ring* r = rings_[s].load(std::memory_order_acquire)) {
        total += r->head.load(std::memory_order_relaxed);
      }
    }
    return total;
  }
  std::uint64_t events_dropped() const {
    std::uint64_t total = 0;
    for (std::size_t s = 0; s < num_slots_; ++s) {
      if (const ring* r = rings_[s].load(std::memory_order_acquire)) {
        const std::uint64_t head = r->head.load(std::memory_order_relaxed);
        if (head > capacity_) total += head - capacity_;
      }
    }
    return total;
  }

  // Decode every stable event across all rings, sorted by timestamp.
  // Runs concurrently with writers: in-progress or lapped entries are
  // skipped (bounded retries), never blocked on.
  std::vector<recorded_event> snapshot() const {
    std::vector<recorded_event> out;
    for (std::size_t s = 0; s < num_slots_; ++s) {
      const ring* r = rings_[s].load(std::memory_order_acquire);
      if (r == nullptr) continue;
      const std::uint64_t head = r->head.load(std::memory_order_acquire);
      const std::uint64_t n = head < capacity_ ? head : capacity_;
      for (std::uint64_t idx = head - n; idx < head; ++idx) {
        recorded_event ev;
        if (decode(r->entries[idx & mask_], idx, ev)) {
          ev.slot = static_cast<std::uint32_t>(s);
          out.push_back(ev);
        }
      }
    }
    std::sort(out.begin(), out.end(),
              [](const recorded_event& a, const recorded_event& b) {
                return a.ts_ticks < b.ts_ticks;
              });
    return out;
  }

  // The events of one request, in timestamp order.
  std::vector<recorded_event> snapshot_trace(std::uint64_t trace_id) const {
    std::vector<recorded_event> all = snapshot();
    std::vector<recorded_event> out;
    for (const auto& ev : all) {
      if (ev.trace_id == trace_id) out.push_back(ev);
    }
    return out;
  }

  // ---- tick calibration ----------------------------------------------------

  // ns per tick, measured against steady_clock since construction. The
  // measurement window grows with process lifetime, so export-time error
  // is far below event granularity.
  double ns_per_tick() const {
    const std::uint64_t t1 = rdticks();
    const auto c1 = std::chrono::steady_clock::now();
    const double dticks = static_cast<double>(t1 - anchor_ticks_);
    const double dns = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(c1 -
                                                             anchor_clock_)
            .count());
    return dticks > 0 && dns > 0 ? dns / dticks : 1.0;
  }

  std::uint64_t anchor_ticks() const { return anchor_ticks_; }

  double ticks_to_us(std::uint64_t ticks, double ns_per_tick_v) const {
    return static_cast<double>(ticks - anchor_ticks_) * ns_per_tick_v / 1e3;
  }

  flight_recorder(const flight_recorder&) = delete;
  flight_recorder& operator=(const flight_recorder&) = delete;

 private:
  struct entry {
    std::atomic<std::uint64_t> seq{0};  // 2*idx+1 writing, 2*idx+2 stable
    std::atomic<std::uint64_t> ts{0};
    std::atomic<std::uint64_t> trace_id{0};
    std::atomic<std::uint64_t> arg_b{0};
    std::atomic<std::uint32_t> type{0};
    std::atomic<std::uint32_t> arg_a{0};
  };
  struct ring {
    std::atomic<std::uint64_t> head{0};
    std::unique_ptr<entry[]> entries;
  };

  flight_recorder()
      : capacity_(capacity_from_env()),
        mask_(capacity_ - 1),
        num_slots_(parlib::max_worker_slots()),
        rings_(new std::atomic<ring*>[num_slots_]),
        anchor_ticks_(rdticks()),
        anchor_clock_(std::chrono::steady_clock::now()) {
    for (std::size_t s = 0; s < num_slots_; ++s) {
      rings_[s].store(nullptr, std::memory_order_relaxed);
    }
    intern_names_.push_back("");  // id 0 reserved
    intern_ids_.emplace("", 0);
  }

  static std::size_t capacity_from_env() {
    std::size_t cap = kDefaultCapacity;
    if (const char* env = std::getenv("GBBS_TRACE_EVENTS")) {
      const long v = std::strtol(env, nullptr, 10);
      if (v >= 1) cap = static_cast<std::size_t>(v);
    }
    std::size_t pow2 = 64;
    while (pow2 < cap) pow2 <<= 1;
    return pow2;
  }

  ring& ring_for(std::size_t slot) {
    ring* r = rings_[slot].load(std::memory_order_acquire);
    if (r != nullptr) return *r;
    auto* fresh = new ring();
    fresh->entries = std::make_unique<entry[]>(capacity_);
    ring* expected = nullptr;
    if (rings_[slot].compare_exchange_strong(expected, fresh,
                                             std::memory_order_acq_rel,
                                             std::memory_order_acquire)) {
      return *fresh;
    }
    delete fresh;  // another writer on the shared overflow slot won
    return *expected;
  }

  static bool decode(const entry& e, std::uint64_t idx, recorded_event& ev) {
    const std::uint64_t want = 2 * idx + 2;
    for (int attempt = 0; attempt < 4; ++attempt) {
      const std::uint64_t s1 = e.seq.load(std::memory_order_acquire);
      if (s1 != want) return false;  // in progress, or lapped by a writer
      ev.ts_ticks = e.ts.load(std::memory_order_relaxed);
      ev.trace_id = e.trace_id.load(std::memory_order_relaxed);
      ev.arg_b = e.arg_b.load(std::memory_order_relaxed);
      ev.type = static_cast<event_type>(e.type.load(std::memory_order_relaxed));
      ev.arg_a = e.arg_a.load(std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_acquire);
      if (e.seq.load(std::memory_order_relaxed) == s1) return true;
    }
    return false;
  }

  static void sched_hook(parlib::trace::sched_event e, std::uint64_t trace_id,
                         std::uint64_t job_key) {
    event_type t = event_type::none;
    switch (e) {
      case parlib::trace::sched_event::fork:
        t = event_type::sched_fork;
        break;
      case parlib::trace::sched_event::steal:
        t = event_type::sched_steal;
        break;
      case parlib::trace::sched_event::run_begin:
        t = event_type::sched_run_begin;
        break;
      case parlib::trace::sched_event::run_end:
        t = event_type::sched_run_end;
        break;
      case parlib::trace::sched_event::inline_fallback:
        t = event_type::sched_inline;
        break;
    }
    global().emit_with_id(t, trace_id, 0, job_key);
  }

  const std::size_t capacity_;
  const std::uint64_t mask_;
  const std::size_t num_slots_;
  std::unique_ptr<std::atomic<ring*>[]> rings_;
  std::atomic<bool> enabled_{true};
  std::atomic<std::uint64_t> next_trace_id_{1};
  const std::uint64_t anchor_ticks_;
  const std::chrono::steady_clock::time_point anchor_clock_;

  mutable std::mutex intern_mutex_;
  std::vector<std::string> intern_names_;
  std::map<std::string, std::uint32_t> intern_ids_;
};

// Ensure the recorder (and its scheduler hook) exists before any traced
// work runs. Tools and the serving layer call this once at startup; emit()
// callers may rely on global() directly.
inline void ensure_flight_recorder() { flight_recorder::global(); }

}  // namespace gbbs::obs
