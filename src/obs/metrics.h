// Metric primitives for the observability layer: worker-sharded counters
// and histograms plus a plain gauge.
//
// Sharding contract. Hot-path increments must never contend: both counter
// and histogram keep one cache-line-padded cell per scheduler deque slot
// (parlib::worker_slot(), PR 5's slot table), so a native worker, a
// registered external thread (query-engine reader, bench writer), and the
// shared overflow slot for unregistered threads each write their own
// line. All writes are relaxed fetch_adds — uncontended on an owned line,
// still correct on the overflow slot, and readable from any thread.
// Reads aggregate across the cells; they are O(slots) and meant for
// export/snapshot frequency, not per-operation frequency.
//
// Histogram buckets. Log-linear ("HDR-lite") layout over nanoseconds:
// values below 8 ns get exact unit buckets, every power-of-two octave
// above is split into 8 linear sub-buckets, so any recorded duration
// falls in a bucket at most 12.5% wide (quantile estimates are within
// ~6% relative of the true sample quantile — verified against the exact
// obs::percentile reference in tests/test_obs.cc). count / sum / max are
// exact. Per-slot bucket blocks are allocated lazily on a slot's first
// record, so memory scales with actual participants, not the slot-table
// capacity.
#pragma once

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <memory>

#include "parlib/scheduler.h"

namespace gbbs::obs {

namespace detail {

// Relaxed atomic max (CAS loop; at most a few iterations under contention,
// and the common case — own slot — never loops).
inline void store_max(std::atomic<std::uint64_t>& target, std::uint64_t v) {
  std::uint64_t cur = target.load(std::memory_order_relaxed);
  while (v > cur &&
         !target.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace detail

// Monotone event counter, sharded per worker slot. add() is one relaxed
// fetch_add on the caller's own cache line; value() sums the cells.
class counter {
 public:
  counter() : num_cells_(parlib::max_worker_slots()),
              cells_(new cell[num_cells_]) {}

  counter(const counter&) = delete;
  counter& operator=(const counter&) = delete;

  void add(std::uint64_t d = 1) {
    cells_[parlib::worker_slot()].v.fetch_add(d, std::memory_order_relaxed);
  }

  std::uint64_t value() const {
    std::uint64_t sum = 0;
    for (std::size_t i = 0; i < num_cells_; ++i) {
      sum += cells_[i].v.load(std::memory_order_relaxed);
    }
    return sum;
  }

 private:
  struct alignas(64) cell {
    std::atomic<std::uint64_t> v{0};
  };
  std::size_t num_cells_;
  std::unique_ptr<cell[]> cells_;
};

// Last-writer-wins instantaneous value (occupancy, sizes, config knobs).
class gauge {
 public:
  void set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

// Lock-free duration histogram, sharded per worker slot (see file header
// for the bucket layout). Values are recorded in seconds and stored as
// nanosecond buckets.
class histogram {
 public:
  static constexpr int kSubBits = 3;  // 8 linear sub-buckets per octave
  static constexpr std::size_t kSubBuckets = std::size_t{1} << kSubBits;
  // Max index: octave 63 -> (63 - kSubBits + 1) * 8 + 7.
  static constexpr std::size_t kBuckets = (64 - kSubBits + 1) * kSubBuckets;

  histogram() : num_slots_(parlib::max_worker_slots()),
                slots_(new std::atomic<cells*>[num_slots_]) {
    for (std::size_t i = 0; i < num_slots_; ++i) {
      slots_[i].store(nullptr, std::memory_order_relaxed);
    }
  }

  histogram(const histogram&) = delete;
  histogram& operator=(const histogram&) = delete;

  ~histogram() {
    for (std::size_t i = 0; i < num_slots_; ++i) {
      delete slots_[i].load(std::memory_order_relaxed);
    }
  }

  void record_s(double seconds) {
    if (seconds < 0) seconds = 0;
    record_ns(static_cast<std::uint64_t>(seconds * 1e9));
  }

  void record_ns(std::uint64_t ns) {
    cells& c = my_cells();
    c.bucket[bucket_index(ns)].fetch_add(1, std::memory_order_relaxed);
    c.count.fetch_add(1, std::memory_order_relaxed);
    c.sum_ns.fetch_add(ns, std::memory_order_relaxed);
    detail::store_max(c.max_ns, ns);
  }

  // Cross-slot (or cross-histogram) aggregation target; summaries are
  // computed from one of these so multiple histograms registered under
  // one name can be folded together before estimating quantiles.
  struct aggregation {
    std::uint64_t bucket[kBuckets] = {};
    std::uint64_t count = 0;
    std::uint64_t sum_ns = 0;
    std::uint64_t max_ns = 0;
  };

  struct summary {
    std::uint64_t count = 0;
    double sum_s = 0;
    double max_s = 0;
    double p50_s = 0;
    double p90_s = 0;
    double p99_s = 0;
  };

  // Fold this histogram's cells into `agg`. Safe concurrently with
  // record_s; a racing record may or may not be included (each cell field
  // is read once, relaxed).
  void accumulate(aggregation& agg) const {
    for (std::size_t s = 0; s < num_slots_; ++s) {
      const cells* c = slots_[s].load(std::memory_order_acquire);
      if (c == nullptr) continue;
      for (std::size_t b = 0; b < kBuckets; ++b) {
        agg.bucket[b] += c->bucket[b].load(std::memory_order_relaxed);
      }
      agg.count += c->count.load(std::memory_order_relaxed);
      agg.sum_ns += c->sum_ns.load(std::memory_order_relaxed);
      const std::uint64_t mx = c->max_ns.load(std::memory_order_relaxed);
      if (mx > agg.max_ns) agg.max_ns = mx;
    }
  }

  static summary summarize(const aggregation& agg) {
    summary s;
    s.count = agg.count;
    if (agg.count == 0) return s;
    s.sum_s = static_cast<double>(agg.sum_ns) / 1e9;
    s.max_s = static_cast<double>(agg.max_ns) / 1e9;
    s.p50_s = quantile(agg, 0.50);
    s.p90_s = quantile(agg, 0.90);
    s.p99_s = quantile(agg, 0.99);
    return s;
  }

  summary read() const {
    aggregation agg;
    accumulate(agg);
    return summarize(agg);
  }

  std::uint64_t count() const {
    std::uint64_t total = 0;
    for (std::size_t s = 0; s < num_slots_; ++s) {
      const cells* c = slots_[s].load(std::memory_order_acquire);
      if (c != nullptr) total += c->count.load(std::memory_order_relaxed);
    }
    return total;
  }

  // Fold another histogram's current contents into this one's cells (used
  // by the registry to preserve a detaching engine's stats). Records from
  // the calling thread's slot; not atomic with respect to concurrent
  // writers on `other`.
  void merge_from(const histogram& other) {
    aggregation agg;
    other.accumulate(agg);
    if (agg.count == 0) return;
    cells& c = my_cells();
    for (std::size_t b = 0; b < kBuckets; ++b) {
      if (agg.bucket[b] != 0) {
        c.bucket[b].fetch_add(agg.bucket[b], std::memory_order_relaxed);
      }
    }
    c.count.fetch_add(agg.count, std::memory_order_relaxed);
    c.sum_ns.fetch_add(agg.sum_ns, std::memory_order_relaxed);
    detail::store_max(c.max_ns, agg.max_ns);
  }

  static std::size_t bucket_index(std::uint64_t ns) {
    if (ns < kSubBuckets) return static_cast<std::size_t>(ns);
    const int e = std::bit_width(ns) - 1;  // ns in [2^e, 2^(e+1)), e >= 3
    const std::size_t sub = static_cast<std::size_t>(
        (ns >> (e - kSubBits)) - kSubBuckets);
    return static_cast<std::size_t>(e - kSubBits + 1) * kSubBuckets + sub;
  }

 private:
  struct cells {
    std::atomic<std::uint64_t> bucket[kBuckets] = {};
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum_ns{0};
    std::atomic<std::uint64_t> max_ns{0};
  };

  cells& my_cells() {
    const std::size_t slot = parlib::worker_slot();
    cells* c = slots_[slot].load(std::memory_order_acquire);
    if (c == nullptr) {
      auto* fresh = new cells();
      cells* expected = nullptr;
      if (slots_[slot].compare_exchange_strong(expected, fresh,
                                               std::memory_order_acq_rel)) {
        c = fresh;
      } else {
        delete fresh;  // another thread on the shared overflow slot won
        c = expected;
      }
    }
    return *c;
  }

  // Bucket bounds: inverse of bucket_index.
  static void bucket_bounds(std::size_t idx, std::uint64_t* lo,
                            std::uint64_t* hi) {
    if (idx < kSubBuckets) {
      *lo = idx;
      *hi = idx + 1;
      return;
    }
    const std::size_t block = idx / kSubBuckets;  // >= 1
    const std::size_t sub = idx % kSubBuckets;
    const int e = static_cast<int>(block) + kSubBits - 1;
    const std::uint64_t width = std::uint64_t{1} << (e - kSubBits);
    *lo = (std::uint64_t{1} << e) + sub * width;
    *hi = *lo + width;
  }

  // Quantile by rank walk over the aggregated buckets, linearly
  // interpolated within the landing bucket (the same interpolation
  // obs::percentile applies to raw samples, at bucket granularity).
  static double quantile(const aggregation& agg, double q) {
    const double rank =
        q * static_cast<double>(agg.count > 0 ? agg.count - 1 : 0);
    std::uint64_t seen = 0;
    for (std::size_t b = 0; b < kBuckets; ++b) {
      const std::uint64_t in_bucket = agg.bucket[b];
      if (in_bucket == 0) continue;
      if (static_cast<double>(seen + in_bucket) > rank) {
        std::uint64_t lo, hi;
        bucket_bounds(b, &lo, &hi);
        const double frac =
            (rank - static_cast<double>(seen)) /
            static_cast<double>(in_bucket);
        const double ns = static_cast<double>(lo) +
                          frac * static_cast<double>(hi - lo);
        return ns / 1e9;
      }
      seen += in_bucket;
    }
    return static_cast<double>(agg.max_ns) / 1e9;
  }

  std::size_t num_slots_;
  std::unique_ptr<std::atomic<cells*>[]> slots_;
};

}  // namespace gbbs::obs
