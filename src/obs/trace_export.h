// Chrome trace_event / Perfetto JSON export of the flight recorder.
//
// Renders a recorder snapshot as the classic {"traceEvents": [...]}
// document loadable in https://ui.perfetto.dev or chrome://tracing:
//
//  * one track (tid) per worker slot, named via "M" metadata events;
//  * span_begin/span_end -> "B"/"E" duration events (stage name from the
//    intern table, trace id in args) — the flame chart;
//  * scheduler events -> thread-scoped "i" instants; a fork that was
//    stolen additionally draws an "s"->"f" flow arrow from the forking
//    thread to the thief (paired by job key in timestamp order, with a
//    fresh synthetic flow id per pairing — job keys are stack addresses
//    and repeat); the stolen job's run is a "B"/"E" pair on the thief;
//  * flow_begin/flow_end -> "s"/"f" arrows for request hand-offs (submit
//    -> reader dequeue), id = the request's trace id;
//  * retained slow-query exemplars re-render under a second pid with one
//    track per exemplar, so the slowest requests read as their own
//    mini flame charts even after the live rings wrapped past them.
//
// Timestamps are recorder ticks calibrated to µs at export time.
#pragma once

#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "obs/exemplar.h"
#include "obs/flight_recorder.h"

namespace gbbs::obs {

namespace trace_export_internal {

inline std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) >= 0x20) {
      out += c;
    }
  }
  return out;
}

// Render one event (shared by the live timeline and exemplar tracks).
// `flow_ids` pairs sched_fork -> sched_steal arrows; null disables them
// (exemplar tracks re-render only their own request's events, so a flow
// partner may be absent).
inline void append_event(std::string& out, const flight_recorder& rec,
                         const recorded_event& ev, int pid, std::uint64_t tid,
                         double npt,
                         std::map<std::uint64_t, std::uint64_t>* flow_ids,
                         std::uint64_t* next_flow_id) {
  char buf[384];
  const double ts = rec.ticks_to_us(ev.ts_ticks, npt);
  const unsigned long long trace_id =
      static_cast<unsigned long long>(ev.trace_id);
  switch (ev.type) {
    case event_type::span_begin:
      std::snprintf(buf, sizeof(buf),
                    ",\n{\"ph\": \"B\", \"pid\": %d, \"tid\": %llu, "
                    "\"ts\": %.3f, \"name\": \"%s\", \"cat\": \"stage\", "
                    "\"args\": {\"trace_id\": %llu}}",
                    pid, static_cast<unsigned long long>(tid), ts,
                    json_escape(rec.intern_name(ev.arg_a)).c_str(), trace_id);
      out += buf;
      break;
    case event_type::span_end:
      std::snprintf(buf, sizeof(buf),
                    ",\n{\"ph\": \"E\", \"pid\": %d, \"tid\": %llu, "
                    "\"ts\": %.3f}",
                    pid, static_cast<unsigned long long>(tid), ts);
      out += buf;
      break;
    case event_type::instant:
      std::snprintf(buf, sizeof(buf),
                    ",\n{\"ph\": \"i\", \"pid\": %d, \"tid\": %llu, "
                    "\"ts\": %.3f, \"name\": \"%s\", \"s\": \"t\", "
                    "\"cat\": \"mark\", \"args\": {\"trace_id\": %llu}}",
                    pid, static_cast<unsigned long long>(tid), ts,
                    json_escape(rec.intern_name(ev.arg_a)).c_str(), trace_id);
      out += buf;
      break;
    case event_type::flow_begin:
    case event_type::flow_end:
      std::snprintf(
          buf, sizeof(buf),
          ",\n{\"ph\": \"%s\", %s\"pid\": %d, \"tid\": %llu, \"ts\": %.3f, "
          "\"name\": \"request\", \"cat\": \"flow\", \"id\": %llu}",
          ev.type == event_type::flow_begin ? "s" : "f",
          ev.type == event_type::flow_begin ? "" : "\"bp\": \"e\", ", pid,
          static_cast<unsigned long long>(tid), ts,
          static_cast<unsigned long long>(ev.arg_b));
      out += buf;
      break;
    case event_type::sched_fork:
    case event_type::sched_steal:
    case event_type::sched_run_begin:
    case event_type::sched_run_end:
    case event_type::sched_inline: {
      if (ev.type == event_type::sched_run_begin) {
        std::snprintf(buf, sizeof(buf),
                      ",\n{\"ph\": \"B\", \"pid\": %d, \"tid\": %llu, "
                      "\"ts\": %.3f, \"name\": \"stolen job\", "
                      "\"cat\": \"sched\", \"args\": {\"trace_id\": %llu}}",
                      pid, static_cast<unsigned long long>(tid), ts,
                      trace_id);
        out += buf;
      } else if (ev.type == event_type::sched_run_end) {
        std::snprintf(buf, sizeof(buf),
                      ",\n{\"ph\": \"E\", \"pid\": %d, \"tid\": %llu, "
                      "\"ts\": %.3f}",
                      pid, static_cast<unsigned long long>(tid), ts);
        out += buf;
      } else {
        std::snprintf(buf, sizeof(buf),
                      ",\n{\"ph\": \"i\", \"pid\": %d, \"tid\": %llu, "
                      "\"ts\": %.3f, \"name\": \"%s\", \"s\": \"t\", "
                      "\"cat\": \"sched\", \"args\": {\"trace_id\": %llu}}",
                      pid, static_cast<unsigned long long>(tid), ts,
                      event_type_name(ev.type), trace_id);
        out += buf;
      }
      if (flow_ids != nullptr) {
        if (ev.type == event_type::sched_fork) {
          (*flow_ids)[ev.arg_b] = (*next_flow_id)++;
          std::snprintf(buf, sizeof(buf),
                        ",\n{\"ph\": \"s\", \"pid\": %d, \"tid\": %llu, "
                        "\"ts\": %.3f, \"name\": \"steal\", "
                        "\"cat\": \"sched_flow\", \"id\": %llu}",
                        pid, static_cast<unsigned long long>(tid), ts,
                        static_cast<unsigned long long>((*flow_ids)[ev.arg_b]));
          out += buf;
        } else if (ev.type == event_type::sched_steal) {
          auto it = flow_ids->find(ev.arg_b);
          if (it != flow_ids->end()) {
            std::snprintf(
                buf, sizeof(buf),
                ",\n{\"ph\": \"f\", \"bp\": \"e\", \"pid\": %d, "
                "\"tid\": %llu, \"ts\": %.3f, \"name\": \"steal\", "
                "\"cat\": \"sched_flow\", \"id\": %llu}",
                pid, static_cast<unsigned long long>(tid), ts,
                static_cast<unsigned long long>(it->second));
            out += buf;
            flow_ids->erase(it);
          }
        }
      }
      break;
    }
    case event_type::none:
      break;
  }
}

inline void append_thread_name(std::string& out, int pid, std::uint64_t tid,
                               const std::string& name, bool first) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "%s{\"ph\": \"M\", \"pid\": %d, \"tid\": %llu, "
                "\"name\": \"thread_name\", \"args\": {\"name\": \"%s\"}}",
                first ? "\n" : ",\n", pid,
                static_cast<unsigned long long>(tid),
                json_escape(name).c_str());
  out += buf;
}

}  // namespace trace_export_internal

// Render the current recorder contents (plus retained exemplars) as a
// Chrome-trace JSON document.
inline std::string chrome_trace_json() {
  using trace_export_internal::append_event;
  using trace_export_internal::append_thread_name;
  const flight_recorder& rec = flight_recorder::global();
  const double npt = rec.ns_per_tick();
  const std::vector<recorded_event> events = rec.snapshot();
  auto& sched = parlib::scheduler::instance();
  const std::size_t overflow_slot = sched.max_slots();

  std::string out = "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";

  // Thread-name metadata for every slot that recorded something.
  std::vector<bool> slot_seen(parlib::max_worker_slots(), false);
  for (const recorded_event& ev : events) {
    if (ev.slot < slot_seen.size()) slot_seen[ev.slot] = true;
  }
  bool first = true;
  for (std::size_t s = 0; s < slot_seen.size(); ++s) {
    if (!slot_seen[s]) continue;
    char name[64];
    if (s == overflow_slot) {
      std::snprintf(name, sizeof(name), "unregistered (overflow slot)");
    } else if (s < sched.num_workers()) {
      std::snprintf(name, sizeof(name), "worker %zu", s);
    } else {
      std::snprintf(name, sizeof(name), "external %zu", s);
    }
    append_thread_name(out, 1, s, name, first);
    first = false;
  }
  if (first) {
    // Empty recorder: still emit one metadata entry so the document's
    // traceEvents array is valid, non-degenerate JSON.
    append_thread_name(out, 1, 0, "worker 0", true);
  }

  // Live timeline (pid 1), in timestamp order; fork->steal flows paired
  // globally across slots.
  std::map<std::uint64_t, std::uint64_t> flow_ids;
  std::uint64_t next_flow_id = 1u << 20;  // clear of trace-id flow ids
  for (const recorded_event& ev : events) {
    append_event(out, rec, ev, 1, ev.slot, npt, &flow_ids, &next_flow_id);
  }

  // Exemplar tracks (pid 2): slowest requests, one track each.
  const auto exemplars = exemplar_store::global().snapshot();
  if (!exemplars.empty()) {
    append_thread_name(out, 2, 0, "slow-query exemplars", false);
    std::uint64_t track = 1;
    for (const auto& ex : exemplars) {
      char name[128];
      std::snprintf(name, sizeof(name), "trace %llu: %s (%.3f ms)",
                    static_cast<unsigned long long>(ex.trace_id),
                    ex.label.c_str(), ex.latency_s * 1e3);
      append_thread_name(out, 2, track, name, false);
      for (const recorded_event& ev : ex.timeline) {
        append_event(out, rec, ev, 2, track, npt, nullptr, nullptr);
      }
      ++track;
    }
  }

  out += "\n]}\n";
  return out;
}

// Write chrome_trace_json() to `path` (tmp + rename; false on IO error).
inline bool write_chrome_trace(const std::string& path) {
  const std::string doc = chrome_trace_json();
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
  std::fclose(f);
  return ok && std::rename(tmp.c_str(), path.c_str()) == 0;
}

}  // namespace gbbs::obs
