// Pipeline trace spans: RAII timers that record a stage's duration into a
// registry-owned histogram named "span.<stage>".
//
// Stage names are a *stable contract* (dashboards and the CI-archived
// metrics JSON key on them — see README "Observability"):
//   ingest.normalize        raw batch -> sorted, deduped, mirrored batch
//   ingest.apply            delta-overlay merge of a normalized batch
//   ingest.connectivity     incremental connectivity + link tracking
//   ingest.overlay_refresh  overlay-index distill + seqlock publish
//   ingest.publish          version publish into the snapshot store
// Sharded-ingest stages (sharded_ingest.h; the coordinator emits
// normalize/split/publish, each shard worker emits apply/refresh on its
// own thread under the batch's trace id):
//   ingest.shard.split      normalized batch -> per-shard sub-batches
//   ingest.shard.apply      one shard's delta-overlay merge of its slice
//   ingest.shard.refresh    one shard's overlay-index distill + publish
//   ingest.barrier.merge    per-shard connectivity deltas -> global view
//                           at the composite-publish barrier
// Query-side stages (queue wait -> view selection -> execute) are
// per-kind and live under "serve.query.*", attached by the query engine.
// Result-cache stages/events (result_cache.h; counters live under
// "serve.cache.{hits,misses,invalidations,entries}"):
//   serve.cache.lookup      cache probe ahead of view selection; the
//                           paired serve.cache.hit / serve.cache.miss
//                           instants mark the outcome on the timeline
//
// Spans nest: a thread-local depth tracks containment (purely
// observational — children are not linked to parents; each stage
// histogram stands alone). Cost per span: one steady_clock read at open,
// one at close, plus a sharded histogram record — cheap enough for
// per-batch and per-query granularity, not meant for per-edge loops.
//
// Spans opened on a stage_ref (stage_named) additionally write
// span_begin/span_end events into the flight recorder, tagged with the
// thread's current trace id — the per-request timeline view of the same
// stages (see flight_recorder.h / trace_export.h).
#pragma once

#include <chrono>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/registry.h"

namespace gbbs::obs {

// Resolve (get-or-create) the histogram for a stage name. One mutex-guarded
// map lookup — call sites on hot paths cache the reference:
//   static obs::histogram& h = obs::stage("ingest.apply");
inline histogram& stage(const char* name) {
  return registry::global().get_histogram(std::string("span.") + name);
}

// A stage resolved for *both* sinks: the aggregate histogram and the
// flight recorder's interned name id. Call sites cache it once:
//   static const obs::stage_ref s = obs::stage_named("ingest.apply");
//   obs::trace_span span(s);
// A span opened on a stage_ref additionally emits span_begin/span_end
// events into the per-request timeline (tagged with the thread's current
// trace id), on top of the histogram record.
struct stage_ref {
  histogram* hist;
  std::uint32_t name_id;
};

inline stage_ref stage_named(const char* name) {
  return stage_ref{&stage(name), flight_recorder::global().intern(name)};
}

// One-off timeline marker (no duration), e.g. a publish decision.
inline void trace_instant(const stage_ref& s) {
  flight_recorder::global().emit(event_type::instant, s.name_id);
}

class trace_span {
 public:
  explicit trace_span(histogram& h)
      : hist_(&h), start_(std::chrono::steady_clock::now()) {
    ++depth_ref();
  }
  explicit trace_span(const char* stage_name)
      : trace_span(stage(stage_name)) {}
  explicit trace_span(const stage_ref& s) : trace_span(*s.hist) {
    name_id_ = s.name_id;
    flight_recorder::global().emit(event_type::span_begin, name_id_);
  }

  trace_span(const trace_span&) = delete;
  trace_span& operator=(const trace_span&) = delete;

  ~trace_span() {
    --depth_ref();
    hist_->record_s(elapsed_s());
    if (name_id_ != 0) {
      flight_recorder::global().emit(event_type::span_end, name_id_);
    }
  }

  double elapsed_s() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

  // Current nesting depth of open spans on this thread (0 outside any).
  static int depth() { return depth_ref(); }

 private:
  static int& depth_ref() {
    thread_local int depth = 0;
    return depth;
  }

  histogram* hist_;
  std::chrono::steady_clock::time_point start_;
  std::uint32_t name_id_ = 0;  // nonzero: emit span events to the recorder
};

}  // namespace gbbs::obs
