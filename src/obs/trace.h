// Pipeline trace spans: RAII timers that record a stage's duration into a
// registry-owned histogram named "span.<stage>".
//
// Stage names are a *stable contract* (dashboards and the CI-archived
// metrics JSON key on them — see README "Observability"):
//   ingest.normalize        raw batch -> sorted, deduped, mirrored batch
//   ingest.apply            delta-overlay merge of a normalized batch
//   ingest.connectivity     incremental connectivity + link tracking
//   ingest.overlay_refresh  overlay-index distill + seqlock publish
//   ingest.publish          version publish into the snapshot store
// Query-side stages (queue wait -> view selection -> execute) are
// per-kind and live under "serve.query.*", attached by the query engine.
//
// Spans nest: a thread-local depth tracks containment (purely
// observational — children are not linked to parents; each stage
// histogram stands alone). Cost per span: one steady_clock read at open,
// one at close, plus a sharded histogram record — cheap enough for
// per-batch and per-query granularity, not meant for per-edge loops.
#pragma once

#include <chrono>

#include "obs/metrics.h"
#include "obs/registry.h"

namespace gbbs::obs {

// Resolve (get-or-create) the histogram for a stage name. One mutex-guarded
// map lookup — call sites on hot paths cache the reference:
//   static obs::histogram& h = obs::stage("ingest.apply");
inline histogram& stage(const char* name) {
  return registry::global().get_histogram(std::string("span.") + name);
}

class trace_span {
 public:
  explicit trace_span(histogram& h)
      : hist_(&h), start_(std::chrono::steady_clock::now()) {
    ++depth_ref();
  }
  explicit trace_span(const char* stage_name)
      : trace_span(stage(stage_name)) {}

  trace_span(const trace_span&) = delete;
  trace_span& operator=(const trace_span&) = delete;

  ~trace_span() {
    --depth_ref();
    hist_->record_s(elapsed_s());
  }

  double elapsed_s() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

  // Current nesting depth of open spans on this thread (0 outside any).
  static int depth() { return depth_ref(); }

 private:
  static int& depth_ref() {
    thread_local int depth = 0;
    return depth;
  }

  histogram* hist_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace gbbs::obs
