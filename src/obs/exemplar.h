// Tail-sampled slow-query exemplars: a bounded store of full per-request
// event timelines for the slowest requests seen.
//
// Aggregate histograms say the p99 is 40 ms; an exemplar says *this*
// query spent 38 ms queued behind a publish, with the flight-recorder
// timeline to prove it. The query engine calls maybe_capture() after
// computing a request's latency; when the latency crosses the configured
// threshold (-slow-trace-ms) the request's events are pulled out of the
// flight recorder and retained if they rank among the slowest K — so the
// worst requests always arrive with their own flame chart, no matter how
// rare they are (classic tail-based sampling: the decision is made at
// request *end*, when the latency is known).
//
// Capture is mutex-guarded and scans the recorder's rings — fine, because
// it only runs for over-threshold requests (rare by construction). The
// store surfaces in three places: the metrics JSON ("slow_query_exemplars"
// section), the tools' at-exit report, and the Perfetto export (exemplar
// timelines re-emitted on their own track).
//
// Caveat: the recorder's rings are bounded, so a request whose events were
// already overwritten captures a partial (or empty) timeline — the
// exemplar still records trace id, label, and latency.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

#include "obs/flight_recorder.h"
#include "obs/registry.h"

namespace gbbs::obs {

class exemplar_store {
 public:
  // Slowest-K bound: small on purpose — exemplars are for eyeballs, the
  // histograms carry the distribution.
  static constexpr std::size_t kMaxExemplars = 8;
  // Per-exemplar timeline bound (a steal-storm request can touch every
  // ring); the JSON notes how many events were beyond the cap.
  static constexpr std::size_t kMaxTimelineEvents = 512;

  struct exemplar {
    std::uint64_t trace_id = 0;
    std::string label;  // e.g. query kind, or "ingest"
    double latency_s = 0;
    std::vector<recorded_event> timeline;  // ts-ordered, possibly truncated
    std::uint64_t timeline_truncated = 0;  // events dropped by the cap
  };

  // The process-wide store. Leaked (like the recorder); installs the
  // metrics-JSON section callback once.
  static exemplar_store& global() {
    static exemplar_store* e = [] {
      auto* store = new exemplar_store();
      registry::global().add_callback([](metrics_snapshot& s) {
        s.add_counter("trace.exemplars_captured",
                      global().captured_count());
        if (global().threshold_s() >= 0) {
          s.add_section("slow_query_exemplars", global().to_json());
        }
      });
      return store;
    }();
    return *e;
  }

  // Latency threshold for capture; negative disables (the default — the
  // tools enable it via -slow-trace-ms).
  void set_threshold_s(double t) {
    std::lock_guard<std::mutex> lk(mutex_);
    threshold_s_ = t;
  }
  double threshold_s() const {
    std::lock_guard<std::mutex> lk(mutex_);
    return threshold_s_;
  }

  // Called at request end with the measured latency. Captures the
  // request's timeline iff the threshold is enabled, met, and the latency
  // ranks in the current slowest K. Returns whether it was retained.
  bool maybe_capture(std::uint64_t trace_id, const std::string& label,
                     double latency_s) {
    {
      std::lock_guard<std::mutex> lk(mutex_);
      if (threshold_s_ < 0 || latency_s < threshold_s_) return false;
      if (exemplars_.size() >= kMaxExemplars &&
          latency_s <= exemplars_.back().latency_s) {
        return false;  // full, and not slower than the fastest retained
      }
    }
    // Pull the timeline outside the lock (the recorder scan is the
    // expensive part and is itself thread-safe).
    std::vector<recorded_event> timeline =
        flight_recorder::global().snapshot_trace(trace_id);
    exemplar ex;
    ex.trace_id = trace_id;
    ex.label = label;
    ex.latency_s = latency_s;
    if (timeline.size() > kMaxTimelineEvents) {
      ex.timeline_truncated = timeline.size() - kMaxTimelineEvents;
      timeline.resize(kMaxTimelineEvents);
    }
    ex.timeline = std::move(timeline);

    std::lock_guard<std::mutex> lk(mutex_);
    if (threshold_s_ < 0 || latency_s < threshold_s_) return false;
    if (exemplars_.size() >= kMaxExemplars &&
        latency_s <= exemplars_.back().latency_s) {
      return false;  // re-check: the bar may have moved while we scanned
    }
    ++captured_;
    exemplars_.push_back(std::move(ex));
    std::sort(exemplars_.begin(), exemplars_.end(),
              [](const exemplar& a, const exemplar& b) {
                return a.latency_s > b.latency_s;
              });
    if (exemplars_.size() > kMaxExemplars) exemplars_.resize(kMaxExemplars);
    return true;
  }

  // Requests ever retained (monotone, counts later-evicted ones too).
  std::uint64_t captured_count() const {
    std::lock_guard<std::mutex> lk(mutex_);
    return captured_;
  }

  std::vector<exemplar> snapshot() const {
    std::lock_guard<std::mutex> lk(mutex_);
    return exemplars_;
  }

  void clear() {
    std::lock_guard<std::mutex> lk(mutex_);
    exemplars_.clear();
    captured_ = 0;
  }

  // ---- rendering -----------------------------------------------------------

  // JSON for the metrics-snapshot section: threshold, retained exemplars
  // slowest-first, each with its (tick-calibrated, µs) timeline.
  std::string to_json() const {
    const auto& rec = flight_recorder::global();
    const double npt = rec.ns_per_tick();
    const std::vector<exemplar> exs = snapshot();
    const double thr = threshold_s();
    char buf[256];
    std::string out = "{";
    std::snprintf(buf, sizeof(buf),
                  "\"threshold_ms\": %.6g, \"retained\": %zu, "
                  "\"exemplars\": [",
                  thr * 1e3, exs.size());
    out += buf;
    for (std::size_t i = 0; i < exs.size(); ++i) {
      const exemplar& ex = exs[i];
      out += i == 0 ? "\n    {" : ",\n    {";
      std::snprintf(buf, sizeof(buf),
                    "\"trace_id\": %llu, \"label\": \"%s\", "
                    "\"latency_ms\": %.6g, \"truncated_events\": %llu, "
                    "\"events\": [",
                    static_cast<unsigned long long>(ex.trace_id),
                    ex.label.c_str(), ex.latency_s * 1e3,
                    static_cast<unsigned long long>(ex.timeline_truncated));
      out += buf;
      for (std::size_t j = 0; j < ex.timeline.size(); ++j) {
        const recorded_event& ev = ex.timeline[j];
        std::snprintf(
            buf, sizeof(buf),
            "%s{\"t_us\": %.3f, \"type\": \"%s\", \"name\": \"%s\", "
            "\"slot\": %u}",
            j == 0 ? "" : ", ", rec.ticks_to_us(ev.ts_ticks, npt),
            event_type_name(ev.type), rec.intern_name(ev.arg_a).c_str(),
            ev.slot);
        out += buf;
      }
      out += "]}";
    }
    out += exs.empty() ? "]}" : "\n  ]}";
    return out;
  }

  // Human-readable at-exit report for the tools: one line per exemplar
  // plus a compact stage breakdown of its timeline.
  std::string report() const {
    const auto& rec = flight_recorder::global();
    const double npt = rec.ns_per_tick();
    const std::vector<exemplar> exs = snapshot();
    if (exs.empty()) return std::string();
    char buf[256];
    std::string out;
    std::snprintf(buf, sizeof(buf),
                  "slow-query exemplars (threshold %.3g ms, slowest %zu):\n",
                  threshold_s() * 1e3, exs.size());
    out += buf;
    for (const exemplar& ex : exs) {
      std::snprintf(buf, sizeof(buf),
                    "  trace %llu  %-20s %9.3f ms  %zu events%s\n",
                    static_cast<unsigned long long>(ex.trace_id),
                    ex.label.c_str(), ex.latency_s * 1e3,
                    ex.timeline.size(),
                    ex.timeline_truncated != 0 ? " (truncated)" : "");
      out += buf;
      // Stage breakdown: pair span_begin/span_end per name id within the
      // exemplar's own timeline (same thread emits both ends, and spans
      // of one request do not self-overlap per name).
      std::vector<std::pair<std::uint32_t, std::uint64_t>> open;
      std::vector<std::pair<std::string, double>> stages;
      std::size_t steals = 0;
      for (const recorded_event& ev : ex.timeline) {
        if (ev.type == event_type::sched_steal) ++steals;
        if (ev.type == event_type::span_begin) {
          open.emplace_back(ev.arg_a, ev.ts_ticks);
        } else if (ev.type == event_type::span_end) {
          for (std::size_t k = open.size(); k-- > 0;) {
            if (open[k].first != ev.arg_a) continue;
            const double ms =
                static_cast<double>(ev.ts_ticks - open[k].second) * npt / 1e6;
            stages.emplace_back(rec.intern_name(ev.arg_a), ms);
            open.erase(open.begin() + static_cast<std::ptrdiff_t>(k));
            break;
          }
        }
      }
      for (const auto& [name, ms] : stages) {
        std::snprintf(buf, sizeof(buf), "      %-28s %9.3f ms\n",
                      name.c_str(), ms);
        out += buf;
      }
      if (steals != 0) {
        std::snprintf(buf, sizeof(buf), "      (%zu steals)\n", steals);
        out += buf;
      }
    }
    return out;
  }

  exemplar_store(const exemplar_store&) = delete;
  exemplar_store& operator=(const exemplar_store&) = delete;

 private:
  exemplar_store() = default;

  mutable std::mutex mutex_;
  double threshold_s_ = -1;  // disabled until a tool opts in
  std::uint64_t captured_ = 0;
  std::vector<exemplar> exemplars_;  // sorted slowest-first, <= kMaxExemplars
};

}  // namespace gbbs::obs
