// Shared percentile / sample-summary helpers — the single implementation
// behind bench_common.h's latency tables, the obs histogram's bucket
// quantiles, and the query engine's per-kind stats. Before the obs layer
// these interpolation routines were duplicated (bench_common.h's
// percentile() vs query_engine.h's private interpolate()); everything now
// funnels through here.
#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

namespace gbbs::obs {

// Linearly interpolated percentile (q in [0, 1]) of an ascending-sorted
// sample (numpy-style; for {1,2,3,4} at q=0.5 this is 2.5, not the
// nearest-rank 2).
inline double percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0;
  const double rank = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

struct sample_stats {
  std::size_t count = 0;
  double mean = 0;
  double p50 = 0;
  double p90 = 0;
  double p99 = 0;
  double max = 0;
};

inline sample_stats summarize(std::vector<double> samples) {
  sample_stats s;
  s.count = samples.size();
  if (samples.empty()) return s;
  std::sort(samples.begin(), samples.end());
  double sum = 0;
  for (double x : samples) sum += x;
  s.mean = sum / static_cast<double>(samples.size());
  s.p50 = percentile(samples, 0.50);
  s.p90 = percentile(samples, 0.90);
  s.p99 = percentile(samples, 0.99);
  s.max = samples.back();
  return s;
}

}  // namespace gbbs::obs
