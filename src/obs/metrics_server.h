// Live introspection exports for the serving tools:
//
//   * metrics_server — a trivial TCP listener answering any HTTP request
//     with the registry's Prometheus-style text exposition, so a running
//     run_serve / run_stream can be inspected without restarting:
//       curl localhost:<port>/metrics
//     One accept thread, one request per connection, no keep-alive, no
//     routing — deliberately minimal (an observability endpoint must not
//     compete with the serving threads it observes).
//
//   * metrics_json_writer — periodic + at-exit JSON snapshots of the
//     registry to a file (run_serve -metrics-json), written atomically
//     (tmp + rename) so CI validation and dashboards never read a torn
//     document.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "obs/registry.h"

namespace gbbs::obs {

class metrics_server {
 public:
  // Binds 0.0.0.0:<port> (port 0 = kernel-assigned, see port()). On
  // failure ok() is false and the server is inert.
  explicit metrics_server(std::uint16_t port) {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) return;
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_ANY);
    addr.sin_port = htons(port);
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(listen_fd_, 16) != 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
      return;
    }
    socklen_t len = sizeof(addr);
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                      &len) == 0) {
      port_ = ntohs(addr.sin_port);
    }
    thread_ = std::thread([this] { accept_loop(); });
  }

  metrics_server(const metrics_server&) = delete;
  metrics_server& operator=(const metrics_server&) = delete;

  ~metrics_server() {
    stop_.store(true, std::memory_order_release);
    if (thread_.joinable()) thread_.join();
    if (listen_fd_ >= 0) ::close(listen_fd_);
  }

  bool ok() const { return listen_fd_ >= 0; }
  std::uint16_t port() const { return port_; }

 private:
  void accept_loop() {
    while (!stop_.load(std::memory_order_acquire)) {
      pollfd pfd{listen_fd_, POLLIN, 0};
      const int r = ::poll(&pfd, 1, /*timeout_ms=*/200);
      if (r <= 0 || (pfd.revents & POLLIN) == 0) continue;
      const int conn = ::accept(listen_fd_, nullptr, nullptr);
      if (conn < 0) continue;
      serve_one(conn);
      ::close(conn);
    }
  }

  static void serve_one(int conn) {
    // Drain (and ignore) the request line/headers; any request gets the
    // full exposition.
    char req[1024];
    (void)::recv(conn, req, sizeof(req), 0);
    const std::string body =
        registry::to_prometheus(registry::global().read());
    char header[128];
    std::snprintf(header, sizeof(header),
                  "HTTP/1.0 200 OK\r\n"
                  "Content-Type: text/plain; version=0.0.4\r\n"
                  "Content-Length: %zu\r\n\r\n",
                  body.size());
    send_all(conn, header, std::strlen(header));
    send_all(conn, body.data(), body.size());
  }

  static void send_all(int fd, const char* data, std::size_t len) {
    std::size_t sent = 0;
    while (sent < len) {
      const ssize_t w = ::send(fd, data + sent, len - sent, MSG_NOSIGNAL);
      if (w <= 0) return;
      sent += static_cast<std::size_t>(w);
    }
  }

  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

class metrics_json_writer {
 public:
  // Writes a snapshot every `period_s` seconds (0 = at-exit only) and a
  // final one on destruction.
  explicit metrics_json_writer(std::string path, double period_s = 5.0)
      : path_(std::move(path)), period_s_(period_s) {
    if (period_s_ > 0) {
      thread_ = std::thread([this] { loop(); });
    }
  }

  metrics_json_writer(const metrics_json_writer&) = delete;
  metrics_json_writer& operator=(const metrics_json_writer&) = delete;

  ~metrics_json_writer() {
    {
      std::lock_guard<std::mutex> lk(mutex_);
      stop_ = true;
    }
    cv_.notify_all();
    if (thread_.joinable()) thread_.join();
    write_now();  // the at-exit snapshot
  }

  bool write_now() const { return registry::global().write_json(path_); }
  const std::string& path() const { return path_; }

 private:
  void loop() {
    std::unique_lock<std::mutex> lk(mutex_);
    for (;;) {
      cv_.wait_for(lk, std::chrono::duration<double>(period_s_),
                   [this] { return stop_; });
      if (stop_) return;
      lk.unlock();
      write_now();
      lk.lock();
    }
  }

  std::string path_;
  double period_s_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace gbbs::obs
