// Live introspection exports for the serving tools:
//
//   * metrics_server — a trivial TCP listener answering any HTTP request
//     with the registry's Prometheus-style text exposition, so a running
//     run_serve / run_stream can be inspected without restarting:
//       curl localhost:<port>/metrics
//     One accept thread, one request per connection, no keep-alive, no
//     routing — deliberately minimal (an observability endpoint must not
//     compete with the serving threads it observes). Minimal is not
//     fragile, though: the request read is bounded in bytes and time, a
//     peer that disconnects mid-response costs an EPIPE (MSG_NOSIGNAL),
//     not a SIGPIPE, and partial writes/EINTR are retried.
//
//   * metrics_json_writer — periodic + at-exit JSON snapshots of the
//     registry to a file (run_serve -metrics-json), written atomically
//     (tmp + rename) so CI validation and dashboards never read a torn
//     document.
#pragma once

#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "obs/registry.h"

namespace gbbs::obs {

class metrics_server {
 public:
  // Binds 0.0.0.0:<port> (port 0 = kernel-assigned, see port()). On
  // failure ok() is false and the server is inert.
  explicit metrics_server(std::uint16_t port) {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) return;
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_ANY);
    addr.sin_port = htons(port);
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(listen_fd_, 16) != 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
      return;
    }
    socklen_t len = sizeof(addr);
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                      &len) == 0) {
      port_ = ntohs(addr.sin_port);
    }
    thread_ = std::thread([this] { accept_loop(); });
  }

  metrics_server(const metrics_server&) = delete;
  metrics_server& operator=(const metrics_server&) = delete;

  ~metrics_server() {
    stop_.store(true, std::memory_order_release);
    if (thread_.joinable()) thread_.join();
    if (listen_fd_ >= 0) ::close(listen_fd_);
  }

  bool ok() const { return listen_fd_ >= 0; }
  std::uint16_t port() const { return port_; }

 private:
  void accept_loop() {
    while (!stop_.load(std::memory_order_acquire)) {
      pollfd pfd{listen_fd_, POLLIN, 0};
      const int r = ::poll(&pfd, 1, /*timeout_ms=*/200);
      if (r <= 0 || (pfd.revents & POLLIN) == 0) continue;
      const int conn = ::accept(listen_fd_, nullptr, nullptr);
      if (conn < 0) continue;
      serve_one(conn);
      ::close(conn);
    }
  }

  static void serve_one(int conn) {
    // Drain (and ignore) the request line/headers; any request gets the
    // full exposition. The read is bounded twice over: at most
    // kMaxRequestBytes consumed, at most kRequestTimeoutMs waited — a
    // client that connects and sends nothing (or trickles an endless
    // header) cannot wedge the accept loop. We stop at the header
    // terminator; a huge request simply has its tail ignored.
    char req[1024];
    std::size_t got = 0;
    int waited_ms = 0;
    while (got < kMaxRequestBytes && waited_ms < kRequestTimeoutMs) {
      pollfd pfd{conn, POLLIN, 0};
      const int pr = ::poll(&pfd, 1, kRequestPollMs);
      if (pr < 0) {
        if (errno == EINTR) continue;
        return;  // poll failure: drop the connection, no response
      }
      if (pr == 0) {
        waited_ms += kRequestPollMs;
        continue;
      }
      const ssize_t r = ::recv(conn, req, sizeof(req), 0);
      if (r < 0) {
        if (errno == EINTR) continue;
        return;  // client reset mid-request
      }
      if (r == 0) break;  // orderly shutdown; answer what we got
      got += static_cast<std::size_t>(r);
      // End of headers (we never read a body): stop draining.
      if (std::memchr(req, '\n', static_cast<std::size_t>(r)) != nullptr) {
        break;
      }
    }
    const std::string body =
        registry::to_prometheus(registry::global().read());
    char header[128];
    std::snprintf(header, sizeof(header),
                  "HTTP/1.0 200 OK\r\n"
                  "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
                  "Content-Length: %zu\r\n"
                  "Connection: close\r\n\r\n",
                  body.size());
    if (send_all(conn, header, std::strlen(header))) {
      send_all(conn, body.data(), body.size());
    }
    // Let the client see EOF after the full response rather than a RST
    // racing the last bytes.
    ::shutdown(conn, SHUT_WR);
  }

  // Loop over partial writes; MSG_NOSIGNAL turns a disconnected peer into
  // EPIPE instead of a process-killing SIGPIPE, EINTR retries, and any
  // other error (peer gone mid-response) abandons the write quietly.
  // Returns whether every byte was handed to the kernel.
  static bool send_all(int fd, const char* data, std::size_t len) {
    std::size_t sent = 0;
    while (sent < len) {
      const ssize_t w = ::send(fd, data + sent, len - sent, MSG_NOSIGNAL);
      if (w < 0 && errno == EINTR) continue;
      if (w <= 0) return false;
      sent += static_cast<std::size_t>(w);
    }
    return true;
  }

  static constexpr std::size_t kMaxRequestBytes = 8 * 1024;
  static constexpr int kRequestPollMs = 50;
  static constexpr int kRequestTimeoutMs = 1000;

  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

class metrics_json_writer {
 public:
  // Writes a snapshot every `period_s` seconds (0 = at-exit only) and a
  // final one on destruction.
  explicit metrics_json_writer(std::string path, double period_s = 5.0)
      : path_(std::move(path)), period_s_(period_s) {
    if (period_s_ > 0) {
      thread_ = std::thread([this] { loop(); });
    }
  }

  metrics_json_writer(const metrics_json_writer&) = delete;
  metrics_json_writer& operator=(const metrics_json_writer&) = delete;

  ~metrics_json_writer() {
    {
      std::lock_guard<std::mutex> lk(mutex_);
      stop_ = true;
    }
    cv_.notify_all();
    if (thread_.joinable()) thread_.join();
    write_now();  // the at-exit snapshot
  }

  bool write_now() const { return registry::global().write_json(path_); }
  const std::string& path() const { return path_; }

 private:
  void loop() {
    std::unique_lock<std::mutex> lk(mutex_);
    for (;;) {
      cv_.wait_for(lk, std::chrono::duration<double>(period_s_),
                   [this] { return stop_; });
      if (stop_) return;
      lk.unlock();
      write_now();
      lk.lock();
    }
  }

  std::string path_;
  double period_s_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace gbbs::obs
