// Named metric registry — the single source of truth the serving tools
// export. Three kinds of entries:
//
//   * owned metrics: get-or-create by name (counter / gauge / histogram),
//     stable references for the process lifetime. Stage-span histograms
//     (trace.h) and the ingest pipeline live here.
//   * attached metrics: a component that keeps per-instance stats (the
//     query engine's per-kind histograms) registers a pointer under a
//     name and gets an RAII handle; on detach the histogram's final
//     contents are folded into an owned histogram of the same name, so a
//     snapshot taken after the component dies still carries its totals.
//   * callbacks: bridges to external state read at snapshot time — the
//     parlib event counters (read through their seqlock-consistent
//     snapshot(), never field-by-field against a racing reset) and the
//     scheduler's steal/occupancy/participation internals.
//
// read() produces a consistent point-in-time snapshot under the registry
// mutex (metric *values* are still relaxed aggregates — consistent with
// respect to registration, detach-merge, and event-counter resets, not
// with respect to in-flight increments, which is the right trade for a
// monitoring path). to_json() / to_prometheus() render a snapshot for the
// -metrics-json file export and the live TCP endpoint respectively.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "parlib/counters.h"
#include "parlib/scheduler.h"

namespace gbbs::obs {

// Point-in-time view of every registered metric, sorted by name.
struct metrics_snapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, std::int64_t>> gauges;
  std::vector<std::pair<std::string, histogram::summary>> histograms;
  // Structured extras rendered verbatim into the JSON document as
  // top-level keys (the value must already be valid JSON). Used by
  // callback sources whose shape is richer than scalar metrics — e.g.
  // the slow-query exemplar store's per-request timelines. Omitted from
  // the Prometheus exposition (text format has no place for them).
  std::vector<std::pair<std::string, std::string>> sections;

  void add_counter(std::string name, std::uint64_t v) {
    counters.emplace_back(std::move(name), v);
  }
  void add_gauge(std::string name, std::int64_t v) {
    gauges.emplace_back(std::move(name), v);
  }
  void add_section(std::string name, std::string raw_json) {
    sections.emplace_back(std::move(name), std::move(raw_json));
  }
};

class registry {
 public:
  // RAII handle for an attached (externally owned) metric; detaches on
  // destruction, folding histogram contents into the registry (see file
  // header). Default-constructed handles are inert.
  class scoped_attach {
   public:
    scoped_attach() = default;
    scoped_attach(registry* r, std::uint64_t id) : reg_(r), id_(id) {}
    scoped_attach(scoped_attach&& o) noexcept
        : reg_(o.reg_), id_(o.id_) {
      o.reg_ = nullptr;
    }
    scoped_attach& operator=(scoped_attach&& o) noexcept {
      release();
      reg_ = o.reg_;
      id_ = o.id_;
      o.reg_ = nullptr;
      return *this;
    }
    scoped_attach(const scoped_attach&) = delete;
    scoped_attach& operator=(const scoped_attach&) = delete;
    ~scoped_attach() { release(); }

    void release() {
      if (reg_ != nullptr) {
        reg_->detach(id_);
        reg_ = nullptr;
      }
    }

   private:
    registry* reg_ = nullptr;
    std::uint64_t id_ = 0;
  };

  // The process-wide registry, with the parlib runtime bridges installed
  // (event counters + scheduler internals).
  static registry& global() {
    static registry* r = [] {
      auto* reg = new registry();
      install_runtime_bridge(*reg);
      return reg;
    }();
    return *r;
  }

  // Get-or-create; references are stable for the registry's lifetime.
  counter& get_counter(const std::string& name) {
    std::lock_guard<std::mutex> lk(mutex_);
    auto& slot = counters_[name];
    if (slot == nullptr) slot = std::make_unique<counter>();
    return *slot;
  }
  gauge& get_gauge(const std::string& name) {
    std::lock_guard<std::mutex> lk(mutex_);
    auto& slot = gauges_[name];
    if (slot == nullptr) slot = std::make_unique<gauge>();
    return *slot;
  }
  histogram& get_histogram(const std::string& name) {
    std::lock_guard<std::mutex> lk(mutex_);
    auto& slot = histograms_[name];
    if (slot == nullptr) slot = std::make_unique<histogram>();
    return *slot;
  }

  // Attach an externally owned histogram under `name`. Multiple
  // histograms may share a name (e.g. overlapping engines); snapshots
  // fold them together. The histogram must outlive the returned handle.
  scoped_attach attach_histogram(std::string name, const histogram* h) {
    std::lock_guard<std::mutex> lk(mutex_);
    const std::uint64_t id = next_attach_id_++;
    attached_.push_back({std::move(name), h, id});
    return scoped_attach(this, id);
  }

  // Snapshot-time bridge to external state; `fn` appends entries. Lives
  // for the registry's lifetime (intended for process-global sources).
  void add_callback(std::function<void(metrics_snapshot&)> fn) {
    std::lock_guard<std::mutex> lk(mutex_);
    callbacks_.push_back(std::move(fn));
  }

  metrics_snapshot read() const {
    metrics_snapshot s;
    std::lock_guard<std::mutex> lk(mutex_);
    for (const auto& [name, c] : counters_) {
      s.counters.emplace_back(name, c->value());
    }
    for (const auto& [name, g] : gauges_) {
      s.gauges.emplace_back(name, g->value());
    }
    // Owned and attached histograms aggregate bucket-level by name, so
    // quantiles of a shared name are over the union of samples.
    std::map<std::string, histogram::aggregation> aggs;
    for (const auto& [name, h] : histograms_) h->accumulate(aggs[name]);
    for (const auto& a : attached_) a.hist->accumulate(aggs[a.name]);
    for (const auto& [name, agg] : aggs) {
      s.histograms.emplace_back(name, histogram::summarize(agg));
    }
    for (const auto& fn : callbacks_) fn(s);
    std::sort(s.counters.begin(), s.counters.end());
    std::sort(s.gauges.begin(), s.gauges.end());
    std::sort(s.histograms.begin(), s.histograms.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    std::sort(s.sections.begin(), s.sections.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    return s;
  }

  // ---- render --------------------------------------------------------------

  static std::string to_json(const metrics_snapshot& s) {
    std::string out = "{\n  \"counters\": {";
    bool first = true;
    for (const auto& [name, v] : s.counters) {
      out += first ? "\n" : ",\n";
      out += "    \"" + name + "\": " + std::to_string(v);
      first = false;
    }
    out += "\n  },\n  \"gauges\": {";
    first = true;
    for (const auto& [name, v] : s.gauges) {
      out += first ? "\n" : ",\n";
      out += "    \"" + name + "\": " + std::to_string(v);
      first = false;
    }
    out += "\n  },\n  \"histograms\": {";
    first = true;
    char buf[256];
    for (const auto& [name, h] : s.histograms) {
      out += first ? "\n" : ",\n";
      std::snprintf(buf, sizeof(buf),
                    "    \"%s\": {\"count\": %llu, \"sum_s\": %.9g, "
                    "\"max_s\": %.9g, \"p50_s\": %.9g, \"p90_s\": %.9g, "
                    "\"p99_s\": %.9g}",
                    name.c_str(), static_cast<unsigned long long>(h.count),
                    h.sum_s, h.max_s, h.p50_s, h.p90_s, h.p99_s);
      out += buf;
      first = false;
    }
    out += "\n  }";
    for (const auto& [name, raw] : s.sections) {
      out += ",\n  \"" + name + "\": " + raw;
    }
    out += "\n}\n";
    return out;
  }

  // Prometheus text exposition (version 0.0.4): counters and gauges as-is,
  // histograms as summaries (quantile series + _sum + _count).
  static std::string to_prometheus(const metrics_snapshot& s) {
    std::string out;
    char buf[256];
    for (const auto& [name, v] : s.counters) {
      const std::string m = prom_name(name);
      out += "# TYPE " + m + " counter\n";
      out += m + " " + std::to_string(v) + "\n";
    }
    for (const auto& [name, v] : s.gauges) {
      const std::string m = prom_name(name);
      out += "# TYPE " + m + " gauge\n";
      out += m + " " + std::to_string(v) + "\n";
    }
    for (const auto& [name, h] : s.histograms) {
      const std::string m = prom_name(name);
      out += "# TYPE " + m + " summary\n";
      std::snprintf(buf, sizeof(buf),
                    "%s{quantile=\"0.5\"} %.9g\n"
                    "%s{quantile=\"0.9\"} %.9g\n"
                    "%s{quantile=\"0.99\"} %.9g\n"
                    "%s_sum %.9g\n%s_count %llu\n",
                    m.c_str(), h.p50_s, m.c_str(), h.p90_s, m.c_str(),
                    h.p99_s, m.c_str(), h.sum_s, m.c_str(),
                    static_cast<unsigned long long>(h.count));
      out += buf;
    }
    return out;
  }

  // Write a snapshot to `path` as JSON (tmp file + rename, so a reader
  // never sees a torn document). Returns false on IO failure.
  bool write_json(const std::string& path) const {
    const std::string doc = to_json(read());
    const std::string tmp = path + ".tmp";
    std::FILE* f = std::fopen(tmp.c_str(), "w");
    if (f == nullptr) return false;
    const bool ok = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
    std::fclose(f);
    return ok && std::rename(tmp.c_str(), path.c_str()) == 0;
  }

 private:
  struct attached_entry {
    std::string name;
    const histogram* hist;
    std::uint64_t id;
  };

  void detach(std::uint64_t id) {
    std::lock_guard<std::mutex> lk(mutex_);
    for (std::size_t i = 0; i < attached_.size(); ++i) {
      if (attached_[i].id != id) continue;
      // Preserve the departing component's totals under the same name.
      auto& slot = histograms_[attached_[i].name];
      if (slot == nullptr) slot = std::make_unique<histogram>();
      slot->merge_from(*attached_[i].hist);
      attached_.erase(attached_.begin() + static_cast<std::ptrdiff_t>(i));
      return;
    }
  }

  static std::string prom_name(const std::string& name) {
    std::string out = "gbbs_";
    for (char c : name) {
      const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '_';
      out += ok ? c : '_';
    }
    return out;
  }

  // The parlib runtime bridge: event counters through their consistent
  // snapshot() (the reset torn-read fix — one seqlock-stable read for all
  // fields instead of racing field-by-field), scheduler internals live.
  static void install_runtime_bridge(registry& reg) {
    reg.add_callback([](metrics_snapshot& s) {
      const auto ec = parlib::event_counters::global().snapshot();
      s.add_counter("edgemap.slots_written", ec.edgemap_slots_written);
      s.add_counter("edgemap.edges_examined", ec.edgemap_edges_examined);
      s.add_counter("parlib.fetch_add_ops", ec.fetch_add_ops);
      s.add_counter("parlib.histogram_calls", ec.histogram_calls);
      s.add_counter("serve.merged_csr_materializations",
                    ec.merged_csr_materializations);
      s.add_counter("sched.external_registrations",
                    ec.sched_external_registrations);
      s.add_counter("sched.unregistered_pardos",
                    ec.sched_unregistered_pardos);
      s.add_counter("sched.reader_forks", ec.sched_reader_forks);
      s.add_counter("sched.inline_fallbacks", ec.sched_inline_fallbacks);
      auto& sched = parlib::scheduler::instance();
      s.add_counter("sched.steals", sched.total_steals());
      s.add_gauge("sched.num_workers",
                  static_cast<std::int64_t>(sched.num_workers()));
      s.add_gauge("sched.active_workers",
                  static_cast<std::int64_t>(sched.num_active_workers()));
      s.add_gauge("sched.deque_occupancy",
                  static_cast<std::int64_t>(sched.total_deque_occupancy()));
    });
  }

  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<counter>> counters_;
  std::map<std::string, std::unique_ptr<gauge>> gauges_;
  std::map<std::string, std::unique_ptr<histogram>> histograms_;
  std::vector<attached_entry> attached_;
  std::vector<std::function<void(metrics_snapshot&)>> callbacks_;
  std::uint64_t next_attach_id_ = 1;
};

}  // namespace gbbs::obs
