// Quickstart: build a graph from an edge list, run BFS and connectivity,
// and inspect the results — the minimal end-to-end tour of the public API.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "algorithms/bfs.h"
#include "algorithms/connectivity.h"
#include "graph/graph_builder.h"

int main() {
  // A small undirected graph: a 5-cycle plus an isolated 2-path.
  //   0-1-2-3-4-0    5-6
  std::vector<gbbs::edge<gbbs::empty_weight>> edges = {
      {0, 1, {}}, {1, 2, {}}, {2, 3, {}}, {3, 4, {}}, {4, 0, {}}, {5, 6, {}}};
  auto g = gbbs::build_symmetric_graph<gbbs::empty_weight>(7, edges);
  std::printf("graph: n=%u, m=%llu (directed edge slots)\n",
              g.num_vertices(),
              static_cast<unsigned long long>(g.num_edges()));

  // BFS from vertex 0: hop distances (kInfDist = unreachable).
  auto dist = gbbs::bfs(g, /*src=*/0);
  for (gbbs::vertex_id v = 0; v < g.num_vertices(); ++v) {
    if (dist[v] == gbbs::kInfDist) {
      std::printf("dist(0 -> %u) = unreachable\n", v);
    } else {
      std::printf("dist(0 -> %u) = %u\n", v, dist[v]);
    }
  }

  // Connected components: a label per vertex.
  auto cc = gbbs::connectivity(g);
  std::printf("components: 0 and 5 %s in the same component\n",
              cc[0] == cc[5] ? "ARE" : "are NOT");
  std::printf("components: 0 and 3 %s in the same component\n",
              cc[0] == cc[3] ? "ARE" : "are NOT");
  return 0;
}
