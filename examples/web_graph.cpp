// Web-graph analysis (the paper's Hyperlink/ClueWeb workload, scaled down):
// on a synthetic crawl (directed R-MAT), compute the structure measures the
// paper reports for the crawls — SCC structure (the "bow-tie"), reachability
// via BFS, single-source betweenness on the symmetrized graph, and an
// approximate set cover over page neighborhoods (the paper's "minimum
// number of pages whose neighborhoods cover the whole graph"). Also
// demonstrates the parallel-byte compressed representation.
//
//   $ ./examples/web_graph [scale]
#include <cstdio>
#include <cstdlib>

#include "algorithms/betweenness.h"
#include "algorithms/bfs.h"
#include "algorithms/scc.h"
#include "algorithms/set_cover.h"
#include "algorithms/stats.h"
#include "graph/compression/compressed_graph.h"
#include "graph/generators.h"

int main(int argc, char** argv) {
  const std::uint32_t scale = argc > 1 ? std::atoi(argv[1]) : 14;
  const std::size_t m = std::size_t{12} << scale;
  std::printf("building synthetic web crawl: 2^%u pages, %zu links...\n",
              scale, m);
  auto dir = gbbs::rmat_directed(scale, m, /*seed=*/77);
  auto sym = gbbs::rmat_symmetric(scale, m, /*seed=*/77);

  // Bow-tie structure: SCCs of the directed crawl.
  auto s = gbbs::scc(dir);
  auto [num_scc, largest_scc] = gbbs::count_and_largest(s.labels);
  std::printf("bow-tie: %zu SCCs, giant SCC = %zu pages (%.1f%%), "
              "%zu multi-search phases\n",
              num_scc, largest_scc, 100.0 * largest_scc / dir.num_vertices(),
              s.num_phases);

  // Reachability from a seed page (directed BFS).
  auto dist = gbbs::bfs(dir, 0);
  std::size_t reached = 0;
  std::uint32_t depth = 0;
  for (auto d : dist) {
    if (d != gbbs::kInfDist) {
      ++reached;
      depth = std::max(depth, d);
    }
  }
  std::printf("crawl frontier from page 0: %zu pages reachable, "
              "max depth %u\n",
              reached, depth);

  // Influence proxy: betweenness contributions on the symmetrized graph.
  auto dep = gbbs::betweenness(sym, 0);
  double max_dep = 0;
  gbbs::vertex_id argmax = 0;
  for (gbbs::vertex_id v = 0; v < sym.num_vertices(); ++v) {
    if (dep[v] > max_dep) {
      max_dep = dep[v];
      argmax = v;
    }
  }
  std::printf("most between page w.r.t. seed 0: page %u (dependency %.1f)\n",
              argmax, max_dep);

  // Approximate set cover: pages whose out-neighborhoods cover all pages.
  const gbbs::vertex_id n = sym.num_vertices();
  auto flat = sym.edges();
  std::vector<gbbs::edge<gbbs::empty_weight>> cov_edges(flat.size() + n);
  for (std::size_t i = 0; i < flat.size(); ++i) {
    cov_edges[i] = {flat[i].u, static_cast<gbbs::vertex_id>(n + flat[i].v), {}};
  }
  for (gbbs::vertex_id v = 0; v < n; ++v) {
    cov_edges[flat.size() + v] = {v, static_cast<gbbs::vertex_id>(n + v), {}};
  }
  auto cover_g =
      gbbs::build_symmetric_graph<gbbs::empty_weight>(2 * n, cov_edges);
  auto cover = gbbs::set_cover(cover_g, n);
  std::printf("set cover: %zu page neighborhoods cover all %u pages "
              "(%zu rounds)\n",
              cover.cover.size(), n, cover.num_rounds);

  // Compressed representation (what makes the 1TB-scale runs possible).
  auto cg = gbbs::compressed_graph<gbbs::empty_weight>::compress(sym);
  std::printf("compression: CSR %.2f bytes/edge -> parallel-byte %.2f "
              "bytes/edge\n",
              static_cast<double>(sym.size_in_bytes()) / sym.num_edges(),
              static_cast<double>(cg.size_in_bytes()) / sym.num_edges());
  auto dist_c = gbbs::bfs(cg, 0);
  std::printf("BFS on the compressed graph visits %zu pages (same result)\n",
              static_cast<std::size_t>(std::count_if(
                  dist_c.begin(), dist_c.end(),
                  [](std::uint32_t d) { return d != gbbs::kInfDist; })));
  return 0;
}
