// graph_tool: a small CLI exercising generation, serialization and the
// statistics block — generate a graph, write it in the Ligra
// AdjacencyGraph text format and the binary format, read it back, and
// print its statistics.
//
//   $ ./examples/graph_tool rmat 12 /tmp/g        # scale-12 R-MAT
//   $ ./examples/graph_tool torus 16 /tmp/t       # 16^3 torus
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "algorithms/stats.h"
#include "graph/generators.h"
#include "graph/graph_io.h"

int main(int argc, char** argv) {
  const std::string kind = argc > 1 ? argv[1] : "rmat";
  const std::uint32_t size = argc > 2 ? std::atoi(argv[2]) : 12;
  const std::string prefix = argc > 3 ? argv[3] : "/tmp/gbbs_graph";

  gbbs::graph<gbbs::empty_weight> g;
  if (kind == "rmat") {
    g = gbbs::rmat_symmetric(size, std::size_t{16} << size, 1);
  } else if (kind == "torus") {
    g = gbbs::torus3d_symmetric(size);
  } else if (kind == "grid") {
    g = gbbs::build_symmetric_graph<gbbs::empty_weight>(
        size * size, gbbs::grid2d_edges(size, size));
  } else {
    std::fprintf(stderr, "usage: %s {rmat|torus|grid} <size> [prefix]\n",
                 argv[0]);
    return 1;
  }
  std::printf("generated %s: n=%u, m=%llu\n", kind.c_str(), g.num_vertices(),
              static_cast<unsigned long long>(g.num_edges()));

  const std::string text_path = prefix + ".adj";
  const std::string bin_path = prefix + ".bin";
  gbbs::write_adjacency_graph(text_path, g);
  gbbs::write_binary_graph(bin_path, g);
  std::printf("wrote %s (Ligra text) and %s (binary)\n", text_path.c_str(),
              bin_path.c_str());

  auto g2 = gbbs::read_binary_graph(bin_path, /*symmetric=*/true);
  std::printf("re-read binary: n=%u, m=%llu\n", g2.num_vertices(),
              static_cast<unsigned long long>(g2.num_edges()));

  auto s = gbbs::compute_statistics(g2);
  std::printf("effective diameter*      %u\n", s.effective_diameter);
  std::printf("connected components     %zu (largest %zu)\n", s.num_cc,
              s.largest_cc);
  std::printf("biconnected components   %zu\n", s.num_bicc);
  std::printf("triangles                %llu\n",
              static_cast<unsigned long long>(s.num_triangles));
  std::printf("colors (LF / LLF)        %u / %u\n", s.colors_lf,
              s.colors_llf);
  std::printf("MIS / matching sizes     %zu / %zu\n", s.mis_size,
              s.matching_size);
  std::printf("kmax (degeneracy)        %u\n", s.kmax);
  std::printf("rho (peeling rounds)     %zu\n", s.rho);
  return 0;
}
