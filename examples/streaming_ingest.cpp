// Streaming ingest: feed edge batches into a dynamic graph, track
// connectivity incrementally, take a static snapshot mid-stream to run a
// (static) algorithm, and compact when the delta overlay grows.
//
//   $ ./examples/example_streaming_ingest
#include <cstdio>

#include "algorithms/bfs.h"
#include "dynamic/dynamic_graph.h"
#include "dynamic/incremental_connectivity.h"

using gbbs::empty_weight;
using gbbs::vertex_id;
using gbbs::dynamic::update;
using gbbs::dynamic::update_op;

static update<empty_weight> ins(vertex_id u, vertex_id v) {
  return {u, v, {}, update_op::insert};
}
static update<empty_weight> ers(vertex_id u, vertex_id v) {
  return {u, v, {}, update_op::erase};
}

int main() {
  // Start with 6 isolated vertices; edges arrive in batches.
  gbbs::dynamic::dynamic_unweighted_graph g(6);
  gbbs::dynamic::incremental_connectivity cc(6);

  // Batch 1: a path 0-1-2 and an edge 4-5.
  auto b1 = g.apply({ins(0, 1), ins(1, 2), ins(4, 5)});
  cc.apply(b1, g);
  std::printf("after batch 1: m=%llu, %zu components\n",
              static_cast<unsigned long long>(g.num_edges()),
              cc.num_components());

  // Batch 2: connect the two groups and grow the graph to 8 vertices.
  auto b2 = g.apply({ins(2, 4), ins(5, 7)});
  cc.apply(b2, g);
  std::printf("after batch 2: n=%u, %zu components, 0~7 connected: %s\n",
              g.num_vertices(), cc.num_components(),
              cc.connected(0, 7) ? "yes" : "no");

  // Mid-stream snapshot: a plain static CSR any algorithm can consume.
  auto snap = g.snapshot();
  auto dist = gbbs::bfs(snap, /*src=*/0);
  std::printf("snapshot BFS: dist(0 -> 7) = %u\n", dist[7]);

  // Batch 3: an erase splits a component (connectivity rebuilds).
  auto b3 = g.apply({ers(2, 4)});
  cc.apply(b3, g);
  std::printf("after erase:  %zu components, 0~7 connected: %s\n",
              cc.num_components(), cc.connected(0, 7) ? "yes" : "no");

  // Fold the deltas back into a fresh base CSR.
  g.compact();
  std::printf("compacted: base m=%llu, pending deltas=%zu\n",
              static_cast<unsigned long long>(g.base().num_edges()),
              g.delta_size());
  return 0;
}
