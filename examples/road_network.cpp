// Road-network routing (the paper's high-diameter regime, exercised with
// its 3D-torus family): integer-weight shortest paths with the bucketed
// wBFS vs Bellman-Ford, a minimum spanning forest (e.g., lowest-cost
// road-maintenance backbone), and a low-diameter decomposition (regional
// clustering).
//
//   $ ./examples/road_network [side]
#include <cstdio>
#include <cstdlib>
#include <unordered_set>

#include "algorithms/bellman_ford.h"
#include "algorithms/ldd.h"
#include "algorithms/msf.h"
#include "algorithms/wbfs.h"
#include "graph/generators.h"

int main(int argc, char** argv) {
  const gbbs::vertex_id side = argc > 1 ? std::atoi(argv[1]) : 24;
  std::printf("building %u^3 torus road network...\n", side);
  auto g = gbbs::torus3d_symmetric_weighted(side, /*seed=*/5);
  std::printf("built: n=%u intersections, m=%llu road segments\n",
              g.num_vertices(),
              static_cast<unsigned long long>(g.num_edges()));

  const gbbs::vertex_id depot = 0;
  auto sp = gbbs::wbfs(g, depot);
  std::uint64_t sum = 0;
  std::uint32_t far = 0;
  for (auto d : sp.dist) {
    sum += d;
    far = std::max(far, d);
  }
  std::printf("wBFS from depot: farthest intersection at cost %u, "
              "mean cost %.1f, %zu bucket rounds\n",
              far, static_cast<double>(sum) / g.num_vertices(),
              sp.num_rounds);

  auto bf = gbbs::bellman_ford(g, depot);
  bool agree = true;
  for (std::size_t v = 0; v < bf.size(); ++v) {
    if (bf[v] != static_cast<std::int64_t>(sp.dist[v])) agree = false;
  }
  std::printf("Bellman-Ford agrees with wBFS: %s\n", agree ? "yes" : "NO");

  auto forest = gbbs::msf(g);
  std::printf("maintenance backbone (MSF): %zu segments, total cost %llu "
              "(%zu filter steps)\n",
              forest.forest.size(),
              static_cast<unsigned long long>(forest.total_weight),
              forest.num_filter_steps);

  auto clusters = gbbs::ldd(g, /*beta=*/0.1);
  std::unordered_set<gbbs::vertex_id> distinct(clusters.begin(),
                                               clusters.end());
  const auto cut = gbbs::num_cut_edges(g, clusters);
  std::printf("regional clustering (LDD beta=0.1): %zu regions, %.2f%% of "
              "segments cross regions\n",
              distinct.size(), 100.0 * cut / g.num_edges());
  return 0;
}
