// Social-network analysis (the paper's motivating workload on LiveJournal /
// com-Orkut / Twitter): on a synthetic social graph (R-MAT), compute the
// community-detection and cohesion measures of the benchmark — connected
// components, k-core decomposition (degeneracy), triangle count (clustering
// signal), a maximal independent set, and a greedy coloring.
//
//   $ ./examples/social_network [scale]
#include <cstdio>
#include <cstdlib>
#include <map>

#include "algorithms/coloring.h"
#include "algorithms/connectivity.h"
#include "algorithms/kcore.h"
#include "algorithms/mis.h"
#include "algorithms/stats.h"
#include "algorithms/triangle.h"
#include "graph/generators.h"

int main(int argc, char** argv) {
  const std::uint32_t scale = argc > 1 ? std::atoi(argv[1]) : 14;
  const std::size_t m = std::size_t{16} << scale;
  std::printf("building R-MAT social graph: 2^%u vertices, %zu edges...\n",
              scale, m);
  auto g = gbbs::rmat_symmetric(scale, m, /*seed=*/2026);
  std::printf("built: n=%u, m=%llu\n", g.num_vertices(),
              static_cast<unsigned long long>(g.num_edges()));

  auto cc = gbbs::connectivity(g);
  auto [num_cc, largest_cc] = gbbs::count_and_largest(cc);
  std::printf("communities (weak): %zu components, giant component = %zu "
              "vertices (%.1f%%)\n",
              num_cc, largest_cc, 100.0 * largest_cc / g.num_vertices());

  auto kc = gbbs::kcore(g);
  std::printf("cohesion: degeneracy kmax = %u (peeled in rho = %zu rounds)\n",
              kc.max_core, kc.num_rounds);
  // Core-size profile: how many vertices survive to each core threshold.
  std::map<gbbs::vertex_id, std::size_t> core_hist;
  for (auto c : kc.coreness) core_hist[c]++;
  std::size_t above = 0;
  std::printf("core profile (k : vertices with coreness >= k):\n");
  int shown = 0;
  for (auto it = core_hist.rbegin(); it != core_hist.rend() && shown < 5;
       ++it, ++shown) {
    above += it->second;
    std::printf("  %6u : %zu\n", it->first, above);
  }

  const auto triangles = gbbs::triangle_count(g);
  std::printf("clustering: %llu triangles\n",
              static_cast<unsigned long long>(triangles));

  auto mis = gbbs::mis_rootset(g);
  std::size_t mis_size = 0;
  for (auto f : mis) mis_size += f;
  std::printf("independent set (e.g., non-conflicting ad slots): %zu "
              "vertices\n",
              mis_size);

  auto colors = gbbs::color_graph(g, gbbs::coloring_heuristic::llf);
  std::printf("coloring (LLF): %u colors\n", gbbs::num_colors(colors));
  return 0;
}
