// Approximate set cover: validity (full coverage), approximation quality
// vs the greedy oracle, and both priority modes.
#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "algorithms/set_cover.h"
#include "graph/generators.h"
#include "seq/reference.h"

namespace {

using gbbs::vertex_id;

gbbs::graph<gbbs::empty_weight> cover_instance(vertex_id sets,
                                               vertex_id elements,
                                               std::size_t avg_deg,
                                               std::uint64_t seed) {
  return gbbs::build_symmetric_graph<gbbs::empty_weight>(
      sets + elements,
      gbbs::bipartite_cover_edges(sets, elements, avg_deg, seed));
}

struct CoverCase {
  vertex_id sets, elements;
  std::size_t avg_deg;
  std::uint64_t seed;
};

class SetCoverSuite : public ::testing::TestWithParam<CoverCase> {};
INSTANTIATE_TEST_SUITE_P(
    Instances, SetCoverSuite,
    ::testing::Values(CoverCase{50, 200, 10, 1}, CoverCase{100, 1000, 20, 2},
                      CoverCase{500, 2000, 15, 3},
                      CoverCase{20, 50, 8, 4},
                      CoverCase{1000, 5000, 10, 5}));

TEST_P(SetCoverSuite, CoversAllCoverableElements) {
  const auto& p = GetParam();
  auto g = cover_instance(p.sets, p.elements, p.avg_deg, p.seed);
  auto res = gbbs::set_cover(g, p.sets);
  EXPECT_TRUE(gbbs::seq::covers_all(g, p.sets, res.cover));
}

TEST_P(SetCoverSuite, WithinLogFactorOfGreedy) {
  const auto& p = GetParam();
  auto g = cover_instance(p.sets, p.elements, p.avg_deg, p.seed);
  auto res = gbbs::set_cover(g, p.sets);
  auto greedy = gbbs::seq::greedy_set_cover(g, p.sets);
  ASSERT_FALSE(greedy.empty());
  // Greedy is itself an Hn-approximation; allow a generous constant-factor
  // gap between the parallel cover and greedy.
  const double hn = std::log(static_cast<double>(p.elements)) + 1.0;
  EXPECT_LE(static_cast<double>(res.cover.size()),
            (1.0 + hn) * greedy.size())
      << "ours=" << res.cover.size() << " greedy=" << greedy.size();
}

TEST_P(SetCoverSuite, StaticPrioritiesAlsoCover) {
  const auto& p = GetParam();
  auto g = cover_instance(p.sets, p.elements, p.avg_deg, p.seed);
  gbbs::set_cover_options o;
  o.regenerate_priorities = false;
  auto res = gbbs::set_cover(g, p.sets, o);
  EXPECT_TRUE(gbbs::seq::covers_all(g, p.sets, res.cover));
}

TEST(SetCover, SingleSetCoversEverything) {
  // One set covering all elements: cover = that set alone.
  gbbs::edge_list edges;
  for (vertex_id e = 1; e <= 50; ++e) edges.push_back({0, e, {}});
  auto g = gbbs::build_symmetric_graph<gbbs::empty_weight>(51, edges);
  auto res = gbbs::set_cover(g, 1);
  ASSERT_EQ(res.cover.size(), 1u);
  EXPECT_EQ(res.cover[0], 0u);
}

TEST(SetCover, DisjointSetsAllChosen) {
  // 10 sets, each covering 5 private elements: all must be chosen.
  gbbs::edge_list edges;
  for (vertex_id s = 0; s < 10; ++s) {
    for (vertex_id j = 0; j < 5; ++j) {
      edges.push_back({s, 10 + s * 5 + j, {}});
    }
  }
  auto g = gbbs::build_symmetric_graph<gbbs::empty_weight>(60, edges);
  auto res = gbbs::set_cover(g, 10);
  EXPECT_EQ(res.cover.size(), 10u);
}

TEST(SetCover, EmptySetsNeverChosen) {
  gbbs::edge_list edges;
  for (vertex_id e = 0; e < 20; ++e) edges.push_back({0, 5 + e, {}});
  // Sets 1..4 cover nothing.
  auto g = gbbs::build_symmetric_graph<gbbs::empty_weight>(25, edges);
  auto res = gbbs::set_cover(g, 5);
  ASSERT_EQ(res.cover.size(), 1u);
  EXPECT_EQ(res.cover[0], 0u);
  EXPECT_TRUE(gbbs::seq::covers_all(g, 5, res.cover));
}

TEST(SetCover, TorusNeighborhoodInstanceTerminates) {
  // The paper's instance family: elements are vertices, sets are vertex
  // neighborhoods. On tori the static-priority baseline exhibits its
  // pathology; both modes must still produce valid covers.
  auto torus = gbbs::torus3d_symmetric(6);
  const vertex_id n = torus.num_vertices();
  gbbs::edge_list edges;
  for (vertex_id v = 0; v < n; ++v) {
    for (vertex_id u : torus.out_neighbors(v)) {
      edges.push_back({v, n + u, {}});
    }
    edges.push_back({v, n + v, {}});  // closed neighborhood
  }
  auto g = gbbs::build_symmetric_graph<gbbs::empty_weight>(2 * n, edges);
  for (bool regen : {true, false}) {
    gbbs::set_cover_options o;
    o.regenerate_priorities = regen;
    auto res = gbbs::set_cover(g, n, o);
    ASSERT_TRUE(gbbs::seq::covers_all(g, n, res.cover)) << regen;
  }
}

TEST(SetCover, EpsilonVariantsAllCover) {
  auto g = cover_instance(200, 1500, 12, 9);
  for (double eps : {0.01, 0.1, 0.5}) {
    gbbs::set_cover_options o;
    o.epsilon = eps;
    auto res = gbbs::set_cover(g, 200, o);
    ASSERT_TRUE(gbbs::seq::covers_all(g, 200, res.cover)) << eps;
  }
}

}  // namespace
