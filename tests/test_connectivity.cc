// Connectivity vs the sequential oracle (partition equality), spanning
// forest validity, multiple betas and seeds.
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "algorithms/connectivity.h"
#include "algorithms/spanning_forest.h"
#include "graph/compression/compressed_graph.h"
#include "parlib/union_find.h"
#include "seq/reference.h"
#include "test_graphs.h"

namespace {

using gbbs::vertex_id;

// Two labelings describe the same partition iff the label-pair mapping is a
// bijection.
void expect_same_partition(const std::vector<vertex_id>& a,
                           const std::vector<vertex_id>& b) {
  ASSERT_EQ(a.size(), b.size());
  std::unordered_map<vertex_id, vertex_id> a2b, b2a;
  for (std::size_t v = 0; v < a.size(); ++v) {
    auto [ia, inserted_a] = a2b.try_emplace(a[v], b[v]);
    ASSERT_EQ(ia->second, b[v]) << "a-label " << a[v] << " split at " << v;
    auto [ib, inserted_b] = b2a.try_emplace(b[v], a[v]);
    ASSERT_EQ(ib->second, a[v]) << "b-label " << b[v] << " merged at " << v;
  }
}

class ConnectivitySuite : public ::testing::TestWithParam<std::string> {};
INSTANTIATE_TEST_SUITE_P(
    Graphs, ConnectivitySuite,
    ::testing::ValuesIn(gbbs::testing::symmetric_suite_names()));

TEST_P(ConnectivitySuite, MatchesOracle) {
  auto g = gbbs::testing::make_symmetric(GetParam());
  auto got = gbbs::connectivity(g);
  auto expected = gbbs::seq::connectivity(g);
  expect_same_partition(got, expected);
}

TEST_P(ConnectivitySuite, SeedsAndBetasAgree) {
  auto g = gbbs::testing::make_symmetric(GetParam());
  auto base = gbbs::connectivity(g, 0.2, parlib::random(1));
  for (double beta : {0.05, 0.5}) {
    for (std::uint64_t seed : {7ull, 31ull}) {
      auto other = gbbs::connectivity(g, beta, parlib::random(seed));
      expect_same_partition(base, other);
    }
  }
}

TEST(Connectivity, CompressedMatchesUncompressed) {
  auto g = gbbs::testing::make_symmetric("rmat");
  auto cg = gbbs::compressed_graph<gbbs::empty_weight>::compress(g);
  expect_same_partition(gbbs::connectivity(g), gbbs::connectivity(cg));
}

TEST(Connectivity, RepresentativesAreOnePerComponent) {
  auto g = gbbs::testing::two_components(150);
  auto labels = gbbs::connectivity(g);
  auto reps = gbbs::component_representatives(labels);
  EXPECT_EQ(reps.size(), 2u);
  EXPECT_NE(labels[reps[0]], labels[reps[1]]);
}

class SpanningForestSuite : public ::testing::TestWithParam<std::string> {};
INSTANTIATE_TEST_SUITE_P(
    Graphs, SpanningForestSuite,
    ::testing::ValuesIn(gbbs::testing::symmetric_suite_names()));

TEST_P(SpanningForestSuite, LddForestSpansComponentsAcyclically) {
  // The BFS-free spanning forest (Section 4's sketched improvement).
  auto g = gbbs::testing::make_symmetric(GetParam());
  auto edges = gbbs::spanning_forest_ldd(g);
  auto cc = gbbs::seq::connectivity(g);
  std::set<vertex_id> comps(cc.begin(), cc.end());
  ASSERT_EQ(edges.size(), g.num_vertices() - comps.size());
  parlib::union_find uf(g.num_vertices());
  for (const auto& [u, v] : edges) {
    auto nghs = g.out_neighbors(u);
    ASSERT_TRUE(std::binary_search(nghs.begin(), nghs.end(), v))
        << "(" << u << "," << v << ") not an edge of g";
    ASSERT_TRUE(uf.unite(u, v)) << "cycle at (" << u << "," << v << ")";
  }
  for (vertex_id v = 0; v < g.num_vertices(); ++v) {
    for (vertex_id u : g.out_neighbors(v)) {
      ASSERT_TRUE(uf.same_set(v, u));
    }
  }
}

TEST_P(SpanningForestSuite, ForestEdgesSpanComponentsAcyclically) {
  auto g = gbbs::testing::make_symmetric(GetParam());
  auto sf = gbbs::spanning_forest(g);
  auto edges = gbbs::forest_edges(sf.parents);

  // #forest edges = n - #components.
  auto cc = gbbs::seq::connectivity(g);
  std::set<vertex_id> comps(cc.begin(), cc.end());
  ASSERT_EQ(edges.size(), g.num_vertices() - comps.size());

  // Acyclic (union-find never sees a redundant edge) and edges are real.
  parlib::union_find uf(g.num_vertices());
  for (const auto& [u, p] : edges) {
    auto nghs = g.out_neighbors(u);
    ASSERT_TRUE(std::binary_search(nghs.begin(), nghs.end(), p));
    ASSERT_TRUE(uf.unite(u, p)) << "cycle at (" << u << "," << p << ")";
  }
  // The forest connects exactly the components of g.
  for (vertex_id v = 0; v < g.num_vertices(); ++v) {
    for (vertex_id u : g.out_neighbors(v)) {
      ASSERT_TRUE(uf.same_set(v, u));
    }
  }
}

}  // namespace
