// Tests for update-batch normalization: sorting, last-wins dedup,
// self-loop filtering, mirroring, and max_vertex tracking.
#include <vector>

#include <gtest/gtest.h>

#include "dynamic/update_batch.h"

namespace {

using gbbs::edge;
using gbbs::empty_weight;
using gbbs::vertex_id;
using gbbs::dynamic::make_batch;
using gbbs::dynamic::update;
using gbbs::dynamic::update_op;

using uw_update = update<empty_weight>;

uw_update ins(vertex_id u, vertex_id v) {
  return {u, v, {}, update_op::insert};
}
uw_update ers(vertex_id u, vertex_id v) {
  return {u, v, {}, update_op::erase};
}

TEST(UpdateBatch, EmptyStreamMakesEmptyBatch) {
  auto batch = make_batch<empty_weight>({});
  EXPECT_TRUE(batch.empty());
  EXPECT_EQ(batch.size(), 0u);
  EXPECT_EQ(batch.max_vertex, 0u);
  EXPECT_FALSE(batch.has_erases());
}

TEST(UpdateBatch, SortsByEndpointPair) {
  auto batch = make_batch<empty_weight>(
      {ins(2, 0), ins(0, 2), ins(1, 3), ins(0, 1)});
  ASSERT_EQ(batch.size(), 4u);
  for (std::size_t i = 1; i < batch.size(); ++i) {
    const auto& a = batch.updates[i - 1];
    const auto& b = batch.updates[i];
    EXPECT_TRUE(a.u < b.u || (a.u == b.u && a.v < b.v));
  }
  EXPECT_EQ(batch.max_vertex, 4u);
}

TEST(UpdateBatch, DropsSelfLoops) {
  auto batch =
      make_batch<empty_weight>({ins(0, 0), ins(1, 2), ers(3, 3)});
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch.updates[0].u, 1u);
  EXPECT_EQ(batch.updates[0].v, 2u);
}

TEST(UpdateBatch, LastUpdatePerEdgeWins) {
  // insert then erase -> erase; erase then insert -> insert.
  auto batch = make_batch<empty_weight>(
      {ins(0, 1), ers(0, 1), ers(2, 3), ins(2, 3)});
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch.updates[0].op, update_op::erase);
  EXPECT_EQ(batch.updates[1].op, update_op::insert);
  EXPECT_TRUE(batch.has_erases());
}

TEST(UpdateBatch, LastWeightWins) {
  using wu = update<std::uint32_t>;
  std::vector<wu> raw = {{0, 1, 5, update_op::insert},
                         {0, 1, 9, update_op::insert}};
  auto batch = make_batch(std::move(raw));
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch.updates[0].w, 9u);
}

TEST(UpdateBatch, MirrorAddsBothDirections) {
  auto batch = make_batch<empty_weight>({ins(0, 1)}, /*mirror=*/true);
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch.updates[0].u, 0u);
  EXPECT_EQ(batch.updates[0].v, 1u);
  EXPECT_EQ(batch.updates[1].u, 1u);
  EXPECT_EQ(batch.updates[1].v, 0u);
}

TEST(UpdateBatch, MirrorKeepsStreamOrderSemantics) {
  // A later erase (in either direction) overrides an earlier insert for
  // BOTH directions after mirroring.
  auto batch = make_batch<empty_weight>({ins(0, 1), ers(1, 0)},
                                        /*mirror=*/true);
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch.updates[0].op, update_op::erase);
  EXPECT_EQ(batch.updates[1].op, update_op::erase);
}

TEST(UpdateBatch, MaxVertexCoversAllEndpoints) {
  auto batch = make_batch<empty_weight>({ins(3, 1000), ins(2, 7)});
  EXPECT_EQ(batch.max_vertex, 1001u);
}

TEST(UpdateBatch, ConvenienceBuildersFromEdgeLists) {
  std::vector<edge<empty_weight>> edges = {{0, 1, {}}, {1, 2, {}}};
  auto inserts = gbbs::dynamic::insert_batch(edges);
  ASSERT_EQ(inserts.size(), 2u);
  EXPECT_FALSE(inserts.has_erases());
  auto erases = gbbs::dynamic::erase_batch(edges, /*mirror=*/true);
  ASSERT_EQ(erases.size(), 4u);
  EXPECT_TRUE(erases.has_erases());
}

TEST(UpdateBatch, LargeBatchNormalizesConsistently) {
  // Many duplicates of few edges; exactly one survivor per pair, the last.
  std::vector<uw_update> raw;
  for (int rep = 0; rep < 1000; ++rep) {
    for (vertex_id u = 0; u < 8; ++u) {
      for (vertex_id v = 0; v < 8; ++v) {
        raw.push_back(rep % 2 == 0 ? ins(u, v) : ers(u, v));
      }
    }
  }
  auto batch = make_batch(std::move(raw));
  ASSERT_EQ(batch.size(), 8u * 8u - 8u);  // all pairs minus self-loops
  for (const auto& e : batch.updates) {
    EXPECT_EQ(e.op, update_op::erase);  // rep 999 was odd
  }
}

}  // namespace
