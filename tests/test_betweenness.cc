// Betweenness centrality vs the sequential Brandes oracle.
#include <cmath>
#include <string>

#include <gtest/gtest.h>

#include "algorithms/betweenness.h"
#include "graph/compression/compressed_graph.h"
#include "seq/reference.h"
#include "test_graphs.h"

namespace {

using gbbs::vertex_id;

class BcSuite : public ::testing::TestWithParam<std::string> {};
INSTANTIATE_TEST_SUITE_P(
    Graphs, BcSuite,
    ::testing::ValuesIn(gbbs::testing::symmetric_suite_names()));

TEST_P(BcSuite, DependenciesMatchBrandes) {
  auto g = gbbs::testing::make_symmetric(GetParam());
  if (g.num_vertices() == 0) return;
  const vertex_id src = g.num_vertices() / 4;
  auto got = gbbs::betweenness(g, src);
  auto expected = gbbs::seq::betweenness(g, src);
  ASSERT_EQ(got.size(), expected.size());
  for (std::size_t v = 0; v < got.size(); ++v) {
    ASSERT_NEAR(got[v], expected[v],
                1e-6 * std::max(1.0, std::abs(expected[v])))
        << GetParam() << " v=" << v;
  }
}

TEST(Bc, StarCenterCollectsAllPairs) {
  // In a star with n leaves, all shortest paths between leaves pass the
  // center: dependency of the center from a leaf source is (n-2) * 1.
  const vertex_id n = 50;
  auto g = gbbs::build_symmetric_graph<gbbs::empty_weight>(
      n, gbbs::star_edges(n));
  auto dep = gbbs::betweenness(g, 1);  // a leaf
  EXPECT_DOUBLE_EQ(dep[0], static_cast<double>(n - 2));
  for (vertex_id v = 1; v < n; ++v) EXPECT_DOUBLE_EQ(dep[v], 0.0);
}

TEST(Bc, PathInteriorDependencies) {
  // Path 0-1-2-3-4 from source 0: delta[v] = #descendants beyond v.
  auto g = gbbs::build_symmetric_graph<gbbs::empty_weight>(
      5, gbbs::path_edges(5));
  auto dep = gbbs::betweenness(g, 0);
  EXPECT_DOUBLE_EQ(dep[1], 3.0);
  EXPECT_DOUBLE_EQ(dep[2], 2.0);
  EXPECT_DOUBLE_EQ(dep[3], 1.0);
  EXPECT_DOUBLE_EQ(dep[4], 0.0);
}

TEST(Bc, MultiplePathsSplitCredit) {
  // Square 0-1-3, 0-2-3: two shortest paths 0->3, each middle vertex gets
  // dependency 0.5.
  std::vector<gbbs::edge<gbbs::empty_weight>> edges = {
      {0, 1, {}}, {0, 2, {}}, {1, 3, {}}, {2, 3, {}}};
  auto g = gbbs::build_symmetric_graph<gbbs::empty_weight>(4, edges);
  auto dep = gbbs::betweenness(g, 0);
  EXPECT_DOUBLE_EQ(dep[1], 0.5);
  EXPECT_DOUBLE_EQ(dep[2], 0.5);
  EXPECT_DOUBLE_EQ(dep[3], 0.0);
}

TEST(Bc, CompressedMatchesUncompressed) {
  auto g = gbbs::testing::make_symmetric("rmat");
  auto cg = gbbs::compressed_graph<gbbs::empty_weight>::compress(g);
  auto a = gbbs::betweenness(g, 2);
  auto b = gbbs::betweenness(cg, 2);
  for (std::size_t v = 0; v < a.size(); ++v) {
    ASSERT_NEAR(a[v], b[v], 1e-9 * std::max(1.0, std::abs(a[v]))) << v;
  }
}

TEST(Bc, SourceHasZeroDependency) {
  auto g = gbbs::testing::make_symmetric("erdos_renyi");
  auto dep = gbbs::betweenness(g, 10);
  EXPECT_DOUBLE_EQ(dep[10], 0.0);
}

}  // namespace
