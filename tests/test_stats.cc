// Graph-statistics block (Tables 3, 8-13 machinery).
#include <gtest/gtest.h>

#include "algorithms/stats.h"
#include "test_graphs.h"

namespace {

using gbbs::vertex_id;

TEST(Stats, TwoComponentCycles) {
  auto g = gbbs::testing::two_components(100);
  auto s = gbbs::compute_statistics(g);
  EXPECT_EQ(s.num_vertices, 200u);
  EXPECT_EQ(s.num_cc, 2u);
  EXPECT_EQ(s.largest_cc, 100u);
  EXPECT_EQ(s.num_triangles, 0u);
  EXPECT_EQ(s.kmax, 2u);
  // Each cycle is one biconnected component.
  EXPECT_EQ(s.num_bicc, 2u);
}

TEST(Stats, EffectiveDiameterLowerBoundsPath) {
  auto g = gbbs::build_symmetric_graph<gbbs::empty_weight>(
      200, gbbs::path_edges(200));
  const auto d = gbbs::effective_diameter(g, 4);
  EXPECT_GE(d, 99u);   // any source sees at least half the path
  EXPECT_LE(d, 199u);
}

TEST(Stats, RmatBlockIsConsistent) {
  auto g = gbbs::testing::make_symmetric("rmat");
  auto s = gbbs::compute_statistics(g);
  EXPECT_EQ(s.num_vertices, g.num_vertices());
  EXPECT_EQ(s.num_edges, g.num_edges());
  EXPECT_GE(s.colors_lf, 2u);
  EXPECT_GE(s.colors_llf, 2u);
  EXPECT_GT(s.mis_size, 0u);
  EXPECT_GT(s.matching_size, 0u);
  EXPECT_GE(s.kmax, 1u);
  EXPECT_GE(s.rho, 1u);
  EXPECT_LE(s.largest_cc, s.num_vertices);
}

TEST(Stats, DirectedSccStats) {
  auto g = gbbs::testing::make_directed("dicycle");
  gbbs::graph_statistics s;
  gbbs::add_directed_statistics(g, s);
  EXPECT_EQ(s.num_scc, 1u);
  EXPECT_EQ(s.largest_scc, 400u);
}

TEST(Stats, CountAndLargest) {
  std::vector<vertex_id> labels = {5, 5, 7, 5, 9, 9};
  auto [count, largest] = gbbs::count_and_largest(labels);
  EXPECT_EQ(count, 3u);
  EXPECT_EQ(largest, 3u);
}

}  // namespace
