// Incremental connectivity vs. the static Algorithm-6 connectivity: the
// maintained partition must match on a snapshot after EVERY batch, on both
// a skewed (R-MAT) and a high-diameter (grid) stream — the subsystem's
// second acceptance criterion. Also covers the erase-triggered rebuild
// path and n-growing batches.
#include <string>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "algorithms/connectivity.h"
#include "dynamic/dynamic_graph.h"
#include "dynamic/incremental_connectivity.h"
#include "dynamic/stream.h"
#include "graph/generators.h"

namespace {

using gbbs::empty_weight;
using gbbs::vertex_id;
using gbbs::dynamic::dynamic_graph;
using gbbs::dynamic::incremental_connectivity;
using gbbs::dynamic::update;
using gbbs::dynamic::update_op;

update<empty_weight> ins(vertex_id u, vertex_id v) {
  return {u, v, {}, update_op::insert};
}
update<empty_weight> ers(vertex_id u, vertex_id v) {
  return {u, v, {}, update_op::erase};
}

void expect_same_partition(const std::vector<vertex_id>& a,
                           const std::vector<vertex_id>& b) {
  ASSERT_EQ(a.size(), b.size());
  std::unordered_map<vertex_id, vertex_id> a2b, b2a;
  for (std::size_t v = 0; v < a.size(); ++v) {
    auto [ia, ins_a] = a2b.try_emplace(a[v], b[v]);
    ASSERT_EQ(ia->second, b[v]) << "a-label " << a[v] << " split at " << v;
    auto [ib, ins_b] = b2a.try_emplace(b[v], a[v]);
    ASSERT_EQ(ib->second, a[v]) << "b-label " << b[v] << " merged at " << v;
  }
}

struct stream_case {
  std::string name;
  std::vector<gbbs::edge<empty_weight>> edges;
  vertex_id n;
};

stream_case make_case(const std::string& name) {
  if (name == "rmat") {
    return {name, gbbs::rmat_edges(10, 6000, 42), vertex_id{1} << 10};
  }
  return {name, gbbs::grid2d_edges(24, 30), 24 * 30};
}

class IncrementalConnectivitySuite
    : public ::testing::TestWithParam<std::string> {};
INSTANTIATE_TEST_SUITE_P(Streams, IncrementalConnectivitySuite,
                         ::testing::Values("rmat", "grid"));

TEST_P(IncrementalConnectivitySuite, MatchesStaticAfterEveryBatch) {
  auto c = make_case(GetParam());
  gbbs::dynamic::edge_stream<empty_weight> stream(c.edges);
  dynamic_graph<empty_weight> dg(c.n);
  incremental_connectivity cc(c.n);
  while (!stream.done()) {
    auto batch = dg.apply(stream.next_inserts(500));
    cc.apply(batch, dg);
    expect_same_partition(cc.labels(), gbbs::connectivity(dg.snapshot()));
  }
}

TEST_P(IncrementalConnectivitySuite, ErasesRebuildCorrectly) {
  auto c = make_case(GetParam());
  dynamic_graph<empty_weight> dg(c.n);
  incremental_connectivity cc(c.n);
  auto batch = gbbs::dynamic::insert_batch(c.edges, /*mirror=*/true);
  dg.apply_batch(batch);
  cc.apply(batch, dg);
  parlib::random rng(7);
  // Three rounds of random erases, cross-checked each time.
  gbbs::dynamic::edge_stream<empty_weight> stream(c.edges);
  (void)stream.next_inserts(c.edges.size());  // mark all delivered
  for (int round = 0; round < 3; ++round) {
    auto erases = stream.sample_erases(c.edges.size() / 10, rng);
    rng = rng.next();
    auto ebatch = dg.apply(std::move(erases));
    cc.apply(ebatch, dg);
    expect_same_partition(cc.labels(), gbbs::connectivity(dg.snapshot()));
  }
}

TEST(IncrementalConnectivity, TracksComponentCountOnPath) {
  const vertex_id n = 64;
  dynamic_graph<empty_weight> dg(n);
  incremental_connectivity cc(n);
  EXPECT_EQ(cc.num_components(), 64u);
  // Join pairs: (0,1), (2,3), ... halves the count.
  std::vector<update<empty_weight>> raw;
  for (vertex_id v = 0; v + 1 < n; v += 2) raw.push_back(ins(v, v + 1));
  cc.apply(dg.apply(std::move(raw)), dg);
  EXPECT_EQ(cc.num_components(), 32u);
  // Chain everything into one path.
  raw.clear();
  for (vertex_id v = 1; v + 1 < n; v += 2) raw.push_back(ins(v, v + 1));
  cc.apply(dg.apply(std::move(raw)), dg);
  EXPECT_EQ(cc.num_components(), 1u);
  EXPECT_TRUE(cc.connected(0, 63));
}

TEST(IncrementalConnectivity, EraseSplitsComponent) {
  // A path 0-1-2-3; erasing the middle edge splits it.
  const vertex_id n = 4;
  dynamic_graph<empty_weight> dg(n);
  incremental_connectivity cc(n);
  cc.apply(dg.apply({ins(0, 1), ins(1, 2), ins(2, 3)}), dg);
  EXPECT_EQ(cc.num_components(), 1u);
  cc.apply(dg.apply({ers(1, 2)}), dg);
  EXPECT_EQ(cc.num_components(), 2u);
  EXPECT_TRUE(cc.connected(0, 1));
  EXPECT_TRUE(cc.connected(2, 3));
  EXPECT_FALSE(cc.connected(1, 2));
}

TEST(IncrementalConnectivity, GrowingBatchAddsSingletons) {
  dynamic_graph<empty_weight> dg(2);
  incremental_connectivity cc(2);
  cc.apply(dg.apply({ins(0, 1)}), dg);
  EXPECT_EQ(cc.num_components(), 1u);
  cc.apply(dg.apply({ins(5, 6)}), dg);  // grows n to 7
  EXPECT_EQ(cc.num_vertices(), 7u);
  // Components: {0,1}, {2}, {3}, {4}, {5,6}.
  EXPECT_EQ(cc.num_components(), 5u);
  EXPECT_FALSE(cc.connected(0, 5));
  expect_same_partition(cc.labels(), gbbs::connectivity(dg.snapshot()));
}

TEST(IncrementalConnectivity, AllSelfLoopBatchStaysInSyncWithGraph) {
  // A batch that normalizes to nothing must still grow BOTH the graph and
  // the tracker to max_vertex, keeping the partition sizes equal.
  dynamic_graph<empty_weight> dg(2);
  incremental_connectivity cc(2);
  auto batch = dg.apply({ins(5, 5)});  // self-loop on a fresh id
  cc.apply(batch, dg);
  EXPECT_EQ(dg.num_vertices(), 6u);
  EXPECT_EQ(cc.num_vertices(), 6u);
  EXPECT_EQ(cc.num_components(), 6u);
  expect_same_partition(cc.labels(), gbbs::connectivity(dg.snapshot()));
}

TEST(IncrementalConnectivity, QueriesBeyondGrownSizeAreSingletons) {
  incremental_connectivity cc(4);
  EXPECT_EQ(cc.find(1000), 1000u);
  EXPECT_FALSE(cc.connected(0, 1000));
  EXPECT_FALSE(cc.connected(1000, 2000));
  EXPECT_TRUE(cc.connected(1000, 1000));
  EXPECT_EQ(cc.num_vertices(), 4u);  // queries never grow the tracker
}

TEST(IncrementalConnectivity, InsertOnlyNeverDisagreesOnDuplicates) {
  // Duplicate-heavy batches must not desync the component count.
  const vertex_id n = 32;
  dynamic_graph<empty_weight> dg(n);
  incremental_connectivity cc(n);
  for (int round = 0; round < 4; ++round) {
    std::vector<update<empty_weight>> raw;
    for (vertex_id v = 0; v + 1 < n; ++v) {
      raw.push_back(ins(v, v + 1));  // same edges every round
    }
    cc.apply(dg.apply(std::move(raw)), dg);
    EXPECT_EQ(cc.num_components(), 1u);
  }
  expect_same_partition(cc.labels(), gbbs::connectivity(dg.snapshot()));
}

}  // namespace
