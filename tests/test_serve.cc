// Tests for the concurrent snapshot-serving subsystem (src/serve):
//   * snapshot_store pin/publish lifecycle — pins are self-contained
//     shared handles, so a pinned version survives arbitrarily many
//     publish/compact cycles unchanged while version *nodes* are
//     reclaimed eagerly;
//   * typed query dispatch against a pinned version;
//   * overlay-served fresh point reads: a read issued after ingest() but
//     before publish() observes the new edges via the delta-aware path;
//   * the bounded submit queue (reject and block overflow policies);
//   * the acceptance check: with ingest and >= 4 reader threads running
//     simultaneously, every query result equals the result of the same
//     static algorithm on the snapshot version it was admitted against.
//
// Shared-CSR storage lifetime (arrays outliving writer/store, zero-copy
// publish) is covered in test_shared_csr.cc.
#include <cstdint>
#include <future>
#include <map>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "algorithms/bfs.h"
#include "algorithms/connectivity.h"
#include "algorithms/kcore.h"
#include "algorithms/triangle.h"
#include "dynamic/stream.h"
#include "graph/generators.h"
#include "graph/graph_builder.h"
#include "parlib/random.h"
#include "serve/query.h"
#include "serve/query_engine.h"
#include "serve/snapshot_manager.h"
#include "serve/snapshot_store.h"

namespace {

using gbbs::edge;
using gbbs::empty_weight;
using gbbs::vertex_id;
using gbbs::serve::pinned_snapshot;
using gbbs::serve::query;
using gbbs::serve::query_engine;
using gbbs::serve::query_kind;
using gbbs::serve::query_result;
using gbbs::serve::query_status;
using gbbs::serve::snapshot_manager;
using gbbs::serve::snapshot_store;

using uw_edge = edge<empty_weight>;
using uw_update = gbbs::dynamic::update<empty_weight>;

std::vector<uw_update> inserts(const std::vector<uw_edge>& edges) {
  std::vector<uw_update> ups;
  ups.reserve(edges.size());
  for (const auto& e : edges) {
    ups.push_back({e.u, e.v, {}, gbbs::dynamic::update_op::insert});
  }
  return ups;
}

template <typename G1, typename G2>
void expect_same_csr(const G1& a, const G2& b) {
  ASSERT_EQ(a.num_vertices(), b.num_vertices());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (vertex_id v = 0; v < a.num_vertices(); ++v) {
    auto na = a.out_neighbors(v);
    auto nb = b.out_neighbors(v);
    ASSERT_EQ(na.size(), nb.size()) << "degree of " << v;
    for (std::size_t j = 0; j < na.size(); ++j) {
      ASSERT_EQ(na[j], nb[j]) << "neighbor " << j << " of " << v;
    }
  }
}

// ---- snapshot_store lifecycle ---------------------------------------------

TEST(SnapshotStore, EmptyStorePinIsNull) {
  snapshot_store<empty_weight> store;
  auto snap = store.pin();
  EXPECT_FALSE(snap);
  EXPECT_EQ(store.current_version(), 0u);
  EXPECT_EQ(store.live_versions(), 0u);
}

TEST(SnapshotStore, PinSeesLatestPublished) {
  snapshot_store<empty_weight> store;
  auto g1 = gbbs::build_symmetric_graph<empty_weight>(
      4, std::vector<uw_edge>{{0, 1, {}}});
  auto g2 = gbbs::build_symmetric_graph<empty_weight>(
      4, std::vector<uw_edge>{{0, 1, {}}, {1, 2, {}}});
  EXPECT_EQ(store.publish(g1, std::vector<vertex_id>{0, 0, 2, 3}), 1u);
  EXPECT_EQ(store.publish(g2, std::vector<vertex_id>{0, 0, 0, 3}), 2u);
  auto snap = store.pin();
  ASSERT_TRUE(snap);
  EXPECT_EQ(snap.version(), 2u);
  EXPECT_EQ(snap.view().num_edges(), 4u);
  EXPECT_EQ(snap.components().label(2), 0u);
  // v1's node had no hazard on it, so publishing v2 reclaimed it.
  EXPECT_EQ(store.live_versions(), 1u);
}

// Pins are self-contained shared handles: version nodes are reclaimed
// eagerly (live_versions collapses to the head), yet a held pin keeps
// reading its version's data — the arrays outlive the node.
TEST(SnapshotStore, PinnedDataSurvivesNodeReclamation) {
  snapshot_store<empty_weight> store;
  auto g1 = gbbs::build_symmetric_graph<empty_weight>(
      3, std::vector<uw_edge>{{0, 1, {}}});
  auto g2 = gbbs::build_symmetric_graph<empty_weight>(
      3, std::vector<uw_edge>{{0, 1, {}}, {1, 2, {}}});
  store.publish(g1, std::vector<vertex_id>{0, 0, 2});
  auto pin_a = store.pin();
  store.publish(g2, std::vector<vertex_id>{0, 0, 0});
  store.publish(g2, std::vector<vertex_id>{0, 0, 0});
  // Nodes of v1/v2 are gone (no pin-based retention), head remains.
  EXPECT_EQ(store.live_versions(), 1u);
  // The pin still owns v1's data outright.
  EXPECT_EQ(pin_a.version(), 1u);
  EXPECT_EQ(pin_a.view().num_edges(), 2u);
  EXPECT_EQ(pin_a.view().out_degree(2), 0u);
  EXPECT_FALSE(pin_a.components().connected(0, 2));
  pin_a.release();
  EXPECT_EQ(store.live_versions(), 1u);
}

// The satellite coverage: a pinned snapshot survives subsequent
// compact()/publish cycles unchanged and queries against it stay valid.
TEST(SnapshotManager, PinnedSnapshotSurvivesCompactAndPublishCycles) {
  const vertex_id n = 64;
  std::vector<uw_edge> prefix;
  for (vertex_id v = 0; v + 1 < 32; ++v) prefix.push_back({v, v + 1, {}});

  snapshot_manager<empty_weight> mgr(n, /*compact_threshold=*/0.25);
  mgr.ingest(inserts(prefix));
  mgr.publish();
  auto pinned = mgr.pin();
  ASSERT_TRUE(pinned);
  auto reference = gbbs::build_symmetric_graph<empty_weight>(n, prefix);
  expect_same_csr(pinned.view(), reference);
  const auto dist_before = gbbs::bfs(pinned.view(), 0);

  // Grind the writer: more batches, publishes, and hand-off compactions.
  parlib::random rng(7);
  for (int round = 0; round < 6; ++round) {
    std::vector<uw_edge> extra;
    for (int i = 0; i < 40; ++i) {
      extra.push_back({static_cast<vertex_id>(rng.ith_rand(2 * i) % n),
                       static_cast<vertex_id>(rng.ith_rand(2 * i + 1) % n),
                       {}});
    }
    rng = rng.next();
    mgr.ingest(inserts(extra));
    mgr.publish();
  }
  EXPECT_GT(mgr.num_compactions(), 0u);

  // The pinned version is bit-for-bit what it was, and queries still work.
  expect_same_csr(pinned.view(), reference);
  EXPECT_EQ(gbbs::bfs(pinned.view(), 0), dist_before);
  query q{query_kind::bfs_distance, 0, 31};
  EXPECT_EQ(execute_query(pinned, q).value, 31u);

  // Version nodes are reclaimed eagerly: only the head is resident even
  // while the old version stays pinned (the pin owns its data directly).
  EXPECT_EQ(mgr.store().live_versions(), 1u);
  pinned.release();
  mgr.store().collect();
  EXPECT_EQ(mgr.store().live_versions(), 1u);
}

// ---- query dispatch -------------------------------------------------------

TEST(Query, DispatchAllKinds) {
  // Triangle 0-1-2 plus a pendant 3; vertex 4 isolated.
  std::vector<uw_edge> edges{{0, 1, {}}, {1, 2, {}}, {0, 2, {}}, {2, 3, {}}};
  snapshot_manager<empty_weight> mgr(5);
  mgr.ingest(inserts(edges));
  mgr.publish();
  auto snap = mgr.pin();
  ASSERT_TRUE(snap);

  EXPECT_EQ(execute_query(snap, {query_kind::degree, 2, 0}).value, 3u);
  auto nb = execute_query(snap, {query_kind::neighbors, 0, 0});
  EXPECT_EQ(nb.list, (std::vector<vertex_id>{1, 2}));
  EXPECT_EQ(execute_query(snap, {query_kind::connected, 0, 3}).value, 1u);
  EXPECT_EQ(execute_query(snap, {query_kind::connected, 0, 4}).value, 0u);
  EXPECT_EQ(execute_query(snap, {query_kind::component, 0, 0}).value,
            execute_query(snap, {query_kind::component, 3, 0}).value);
  EXPECT_EQ(execute_query(snap, {query_kind::bfs_distance, 0, 3}).value, 2u);
  EXPECT_EQ(execute_query(snap, {query_kind::bfs_distance, 0, 4}).value,
            gbbs::kInfDist);
  EXPECT_EQ(execute_query(snap, {query_kind::kcore_max, 0, 0}).value, 2u);
  EXPECT_EQ(execute_query(snap, {query_kind::triangles, 0, 0}).value, 1u);

  // Vertices beyond the snapshot are isolated singletons.
  EXPECT_EQ(execute_query(snap, {query_kind::degree, 100, 0}).value, 0u);
  EXPECT_EQ(execute_query(snap, {query_kind::connected, 100, 100}).value, 1u);
  EXPECT_EQ(execute_query(snap, {query_kind::connected, 100, 0}).value, 0u);
  EXPECT_EQ(execute_query(snap, {query_kind::bfs_distance, 0, 100}).value,
            gbbs::kInfDist);
  EXPECT_EQ(execute_query(snap, {query_kind::component, 100, 0}).value, 100u);
}

TEST(QueryEngine, ServesSubmittedQueries) {
  std::vector<uw_edge> edges{{0, 1, {}}, {1, 2, {}}, {3, 4, {}}};
  snapshot_manager<empty_weight> mgr(5);
  mgr.ingest(inserts(edges));
  mgr.publish();
  query_engine<empty_weight> engine(mgr.store(), 2);

  auto f1 = engine.submit({query_kind::degree, 1, 0});
  auto f2 = engine.submit({query_kind::connected, 0, 2});
  auto f3 = engine.submit({query_kind::bfs_distance, 0, 2});
  auto r1 = f1.get();
  EXPECT_EQ(r1.value, 2u);
  EXPECT_EQ(r1.version, mgr.current_version());
  EXPECT_GE(r1.latency_s, 0.0);
  EXPECT_EQ(f2.get().value, 1u);
  EXPECT_EQ(f3.get().value, 2u);
  engine.drain();
  EXPECT_EQ(engine.completed(), 3u);
}

TEST(QueryEngine, SubmitAfterStopResolvesImmediately) {
  snapshot_manager<empty_weight> mgr(4);
  query_engine<empty_weight> engine(mgr.store(), 2);
  engine.stop();
  auto f = engine.submit({query_kind::degree, 0, 0});
  auto r = f.get();  // never stuck
  EXPECT_EQ(r.status, query_status::rejected);
  EXPECT_EQ(r.version, 0u);
  EXPECT_EQ(engine.dropped(), 1u);
}

// ---- overlay-served fresh point reads -------------------------------------
//
// The acceptance bullet: a point read issued after ingest() but *before*
// publish() observes the new edge via the delta-aware path, while the
// pinned (published) version still shows the old state.

TEST(OverlayView, PointReadsSeeUnpublishedIngest) {
  snapshot_manager<empty_weight> mgr(8);  // publishes v1 = empty graph
  mgr.ingest(inserts({{0, 1, {}}, {1, 2, {}}}));
  // No publish: the published head is still the empty graph...
  auto snap = mgr.pin();
  ASSERT_TRUE(snap);
  EXPECT_EQ(snap.view().num_edges(), 0u);
  EXPECT_EQ(execute_query(snap, {query_kind::degree, 1, 0}).value, 0u);

  // ...but the overlay index already serves the ingested edges.
  auto idx = mgr.overlay().read();
  ASSERT_NE(idx, nullptr);
  EXPECT_EQ(idx->epoch, mgr.updates_ingested());
  EXPECT_EQ(idx->degree(1), 2u);
  EXPECT_EQ(idx->neighbors(1), (std::vector<vertex_id>{0, 2}));
  EXPECT_TRUE(idx->contains_edge(0, 1));
  EXPECT_FALSE(idx->contains_edge(0, 2));
  EXPECT_TRUE(idx->cc.connected(0, 2));
  EXPECT_FALSE(idx->cc.connected(0, 3));

  auto fresh = execute_point_query(*idx, {query_kind::degree, 1, 0});
  EXPECT_EQ(fresh.value, 2u);
  EXPECT_GT(fresh.epoch, 0u);

  // After publish, the pinned path catches up and the two paths agree.
  mgr.publish();
  auto snap2 = mgr.pin();
  EXPECT_EQ(execute_query(snap2, {query_kind::degree, 1, 0}).value, 2u);
}

TEST(OverlayView, EngineRoutesAllKindsToFreshPath) {
  snapshot_manager<empty_weight> mgr(8);
  query_engine<empty_weight> engine(mgr.store(), &mgr.overlay(), 2);
  mgr.ingest(inserts({{2, 3, {}}}));
  // Unpublished edge, visible through the engine's fresh path.
  auto fd = engine.submit({query_kind::degree, 2, 0});
  auto fn = engine.submit({query_kind::neighbors, 2, 0});
  auto fc = engine.submit({query_kind::connected, 2, 3});
  EXPECT_EQ(fd.get().value, 1u);
  EXPECT_EQ(fn.get().list, (std::vector<vertex_id>{3}));
  EXPECT_EQ(fc.get().value, 1u);
  // Traversal analytics match the point-read freshness: the unpublished
  // edge is traversed via the overlay-fused dynamic_view.
  auto fb = engine.submit({query_kind::bfs_distance, 2, 3});
  EXPECT_EQ(fb.get().value, 1u);
  // An explicitly-stale analytics query still executes against the
  // published (empty) version.
  query stale_bfs{query_kind::bfs_distance, 2, 3};
  stale_bfs.stale = true;
  auto fs = engine.submit(stale_bfs);
  EXPECT_EQ(fs.get().value, gbbs::kInfDist);
}

// Overlay reads stay correct across erases and across publish-point
// compaction handing the overlay off to a fresh shared base.
TEST(OverlayView, TracksErasesAndCompaction) {
  // threshold 0: publish compacts eagerly, so each publish folds the
  // overlay into a fresh shared base.
  snapshot_manager<empty_weight> mgr(6, /*compact_threshold=*/0.0);
  mgr.ingest(inserts({{0, 1, {}}, {1, 2, {}}, {3, 4, {}}}));
  mgr.publish();
  mgr.ingest({{1, 2, {}, gbbs::dynamic::update_op::erase}});
  auto idx = mgr.overlay().read();
  ASSERT_NE(idx, nullptr);
  EXPECT_EQ(idx->degree(1), 1u);
  EXPECT_FALSE(idx->contains_edge(1, 2));
  EXPECT_EQ(idx->neighbors(1), (std::vector<vertex_id>{0}));
  // Erase triggered a connectivity rebuild + re-anchor; cc is exact.
  EXPECT_FALSE(idx->cc.connected(0, 2));
  EXPECT_TRUE(idx->cc.connected(3, 4));

  // Publish folds the overlay into a fresh shared base; the refreshed
  // index rebuilds against it and keeps answering.
  mgr.publish();
  auto idx2 = mgr.overlay().read();
  EXPECT_EQ(idx2->overlay_size(), 0u);
  EXPECT_EQ(idx2->degree(1), 1u);
  EXPECT_EQ(idx2->neighbors(0), (std::vector<vertex_id>{1}));
}

// ---- bounded submit queue -------------------------------------------------

TEST(QueryEngine, BoundedQueueRejectPolicyDropsAndCounts) {
  // One reader kept busy by BFS queries over a long path graph; a tiny
  // queue in reject mode must drop most of a large burst.
  const vertex_id n = 1u << 15;
  std::vector<uw_edge> path;
  path.reserve(n - 1);
  for (vertex_id v = 0; v + 1 < n; ++v) path.push_back({v, v + 1, {}});
  snapshot_manager<empty_weight> mgr(n);
  mgr.ingest(inserts(path));
  mgr.publish();

  gbbs::serve::query_engine_options opts;
  opts.max_queue = 4;
  opts.on_overflow = gbbs::serve::query_engine_options::overflow_policy::reject;
  query_engine<empty_weight> engine(mgr.store(), 1, opts);

  std::vector<std::future<query_result>> futs;
  for (int i = 0; i < 64; ++i) {
    futs.push_back(engine.submit({query_kind::bfs_distance, 0, n - 1}));
  }
  std::size_t rejected = 0, served = 0;
  for (auto& f : futs) {
    auto r = f.get();  // every future resolves, dropped or not
    if (r.status == query_status::rejected) {
      ++rejected;
    } else {
      ++served;
      EXPECT_EQ(r.value, n - 1);
    }
  }
  EXPECT_EQ(rejected, engine.dropped());
  EXPECT_EQ(rejected + served, 64u);
  EXPECT_GT(rejected, 0u) << "a 64-burst into a 4-slot queue must drop";
  engine.drain();
  EXPECT_EQ(engine.completed(), served);
}

TEST(QueryEngine, BoundedQueueBlockPolicyServesEverything) {
  std::vector<uw_edge> edges{{0, 1, {}}, {1, 2, {}}};
  snapshot_manager<empty_weight> mgr(4);
  mgr.ingest(inserts(edges));
  mgr.publish();

  gbbs::serve::query_engine_options opts;
  opts.max_queue = 2;
  opts.on_overflow = gbbs::serve::query_engine_options::overflow_policy::block;
  query_engine<empty_weight> engine(mgr.store(), 1, opts);

  std::vector<std::future<query_result>> futs;
  for (int i = 0; i < 32; ++i) {
    futs.push_back(engine.submit({query_kind::degree, 1, 0}));
  }
  for (auto& f : futs) {
    auto r = f.get();
    EXPECT_EQ(r.status, query_status::ok);
    EXPECT_EQ(r.value, 2u);
  }
  EXPECT_EQ(engine.dropped(), 0u);
  engine.drain();
  EXPECT_EQ(engine.completed(), 32u);
}

// ---- the acceptance test: consistency under concurrency -------------------
//
// A writer thread ingests an R-MAT stream batch by batch, publishing (and
// hand-off compacting) after every batch, while a 4-reader query engine
// executes a mixed query workload and two extra checker threads pin
// versions directly and audit their internal consistency. The writer
// retains one pin per published version, so after the run every engine
// result can be re-checked against the exact immutable version it was
// admitted to — any torn read, use-after-free, or overlay leak into a
// published CSR makes these comparisons fail (and TSan flag the race).

TEST(Serve, ConsistencyUnderConcurrentIngest) {
  const std::uint32_t scale = 10;
  const vertex_id n = vertex_id{1} << scale;
  auto full = gbbs::rmat_symmetric(scale, std::size_t{8} << scale, 42);
  auto stream_edges = gbbs::dynamic::undirected_stream_edges(full);
  const std::size_t batch_size = (stream_edges.size() + 15) / 16;

  snapshot_manager<empty_weight> mgr(n, /*compact_threshold=*/0.25);
  std::vector<pinned_snapshot<empty_weight>> retained;
  retained.push_back(mgr.pin());  // version 1: the empty graph
  // Undirected prefix length at each publish, indexed like `retained`.
  std::vector<std::size_t> prefix_at;
  prefix_at.push_back(0);

  {
    query_engine<empty_weight> engine(mgr.store(), 4);
    std::vector<std::pair<query, std::future<query_result>>> pending;

    // Checker threads: pin directly, concurrently with ingest, and audit
    // the pinned version's invariants (degree sum, partition vs. the
    // static connectivity of the same pinned CSR, version monotonicity).
    std::atomic<bool> ingest_done{false};
    auto checker = [&] {
      std::uint64_t last_version = 0;
      do {
        auto snap = mgr.pin();
        ASSERT_TRUE(snap);
        EXPECT_GE(snap.version(), last_version);
        last_version = snap.version();
        const auto& g = snap.view();
        std::uint64_t degree_sum = 0;
        for (vertex_id v = 0; v < g.num_vertices(); ++v) {
          degree_sum += g.out_degree(v);
        }
        EXPECT_EQ(degree_sum, g.num_edges()) << "torn CSR in version "
                                             << snap.version();
        EXPECT_TRUE(gbbs::same_partition(
            snap.components().materialize(g.num_vertices()),
            gbbs::connectivity(g)))
            << "stale/torn components in version " << snap.version();
      } while (!ingest_done.load(std::memory_order_acquire));
    };
    std::thread check_a(checker), check_b(checker);

    // Writer: ingest + publish per batch; submit a query burst after each
    // publish so readers execute against a moving version frontier.
    gbbs::dynamic::edge_stream<empty_weight> stream(stream_edges);
    parlib::random rng(123);
    std::size_t qi = 0;
    while (!stream.done()) {
      mgr.ingest(stream.next_inserts(batch_size));
      mgr.publish();
      retained.push_back(mgr.pin());
      prefix_at.push_back(stream.delivered());
      for (int k = 0; k < 24; ++k, ++qi) {
        const auto u = static_cast<vertex_id>(rng.ith_rand(3 * qi) % n);
        const auto v =
            static_cast<vertex_id>(rng.ith_rand(3 * qi + 1) % n);
        const std::uint64_t dice = rng.ith_rand(3 * qi + 2) % 100;
        query q;
        if (dice < 35) {
          q = {query_kind::degree, u, 0};
        } else if (dice < 55) {
          q = {query_kind::neighbors, u, 0};
        } else if (dice < 75) {
          q = {query_kind::connected, u, v};
        } else if (dice < 85) {
          q = {query_kind::component, u, 0};
        } else if (dice < 95) {
          q = {query_kind::bfs_distance, u, v};
        } else if (dice < 98) {
          q = {query_kind::kcore_max, 0, 0};
        } else {
          q = {query_kind::triangles, 0, 0};
        }
        pending.emplace_back(q, engine.submit(q));
      }
      rng = rng.next();
    }
    engine.drain();
    ingest_done.store(true, std::memory_order_release);
    check_a.join();
    check_b.join();

    // Post-hoc: every result equals the static algorithm on the retained
    // immutable version it was admitted against.
    std::map<std::uint64_t, const pinned_snapshot<empty_weight>*> by_version;
    for (const auto& p : retained) by_version[p.version()] = &p;
    struct version_expect {
      std::vector<vertex_id> cc_labels;
      std::uint64_t kcore_max = 0, triangles = 0;
      bool have_cc = false, have_kcore = false, have_tri = false;
    };
    std::map<std::uint64_t, version_expect> memo;

    for (auto& [q, fut] : pending) {
      query_result r = fut.get();
      auto it = by_version.find(r.version);
      ASSERT_NE(it, by_version.end())
          << "result admitted against unknown version " << r.version;
      const auto& snap = *it->second;
      const auto& g = snap.view();
      auto& exp = memo[r.version];
      switch (q.kind) {
        case query_kind::degree:
          EXPECT_EQ(r.value, q.u < g.num_vertices()
                                 ? g.out_degree(q.u)
                                 : 0u);
          break;
        case query_kind::neighbors: {
          std::vector<vertex_id> want;
          if (q.u < g.num_vertices()) {
            auto nghs = g.out_neighbors(q.u);
            want.assign(nghs.begin(), nghs.end());
          }
          EXPECT_EQ(r.list, want);
          break;
        }
        case query_kind::connected: {
          if (!exp.have_cc) {
            exp.cc_labels = gbbs::connectivity(g);
            exp.have_cc = true;
          }
          const bool want = exp.cc_labels[q.u] == exp.cc_labels[q.v];
          EXPECT_EQ(r.value, want ? 1u : 0u)
              << "connected(" << q.u << "," << q.v << ") @v" << r.version;
          break;
        }
        case query_kind::component:
          EXPECT_EQ(r.value, snap.components().label(q.u));
          break;
        case query_kind::bfs_distance:
          EXPECT_EQ(r.value, gbbs::bfs(g, q.u)[q.v])
              << "bfs(" << q.u << "->" << q.v << ") @v" << r.version;
          break;
        case query_kind::kcore_max:
          if (!exp.have_kcore) {
            exp.kcore_max = gbbs::kcore(g).max_core;
            exp.have_kcore = true;
          }
          EXPECT_EQ(r.value, exp.kcore_max);
          break;
        case query_kind::triangles:
          if (!exp.have_tri) {
            exp.triangles = gbbs::triangle_count(g);
            exp.have_tri = true;
          }
          EXPECT_EQ(r.value, exp.triangles);
          break;
        case query_kind::connectivity_refine:
        case query_kind::num_kinds:
          // Not generated by this test's mix.
          break;
      }
    }

    // Each retained version is exactly the stream prefix it was published
    // at (insert-only stream of deduped edges: m = 2 * prefix length).
    for (std::size_t i = 0; i < retained.size(); ++i) {
      EXPECT_EQ(retained[i].view().num_edges(), 2 * prefix_at[i])
          << "version " << retained[i].version();
    }
  }

  // Version nodes were reclaimed eagerly all along — the retained pins
  // own their data directly, independent of the store's node list.
  EXPECT_EQ(mgr.store().live_versions(), 1u);
  EXPECT_EQ(retained.front().view().num_edges(), 0u);  // v1: empty graph
  retained.clear();
  mgr.store().collect();
  EXPECT_EQ(mgr.store().live_versions(), 1u);
}

// Adaptive stale-routing: repeat analytics on an unchanged (version,
// epoch) switch to the published version's memoized merged CSR once the
// run exceeds the threshold — with identical results, since routing only
// happens when the published version covers the same updates.
TEST(QueryEngine, StaleAutoRoutesRepeatAnalyticsLosslessly) {
  const vertex_id n = 10;
  snapshot_manager<empty_weight> mgr(n);
  std::vector<uw_edge> path;
  for (vertex_id u = 0; u + 1 < n; ++u) path.push_back({u, u + 1, {}});
  mgr.ingest(inserts(path));
  mgr.publish();

  gbbs::serve::query_engine_options opts;
  opts.stale_auto = true;
  opts.stale_auto_threshold = 3;
  query_engine<empty_weight> engine(mgr.store(), &mgr.overlay(),
                                    /*num_readers=*/2, opts);
  for (int i = 0; i < 20; ++i) {
    auto r =
        engine.submit({query_kind::bfs_distance, 0, n - 1, false}).get();
    EXPECT_EQ(r.value, static_cast<std::uint64_t>(n - 1)) << i;
  }
  // The run of identical analytics on one unchanged version amortized the
  // merge: later queries were routed to the memoized merged CSR.
  EXPECT_GT(engine.stale_auto_routed(), 0u);
}

// Freshness is never silently lost: once ingest advances past the last
// published version, the auto-router's lossless condition fails and
// analytics keep seeing the *fresh* overlay (the unpublished shortcut
// edge), threshold long exceeded or not.
TEST(QueryEngine, StaleAutoNeverServesStaleResults) {
  const vertex_id n = 10;
  snapshot_manager<empty_weight> mgr(n);
  std::vector<uw_edge> path;
  for (vertex_id u = 0; u + 1 < n; ++u) path.push_back({u, u + 1, {}});
  mgr.ingest(inserts(path));
  mgr.publish();

  gbbs::serve::query_engine_options opts;
  opts.stale_auto = true;
  opts.stale_auto_threshold = 2;
  query_engine<empty_weight> engine(mgr.store(), &mgr.overlay(),
                                    /*num_readers=*/2, opts);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(
        engine.submit({query_kind::bfs_distance, 0, n - 1, false})
            .get()
            .value,
        static_cast<std::uint64_t>(n - 1));
  }
  EXPECT_GT(engine.stale_auto_routed(), 0u);

  // Unpublished shortcut: fresh distance drops to 1; the published merged
  // CSR still says n-1, so routing there would be visibly stale.
  mgr.ingest(inserts({{0, n - 1, {}}}));
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(
        engine.submit({query_kind::bfs_distance, 0, n - 1, false})
            .get()
            .value,
        1u)
        << "auto-routing served a stale result";
  }
}

}  // namespace
