// SCC vs the iterative Tarjan oracle: partition equality across graph
// shapes, option combinations (trimming, single-pivot, beta), and seeds.
#include <string>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "algorithms/scc.h"
#include "graph/compression/compressed_graph.h"
#include "seq/reference.h"
#include "test_graphs.h"

namespace {

using gbbs::vertex_id;

void expect_same_partition(const std::vector<vertex_id>& a,
                           const std::vector<vertex_id>& b) {
  ASSERT_EQ(a.size(), b.size());
  std::unordered_map<vertex_id, vertex_id> a2b, b2a;
  for (std::size_t v = 0; v < a.size(); ++v) {
    auto [ia, unused_a] = a2b.try_emplace(a[v], b[v]);
    ASSERT_EQ(ia->second, b[v]) << "label " << a[v] << " split at " << v;
    auto [ib, unused_b] = b2a.try_emplace(b[v], a[v]);
    ASSERT_EQ(ib->second, a[v]) << "label " << b[v] << " merged at " << v;
  }
}

class SccSuite : public ::testing::TestWithParam<std::string> {};
INSTANTIATE_TEST_SUITE_P(
    Graphs, SccSuite,
    ::testing::ValuesIn(gbbs::testing::directed_suite_names()));

TEST_P(SccSuite, MatchesTarjan) {
  auto g = gbbs::testing::make_directed(GetParam());
  auto got = gbbs::scc(g);
  auto expected = gbbs::seq::scc(g);
  expect_same_partition(got.labels, expected);
}

TEST_P(SccSuite, OptionCombinationsAgree) {
  auto g = gbbs::testing::make_directed(GetParam());
  auto expected = gbbs::seq::scc(g);
  for (bool trim : {false, true}) {
    for (bool pivot : {false, true}) {
      gbbs::scc_options o;
      o.trim = trim;
      o.single_pivot = pivot;
      o.rng = parlib::random(17);
      auto got = gbbs::scc(g, o);
      expect_same_partition(got.labels, expected);
    }
  }
}

TEST_P(SccSuite, BetaAndSeedsAgree) {
  auto g = gbbs::testing::make_directed(GetParam());
  auto expected = gbbs::seq::scc(g);
  for (double beta : {1.1, 2.0, 4.0}) {
    gbbs::scc_options o;
    o.beta = beta;
    o.rng = parlib::random(static_cast<std::uint64_t>(beta * 100));
    expect_same_partition(gbbs::scc(g, o).labels, expected);
  }
}

TEST(Scc, DirectedCycleIsOneScc) {
  auto g = gbbs::testing::make_directed("dicycle");
  auto got = gbbs::scc(g);
  for (std::size_t v = 1; v < got.labels.size(); ++v) {
    ASSERT_EQ(got.labels[v], got.labels[0]);
  }
}

TEST(Scc, DagIsAllSingletons) {
  auto g = gbbs::testing::make_directed("dag");
  auto got = gbbs::scc(g);
  std::unordered_map<vertex_id, int> counts;
  for (auto l : got.labels) counts[l]++;
  for (const auto& [l, c] : counts) ASSERT_EQ(c, 1);
}

TEST(Scc, TwoCyclesJoinedByOneWayEdge) {
  // Cycle A: 0->1->2->0; cycle B: 3->4->5->3; bridge 2->3.
  std::vector<gbbs::edge<gbbs::empty_weight>> edges = {
      {0, 1, {}}, {1, 2, {}}, {2, 0, {}},
      {3, 4, {}}, {4, 5, {}}, {5, 3, {}},
      {2, 3, {}}};
  auto g = gbbs::build_asymmetric_graph<gbbs::empty_weight>(6, edges);
  auto got = gbbs::scc(g);
  EXPECT_EQ(got.labels[0], got.labels[1]);
  EXPECT_EQ(got.labels[1], got.labels[2]);
  EXPECT_EQ(got.labels[3], got.labels[4]);
  EXPECT_EQ(got.labels[4], got.labels[5]);
  EXPECT_NE(got.labels[0], got.labels[3]);
}

TEST(Scc, CompressedMatchesUncompressed) {
  auto g = gbbs::testing::make_directed("rmat_dir");
  auto cg = gbbs::compressed_graph<gbbs::empty_weight>::compress(g);
  auto a = gbbs::scc(g, {.rng = parlib::random(5)});
  auto b = gbbs::scc(cg, {.rng = parlib::random(5)});
  expect_same_partition(a.labels, b.labels);
}

TEST(Scc, EmptyAndSingletonGraphs) {
  auto empty = gbbs::build_asymmetric_graph<gbbs::empty_weight>(0, {});
  EXPECT_TRUE(gbbs::scc(empty).labels.empty());
  auto lone = gbbs::build_asymmetric_graph<gbbs::empty_weight>(3, {});
  auto got = gbbs::scc(lone);
  ASSERT_EQ(got.labels.size(), 3u);
  EXPECT_NE(got.labels[0], got.labels[1]);
  EXPECT_NE(got.labels[1], got.labels[2]);
}

TEST(Scc, GiantSccPlusTail) {
  // A big cycle with a long tail hanging off it (exercises single-pivot +
  // trimming together).
  std::vector<gbbs::edge<gbbs::empty_weight>> edges;
  const vertex_id cyc = 300, tail = 100;
  for (vertex_id i = 0; i < cyc; ++i) edges.push_back({i, (i + 1) % cyc, {}});
  for (vertex_id i = 0; i < tail; ++i) {
    edges.push_back({cyc + i == cyc ? 0 : cyc + i - 1, cyc + i, {}});
  }
  auto g = gbbs::build_asymmetric_graph<gbbs::empty_weight>(cyc + tail,
                                                            edges);
  auto got = gbbs::scc(g);
  auto expected = gbbs::seq::scc(g);
  expect_same_partition(got.labels, expected);
}

}  // namespace
