// Tests for CSR construction: sorting, dedup, self-loop removal,
// symmetrization, in-CSR transposition, pack_out, filter_graph.
#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/graph_builder.h"
#include "parlib/atomics.h"
#include "parlib/random.h"

namespace {

using gbbs::edge;
using gbbs::empty_weight;
using gbbs::vertex_id;

TEST(GraphBuild, TinyDirected) {
  std::vector<edge<empty_weight>> edges = {
      {0, 1, {}}, {0, 2, {}}, {1, 2, {}}, {2, 0, {}}};
  auto g = gbbs::build_asymmetric_graph<empty_weight>(3, edges);
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_FALSE(g.symmetric());
  EXPECT_EQ(g.out_degree(0), 2u);
  EXPECT_EQ(g.out_degree(1), 1u);
  EXPECT_EQ(g.out_degree(2), 1u);
  EXPECT_EQ(g.in_degree(0), 1u);
  EXPECT_EQ(g.in_degree(2), 2u);
  auto n0 = g.out_neighbors(0);
  EXPECT_EQ(std::vector<vertex_id>(n0.begin(), n0.end()),
            (std::vector<vertex_id>{1, 2}));
}

TEST(GraphBuild, RemovesSelfLoopsAndDuplicates) {
  std::vector<edge<empty_weight>> edges = {
      {0, 1, {}}, {0, 1, {}}, {1, 1, {}}, {1, 0, {}}, {2, 2, {}}};
  auto g = gbbs::build_asymmetric_graph<empty_weight>(3, edges);
  EXPECT_EQ(g.num_edges(), 2u);  // (0,1) and (1,0)
  EXPECT_EQ(g.out_degree(2), 0u);
}

TEST(GraphBuild, SymmetrizeAddsReverseEdges) {
  std::vector<edge<empty_weight>> edges = {{0, 1, {}}, {1, 2, {}}};
  auto g = gbbs::build_symmetric_graph<empty_weight>(3, edges);
  EXPECT_TRUE(g.symmetric());
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_EQ(g.out_degree(1), 2u);
  EXPECT_EQ(g.in_degree(1), 2u);  // aliases out
}

TEST(GraphBuild, AdjacencyIsSorted) {
  auto g = gbbs::rmat_symmetric(10, 8000, 42);
  for (vertex_id v = 0; v < g.num_vertices(); ++v) {
    auto nghs = g.out_neighbors(v);
    for (std::size_t j = 1; j < nghs.size(); ++j) {
      ASSERT_LT(nghs[j - 1], nghs[j]) << "vertex " << v;
    }
  }
}

TEST(GraphBuild, SymmetricGraphHasMatchingReverseEdges) {
  auto g = gbbs::rmat_symmetric(9, 4000, 7);
  for (vertex_id v = 0; v < g.num_vertices(); ++v) {
    for (vertex_id u : g.out_neighbors(v)) {
      auto nghs = g.out_neighbors(u);
      ASSERT_TRUE(std::binary_search(nghs.begin(), nghs.end(), v))
          << "missing reverse of (" << v << "," << u << ")";
    }
  }
}

TEST(GraphBuild, InCsrIsTransposeOfOutCsr) {
  auto g = gbbs::rmat_directed(9, 4000, 11);
  std::set<std::pair<vertex_id, vertex_id>> out_edges, in_edges;
  for (vertex_id v = 0; v < g.num_vertices(); ++v) {
    for (vertex_id u : g.out_neighbors(v)) out_edges.insert({v, u});
    for (vertex_id u : g.in_neighbors(v)) in_edges.insert({u, v});
  }
  EXPECT_EQ(out_edges, in_edges);
}

TEST(GraphBuild, WeightsFollowEdgesThroughBuild) {
  std::vector<edge<std::uint32_t>> edges = {
      {0, 1, 10}, {1, 2, 20}, {0, 2, 30}};
  auto g = gbbs::build_symmetric_graph<std::uint32_t>(3, edges);
  // Edge (1,0) must carry weight 10, (2,0) weight 30, (2,1) weight 20.
  bool found = false;
  g.map_out_neighbors_early_exit(2, [&](vertex_id, vertex_id ngh, std::uint32_t w) {
    if (ngh == 0) {
      EXPECT_EQ(w, 30u);
      found = true;
    }
    if (ngh == 1) {
      EXPECT_EQ(w, 20u);
    }
    return true;
  });
  EXPECT_TRUE(found);
}

TEST(GraphBuild, EdgesRoundTrip) {
  auto g = gbbs::rmat_directed(8, 2000, 3);
  auto edges = g.edges();
  ASSERT_EQ(edges.size(), g.num_edges());
  auto g2 = gbbs::build_asymmetric_graph<empty_weight>(g.num_vertices(),
                                                       std::move(edges));
  EXPECT_EQ(g2.num_edges(), g.num_edges());
  for (vertex_id v = 0; v < g.num_vertices(); ++v) {
    auto a = g.out_neighbors(v);
    auto b = g2.out_neighbors(v);
    ASSERT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end()));
  }
}

TEST(GraphBuild, PackOutShrinksLiveDegree) {
  auto g = gbbs::rmat_symmetric(8, 2000, 5);
  const vertex_id v = 1;
  const auto before = g.out_degree(v);
  g.pack_out(v, [](vertex_id, vertex_id ngh, empty_weight) {
    return ngh % 2 == 0;
  });
  const auto after = g.out_degree(v);
  EXPECT_LE(after, before);
  for (vertex_id u : g.out_neighbors(v)) ASSERT_EQ(u % 2, 0u);
  // Still sorted.
  auto nghs = g.out_neighbors(v);
  EXPECT_TRUE(std::is_sorted(nghs.begin(), nghs.end()));
}

TEST(GraphBuild, FilterGraphKeepsExactlyPredicateEdges) {
  auto g = gbbs::rmat_symmetric(9, 4000, 13);
  auto filtered = gbbs::filter_graph(
      g, [](vertex_id u, vertex_id v, empty_weight) { return u < v; });
  EXPECT_EQ(filtered.num_edges(), g.num_edges() / 2);
  std::uint64_t checked = 0;
  for (vertex_id v = 0; v < filtered.num_vertices(); ++v) {
    for (vertex_id u : filtered.out_neighbors(v)) {
      ASSERT_LT(v, u);
      ++checked;
    }
  }
  EXPECT_EQ(checked, filtered.num_edges());
}

TEST(GraphBuild, MapAndReduceOutAgree) {
  auto g = gbbs::rmat_symmetric(8, 3000, 17);
  for (vertex_id v = 0; v < g.num_vertices(); v += 37) {
    std::uint64_t sum_map = 0;
    g.map_out_neighbors(v, [&](vertex_id, vertex_id ngh, empty_weight) {
      parlib::fetch_and_add<std::uint64_t>(&sum_map, ngh);
    });
    const auto sum_red = g.reduce_out(
        v,
        [](vertex_id, vertex_id ngh, empty_weight) {
          return static_cast<std::uint64_t>(ngh);
        },
        parlib::plus_monoid<std::uint64_t>());
    ASSERT_EQ(sum_map, sum_red) << v;
  }
}

TEST(GraphBuild, IntersectOutCountsCommonNeighbors) {
  // Triangle 0-1-2 plus pendant 3 attached to 0.
  std::vector<edge<empty_weight>> edges = {
      {0, 1, {}}, {1, 2, {}}, {0, 2, {}}, {0, 3, {}}};
  auto g = gbbs::build_symmetric_graph<empty_weight>(4, edges);
  EXPECT_EQ(g.intersect_out(0, 1), 1u);  // common neighbor: 2
  EXPECT_EQ(g.intersect_out(1, 2), 1u);  // common neighbor: 0
  EXPECT_EQ(g.intersect_out(0, 3), 0u);
}

TEST(GraphBuild, MapOutRangeSubsetsAdjacency) {
  auto g = gbbs::rmat_symmetric(8, 3000, 19);
  vertex_id v = 0;
  for (vertex_id u = 0; u < g.num_vertices(); ++u) {
    if (g.out_degree(u) >= 5) {
      v = u;
      break;
    }
  }
  std::vector<vertex_id> got;
  g.map_out_neighbors_range(v, 1, 4, [&](vertex_id, vertex_id ngh, empty_weight) {
    got.push_back(ngh);
  });
  auto nghs = g.out_neighbors(v);
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0], nghs[1]);
  EXPECT_EQ(got[2], nghs[3]);
}

TEST(GraphBuild, EmptyGraph) {
  auto g = gbbs::build_symmetric_graph<empty_weight>(5, {});
  EXPECT_EQ(g.num_vertices(), 5u);
  EXPECT_EQ(g.num_edges(), 0u);
  for (vertex_id v = 0; v < 5; ++v) EXPECT_EQ(g.out_degree(v), 0u);
}

TEST(GraphBuild, ZeroVertexGraph) {
  auto g = gbbs::build_symmetric_graph<empty_weight>(0, {});
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  auto d = gbbs::build_asymmetric_graph<empty_weight>(0, {});
  EXPECT_EQ(d.num_edges(), 0u);
}

TEST(GraphBuild, OutOfRangeEndpointsAreDropped) {
  // Edges touching ids >= n must not corrupt the CSR (n-growing inputs
  // belong to the dynamic subsystem; the static builder drops them).
  std::vector<edge<empty_weight>> edges = {
      {0, 1, {}}, {1, 9, {}}, {12, 0, {}}, {1, 2, {}}};
  auto g = gbbs::build_symmetric_graph<empty_weight>(3, edges);
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 4u);  // (0,1) and (1,2), both directions
  auto d = gbbs::build_asymmetric_graph<empty_weight>(3, edges);
  EXPECT_EQ(d.num_edges(), 2u);
  EXPECT_EQ(d.out_degree(0), 1u);
  EXPECT_EQ(d.out_degree(1), 1u);
}

}  // namespace
