// Tests for the work-efficient histogram of Section 5, validated against a
// sequential std::unordered_map reference on skewed and uniform keys.
#include <algorithm>
#include <cstdint>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "parlib/histogram.h"
#include "parlib/random.h"

namespace {

using KV = std::pair<std::uint32_t, std::uint64_t>;

std::unordered_map<std::uint32_t, std::uint64_t> reference(
    const std::vector<KV>& elts) {
  std::unordered_map<std::uint32_t, std::uint64_t> m;
  for (const auto& [k, v] : elts) m[k] += v;
  return m;
}

void expect_matches(const std::vector<KV>& got,
                    const std::unordered_map<std::uint32_t, std::uint64_t>&
                        expected) {
  ASSERT_EQ(got.size(), expected.size());
  for (const auto& [k, v] : got) {
    auto it = expected.find(k);
    ASSERT_NE(it, expected.end()) << "unexpected key " << k;
    ASSERT_EQ(v, it->second) << "wrong sum for key " << k;
  }
}

TEST(Histogram, Empty) {
  std::vector<KV> elts;
  auto got = parlib::histogram_by_key<std::uint32_t, std::uint64_t>(
      elts, [](auto a, auto b) { return a + b; }, 0);
  EXPECT_TRUE(got.empty());
}

TEST(Histogram, SingleKey) {
  std::vector<KV> elts(5000, {7, 2});
  auto got = parlib::histogram_by_key<std::uint32_t, std::uint64_t>(
      elts, [](auto a, auto b) { return a + b; }, 0);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].first, 7u);
  EXPECT_EQ(got[0].second, 10000u);
}

TEST(Histogram, AllDistinctKeys) {
  const std::size_t n = 30000;
  std::vector<KV> elts(n);
  for (std::size_t i = 0; i < n; ++i)
    elts[i] = {static_cast<std::uint32_t>(i), i + 1};
  auto got = parlib::histogram_by_key<std::uint32_t, std::uint64_t>(
      elts, [](auto a, auto b) { return a + b; }, 0);
  expect_matches(got, reference(elts));
}

struct SkewCase {
  std::size_t n;
  std::uint32_t key_range;
  double zipf_like;  // 0 = uniform, >0 = skewed toward low keys
};

class HistogramSkew : public ::testing::TestWithParam<SkewCase> {};

INSTANTIATE_TEST_SUITE_P(
    Distributions, HistogramSkew,
    ::testing::Values(SkewCase{1000, 10, 0.0}, SkewCase{100000, 50, 0.0},
                      SkewCase{100000, 100000, 0.0},
                      SkewCase{100000, 1000, 2.0},
                      SkewCase{200000, 100, 3.0},
                      SkewCase{50000, 7, 1.0}));

TEST_P(HistogramSkew, MatchesReference) {
  const auto& p = GetParam();
  std::vector<KV> elts(p.n);
  for (std::size_t i = 0; i < p.n; ++i) {
    const std::uint64_t h = parlib::hash64(i);
    std::uint32_t key;
    if (p.zipf_like == 0.0) {
      key = static_cast<std::uint32_t>(h % p.key_range);
    } else {
      // Skew toward key 0 by raising a uniform to a power.
      const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
      key = static_cast<std::uint32_t>(
          p.key_range * std::pow(u, p.zipf_like + 1));
      key = std::min(key, p.key_range - 1);
    }
    elts[i] = {key, h % 5};
  }
  auto got = parlib::histogram_by_key<std::uint32_t, std::uint64_t>(
      elts, [](auto a, auto b) { return a + b; }, 0);
  expect_matches(got, reference(elts));
}

TEST(Histogram, CountHelper) {
  const std::size_t n = 120000;
  std::vector<std::uint32_t> keys(n);
  for (std::size_t i = 0; i < n; ++i)
    keys[i] = static_cast<std::uint32_t>(parlib::hash64(i) % 97);
  auto got = parlib::histogram_count(keys);
  std::unordered_map<std::uint32_t, std::size_t> expected;
  for (auto k : keys) expected[k]++;
  ASSERT_EQ(got.size(), expected.size());
  for (const auto& [k, c] : got) ASSERT_EQ(c, expected[k]);
}

TEST(Histogram, MaxCombine) {
  const std::size_t n = 50000;
  std::vector<KV> elts(n);
  for (std::size_t i = 0; i < n; ++i) {
    elts[i] = {static_cast<std::uint32_t>(i % 31), parlib::hash64(i) % 1000};
  }
  auto got = parlib::histogram_by_key<std::uint32_t, std::uint64_t>(
      elts, [](auto a, auto b) { return std::max(a, b); }, 0);
  std::unordered_map<std::uint32_t, std::uint64_t> expected;
  for (const auto& [k, v] : elts)
    expected[k] = std::max(expected[k], v);
  ASSERT_EQ(got.size(), expected.size());
  for (const auto& [k, v] : got) ASSERT_EQ(v, expected[k]);
}

TEST(HistogramFilter, DropsFilteredKeys) {
  // Keep only keys whose count exceeds a threshold — the k-core use case.
  const std::size_t n = 80000;
  std::vector<KV> elts(n);
  for (std::size_t i = 0; i < n; ++i) {
    elts[i] = {static_cast<std::uint32_t>(parlib::hash64(i) % 1000), 1};
  }
  auto expected_map = reference(elts);
  auto got = parlib::histogram_filter<std::uint32_t, std::uint64_t>(
      elts, [](auto a, auto b) { return a + b; }, 0,
      [](std::uint32_t k, std::uint64_t c)
          -> std::optional<std::pair<std::uint32_t, std::uint64_t>> {
        if (c >= 90) return std::make_pair(k, c);
        return std::nullopt;
      });
  std::size_t expected_count = 0;
  for (const auto& [k, c] : expected_map)
    if (c >= 90) ++expected_count;
  ASSERT_EQ(got.size(), expected_count);
  for (const auto& [k, c] : got) {
    ASSERT_GE(c, 90u);
    ASSERT_EQ(c, expected_map[k]);
  }
}

TEST_P(HistogramSkew, SemisortVariantMatchesBlockedVariant) {
  const auto& p = GetParam();
  std::vector<KV> elts(p.n);
  for (std::size_t i = 0; i < p.n; ++i) {
    const std::uint64_t h = parlib::hash64(i * 13);
    std::uint32_t key = static_cast<std::uint32_t>(h % p.key_range);
    elts[i] = {key, h % 7};
  }
  auto expected = reference(elts);
  auto got = parlib::histogram_by_key_semisort<std::uint32_t, std::uint64_t>(
      elts, [](auto a, auto b) { return a + b; }, 0);
  expect_matches(got, expected);
  // Sorted output keys (a property the blocked variant does not guarantee).
  for (std::size_t i = 1; i < got.size(); ++i) {
    ASSERT_LT(got[i - 1].first, got[i].first);
  }
}

TEST(Histogram, HeavyAndLightMixExactness) {
  // One very heavy key (half the input) among many light ones — exercises
  // the heavy/light split specifically.
  const std::size_t n = 200000;
  std::vector<KV> elts(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (i % 2 == 0) {
      elts[i] = {12345, 1};
    } else {
      elts[i] = {static_cast<std::uint32_t>(parlib::hash64(i) % 50000), 1};
    }
  }
  auto got = parlib::histogram_by_key<std::uint32_t, std::uint64_t>(
      elts, [](auto a, auto b) { return a + b; }, 0);
  expect_matches(got, reference(elts));
}

}  // namespace
