// Tests for byte codes and the parallel-byte compressed graph: round trips,
// neighborhood primitive equivalence with the uncompressed graph, block
// boundary handling, intersection, filtering, and the compression-ratio
// property (Ligra+ / Section B).
#include <algorithm>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "graph/compression/byte_codes.h"
#include "graph/compression/compressed_graph.h"
#include "graph/generators.h"

namespace {

using gbbs::compressed_graph;
using gbbs::empty_weight;
using gbbs::vertex_id;

TEST(ByteCodes, VarintRoundTrip) {
  std::vector<std::uint64_t> values = {0, 1, 127, 128, 255, 300, 16383,
                                       16384, 1u << 20, 0xFFFFFFFFull,
                                       0xFFFFFFFFFFFFull};
  std::vector<std::uint8_t> buf;
  for (auto v : values) gbbs::bytecode::encode(buf, v);
  std::size_t pos = 0;
  for (auto v : values) {
    EXPECT_EQ(gbbs::bytecode::decode(buf.data(), pos), v);
  }
  EXPECT_EQ(pos, buf.size());
}

TEST(ByteCodes, EncodedSizeMatchesEncode) {
  for (std::uint64_t v :
       {0ull, 127ull, 128ull, 16383ull, 16384ull, (1ull << 35)}) {
    std::vector<std::uint8_t> buf;
    gbbs::bytecode::encode(buf, v);
    EXPECT_EQ(buf.size(), gbbs::bytecode::encoded_size(v)) << v;
  }
}

TEST(ByteCodes, ZigZagRoundTrip) {
  for (std::int64_t v : {0ll, 1ll, -1ll, 63ll, -64ll, 1000000ll, -1000000ll,
                         (1ll << 40), -(1ll << 40)}) {
    EXPECT_EQ(gbbs::bytecode::zigzag_decode(gbbs::bytecode::zigzag_encode(v)),
              v);
  }
}

TEST(ByteCodes, ZigZagSmallMagnitudesStaySmall) {
  EXPECT_LT(gbbs::bytecode::zigzag_encode(-3), 8u);
  EXPECT_LT(gbbs::bytecode::zigzag_encode(3), 8u);
}

template <typename G1, typename G2>
void expect_same_neighborhoods(const G1& a, const G2& b) {
  ASSERT_EQ(a.num_vertices(), b.num_vertices());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (vertex_id v = 0; v < a.num_vertices(); ++v) {
    ASSERT_EQ(a.out_degree(v), b.out_degree(v)) << v;
    std::vector<vertex_id> na, nb;
    std::vector<std::uint64_t> wa, wb;
    a.map_out_neighbors_early_exit(v, [&](vertex_id, vertex_id ngh, auto w) {
      na.push_back(ngh);
      if constexpr (!std::is_same_v<decltype(w), empty_weight>) {
        wa.push_back(w);
      }
      return true;
    });
    b.map_out_neighbors_early_exit(v, [&](vertex_id, vertex_id ngh, auto w) {
      nb.push_back(ngh);
      if constexpr (!std::is_same_v<decltype(w), empty_weight>) {
        wb.push_back(w);
      }
      return true;
    });
    ASSERT_EQ(na, nb) << v;
    ASSERT_EQ(wa, wb) << v;
  }
}

class CompressionGraphs : public ::testing::TestWithParam<int> {
 protected:
  gbbs::graph<empty_weight> make() const {
    switch (GetParam()) {
      case 0:
        return gbbs::rmat_symmetric(10, 16000, 3);  // skewed: multi-block
      case 1:
        return gbbs::torus3d_symmetric(8);
      case 2:
        return gbbs::build_symmetric_graph<empty_weight>(
            600, gbbs::star_edges(600));  // one 599-degree vertex
      case 3:
        return gbbs::build_symmetric_graph<empty_weight>(
            5, gbbs::path_edges(5));
      default:
        return gbbs::build_symmetric_graph<empty_weight>(4, {});
    }
  }
};

INSTANTIATE_TEST_SUITE_P(Shapes, CompressionGraphs,
                         ::testing::Values(0, 1, 2, 3, 4));

TEST_P(CompressionGraphs, RoundTripPreservesNeighborhoods) {
  auto g = make();
  auto cg = compressed_graph<empty_weight>::compress(g);
  expect_same_neighborhoods(g, cg);
}

TEST_P(CompressionGraphs, DecompressRoundTrip) {
  auto g = make();
  auto cg = compressed_graph<empty_weight>::compress(g);
  auto g2 = cg.decompress();
  expect_same_neighborhoods(g, g2);
}

TEST_P(CompressionGraphs, MapOutRangeMatchesUncompressed) {
  auto g = make();
  auto cg = compressed_graph<empty_weight>::compress(g);
  for (vertex_id v = 0; v < g.num_vertices(); v += 13) {
    const auto deg = g.out_degree(v);
    if (deg < 3) continue;
    const std::size_t lo = deg / 3, hi = 2 * deg / 3 + 1;
    std::vector<vertex_id> a, b;
    g.map_out_neighbors_range(v, lo, hi, [&](vertex_id, vertex_id ngh, empty_weight) {
      a.push_back(ngh);
    });
    cg.map_out_neighbors_range(v, lo, hi, [&](vertex_id, vertex_id ngh, empty_weight) {
      b.push_back(ngh);
    });
    ASSERT_EQ(a, b) << v;
  }
}

TEST_P(CompressionGraphs, IntersectMatchesUncompressed) {
  auto g = make();
  auto cg = compressed_graph<empty_weight>::compress(g);
  for (vertex_id v = 0; v + 1 < g.num_vertices(); v += 17) {
    ASSERT_EQ(g.intersect_out(v, v + 1), cg.intersect_out(v, v + 1)) << v;
  }
}

TEST(Compression, WeightedRoundTrip) {
  auto g = gbbs::rmat_symmetric_weighted(10, 16000, 5);
  auto cg = compressed_graph<std::uint32_t>::compress(g);
  expect_same_neighborhoods(g, cg);
}

TEST(Compression, DirectedGraphKeepsBothSides) {
  auto g = gbbs::rmat_directed(9, 8000, 7);
  auto cg = compressed_graph<empty_weight>::compress(g);
  ASSERT_FALSE(cg.symmetric());
  for (vertex_id v = 0; v < g.num_vertices(); v += 11) {
    ASSERT_EQ(g.in_degree(v), cg.in_degree(v));
    std::vector<vertex_id> a, b;
    g.map_in_neighbors_early_exit(v, [&](vertex_id, vertex_id ngh, empty_weight) {
      a.push_back(ngh);
      return true;
    });
    cg.map_in_neighbors_early_exit(v, [&](vertex_id, vertex_id ngh, empty_weight) {
      b.push_back(ngh);
      return true;
    });
    ASSERT_EQ(a, b) << v;
  }
}

TEST(Compression, MultiBlockVertexDecodesAcrossBoundaries) {
  // A vertex with degree well above kCompressedBlockSize.
  const vertex_id n = 2000;
  auto g = gbbs::build_symmetric_graph<empty_weight>(n, gbbs::star_edges(n));
  auto cg = compressed_graph<empty_weight>::compress(g);
  ASSERT_GT(g.out_degree(0), gbbs::kCompressedBlockSize);
  std::vector<vertex_id> got;
  cg.map_out_neighbors_early_exit(0, [&](vertex_id, vertex_id ngh, empty_weight) {
    got.push_back(ngh);
    return true;
  });
  ASSERT_EQ(got.size(), n - 1);
  for (vertex_id i = 0; i < n - 1; ++i) ASSERT_EQ(got[i], i + 1);
}

TEST(Compression, EarlyExitStopsDecoding) {
  const vertex_id n = 1000;
  auto g = gbbs::build_symmetric_graph<empty_weight>(n, gbbs::star_edges(n));
  auto cg = compressed_graph<empty_weight>::compress(g);
  std::size_t steps = 0;
  cg.map_out_neighbors_early_exit(0, [&](vertex_id, vertex_id, empty_weight) {
    return ++steps < 10;
  });
  EXPECT_EQ(steps, 10u);
}

TEST(Compression, CompressionRatioBeatsCsrOnLocalGraphs) {
  // The torus has consecutive-ish neighbor ids: compressed size must be
  // well under the CSR's 4 bytes/edge (paper: <1.5 bytes/edge on crawls).
  auto g = gbbs::torus3d_symmetric(16);
  auto cg = compressed_graph<empty_weight>::compress(g);
  const double bytes_per_edge =
      static_cast<double>(cg.size_in_bytes()) / g.num_edges();
  const double csr_bytes_per_edge =
      static_cast<double>(g.size_in_bytes()) / g.num_edges();
  EXPECT_LT(bytes_per_edge, csr_bytes_per_edge);
}

TEST(Compression, FilterKeepsPredicateEdges) {
  auto g = gbbs::rmat_symmetric(9, 8000, 9);
  auto cg = compressed_graph<empty_weight>::compress(g);
  auto fg = gbbs::filter_graph(
      cg, [](vertex_id u, vertex_id v, empty_weight) { return u < v; });
  EXPECT_EQ(fg.num_edges(), g.num_edges() / 2);
  for (vertex_id v = 0; v < fg.num_vertices(); v += 7) {
    fg.map_out_neighbors_early_exit(v, [&](vertex_id src, vertex_id ngh, empty_weight) {
      EXPECT_LT(src, ngh);
      return true;
    });
  }
}

// ---- nibble codec -------------------------------------------------------

TEST(NibbleCodec, UnitRoundTrip) {
  std::vector<std::uint8_t> buf(64, 0);
  std::size_t upos = 0;
  const std::vector<std::uint64_t> values = {0, 1, 7, 8, 63, 64, 1000,
                                             1u << 20, 0xFFFFFFFFull};
  for (auto v : values) {
    gbbs::bytecode::nibble_codec::encode_at(buf.data(), upos, v);
  }
  std::size_t rpos = 0;
  for (auto v : values) {
    EXPECT_EQ(gbbs::bytecode::nibble_codec::decode(buf.data(), rpos), v);
  }
  EXPECT_EQ(rpos, upos);
}

TEST(NibbleCodec, EncodedUnitsMatchesEncode) {
  for (std::uint64_t v : {0ull, 7ull, 8ull, 63ull, 64ull, 511ull, 512ull}) {
    std::vector<std::uint8_t> buf(32, 0);
    std::size_t upos = 0;
    gbbs::bytecode::nibble_codec::encode_at(buf.data(), upos, v);
    EXPECT_EQ(upos, gbbs::bytecode::nibble_codec::encoded_units(v)) << v;
  }
}

TEST_P(CompressionGraphs, NibbleRoundTripPreservesNeighborhoods) {
  auto g = make();
  auto cg = gbbs::nibble_compressed_graph<empty_weight>::compress(g);
  expect_same_neighborhoods(g, cg);
}

TEST(NibbleCompression, WeightedRoundTrip) {
  auto g = gbbs::rmat_symmetric_weighted(10, 16000, 5);
  auto cg = gbbs::nibble_compressed_graph<std::uint32_t>::compress(g);
  expect_same_neighborhoods(g, cg);
}

TEST(NibbleCompression, DenserThanByteOnLocalGraphs) {
  // Torus deltas are tiny: 3-bit nibble groups beat 7-bit byte groups.
  auto g = gbbs::torus3d_symmetric(16);
  auto byte_g = compressed_graph<empty_weight>::compress(g);
  auto nib_g = gbbs::nibble_compressed_graph<empty_weight>::compress(g);
  EXPECT_LT(nib_g.size_in_bytes(), byte_g.size_in_bytes());
}

TEST(NibbleCompression, AlgorithmsRunOnNibbleGraphs) {
  auto g = gbbs::rmat_symmetric(9, 8000, 13);
  auto cg = gbbs::nibble_compressed_graph<empty_weight>::compress(g);
  // Spot-check a couple of neighborhood primitives end to end.
  for (vertex_id v = 0; v + 1 < g.num_vertices(); v += 31) {
    ASSERT_EQ(g.intersect_out(v, v + 1), cg.intersect_out(v, v + 1)) << v;
  }
  auto fg = gbbs::filter_graph(
      cg, [](vertex_id u, vertex_id v, empty_weight) { return u < v; });
  EXPECT_EQ(fg.num_edges(), g.num_edges() / 2);
}

TEST(Compression, EdgesEnumerationMatches) {
  auto g = gbbs::rmat_symmetric(8, 4000, 11);
  auto cg = compressed_graph<empty_weight>::compress(g);
  auto ea = g.edges();
  auto eb = cg.edges();
  ASSERT_EQ(ea.size(), eb.size());
  for (std::size_t i = 0; i < ea.size(); ++i) {
    ASSERT_EQ(ea[i].u, eb[i].u);
    ASSERT_EQ(ea[i].v, eb[i].v);
  }
}

}  // namespace
