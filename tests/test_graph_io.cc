// Round-trip tests for the AdjacencyGraph text format and binary format.
#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/graph_io.h"

namespace {

using gbbs::vertex_id;

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

template <typename G>
void expect_same_graph(const G& a, const G& b) {
  ASSERT_EQ(a.num_vertices(), b.num_vertices());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (vertex_id v = 0; v < a.num_vertices(); ++v) {
    auto na = a.out_neighbors(v);
    auto nb = b.out_neighbors(v);
    ASSERT_EQ(na.size(), nb.size()) << v;
    for (std::size_t j = 0; j < na.size(); ++j) {
      ASSERT_EQ(na[j], nb[j]) << v << " " << j;
      ASSERT_EQ(a.out_weight(v, j), b.out_weight(v, j)) << v << " " << j;
    }
  }
}

TEST(GraphIo, AdjacencyTextRoundTripSymmetric) {
  auto g = gbbs::rmat_symmetric(8, 2000, 1);
  const auto path = temp_path("adj_sym.txt");
  gbbs::write_adjacency_graph(path, g);
  auto g2 = gbbs::read_adjacency_graph(path, /*symmetric=*/true);
  expect_same_graph(g, g2);
  std::remove(path.c_str());
}

TEST(GraphIo, AdjacencyTextRoundTripDirected) {
  auto g = gbbs::rmat_directed(8, 2000, 2);
  const auto path = temp_path("adj_dir.txt");
  gbbs::write_adjacency_graph(path, g);
  auto g2 = gbbs::read_adjacency_graph(path, /*symmetric=*/false);
  expect_same_graph(g, g2);
  // In-degrees must survive the round trip too.
  for (vertex_id v = 0; v < g.num_vertices(); ++v) {
    ASSERT_EQ(g.in_degree(v), g2.in_degree(v));
  }
  std::remove(path.c_str());
}

TEST(GraphIo, WeightedAdjacencyTextRoundTrip) {
  auto g = gbbs::rmat_symmetric_weighted(8, 2000, 3);
  const auto path = temp_path("adj_w.txt");
  gbbs::write_adjacency_graph(path, g);
  auto g2 = gbbs::read_weighted_adjacency_graph(path, /*symmetric=*/true);
  expect_same_graph(g, g2);
  std::remove(path.c_str());
}

TEST(GraphIo, BinaryRoundTripSymmetric) {
  auto g = gbbs::rmat_symmetric(9, 4000, 4);
  const auto path = temp_path("bin_sym.graph");
  gbbs::write_binary_graph(path, g);
  auto g2 = gbbs::read_binary_graph(path, /*symmetric=*/true);
  expect_same_graph(g, g2);
  std::remove(path.c_str());
}

TEST(GraphIo, BinaryRoundTripWeighted) {
  auto g = gbbs::rmat_symmetric_weighted(9, 4000, 5);
  const auto path = temp_path("bin_w.graph");
  gbbs::write_binary_graph(path, g);
  auto g2 = gbbs::read_weighted_binary_graph(path, /*symmetric=*/true);
  expect_same_graph(g, g2);
  std::remove(path.c_str());
}

TEST(GraphIo, WeightedAdjacencyTextRoundTripDirected) {
  auto g = gbbs::build_asymmetric_graph<std::uint32_t>(
      256, gbbs::with_random_weights(gbbs::erdos_renyi_edges(256, 1500, 7),
                                     31, 8));
  const auto path = temp_path("adj_w_dir.txt");
  gbbs::write_adjacency_graph(path, g);
  auto g2 = gbbs::read_weighted_adjacency_graph(path, /*symmetric=*/false);
  expect_same_graph(g, g2);
  for (vertex_id v = 0; v < g.num_vertices(); ++v) {
    ASSERT_EQ(g.in_degree(v), g2.in_degree(v));
  }
  std::remove(path.c_str());
}

TEST(GraphIo, BinaryRoundTripDirected) {
  auto g = gbbs::rmat_directed(9, 4000, 9);
  const auto path = temp_path("bin_dir.graph");
  gbbs::write_binary_graph(path, g);
  auto g2 = gbbs::read_binary_graph(path, /*symmetric=*/false);
  expect_same_graph(g, g2);
  // The in-CSR is rebuilt on read; it must transpose the same out-CSR.
  for (vertex_id v = 0; v < g.num_vertices(); ++v) {
    ASSERT_EQ(g.in_degree(v), g2.in_degree(v)) << v;
    auto na = g.in_neighbors(v);
    auto nb = g2.in_neighbors(v);
    for (std::size_t j = 0; j < na.size(); ++j) ASSERT_EQ(na[j], nb[j]);
  }
  std::remove(path.c_str());
}

TEST(GraphIo, BinaryRoundTripWeightedDirected) {
  auto g = gbbs::build_asymmetric_graph<std::uint32_t>(
      512, gbbs::with_random_weights(gbbs::erdos_renyi_edges(512, 3000, 11),
                                     63, 12));
  const auto path = temp_path("bin_w_dir.graph");
  gbbs::write_binary_graph(path, g);
  auto g2 = gbbs::read_weighted_binary_graph(path, /*symmetric=*/false);
  expect_same_graph(g, g2);
  std::remove(path.c_str());
}

TEST(GraphIo, EmptyGraphRoundTrips) {
  auto g = gbbs::build_symmetric_graph<gbbs::empty_weight>(16, {});
  const auto text = temp_path("empty.txt");
  gbbs::write_adjacency_graph(text, g);
  auto g2 = gbbs::read_adjacency_graph(text, /*symmetric=*/true);
  expect_same_graph(g, g2);
  std::remove(text.c_str());
  const auto bin = temp_path("empty.graph");
  gbbs::write_binary_graph(bin, g);
  auto g3 = gbbs::read_binary_graph(bin, /*symmetric=*/true);
  expect_same_graph(g, g3);
  std::remove(bin.c_str());
}

TEST(GraphIo, MissingFileThrows) {
  EXPECT_THROW(gbbs::read_adjacency_graph("/nonexistent/nowhere.txt", true),
               std::runtime_error);
  EXPECT_THROW(gbbs::read_binary_graph("/nonexistent/nowhere.bin", true),
               std::runtime_error);
}

TEST(GraphIo, WrongHeaderThrows) {
  const auto path = temp_path("bad_header.txt");
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    std::fputs("NotAGraph\n3\n0\n", f);
    std::fclose(f);
  }
  EXPECT_THROW(gbbs::read_adjacency_graph(path, true), std::runtime_error);
  std::remove(path.c_str());
}

TEST(GraphIo, WeightednessMismatchThrows) {
  auto g = gbbs::rmat_symmetric(7, 500, 6);
  const auto path = temp_path("bin_mismatch.graph");
  gbbs::write_binary_graph(path, g);
  EXPECT_THROW(gbbs::read_weighted_binary_graph(path, true),
               std::runtime_error);
  std::remove(path.c_str());
}

}  // namespace
