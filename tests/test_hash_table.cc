// Tests for the phase-concurrent hash tables (set + SCC reachability
// multimap), including concurrent insertion races.
#include <algorithm>
#include <cstdint>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "parlib/hash_table.h"
#include "parlib/parallel.h"
#include "parlib/random.h"

namespace {

TEST(ConcurrentSet, InsertAndContains) {
  parlib::concurrent_set s(100);
  EXPECT_TRUE(s.insert(5));
  EXPECT_FALSE(s.insert(5));
  EXPECT_TRUE(s.contains(5));
  EXPECT_FALSE(s.contains(6));
}

TEST(ConcurrentSet, ParallelInsertDedupes) {
  const std::size_t n = 100000, distinct = 5000;
  parlib::concurrent_set s(distinct);
  std::vector<std::size_t> inserted(n);
  parlib::parallel_for(0, n, [&](std::size_t i) {
    inserted[i] = s.insert(parlib::hash64(i % distinct) | 1) ? 1 : 0;
  });
  std::size_t total = 0;
  for (auto x : inserted) total += x;
  EXPECT_EQ(total, distinct);
  EXPECT_EQ(s.entries().size(), distinct);
}

TEST(ConcurrentSet, EntriesMatchInsertedValues) {
  parlib::concurrent_set s(1000);
  std::set<std::uint64_t> expected;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    const std::uint64_t v = parlib::hash64(i);
    s.insert(v);
    expected.insert(v);
  }
  auto entries = s.entries();
  std::set<std::uint64_t> got(entries.begin(), entries.end());
  EXPECT_EQ(got, expected);
}

TEST(ConcurrentSet, ZeroIsAValidElement) {
  parlib::concurrent_set s(10);
  EXPECT_FALSE(s.contains(0));
  EXPECT_TRUE(s.insert(0));
  EXPECT_TRUE(s.contains(0));
  EXPECT_FALSE(s.insert(0));
}

TEST(ReachabilityTable, InsertContains) {
  parlib::reachability_table t(100);
  EXPECT_TRUE(t.insert(3, 7));
  EXPECT_FALSE(t.insert(3, 7));
  EXPECT_TRUE(t.insert(3, 9));
  EXPECT_TRUE(t.contains(3, 7));
  EXPECT_TRUE(t.contains(3, 9));
  EXPECT_FALSE(t.contains(3, 8));
  EXPECT_FALSE(t.contains(4, 7));
}

TEST(ReachabilityTable, ForEachLabelFindsAllOfVertex) {
  parlib::reachability_table t(1000);
  // Vertex 42 gets labels {1..20}; decoys on other vertices share hashes.
  for (std::uint32_t c = 1; c <= 20; ++c) t.insert(42, c);
  for (std::uint32_t v = 0; v < 100; ++v)
    if (v != 42) t.insert(v, 99);
  std::set<std::uint32_t> got;
  t.for_each_label(42, [&](std::uint32_t c) { got.insert(c); });
  ASSERT_EQ(got.size(), 20u);
  for (std::uint32_t c = 1; c <= 20; ++c) ASSERT_TRUE(got.count(c));
  EXPECT_EQ(t.count_labels(42), 20u);
  EXPECT_EQ(t.count_labels(7), 1u);
}

TEST(ReachabilityTable, ParallelMultiLabelInsert) {
  const std::size_t verts = 2000, labels_per = 8;
  parlib::reachability_table t(verts * labels_per);
  parlib::parallel_for(0, verts * labels_per, [&](std::size_t i) {
    const auto v = static_cast<std::uint32_t>(i / labels_per);
    const auto c = static_cast<std::uint32_t>(i % labels_per);
    t.insert(v, c);
  });
  for (std::uint32_t v = 0; v < verts; v += 97) {
    ASSERT_EQ(t.count_labels(v), labels_per) << v;
  }
  EXPECT_EQ(t.entries().size(), verts * labels_per);
}

TEST(ReachabilityTable, DuplicateRaceInsertsOnce) {
  // Many threads inserting the same pair: exactly one reported insertion.
  for (int trial = 0; trial < 5; ++trial) {
    parlib::reachability_table t(64);
    std::vector<std::size_t> won(512);
    parlib::parallel_for(
        0, won.size(),
        [&](std::size_t i) { won[i] = t.insert(11, 22) ? 1 : 0; }, 1);
    std::size_t total = 0;
    for (auto w : won) total += w;
    ASSERT_EQ(total, 1u);
    ASSERT_EQ(t.count_labels(11), 1u);
  }
}

TEST(NextPowerOfTwo, Basics) {
  EXPECT_EQ(parlib::next_power_of_two(1), 1u);
  EXPECT_EQ(parlib::next_power_of_two(2), 2u);
  EXPECT_EQ(parlib::next_power_of_two(3), 4u);
  EXPECT_EQ(parlib::next_power_of_two(1000), 1024u);
  EXPECT_EQ(parlib::next_power_of_two(1024), 1024u);
}

}  // namespace
