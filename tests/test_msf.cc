// MSF vs Kruskal: total weight equality (the MSF invariant), forest
// validity, filtering vs plain Boruvka agreement.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "algorithms/msf.h"
#include "parlib/union_find.h"
#include "seq/reference.h"
#include "test_graphs.h"

namespace {

using gbbs::vertex_id;

class MsfSuite : public ::testing::TestWithParam<std::string> {};
INSTANTIATE_TEST_SUITE_P(
    Graphs, MsfSuite,
    ::testing::ValuesIn(gbbs::testing::symmetric_suite_names()));

TEST_P(MsfSuite, TotalWeightMatchesKruskal) {
  auto g = gbbs::testing::make_symmetric_weighted(GetParam());
  auto res = gbbs::msf(g);
  auto edges = g.edges();
  auto half = parlib::filter(edges, [](const auto& e) { return e.u < e.v; });
  const auto expected = gbbs::seq::msf_weight(g.num_vertices(), half);
  EXPECT_EQ(res.total_weight, expected) << GetParam();
}

TEST_P(MsfSuite, ForestIsSpanningAndAcyclic) {
  auto g = gbbs::testing::make_symmetric_weighted(GetParam());
  auto res = gbbs::msf(g);
  // Acyclic + edge count = n - #components.
  parlib::union_find uf(g.num_vertices());
  for (const auto& e : res.forest) {
    ASSERT_TRUE(uf.unite(e.u, e.v)) << "cycle";
    // Edge exists in g with this weight.
    bool found = false;
    g.map_out_neighbors_early_exit(e.u, [&](vertex_id, vertex_id ngh, std::uint32_t w) {
      if (ngh == e.v && w == e.w) found = true;
      return ngh < e.v;  // sorted adjacency: stop once past
    });
    ASSERT_TRUE(found) << e.u << "-" << e.v;
  }
  auto cc = gbbs::seq::connectivity(g);
  std::set<vertex_id> comps(cc.begin(), cc.end());
  EXPECT_EQ(res.forest.size(), g.num_vertices() - comps.size());
  // Spanning: forest connects whatever g connects.
  for (vertex_id v = 0; v < g.num_vertices(); ++v) {
    for (vertex_id u : g.out_neighbors(v)) {
      ASSERT_TRUE(uf.same_set(v, u));
    }
  }
}

TEST_P(MsfSuite, FilteredAndPlainBoruvkaAgree) {
  auto g = gbbs::testing::make_symmetric_weighted(GetParam(), 9);
  auto filtered = gbbs::msf(g, /*use_filtering=*/true);
  auto plain = gbbs::msf(g, /*use_filtering=*/false);
  EXPECT_EQ(filtered.total_weight, plain.total_weight);
  EXPECT_EQ(filtered.forest.size(), plain.forest.size());
}

TEST(Msf, UniqueWeightsGiveUniqueForest) {
  // With all-distinct weights the MSF is unique: compare edge sets.
  std::vector<gbbs::edge<std::uint32_t>> edges;
  const vertex_id n = 64;
  std::uint32_t w = 1;
  for (vertex_id i = 0; i < n; ++i) {
    for (vertex_id j = i + 1; j < n; j += 3) {
      edges.push_back({i, j, w});
      w += 7;
    }
  }
  auto g = gbbs::build_symmetric_graph<std::uint32_t>(n, edges);
  auto res = gbbs::msf(g);
  // Kruskal reference edge set.
  auto flat = g.edges();
  auto half = parlib::filter(flat, [](const auto& e) { return e.u < e.v; });
  std::sort(half.begin(), half.end(),
            [](const auto& a, const auto& b) { return a.w < b.w; });
  parlib::union_find uf(n);
  std::set<std::pair<vertex_id, vertex_id>> expected;
  for (const auto& e : half) {
    if (uf.unite(e.u, e.v)) expected.insert({e.u, e.v});
  }
  std::set<std::pair<vertex_id, vertex_id>> got;
  for (const auto& e : res.forest) {
    got.insert({std::min(e.u, e.v), std::max(e.u, e.v)});
  }
  EXPECT_EQ(got, expected);
}

TEST(Msf, PathUsesAllEdges) {
  auto base = gbbs::path_edges(40);
  auto g = gbbs::build_symmetric_graph<std::uint32_t>(
      40, gbbs::with_random_weights(base, 10, 3));
  auto res = gbbs::msf(g);
  EXPECT_EQ(res.forest.size(), 39u);
}

TEST(Msf, EmptyGraph) {
  auto g = gbbs::build_symmetric_graph<std::uint32_t>(10, {});
  auto res = gbbs::msf(g);
  EXPECT_TRUE(res.forest.empty());
  EXPECT_EQ(res.total_weight, 0u);
}

TEST(Msf, FilterStepsReduceBoruvkaInput) {
  auto g = gbbs::testing::make_symmetric_weighted("rmat", 13);
  auto res = gbbs::msf(g, true);
  EXPECT_GT(res.num_filter_steps, 0u);  // rmat has m >> 3n
}

}  // namespace
