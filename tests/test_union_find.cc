// Tests for concurrent union-find, including parallel unite storms.
#include <cstdint>
#include <numeric>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "parlib/parallel.h"
#include "parlib/random.h"
#include "parlib/union_find.h"

namespace {

TEST(UnionFind, InitiallyAllSingletons) {
  parlib::union_find uf(10);
  for (std::uint32_t i = 0; i < 10; ++i) {
    for (std::uint32_t j = i + 1; j < 10; ++j) {
      ASSERT_FALSE(uf.same_set(i, j));
    }
  }
}

TEST(UnionFind, UniteJoins) {
  parlib::union_find uf(5);
  EXPECT_TRUE(uf.unite(0, 1));
  EXPECT_FALSE(uf.unite(1, 0));
  EXPECT_TRUE(uf.same_set(0, 1));
  EXPECT_FALSE(uf.same_set(0, 2));
  EXPECT_TRUE(uf.unite(2, 3));
  EXPECT_TRUE(uf.unite(0, 3));
  EXPECT_TRUE(uf.same_set(1, 2));
}

TEST(UnionFind, ChainCollapsesToOne) {
  const std::size_t n = 100000;
  parlib::union_find uf(n);
  parlib::parallel_for(0, n - 1, [&](std::size_t i) {
    uf.unite(static_cast<std::uint32_t>(i), static_cast<std::uint32_t>(i + 1));
  });
  auto labels = uf.labels();
  for (auto l : labels) ASSERT_EQ(l, labels[0]);
}

TEST(UnionFind, ParallelRandomUnionsMatchSequential) {
  const std::size_t n = 20000, edges = 30000;
  parlib::union_find uf(n);
  parlib::parallel_for(0, edges, [&](std::size_t i) {
    const auto u = static_cast<std::uint32_t>(parlib::hash64(2 * i) % n);
    const auto v = static_cast<std::uint32_t>(parlib::hash64(2 * i + 1) % n);
    uf.unite(u, v);
  });
  // Sequential reference.
  std::vector<std::uint32_t> parent(n);
  std::iota(parent.begin(), parent.end(), 0);
  std::function<std::uint32_t(std::uint32_t)> find =
      [&](std::uint32_t x) -> std::uint32_t {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (std::size_t i = 0; i < edges; ++i) {
    const auto u = static_cast<std::uint32_t>(parlib::hash64(2 * i) % n);
    const auto v = static_cast<std::uint32_t>(parlib::hash64(2 * i + 1) % n);
    parent[find(u)] = find(v);
  }
  auto labels = uf.labels();
  // Same partition: labels agree iff reference roots agree.
  for (std::size_t i = 0; i < n; i += 7) {
    for (std::size_t j = i + 1; j < n; j += 131) {
      ASSERT_EQ(labels[i] == labels[j],
                find(static_cast<std::uint32_t>(i)) ==
                    find(static_cast<std::uint32_t>(j)))
          << i << "," << j;
    }
  }
}

TEST(UnionFind, LabelsAreCanonicalRoots) {
  parlib::union_find uf(100);
  for (std::uint32_t i = 0; i < 50; ++i) uf.unite(i, i + 50);
  auto labels = uf.labels();
  std::set<std::uint32_t> roots(labels.begin(), labels.end());
  EXPECT_EQ(roots.size(), 50u);
  for (auto r : roots) EXPECT_EQ(labels[r], r);  // root labels itself
}

}  // namespace
