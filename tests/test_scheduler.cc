// Tests for the work-stealing fork-join scheduler: the lock-free
// Chase-Lev deques, external-thread worker registration, the unregistered
// sentinel contract, and their interplay with active_workers_guard. Runs
// in the TSan CI job — the deque orderings use seq_cst accesses at the
// Dekker points precisely so TSan models them exactly.
#include <atomic>
#include <cstdint>
#include <numeric>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "parlib/counters.h"
#include "parlib/parallel.h"
#include "parlib/scheduler.h"
#include "serve/query.h"
#include "serve/query_engine.h"
#include "serve/snapshot_manager.h"

namespace {

// Force a multi-worker scheduler even on 1-core CI hosts, so the deque
// code paths (push/pop_if/steal) actually execute. Static-initializer
// order within the test binary guarantees this runs before the first
// scheduler::instance() call.
struct force_workers {
  force_workers() { parlib::scheduler::set_num_workers(4); }
};
const force_workers kForceWorkers;

TEST(Scheduler, ReportsConfiguredWorkers) {
  EXPECT_EQ(parlib::num_workers(), 4u);
  EXPECT_GE(parlib::num_active_workers(), 1u);
  EXPECT_LE(parlib::num_active_workers(), parlib::num_workers());
  EXPECT_EQ(parlib::scheduler::instance().max_slots(),
            4u + parlib::scheduler::kMaxExternalWorkers);
}

TEST(Scheduler, MainThreadIsWorkerZero) {
  EXPECT_EQ(parlib::worker_id(), 0u);
  EXPECT_TRUE(parlib::scheduler::instance().is_registered());
  EXPECT_EQ(parlib::worker_slot(), 0u);
}

TEST(Scheduler, ParDoRunsBothBranches) {
  int a = 0, b = 0;
  parlib::par_do([&] { a = 1; }, [&] { b = 2; });
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, 2);
}

TEST(Scheduler, ParDoNestedCompletesAll) {
  std::atomic<int> count{0};
  parlib::par_do(
      [&] {
        parlib::par_do([&] { count++; }, [&] { count++; });
      },
      [&] {
        parlib::par_do([&] { count++; }, [&] { count++; });
      });
  EXPECT_EQ(count.load(), 4);
}

// Fibonacci via fork-join: a classic stress test of nested par_do with many
// joins, some of which are stolen.
std::uint64_t fib(int n) {
  if (n < 2) return n;
  std::uint64_t a = 0, b = 0;
  parlib::par_do_if(n > 12, [&] { a = fib(n - 1); }, [&] { b = fib(n - 2); });
  if (n <= 12) {
    a = fib(n - 1);
    b = fib(n - 2);
    return a + b;
  }
  return a + b;
}

TEST(Scheduler, ForkJoinFibonacci) { EXPECT_EQ(fib(28), 317811u); }

TEST(Scheduler, ParallelForCoversEveryIndexExactlyOnce) {
  const std::size_t n = 100000;
  std::vector<std::atomic<int>> hits(n);
  parlib::parallel_for(0, n, [&](std::size_t i) { hits[i]++; });
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(hits[i].load(), 1) << i;
}

TEST(Scheduler, ParallelForEmptyAndSingleton) {
  std::atomic<int> count{0};
  parlib::parallel_for(5, 5, [&](std::size_t) { count++; });
  EXPECT_EQ(count.load(), 0);
  parlib::parallel_for(7, 8, [&](std::size_t i) {
    EXPECT_EQ(i, 7u);
    count++;
  });
  EXPECT_EQ(count.load(), 1);
}

TEST(Scheduler, ParallelForExplicitGranularity) {
  const std::size_t n = 4097;
  std::vector<int> hits(n, 0);
  parlib::parallel_for(0, n, [&](std::size_t i) { hits[i]++; }, 13);
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0),
            static_cast<int>(n));
}

TEST(Scheduler, ActiveWorkersGuardRestores) {
  const std::size_t before = parlib::num_active_workers();
  {
    parlib::active_workers_guard g(1);
    EXPECT_EQ(parlib::num_active_workers(), 1u);
    // Sequential mode still computes correctly (non-atomic sum is safe:
    // with one active worker par_do runs inline on this thread).
    std::vector<int> v(1000, 1);
    int sum = 0;
    parlib::parallel_for(0, v.size(), [&](std::size_t i) { sum += v[i]; });
    EXPECT_EQ(sum, 1000);
  }
  EXPECT_EQ(parlib::num_active_workers(), before);
}

TEST(Scheduler, SkewedWorkIsBalanced) {
  // A loop where one iteration is vastly more expensive must still finish.
  const std::size_t n = 64;
  std::vector<std::uint64_t> out(n);
  parlib::parallel_for(
      0, n,
      [&](std::size_t i) {
        std::uint64_t acc = 0;
        const std::size_t reps = (i == 0) ? 2000000 : 100;
        for (std::size_t r = 0; r < reps; ++r) acc += r * r + i;
        out[i] = acc;
      },
      1);
  EXPECT_GT(out[0], out[1]);
}

// ---- external-worker registration -----------------------------------------

TEST(Scheduler, UnregisteredThreadHasSentinelIdAndRunsInline) {
  std::size_t id = 0;
  std::size_t slot = 0;
  bool registered = true;
  std::uint64_t fallback_delta = 0;
  int sum = 0;
  std::thread th([&] {
    auto& c = parlib::event_counters::global().sched_unregistered_pardos;
    const std::uint64_t before = c.load();
    id = parlib::worker_id();
    slot = parlib::worker_slot();
    registered = parlib::scheduler::instance().is_registered();
    // par_do from an unregistered thread runs inline-sequentially, so a
    // non-atomic accumulator is safe by contract.
    parlib::par_do([&] { sum += 1; }, [&] { sum += 2; });
    parlib::parallel_for(0, 100, [&](std::size_t) { sum += 1; });
    fallback_delta = c.load() - before;
  });
  th.join();
  EXPECT_EQ(id, parlib::scheduler::kNoWorker);
  EXPECT_FALSE(registered);
  // Unregistered threads share the final overflow slot.
  EXPECT_EQ(slot, parlib::scheduler::instance().max_slots());
  EXPECT_LT(slot, parlib::max_worker_slots());
  EXPECT_EQ(sum, 103);
  EXPECT_GE(fallback_delta, 1u);  // at least the bare par_do was counted
}

TEST(Scheduler, WorkerGuardClaimsAndReleasesExternalSlot) {
  auto& sched = parlib::scheduler::instance();
  std::size_t slot1 = 0, slot2 = 0;
  std::thread th([&] {
    {
      parlib::worker_guard g;
      ASSERT_TRUE(g.registered());
      slot1 = g.slot();
      EXPECT_EQ(parlib::worker_id(), slot1);
      EXPECT_GE(slot1, sched.num_workers());
      EXPECT_LT(slot1, sched.max_slots());
    }
    EXPECT_EQ(parlib::worker_id(), parlib::scheduler::kNoWorker);
    {
      // Freed slots are reusable (same thread, fresh guard).
      parlib::worker_guard g;
      ASSERT_TRUE(g.registered());
      slot2 = g.slot();
    }
  });
  th.join();
  EXPECT_GE(slot2, sched.num_workers());
}

TEST(Scheduler, WorkerGuardIsNoOpOnNativeWorker) {
  // Main thread is worker 0; a guard must not unregister it.
  {
    parlib::worker_guard g;
    EXPECT_TRUE(g.registered());
    EXPECT_EQ(g.slot(), 0u);
  }
  EXPECT_EQ(parlib::worker_id(), 0u);
  EXPECT_TRUE(parlib::scheduler::instance().is_registered());
}

TEST(Scheduler, ExternalForksLandOnOwnDequeNotDequeZero) {
  auto& sched = parlib::scheduler::instance();
  const std::uint64_t deque0_before = sched.push_count(0);
  std::uint64_t own_delta = 0;
  std::size_t slot = 0;
  std::vector<std::atomic<int>> hits(20000);
  std::thread th([&] {
    parlib::worker_guard g;
    ASSERT_TRUE(g.registered());
    slot = g.slot();
    const std::uint64_t own_before = sched.push_count(slot);
    parlib::parallel_for(0, hits.size(),
                         [&](std::size_t i) { hits[i]++; }, 1);
    own_delta = sched.push_count(slot) - own_before;
  });
  th.join();
  for (auto& h : hits) ASSERT_EQ(h.load(), 1);
  // The registered thread forked onto its own deque; the main thread
  // (worker 0) was idle, so deque 0 saw none of these forks.
  EXPECT_GT(own_delta, 0u);
  EXPECT_EQ(sched.push_count(0), deque0_before);
}

TEST(Scheduler, NestedParDoUnderConcurrentExternalWorkers) {
  constexpr int kThreads = 4;
  std::vector<std::uint64_t> fibs(kThreads, 0);
  std::vector<std::uint64_t> sums(kThreads, 0);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      parlib::worker_guard g;
      fibs[t] = fib(24);
      std::vector<std::uint64_t> v(50000);
      parlib::parallel_for(0, v.size(),
                           [&](std::size_t i) { v[i] = i; });
      std::uint64_t s = 0;
      for (auto x : v) s += x;
      sums[t] = s;
    });
  }
  // The main thread works too — native and external forks interleave.
  const std::uint64_t main_fib = fib(24);
  for (auto& th : threads) th.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(fibs[t], 46368u);
    EXPECT_EQ(sums[t], 50000ull * 49999 / 2);
  }
  EXPECT_EQ(main_fib, 46368u);
}

TEST(Scheduler, RegistrationChurnUnderLoad) {
  constexpr int kThreads = 6;
  constexpr int kRounds = 100;
  std::atomic<std::uint64_t> total{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int r = 0; r < kRounds; ++r) {
        parlib::worker_guard g;
        ASSERT_TRUE(g.registered());
        std::uint64_t local = 0;
        parlib::parallel_for(
            0, 256, [&](std::size_t i) { local += i; }, 256);
        total.fetch_add(local, std::memory_order_relaxed);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(total.load(), std::uint64_t{kThreads} * kRounds * 255 * 128);
}

TEST(Scheduler, ActiveWorkersGuardForcesExternalWorkersInline) {
  parlib::active_workers_guard guard(1);
  auto& sched = parlib::scheduler::instance();
  std::uint64_t own_delta = 1;
  int sum = 0;
  std::thread th([&] {
    parlib::worker_guard g;
    ASSERT_TRUE(g.registered());
    const std::uint64_t before = sched.push_count(g.slot());
    // active == 1: par_do inlines for external workers too, so nothing is
    // pushed and the non-atomic accumulator is safe.
    parlib::parallel_for(0, 1000, [&](std::size_t) { ++sum; });
    own_delta = sched.push_count(g.slot()) - before;
  });
  th.join();
  EXPECT_EQ(sum, 1000);
  EXPECT_EQ(own_delta, 0u);
}

// ---- Chase-Lev deque ------------------------------------------------------

struct count_job final : parlib::internal::job {
  std::atomic<std::uint64_t>* counter = nullptr;
  void execute() override {
    counter->fetch_add(1, std::memory_order_relaxed);
  }
};

// The last-element race: an owner push/pop_if loop against hammering
// thieves. Every job must execute exactly once — either the owner's
// pop_if wins the CAS and runs it, or a thief does and sets done.
TEST(WorkDeque, LastElementRaceExecutesEachJobExactlyOnce) {
  parlib::internal::work_deque dq;
  std::atomic<std::uint64_t> executed{0};
  std::atomic<bool> stop{false};
  constexpr std::uint64_t kRounds = 100000;

  std::vector<std::thread> thieves;
  for (int t = 0; t < 2; ++t) {
    thieves.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        if (parlib::internal::job* j = dq.steal()) {
          j->execute();
          j->done.store(true, std::memory_order_release);
        }
      }
    });
  }

  std::uint64_t owner_pops = 0;
  for (std::uint64_t r = 0; r < kRounds; ++r) {
    count_job cj;
    cj.counter = &executed;
    ASSERT_TRUE(dq.push(&cj));
    if (dq.pop_if(&cj)) {
      cj.execute();
      ++owner_pops;
    } else {
      while (!cj.done.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
    }
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : thieves) t.join();
  EXPECT_EQ(executed.load(), kRounds);
  // Sanity: the counter moved through both paths on most hosts; only the
  // exact total is a hard guarantee.
  EXPECT_LE(owner_pops, kRounds);
}

TEST(WorkDeque, OverflowRefusesPushAndLifoPopsRecover) {
  parlib::internal::work_deque dq;
  std::atomic<std::uint64_t> executed{0};
  std::vector<count_job> jobs(parlib::internal::work_deque::kCapacity + 1);
  for (auto& j : jobs) j.counter = &executed;
  for (std::size_t i = 0; i < parlib::internal::work_deque::kCapacity;
       ++i) {
    ASSERT_TRUE(dq.push(&jobs[i])) << i;
  }
  EXPECT_FALSE(dq.push(&jobs.back()));  // full: overflow fallback
  // LIFO drain: each pop_if must match the most recent push.
  for (std::size_t i = parlib::internal::work_deque::kCapacity; i-- > 0;) {
    ASSERT_TRUE(dq.pop_if(&jobs[i])) << i;
  }
  EXPECT_FALSE(dq.pop_if(&jobs[0]));  // empty
}

TEST(WorkDeque, PopIfLeavesOuterFramesJobInPlace) {
  parlib::internal::work_deque dq;
  std::atomic<std::uint64_t> executed{0};
  count_job outer, inner;
  outer.counter = inner.counter = &executed;
  ASSERT_TRUE(dq.push(&outer));
  // Inner frame's job was "stolen" (never pushed); its pop_if must not
  // disturb the outer frame's job.
  EXPECT_FALSE(dq.pop_if(&inner));
  EXPECT_TRUE(dq.pop_if(&outer));
}

// The serving-layer acceptance check: reader threads of a query_engine
// register with the scheduler, so analytics-internal forks land on
// per-reader deques — counted into parlib::event_counters — while deque 0
// (the idle main thread) sees none of them.
TEST(Scheduler, QueryEngineReaderForksLandOnReaderDeques) {
  using gbbs::vertex_id;
  // Star graph: BFS from the hub has an (n-1)-vertex frontier, so the
  // query's edge_map genuinely forks (a path graph's 1-vertex frontiers
  // would not).
  const vertex_id n = 20000;
  gbbs::serve::snapshot_manager<gbbs::empty_weight> mgr(n);
  std::vector<gbbs::dynamic::update<gbbs::empty_weight>> ups;
  ups.reserve(n - 1);
  for (vertex_id u = 1; u < n; ++u) {
    ups.push_back({0, u, {}, gbbs::dynamic::update_op::insert});
  }
  mgr.ingest(std::move(ups));
  mgr.publish();

  auto& sched = parlib::scheduler::instance();
  auto& counters = parlib::event_counters::global();
  const std::uint64_t reader_forks_before =
      counters.sched_reader_forks.load();
  const std::uint64_t registrations_before =
      counters.sched_external_registrations.load();
  std::uint64_t deque0_before = 0;
  std::uint64_t engine_forks = 0;
  {
    gbbs::serve::query_engine<gbbs::empty_weight> engine(
        mgr.store(), &mgr.overlay(), /*num_readers=*/4);
    // From here the main thread only blocks on futures: any deque-0
    // pushes below would be misrouted reader forks.
    deque0_before = sched.push_count(0);
    std::vector<std::future<gbbs::serve::query_result>> futs;
    for (int i = 0; i < 8; ++i) {
      futs.push_back(engine.submit(
          {gbbs::serve::query_kind::bfs_distance, 0, n - 1}));
    }
    for (auto& f : futs) {
      EXPECT_EQ(f.get().value, 1u);  // hub -> leaf
    }
    engine_forks = engine.reader_forks();
    // At least the reader(s) that executed these queries registered
    // (asserting all 4 would race reader-thread startup).
    EXPECT_GE(counters.sched_external_registrations.load(),
              registrations_before + 1);
  }
  EXPECT_GT(engine_forks, 0u);
  EXPECT_GT(counters.sched_reader_forks.load(), reader_forks_before);
  EXPECT_EQ(sched.push_count(0), deque0_before);
}

TEST(WorkDeque, StealObservesPushedJob) {
  parlib::internal::work_deque dq;
  std::atomic<std::uint64_t> executed{0};
  count_job cj;
  cj.counter = &executed;
  ASSERT_TRUE(dq.push(&cj));
  std::atomic<bool> stolen{false};
  std::thread thief([&] {
    while (!stolen.load(std::memory_order_acquire)) {
      if (parlib::internal::job* j = dq.steal()) {
        j->execute();
        stolen.store(true, std::memory_order_release);
      }
    }
  });
  thief.join();
  EXPECT_EQ(executed.load(), 1u);
  EXPECT_FALSE(dq.pop_if(&cj));  // it is gone
}

}  // namespace
