// Tests for the work-stealing fork-join scheduler.
#include <atomic>
#include <cstdint>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "parlib/parallel.h"
#include "parlib/scheduler.h"

namespace {

TEST(Scheduler, ReportsAtLeastOneWorker) {
  EXPECT_GE(parlib::num_workers(), 1u);
  EXPECT_GE(parlib::num_active_workers(), 1u);
  EXPECT_LE(parlib::num_active_workers(), parlib::num_workers());
}

TEST(Scheduler, ParDoRunsBothBranches) {
  int a = 0, b = 0;
  parlib::par_do([&] { a = 1; }, [&] { b = 2; });
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, 2);
}

TEST(Scheduler, ParDoNestedCompletesAll) {
  std::atomic<int> count{0};
  parlib::par_do(
      [&] {
        parlib::par_do([&] { count++; }, [&] { count++; });
      },
      [&] {
        parlib::par_do([&] { count++; }, [&] { count++; });
      });
  EXPECT_EQ(count.load(), 4);
}

// Fibonacci via fork-join: a classic stress test of nested par_do with many
// joins, some of which are stolen.
std::uint64_t fib(int n) {
  if (n < 2) return n;
  std::uint64_t a = 0, b = 0;
  parlib::par_do_if(n > 12, [&] { a = fib(n - 1); }, [&] { b = fib(n - 2); });
  if (n <= 12) {
    a = fib(n - 1);
    b = fib(n - 2);
    return a + b;
  }
  return a + b;
}

TEST(Scheduler, ForkJoinFibonacci) { EXPECT_EQ(fib(28), 317811u); }

TEST(Scheduler, ParallelForCoversEveryIndexExactlyOnce) {
  const std::size_t n = 100000;
  std::vector<std::atomic<int>> hits(n);
  parlib::parallel_for(0, n, [&](std::size_t i) { hits[i]++; });
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(hits[i].load(), 1) << i;
}

TEST(Scheduler, ParallelForEmptyAndSingleton) {
  std::atomic<int> count{0};
  parlib::parallel_for(5, 5, [&](std::size_t) { count++; });
  EXPECT_EQ(count.load(), 0);
  parlib::parallel_for(7, 8, [&](std::size_t i) {
    EXPECT_EQ(i, 7u);
    count++;
  });
  EXPECT_EQ(count.load(), 1);
}

TEST(Scheduler, ParallelForExplicitGranularity) {
  const std::size_t n = 4097;
  std::vector<int> hits(n, 0);
  parlib::parallel_for(0, n, [&](std::size_t i) { hits[i]++; }, 13);
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0),
            static_cast<int>(n));
}

TEST(Scheduler, ActiveWorkersGuardRestores) {
  const std::size_t before = parlib::num_active_workers();
  {
    parlib::active_workers_guard g(1);
    EXPECT_EQ(parlib::num_active_workers(), 1u);
    // Sequential mode still computes correctly.
    std::vector<int> v(1000, 1);
    int sum = 0;
    parlib::parallel_for(0, v.size(), [&](std::size_t i) { sum += v[i]; });
    EXPECT_EQ(sum, 1000);
  }
  EXPECT_EQ(parlib::num_active_workers(), before);
}

TEST(Scheduler, SkewedWorkIsBalanced) {
  // A loop where one iteration is vastly more expensive must still finish.
  const std::size_t n = 64;
  std::vector<std::uint64_t> out(n);
  parlib::parallel_for(
      0, n,
      [&](std::size_t i) {
        std::uint64_t acc = 0;
        const std::size_t reps = (i == 0) ? 2000000 : 100;
        for (std::size_t r = 0; r < reps; ++r) acc += r * r + i;
        out[i] = acc;
      },
      1);
  EXPECT_GT(out[0], out[1]);
}

}  // namespace
