// Tests for the MT-RAM atomic primitives (test-and-set, fetch-and-add,
// priority-write) under real parallel contention.
#include <cstdint>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "parlib/atomics.h"
#include "parlib/parallel.h"
#include "parlib/random.h"

namespace {

TEST(Atomics, CasBasic) {
  std::uint64_t x = 5;
  EXPECT_TRUE(parlib::atomic_cas<std::uint64_t>(&x, 5, 9));
  EXPECT_EQ(x, 9u);
  EXPECT_FALSE(parlib::atomic_cas<std::uint64_t>(&x, 5, 11));
  EXPECT_EQ(x, 9u);
}

TEST(Atomics, TestAndSetExactlyOneWinner) {
  for (int trial = 0; trial < 20; ++trial) {
    std::uint32_t flag = 0;
    std::vector<int> won(256, 0);
    parlib::parallel_for(
        0, won.size(),
        [&](std::size_t i) { won[i] = parlib::test_and_set(&flag) ? 1 : 0; },
        1);
    int winners = 0;
    for (int w : won) winners += w;
    ASSERT_EQ(winners, 1) << "trial " << trial;
    ASSERT_EQ(flag, 1u);
  }
}

TEST(Atomics, TestAndSetOnAlreadySetFails) {
  std::uint8_t flag = 1;
  EXPECT_FALSE(parlib::test_and_set(&flag));
}

TEST(Atomics, FetchAndAddCountsExactly) {
  std::uint64_t counter = 0;
  const std::size_t n = 50000;
  parlib::parallel_for(0, n, [&](std::size_t) {
    parlib::fetch_and_add<std::uint64_t>(&counter, 1);
  });
  EXPECT_EQ(counter, n);
}

TEST(Atomics, FetchAndAddReturnsPrevious) {
  std::uint32_t x = 10;
  EXPECT_EQ(parlib::fetch_and_add<std::uint32_t>(&x, 5), 10u);
  EXPECT_EQ(x, 15u);
}

TEST(Atomics, WriteMinFindsGlobalMin) {
  std::uint64_t loc = std::numeric_limits<std::uint64_t>::max();
  const std::size_t n = 100000;
  parlib::parallel_for(0, n, [&](std::size_t i) {
    parlib::write_min<std::uint64_t>(&loc, parlib::hash64(i) % 1000000 + 1);
  });
  std::uint64_t expected = std::numeric_limits<std::uint64_t>::max();
  for (std::size_t i = 0; i < n; ++i) {
    expected = std::min(expected, parlib::hash64(i) % 1000000 + 1);
  }
  EXPECT_EQ(loc, expected);
}

TEST(Atomics, WriteMaxFindsGlobalMax) {
  std::int64_t loc = std::numeric_limits<std::int64_t>::lowest();
  const std::size_t n = 65536;
  parlib::parallel_for(0, n, [&](std::size_t i) {
    parlib::write_max<std::int64_t>(
        &loc, static_cast<std::int64_t>(parlib::hash64(i) % 999983));
  });
  std::int64_t expected = std::numeric_limits<std::int64_t>::lowest();
  for (std::size_t i = 0; i < n; ++i) {
    expected = std::max(expected,
                        static_cast<std::int64_t>(parlib::hash64(i) % 999983));
  }
  EXPECT_EQ(loc, expected);
}

TEST(Atomics, PriorityWriteReturnValueMatchesEffect) {
  std::uint32_t loc = 50;
  EXPECT_TRUE(parlib::write_min<std::uint32_t>(&loc, 10));
  EXPECT_EQ(loc, 10u);
  EXPECT_FALSE(parlib::write_min<std::uint32_t>(&loc, 10));  // equal: no win
  EXPECT_FALSE(parlib::write_min<std::uint32_t>(&loc, 30));
  EXPECT_EQ(loc, 10u);
}

TEST(Atomics, PriorityWriteCustomPriority) {
  // Priority on the low 8 bits only.
  auto pri = [](std::uint32_t a, std::uint32_t b) {
    return (a & 0xFF) < (b & 0xFF);
  };
  std::uint32_t loc = 0x0510;  // low byte 0x10
  EXPECT_TRUE(parlib::priority_write<std::uint32_t>(&loc, 0x0903, pri));
  EXPECT_EQ(loc, 0x0903u);
  EXPECT_FALSE(parlib::priority_write<std::uint32_t>(&loc, 0x0104, pri));
}

TEST(Atomics, ParallelWriteMinPerSlot) {
  const std::size_t slots = 512, updates = 40000;
  std::vector<std::uint32_t> loc(slots,
                                 std::numeric_limits<std::uint32_t>::max());
  std::vector<std::uint32_t> expected(
      slots, std::numeric_limits<std::uint32_t>::max());
  for (std::size_t i = 0; i < updates; ++i) {
    const auto s = parlib::hash64(i) % slots;
    const auto v = static_cast<std::uint32_t>(parlib::hash64(i * 7 + 1));
    expected[s] = std::min(expected[s], v);
  }
  parlib::parallel_for(0, updates, [&](std::size_t i) {
    const auto s = parlib::hash64(i) % slots;
    const auto v = static_cast<std::uint32_t>(parlib::hash64(i * 7 + 1));
    parlib::write_min(&loc[s], v);
  });
  EXPECT_EQ(loc, expected);
}

}  // namespace
