// Tests for edgeMap: dense vs sparse vs blocked equivalence, direction
// switching, edgeMapData, and the write-counter semantics used by the
// Table 6 locality bench.
#include <algorithm>
#include <cstdint>
#include <limits>
#include <optional>
#include <vector>

#include <gtest/gtest.h>

#include "graph/edge_map.h"
#include "graph/generators.h"
#include "parlib/atomics.h"

namespace {

using gbbs::edge_map_options;
using gbbs::empty_weight;
using gbbs::vertex_id;
using gbbs::vertex_subset;

// A BFS-style acquire functor over a visited array.
struct acquire_f {
  std::vector<std::uint8_t>* visited;
  bool update(vertex_id, vertex_id v, empty_weight) const {
    if (!(*visited)[v]) {
      (*visited)[v] = 1;
      return true;
    }
    return false;
  }
  bool update_atomic(vertex_id, vertex_id v, empty_weight) const {
    return parlib::test_and_set(&(*visited)[v]);
  }
  bool cond(vertex_id v) const { return !(*visited)[v]; }
};

std::vector<vertex_id> sorted_ids(vertex_subset vs) {
  vs.to_sparse();
  auto ids = vs.sparse();
  std::sort(ids.begin(), ids.end());
  return ids;
}

class EdgeMapModes : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Modes, EdgeMapModes, ::testing::Values(0, 1, 2));
// 0 = blocked sparse, 1 = plain sparse, 2 = dense

edge_map_options mode_options(int mode) {
  edge_map_options o;
  if (mode == 0) {
    o.allow_dense = false;
    o.use_blocked = true;
  } else if (mode == 1) {
    o.allow_dense = false;
    o.use_blocked = false;
  } else {
    o.threshold = 0;  // always dense
  }
  return o;
}

TEST_P(EdgeMapModes, OneHopNeighborhood) {
  auto g = gbbs::rmat_symmetric(10, 8000, 11);
  const vertex_id src = 3;
  std::vector<std::uint8_t> visited(g.num_vertices(), 0);
  visited[src] = 1;
  vertex_subset frontier(g.num_vertices(), src);
  auto next = gbbs::edge_map(g, frontier, acquire_f{&visited},
                             mode_options(GetParam()));
  // Expected: exactly the neighbors of src.
  auto nghs = g.out_neighbors(src);
  std::vector<vertex_id> expected(nghs.begin(), nghs.end());
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(sorted_ids(std::move(next)), expected);
}

TEST_P(EdgeMapModes, FullBfsReachesSameVertices) {
  auto g = gbbs::rmat_symmetric(10, 16000, 13);
  const vertex_id src = 0;
  std::vector<std::uint8_t> visited(g.num_vertices(), 0);
  visited[src] = 1;
  vertex_subset frontier(g.num_vertices(), src);
  std::size_t total = 1;
  while (!frontier.empty()) {
    frontier = gbbs::edge_map(g, frontier, acquire_f{&visited},
                              mode_options(GetParam()));
    total += frontier.size();
  }
  // Reference reachability.
  std::vector<std::uint8_t> ref(g.num_vertices(), 0);
  std::vector<vertex_id> stack = {src};
  ref[src] = 1;
  std::size_t expected = 1;
  while (!stack.empty()) {
    const vertex_id v = stack.back();
    stack.pop_back();
    for (vertex_id u : g.out_neighbors(v)) {
      if (!ref[u]) {
        ref[u] = 1;
        ++expected;
        stack.push_back(u);
      }
    }
  }
  EXPECT_EQ(total, expected);
  EXPECT_EQ(visited, ref);
}

TEST(EdgeMap, ModesAgreeOnEveryRound) {
  auto g = gbbs::rmat_symmetric(9, 6000, 17);
  const vertex_id src = 5;
  std::vector<std::uint8_t> vis_a(g.num_vertices(), 0),
      vis_b(g.num_vertices(), 0), vis_c(g.num_vertices(), 0);
  vis_a[src] = vis_b[src] = vis_c[src] = 1;
  vertex_subset fa(g.num_vertices(), src), fb(g.num_vertices(), src),
      fc(g.num_vertices(), src);
  while (!fa.empty() || !fb.empty() || !fc.empty()) {
    fa = gbbs::edge_map(g, fa, acquire_f{&vis_a}, mode_options(0));
    fb = gbbs::edge_map(g, fb, acquire_f{&vis_b}, mode_options(1));
    fc = gbbs::edge_map(g, fc, acquire_f{&vis_c}, mode_options(2));
    ASSERT_EQ(sorted_ids(fa), sorted_ids(fb));
    ASSERT_EQ(sorted_ids(fb), sorted_ids(fc));
  }
}

TEST(EdgeMap, DirectedUsesInEdgesForDense) {
  // Directed path 0 -> 1 -> 2: dense mode must find 1 from {0} via 1's
  // in-edges.
  std::vector<gbbs::edge<empty_weight>> edges = {{0, 1, {}}, {1, 2, {}}};
  auto g = gbbs::build_asymmetric_graph<empty_weight>(3, edges);
  std::vector<std::uint8_t> visited(3, 0);
  visited[0] = 1;
  vertex_subset frontier(3, vertex_id{0});
  auto next = gbbs::edge_map(g, frontier, acquire_f{&visited},
                             mode_options(2));
  EXPECT_EQ(sorted_ids(std::move(next)), (std::vector<vertex_id>{1}));
}

TEST(EdgeMap, EmptyFrontierShortCircuits) {
  auto g = gbbs::rmat_symmetric(8, 2000, 19);
  std::vector<std::uint8_t> visited(g.num_vertices(), 0);
  vertex_subset frontier(g.num_vertices());
  auto next = gbbs::edge_map(g, frontier, acquire_f{&visited});
  EXPECT_TRUE(next.empty());
}

TEST(EdgeMap, BlockedWritesFewerSlotsThanSparse) {
  // On a one-hop expansion of a high-degree frontier with most targets
  // already visited, blocked writes O(live) slots while sparse writes
  // O(degree) slots. This is the Section B / Table 6 claim in counter form.
  auto g = gbbs::rmat_symmetric(12, 60000, 23);
  // Mark most vertices visited already.
  std::vector<std::uint8_t> visited(g.num_vertices(), 0);
  for (vertex_id v = 0; v < g.num_vertices(); ++v) {
    visited[v] = (v % 8 != 0);
  }
  auto& ctr = parlib::event_counters::global();

  std::vector<std::uint8_t> vis1 = visited;
  vertex_subset f1(g.num_vertices(), vertex_id{0});
  ctr.reset();
  gbbs::edge_map(g, f1, acquire_f{&vis1}, mode_options(1));
  const auto sparse_writes = ctr.edgemap_slots_written.load();

  std::vector<std::uint8_t> vis2 = visited;
  vertex_subset f2(g.num_vertices(), vertex_id{0});
  ctr.reset();
  gbbs::edge_map(g, f2, acquire_f{&vis2}, mode_options(0));
  const auto blocked_writes = ctr.edgemap_slots_written.load();

  EXPECT_EQ(sparse_writes, g.out_degree(0));
  EXPECT_LE(blocked_writes, sparse_writes);
}

TEST(EdgeMap, DenseForwardAgreesWithOtherModes) {
  auto g = gbbs::rmat_symmetric(10, 12000, 31);
  const vertex_id src = 9;
  std::vector<std::uint8_t> vis_a(g.num_vertices(), 0),
      vis_b(g.num_vertices(), 0);
  vis_a[src] = vis_b[src] = 1;
  vertex_subset fa(g.num_vertices(), src), fb(g.num_vertices(), src);
  edge_map_options fwd;
  fwd.threshold = 0;  // always dense
  fwd.dense_forward = true;
  while (!fa.empty() || !fb.empty()) {
    fa = gbbs::edge_map(g, fa, acquire_f{&vis_a}, fwd);
    fb = gbbs::edge_map(g, fb, acquire_f{&vis_b}, mode_options(2));
    ASSERT_EQ(sorted_ids(fa), sorted_ids(fb));
  }
  EXPECT_EQ(vis_a, vis_b);
}

TEST(EdgeMap, DenseForwardOnDirectedGraph) {
  // Forward mode traverses out-edges even in dense representation.
  std::vector<gbbs::edge<empty_weight>> edges = {{0, 1, {}}, {1, 2, {}}};
  auto g = gbbs::build_asymmetric_graph<empty_weight>(3, edges);
  std::vector<std::uint8_t> visited(3, 0);
  visited[0] = 1;
  vertex_subset frontier(3, vertex_id{0});
  edge_map_options fwd;
  fwd.threshold = 0;
  fwd.dense_forward = true;
  auto next = gbbs::edge_map(g, frontier, acquire_f{&visited}, fwd);
  EXPECT_EQ(sorted_ids(std::move(next)), (std::vector<vertex_id>{1}));
}

struct min_payload_f {
  std::vector<std::uint32_t>* dist;
  bool cond(vertex_id) const { return true; }
  std::optional<std::uint32_t> update_atomic(vertex_id u, vertex_id v,
                                             empty_weight) const {
    const std::uint32_t nd = (*dist)[u] + 1;
    if (parlib::write_min(&(*dist)[v], nd)) return nd;
    return std::nullopt;
  }
};

TEST(EdgeMapData, CollectsPayloadsOfSuccessfulUpdates) {
  auto g = gbbs::rmat_symmetric(9, 6000, 29);
  std::vector<std::uint32_t> dist(g.num_vertices(),
                                  std::numeric_limits<std::uint32_t>::max());
  dist[4] = 0;
  vertex_subset frontier(g.num_vertices(), vertex_id{4});
  auto out = gbbs::edge_map_data<std::uint32_t>(g, frontier,
                                                min_payload_f{&dist});
  // Each neighbor of 4 should appear exactly once with payload 1.
  auto nghs = g.out_neighbors(4);
  EXPECT_EQ(out.size(), nghs.size());
  for (const auto& [v, d] : out.entries()) {
    EXPECT_EQ(d, 1u);
    EXPECT_TRUE(std::binary_search(nghs.begin(), nghs.end(), v));
  }
}

}  // namespace
